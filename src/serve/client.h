// serve::Client — the blocking client library of the PPSV job protocol.
//
// A Client is one tenant session on one connection: connect() performs the
// hello handshake, register_design() uploads a compiled design into the
// tenant's namespace, and jobs flow either synchronously (run = submit +
// wait) or pipelined — submit() returns a request id without reading the
// socket, so many jobs ride the connection back-to-back, and wait() collects
// replies in any order (frames carry request ids; out-of-order completions
// are stashed until asked for).  Server-side backpressure (kBusy) surfaces
// as kUnavailable: nothing was queued, back off and resubmit.
//
// Thread-safety: none — a Client is used from one thread at a time (the
// soak bench gives each closed-loop worker its own Client, which is also
// the honest way to load a server).

/// \file
/// \brief serve::Client — blocking tenant session over the PPSV job
/// protocol (register designs, submit/wait batches, poll stats).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "platform/compiler.h"
#include "serve/protocol.h"
#include "util/status.h"

namespace pp::serve {

/// Per-submit scheduling options, the wire-visible subset of
/// rt::SubmitOptions (engine sharding knobs stay server-side policy).
struct ClientSubmitOptions {
  /// Scheduling class (interactive jobs jump batch jobs; bounded).
  rt::Priority priority = rt::Priority::kBatch;
  /// Relative deadline in milliseconds from server receipt; 0 = none.
  /// Expired before dispatch → the job completes with kDeadlineExceeded
  /// without running.
  std::uint32_t deadline_ms = 0;
  /// Evaluation engine choice for the batch run.
  platform::Engine engine = platform::Engine::kAuto;
  /// Clocked-stream cycle count (protocol v2): 0 = independent
  /// combinational vectors; > 0 = the batch is stream-major clocked
  /// stimulus of whole `cycles`-vector streams (rt::SubmitOptions::cycles
  /// semantics — every stream starts from reset).  Sequential designs
  /// require it; ragged batches are rejected before any bytes move.
  std::uint32_t cycles = 0;
};

/// One tenant session on one TCP connection.  See the file comment for the
/// usage model and docs/serving-protocol.md for the wire contract.
class Client {
 public:
  /// Connect to a serve::Server and perform the hello handshake as
  /// `tenant` (validate_name rules).  Fails with the connect Status or
  /// whatever the server answered the hello with.
  [[nodiscard]] static Result<Client> connect(const std::string& host,
                                              std::uint16_t port,
                                              std::string tenant);

  /// Moved-from clients may only be destroyed or assigned to.
  Client(Client&&) noexcept;
  /// Closes the overwritten client's connection before taking over.
  Client& operator=(Client&&) noexcept;
  /// Closes the connection.  Replies to still-outstanding submits are lost
  /// (the jobs themselves finish server-side).
  ~Client();

  /// The server-assigned session id from the hello handshake.
  [[nodiscard]] std::uint64_t session_id() const noexcept;
  /// The tenant this session authenticated as.
  [[nodiscard]] const std::string& tenant() const noexcept;

  /// Upload a compiled design into the tenant's namespace under `name` and
  /// block for the ack.  Client-side rejections (before any bytes move):
  /// kInvalidArgument for a bad name or a design with no bitstream.
  /// Sequential designs upload their boundary-register state too (protocol
  /// v2) and are then servable through clocked submits
  /// (ClientSubmitOptions::cycles > 0).  Server-side failures arrive as
  /// the registration's error Status (quota, dimension, bitstream
  /// validation).  Idempotent like DevicePool::register_design:
  /// re-uploading identical content is free.
  [[nodiscard]] Status register_design(std::string_view name,
                                       const platform::CompiledDesign& design);

  /// Pipeline one batch: encode, send, and return the request id without
  /// waiting for the reply.  Every vector must have the design's input
  /// width (the server validates; equal widths and count/width wire bounds
  /// are checked here).  Collect the reply with wait().
  [[nodiscard]] Result<std::uint64_t> submit(
      std::string_view name, std::span<const platform::InputVector> vectors,
      const ClientSubmitOptions& options = {});

  /// Block until the reply for `request_id` arrives (replies for other
  /// outstanding submits are stashed, not lost).  Returns the results in
  /// submit order of the batch's vectors, or: kUnavailable when the server
  /// answered kBusy (admission refused — nothing ran, resubmit later), the
  /// job's own failure Status (kDeadlineExceeded, kInvalidArgument, ...),
  /// or kNotFound for a request id this client never issued (or already
  /// collected).
  [[nodiscard]] Result<std::vector<platform::BitVector>> wait(
      std::uint64_t request_id);

  /// Synchronous convenience: submit + wait.
  [[nodiscard]] Result<std::vector<platform::BitVector>> run(
      std::string_view name, std::span<const platform::InputVector> vectors,
      const ClientSubmitOptions& options = {});

  /// Poll the server for this tenant's serving counters and the pool-wide
  /// queue depth.  Replies for outstanding submits that arrive first are
  /// stashed exactly as in wait().
  [[nodiscard]] Result<StatsReplyMsg> stats();

 private:
  struct Impl;
  explicit Client(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace pp::serve
