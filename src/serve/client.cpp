#include "serve/client.h"

#include <map>
#include <utility>

#include "platform/executor.h"
#include "serve/wire.h"

namespace pp::serve {

struct Client::Impl {
  Socket socket;
  std::string tenant;
  std::uint64_t session_id = 0;
  std::uint64_t next_request_id = 1;

  /// Request ids submitted but not yet collected by wait(), mapped to the
  /// vector count each batch carried — a result for the request must
  /// answer with exactly that many vectors.
  std::map<std::uint64_t, std::uint32_t> outstanding;
  /// Replies that arrived while waiting for a different request id.
  std::map<std::uint64_t, Result<std::vector<platform::BitVector>>> ready;

  /// Translate a reply frame for an outstanding submit into the Result a
  /// local DevicePool::run_sync would have produced.  `expected_vectors`
  /// is the submitted batch size: a server (malicious or buggy) whose
  /// result announces any other count is reporting on some other batch —
  /// fail instead of unpacking an allocation the server chose.
  [[nodiscard]] Result<std::vector<platform::BitVector>> reply_to_result(
      const Frame& frame, std::uint32_t expected_vectors) {
    if (frame.type == MsgType::kResult) {
      auto msg = decode_result(frame);
      if (!msg.ok()) return msg.status();
      if (msg->vector_count != expected_vectors)
        return Status::internal(
            "serve: result carries " + std::to_string(msg->vector_count) +
            " vectors for a batch of " + std::to_string(expected_vectors));
      return platform::unpack_bit_planes(msg->planes, msg->vector_count,
                                         msg->output_count);
    }
    if (frame.type == MsgType::kBusy) {
      auto msg = decode_busy(frame);
      if (!msg.ok()) return msg.status();
      return Status::unavailable("serve: admission refused (" + msg->reason +
                                 "); nothing was queued, retry later");
    }
    auto msg = decode_error(frame);
    if (!msg.ok()) return msg.status();
    return Status(msg->code, msg->message);
  }

  [[nodiscard]] std::uint64_t reply_request_id(const Frame& frame) {
    if (frame.type == MsgType::kResult) {
      auto msg = decode_result(frame);
      return msg.ok() ? msg->request_id : 0;
    }
    if (frame.type == MsgType::kBusy) {
      auto msg = decode_busy(frame);
      return msg.ok() ? msg->request_id : 0;
    }
    if (frame.type == MsgType::kError) {
      auto msg = decode_error(frame);
      return msg.ok() ? msg->request_id : 0;
    }
    return 0;
  }

  /// Read frames until one satisfies `done`; job replies for outstanding
  /// request ids are stashed into `ready` along the way.  Returns the
  /// satisfying frame.
  template <typename Pred>
  [[nodiscard]] Result<Frame> read_until(Pred done) {
    while (true) {
      auto frame = read_frame(socket);
      if (!frame.ok()) return frame.status();
      if (done(*frame)) return frame;
      if (frame->type == MsgType::kResult || frame->type == MsgType::kBusy ||
          frame->type == MsgType::kError) {
        const std::uint64_t id = reply_request_id(*frame);
        if (const auto it = outstanding.find(id); it != outstanding.end()) {
          const std::uint32_t expected = it->second;
          outstanding.erase(it);
          ready.emplace(id, reply_to_result(*frame, expected));
          continue;
        }
        if (frame->type == MsgType::kError) {
          // A session-level error (request id 0 or unknown) is terminal:
          // the server is about to hang up.
          auto msg = decode_error(*frame);
          if (msg.ok()) return Status(msg->code, msg->message);
          return msg.status();
        }
      }
      return Status::internal(
          "serve: unexpected frame type " +
          std::to_string(static_cast<int>(frame->type)) +
          " while waiting for a reply");
    }
  }
};

Result<Client> Client::connect(const std::string& host, std::uint16_t port,
                               std::string tenant) {
  if (Status s = validate_name("tenant name", tenant); !s.ok()) return s;
  auto socket = connect_tcp(host, port);
  if (!socket.ok()) return socket.status();
  auto impl = std::make_unique<Impl>();
  impl->socket = std::move(*socket);
  impl->tenant = std::move(tenant);
  HelloMsg hello;
  hello.tenant = impl->tenant;
  if (Status s = write_frame(impl->socket, encode_hello(hello)); !s.ok())
    return s;
  auto frame = impl->read_until(
      [](const Frame& f) { return f.type == MsgType::kHelloAck; });
  if (!frame.ok()) return frame.status();
  auto ack = decode_hello_ack(*frame);
  if (!ack.ok()) return ack.status();
  impl->session_id = ack->session_id;
  return Client(std::move(impl));
}

Client::Client(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
Client::Client(Client&&) noexcept = default;
Client& Client::operator=(Client&&) noexcept = default;
Client::~Client() = default;

std::uint64_t Client::session_id() const noexcept {
  return impl_->session_id;
}

const std::string& Client::tenant() const noexcept { return impl_->tenant; }

Status Client::register_design(std::string_view name,
                               const platform::CompiledDesign& design) {
  if (Status s = validate_name("design name", name); !s.ok()) return s;
  if (design.bitstream.empty())
    return Status::invalid_argument(
        "serve: the design has no bitstream to upload");
  const int rows = design.fabric.rows(), cols = design.fabric.cols();
  if (rows < 1 || cols < 1 || rows > 0xFFFF || cols > 0xFFFF)
    return Status::invalid_argument(
        "serve: fabric dimensions do not fit the wire format");
  RegisterDesignMsg msg;
  msg.request_id = impl_->next_request_id++;
  msg.design = std::string(name);
  msg.rows = static_cast<std::uint16_t>(rows);
  msg.cols = static_cast<std::uint16_t>(cols);
  msg.delays = design.delays;
  msg.content_hash = design.content_hash;
  msg.inputs = design.inputs;
  msg.outputs = design.outputs;
  msg.state = design.state;
  msg.bitstream = design.bitstream;
  if (Status s = write_frame(impl_->socket, encode_register_design(msg));
      !s.ok())
    return s;
  const std::uint64_t id = msg.request_id;
  auto frame = impl_->read_until([&](const Frame& f) {
    if (f.type == MsgType::kRegisterAck) {
      auto ack = decode_register_ack(f);
      return ack.ok() && ack->request_id == id;
    }
    if (f.type == MsgType::kError) {
      auto err = decode_error(f);
      return err.ok() && err->request_id == id;
    }
    return false;
  });
  if (!frame.ok()) return frame.status();
  if (frame->type == MsgType::kRegisterAck) return Status();
  auto err = decode_error(*frame);
  if (!err.ok()) return err.status();
  return Status(err->code, err->message);
}

Result<std::uint64_t> Client::submit(
    std::string_view name, std::span<const platform::InputVector> vectors,
    const ClientSubmitOptions& options) {
  if (Status s = validate_name("design name", name); !s.ok()) return s;
  if (vectors.empty())
    return Status::invalid_argument("serve: a batch needs at least 1 vector");
  if (vectors.size() > kMaxVectorsPerBatch)
    return Status::invalid_argument(
        "serve: a batch carries at most " +
        std::to_string(kMaxVectorsPerBatch) + " vectors");
  if (options.cycles > 0 && vectors.size() % options.cycles != 0)
    return Status::invalid_argument(
        "serve: " + std::to_string(vectors.size()) +
        " vectors do not divide into whole " +
        std::to_string(options.cycles) + "-cycle streams");
  const std::size_t width = vectors.front().size();
  if (width == 0)
    return Status::invalid_argument(
        "serve: vectors must be at least 1 bit wide");
  for (const platform::InputVector& v : vectors)
    if (v.size() != width)
      return Status::invalid_argument(
          "serve: every vector of a batch must have the same width");
  if (width > 0xFFFF)
    return Status::invalid_argument(
        "serve: vector width does not fit the wire format");
  SubmitBatchMsg msg;
  msg.request_id = impl_->next_request_id++;
  msg.design = std::string(name);
  msg.priority = options.priority;
  msg.deadline_ms = options.deadline_ms;
  msg.engine = options.engine;
  msg.cycles = options.cycles;
  msg.vector_count = static_cast<std::uint32_t>(vectors.size());
  msg.input_count = static_cast<std::uint16_t>(width);
  msg.planes = platform::pack_bit_planes(vectors, width);
  if (Status s = write_frame(impl_->socket, encode_submit_batch(msg));
      !s.ok())
    return s;
  impl_->outstanding.emplace(msg.request_id, msg.vector_count);
  return msg.request_id;
}

Result<std::vector<platform::BitVector>> Client::wait(
    std::uint64_t request_id) {
  if (auto it = impl_->ready.find(request_id); it != impl_->ready.end()) {
    auto result = std::move(it->second);
    impl_->ready.erase(it);
    return result;
  }
  const auto it = impl_->outstanding.find(request_id);
  if (it == impl_->outstanding.end())
    return Status::not_found("serve: request " + std::to_string(request_id) +
                             " is not outstanding on this client");
  const std::uint32_t expected = it->second;
  auto frame = impl_->read_until([&](const Frame& f) {
    return impl_->reply_request_id(f) == request_id;
  });
  if (!frame.ok()) return frame.status();
  impl_->outstanding.erase(request_id);
  return impl_->reply_to_result(*frame, expected);
}

Result<std::vector<platform::BitVector>> Client::run(
    std::string_view name, std::span<const platform::InputVector> vectors,
    const ClientSubmitOptions& options) {
  auto id = submit(name, vectors, options);
  if (!id.ok()) return id.status();
  return wait(*id);
}

Result<StatsReplyMsg> Client::stats() {
  if (Status s = write_frame(impl_->socket,
                             encode_stats_request(StatsRequestMsg{}));
      !s.ok())
    return s;
  auto frame = impl_->read_until(
      [](const Frame& f) { return f.type == MsgType::kStatsReply; });
  if (!frame.ok()) return frame.status();
  return decode_stats_reply(*frame);
}

}  // namespace pp::serve
