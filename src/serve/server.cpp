#include "serve/server.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "core/bitstream.h"
#include "serve/protocol.h"
#include "serve/wire.h"

namespace pp::serve {

namespace {

/// Shared per-tenant state: the design namespace, the in-flight gauge the
/// admission check reads, and the counters the stats reply reports.  One
/// instance per tenant *name* — two connections saying hello as the same
/// tenant share quotas (that is what makes them a tenant, not a session).
struct Tenant {
  std::mutex mutex;
  std::set<std::string> designs;  ///< tenant-local names registered
  std::size_t in_flight = 0;      ///< admitted, result not yet written
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t failed = 0;
};

}  // namespace

struct Server::Impl {
  Impl(rt::DevicePool pool_in, ServerOptions options_in)
      : options(std::move(options_in)), pool(std::move(pool_in)) {}

  ServerOptions options;
  rt::DevicePool pool;
  Socket listener;
  std::uint16_t port = 0;
  std::thread accept_thread;
  std::atomic<bool> stopping{false};
  std::mutex stop_mutex;  // serializes stop() callers
  bool stopped = false;
  std::atomic<std::uint64_t> next_session_id{1};

  std::mutex tenants_mutex;
  std::map<std::string, std::shared_ptr<Tenant>> tenants;

  mutable std::mutex stats_mutex;
  ServerStats counters;

  /// One connection: a reader thread decoding frames and a completer
  /// thread writing job results back in submit order.  The reader owns the
  /// session lifecycle — it joins the completer before finishing, so the
  /// accept loop (or stop()) only ever joins `reader`.
  struct Session {
    Impl* server = nullptr;
    Socket socket;
    std::shared_ptr<Tenant> tenant;
    std::string tenant_name;
    std::uint64_t session_id = 0;

    std::mutex write_mutex;  // reader + completer share the socket
    std::thread reader;
    std::thread completer;

    std::mutex queue_mutex;
    std::condition_variable queue_cv;
    std::deque<std::pair<std::uint64_t, rt::Job>> pending;  // FIFO
    bool reader_done = false;

    std::atomic<bool> finished{false};  // both threads have returned
  };

  std::mutex sessions_mutex;
  std::vector<std::unique_ptr<Session>> sessions;

  // ---- helpers -------------------------------------------------------------

  [[nodiscard]] std::shared_ptr<Tenant> tenant_for(const std::string& name) {
    const std::lock_guard<std::mutex> lock(tenants_mutex);
    std::shared_ptr<Tenant>& slot = tenants[name];
    if (!slot) slot = std::make_shared<Tenant>();
    return slot;
  }

  /// Fleet-wide queued + running jobs — the admission check's load probe
  /// (lock-light snapshots per device, see Device::queue_depth).
  [[nodiscard]] std::size_t pool_depth() const {
    std::size_t depth = 0;
    for (std::size_t i = 0; i < pool.device_count(); ++i)
      depth += pool.device(i).queue_depth();
    return depth;
  }

  void note_protocol_error() {
    const std::lock_guard<std::mutex> lock(stats_mutex);
    ++counters.protocol_errors;
  }

  void send(Session& session, const std::vector<std::uint8_t>& frame) {
    // Best-effort: a send failure means the peer is gone or has stopped
    // reading (session_send_timeout_ms bounds the wedged-peer case).
    // Shut the socket down so the reader wakes immediately and every
    // later send fails fast instead of each eating its own timeout — the
    // session tears down and the tenant's quota drains.
    const std::lock_guard<std::mutex> lock(session.write_mutex);
    if (!write_frame(session.socket, frame).ok())
      session.socket.shutdown_both();
  }

  void send_error(Session& session, std::uint64_t request_id,
                  const Status& status) {
    ErrorMsg msg;
    msg.request_id = request_id;
    msg.code = status.code();
    msg.message = status.message();
    send(session, encode_error(msg));
  }

  // ---- per-message handlers (reader thread) --------------------------------

  void handle_register(Session& session, RegisterDesignMsg msg) {
    // The wire dimensions are hostile until checked: Fabric::create
    // allocates rows x cols blocks, so a forged 0xFFFF x 0xFFFF header
    // would request hundreds of GB before try_load_fabric ever saw the
    // bitstream.  A design can only load here if it fits the pool's
    // array (pad_to grows it to exactly rows() x cols()), so anything
    // larger is rejected from the 4 header bytes alone, nothing sized by
    // the peer.
    if (static_cast<int>(msg.rows) > pool.rows() ||
        static_cast<int>(msg.cols) > pool.cols())
      return send_error(
          session, msg.request_id,
          Status::invalid_argument(
              "serve: design dimensions " + std::to_string(msg.rows) + "x" +
              std::to_string(msg.cols) + " exceed the pool's " +
              std::to_string(pool.rows()) + "x" + std::to_string(pool.cols()) +
              " array"));
    // Rebuild a CompiledDesign from the wire image.  The bitstream is the
    // authority: try_load_fabric re-validates magic, dimensions, size, and
    // CRC exactly as a reconfiguration controller would, so a forged
    // content_hash can at worst miss a dedupe — same_content's byte
    // compare decides identity.
    auto fabric = core::Fabric::create(msg.rows, msg.cols);
    if (!fabric.ok()) return send_error(session, msg.request_id, fabric.status());
    platform::CompiledDesign design;
    design.fabric = std::move(*fabric);
    if (Status s = core::try_load_fabric(design.fabric, msg.bitstream);
        !s.ok())
      return send_error(session, msg.request_id, s);
    design.bitstream = std::move(msg.bitstream);
    design.delays = msg.delays;
    design.inputs = std::move(msg.inputs);
    design.outputs = std::move(msg.outputs);
    design.state = std::move(msg.state);
    design.content_hash = msg.content_hash;

    // Quota + registration under the tenant lock: the resident-design
    // bound must hold even against a concurrent register on a sibling
    // connection of the same tenant (registration is rare; per-tenant
    // contention here is fine).
    Tenant& tenant = *session.tenant;
    const std::lock_guard<std::mutex> lock(tenant.mutex);
    const bool is_new = tenant.designs.find(msg.design) == tenant.designs.end();
    if (is_new && tenant.designs.size() >= options.max_designs_per_tenant)
      return send_error(
          session, msg.request_id,
          Status::resource_exhausted(
              "tenant '" + session.tenant_name + "' is at its quota of " +
              std::to_string(options.max_designs_per_tenant) +
              " resident designs"));
    if (Status s = pool.register_design(session.tenant_name + "/" + msg.design,
                                        design);
        !s.ok())
      return send_error(session, msg.request_id, s);
    tenant.designs.insert(msg.design);
    RegisterAckMsg ack;
    ack.request_id = msg.request_id;
    send(session, encode_register_ack(ack));
  }

  void handle_submit(Session& session, SubmitBatchMsg msg) {
    Tenant& tenant = *session.tenant;
    // Tenant namespace: only names this tenant registered resolve.  The
    // scoped pool key alone already isolates (names cannot contain '/'),
    // but checking the namespace first yields the honest kNotFound instead
    // of leaking whether some other tenant uses the name.
    {
      const std::lock_guard<std::mutex> lock(tenant.mutex);
      if (tenant.designs.find(msg.design) == tenant.designs.end())
        return send_error(session, msg.request_id,
                          Status::not_found("design '" + msg.design +
                                            "' is not registered by tenant '" +
                                            session.tenant_name + "'"));
      // Admission, gate 1: the tenant's own in-flight bound.
      if (tenant.in_flight >= options.max_inflight_per_tenant) {
        ++tenant.rejected;
        {
          const std::lock_guard<std::mutex> slock(stats_mutex);
          ++counters.jobs_rejected;
        }
        BusyMsg busy;
        busy.request_id = msg.request_id;
        busy.reason = "tenant '" + session.tenant_name + "' has " +
                      std::to_string(tenant.in_flight) +
                      " jobs in flight (limit " +
                      std::to_string(options.max_inflight_per_tenant) + ")";
        return send(session, encode_busy(busy));
      }
      // Admission, gate 2: the fleet-wide high-water mark.
      if (const std::size_t depth = pool_depth();
          depth >= options.max_pool_depth) {
        ++tenant.rejected;
        {
          const std::lock_guard<std::mutex> slock(stats_mutex);
          ++counters.jobs_rejected;
        }
        BusyMsg busy;
        busy.request_id = msg.request_id;
        busy.reason = "pool queue depth " + std::to_string(depth) +
                      " is at the high-water mark (" +
                      std::to_string(options.max_pool_depth) + ")";
        return send(session, encode_busy(busy));
      }
      ++tenant.in_flight;
      ++tenant.submitted;
    }
    {
      const std::lock_guard<std::mutex> lock(stats_mutex);
      ++counters.jobs_admitted;
    }

    auto vectors = platform::unpack_bit_planes(msg.planes, msg.vector_count,
                                               msg.input_count);
    Result<rt::Job> job = [&]() -> Result<rt::Job> {
      if (!vectors.ok()) return vectors.status();
      rt::SubmitOptions submit;
      submit.priority = msg.priority;
      submit.run.engine = msg.engine;
      submit.cycles = msg.cycles;
      if (msg.deadline_ms > 0)
        submit.deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(msg.deadline_ms);
      return pool.submit(session.tenant_name + "/" + msg.design,
                         std::move(*vectors), submit);
    }();
    if (!job.ok()) {
      {
        const std::lock_guard<std::mutex> lock(tenant.mutex);
        --tenant.in_flight;
        ++tenant.failed;
      }
      return send_error(session, msg.request_id, job.status());
    }
    {
      const std::lock_guard<std::mutex> lock(session.queue_mutex);
      session.pending.emplace_back(msg.request_id, std::move(*job));
    }
    session.queue_cv.notify_one();
  }

  void handle_stats(Session& session) {
    StatsReplyMsg reply;
    reply.session_id = session.session_id;
    {
      Tenant& tenant = *session.tenant;
      const std::lock_guard<std::mutex> lock(tenant.mutex);
      reply.jobs_submitted = tenant.submitted;
      reply.jobs_completed = tenant.completed;
      reply.jobs_rejected = tenant.rejected;
      reply.jobs_failed = tenant.failed;
      reply.in_flight = tenant.in_flight;
      reply.designs_resident = tenant.designs.size();
    }
    reply.pool_queue_depth = pool_depth();
    send(session, encode_stats_reply(reply));
  }

  // ---- session threads -----------------------------------------------------

  void completer_loop(Session& session) {
    while (true) {
      std::uint64_t request_id = 0;
      rt::Job job;
      {
        std::unique_lock<std::mutex> lock(session.queue_mutex);
        session.queue_cv.wait(lock, [&] {
          return session.reader_done || !session.pending.empty();
        });
        if (session.pending.empty()) return;  // reader_done and drained
        request_id = session.pending.front().first;
        job = std::move(session.pending.front().second);
        session.pending.pop_front();
      }
      auto result = job.wait();
      {
        const std::lock_guard<std::mutex> lock(session.tenant->mutex);
        --session.tenant->in_flight;
        ++(result.ok() ? session.tenant->completed : session.tenant->failed);
      }
      if (!result.ok()) {
        send_error(session, request_id, result.status());
        continue;
      }
      ResultMsg msg;
      msg.request_id = request_id;
      msg.vector_count = static_cast<std::uint32_t>(result->size());
      msg.output_count = static_cast<std::uint16_t>(
          result->empty() ? 0 : result->front().size());
      msg.planes = platform::pack_bit_planes(*result, msg.output_count);
      send(session, encode_result(msg));
    }
  }

  void reader_loop(Session& session) {
    bool opened = false;
    // Handshake: the first frame must be a hello naming the tenant.
    if (auto frame = read_frame(session.socket); frame.ok()) {
      if (auto hello = decode_hello(*frame); hello.ok()) {
        session.tenant_name = hello->tenant;
        session.tenant = tenant_for(hello->tenant);
        session.session_id = next_session_id.fetch_add(1);
        HelloAckMsg ack;
        ack.session_id = session.session_id;
        send(session, encode_hello_ack(ack));
        opened = true;
        const std::lock_guard<std::mutex> lock(stats_mutex);
        ++counters.sessions_opened;
        ++counters.sessions_active;
      } else {
        note_protocol_error();
        send_error(session, 0, hello.status());
      }
    } else if (frame.status().code() != StatusCode::kUnavailable) {
      note_protocol_error();
      send_error(session, 0, frame.status());
    }

    while (opened && !stopping.load()) {
      auto frame = read_frame(session.socket);
      if (!frame.ok()) {
        // A clean close at a frame boundary is the normal goodbye; anything
        // else (truncation, bad magic, CRC) poisons the stream — tell the
        // peer once, then hang up.  Nothing server-side was touched.
        if (frame.status().code() != StatusCode::kUnavailable) {
          note_protocol_error();
          send_error(session, 0, frame.status());
        }
        break;
      }
      switch (frame->type) {
        case MsgType::kRegisterDesign: {
          auto msg = decode_register_design(*frame);
          if (!msg.ok()) {
            note_protocol_error();
            send_error(session, 0, msg.status());
            break;
          }
          handle_register(session, std::move(*msg));
          continue;
        }
        case MsgType::kSubmitBatch: {
          auto msg = decode_submit_batch(*frame);
          if (!msg.ok()) {
            note_protocol_error();
            send_error(session, 0, msg.status());
            break;
          }
          handle_submit(session, std::move(*msg));
          continue;
        }
        case MsgType::kStatsRequest: {
          auto msg = decode_stats_request(*frame);
          if (!msg.ok()) {
            note_protocol_error();
            send_error(session, 0, msg.status());
            break;
          }
          handle_stats(session);
          continue;
        }
        default:
          note_protocol_error();
          send_error(session, 0,
                     Status::invalid_argument(
                         "serve: unexpected message type " +
                         std::to_string(static_cast<int>(frame->type)) +
                         " on an open session"));
          break;
      }
      break;  // only decode failures / unexpected types fall through
    }

    // Wind down: no more submits will arrive; let the completer drain the
    // in-flight tail (their results still go out if the peer is reading).
    {
      const std::lock_guard<std::mutex> lock(session.queue_mutex);
      session.reader_done = true;
    }
    session.queue_cv.notify_one();
    if (session.completer.joinable()) session.completer.join();
    // Close our half once the completer has flushed the in-flight tail, so
    // a peer that was told goodbye (or got an error) sees EOF instead of a
    // silent open socket.
    session.socket.shutdown_both();
    if (opened) {
      const std::lock_guard<std::mutex> lock(stats_mutex);
      --counters.sessions_active;
    }
    session.finished.store(true);
  }

  void accept_loop() {
    while (true) {
      auto conn = accept_tcp(listener);
      if (!conn.ok() || stopping.load()) break;
      auto session = std::make_unique<Session>();
      session->server = this;
      session->socket = std::move(*conn);
      session->socket.set_send_timeout_ms(options.session_send_timeout_ms);
      Session* raw = session.get();
      raw->completer = std::thread([this, raw] { completer_loop(*raw); });
      raw->reader = std::thread([this, raw] { reader_loop(*raw); });
      const std::lock_guard<std::mutex> lock(sessions_mutex);
      // Reap sessions whose threads have fully wound down, so a
      // long-running server does not accumulate one record per closed
      // connection.
      for (auto it = sessions.begin(); it != sessions.end();) {
        if ((*it)->finished.load()) {
          if ((*it)->reader.joinable()) (*it)->reader.join();
          it = sessions.erase(it);
        } else {
          ++it;
        }
      }
      sessions.push_back(std::move(session));
    }
  }

  void stop() {
    {
      const std::lock_guard<std::mutex> lock(stop_mutex);
      if (stopped) return;
      stopped = true;
    }
    stopping.store(true);
    listener.shutdown_both();
    if (accept_thread.joinable()) accept_thread.join();
    std::vector<std::unique_ptr<Session>> to_join;
    {
      const std::lock_guard<std::mutex> lock(sessions_mutex);
      to_join.swap(sessions);
    }
    for (auto& session : to_join) session->socket.shutdown_both();
    for (auto& session : to_join)
      if (session->reader.joinable()) session->reader.join();
  }
};

Result<Server> Server::create(rt::DevicePool pool, ServerOptions options) {
  if (options.max_designs_per_tenant < 1 ||
      options.max_inflight_per_tenant < 1 || options.max_pool_depth < 1)
    return Status::invalid_argument(
        "serve: every ServerOptions quota must be >= 1");
  auto impl = std::make_unique<Impl>(std::move(pool), std::move(options));
  auto listener = listen_tcp(impl->options.bind_address, impl->options.port,
                             &impl->port);
  if (!listener.ok()) return listener.status();
  impl->listener = std::move(*listener);
  Impl* raw = impl.get();
  impl->accept_thread = std::thread([raw] { raw->accept_loop(); });
  return Server(std::move(impl));
}

Server::Server(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}

Server::Server(Server&&) noexcept = default;

Server& Server::operator=(Server&& other) noexcept {
  if (this != &other) {
    if (impl_) impl_->stop();
    impl_ = std::move(other.impl_);
  }
  return *this;
}

Server::~Server() {
  if (impl_) impl_->stop();
}

std::uint16_t Server::port() const noexcept { return impl_->port; }

rt::DevicePool& Server::pool() noexcept { return impl_->pool; }

void Server::stop() { impl_->stop(); }

ServerStats Server::stats() const {
  const std::lock_guard<std::mutex> lock(impl_->stats_mutex);
  return impl_->counters;
}

}  // namespace pp::serve
