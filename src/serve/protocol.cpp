#include "serve/protocol.h"

#include <cstring>

#include "core/bitstream.h"  // core::crc32

namespace pp::serve {

namespace {

// ---- little-endian payload writer -----------------------------------------

struct Writer {
  std::vector<std::uint8_t> bytes;

  void u8(std::uint8_t v) { bytes.push_back(v); }
  void u16(std::uint16_t v) {
    for (int i = 0; i < 2; ++i)
      bytes.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      bytes.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      bytes.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
  void str(std::string_view s) {
    // u16 length prefix; encoders truncate instead of emitting an invalid
    // length (only human-readable messages ever approach the bound).
    const std::size_t n = std::min<std::size_t>(s.size(), 0xFFFF);
    u16(static_cast<std::uint16_t>(n));
    bytes.insert(bytes.end(), s.begin(), s.begin() + n);
  }
  void blob32(std::span<const std::uint8_t> b) {
    u32(static_cast<std::uint32_t>(b.size()));
    bytes.insert(bytes.end(), b.begin(), b.end());
  }
};

// ---- bounds-checked little-endian payload reader --------------------------

struct Reader {
  std::span<const std::uint8_t> bytes;
  std::size_t pos = 0;
  Status status;  // first failure; all reads after a failure return zeros

  [[nodiscard]] bool fail(std::string what) {
    if (status.ok())
      status = Status::out_of_range("serve payload: truncated reading " +
                                    std::move(what));
    return false;
  }
  [[nodiscard]] bool need(std::size_t n, const char* what) {
    if (!status.ok()) return false;
    if (bytes.size() - pos < n) return fail(what);
    return true;
  }
  std::uint8_t u8(const char* what) {
    if (!need(1, what)) return 0;
    return bytes[pos++];
  }
  std::uint16_t u16(const char* what) {
    if (!need(2, what)) return 0;
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i)
      v |= static_cast<std::uint16_t>(bytes[pos++]) << (8 * i);
    return v;
  }
  std::uint32_t u32(const char* what) {
    if (!need(4, what)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(bytes[pos++]) << (8 * i);
    return v;
  }
  std::uint64_t u64(const char* what) {
    if (!need(8, what)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(bytes[pos++]) << (8 * i);
    return v;
  }
  std::string str(const char* what) {
    const std::uint16_t n = u16(what);
    if (!need(n, what)) return {};
    std::string s(reinterpret_cast<const char*>(bytes.data() + pos), n);
    pos += n;
    return s;
  }
  std::vector<std::uint8_t> blob32(const char* what) {
    const std::uint32_t n = u32(what);
    if (!need(n, what)) return {};
    std::vector<std::uint8_t> b(bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                                bytes.begin() +
                                    static_cast<std::ptrdiff_t>(pos + n));
    pos += n;
    return b;
  }
  /// Decode epilogue: the payload must be consumed exactly — trailing
  /// garbage is as malformed as a truncation.
  [[nodiscard]] Status finish(const char* msg_name) {
    if (!status.ok()) return status;
    if (pos != bytes.size())
      return Status::invalid_argument(std::string("serve payload: ") +
                                      msg_name + " carries " +
                                      std::to_string(bytes.size() - pos) +
                                      " trailing bytes");
    return Status();
  }
};

void put_u32(std::vector<std::uint8_t>& bytes, std::size_t at,
             std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    bytes[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF);
}

[[nodiscard]] Status expect_type(const Frame& frame, MsgType type,
                                 const char* msg_name) {
  if (frame.type != type)
    return Status::invalid_argument(
        std::string("serve: frame is not a ") + msg_name + " (type " +
        std::to_string(static_cast<int>(frame.type)) + ")");
  return Status();
}

/// SoA plane-size validation shared by kSubmitBatch and kResult: exact
/// byte count and canonical (zero) padding, without materializing vectors.
[[nodiscard]] Status validate_planes(const std::vector<std::uint8_t>& planes,
                                     std::uint32_t count, std::uint16_t width,
                                     const char* msg_name) {
  const std::size_t plane_bytes = (static_cast<std::size_t>(count) + 7) / 8;
  if (planes.size() != static_cast<std::size_t>(width) * plane_bytes)
    return Status::out_of_range(
        std::string("serve: ") + msg_name + " announces " +
        std::to_string(count) + " vectors x " + std::to_string(width) +
        " bits but carries " + std::to_string(planes.size()) +
        " plane bytes");
  if (count % 8 != 0)
    for (std::size_t i = 0; i < width; ++i) {
      const std::uint8_t last = planes[i * plane_bytes + plane_bytes - 1];
      if ((last & static_cast<std::uint8_t>(~((1u << (count % 8)) - 1))) != 0)
        return Status::invalid_argument(std::string("serve: ") + msg_name +
                                        " has non-zero pad bits in plane " +
                                        std::to_string(i));
    }
  return Status();
}

void write_bindings(Writer& w,
                    const std::vector<platform::PortBinding>& bindings) {
  w.u16(static_cast<std::uint16_t>(bindings.size()));
  for (const platform::PortBinding& b : bindings) {
    w.str(b.name);
    w.u32(static_cast<std::uint32_t>(b.at.r));
    w.u32(static_cast<std::uint32_t>(b.at.c));
    w.u32(static_cast<std::uint32_t>(b.at.line));
  }
}

void write_signal_at(Writer& w, const map::SignalAt& at) {
  w.u32(static_cast<std::uint32_t>(at.r));
  w.u32(static_cast<std::uint32_t>(at.c));
  w.u32(static_cast<std::uint32_t>(at.line));
}

void write_state_bindings(Writer& w,
                          const std::vector<platform::StateBinding>& state) {
  w.u16(static_cast<std::uint16_t>(state.size()));
  for (const platform::StateBinding& b : state) {
    w.str(b.name);
    write_signal_at(w, b.q_pad);
    write_signal_at(w, b.d_at);
  }
}

[[nodiscard]] bool read_signal_at(Reader& r, const char* what,
                                  map::SignalAt& out) {
  const std::uint32_t rr = r.u32(what), cc = r.u32(what), line = r.u32(what);
  if (!r.status.ok()) return false;
  if (rr > 0x7FFFFFFF || cc > 0x7FFFFFFF || line > 0x7FFFFFFF) {
    r.status = Status::invalid_argument(
        std::string("serve: ") + what + " binding coordinate out of range");
    return false;
  }
  out = {static_cast<int>(rr), static_cast<int>(cc), static_cast<int>(line)};
  return true;
}

[[nodiscard]] std::vector<platform::StateBinding> read_state_bindings(
    Reader& r, const char* what) {
  std::vector<platform::StateBinding> out;
  const std::uint16_t n = r.u16(what);
  for (std::uint16_t i = 0; i < n && r.status.ok(); ++i) {
    platform::StateBinding b;
    b.name = r.str(what);
    if (!read_signal_at(r, what, b.q_pad)) break;
    if (!read_signal_at(r, what, b.d_at)) break;
    out.push_back(std::move(b));
  }
  return out;
}

[[nodiscard]] std::vector<platform::PortBinding> read_bindings(
    Reader& r, const char* what) {
  // Coordinates are bounded well below 2^31 by any real fabric; reject
  // values that would go negative through the int cast so a hostile frame
  // can never smuggle a negative index past the resolver.
  std::vector<platform::PortBinding> out;
  const std::uint16_t n = r.u16(what);
  for (std::uint16_t i = 0; i < n && r.status.ok(); ++i) {
    platform::PortBinding b;
    b.name = r.str(what);
    const std::uint32_t rr = r.u32(what), cc = r.u32(what),
                        line = r.u32(what);
    if (!r.status.ok()) break;
    if (rr > 0x7FFFFFFF || cc > 0x7FFFFFFF || line > 0x7FFFFFFF) {
      r.status = Status::invalid_argument(
          std::string("serve: ") + what + " binding coordinate out of range");
      break;
    }
    b.at = {static_cast<int>(rr), static_cast<int>(cc),
            static_cast<int>(line)};
    out.push_back(std::move(b));
  }
  return out;
}

}  // namespace

// ---- frame codec -----------------------------------------------------------

std::vector<std::uint8_t> encode_frame(MsgType type,
                                       std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(kHeaderBytes + payload.size() + kTrailerBytes);
  bytes.insert(bytes.end(), std::begin(kMagic), std::end(kMagic));
  bytes.push_back(kProtocolVersion);
  bytes.push_back(static_cast<std::uint8_t>(type));
  bytes.resize(bytes.size() + 4);
  put_u32(bytes, bytes.size() - 4,
          static_cast<std::uint32_t>(payload.size()));
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  const std::uint32_t crc = core::crc32(bytes);
  bytes.resize(bytes.size() + 4);
  put_u32(bytes, bytes.size() - 4, crc);
  return bytes;
}

Result<FrameHeader> decode_header(std::span<const std::uint8_t> bytes) {
  if (bytes.size() != kHeaderBytes)
    return Status::out_of_range("serve: frame header is " +
                                std::to_string(kHeaderBytes) +
                                " bytes, got " + std::to_string(bytes.size()));
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
    return Status::invalid_argument("serve: bad frame magic (want \"PPSV\")");
  if (bytes[4] != kProtocolVersion)
    return Status::invalid_argument(
        "serve: unsupported protocol version " + std::to_string(bytes[4]) +
        " (this peer speaks " + std::to_string(kProtocolVersion) + ")");
  const std::uint8_t type = bytes[5];
  if (type < static_cast<std::uint8_t>(MsgType::kHello) ||
      type > static_cast<std::uint8_t>(MsgType::kStatsReply))
    return Status::invalid_argument("serve: unknown message type " +
                                    std::to_string(type));
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<std::uint32_t>(bytes[6 + i]) << (8 * i);
  if (len > kMaxPayloadBytes)
    return Status::out_of_range("serve: payload length " +
                                std::to_string(len) + " exceeds the " +
                                std::to_string(kMaxPayloadBytes) +
                                "-byte cap");
  FrameHeader header;
  header.type = static_cast<MsgType>(type);
  header.payload_len = len;
  return header;
}

Result<Frame> decode_frame(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderBytes + kTrailerBytes)
    return Status::out_of_range(
        "serve: frame of " + std::to_string(bytes.size()) +
        " bytes is shorter than header + CRC");
  auto header = decode_header(bytes.first(kHeaderBytes));
  if (!header.ok()) return header.status();
  const std::size_t want =
      kHeaderBytes + header->payload_len + kTrailerBytes;
  if (bytes.size() != want)
    return Status::out_of_range(
        "serve: frame is " + std::to_string(bytes.size()) +
        " bytes but the header announces " + std::to_string(want));
  const auto body = bytes.first(bytes.size() - kTrailerBytes);
  std::uint32_t crc = 0;
  for (int i = 0; i < 4; ++i)
    crc |= static_cast<std::uint32_t>(bytes[body.size() + i]) << (8 * i);
  if (core::crc32(body) != crc)
    return Status::data_loss("serve: frame CRC mismatch");
  Frame frame;
  frame.type = header->type;
  frame.payload.assign(body.begin() + kHeaderBytes, body.end());
  return frame;
}

Status validate_name(std::string_view what, std::string_view name) {
  if (name.empty())
    return Status::invalid_argument("serve: " + std::string(what) +
                                    " must not be empty");
  if (name.size() > kMaxNameBytes)
    return Status::invalid_argument(
        "serve: " + std::string(what) + " exceeds " +
        std::to_string(kMaxNameBytes) + " bytes");
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == '-';
    if (!ok)
      return Status::invalid_argument(
          "serve: " + std::string(what) +
          " may only contain [A-Za-z0-9_.-] (got '" + std::string(name) +
          "')");
  }
  return Status();
}

std::uint8_t status_code_to_wire(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return 0;
    case StatusCode::kInvalidArgument: return 1;
    case StatusCode::kFailedPrecondition: return 2;
    case StatusCode::kOutOfRange: return 3;
    case StatusCode::kNotFound: return 4;
    case StatusCode::kResourceExhausted: return 5;
    case StatusCode::kDataLoss: return 6;
    case StatusCode::kUnimplemented: return 7;
    case StatusCode::kDeadlineExceeded: return 8;
    case StatusCode::kUnavailable: return 9;
    case StatusCode::kInternal: return 10;
  }
  return 10;  // anything unmapped degrades to kInternal
}

Result<StatusCode> status_code_from_wire(std::uint8_t wire) {
  switch (wire) {
    case 0: return StatusCode::kOk;
    case 1: return StatusCode::kInvalidArgument;
    case 2: return StatusCode::kFailedPrecondition;
    case 3: return StatusCode::kOutOfRange;
    case 4: return StatusCode::kNotFound;
    case 5: return StatusCode::kResourceExhausted;
    case 6: return StatusCode::kDataLoss;
    case 7: return StatusCode::kUnimplemented;
    case 8: return StatusCode::kDeadlineExceeded;
    case 9: return StatusCode::kUnavailable;
    case 10: return StatusCode::kInternal;
    default:
      return Status::invalid_argument("serve: unknown wire status code " +
                                      std::to_string(wire));
  }
}

// ---- hello -----------------------------------------------------------------

std::vector<std::uint8_t> encode_hello(const HelloMsg& msg) {
  Writer w;
  w.str(msg.tenant);
  return encode_frame(MsgType::kHello, w.bytes);
}

Result<HelloMsg> decode_hello(const Frame& frame) {
  if (Status s = expect_type(frame, MsgType::kHello, "hello"); !s.ok())
    return s;
  Reader r{frame.payload};
  HelloMsg msg;
  msg.tenant = r.str("tenant");
  if (Status s = r.finish("hello"); !s.ok()) return s;
  if (Status s = validate_name("tenant name", msg.tenant); !s.ok()) return s;
  return msg;
}

// ---- hello ack -------------------------------------------------------------

std::vector<std::uint8_t> encode_hello_ack(const HelloAckMsg& msg) {
  Writer w;
  w.u64(msg.session_id);
  return encode_frame(MsgType::kHelloAck, w.bytes);
}

Result<HelloAckMsg> decode_hello_ack(const Frame& frame) {
  if (Status s = expect_type(frame, MsgType::kHelloAck, "hello_ack"); !s.ok())
    return s;
  Reader r{frame.payload};
  HelloAckMsg msg;
  msg.session_id = r.u64("session_id");
  if (Status s = r.finish("hello_ack"); !s.ok()) return s;
  return msg;
}

// ---- register design -------------------------------------------------------

std::vector<std::uint8_t> encode_register_design(
    const RegisterDesignMsg& msg) {
  Writer w;
  w.u64(msg.request_id);
  w.str(msg.design);
  w.u16(msg.rows);
  w.u16(msg.cols);
  w.u64(msg.delays.nand_ps);
  w.u64(msg.delays.driver_ps);
  w.u64(msg.delays.pass_ps);
  w.u64(msg.delays.lfb_ps);
  w.u64(msg.content_hash);
  write_bindings(w, msg.inputs);
  write_bindings(w, msg.outputs);
  write_state_bindings(w, msg.state);
  w.blob32(msg.bitstream);
  return encode_frame(MsgType::kRegisterDesign, w.bytes);
}

Result<RegisterDesignMsg> decode_register_design(const Frame& frame) {
  if (Status s =
          expect_type(frame, MsgType::kRegisterDesign, "register_design");
      !s.ok())
    return s;
  Reader r{frame.payload};
  RegisterDesignMsg msg;
  msg.request_id = r.u64("request_id");
  msg.design = r.str("design name");
  msg.rows = r.u16("rows");
  msg.cols = r.u16("cols");
  msg.delays.nand_ps = r.u64("nand_ps");
  msg.delays.driver_ps = r.u64("driver_ps");
  msg.delays.pass_ps = r.u64("pass_ps");
  msg.delays.lfb_ps = r.u64("lfb_ps");
  msg.content_hash = r.u64("content_hash");
  msg.inputs = read_bindings(r, "inputs");
  msg.outputs = read_bindings(r, "outputs");
  msg.state = read_state_bindings(r, "state");
  msg.bitstream = r.blob32("bitstream");
  if (Status s = r.finish("register_design"); !s.ok()) return s;
  if (Status s = validate_name("design name", msg.design); !s.ok()) return s;
  if (msg.rows == 0 || msg.cols == 0)
    return Status::invalid_argument(
        "serve: register_design carries a zero fabric dimension");
  for (const auto* bindings : {&msg.inputs, &msg.outputs})
    for (const platform::PortBinding& b : *bindings)
      if (Status s = validate_name("port name", b.name); !s.ok()) return s;
  for (const platform::StateBinding& b : msg.state)
    if (Status s = validate_name("state name", b.name); !s.ok()) return s;
  return msg;
}

// ---- register ack ----------------------------------------------------------

std::vector<std::uint8_t> encode_register_ack(const RegisterAckMsg& msg) {
  Writer w;
  w.u64(msg.request_id);
  return encode_frame(MsgType::kRegisterAck, w.bytes);
}

Result<RegisterAckMsg> decode_register_ack(const Frame& frame) {
  if (Status s = expect_type(frame, MsgType::kRegisterAck, "register_ack");
      !s.ok())
    return s;
  Reader r{frame.payload};
  RegisterAckMsg msg;
  msg.request_id = r.u64("request_id");
  if (Status s = r.finish("register_ack"); !s.ok()) return s;
  return msg;
}

// ---- submit batch ----------------------------------------------------------

std::vector<std::uint8_t> encode_submit_batch(const SubmitBatchMsg& msg) {
  Writer w;
  w.u64(msg.request_id);
  w.str(msg.design);
  w.u8(static_cast<std::uint8_t>(msg.priority));
  w.u32(msg.deadline_ms);
  w.u8(static_cast<std::uint8_t>(msg.engine));
  w.u32(msg.cycles);
  w.u32(msg.vector_count);
  w.u16(msg.input_count);
  w.blob32(msg.planes);
  return encode_frame(MsgType::kSubmitBatch, w.bytes);
}

Result<SubmitBatchMsg> decode_submit_batch(const Frame& frame) {
  if (Status s = expect_type(frame, MsgType::kSubmitBatch, "submit_batch");
      !s.ok())
    return s;
  Reader r{frame.payload};
  SubmitBatchMsg msg;
  msg.request_id = r.u64("request_id");
  msg.design = r.str("design name");
  const std::uint8_t priority = r.u8("priority");
  msg.deadline_ms = r.u32("deadline_ms");
  const std::uint8_t engine = r.u8("engine");
  msg.cycles = r.u32("cycles");
  msg.vector_count = r.u32("vector_count");
  msg.input_count = r.u16("input_count");
  msg.planes = r.blob32("stimulus planes");
  if (Status s = r.finish("submit_batch"); !s.ok()) return s;
  if (Status s = validate_name("design name", msg.design); !s.ok()) return s;
  if (priority > static_cast<std::uint8_t>(rt::Priority::kInteractive))
    return Status::invalid_argument("serve: unknown priority class " +
                                    std::to_string(priority));
  msg.priority = static_cast<rt::Priority>(priority);
  if (engine > static_cast<std::uint8_t>(platform::Engine::kJit))
    return Status::invalid_argument("serve: unknown engine selector " +
                                    std::to_string(engine));
  msg.engine = static_cast<platform::Engine>(engine);
  if (msg.vector_count == 0)
    return Status::invalid_argument("serve: submit_batch carries no vectors");
  if (msg.vector_count > kMaxVectorsPerBatch)
    return Status::out_of_range(
        "serve: submit_batch announces " + std::to_string(msg.vector_count) +
        " vectors (cap " + std::to_string(kMaxVectorsPerBatch) + ")");
  // Zero-width vectors are meaningless and, worse, would detach
  // vector_count from the plane-size check (0 planes of any count are 0
  // bytes) — the unpack allocation must stay bounded by the wire bytes.
  if (msg.input_count == 0)
    return Status::invalid_argument(
        "serve: submit_batch carries zero-width vectors");
  if (Status s = validate_planes(msg.planes, msg.vector_count,
                                 msg.input_count, "submit_batch");
      !s.ok())
    return s;
  // Ragged clocked batches are rejected at the wire, before admission or
  // queueing ever sees them: a stream-major batch must divide into whole
  // streams or the register-file layout is meaningless.
  if (msg.cycles > 0 && msg.vector_count % msg.cycles != 0)
    return Status::invalid_argument(
        "serve: submit_batch announces " + std::to_string(msg.vector_count) +
        " vectors, which do not divide into whole " +
        std::to_string(msg.cycles) + "-cycle streams");
  return msg;
}

// ---- result ----------------------------------------------------------------

std::vector<std::uint8_t> encode_result(const ResultMsg& msg) {
  Writer w;
  w.u64(msg.request_id);
  w.u32(msg.vector_count);
  w.u16(msg.output_count);
  w.blob32(msg.planes);
  return encode_frame(MsgType::kResult, w.bytes);
}

Result<ResultMsg> decode_result(const Frame& frame) {
  if (Status s = expect_type(frame, MsgType::kResult, "result"); !s.ok())
    return s;
  Reader r{frame.payload};
  ResultMsg msg;
  msg.request_id = r.u64("request_id");
  msg.vector_count = r.u32("vector_count");
  msg.output_count = r.u16("output_count");
  msg.planes = r.blob32("result planes");
  if (Status s = r.finish("result"); !s.ok()) return s;
  // Results answer submits, so the same count bounds apply; output_count
  // may be 0 (a design with no bound outputs), which is exactly why the
  // vector-count cap — not the plane size — bounds the unpack allocation.
  if (msg.vector_count == 0)
    return Status::invalid_argument("serve: result carries no vectors");
  if (msg.vector_count > kMaxVectorsPerBatch)
    return Status::out_of_range(
        "serve: result announces " + std::to_string(msg.vector_count) +
        " vectors (cap " + std::to_string(kMaxVectorsPerBatch) + ")");
  if (Status s = validate_planes(msg.planes, msg.vector_count,
                                 msg.output_count, "result");
      !s.ok())
    return s;
  return msg;
}

// ---- busy ------------------------------------------------------------------

std::vector<std::uint8_t> encode_busy(const BusyMsg& msg) {
  Writer w;
  w.u64(msg.request_id);
  w.str(msg.reason);
  return encode_frame(MsgType::kBusy, w.bytes);
}

Result<BusyMsg> decode_busy(const Frame& frame) {
  if (Status s = expect_type(frame, MsgType::kBusy, "busy"); !s.ok())
    return s;
  Reader r{frame.payload};
  BusyMsg msg;
  msg.request_id = r.u64("request_id");
  msg.reason = r.str("reason");
  if (Status s = r.finish("busy"); !s.ok()) return s;
  return msg;
}

// ---- error -----------------------------------------------------------------

std::vector<std::uint8_t> encode_error(const ErrorMsg& msg) {
  Writer w;
  w.u64(msg.request_id);
  w.u8(status_code_to_wire(msg.code));
  w.str(msg.message);
  return encode_frame(MsgType::kError, w.bytes);
}

Result<ErrorMsg> decode_error(const Frame& frame) {
  if (Status s = expect_type(frame, MsgType::kError, "error"); !s.ok())
    return s;
  Reader r{frame.payload};
  ErrorMsg msg;
  msg.request_id = r.u64("request_id");
  const std::uint8_t wire = r.u8("status code");
  msg.message = r.str("message");
  if (Status s = r.finish("error"); !s.ok()) return s;
  auto code = status_code_from_wire(wire);
  if (!code.ok()) return code.status();
  if (*code == StatusCode::kOk)
    return Status::invalid_argument(
        "serve: error frame carries an OK status code");
  msg.code = *code;
  return msg;
}

// ---- stats -----------------------------------------------------------------

std::vector<std::uint8_t> encode_stats_request(const StatsRequestMsg&) {
  return encode_frame(MsgType::kStatsRequest, {});
}

Result<StatsRequestMsg> decode_stats_request(const Frame& frame) {
  if (Status s = expect_type(frame, MsgType::kStatsRequest, "stats_request");
      !s.ok())
    return s;
  if (!frame.payload.empty())
    return Status::invalid_argument(
        "serve: stats_request carries an unexpected payload");
  return StatsRequestMsg{};
}

std::vector<std::uint8_t> encode_stats_reply(const StatsReplyMsg& msg) {
  Writer w;
  w.u64(msg.session_id);
  w.u64(msg.jobs_submitted);
  w.u64(msg.jobs_completed);
  w.u64(msg.jobs_rejected);
  w.u64(msg.jobs_failed);
  w.u64(msg.in_flight);
  w.u64(msg.designs_resident);
  w.u64(msg.pool_queue_depth);
  return encode_frame(MsgType::kStatsReply, w.bytes);
}

Result<StatsReplyMsg> decode_stats_reply(const Frame& frame) {
  if (Status s = expect_type(frame, MsgType::kStatsReply, "stats_reply");
      !s.ok())
    return s;
  Reader r{frame.payload};
  StatsReplyMsg msg;
  msg.session_id = r.u64("session_id");
  msg.jobs_submitted = r.u64("jobs_submitted");
  msg.jobs_completed = r.u64("jobs_completed");
  msg.jobs_rejected = r.u64("jobs_rejected");
  msg.jobs_failed = r.u64("jobs_failed");
  msg.in_flight = r.u64("in_flight");
  msg.designs_resident = r.u64("designs_resident");
  msg.pool_queue_depth = r.u64("pool_queue_depth");
  if (Status s = r.finish("stats_reply"); !s.ok()) return s;
  return msg;
}

}  // namespace pp::serve
