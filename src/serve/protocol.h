// serve::protocol — the PPSV wire format of the serving front end.
//
// The serving layer turns the in-process DevicePool into a network
// service, so everything that crosses the wire is hostile until proven
// otherwise.  The codec follows the validation discipline of the bitstream
// formats (docs/bitstream-format.md): length-prefixed binary frames with a
// magic, a version, an explicit payload length, and a trailing CRC-32;
// every decode returns a Status and never trusts a count, a length, or an
// enum value it read from the stream.  Frame layout (docs/
// serving-protocol.md is the normative spec, integers little-endian):
//
//   [0,4)   magic "PPSV"
//   [4,5)   protocol version (kProtocolVersion)
//   [5,6)   message type (MsgType)
//   [6,10)  payload length N (<= kMaxPayloadBytes)
//   [10,10+N) payload (per-type layout)
//   [10+N,14+N) CRC-32 over every preceding byte
//
// Stimulus and results travel as structure-of-arrays bit planes
// (platform::pack_bit_planes — one plane per port, ceil(count/8) bytes
// each), the same orientation the evaluation engines consume, so a server
// can hand wire batches to the executor without transposing per vector.

/// \file
/// \brief serve::protocol — PPSV framed messages between serve::Client
/// and serve::Server (length-prefixed, CRC-guarded, Status-based decode).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/fabric.h"
#include "platform/compiler.h"
#include "platform/executor.h"
#include "rt/job.h"
#include "util/status.h"

namespace pp::serve {

/// Frame magic, first four bytes of every PPSV frame.
inline constexpr char kMagic[4] = {'P', 'P', 'S', 'V'};
/// Protocol version carried in every frame header.  Version 2 added
/// clocked-stream serving: SubmitBatchMsg::cycles and the boundary-register
/// state section of RegisterDesignMsg.  Versions are not negotiated — both
/// peers speak exactly this one, and a frame carrying any other version is
/// rejected at decode.
inline constexpr std::uint8_t kProtocolVersion = 2;
/// Fixed frame prefix: magic + version + type + payload length.
inline constexpr std::size_t kHeaderBytes = 10;
/// Trailing CRC-32 over header + payload.
inline constexpr std::size_t kTrailerBytes = 4;
/// Upper bound on a frame's payload; a header announcing more is rejected
/// before any allocation (wire input sizes nothing on our side).
inline constexpr std::size_t kMaxPayloadBytes = 16u << 20;  // 16 MiB
/// Upper bound on tenant/design identifiers (validate_name).
inline constexpr std::size_t kMaxNameBytes = 64;
/// Upper bound on the vectors of one batch (submit or result).  The plane
/// size check alone bounds `vector_count` by 8x the payload bytes, but
/// unpacking materializes one BitVector *object* per vector — a ~50x
/// amplification of wire bytes for one-bit vectors — so the count gets its
/// own cap, enforced at decode on both peers before anything is allocated.
inline constexpr std::uint32_t kMaxVectorsPerBatch = 1u << 20;

/// Message types of the job protocol.  The lifecycle mirrors the
/// command-scheduler split of mature accelerator runtimes: a session opens
/// (hello/ack), designs become resident (register/ack), jobs flow
/// (submit → result | busy | error), stats are pollable.
enum class MsgType : std::uint8_t {
  kHello = 1,           ///< client → server: open a tenant session
  kHelloAck = 2,        ///< server → client: session accepted
  kRegisterDesign = 3,  ///< client → server: upload a compiled design
  kRegisterAck = 4,     ///< server → client: design resident
  kSubmitBatch = 5,     ///< client → server: one job (SoA stimulus)
  kResult = 6,          ///< server → client: job results (SoA outputs)
  kBusy = 7,            ///< server → client: admission refused, retry later
  kError = 8,           ///< server → client: request failed (Status on wire)
  kStatsRequest = 9,    ///< client → server: poll session/tenant stats
  kStatsReply = 10,     ///< server → client: stats snapshot
};

/// One validated frame: its type and raw payload (per-type decoders below
/// take it from here).
struct Frame {
  MsgType type = MsgType::kError;     ///< message type from the header
  std::vector<std::uint8_t> payload;  ///< payload bytes (CRC already checked)
};

/// The fixed-size prefix of a frame, decoded ahead of the payload so a
/// stream reader knows how many bytes to expect.
struct FrameHeader {
  MsgType type = MsgType::kError;  ///< message type
  std::uint32_t payload_len = 0;   ///< payload bytes that follow the header
};

/// Frame a payload: header + payload + CRC.  The inverse of decode_frame.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    MsgType type, std::span<const std::uint8_t> payload);

/// Validate the fixed prefix of a frame (exactly kHeaderBytes): magic and
/// version (kInvalidArgument), known type (kInvalidArgument), payload
/// length within kMaxPayloadBytes (kOutOfRange).  The CRC is checked by
/// decode_frame once the whole frame is in hand.
[[nodiscard]] Result<FrameHeader> decode_header(
    std::span<const std::uint8_t> bytes);

/// Decode one complete frame (header + payload + CRC, exact size).  Error
/// codes: kInvalidArgument for a bad magic/version/type, kOutOfRange for a
/// size that disagrees with the announced payload length, kDataLoss for a
/// CRC mismatch.
[[nodiscard]] Result<Frame> decode_frame(std::span<const std::uint8_t> bytes);

/// Validate a tenant or design identifier: non-empty, at most
/// kMaxNameBytes, characters from [A-Za-z0-9_.-] only (no separator can
/// collide with the server's tenant-scoped "tenant/name" keys).  `what`
/// labels the failing field in the Status message.
[[nodiscard]] Status validate_name(std::string_view what,
                                   std::string_view name);

/// StatusCode as carried by kError frames.  Unknown wire values fail
/// decode; the mapping is explicit so the enum may be reordered without
/// breaking the wire.
[[nodiscard]] std::uint8_t status_code_to_wire(StatusCode code) noexcept;
/// Inverse of status_code_to_wire (kInvalidArgument on unknown values).
[[nodiscard]] Result<StatusCode> status_code_from_wire(std::uint8_t wire);

// ---- message payloads ------------------------------------------------------

/// kHello: the first frame of every connection.
struct HelloMsg {
  std::string tenant;  ///< tenant identity (validate_name rules)
};

/// kHelloAck: the session is open.
struct HelloAckMsg {
  std::uint64_t session_id = 0;  ///< server-unique session id
};

/// kRegisterDesign: make a compiled design resident under the tenant's
/// namespace.  Carries the pre-padded personality as its bitstream plus
/// everything a remote pool needs to serve it: port bindings, the timing
/// model, and the content hash for cross-tenant dedupe (the server's byte
/// compare stays authoritative — a forged hash can never alias different
/// content).  Sequential designs are not servable over the job protocol;
/// Client::register_design rejects them before encoding.
struct RegisterDesignMsg {
  std::uint64_t request_id = 0;  ///< echoed in the ack / error
  std::string design;            ///< tenant-local design name
  std::uint16_t rows = 0;        ///< fabric rows of the uploaded bitstream
  std::uint16_t cols = 0;        ///< fabric columns
  core::FabricDelays delays{};   ///< gate delays used at elaboration
  std::uint64_t content_hash = 0;            ///< CompiledDesign::content_hash
  std::vector<platform::PortBinding> inputs;   ///< bound inputs, port order
  std::vector<platform::PortBinding> outputs;  ///< bound outputs, port order
  /// DFF boundary registers (empty for combinational designs).  A design
  /// with state is servable only through clocked submits
  /// (SubmitBatchMsg::cycles > 0); the server enforces that, like every
  /// residency layer, via rt::DevicePool's sequential check.
  std::vector<platform::StateBinding> state;
  std::vector<std::uint8_t> bitstream;  ///< full PPHW bitstream (validated
                                        ///< server-side by try_load_fabric)
};

/// kRegisterAck: the design is resident and submittable.
struct RegisterAckMsg {
  std::uint64_t request_id = 0;  ///< the request this acknowledges
};

/// kSubmitBatch: one job — a batch of stimulus vectors against a
/// registered design, with its scheduling class and optional deadline.
struct SubmitBatchMsg {
  std::uint64_t request_id = 0;  ///< echoed in the result / busy / error
  std::string design;            ///< tenant-local design name
  rt::Priority priority = rt::Priority::kBatch;  ///< scheduling class
  /// Relative deadline in milliseconds from server receipt; 0 = none.
  /// (Relative, so client and server clocks never need agreement.)
  std::uint32_t deadline_ms = 0;
  platform::Engine engine = platform::Engine::kAuto;  ///< engine choice
  /// Clocked-stream cycle count (protocol v2): 0 = independent
  /// combinational vectors; > 0 = the batch is stream-major clocked
  /// stimulus, vector_count must divide into whole `cycles`-vector streams
  /// (decode rejects ragged batches on both peers, before anything is
  /// queued), and the design's boundary registers advance per stream
  /// exactly as rt::SubmitOptions::cycles specifies.
  std::uint32_t cycles = 0;
  /// Stimulus vectors in the batch: 1 .. kMaxVectorsPerBatch.
  std::uint32_t vector_count = 0;
  /// Bits per vector (the design's input width); must be >= 1 — a
  /// zero-width batch has no meaning and would unmoor vector_count from
  /// the plane-size check.
  std::uint16_t input_count = 0;
  /// SoA stimulus: input_count planes of ceil(vector_count/8) bytes
  /// (platform::pack_bit_planes layout; decode validates the exact size
  /// and canonical zero padding).
  std::vector<std::uint8_t> planes;
};

/// kResult: a completed job's outputs, SoA-packed like the stimulus.
struct ResultMsg {
  std::uint64_t request_id = 0;     ///< the submit this answers
  /// Result vectors: 1 .. kMaxVectorsPerBatch (== the submitted count;
  /// serve::Client additionally checks the equality per request).
  std::uint32_t vector_count = 0;
  std::uint16_t output_count = 0;   ///< bits per result vector
  std::vector<std::uint8_t> planes;  ///< SoA outputs (pack_bit_planes)
};

/// kBusy: admission control refused the submit — nothing was queued, the
/// client should back off and retry.  Backpressure is always explicit,
/// never a silent queue or a dropped request.
struct BusyMsg {
  std::uint64_t request_id = 0;  ///< the refused submit
  std::string reason;            ///< which limit tripped (human-readable)
};

/// kError: a request failed; carries the Status a local caller would get.
struct ErrorMsg {
  std::uint64_t request_id = 0;  ///< the failed request (0: session-level)
  StatusCode code = StatusCode::kInternal;  ///< machine-readable code
  std::string message;                      ///< human-readable detail
};

/// kStatsRequest: poll the session's tenant/pool counters (no payload).
struct StatsRequestMsg {};

/// kStatsReply: snapshot of the tenant's serving counters plus the
/// pool-wide queue depth the admission check sees.
struct StatsReplyMsg {
  std::uint64_t session_id = 0;       ///< this connection's session
  std::uint64_t jobs_submitted = 0;   ///< tenant submits accepted
  std::uint64_t jobs_completed = 0;   ///< tenant jobs answered with kResult
  std::uint64_t jobs_rejected = 0;    ///< tenant submits answered with kBusy
  std::uint64_t jobs_failed = 0;      ///< tenant jobs answered with kError
  std::uint64_t in_flight = 0;        ///< tenant jobs admitted, not answered
  std::uint64_t designs_resident = 0; ///< designs in the tenant's namespace
  std::uint64_t pool_queue_depth = 0; ///< fleet-wide queued + running jobs
};

// Per-type codecs.  encode_* returns a complete frame (header + payload +
// CRC); decode_* validates a Frame of the matching type (kInvalidArgument
// on a type mismatch or any malformed field, kOutOfRange on counts that
// disagree with the payload size).

/// Encode a kHello frame.
[[nodiscard]] std::vector<std::uint8_t> encode_hello(const HelloMsg& msg);
/// Decode a kHello frame (validates the tenant name).
[[nodiscard]] Result<HelloMsg> decode_hello(const Frame& frame);

/// Encode a kHelloAck frame.
[[nodiscard]] std::vector<std::uint8_t> encode_hello_ack(
    const HelloAckMsg& msg);
/// Decode a kHelloAck frame.
[[nodiscard]] Result<HelloAckMsg> decode_hello_ack(const Frame& frame);

/// Encode a kRegisterDesign frame.
[[nodiscard]] std::vector<std::uint8_t> encode_register_design(
    const RegisterDesignMsg& msg);
/// Decode a kRegisterDesign frame (validates names, dimensions, binding
/// counts against the payload size; the bitstream body is validated later
/// by core::try_load_fabric).
[[nodiscard]] Result<RegisterDesignMsg> decode_register_design(
    const Frame& frame);

/// Encode a kRegisterAck frame.
[[nodiscard]] std::vector<std::uint8_t> encode_register_ack(
    const RegisterAckMsg& msg);
/// Decode a kRegisterAck frame.
[[nodiscard]] Result<RegisterAckMsg> decode_register_ack(const Frame& frame);

/// Encode a kSubmitBatch frame.
[[nodiscard]] std::vector<std::uint8_t> encode_submit_batch(
    const SubmitBatchMsg& msg);
/// Decode a kSubmitBatch frame (validates priority/engine enums, the
/// vector/input count bounds — 1..kMaxVectorsPerBatch vectors of >= 1
/// bits — that a clocked batch divides into whole `cycles`-vector streams,
/// and the exact SoA plane size, including canonical zero padding).
[[nodiscard]] Result<SubmitBatchMsg> decode_submit_batch(const Frame& frame);

/// Encode a kResult frame.
[[nodiscard]] std::vector<std::uint8_t> encode_result(const ResultMsg& msg);
/// Decode a kResult frame (same count bounds and plane validation as
/// kSubmitBatch, except output_count 0 is legal — a design may bind no
/// outputs — because vector_count alone bounds what a reply can allocate).
[[nodiscard]] Result<ResultMsg> decode_result(const Frame& frame);

/// Encode a kBusy frame.
[[nodiscard]] std::vector<std::uint8_t> encode_busy(const BusyMsg& msg);
/// Decode a kBusy frame.
[[nodiscard]] Result<BusyMsg> decode_busy(const Frame& frame);

/// Encode a kError frame.
[[nodiscard]] std::vector<std::uint8_t> encode_error(const ErrorMsg& msg);
/// Decode a kError frame (unknown wire status codes fail the decode).
[[nodiscard]] Result<ErrorMsg> decode_error(const Frame& frame);

/// Encode a kStatsRequest frame.
[[nodiscard]] std::vector<std::uint8_t> encode_stats_request(
    const StatsRequestMsg& msg);
/// Decode a kStatsRequest frame (payload must be empty).
[[nodiscard]] Result<StatsRequestMsg> decode_stats_request(
    const Frame& frame);

/// Encode a kStatsReply frame.
[[nodiscard]] std::vector<std::uint8_t> encode_stats_reply(
    const StatsReplyMsg& msg);
/// Decode a kStatsReply frame.
[[nodiscard]] Result<StatsReplyMsg> decode_stats_reply(const Frame& frame);

}  // namespace pp::serve
