// serve::Server — the multi-tenant network front end of an rt::DevicePool.
//
// The ROADMAP's serving story ends at a socket: clients that never link the
// runtime register designs and submit batches over the PPSV job protocol
// (serve/protocol.h, docs/serving-protocol.md), and one server keeps a whole
// DevicePool busy on their behalf.  The server is deliberately a *front
// end*: it owns no scheduling policy of its own — routing, affinity,
// replication, priority, and deadlines all live in the pool and its job
// queues — and adds exactly the three things a shared network service
// needs on top (docs/serving-protocol.md §5):
//
//  * Sessions.  Every connection opens with a hello naming its tenant and
//    gets a per-connection Session: one reader thread decoding frames, one
//    completer thread writing results back in submit order (results carry
//    request ids, so ordering is a convenience, not a contract).
//  * Tenant namespaces.  A design registered by tenant T lands in the pool
//    under the scoped key "T/<name>" — tenants share the fleet (and the
//    content-hash dedupe across it) but can never resolve, run, or collide
//    with each other's names.  Name syntax excludes '/', so the scoping is
//    injective.
//  * Quotas + admission control.  Per-tenant bounds on resident designs
//    (kResourceExhausted error) and in-flight jobs, plus a pool-wide
//    queue-depth high-water mark; a submit over either job bound gets an
//    explicit kBusy reply — backpressure is always visible, never a silent
//    queue or a dropped request — and nothing is enqueued for it.
//
// Thread-safety: every public method is safe from any thread.  stop() (or
// destruction) shuts the listener, wakes every session's reader, lets
// in-flight jobs finish, and joins all threads.

/// \file
/// \brief serve::Server — multi-tenant PPSV serving front end over an
/// rt::DevicePool (sessions, tenant namespaces, quotas, admission control).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "rt/pool.h"
#include "util/status.h"

namespace pp::serve {

/// Server tuning knobs, fixed at creation.
struct ServerOptions {
  /// Address to bind (numeric IPv4; loopback by default — exposing a pool
  /// beyond the host is a deliberate, explicit choice).
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 = ephemeral (read the bound port from Server::port()).
  std::uint16_t port = 0;
  /// Resident-design quota per tenant (distinct names; re-registering an
  /// existing name is free).  Over quota → kError(kResourceExhausted).
  std::size_t max_designs_per_tenant = 8;
  /// In-flight job quota per tenant (admitted, result not yet sent).
  /// At quota → kBusy, nothing queued.
  std::size_t max_inflight_per_tenant = 64;
  /// Pool-wide admission high-water mark: a submit finding at least this
  /// many jobs queued + running across the fleet gets kBusy.
  std::size_t max_pool_depth = 256;
  /// Upper bound (milliseconds) on any blocking reply write to a session
  /// socket.  A peer that stops reading would otherwise wedge the
  /// session's completer mid-send — pinning the write lock, the reader's
  /// replies, and the tenant's in-flight quota until stop().  On expiry
  /// the session is torn down instead.  0 disables the bound.
  long session_send_timeout_ms = 30'000;
};

/// Serving counters (monotone except sessions_active).
struct ServerStats {
  std::uint64_t sessions_opened = 0;   ///< connections that completed hello
  std::uint64_t sessions_active = 0;   ///< currently-open sessions
  std::uint64_t jobs_admitted = 0;     ///< submits accepted into the pool
  std::uint64_t jobs_rejected = 0;     ///< submits answered with kBusy
  std::uint64_t protocol_errors = 0;   ///< malformed frames / bad handshakes
};

/// A TCP serving front end that owns an rt::DevicePool.  See the file
/// comment for the session/tenant/admission model and
/// docs/serving-protocol.md for the wire contract.
class Server {
 public:
  /// Take ownership of `pool` and start serving it: binds, listens, and
  /// spawns the accept loop before returning.  Fails with the bind/listen
  /// Status (kUnavailable) or kInvalidArgument for zero quotas.
  [[nodiscard]] static Result<Server> create(rt::DevicePool pool,
                                             ServerOptions options = {});

  /// Moved-from servers may only be destroyed or assigned to.
  Server(Server&&) noexcept;
  /// Stops the overwritten server (as by stop()) before taking over.
  Server& operator=(Server&&) noexcept;
  /// Stops the server: closes the listener, wakes and joins every session,
  /// then destroys the pool (draining per rt::DevicePool's contract).
  ~Server();

  /// The TCP port actually bound (the ephemeral port when options.port was
  /// 0).
  [[nodiscard]] std::uint16_t port() const noexcept;

  /// The served pool — for registering designs process-side, draining, or
  /// reading PoolStats in tests and benches.
  [[nodiscard]] rt::DevicePool& pool() noexcept;

  /// Stop accepting, close every session (in-flight jobs finish and their
  /// results are still written), join all threads.  Idempotent.
  void stop();

  /// Snapshot of the serving counters.
  [[nodiscard]] ServerStats stats() const;

 private:
  struct Impl;
  explicit Server(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace pp::serve
