#include "serve/wire.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace pp::serve {

namespace {

[[nodiscard]] std::string errno_text(std::string what) {
  return std::move(what) + ": " + std::strerror(errno);
}

}  // namespace

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close_fd();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Socket::~Socket() { close_fd(); }

void Socket::close_fd() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::set_send_timeout_ms(long ms) noexcept {
  if (fd_ < 0 || ms <= 0) return;
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

Status Socket::send_all(std::span<const std::uint8_t> bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::unavailable(errno_text("serve: send failed"));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status();
}

Status Socket::recv_exact(std::span<std::uint8_t> bytes, bool* clean_eof) {
  if (clean_eof) *clean_eof = false;
  std::size_t got = 0;
  while (got < bytes.size()) {
    const ssize_t n = ::recv(fd_, bytes.data() + got, bytes.size() - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::unavailable(errno_text("serve: recv failed"));
    }
    if (n == 0) {
      if (got == 0) {
        if (clean_eof) *clean_eof = true;
        return Status::unavailable("serve: peer closed the connection");
      }
      return Status::out_of_range("serve: connection closed mid-frame (" +
                                  std::to_string(got) + " of " +
                                  std::to_string(bytes.size()) + " bytes)");
    }
    got += static_cast<std::size_t>(n);
  }
  return Status();
}

Result<Frame> read_frame(Socket& socket) {
  std::vector<std::uint8_t> bytes(kHeaderBytes);
  if (Status s = socket.recv_exact(bytes); !s.ok()) return s;
  auto header = decode_header(bytes);
  if (!header.ok()) return header.status();
  bytes.resize(kHeaderBytes + header->payload_len + kTrailerBytes);
  if (Status s = socket.recv_exact(
          std::span<std::uint8_t>(bytes).subspan(kHeaderBytes));
      !s.ok())
    return s;
  return decode_frame(bytes);
}

Status write_frame(Socket& socket, std::span<const std::uint8_t> frame) {
  return socket.send_all(frame);
}

Result<Socket> connect_tcp(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    return Status::invalid_argument("serve: '" + host +
                                    "' is not a numeric IPv4 address");
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid())
    return Status::unavailable(errno_text("serve: socket() failed"));
  if (::connect(socket.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0)
    return Status::unavailable(errno_text("serve: connect to " + host + ":" +
                                          std::to_string(port) + " failed"));
  // The protocol is request/reply with small frames; latency beats Nagle.
  const int one = 1;
  ::setsockopt(socket.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return socket;
}

Result<Socket> listen_tcp(const std::string& host, std::uint16_t port,
                          std::uint16_t* bound_port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    return Status::invalid_argument("serve: '" + host +
                                    "' is not a numeric IPv4 address");
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid())
    return Status::unavailable(errno_text("serve: socket() failed"));
  const int one = 1;
  ::setsockopt(socket.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(socket.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    return Status::unavailable(errno_text("serve: bind to " + host + ":" +
                                          std::to_string(port) + " failed"));
  if (::listen(socket.fd(), SOMAXCONN) != 0)
    return Status::unavailable(errno_text("serve: listen failed"));
  if (bound_port) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&bound),
                      &len) != 0)
      return Status::unavailable(errno_text("serve: getsockname failed"));
    *bound_port = ntohs(bound.sin_port);
  }
  return socket;
}

Result<Socket> accept_tcp(Socket& listener) {
  while (true) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket socket(fd);
      const int one = 1;
      ::setsockopt(socket.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return socket;
    }
    if (errno == EINTR) continue;
    // EINVAL / EBADF after shutdown_both() on the listener is the normal
    // stop path, not an error worth a distinct code.
    return Status::unavailable(errno_text("serve: accept stopped"));
  }
}

}  // namespace pp::serve
