// serve::wire — blocking TCP transport for PPSV frames.
//
// A thin Status-returning layer over POSIX sockets: an RAII fd owner plus
// frame-at-a-time read/write.  Reads are two-phase (fixed header first, then
// exactly the announced payload + CRC), so a hostile peer can never make the
// receiver allocate more than kMaxPayloadBytes, and a clean close at a frame
// boundary is distinguishable (kUnavailable) from a mid-frame truncation
// (kOutOfRange).  Everything blocks; the serving layer gets concurrency from
// threads, not from readiness APIs.

/// \file
/// \brief serve::wire — blocking TCP transport for PPSV frames (RAII
/// socket, frame-at-a-time read/write, Status-based errors).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "serve/protocol.h"
#include "util/status.h"

namespace pp::serve {

/// RAII owner of one socket file descriptor.  Move-only; the destructor
/// closes.  shutdown() is safe to call from another thread to unblock a
/// reader (the idiom every serve thread-join path uses).
class Socket {
 public:
  /// An empty (invalid) socket.
  Socket() = default;
  /// Take ownership of `fd` (-1 = empty).
  explicit Socket(int fd) noexcept : fd_(fd) {}
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  /// Closes the descriptor (if any).
  ~Socket();

  /// True when this socket owns a descriptor.
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  /// The owned descriptor (-1 when empty).
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Send the whole span (looping over partial writes, SIGPIPE suppressed).
  /// kUnavailable when the peer is gone.
  [[nodiscard]] Status send_all(std::span<const std::uint8_t> bytes);

  /// Receive exactly `bytes.size()` bytes.  kUnavailable with
  /// `*clean_eof = true` when the peer closed before the first byte (a
  /// frame-boundary close); kOutOfRange on a mid-buffer close.
  [[nodiscard]] Status recv_exact(std::span<std::uint8_t> bytes,
                                  bool* clean_eof = nullptr);

  /// Shut down both directions (wakes a blocked reader on any thread);
  /// the descriptor stays owned until destruction.  Idempotent.
  void shutdown_both() noexcept;

  /// Bound every blocking send on this socket to `ms` milliseconds
  /// (SO_SNDTIMEO); an expired send fails with kUnavailable instead of
  /// blocking forever on a peer that stopped reading.  `ms` <= 0 leaves
  /// sends unbounded.  Best-effort: a setsockopt failure is ignored (the
  /// socket still works, just without the bound).
  void set_send_timeout_ms(long ms) noexcept;

 private:
  void close_fd() noexcept;
  int fd_ = -1;
};

/// Read one complete frame: header, then payload + CRC, then decode_frame
/// over the assembled bytes.  kUnavailable = the peer closed cleanly before
/// the frame started; any decode Status passes through (the stream is not
/// resynchronizable after one — callers close the connection).
[[nodiscard]] Result<Frame> read_frame(Socket& socket);

/// Write one already-encoded frame (the encode_* functions' output).
/// Callers serialize concurrent writers per socket themselves.
[[nodiscard]] Status write_frame(Socket& socket,
                                 std::span<const std::uint8_t> frame);

/// Connect to host:port (numeric IPv4 host, e.g. "127.0.0.1").
[[nodiscard]] Result<Socket> connect_tcp(const std::string& host,
                                         std::uint16_t port);

/// Bind + listen on host:port (port 0 = ephemeral); returns the listener
/// and stores the actually-bound port in `*bound_port`.
[[nodiscard]] Result<Socket> listen_tcp(const std::string& host,
                                        std::uint16_t port,
                                        std::uint16_t* bound_port);

/// Accept one connection.  kUnavailable when the listener was shut down
/// (the accept loop's clean-exit signal).
[[nodiscard]] Result<Socket> accept_tcp(Socket& listener);

}  // namespace pp::serve
