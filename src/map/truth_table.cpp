#include "map/truth_table.h"

#include <algorithm>
#include <bit>
#include <set>
#include <stdexcept>

namespace pp::map {

int Implicant::literals() const noexcept { return std::popcount(care); }

std::string Implicant::to_string(int num_vars) const {
  if (care == 0) return "1";
  std::string s;
  for (int i = 0; i < num_vars; ++i) {
    if (!(care & (1u << i))) continue;
    if (!s.empty()) s += ".";
    if (!(value & (1u << i))) s += "/";
    s += static_cast<char>('a' + i);
  }
  return s;
}

TruthTable::TruthTable(int num_vars) : num_vars_(num_vars) {
  if (num_vars < 1 || num_vars > kMaxVars)
    throw std::invalid_argument("TruthTable: 1..6 variables");
}

TruthTable TruthTable::from_function(
    int num_vars, const std::function<bool(std::uint8_t)>& f) {
  TruthTable tt(num_vars);
  for (int i = 0; i < tt.num_rows(); ++i)
    tt.set(static_cast<std::uint8_t>(i), f(static_cast<std::uint8_t>(i)));
  return tt;
}

TruthTable TruthTable::from_minterms(int num_vars,
                                     const std::vector<std::uint8_t>& ms) {
  TruthTable tt(num_vars);
  for (std::uint8_t m : ms) tt.set(m, true);
  return tt;
}

void TruthTable::set(std::uint8_t input, bool value) {
  if (input >= num_rows()) throw std::out_of_range("TruthTable::set");
  if (value)
    bits_ |= (1ull << input);
  else
    bits_ &= ~(1ull << input);
}

bool TruthTable::eval(std::uint8_t input) const {
  if (input >= num_rows()) throw std::out_of_range("TruthTable::eval");
  return (bits_ >> input) & 1;
}

int TruthTable::count_ones() const noexcept {
  return std::popcount(bits_ & ((num_rows() == 64)
                                    ? ~0ull
                                    : ((1ull << num_rows()) - 1)));
}

TruthTable TruthTable::complement() const {
  TruthTable tt(num_vars_);
  const std::uint64_t mask =
      num_rows() == 64 ? ~0ull : ((1ull << num_rows()) - 1);
  tt.bits_ = ~bits_ & mask;
  return tt;
}

std::vector<Implicant> prime_implicants(const TruthTable& tt) {
  const int n = tt.num_vars();
  const std::uint8_t full = static_cast<std::uint8_t>((1u << n) - 1);

  // Start from the minterms as implicants with all variables cared.
  std::set<std::pair<std::uint8_t, std::uint8_t>> current;  // (care, value)
  for (int m = 0; m < tt.num_rows(); ++m)
    if (tt.eval(static_cast<std::uint8_t>(m)))
      current.insert({full, static_cast<std::uint8_t>(m)});

  std::vector<Implicant> primes;
  while (!current.empty()) {
    std::set<std::pair<std::uint8_t, std::uint8_t>> next;
    std::set<std::pair<std::uint8_t, std::uint8_t>> combined;
    const std::vector<std::pair<std::uint8_t, std::uint8_t>> items(
        current.begin(), current.end());
    for (std::size_t i = 0; i < items.size(); ++i) {
      for (std::size_t j = i + 1; j < items.size(); ++j) {
        if (items[i].first != items[j].first) continue;  // same care set
        const std::uint8_t diff = items[i].second ^ items[j].second;
        if (std::popcount(static_cast<unsigned>(diff & items[i].first)) != 1)
          continue;  // must differ in exactly one cared variable
        const std::uint8_t care = items[i].first & static_cast<std::uint8_t>(~diff);
        next.insert({care, static_cast<std::uint8_t>(items[i].second & care)});
        combined.insert(items[i]);
        combined.insert(items[j]);
      }
    }
    for (const auto& it : items) {
      if (!combined.count(it))
        primes.push_back({it.first, static_cast<std::uint8_t>(it.second & it.first)});
    }
    current = std::move(next);
  }
  return primes;
}

std::vector<Implicant> minimize(const TruthTable& tt) {
  std::vector<std::uint8_t> minterms;
  for (int m = 0; m < tt.num_rows(); ++m)
    if (tt.eval(static_cast<std::uint8_t>(m)))
      minterms.push_back(static_cast<std::uint8_t>(m));
  if (minterms.empty()) return {};

  const auto primes = prime_implicants(tt);
  std::vector<Implicant> cover;
  std::vector<bool> covered(minterms.size(), false);

  // Essential primes: minterms covered by exactly one prime.
  for (std::size_t mi = 0; mi < minterms.size(); ++mi) {
    int count = 0;
    std::size_t which = 0;
    for (std::size_t pi = 0; pi < primes.size(); ++pi) {
      if (primes[pi].covers(minterms[mi])) {
        ++count;
        which = pi;
      }
    }
    if (count == 1 &&
        std::find(cover.begin(), cover.end(), primes[which]) == cover.end()) {
      cover.push_back(primes[which]);
    }
  }
  auto mark = [&] {
    for (std::size_t mi = 0; mi < minterms.size(); ++mi)
      for (const auto& imp : cover)
        if (imp.covers(minterms[mi])) covered[mi] = true;
  };
  mark();

  // Greedy: repeatedly take the prime covering the most uncovered minterms.
  for (;;) {
    std::size_t best = primes.size();
    int best_gain = 0;
    for (std::size_t pi = 0; pi < primes.size(); ++pi) {
      if (std::find(cover.begin(), cover.end(), primes[pi]) != cover.end())
        continue;
      int gain = 0;
      for (std::size_t mi = 0; mi < minterms.size(); ++mi)
        if (!covered[mi] && primes[pi].covers(minterms[mi])) ++gain;
      if (gain > best_gain) {
        best_gain = gain;
        best = pi;
      }
    }
    if (best == primes.size()) break;
    cover.push_back(primes[best]);
    mark();
  }
  return cover;
}

bool eval_cover(const std::vector<Implicant>& cover, std::uint8_t input) {
  for (const auto& imp : cover)
    if (imp.covers(input)) return true;
  return false;
}

}  // namespace pp::map
