// Bit-serial arithmetic — the paper's §4/§5 suggestion that "alternative
// techniques such as bit-serial arithmetic ... may offer equivalent or
// better performance at these dimensions" once interconnect dominates.
//
// A serial adder is ONE full-adder tile processing operands LSB-first, one
// bit per step, with the carry looped back from cout to cin between steps.
// On this fabric model the carry loop closes at the array boundary (the
// same substitution as the Fig. 10 accumulator register; DESIGN.md §5),
// which preserves the figure of merit the ablation bench needs: hardware
// area is constant in word length while latency grows linearly, versus the
// parallel adder's mirror-image tradeoff.
#pragma once

#include <cstdint>

#include "core/fabric.h"
#include "map/macros.h"
#include "sim/simulator.h"

namespace pp::map {

struct SerialAdderPorts {
  macros::AdderBitPorts cell;  ///< the single full-adder tile
  int blocks_used = 0;
};

/// Configure the serial adder cell at (r, c) (footprint 2 rows x 3 cols;
/// the carry-forward block is not needed — the loop closes externally).
SerialAdderPorts serial_adder(core::Fabric& fabric, int r, int c);

/// Drive `words` pairs LSB-first through an elaborated serial adder and
/// return a+b (mod 2^bits).  Each bit-step settles the fabric once; the
/// carry is read from the tile's cout line and re-driven on cin.
[[nodiscard]] std::uint64_t serial_add(sim::Simulator& sim,
                                       const core::ElaboratedFabric& fabric,
                                       const SerialAdderPorts& ports,
                                       std::uint64_t a, std::uint64_t b,
                                       int bits);

/// Area-latency figures for the serial-vs-parallel ablation.
struct SerialParallelPoint {
  int bits;
  int serial_blocks;
  int parallel_blocks;
  double serial_latency_ps;    ///< bits x per-bit settle delay
  double parallel_latency_ps;  ///< one ripple through all bits
};

}  // namespace pp::map
