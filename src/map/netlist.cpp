#include "map/netlist.h"

#include <algorithm>
#include <stdexcept>

namespace pp::map {

int Netlist::add_input(std::string name) {
  cells_.push_back({CellKind::kInput, {}, std::move(name)});
  inputs_.push_back(static_cast<int>(cells_.size() - 1));
  return static_cast<int>(cells_.size() - 1);
}

int Netlist::add_cell(CellKind kind, std::vector<int> fanin,
                      std::string name) {
  if (kind == CellKind::kInput)
    throw std::invalid_argument("use add_input for inputs");
  for (int f : fanin)
    if (f < 0 || (kind != CellKind::kDff &&
                  f >= static_cast<int>(cells_.size())))
      throw std::invalid_argument("Netlist: bad fanin");
  cells_.push_back({kind, std::move(fanin), std::move(name)});
  return static_cast<int>(cells_.size() - 1);
}

void Netlist::mark_output(int cell) {
  if (cell < 0 || cell >= static_cast<int>(cells_.size()))
    throw std::invalid_argument("Netlist::mark_output");
  outputs_.push_back(cell);
}

std::uint64_t content_hash(const Netlist& netlist) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a 64 offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001b3ull;
    }
  };
  mix(netlist.cell_count());
  for (std::size_t i = 0; i < netlist.cell_count(); ++i) {
    const NetlistCell& cell = netlist.cell(static_cast<int>(i));
    mix(static_cast<std::uint64_t>(cell.kind));
    mix(cell.fanin.size());
    for (int f : cell.fanin) mix(static_cast<std::uint64_t>(f));
    mix(cell.name.size());
    for (char ch : cell.name) mix(static_cast<std::uint8_t>(ch));
  }
  mix(netlist.inputs().size());
  for (int i : netlist.inputs()) mix(static_cast<std::uint64_t>(i));
  mix(netlist.outputs().size());
  for (int i : netlist.outputs()) mix(static_cast<std::uint64_t>(i));
  return h;
}

int Netlist::count(CellKind kind) const {
  int n = 0;
  for (const auto& c : cells_)
    if (c.kind == kind) ++n;
  return n;
}

std::vector<int> Netlist::levels() const {
  std::vector<int> d(cells_.size(), 0);
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const auto& c = cells_[i];
    if (c.kind == CellKind::kInput || c.kind == CellKind::kDff ||
        c.kind == CellKind::kConst0 || c.kind == CellKind::kConst1)
      continue;
    int m = 0;
    for (int f : c.fanin)
      if (f < static_cast<int>(i)) m = std::max(m, d[f]);
    d[i] = m + 1;
  }
  return d;
}

int Netlist::depth() const {
  const std::vector<int> d = levels();
  return d.empty() ? 0 : *std::max_element(d.begin(), d.end());
}

std::vector<bool> Netlist::make_state() const {
  return std::vector<bool>(cells_.size(), false);
}

std::vector<bool> Netlist::step(const std::vector<bool>& input_values,
                                std::vector<bool>& state) const {
  if (input_values.size() != inputs_.size())
    throw std::invalid_argument("Netlist::step: input count mismatch");
  if (state.size() != cells_.size())
    throw std::invalid_argument("Netlist::step: bad state vector");
  std::vector<bool> v(cells_.size(), false);
  std::size_t next_input = 0;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const auto& c = cells_[i];
    switch (c.kind) {
      case CellKind::kInput: v[i] = input_values[next_input++]; break;
      case CellKind::kConst0: v[i] = false; break;
      case CellKind::kConst1: v[i] = true; break;
      case CellKind::kDff: v[i] = state[i]; break;  // Q from last cycle
      case CellKind::kNot: v[i] = !v[c.fanin[0]]; break;
      case CellKind::kAnd: {
        bool r = true;
        for (int f : c.fanin) r = r && v[f];
        v[i] = r;
        break;
      }
      case CellKind::kOr: {
        bool r = false;
        for (int f : c.fanin) r = r || v[f];
        v[i] = r;
        break;
      }
      case CellKind::kNand: {
        bool r = true;
        for (int f : c.fanin) r = r && v[f];
        v[i] = !r;
        break;
      }
      case CellKind::kNor: {
        bool r = false;
        for (int f : c.fanin) r = r || v[f];
        v[i] = !r;
        break;
      }
      case CellKind::kXor: {
        bool r = false;
        for (int f : c.fanin) r = r ^ v[f];
        v[i] = r;
        break;
      }
    }
  }
  // Clock edge: DFFs capture their D input's settled value.
  for (std::size_t i = 0; i < cells_.size(); ++i)
    if (cells_[i].kind == CellKind::kDff) state[i] = v[cells_[i].fanin[0]];
  std::vector<bool> out;
  out.reserve(outputs_.size());
  for (int o : outputs_) out.push_back(v[o]);
  return out;
}

std::vector<bool> Netlist::evaluate(
    const std::vector<bool>& input_values) const {
  if (count(CellKind::kDff) != 0)
    throw std::logic_error("Netlist::evaluate: netlist is sequential");
  auto state = make_state();
  return step(input_values, state);
}

Netlist make_ripple_adder(int bits) {
  Netlist nl;
  std::vector<int> a(bits), b(bits);
  for (int i = 0; i < bits; ++i) a[i] = nl.add_input("a" + std::to_string(i));
  for (int i = 0; i < bits; ++i) b[i] = nl.add_input("b" + std::to_string(i));
  int carry = nl.add_input("cin");
  for (int i = 0; i < bits; ++i) {
    const int axb = nl.add_cell(CellKind::kXor, {a[i], b[i]});
    const int sum = nl.add_cell(CellKind::kXor, {axb, carry},
                                "s" + std::to_string(i));
    const int ab = nl.add_cell(CellKind::kAnd, {a[i], b[i]});
    const int axb_c = nl.add_cell(CellKind::kAnd, {axb, carry});
    carry = nl.add_cell(CellKind::kOr, {ab, axb_c});
    nl.mark_output(sum);
  }
  nl.mark_output(carry);
  return nl;
}

Netlist make_parity(int inputs) {
  Netlist nl;
  std::vector<int> in(inputs);
  for (int i = 0; i < inputs; ++i)
    in[i] = nl.add_input("x" + std::to_string(i));
  int acc = in[0];
  for (int i = 1; i < inputs; ++i)
    acc = nl.add_cell(CellKind::kXor, {acc, in[i]});
  nl.mark_output(acc);
  return nl;
}

Netlist make_counter(int bits) {
  Netlist nl;
  const int en = nl.add_input("en");
  // DFF cells first (their fanin is fixed up conceptually via later cells;
  // Netlist allows DFF fanin to reference later cells).
  std::vector<int> q(bits);
  // Build: q_i' = q_i XOR carry_i, carry_0 = en, carry_{i+1} = carry_i AND q_i.
  // Reserve DFFs by creating them with placeholder fanin then fixing: the IR
  // is append-only, so create DFFs with forward indices computed below.
  // Cell index layout: dffs at [1 .. bits], then logic.
  int next = 1 + bits;  // first logic cell index
  std::vector<int> dff_fanin(bits);
  // Logic cells: for each bit: xor(q_i, carry) and and(carry, q_i).
  // Predict indices.
  int carry_idx = en;
  for (int i = 0; i < bits; ++i) {
    dff_fanin[i] = next;  // xor cell index
    next += 2;            // xor + and
    (void)carry_idx;
  }
  for (int i = 0; i < bits; ++i)
    q[i] = nl.add_cell(CellKind::kDff, {dff_fanin[i]},
                       "q" + std::to_string(i));
  int carry = en;
  for (int i = 0; i < bits; ++i) {
    nl.add_cell(CellKind::kXor, {q[i], carry});
    carry = nl.add_cell(CellKind::kAnd, {carry, q[i]});
  }
  for (int i = 0; i < bits; ++i) nl.mark_output(q[i]);
  return nl;
}

Netlist make_mux4() {
  Netlist nl;
  const int d0 = nl.add_input("d0");
  const int d1 = nl.add_input("d1");
  const int d2 = nl.add_input("d2");
  const int d3 = nl.add_input("d3");
  const int s0 = nl.add_input("s0");
  const int s1 = nl.add_input("s1");
  const int ns0 = nl.add_cell(CellKind::kNot, {s0});
  const int ns1 = nl.add_cell(CellKind::kNot, {s1});
  const int t0 = nl.add_cell(CellKind::kAnd, {d0, ns1, ns0});
  const int t1 = nl.add_cell(CellKind::kAnd, {d1, ns1, s0});
  const int t2 = nl.add_cell(CellKind::kAnd, {d2, s1, ns0});
  const int t3 = nl.add_cell(CellKind::kAnd, {d3, s1, s0});
  const int y = nl.add_cell(CellKind::kOr, {t0, t1, t2, t3}, "y");
  nl.mark_output(y);
  return nl;
}

Netlist make_accumulator(int bits) {
  Netlist nl;
  std::vector<int> b(bits);
  for (int i = 0; i < bits; ++i) b[i] = nl.add_input("b" + std::to_string(i));
  // DFF indices precomputed: dffs at [bits .. 2*bits), logic follows.
  // Logic per bit: xor(acc_i,b_i), xor(.,carry)=sum, and(acc_i,b_i),
  // and(xor1, carry), or(...) = 5 cells per bit (carry in for bit 0 = const0).
  const int c0 = nl.add_cell(CellKind::kConst0, {});
  std::vector<int> dff_fanin(bits);
  int next = bits + 1 + 1;  // inputs + const0 + first dff index... computed below
  // Layout: cells 0..bits-1 inputs, cell bits = const0, cells bits+1 ..
  // bits+bits = DFFs, then logic.  Sum cell for bit i is the 2nd logic cell
  // of its group.
  next = bits + 1 + bits;  // first logic cell
  for (int i = 0; i < bits; ++i) {
    dff_fanin[i] = next + 1;  // the sum xor
    next += 5;
  }
  std::vector<int> acc(bits);
  for (int i = 0; i < bits; ++i)
    acc[i] = nl.add_cell(CellKind::kDff, {dff_fanin[i]},
                         "acc" + std::to_string(i));
  int carry = c0;
  for (int i = 0; i < bits; ++i) {
    const int axb = nl.add_cell(CellKind::kXor, {acc[i], b[i]});
    const int sum = nl.add_cell(CellKind::kXor, {axb, carry});
    const int ab = nl.add_cell(CellKind::kAnd, {acc[i], b[i]});
    const int axb_c = nl.add_cell(CellKind::kAnd, {axb, carry});
    carry = nl.add_cell(CellKind::kOr, {ab, axb_c});
    nl.mark_output(sum);
  }
  for (int i = 0; i < bits; ++i) nl.mark_output(acc[i]);
  return nl;
}

}  // namespace pp::map
