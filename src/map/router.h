// Feed-through routing on the polymorphic fabric.
//
// The paper's interconnect story (§4): an output driver configured as a
// buffer "provides a buffer that will allow any output line to be used as a
// data feed-through from an adjacent cell".  A route is therefore a chain of
// (block, row) hops: the signal enters a block on input column j, one free
// row is configured as NAND(column j) — i.e. the complement — and its driver
// re-drives the next abutted line.  An inverting driver restores polarity,
// so every hop is polarity-neutral by default; the router can deliver the
// complement for free by flipping the final hop's driver (the paper's
// "components used interchangeably for logic and interconnection").
//
// Hops advance east or south only (see fabric.h's connectivity model), so
// the router is a BFS over (block row, block col, line index) states with
// occupancy tracking of rows and abutted lines.
#pragma once

#include <functional>
#include <optional>
#include <set>
#include <tuple>
#include <vector>

#include "core/fabric.h"
#include "util/status.h"

namespace pp::map {

/// A signal location: "available on input line `line` of block (r, c)",
/// i.e. net in_line(r, c, line).
struct SignalAt {
  int r, c, line;
  bool operator==(const SignalAt&) const = default;
};

struct RouteResult {
  std::vector<core::LinePos> hops;  ///< (block, row) used per hop
  int hop_count = 0;
};

class Router {
 public:
  explicit Router(core::Fabric& fabric) : fabric_(fabric) {}

  /// Route the signal at `src` so it appears on input line `dst`.
  /// On success the fabric is updated (rows configured as feed-throughs)
  /// and the hop list returned; on failure (kResourceExhausted when no path
  /// exists, kOutOfRange for endpoints outside the fabric) the fabric is
  /// left unmodified — guaranteed, since configuration is applied only
  /// after a complete path is found.
  /// If `invert` is set, the delivered value is the complement.
  [[nodiscard]] Result<RouteResult> try_route(const SignalAt& src,
                                              const SignalAt& dst,
                                              bool invert = false);

  /// Deprecated shim over `try_route`: nullopt on any failure.
  std::optional<RouteResult> route(const SignalAt& src, const SignalAt& dst,
                                   bool invert = false);

  /// Declare an input line off-limits: no route may drive it (not even as
  /// the side-effect copy of a hop), except as the explicit destination of
  /// its own `route` call.  The platform compiler reserves IO pad lines and
  /// macro input lines this way.
  void reserve_line(const SignalAt& s) { reserved_.insert({s.r, s.c, s.line}); }
  [[nodiscard]] bool line_reserved(int r, int c, int line) const {
    return reserved_.count({r, c, line}) > 0;
  }

  /// Install a predicate vetoing rows (e.g. rows with defective leaf cells,
  /// from arch::DefectMap).  Returning false blocks row `row` of block
  /// (r, c) for routing.  Pass nullptr to clear.
  void set_row_filter(std::function<bool(int r, int c, int row)> filter) {
    row_filter_ = std::move(filter);
  }

  /// True if row `row` of block (r,c) is unused (no crosspoints, driver off,
  /// not tapped by any lfb of this block or its west/north pair partners)
  /// and not vetoed by the row filter.
  [[nodiscard]] bool row_free(int r, int c, int row) const;

  /// True if input line (r,c,line) has no enabled abutting driver yet.
  /// (Reservations are a separate, router-level constraint — see
  /// `line_reserved`.)
  [[nodiscard]] bool line_free(int r, int c, int line) const;

 private:
  core::Fabric& fabric_;
  std::set<std::tuple<int, int, int>> reserved_;
  std::function<bool(int, int, int)> row_filter_;
};

}  // namespace pp::map
