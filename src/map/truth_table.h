// Single-output truth tables of up to 6 variables, plus two-level
// minimisation (Quine-McCluskey prime generation + greedy cover).  Six is
// the natural bound here: a 6x6 NAND block accepts at most six literals per
// product term, and a configured block pair is "a small LUT with 6 inputs,
// 6 outputs and 6 product-terms" (§4).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace pp::map {

inline constexpr int kMaxVars = 6;

/// A product term over n variables: for variable i,
///   care bit i set   -> literal present, polarity from `value` bit i
///   care bit i clear -> variable absent from the term.
struct Implicant {
  std::uint8_t care = 0;
  std::uint8_t value = 0;

  [[nodiscard]] bool covers(std::uint8_t minterm) const noexcept {
    return (minterm & care) == (value & care);
  }
  /// Number of literals in the term.
  [[nodiscard]] int literals() const noexcept;
  /// Render like "a./b.c" with variables named a,b,c,...
  [[nodiscard]] std::string to_string(int num_vars) const;
  bool operator==(const Implicant&) const = default;
};

class TruthTable {
 public:
  /// All-zero function of n variables (1 <= n <= 6).
  explicit TruthTable(int num_vars);

  /// Build from an evaluator called on every input combination; bit i of
  /// the input is variable i.
  static TruthTable from_function(int num_vars,
                                  const std::function<bool(std::uint8_t)>& f);
  /// Build from the list of true minterms.
  static TruthTable from_minterms(int num_vars,
                                  const std::vector<std::uint8_t>& minterms);

  void set(std::uint8_t input, bool value);
  [[nodiscard]] bool eval(std::uint8_t input) const;

  [[nodiscard]] int num_vars() const noexcept { return num_vars_; }
  [[nodiscard]] std::uint64_t bits() const noexcept { return bits_; }
  [[nodiscard]] int num_rows() const noexcept { return 1 << num_vars_; }
  [[nodiscard]] int count_ones() const noexcept;

  /// The complement function.
  [[nodiscard]] TruthTable complement() const;

  bool operator==(const TruthTable&) const = default;

 private:
  int num_vars_;
  std::uint64_t bits_ = 0;  // row i = bit i
};

/// Quine-McCluskey prime implicant generation.
[[nodiscard]] std::vector<Implicant> prime_implicants(const TruthTable& tt);

/// Minimal-ish sum-of-products cover: essential primes first, then greedy
/// set cover by coverage count (optimal for the small tables here in all
/// tested cases; never returns a non-cover).
[[nodiscard]] std::vector<Implicant> minimize(const TruthTable& tt);

/// Evaluate a cover (OR of products) on an input — used to verify covers.
[[nodiscard]] bool eval_cover(const std::vector<Implicant>& cover,
                              std::uint8_t input);

}  // namespace pp::map
