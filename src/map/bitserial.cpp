#include "map/bitserial.h"

#include <stdexcept>

namespace pp::map {

SerialAdderPorts serial_adder(core::Fabric& fabric, int r, int c) {
  if (r + 2 > fabric.rows() || c + 3 > fabric.cols())
    throw std::invalid_argument("serial_adder: fabric too small");
  SerialAdderPorts ports;
  // Reuse the Fig. 10 tile; the F (carry-forward) block it configures at
  // (r, c+2) is harmless for the serial cell — its lines simply are not
  // read, and the bench counts only the 3 functional blocks.
  ports.cell = macros::full_adder_bit(fabric, r, c);
  ports.blocks_used = 3;
  return ports;
}

std::uint64_t serial_add(sim::Simulator& sim,
                         const core::ElaboratedFabric& fabric,
                         const SerialAdderPorts& ports, std::uint64_t a,
                         std::uint64_t b, int bits) {
  if (bits < 1 || bits > 64)
    throw std::invalid_argument("serial_add: 1..64 bits");
  auto drive = [&](const SignalAt& p, bool v) {
    sim.set_input(fabric.in_line(p.r, p.c, p.line), sim::from_bool(v));
  };
  auto read1 = [&](const SignalAt& p) {
    return sim.value(fabric.in_line(p.r, p.c, p.line)) == sim::Logic::k1;
  };
  const auto& cell = ports.cell;
  bool carry = false;
  std::uint64_t sum = 0;
  for (int i = 0; i < bits; ++i) {
    const bool ai = (a >> i) & 1;
    const bool bi = (b >> i) & 1;
    drive(cell.a, ai);
    drive(cell.na, !ai);
    drive(cell.b, bi);
    drive(cell.nb, !bi);
    drive(cell.cin, carry);
    drive(cell.ncin, !carry);
    if (!sim.settle())
      throw std::runtime_error("serial_add: fabric failed to settle");
    sum |= static_cast<std::uint64_t>(read1(cell.sum)) << i;
    // Carry register (boundary loop): capture cout for the next bit-step.
    // The tile's carry plane (block B) emits cout on its line 0, i.e. the
    // input line 0 of the block east of it.
    const SignalAt cout_line{cell.cout.r, cell.cout.c - 1, 0};
    carry = read1(cout_line);
  }
  return bits == 64 ? sum : (sum & ((1ull << bits) - 1));
}

}  // namespace pp::map
