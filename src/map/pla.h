// The configured block *pair* as a multi-output PLA — the paper's §4 claim
// that "Pairs of cells, configured together, represent the equivalent of a
// small LUT with 6 inputs, 6 outputs and 6 product-terms".
//
// Structure (same chain as lut3, but multi-output with term sharing):
//   block (r,c)   : literal generation (up to 3 variables, both polarities)
//   block (r,c+1) : the shared product-term plane (up to 6 terms)
//   block (r,c+2) : one OR row per output (up to 6 outputs)
//
// Implicants are pooled across outputs and deduplicated, which is exactly
// where the paper's "sharing of terms" (Fig. 10's 5-term adder) comes from.
// If the pooled cover needs more than 6 terms the functions do not fit one
// pair and the mapper throws — the caller must decompose.
#pragma once

#include <vector>

#include "core/fabric.h"
#include "map/router.h"
#include "map/truth_table.h"

namespace pp::map {

struct PlaPorts {
  std::vector<SignalAt> inputs;   ///< variable columns of the literal block
  std::vector<SignalAt> outputs;  ///< one line per mapped function
  int terms_used = 0;             ///< pooled (shared) product terms
  int terms_unshared = 0;         ///< sum of per-function cover sizes
  int blocks_used = 0;
};

/// Map up to 6 functions of the same <=3 variables onto one term/OR block
/// pair (plus the literal block).  All functions must have the same number
/// of variables.  Throws std::invalid_argument if the pooled cover exceeds
/// 6 terms or the signature is inconsistent.
PlaPorts pla_pair(core::Fabric& fabric, int r, int c,
                  const std::vector<TruthTable>& functions);

/// The pooled, deduplicated cover the mapper would use (exposed for
/// planning: callers check fit before committing fabric area).
[[nodiscard]] std::vector<Implicant> pooled_cover(
    const std::vector<TruthTable>& functions);

}  // namespace pp::map
