#include "map/pla.h"

#include <algorithm>
#include <stdexcept>

#include "map/macros.h"

namespace pp::map {

using core::BiasLevel;
using core::BlockConfig;
using core::DriverCfg;

std::vector<Implicant> pooled_cover(const std::vector<TruthTable>& fns) {
  std::vector<Implicant> pool;
  for (const auto& tt : fns) {
    for (const auto& imp : minimize(tt)) {
      if (std::find(pool.begin(), pool.end(), imp) == pool.end())
        pool.push_back(imp);
    }
  }
  return pool;
}

PlaPorts pla_pair(core::Fabric& fabric, int r, int c,
                  const std::vector<TruthTable>& fns) {
  if (fns.empty() || fns.size() > static_cast<std::size_t>(core::kBlockOutputs))
    throw std::invalid_argument("pla_pair: 1..6 output functions");
  const int n = fns.front().num_vars();
  if (n > 3) throw std::invalid_argument("pla_pair: at most 3 variables");
  for (const auto& tt : fns)
    if (tt.num_vars() != n)
      throw std::invalid_argument("pla_pair: inconsistent variable counts");

  const auto pool = pooled_cover(fns);
  if (pool.size() > static_cast<std::size_t>(core::kBlockOutputs))
    throw std::invalid_argument(
        "pla_pair: pooled cover needs more than 6 terms; decompose");

  PlaPorts ports;
  ports.inputs = macros::literal_gen(fabric, r, c, n);

  // Shared product-term plane.
  BlockConfig& term = fabric.block(r, c + 1);
  for (std::size_t t = 0; t < pool.size(); ++t) {
    const Implicant& imp = pool[t];
    for (int i = 0; i < n; ++i) {
      if (!(imp.care & (1u << i))) continue;
      const int col = 2 * i + ((imp.value >> i) & 1 ? 0 : 1);
      term.xpoint[t][col] = BiasLevel::kActive;
    }
    term.driver[t] = imp.care == 0 ? DriverCfg::kInvert : DriverCfg::kBuffer;
  }

  // OR plane: one row per output, selecting that function's terms.
  BlockConfig& orb = fabric.block(r, c + 2);
  for (std::size_t f = 0; f < fns.size(); ++f) {
    const auto cover = minimize(fns[f]);
    if (cover.empty()) {
      // Constant-0 output: empty row reads constant 1, inverted out.
      orb.driver[f] = DriverCfg::kInvert;
    } else {
      for (const auto& imp : cover) {
        const auto it = std::find(pool.begin(), pool.end(), imp);
        const auto col = static_cast<int>(it - pool.begin());
        orb.xpoint[f][col] = BiasLevel::kActive;
      }
      orb.driver[f] = DriverCfg::kBuffer;
    }
    ports.outputs.push_back({r, c + 3, static_cast<int>(f)});
    ports.terms_unshared += static_cast<int>(cover.size());
  }
  ports.terms_used = static_cast<int>(pool.size());
  ports.blocks_used = 3;
  return ports;
}

}  // namespace pp::map
