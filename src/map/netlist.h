// A lean structural netlist IR.
//
// Used for (a) reference evaluation — every fabric mapping is cross-checked
// against a behavioural netlist of the same function — and (b) the FPGA
// baseline: pp::fpga tech-maps these netlists onto 4-LUT logic cells for the
// function-for-function comparisons of §4 (TAB-A / TAB-B).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pp::map {

enum class CellKind : std::uint8_t {
  kInput,
  kConst0,
  kConst1,
  kNot,
  kAnd,
  kOr,
  kNand,
  kNor,
  kXor,
  kDff,  ///< fanin[0] = D; clocked by the netlist-level step()
};

struct NetlistCell {
  CellKind kind;
  std::vector<int> fanin;
  std::string name;
};

/// A combinational/sequential netlist in topological construction order
/// (cells may only reference earlier cells, except DFF fanin which may be
/// any cell — state breaks the cycle).
class Netlist {
 public:
  int add_input(std::string name);
  int add_cell(CellKind kind, std::vector<int> fanin, std::string name = {});
  void mark_output(int cell);

  [[nodiscard]] std::size_t cell_count() const noexcept { return cells_.size(); }
  [[nodiscard]] const NetlistCell& cell(int i) const { return cells_.at(i); }
  [[nodiscard]] const std::vector<int>& inputs() const noexcept { return inputs_; }
  [[nodiscard]] const std::vector<int>& outputs() const noexcept { return outputs_; }

  /// Count of cells of a given kind.
  [[nodiscard]] int count(CellKind kind) const;
  /// Per-cell combinational level: inputs, constants, and DFF outputs are
  /// level 0; every other cell sits one above its deepest fanin.  depth()
  /// is its maximum.  (The per-*gate* analogue for elaborated circuits is
  /// sim::levelize(), which is what the platform compiler records in
  /// CompiledDesign::levels.)
  [[nodiscard]] std::vector<int> levels() const;
  /// Combinational depth (max over levels(); DFF outputs are depth 0).
  [[nodiscard]] int depth() const;

  /// Evaluate one cycle: combinational settle from `input_values`, then
  /// clock all DFFs.  Returns output values.  State persists in `state`.
  std::vector<bool> step(const std::vector<bool>& input_values,
                         std::vector<bool>& state) const;
  /// Fresh all-zero DFF state vector.
  [[nodiscard]] std::vector<bool> make_state() const;

  /// Purely combinational evaluation (throws if the netlist has DFFs).
  [[nodiscard]] std::vector<bool> evaluate(
      const std::vector<bool>& input_values) const;

 private:
  std::vector<NetlistCell> cells_;
  std::vector<int> inputs_;
  std::vector<int> outputs_;
};

/// Structural content hash (FNV-1a 64) over every cell's kind, fanin, and
/// name plus the input/output lists.  Two netlists hash equal iff they were
/// built identically, which is what pp::rt::Device uses to dedupe repeated
/// loads of the same design (the bitstream comparison stays authoritative —
/// the hash is the fast path).
[[nodiscard]] std::uint64_t content_hash(const Netlist& netlist);

/// --- Generators for the workloads used across benches -------------------

/// n-bit ripple-carry adder: inputs a0..a(n-1), b0..b(n-1), cin;
/// outputs s0..s(n-1), cout.
[[nodiscard]] Netlist make_ripple_adder(int bits);

/// n-input parity (XOR chain).
[[nodiscard]] Netlist make_parity(int inputs);

/// n-bit synchronous counter (DFFs + increment logic), outputs = count bits.
[[nodiscard]] Netlist make_counter(int bits);

/// 4:1 multiplexer (2 select lines).
[[nodiscard]] Netlist make_mux4();

/// n-bit accumulator: input bus b, state register a; a' = a + b (Fig. 10).
[[nodiscard]] Netlist make_accumulator(int bits);

}  // namespace pp::map
