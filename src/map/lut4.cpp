#include "map/lut4.h"

#include <stdexcept>

#include "map/macros.h"

namespace pp::map {

using core::BiasLevel;
using core::BlockConfig;
using core::DriverCfg;

std::pair<TruthTable, TruthTable> shannon_cofactors(const TruthTable& tt) {
  if (tt.num_vars() != 4)
    throw std::invalid_argument("shannon_cofactors: need 4 variables");
  TruthTable f0(3), f1(3);
  for (int i = 0; i < 8; ++i) {
    f0.set(static_cast<std::uint8_t>(i), tt.eval(static_cast<std::uint8_t>(i)));
    f1.set(static_cast<std::uint8_t>(i),
           tt.eval(static_cast<std::uint8_t>(i | 8)));
  }
  return {f0, f1};
}

Lut4Ports lut4(core::Fabric& f, int c, const TruthTable& tt) {
  if (tt.num_vars() != 4)
    throw std::invalid_argument("lut4: need a 4-variable function");
  if (f.rows() < 3 || f.cols() < c + 7)
    throw std::invalid_argument("lut4: fabric must be >= 3 x (c+7)");

  const auto [f0, f1] = shannon_cofactors(tt);

  Lut4Ports ports;
  const auto l0 = macros::lut3(f, 0, c, f0);      // out at (0, c+3, 0)
  const auto l1 = macros::lut3(f, 2, c, f1);      // out at (2, c+3, 0)
  ports.inputs_f0 = l0.inputs;
  ports.inputs_f1 = l1.inputs;

  // Feed-through ladder.  All hops are single-input NAND rows with
  // inverting drivers (polarity-neutral), exactly what the router emits;
  // laid out by hand here because the two cofactor chains constrain which
  // lines are free.
  auto hop = [&f](int r, int cc, int in_col, int row) {
    BlockConfig& b = f.block(r, cc);
    b.xpoint[row][in_col] = BiasLevel::kActive;
    b.driver[row] = DriverCfg::kInvert;
  };
  // f0: (0,c+3) line 0 -> south via rows of column c+3 on line index 1.
  hop(0, c + 3, 0, 1);  // drives (0,c+4,1) and (1,c+3,1)
  hop(1, c + 3, 1, 1);  // drives (1,c+4,1) and (2,c+3,1)
  hop(2, c + 3, 1, 1);  // drives (2,c+4,1): the mux's f0 column
  // f1: (2,c+3) line 0 -> one hop east onto the mux's column 0.
  hop(2, c + 3, 0, 0);  // drives (2,c+4,0): the mux's f1 column
  // x3: north pad (0,c+4,2) -> south to (2,c+4,2).
  hop(0, c + 4, 2, 2);
  hop(1, c + 4, 2, 2);

  // Multiplexer LUT over (a,b,c) = (f1, f0, x3): f = /c.b + c.a.
  const auto mux = TruthTable::from_function(3, [](std::uint8_t i) {
    const bool a = i & 1, b = i & 2, s = i & 4;
    return s ? a : b;
  });
  const auto lm = macros::lut3(f, 2, c + 4, mux);

  ports.x3 = {0, c + 4, 2};
  ports.out = lm.out;  // (2, c+7, 0)
  ports.blocks_used = l0.blocks_used + l1.blocks_used + lm.blocks_used + 5;
  return ports;
}

}  // namespace pp::map
