// Macro library: parameterised configuration generators for the structures
// the paper builds by hand in Figs. 9-12.  Each macro writes block configs
// into a Fabric region and returns the port locations (input lines to drive,
// nets to observe after elaboration).
//
// Geometry conventions (see fabric.h): signals flow east/south; a macro's
// inputs are input-line positions (drive them from a neighbour, the router,
// or — on the west/north boundary — external pads); its outputs are the
// lines its final drivers reach.
//
// Block-count bookkeeping vs the paper (recorded in DESIGN.md §7):
//   3-LUT            paper: 2 cells + shared literal cell   ours: 3 blocks
//   D flip-flop      paper: 2 cells                          ours: 4 blocks
//   full adder bit   paper: 1 cell pair, 5 terms             ours: 3 blocks,
//                                                            same 5 terms
// The differences come from our conservative two-lfb connectivity model;
// the *active leaf-cell* counts (what the area argument needs) match the
// paper's scale and are what pp::arch consumes.
#pragma once

#include <array>
#include <vector>

#include "core/fabric.h"
#include "map/router.h"
#include "map/truth_table.h"

namespace pp::map::macros {

/// --- Literal generation ---------------------------------------------------
/// Configure block (r,c) to expand up to 3 variables (on columns 0..k-1)
/// into k true/complement line pairs: line 2i = var_i, line 2i+1 = /var_i.
/// Returns the input column positions.
std::vector<SignalAt> literal_gen(core::Fabric& f, int r, int c, int vars);

/// --- Combinational LUT ----------------------------------------------------
/// Ports of a mapped LUT.
struct LutPorts {
  std::vector<SignalAt> inputs;  ///< variable input lines (block r,c)
  SignalAt out;                  ///< function output line
  int blocks_used = 0;
  int terms_used = 0;
};

/// Map an n-variable (n <= 3) truth table as literal-gen -> product-term
/// block -> OR row, occupying blocks (r,c)..(r,c+2).  This is the Fig. 9
/// 3-LUT structure.  Throws if the SOP cover needs more than 6 terms.
LutPorts lut3(core::Fabric& f, int r, int c, const TruthTable& tt);

/// --- State elements ---------------------------------------------------
struct LatchPorts {
  SignalAt d;       ///< data input line
  SignalAt en;      ///< enable (clock) input line
  SignalAt q;       ///< output line
  int blocks_used = 0;
};

/// Transparent D latch in a block pair (r,c)-(r,c+1): the paper's
/// "level-triggered (transparent) latch ... using the same number of cells".
/// Gated-NAND structure: n1=NAND(D,EN), n2=NAND(n1,EN), cross-coupled
/// output pair via the two lfb lines of the second block.
LatchPorts d_latch(core::Fabric& f, int r, int c);

struct DffPorts {
  SignalAt d;
  SignalAt clk;
  SignalAt q;
  int blocks_used = 0;
};

/// Rising-edge D flip-flop as a master-slave latch pair across blocks
/// (r,c)..(r,c+3); complementary clock generated internally on spare rows
/// (the Fig. 9 "remainder of that cell is used ... to develop the
/// complementary clock signals").
DffPorts dff(core::Fabric& f, int r, int c);

/// --- Asynchronous primitives ----------------------------------------------
struct CElementPorts {
  SignalAt a, b;  ///< input lines (block r,c): both polarities are derived
  SignalAt out;   ///< C-element output line
  int blocks_used = 0;
};

/// Muller C-element as majority-with-feedback: block (r,c) forms the three
/// products ab, a*c, b*c (c tapped from the east partner via lfb), block
/// (r,c+1) NANDs them into c = ab + ac + bc.  The canonical asynchronous
/// state machine of §4.1, realised in one block pair.
CElementPorts c_element(core::Fabric& f, int r, int c);

/// --- Datapath (Fig. 10) -----------------------------------------------
struct AdderBitPorts {
  SignalAt a, na;    ///< operand a, /a input lines
  SignalAt b, nb;    ///< operand b, /b input lines
  SignalAt cin, ncin;///< ripple carry inputs
  SignalAt sum;      ///< sum output line
  SignalAt cout, ncout;  ///< ripple carry outputs (feed the next bit's tile)
  int blocks_used = 0;
  int terms_used = 0;    ///< product terms in the first-level block (5)
};

/// One full-adder bit occupying the 3-block tile A=(r,c), B=(r,c+1),
/// S=(r+1,c+1), with carry forward through F=(r,c+2).  Uses the paper's
/// five shared product terms: ab, a.cin, b.cin, a.b.cin, (a+b+cin).
AdderBitPorts full_adder_bit(core::Fabric& f, int r, int c);

struct RippleAdderPorts {
  std::vector<AdderBitPorts> bits;
  int blocks_used = 0;
};

/// n-bit ripple-carry adder: bit i's tile at (r, c + 3*i).  Operand and
/// carry-in lines of bit 0 are on the west/north boundary when (r,c)=(0,0).
RippleAdderPorts ripple_adder(core::Fabric& f, int r, int c, int bits);

/// Fabric rows/cols needed by ripple_adder.
[[nodiscard]] constexpr int ripple_adder_rows() { return 2; }
[[nodiscard]] constexpr int ripple_adder_cols(int bits) { return 3 * bits; }

}  // namespace pp::map::macros
