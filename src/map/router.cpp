#include "map/router.h"

#include <map>
#include <queue>

namespace pp::map {

using core::BiasLevel;
using core::BlockConfig;
using core::ColSource;
using core::DriverCfg;
using core::kBlockInputs;
using core::kBlockOutputs;
using core::LfbWhich;

bool Router::row_free(int r, int c, int row) const {
  if (r < 0 || r >= fabric_.rows() || c < 0 || c >= fabric_.cols())
    return false;
  if (row_filter_ && !row_filter_(r, c, row)) return false;
  const BlockConfig& b = fabric_.block(r, c);
  for (int j = 0; j < kBlockInputs; ++j)
    if (b.xpoint[row][j] != BiasLevel::kForce1) return false;
  if (b.driver[row] != DriverCfg::kOff) return false;
  // A row tapped by an lfb (own block or a west/north partner tapping
  // east/south) is in use even if its crosspoints are empty.
  auto taps = [&](int br, int bc, LfbWhich which) {
    if (br < 0 || bc < 0 || br >= fabric_.rows() || bc >= fabric_.cols())
      return false;
    const BlockConfig& nb = fabric_.block(br, bc);
    for (const auto& sel : nb.lfb_src)
      if (sel.which == which && sel.row == row) return true;
    return false;
  };
  return !(taps(r, c, LfbWhich::kOwn) || taps(r, c - 1, LfbWhich::kEast) ||
           taps(r - 1, c, LfbWhich::kSouth));
}

bool Router::line_free(int r, int c, int line) const {
  // Drivers that can reach input line (r,c,line): west block (r,c-1) row
  // `line`, north block (r-1,c) row `line`.
  if (c > 0 && r < fabric_.rows() &&
      fabric_.block(r, c - 1).driver[line] != DriverCfg::kOff)
    return false;
  if (r > 0 && c < fabric_.cols() &&
      fabric_.block(r - 1, c).driver[line] != DriverCfg::kOff)
    return false;
  return true;
}

std::optional<RouteResult> Router::route(const SignalAt& src,
                                         const SignalAt& dst, bool invert) {
  auto result = try_route(src, dst, invert);
  if (!result.ok()) return std::nullopt;
  return std::move(*result);
}

Result<RouteResult> Router::try_route(const SignalAt& src, const SignalAt& dst,
                                      bool invert) {
  struct State {
    int r, c, line;
  };
  struct Prev {
    int r, c, line;     // predecessor state
    int via_r, via_c, via_row;  // block/row used for the hop
  };
  auto endpoint_ok = [&](const SignalAt& p) {
    return p.r >= 0 && p.r <= fabric_.rows() && p.c >= 0 &&
           p.c <= fabric_.cols() &&
           !(p.r == fabric_.rows() && p.c == fabric_.cols()) && p.line >= 0 &&
           p.line < kBlockInputs;
  };
  if (!endpoint_ok(src) || !endpoint_ok(dst))
    return Status::out_of_range("route: endpoint outside the fabric");
  if (src == dst && !invert) return RouteResult{};  // already there

  // A line may be used by a hop only if it has no abutting driver yet and is
  // not reserved (the explicit destination may be reserved: reservations
  // exist precisely to keep *other* routes off someone's input line).
  auto line_usable = [&](int r, int c, int line) {
    if (!line_free(r, c, line)) return false;
    if (line_reserved(r, c, line) &&
        !(SignalAt{r, c, line} == dst))
      return false;
    return true;
  };

  std::map<std::tuple<int, int, int>, Prev> visited;
  std::queue<State> frontier;
  frontier.push({src.r, src.c, src.line});
  visited[{src.r, src.c, src.line}] = {-1, -1, -1, -1, -1, -1};

  auto found = [&](const State& s) {
    return s.r == dst.r && s.c == dst.c && s.line == dst.line;
  };

  std::optional<State> goal;
  while (!frontier.empty() && !goal) {
    const State s = frontier.front();
    frontier.pop();
    // The signal sits on input line (s.r, s.c, s.line); block (s.r, s.c)
    // can forward it through any free row.
    const int br = s.r, bc = s.c;
    if (br >= fabric_.rows() || bc >= fabric_.cols()) continue;
    // Skip if this block's column s.line is configured to read an lfb.
    if (fabric_.block(br, bc).col_src[s.line] != ColSource::kAbut) continue;
    for (int row = 0; row < kBlockOutputs; ++row) {
      if (!row_free(br, bc, row)) continue;
      // Driving row `row` lands the value on the east and south lines of
      // index `row`; both must be usable (one driver reaches both).
      if (!line_usable(br, bc + 1, row) || !line_usable(br + 1, bc, row))
        continue;
      // South explored first: among equal-length monotone paths BFS keeps
      // the first-visited predecessor, so routes drop south out of the IO
      // row into open fabric instead of piling east along the boundary.
      for (const auto& [nr, nc] : {std::pair{br + 1, bc}, {br, bc + 1}}) {
        if (nr > fabric_.rows() || nc > fabric_.cols()) continue;
        if (nr == fabric_.rows() && nc == fabric_.cols()) continue;
        const auto key = std::make_tuple(nr, nc, row);
        if (visited.count(key)) continue;
        visited[key] = {s.r, s.c, s.line, br, bc, row};
        const State n{nr, nc, row};
        if (found(n)) {
          goal = n;
          break;
        }
        frontier.push(n);
      }
      if (goal) break;
    }
  }
  if (!goal)
    return Status::resource_exhausted(
        "route: no feed-through path from the source to the destination");

  // Reconstruct and apply: each hop sets xpoint[row][in_line] active and the
  // driver to Invert (polarity-neutral hop).  The final hop's driver becomes
  // Buffer when the caller wants the complement.
  std::vector<Prev> chain;
  State s = *goal;
  for (;;) {
    const Prev p = visited[{s.r, s.c, s.line}];
    if (p.via_row < 0) break;
    chain.push_back(p);
    s = {p.r, p.c, p.line};
  }
  RouteResult result;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    BlockConfig& b = fabric_.block(it->via_r, it->via_c);
    b.xpoint[it->via_row][it->line] = BiasLevel::kActive;
    const bool last = (it + 1 == chain.rend());
    b.driver[it->via_row] =
        (last && invert) ? DriverCfg::kBuffer : DriverCfg::kInvert;
    result.hops.push_back({it->via_r, it->via_c, it->via_row});
  }
  result.hop_count = static_cast<int>(result.hops.size());
  return result;
}

}  // namespace pp::map
