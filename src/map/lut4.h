// Shannon decomposition onto the fabric: any 4-variable function as
//   f(x0..x3) = /x3 . f0(x0..x2)  +  x3 . f1(x0..x2)
// built from three LUT3 chains — two cofactors plus a multiplexer LUT —
// stitched together with explicit feed-through rows.  This is the paper's
// §4 composition story in executable form: once the 3-LUT pair exists,
// wider functions are assembled from pairs plus interconnect-configured
// cells, never from bigger primitives.
//
// Geometry (3 rows x 8 columns):
//   f0 LUT3 at (r+0, c+0..c+2)        out on line (r,   c+3, 0)
//   [row r+1 left as the spacer that keeps the two cofactors' south-copy
//    driver lines from colliding]
//   f1 LUT3 at (r+2, c+0..c+2)        out on line (r+2, c+3, 0)
//   feed-throughs in column c+3/c+4 bring f0 south and x3 down from the
//   north boundary; the mux LUT3 sits at (r+2, c+4..c+6) reading
//   (f1, f0, x3) and emits f at (r+2, c+7, 0).
//
// Inputs: x0..x2 drive BOTH cofactor columns (r, c, 0..2) and
// (r+2, c, 0..2) — operand distribution from the IO ring, as with the
// Fig. 10 operand bus; x3 drives the pad (r, c+4, 2).  The macro must be
// placed at r = 0 with the fabric at least 3 rows tall so all input lines
// are boundary pads.
#pragma once

#include "core/fabric.h"
#include "map/router.h"
#include "map/truth_table.h"

namespace pp::map {

struct Lut4Ports {
  // Drive the same x0..x2 values on both cofactor input sets.
  std::vector<SignalAt> inputs_f0;  ///< x0..x2 columns of the f0 cofactor
  std::vector<SignalAt> inputs_f1;  ///< x0..x2 columns of the f1 cofactor
  SignalAt x3;                      ///< select input pad
  SignalAt out;                     ///< f output line
  int blocks_used = 0;
};

/// Map a 4-variable truth table at origin (r=0, c).  Requires fabric rows
/// >= 3 and cols >= c + 7.  Throws std::invalid_argument on bad geometry
/// or variable count.
Lut4Ports lut4(core::Fabric& fabric, int c, const TruthTable& tt);

/// The two 3-variable cofactors of a 4-variable table (x3 = 0 and x3 = 1).
[[nodiscard]] std::pair<TruthTable, TruthTable> shannon_cofactors(
    const TruthTable& tt);

}  // namespace pp::map
