#include "map/macros.h"

#include <stdexcept>

namespace pp::map::macros {

using core::BiasLevel;
using core::BlockConfig;
using core::ColSource;
using core::DriverCfg;
using core::Fabric;
using core::kBlockInputs;
using core::kBlockOutputs;
using core::LfbWhich;

std::vector<SignalAt> literal_gen(Fabric& f, int r, int c, int vars) {
  if (vars < 1 || vars > 3)
    throw std::invalid_argument("literal_gen: 1..3 variables per block");
  BlockConfig& b = f.block(r, c);
  std::vector<SignalAt> ins;
  for (int i = 0; i < vars; ++i) {
    // Row 2i carries the true literal (inverting driver restores polarity
    // of the single-input NAND), row 2i+1 the complement.
    b.xpoint[2 * i][i] = BiasLevel::kActive;
    b.driver[2 * i] = DriverCfg::kInvert;
    b.xpoint[2 * i + 1][i] = BiasLevel::kActive;
    b.driver[2 * i + 1] = DriverCfg::kBuffer;
    ins.push_back({r, c, i});
  }
  return ins;
}

LutPorts lut3(Fabric& f, int r, int c, const TruthTable& tt) {
  const int n = tt.num_vars();
  if (n > 3) throw std::invalid_argument("lut3: at most 3 variables");
  const auto cover = minimize(tt);
  if (cover.size() > static_cast<std::size_t>(kBlockOutputs))
    throw std::invalid_argument("lut3: cover needs more than 6 terms");

  LutPorts ports;
  ports.inputs = literal_gen(f, r, c, n);

  // Product-term block: column 2i = var_i, column 2i+1 = /var_i.
  BlockConfig& term = f.block(r, c + 1);
  for (std::size_t t = 0; t < cover.size(); ++t) {
    const Implicant& imp = cover[t];
    for (int i = 0; i < n; ++i) {
      if (!(imp.care & (1u << i))) continue;
      const int col = 2 * i + ((imp.value >> i) & 1 ? 0 : 1);
      term.xpoint[t][col] = BiasLevel::kActive;
    }
    // Line must carry /product; an empty product (constant 1) elaborates to
    // a constant-1 row, so its driver must invert.
    term.driver[t] =
        imp.care == 0 ? DriverCfg::kInvert : DriverCfg::kBuffer;
  }

  // OR block: one NAND row over the /product lines gives OR of products.
  BlockConfig& orb = f.block(r, c + 2);
  for (std::size_t t = 0; t < cover.size(); ++t)
    orb.xpoint[0][t] = BiasLevel::kActive;
  // Empty cover = constant 0: the term-free row reads constant 1; invert it.
  orb.driver[0] = cover.empty() ? DriverCfg::kInvert : DriverCfg::kBuffer;

  ports.out = {r, c + 3, 0};
  ports.blocks_used = 3;
  ports.terms_used = static_cast<int>(cover.size());
  return ports;
}

LatchPorts d_latch(Fabric& f, int r, int c) {
  // Block A: n1 = NAND(D, EN);  n2 = NAND(n1, EN)  (n1 via lfb0).
  BlockConfig& a = f.block(r, c);
  a.lfb_src[0] = {LfbWhich::kOwn, 0};
  a.col_src[2] = ColSource::kLfb0;
  a.xpoint[0][0] = BiasLevel::kActive;  // D
  a.xpoint[0][1] = BiasLevel::kActive;  // EN
  a.driver[0] = DriverCfg::kBuffer;     // line0 = n1
  a.xpoint[1][2] = BiasLevel::kActive;  // n1 (lfb)
  a.xpoint[1][1] = BiasLevel::kActive;  // EN
  a.driver[1] = DriverCfg::kBuffer;     // line1 = n2

  // Block B: cross-coupled output pair.  Q = NAND(n1, QB); QB = NAND(n2, Q).
  BlockConfig& b = f.block(r, c + 1);
  b.lfb_src[0] = {LfbWhich::kOwn, 1};  // QB
  b.lfb_src[1] = {LfbWhich::kOwn, 0};  // Q
  b.col_src[2] = ColSource::kLfb0;
  b.col_src[3] = ColSource::kLfb1;
  b.xpoint[0][0] = BiasLevel::kActive;  // n1
  b.xpoint[0][2] = BiasLevel::kActive;  // QB
  b.driver[0] = DriverCfg::kBuffer;     // line0 = Q
  b.xpoint[1][1] = BiasLevel::kActive;  // n2
  b.xpoint[1][3] = BiasLevel::kActive;  // Q

  return LatchPorts{{r, c, 0}, {r, c, 1}, {r, c + 2, 0}, 2};
}

DffPorts dff(Fabric& f, int r, int c) {
  // Master-slave with internally generated complementary clock (spare rows
  // of the first stage), rising-edge triggered: master transparent while
  // CLK = 0, slave while CLK = 1.
  // Block A (master input stage): cols D(0), CLK(1), /CLK(lfb0 on col2),
  // n1 (lfb1 on col3).
  BlockConfig& a = f.block(r, c);
  a.lfb_src[0] = {LfbWhich::kOwn, 2};  // row2 = /CLK
  a.lfb_src[1] = {LfbWhich::kOwn, 0};  // row0 = n1
  a.col_src[2] = ColSource::kLfb0;
  a.col_src[3] = ColSource::kLfb1;
  a.xpoint[2][1] = BiasLevel::kActive;  // row2 = NAND(CLK) = /CLK
  a.xpoint[0][0] = BiasLevel::kActive;  // n1 = NAND(D, /CLK)
  a.xpoint[0][2] = BiasLevel::kActive;
  a.driver[0] = DriverCfg::kBuffer;  // line0 = n1
  a.xpoint[1][3] = BiasLevel::kActive;  // n2 = NAND(n1, /CLK)
  a.xpoint[1][2] = BiasLevel::kActive;
  a.driver[1] = DriverCfg::kBuffer;  // line1 = n2
  a.xpoint[3][1] = BiasLevel::kActive;  // row3 = NAND(CLK)
  a.driver[3] = DriverCfg::kInvert;     // line3 = CLK (feed-through)

  // Block B (master output pair + clock feed-through).
  BlockConfig& b = f.block(r, c + 1);
  b.lfb_src[0] = {LfbWhich::kOwn, 1};  // QmB
  b.lfb_src[1] = {LfbWhich::kOwn, 0};  // Qm
  b.col_src[4] = ColSource::kLfb0;
  b.col_src[5] = ColSource::kLfb1;
  b.xpoint[0][0] = BiasLevel::kActive;  // Qm = NAND(n1, QmB)
  b.xpoint[0][4] = BiasLevel::kActive;
  b.driver[0] = DriverCfg::kBuffer;  // line0 = Qm
  b.xpoint[1][1] = BiasLevel::kActive;  // QmB = NAND(n2, Qm)
  b.xpoint[1][5] = BiasLevel::kActive;
  b.xpoint[2][3] = BiasLevel::kActive;  // row2 = NAND(CLK)
  b.driver[2] = DriverCfg::kInvert;     // line2 = CLK onward

  // Block C (slave input stage): cols Qm(0), CLK(2), n1s (lfb0 on col3).
  BlockConfig& cc = f.block(r, c + 2);
  cc.lfb_src[0] = {LfbWhich::kOwn, 0};
  cc.col_src[3] = ColSource::kLfb0;
  cc.xpoint[0][0] = BiasLevel::kActive;  // n1s = NAND(Qm, CLK)
  cc.xpoint[0][2] = BiasLevel::kActive;
  cc.driver[0] = DriverCfg::kBuffer;  // line0 = n1s
  cc.xpoint[1][3] = BiasLevel::kActive;  // n2s = NAND(n1s, CLK)
  cc.xpoint[1][2] = BiasLevel::kActive;
  cc.driver[1] = DriverCfg::kBuffer;  // line1 = n2s

  // Block D (slave output pair).
  BlockConfig& dd = f.block(r, c + 3);
  dd.lfb_src[0] = {LfbWhich::kOwn, 1};  // QB
  dd.lfb_src[1] = {LfbWhich::kOwn, 0};  // Q
  dd.col_src[2] = ColSource::kLfb0;
  dd.col_src[3] = ColSource::kLfb1;
  dd.xpoint[0][0] = BiasLevel::kActive;  // Q = NAND(n1s, QB)
  dd.xpoint[0][2] = BiasLevel::kActive;
  dd.driver[0] = DriverCfg::kBuffer;  // line0 = Q
  dd.xpoint[1][1] = BiasLevel::kActive;  // QB = NAND(n2s, Q)
  dd.xpoint[1][3] = BiasLevel::kActive;

  return DffPorts{{r, c, 0}, {r, c, 1}, {r, c + 4, 0}, 4};
}

CElementPorts c_element(Fabric& f, int r, int c) {
  // Block A: the three products; the state variable c is tapped from the
  // east partner's majority row through lfb0 (the pair-level feedback of
  // Fig. 8).  Block B: cout = ab + ac + bc — the Muller C-element equation
  // c = a.b + a.c' + b.c' of §4.1.
  BlockConfig& a = f.block(r, c);
  a.lfb_src[0] = {LfbWhich::kEast, 0};
  a.col_src[2] = ColSource::kLfb0;
  a.xpoint[0][0] = BiasLevel::kActive;  // /(ab)
  a.xpoint[0][1] = BiasLevel::kActive;
  a.driver[0] = DriverCfg::kBuffer;
  a.xpoint[1][0] = BiasLevel::kActive;  // /(a.c)
  a.xpoint[1][2] = BiasLevel::kActive;
  a.driver[1] = DriverCfg::kBuffer;
  a.xpoint[2][1] = BiasLevel::kActive;  // /(b.c)
  a.xpoint[2][2] = BiasLevel::kActive;
  a.driver[2] = DriverCfg::kBuffer;

  BlockConfig& b = f.block(r, c + 1);
  b.xpoint[0][0] = BiasLevel::kActive;
  b.xpoint[0][1] = BiasLevel::kActive;
  b.xpoint[0][2] = BiasLevel::kActive;
  b.driver[0] = DriverCfg::kBuffer;  // line0 = c

  return CElementPorts{{r, c, 0}, {r, c, 1}, {r, c + 2, 0}, 2};
}

AdderBitPorts full_adder_bit(Fabric& f, int r, int c) {
  // Tile: A=(r,c) products, B=(r,c+1) carry plane, S=(r+1,c+1) sum row,
  // F=(r,c+2) carry forward on lines 2/3.
  // A's columns: a(0), /a(1), cin(2), /cin(3), b(4), /b(5) — the carry pair
  // arrives on columns 2/3 so that tile i+1 receives it from tile i's F
  // block without colliding with the operand columns.
  BlockConfig& a = f.block(r, c);
  auto on = [](BlockConfig& blk, int row, std::initializer_list<int> cols,
               DriverCfg drv) {
    for (int col : cols) blk.xpoint[row][col] = BiasLevel::kActive;
    blk.driver[row] = drv;
  };
  on(a, 0, {0, 4}, DriverCfg::kBuffer);        // L0 = /(a.b)
  on(a, 1, {0, 2}, DriverCfg::kBuffer);        // L1 = /(a.cin)
  on(a, 2, {4, 2}, DriverCfg::kBuffer);        // L2 = /(b.cin)
  on(a, 3, {0, 4, 2}, DriverCfg::kBuffer);     // L3 = /(a.b.cin)
  on(a, 4, {1, 5, 3}, DriverCfg::kBuffer);     // L4 = a+b+cin (NAND of complements)

  BlockConfig& b = f.block(r, c + 1);
  b.lfb_src[0] = {LfbWhich::kOwn, 0};  // cout row
  b.col_src[5] = ColSource::kLfb0;
  on(b, 0, {0, 1, 2}, DriverCfg::kBuffer);     // cout = ab + a.cin + b.cin
  on(b, 1, {0, 1, 2}, DriverCfg::kInvert);     // /cout
  on(b, 2, {5, 3}, DriverCfg::kBuffer);        // /(cout./(abc)) = /cout + abc
  on(b, 3, {4}, DriverCfg::kInvert);           // a+b+cin onward

  BlockConfig& s = f.block(r + 1, c + 1);
  on(s, 0, {2, 3}, DriverCfg::kInvert);        // sum = (a+b+cin).(/cout+abc)

  BlockConfig& fwd = f.block(r, c + 2);
  on(fwd, 2, {0}, DriverCfg::kInvert);         // cout forward on line 2
  on(fwd, 3, {1}, DriverCfg::kInvert);         // /cout forward on line 3

  AdderBitPorts p;
  p.a = {r, c, 0};
  p.na = {r, c, 1};
  p.cin = {r, c, 2};
  p.ncin = {r, c, 3};
  p.b = {r, c, 4};
  p.nb = {r, c, 5};
  p.sum = {r + 1, c + 2, 0};
  p.cout = {r, c + 3, 2};
  p.ncout = {r, c + 3, 3};
  p.blocks_used = 4;
  p.terms_used = 5;
  return p;
}

RippleAdderPorts ripple_adder(Fabric& f, int r, int c, int bits) {
  if (bits < 1) throw std::invalid_argument("ripple_adder: bits >= 1");
  if (r + ripple_adder_rows() > f.rows() ||
      c + ripple_adder_cols(bits) > f.cols())
    throw std::invalid_argument("ripple_adder: fabric too small");
  RippleAdderPorts out;
  for (int i = 0; i < bits; ++i) {
    out.bits.push_back(full_adder_bit(f, r, c + 3 * i));
    out.blocks_used += out.bits.back().blocks_used;
  }
  return out;
}

}  // namespace pp::map::macros
