// platform::Compiler — one entry point from a behavioural netlist to
// programmed polymorphic hardware.
//
// The seed exposed the flow as loose layers (map::Netlist, map::macros,
// map::Router, core::Fabric::elaborate, sim::Simulator) and every example
// and bench driver hand-rolled the same glue.  The compiler owns that glue:
//
//   map::Netlist ──compile──▶ CompiledDesign
//     │  1. decompose cells into ≤3-input nodes (the fabric's natural LUT3)
//     │  2. place nodes on a south-east staircase (one row band per node,
//     │     IO pads on the north boundary), so every fanin is strictly
//     │     north-west of its reader — the fabric's east/south signal flow
//     │     (DESIGN.md §5) then guarantees a feed-through path exists
//     │  3. route every connection with map::Router (pad lines reserved so
//     │     no feed-through ever collides with external IO)
//     │  4. elaborate, encode the 128-bit-per-block bitstream, and account
//     │     resources against the 4-LUT baseline (platform::Report)
//
// Sequential netlists: DFF cells become *boundary registers* — their Q is a
// north-boundary pad and their D a probe point on the fabric; Session::step
// closes the loop at the array edge, the same modelling decision the Fig. 10
// accumulator uses (DESIGN.md §6).
//
// Defects: given an arch::DefectMap, the compiler vetoes defective rows in
// the router, prechecks tile sites, and slides the whole placement east
// until it lands defect-free — the homogeneous-array remapping story of §5.

/// \file
/// \brief platform::Compiler / CompiledDesign — one entry point from a
/// behavioural netlist to programmed polymorphic hardware.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/defects.h"
#include "core/fabric.h"
#include "map/netlist.h"
#include "map/router.h"
#include "platform/report.h"
#include "poly/netlist.h"
#include "sim/evaluator.h"
#include "util/status.h"

namespace pp::platform {

/// What the compiler targets: the polymorphic fabric (simulatable hardware)
/// or the conventional 4-LUT baseline (a resource-accounting model only —
/// the §4 comparisons need both sides from the same netlist).
enum class Target {
  kPolymorphic,   ///< the paper's NAND-block fabric (simulatable)
  kFpgaBaseline,  ///< conventional 4-LUT accounting model (not simulatable)
};

/// Knobs for one compilation (see the field docs; defaults reproduce the
/// paper's setup on an auto-sized fabric).
struct CompileOptions {
  /// Fabric rows; 0 = auto-size to the placement.  Explicit dimensions
  /// smaller than the placement fail with kResourceExhausted.
  int rows = 0;
  /// Fabric columns; 0 = auto-size (see rows).
  int cols = 0;
  /// What to compile for: simulatable fabric or baseline accounting.
  Target target = Target::kPolymorphic;
  /// Optional defect map (not owned; must outlive the call).  The compiled
  /// design is guaranteed to avoid every marked resource.
  const arch::DefectMap* defects = nullptr;
  /// How many one-column placement slides to try when avoiding defects.
  int max_placement_shifts = 24;
  /// Gate delays used at elaboration time.
  core::FabricDelays delays{};
  /// Baseline technology parameters for the report.
  fpga::FpgaParams fpga{};
};

/// A named external connection point of a compiled design.  `at` addresses
/// input line (r, c, line) of the configured fabric (a north-boundary pad
/// for inputs, an output-driver line for outputs).
struct PortBinding {
  std::string name;   ///< port name (netlist input/output name)
  map::SignalAt at;   ///< fabric input-line position backing the port
};

/// A DFF mapped as a boundary register: `q_pad` is the north-boundary pad
/// that plays Q, `d_at` the line where the settled D value is observable.
struct StateBinding {
  std::string name;      ///< the DFF's name in the source netlist
  map::SignalAt q_pad;   ///< north-boundary pad playing Q
  map::SignalAt d_at;    ///< line where the settled D value is observable
};

/// The result of compilation: a configured fabric, its serialised
/// bitstream, the name→line bindings needed to drive and observe it, and
/// the resource report.  Self-contained: Session loads designs from the
/// *bitstream*, round-tripping the configuration exactly as a
/// reconfiguration controller would.
struct CompiledDesign {
  Target target = Target::kPolymorphic;  ///< which side this design is for
  core::Fabric fabric{1, 1};           ///< configured fabric (polymorphic)
  std::vector<std::uint8_t> bitstream; ///< encode_fabric(fabric)
  core::FabricDelays delays{};         ///< gate delays used at elaboration
  std::vector<PortBinding> inputs;     ///< netlist input order
  std::vector<PortBinding> outputs;    ///< netlist output order
  std::vector<StateBinding> state;     ///< DFF boundary registers
  Report report;                       ///< resource/timing accounting
  /// Per-gate levelization of the elaborated circuit, recorded at compile
  /// time (elaboration is deterministic, so it matches the circuit a
  /// Session re-elaborates from the bitstream).  Lets the bit-parallel
  /// engine skip the topological sort when a reconfigured fabric is
  /// recompiled/reloaded.  Empty when the circuit has feedback.
  sim::LevelMap levels;
  /// Hash of the source netlist (map::content_hash) mixed with the compile
  /// target and gate delays.  rt::Device uses it to dedupe repeated loads
  /// of the same design; 0 means "unknown" (hand-assembled designs) and is
  /// never deduped.
  std::uint64_t content_hash = 0;
};

/// A compiled *polymorphic* design: the source multi-mode netlist plus one
/// CompiledDesign per environment mode — each mode is a distinct
/// configuration view of the shared structure (the fabric and bitstream
/// layers stay mode-blind; the environment, not the bitstream, selects
/// which view is live).  `views[m]` is Compiler::compile of
/// `netlist.view(m)`, so any view loads into an ordinary Session; the
/// whole design loads into a mode-aware one with Session::load_poly.
struct PolyDesign {
  poly::PolyNetlist netlist;           ///< the multi-mode source
  std::vector<CompiledDesign> views;   ///< one configured fabric per mode
};

/// The four-step netlist→fabric pipeline (decompose, place, route,
/// account & serialise — see the file comment).  Stateless apart from its
/// options; compile() may be called repeatedly.
class Compiler {
 public:
  /// A compiler with fixed options (defaults: auto-sized polymorphic
  /// fabric, no defects).
  explicit Compiler(CompileOptions options = {})
      : options_(std::move(options)) {}

  /// Compile a netlist.  Failure modes: kUnimplemented for constructs the
  /// mapper cannot place, kResourceExhausted when routing or defect
  /// avoidance runs out of fabric, kInternal if a mapped design fails its
  /// own validity checks.
  [[nodiscard]] Result<CompiledDesign> compile(
      const map::Netlist& netlist) const;

  /// Compile a polymorphic netlist: every configuration view goes through
  /// the ordinary pipeline (so each mode gets its own placed, routed,
  /// serialised fabric).  Failure modes are compile()'s, surfaced with the
  /// offending mode named, plus kInvalidArgument for an invalid netlist.
  [[nodiscard]] Result<PolyDesign> compile_poly(
      const poly::PolyNetlist& netlist) const;

  /// The options this compiler was constructed with.
  [[nodiscard]] const CompileOptions& options() const noexcept {
    return options_;
  }

 private:
  CompileOptions options_;
};

/// One-shot convenience: Compiler(options).compile(netlist).
[[nodiscard]] Result<CompiledDesign> compile(const map::Netlist& netlist,
                                             const CompileOptions& options = {});

/// The identical-content rule shared by every residency layer
/// (rt::DesignCache dedupe/idempotency, rt::DevicePool re-registration):
/// same content hash (fast path; 0 only equals 0), byte-identical
/// bitstream (authoritative), and equal delays (the bitstream cannot see a
/// timing-model change).  Two designs that satisfy it are the same
/// personality and may be aliased or replicated interchangeably.
[[nodiscard]] bool same_content(const CompiledDesign& a,
                                const CompiledDesign& b);

/// Re-target a compiled polymorphic design onto a larger array: the placed
/// blocks keep their top-left-anchored coordinates, the extra area stays
/// empty (3-state drivers released, so the padding only loads the design's
/// boundary nets and never drives into it), and the bitstream is re-encoded
/// at the new dimensions.  Port bindings stay valid verbatim.  This is how
/// rt::Device makes differently auto-sized designs resident on one fixed
/// fabric.  Fails with kFailedPrecondition for an FPGA-baseline design and
/// kResourceExhausted when the design does not fit.  The recorded
/// levelization is dropped (the padded fabric elaborates to a different
/// circuit); engines recompute it on first use.
[[nodiscard]] Result<CompiledDesign> pad_to(const CompiledDesign& design,
                                            int rows, int cols);

}  // namespace pp::platform
