// platform::BatchExecutor — the engine-owning batch-evaluation core shared
// by the synchronous Session API and the pp::rt device runtime.
//
// PR 2 put the two evaluation engines (bit-parallel CompiledEval, event-
// driven EventEval) behind sim::Evaluator but left the policy — engine
// selection, lazy construction and caching, wide-batch packing, sharding
// whole granules across util::thread_pool — buried in Session.  The runtime needs
// exactly the same machinery per resident design, so it lives here: one
// BatchExecutor per (circuit, input nets, output nets) binding, engines
// built on first use and cached for the executor's lifetime (which is how a
// design re-activated on an rt::Device reuses its levelization and compiled
// program instead of re-deriving them).
//
// Thread-safety: `run` shards *within* one call, but the executor itself is
// not synchronized — callers serialize calls (Session is single-threaded by
// contract; rt::Device funnels every job through its dispatcher).

/// \file
/// \brief platform::BatchExecutor — the engine-owning batch-evaluation
/// core shared by Session and the pp::rt runtime.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sim/evaluator.h"
#include "sim/jit.h"
#include "util/status.h"

namespace pp::platform {

/// One vector of port values, index = bound port order.
using BitVector = std::vector<bool>;
/// One stimulus vector (bound input order); a batch is a span of these.
using InputVector = BitVector;

/// Which evaluation engine batch runs use.
enum class Engine : std::uint8_t {
  /// Pick the fastest engine the design supports: a *ready* JIT kernel
  /// (never waits for one), else the bit-parallel compiled engine
  /// (combinational, no dynamic tri-state, no behavioural async gates),
  /// else the event-driven path.
  kAuto,
  /// Force the event-driven clone-sharding path (the timing-accurate
  /// reference; mandatory for anything CompiledEval rejects).
  kEventDriven,
  /// Force the bit-parallel compiled engine; runs fail with the engine's
  /// compile Status when the design is unsupported.
  kCompiled,
  /// Force the JIT-compiled native kernel (sim::JitEval), blocking until
  /// its build finishes when one is in flight; runs fail with the build
  /// Status when no host compiler is available or the design is
  /// unsupported.
  kJit,
};

/// Per-call knobs for a batch run (engine choice, sharding, budgets).
struct RunOptions {
  /// Worker cap for a batch run; 0 = every worker of the global pool.
  /// 1 forces the serial reference path (no cloning).
  std::size_t max_threads = 0;
  /// Event budget per vector (oscillation guard; event engine only).
  std::uint64_t max_events_per_vector = 2'000'000;
  /// Engine selection policy.
  Engine engine = Engine::kAuto;
  /// Environment mode to evaluate, for polymorphic designs loaded with
  /// Session::load_poly: the run is served by that mode's configuration
  /// view.  Ordinary designs (and BatchExecutor, which serves exactly one
  /// view) accept only 0.
  std::uint32_t mode = 0;
  /// Sweep *every* environment mode in one batch (load_poly sessions
  /// only): run_vectors returns mode-major results — mode m's outputs for
  /// vector v at index `m * vectors.size() + v`.  Mutually exclusive with
  /// a non-zero `mode`.
  bool sweep_modes = false;
};

/// Cumulative accounting of one executor's batch runs (all counters
/// monotone; failed runs count toward runs but not vectors_run).  Shares
/// the executor's synchronization contract: read it from the thread that
/// serializes run() calls.
struct ExecutorStats {
  std::uint64_t runs = 0;           ///< run() calls that reached an engine
  std::uint64_t vectors_run = 0;    ///< stimulus vectors evaluated OK
  std::uint64_t compiled_runs = 0;  ///< runs served by the compiled engine
  std::uint64_t event_runs = 0;     ///< runs served by the event engine
  /// Compiled-engine kernel passes that took the two-valued single-plane
  /// fast path (no unknown bits in the batch; see DESIGN.md §12).
  std::uint64_t fast_passes = 0;
  /// Compiled-engine kernel passes that ran the full two-plane kernel.
  std::uint64_t slow_passes = 0;
  /// Clock cycles executed by the compiled sequential kernel (per pass
  /// group; see sim::CompiledEval::KernelStats::cycles_run).
  std::uint64_t cycles_run = 0;
  /// Register captures committed at clock edges by the compiled kernel.
  std::uint64_t state_commits = 0;
  /// Compiled sequential cycles that rode the single-plane fast path.
  std::uint64_t fast_cycle_passes = 0;
  /// Kernel passes (wide passes + clocked cycles) served by the JIT
  /// native engine.  JIT-served runs also count in compiled_runs — the
  /// JIT serves the same compiled program, natively — so this is the
  /// share of that work done by generated code.
  std::uint64_t jit_passes = 0;
  /// JIT kernel builds that invoked the host compiler (a disk-cache miss).
  std::uint64_t jit_compiles = 0;
  /// JIT kernel builds satisfied entirely from the shared disk cache.
  std::uint64_t jit_cache_hits = 0;
  /// Runs that asked for the JIT (warm_jit requested, Engine::kAuto) but
  /// were served by another engine — the kernel was still building, or
  /// its build failed (no host compiler, oversized program).
  std::uint64_t jit_fallbacks = 0;
};

/// Pack a batch of equal-width vectors into structure-of-arrays bit
/// planes: plane `i` holds bit `i` of every vector, ceil(count/8) bytes
/// per plane (vector v lands in byte v/8, bit v%8), planes concatenated
/// in index order, trailing pad bits zero.  This is the canonical
/// SoA-on-a-byte-stream layout shared by the serving wire protocol
/// (docs/serving-protocol.md) and any other consumer that ships batches
/// out of process; the evaluation engines use the same orientation at
/// word granularity internally.  Every vector must have exactly `width`
/// bits — the caller validates (the serving layer does so before packing).
[[nodiscard]] std::vector<std::uint8_t> pack_bit_planes(
    std::span<const BitVector> vectors, std::size_t width);

/// CRC-32 checksum identifying a batch of result vectors exactly: the
/// count, every vector's width, and every bit participate, so two batches
/// collide only as a 32-bit CRC can.  This is the shadow-verification hook
/// rt::DevicePool samples jobs with (PoolOptions::verify_sample_rate): the
/// checksum of a device's result planes is recomputed against a reference
/// engine's output and any disagreement marks the device as corrupting
/// (DESIGN.md §15).  Deterministic across platforms.
[[nodiscard]] std::uint32_t result_checksum(std::span<const BitVector> results);

/// Inverse of pack_bit_planes: rebuild `count` vectors of `width` bits
/// from concatenated bit planes.  Fails with kInvalidArgument when
/// `bytes` is not exactly width * ceil(count/8) bytes or any trailing pad
/// bit of a plane is non-zero (wire input is never trusted; a non-canonical
/// encoding is rejected, not normalized).
[[nodiscard]] Result<std::vector<BitVector>> unpack_bit_planes(
    std::span<const std::uint8_t> bytes, std::size_t count,
    std::size_t width);

/// The engine-owning batch-evaluation core: one executor per (circuit,
/// input nets, output nets) binding, engines built lazily and cached for
/// its lifetime.  Not synchronized — callers serialize run() calls (see
/// the file comment).
class BatchExecutor {
 public:
  /// Bind an executor to a circuit.  The circuit must outlive the executor;
  /// nets are validated by the engines on first use.  `output_names` label
  /// outputs in diagnostics; `levels` optionally reuses a previously
  /// computed levelization of the same circuit (empty = recompute).
  /// `regs` declares external register loops (platform boundary registers;
  /// see sim::ExternalReg) that run_cycles closes at each clock edge — a
  /// design with behavioural state gates or a non-empty `regs` is *clocked*
  /// and evaluates through run_cycles instead of run.
  BatchExecutor(const sim::Circuit& circuit, std::vector<sim::NetId> in_nets,
                std::vector<sim::NetId> out_nets,
                std::vector<std::string> output_names, sim::LevelMap levels,
                std::vector<sim::ExternalReg> regs = {});

  /// Moves transfer the cached engines (and any in-flight JIT build — its
  /// task is self-contained, so it lands wherever the state moves); the
  /// moved-from executor may only be destroyed or assigned to.
  BatchExecutor(BatchExecutor&&) noexcept;
  /// Moves transfer the cached engines; the moved-from executor may only
  /// be destroyed or assigned to.
  BatchExecutor& operator=(BatchExecutor&&) noexcept;
  /// Joins any in-flight JIT kernel build before releasing the engines.
  ~BatchExecutor();

  /// Evaluate many independent stimulus vectors (bound input order) and
  /// return the outputs (bound output order) for each.  Vectors are packed
  /// directly into the engine's structure-of-arrays plane layout in
  /// wide-batch granules (the engine's preferred_words() — 512 lanes per
  /// kernel pass for the default compiled engine) and sharded across the
  /// global thread pool at granule boundaries: the compiled engine clones
  /// only its scratch slots, the event engine clones its settled base
  /// simulator per shard.  Per-shard packing scratch is reused across the
  /// shard's granules.
  [[nodiscard]] Result<std::vector<BitVector>> run(
      std::span<const InputVector> vectors, const RunOptions& options = {});

  /// Evaluate clocked batches: `stimulus` holds independent stimulus
  /// *streams* of `cycles` vectors each, stream-major (stream s's cycle c
  /// is `stimulus[s * cycles + c]`; `stimulus.size()` must be a multiple of
  /// `cycles`).  Every stream starts from reset (behavioural registers X,
  /// external registers at their declared value), runs `cycles` clock
  /// cycles, and yields one result vector per cycle in the same layout.
  /// Streams pack into SoA lane granules and shard across the pool exactly
  /// like run(): per-lane register files are independent, so a clone
  /// carries its shard's state in its own scratch planes.  Combinational
  /// designs are accepted (each cycle is an independent evaluation).  An
  /// output that settles to X in any cycle fails with kInternal — clocked
  /// designs surface power-on X unless the stimulus asserts their reset in
  /// early cycles.
  [[nodiscard]] Result<std::vector<BitVector>> run_cycles(
      std::span<const InputVector> stimulus, std::size_t cycles,
      const RunOptions& options = {});

  /// Status of the bit-parallel compiled engine for this binding: OK when
  /// Engine::kAuto will use it, else why CompiledEval rejected the circuit.
  /// Builds and caches the engine on first call.  For a clocked binding
  /// this is the *sequential* compilation (the engine run_cycles uses).
  [[nodiscard]] Status compiled_engine_status();

  /// True when this binding is clocked (behavioural state gates or
  /// declared external registers): run() rejects it, run_cycles drives it.
  [[nodiscard]] bool sequential() const noexcept { return sequential_; }

  /// Start building the JIT native kernel for this binding in the
  /// background (once; later calls are no-ops).  The build compiles its
  /// own private program image on the async thread — it never touches the
  /// cached engines a concurrent dispatcher may be running on — and the
  /// interpreter keeps serving until the kernel is ready: Engine::kAuto
  /// runs poll non-blocking and hot-swap onto the JIT when the build has
  /// landed, counting jit_fallbacks until then.  A failed build (no host
  /// compiler, unsupported or oversized design) parks its Status where
  /// jit_engine_status() reports it; runs keep falling back forever.
  void warm_jit(const sim::JitOptions& options = {});

  /// Status of the JIT native kernel: requests the build if nobody has
  /// (warm_jit), *blocks* until it finishes, and returns OK when
  /// Engine::kJit runs will be served by generated code — else why the
  /// build failed.  Shares the executor's caller-serialized contract.
  [[nodiscard]] Status jit_engine_status();

  /// Number of bound input nets (the width every stimulus vector must have).
  [[nodiscard]] std::size_t input_count() const noexcept {
    return in_nets_.size();
  }
  /// Number of bound output nets (the width of every result vector).
  [[nodiscard]] std::size_t output_count() const noexcept {
    return out_nets_.size();
  }

  /// Accounting across this executor's lifetime — how often each engine
  /// actually served, how many vectors went through, and how many compiled
  /// kernel passes took the two-valued fast path.  Surfaced as
  /// Session::executor_stats(); rt::Device keeps its own aggregate
  /// (DeviceStats) under its stats lock because this view shares the
  /// executor's caller-serialized contract.
  [[nodiscard]] const ExecutorStats& stats() const noexcept { return stats_; }

  /// The slice of stats() attributable to the most recent *successful*
  /// run() (runs == 1, that run's vectors and kernel passes).  Failed runs
  /// leave it untouched (their kernel passes still reach the lifetime
  /// stats() totals); all-zero before the first success.  This is what
  /// rt::Device folds into DeviceStats per completed job without holding
  /// executor state across jobs.
  [[nodiscard]] const ExecutorStats& last_run_stats() const noexcept {
    return last_run_;
  }

 private:
  struct JitState;  // async build bookkeeping, defined in executor.cpp

  [[nodiscard]] Status ensure_compiled();
  [[nodiscard]] Result<sim::Evaluator*> ensure_event(std::uint64_t budget);
  /// Adopt a finished build if one is pending; the ready engine or null.
  [[nodiscard]] sim::JitEval* jit_ready();
  /// Block until the (possibly just-requested) build finishes.
  [[nodiscard]] Status ensure_jit();

  const sim::Circuit* circuit_;
  std::vector<sim::NetId> in_nets_;
  std::vector<sim::NetId> out_nets_;
  std::vector<std::string> output_names_;
  sim::LevelMap levels_;
  std::vector<sim::ExternalReg> regs_;
  bool sequential_ = false;

  bool compiled_attempted_ = false;
  Status compiled_status_;
  std::unique_ptr<sim::CompiledEval> compiled_;
  std::unique_ptr<sim::EventEval> event_engine_;
  std::unique_ptr<JitState> jit_state_;
  ExecutorStats stats_;
  ExecutorStats last_run_;
};

}  // namespace pp::platform
