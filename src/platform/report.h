// Resource/area/power/timing accounting for compiled designs — the single
// source of the block-count numbers the TAB-A/TAB-B benches print, so the
// benches cannot drift from the library.
//
// `fabric_stats` is the one shared accounting helper: every consumer of
// "how many blocks / leaf cells / configuration bits / λ² does this
// configured fabric cost" goes through it (the paper's resource comparisons
// are exactly these four numbers).

/// \file
/// \brief platform::Report / fabric_stats / baseline_stats — the shared
/// resource/area/power/timing accounting for compiled designs.
#pragma once

#include "arch/area_model.h"
#include "core/bitstream.h"
#include "core/fabric.h"
#include "fpga/logic_cell.h"
#include "fpga/lut_map.h"
#include "map/netlist.h"
#include "sim/circuit.h"

namespace pp::platform {

/// The paper-facing resource numbers of one configured fabric.
struct FabricStats {
  int used_blocks = 0;    ///< non-empty blocks (the tile count TAB-B charges)
  int active_cells = 0;   ///< instantiated leaf cells (the §3 area argument)
  long long config_bits = 0;  ///< 128 x used blocks (the TAB-A metric)
  double area_lambda2 = 0.0;  ///< used-blocks λ² (arch::design_area_lambda2)
};

/// Compute the shared accounting for a configured fabric.
[[nodiscard]] FabricStats fabric_stats(const core::Fabric& fabric,
                                       const arch::PolyAreaParams& area = {});

/// The conventional-FPGA side of the function-for-function comparison.
struct BaselineStats {
  int luts = 0;               ///< 4-LUTs after tech mapping
  int ffs = 0;                ///< flip-flops after tech mapping
  int depth = 0;              ///< LUT levels on the critical path
  int logic_cells = 0;        ///< logic cells (LUT+FF sites) consumed
  long long config_bits = 0;  ///< baseline configuration bits
  double area_lambda2 = 0.0;  ///< baseline λ² area (fpga::FpgaParams)
};

/// Tech-map `netlist` onto the 4-LUT baseline and account it.
[[nodiscard]] BaselineStats baseline_stats(const map::Netlist& netlist,
                                           const fpga::FpgaParams& params = {});

/// Everything `platform::compile` learns about a design.
struct Report {
  FabricStats fabric;          ///< polymorphic-side resources
  BaselineStats baseline;      ///< 4-LUT baseline (always computed; cheap)
  sim::SimTime critical_path_ps = 0;  ///< static timing of the elaborated net
  double config_static_w_per_cm2 = 0; ///< §3 configuration-plane standby power
  int netlist_cells = 0;       ///< cells in the source netlist
  int netlist_depth = 0;       ///< combinational depth of the source netlist
  int mapped_nodes = 0;        ///< ≤3-input nodes after decomposition
  int route_hops = 0;          ///< feed-through rows spent on interconnect
  int fabric_rows = 0;         ///< compiled fabric rows
  int fabric_cols = 0;         ///< compiled fabric columns
};

}  // namespace pp::platform
