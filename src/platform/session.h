// platform::Session — drive a compiled design (or any configured fabric /
// circuit) by port *name*, with a batch path that evaluates many stimulus
// vectors in parallel.
//
// A session owns the whole simulation stack: the fabric decoded from the
// design's bitstream (round-tripping the configuration exactly as a
// reconfiguration controller would), its elaborated circuit, and the event
// simulator.  Callers poke/peek ports by name; the raw simulator stays
// reachable for waveforms and stats.
//
// Sequential designs (DFF boundary registers, DESIGN.md §6) advance with
// `step`: combinational settle, outputs sampled, then the captured D values
// are driven back onto the Q pads — the register loop closes at the array
// edge.  `step` rides the compiled sequential engine when the design
// supports it, and `run_cycles` is the batch counterpart: whole stimulus
// streams evaluated as SoA lanes with per-lane register files
// (DESIGN.md §13).
//
// `run_vectors` is the throughput path, and the session is the thin
// synchronous convenience over the same machinery the pp::rt device runtime
// schedules asynchronously: both delegate to platform::BatchExecutor, which
// owns engine selection (Engine::kAuto), wide SoA packing, and sharding
// across util::thread_pool workers.  The bit-parallel `sim::CompiledEval`
// engine serves purely combinational configured fabrics; the event-driven
// clone-sharding path remains the always-correct fallback.  Vectors must be
// independent, so the design must be combinational either way.

/// \file
/// \brief platform::Session — name-based synchronous driving of a compiled
/// design (poke/peek/settle/step) plus the run_vectors batch path.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/fabric.h"
#include "platform/compiler.h"
#include "platform/executor.h"
#include "sim/evaluator.h"
#include "sim/simulator.h"
#include "util/status.h"

namespace pp::platform {

/// An interactive simulation session over one design: the fabric decoded
/// from its bitstream, the elaborated circuit, the event simulator, and
/// name→net port bindings.  Single-threaded by contract (one session, one
/// driving thread); run_vectors shards internally.
class Session {
 public:
  /// Load a compiled polymorphic design from its bitstream.  Fails with
  /// kFailedPrecondition for an FPGA-baseline design (an accounting model,
  /// nothing to simulate) and with the bitstream's Status on corruption.
  [[nodiscard]] static Result<Session> load(const CompiledDesign& design);

  /// Load a *multi-mode* polymorphic design (Compiler::compile_poly).  The
  /// interactive API and plain batch runs drive mode 0's configuration
  /// view; `RunOptions::mode` routes a batch to another mode's view (its
  /// Session is built lazily and cached), and `RunOptions::sweep_modes`
  /// evaluates every mode in one swept batch through the mode-major
  /// compiled engine (poly::ModalExecutor) — results come back mode-major,
  /// mode m's vector v at index `m * vectors.size() + v`.
  [[nodiscard]] static Result<Session> load_poly(const PolyDesign& design);

  /// Wrap a hand-configured fabric (e.g. built from map::macros) with named
  /// ports: `inputs` name boundary pad lines to drive, `observes` name any
  /// input-line positions to read back.
  [[nodiscard]] static Result<Session> from_fabric(
      core::Fabric fabric, std::vector<PortBinding> inputs,
      std::vector<PortBinding> observes, const core::FabricDelays& delays = {});

  /// A named simulator net (for from_circuit sessions).
  struct NetBinding {
    std::string name;  ///< port name
    sim::NetId net;    ///< the circuit net backing it
  };

  /// Wrap a raw circuit (e.g. an async micropipeline harness) with named
  /// nets.  Nets in `inputs` must be primary inputs of the circuit.
  [[nodiscard]] static Result<Session> from_circuit(
      sim::Circuit circuit, std::vector<NetBinding> inputs,
      std::vector<NetBinding> observes);

  /// Moved-from sessions may only be destroyed or assigned to.
  Session(Session&&) noexcept;
  /// Replaces this session with the moved-in one.
  Session& operator=(Session&&) noexcept;
  /// Tears down the simulator and cached engines.
  ~Session();

  /// Drive a named input port.  kNotFound for unknown names.
  [[nodiscard]] Status poke(std::string_view name, bool value);
  /// As `poke`, but with a 4-value logic level (X/Z injection).
  [[nodiscard]] Status poke_logic(std::string_view name, sim::Logic value);

  /// Read a named port (any bound name: input, output, or observe point).
  [[nodiscard]] Result<sim::Logic> peek(std::string_view name) const;
  /// As `peek`, but fails with kInternal when the port is X or Z.
  [[nodiscard]] Result<bool> peek_bool(std::string_view name) const;

  /// Run the event simulator until quiescent; kResourceExhausted when the
  /// event budget trips first (oscillation).
  [[nodiscard]] Status settle(std::uint64_t max_events = 50'000'000);

  /// One synchronous cycle of a sequential design: drive `inputs` (netlist
  /// input order), settle, sample outputs, then capture every DFF's D into
  /// its boundary register.  Matches map::Netlist::step's semantics.
  ///
  /// When the bit-parallel compiled engine accepts the design, step rides a
  /// private one-lane sequential compilation that carries the register file
  /// across calls; the interactive event simulator is resynchronized lazily
  /// the first time peek/settle/simulator is used, and any poke or manual
  /// settle pins the session to the event path from then on (interactive
  /// X/Z injection is outside the compiled step's two-valued contract).
  [[nodiscard]] Result<BitVector> step(const InputVector& inputs);

  /// Evaluate clocked batches: `stimulus` holds independent stimulus
  /// *streams* of `cycles` vectors each, stream-major (stream s's cycle c
  /// is `stimulus[s * cycles + c]`); one result vector per cycle comes back
  /// in the same layout.  Every stream starts from reset (boundary
  /// registers 0, exactly like a freshly loaded session), so a stream of
  /// `cycles` vectors yields what `cycles` step() calls on a fresh session
  /// would — but batched into SoA lane granules and sharded across the
  /// thread pool, with per-lane register files carried inside the engine.
  /// The session's interactive simulator is never disturbed.  An output
  /// that settles to X in any cycle fails with kInternal (as step would).
  [[nodiscard]] Result<std::vector<BitVector>> run_cycles(
      std::span<const InputVector> stimulus, std::size_t cycles,
      const RunOptions& options = {});

  /// Evaluate many independent stimulus vectors (netlist input order) and
  /// return the outputs (netlist output order) for each.  Combinational
  /// designs only (kFailedPrecondition otherwise).  Vectors are packed
  /// into wide SoA batches (DESIGN.md §12) sharded across the global
  /// thread pool at wide-batch granularity: the compiled engine clones
  /// only its scratch planes, the event engine clones its settled base
  /// simulator per shard.  Both engines are owned by the session and
  /// cached; the session's interactive simulator (poke/peek/settle) is
  /// never disturbed.
  [[nodiscard]] Result<std::vector<BitVector>> run_vectors(
      std::span<const InputVector> vectors, const RunOptions& options = {});

  /// Status of the bit-parallel compiled engine for this design: OK when
  /// Engine::kAuto will use it, else why CompiledEval rejected the design
  /// (the reason Engine::kCompiled would fail).  Builds and caches the
  /// engine on first call.  For a sequential design this is the
  /// *sequential* compilation — the engine step and run_cycles ride.
  [[nodiscard]] Status compiled_engine_status();

  /// Batch-run accounting for this session (runs, vectors evaluated, which
  /// engine served them); all-zero until the first run_vectors call.
  [[nodiscard]] ExecutorStats executor_stats() const;

  /// Bound input port names, in netlist input order.
  [[nodiscard]] const std::vector<std::string>& input_names() const;
  /// Bound output port names, in netlist output order.
  [[nodiscard]] const std::vector<std::string>& output_names() const;
  /// True when the design has DFF boundary registers (drive it with step
  /// or run_cycles; run_vectors is rejected).
  [[nodiscard]] bool sequential() const;
  /// Environment modes this session answers: 1 for ordinary designs, the
  /// library's mode count for load_poly sessions.
  [[nodiscard]] std::size_t mode_count() const;

  /// Resolve a bound port name to its simulator net (for waveforms and
  /// timing probes on the raw simulator).
  [[nodiscard]] Result<sim::NetId> net(std::string_view name) const;

  /// The underlying event simulator, for waveforms, stats, and the async
  /// harnesses that drive handshakes directly.
  [[nodiscard]] sim::Simulator& simulator();
  /// The elaborated circuit the simulator runs.
  [[nodiscard]] const sim::Circuit& circuit() const;

 private:
  struct Impl;
  explicit Session(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace pp::platform
