#include "platform/compiler.h"

#include <algorithm>
#include <string>
#include <utility>

#include "arch/power_model.h"
#include "core/timing.h"
#include "map/macros.h"
#include "map/truth_table.h"

namespace pp::platform {
namespace {

using core::BiasLevel;
using core::DriverCfg;
using map::CellKind;
using map::SignalAt;

/// A signal source: a north-boundary IO pad or the output of a mapped node.
struct Sig {
  bool is_pad;
  int idx;  // pad column, or node index
};

/// A ≤3-input mapped node: a LUT3 tile, or a single constant block.
struct Node {
  bool is_const = false;
  bool const_value = false;
  map::TruthTable tt{1};
  std::vector<int> srcs;  // signal ids feeding variables 0..m-1
};

[[nodiscard]] bool eval_kind(CellKind kind, unsigned bits, int m) {
  const unsigned mask = (1u << m) - 1u;
  switch (kind) {
    case CellKind::kNot: return !(bits & 1u);
    case CellKind::kAnd: return (bits & mask) == mask;
    case CellKind::kNand: return (bits & mask) != mask;
    case CellKind::kOr: return (bits & mask) != 0u;
    case CellKind::kNor: return (bits & mask) == 0u;
    case CellKind::kXor: {
      bool r = false;
      for (int i = 0; i < m; ++i) r ^= ((bits >> i) & 1u) != 0u;
      return r;
    }
    default: return false;
  }
}

[[nodiscard]] map::TruthTable table_for(CellKind kind, int m) {
  return map::TruthTable::from_function(
      m, [kind, m](std::uint8_t bits) { return eval_kind(kind, bits, m); });
}

/// The associative kind used for partial reductions of wide cells.
[[nodiscard]] CellKind partial_kind(CellKind kind) {
  switch (kind) {
    case CellKind::kAnd:
    case CellKind::kNand: return CellKind::kAnd;
    case CellKind::kOr:
    case CellKind::kNor: return CellKind::kOr;
    default: return kind;  // kXor
  }
}

/// Expansion result: the node list plus per-netlist-cell signal ids.
struct Expansion {
  std::vector<Node> nodes;
  std::vector<Sig> sigs;          // signal id -> source
  std::vector<int> sig_of_cell;   // netlist cell -> signal id
  std::vector<int> pad_of_cell;   // netlist cell -> pad index (or -1)
  int npads = 0;
};

[[nodiscard]] Result<Expansion> expand(const map::Netlist& nl) {
  Expansion ex;
  ex.sig_of_cell.assign(nl.cell_count(), -1);
  ex.pad_of_cell.assign(nl.cell_count(), -1);

  auto new_pad_sig = [&ex]() {
    const int pad = ex.npads++;
    ex.sigs.push_back({true, pad});
    return static_cast<int>(ex.sigs.size() - 1);
  };
  auto new_node_sig = [&ex](Node node) {
    ex.nodes.push_back(std::move(node));
    ex.sigs.push_back({false, static_cast<int>(ex.nodes.size() - 1)});
    return static_cast<int>(ex.sigs.size() - 1);
  };

  for (int i = 0; i < static_cast<int>(nl.cell_count()); ++i) {
    const map::NetlistCell& cell = nl.cell(i);
    switch (cell.kind) {
      case CellKind::kInput:
      case CellKind::kDff:
        ex.pad_of_cell[i] = ex.npads;
        ex.sig_of_cell[i] = new_pad_sig();
        break;
      case CellKind::kConst0:
      case CellKind::kConst1: {
        Node n;
        n.is_const = true;
        n.const_value = cell.kind == CellKind::kConst1;
        ex.sig_of_cell[i] = new_node_sig(std::move(n));
        break;
      }
      case CellKind::kNot:
      case CellKind::kAnd:
      case CellKind::kOr:
      case CellKind::kNand:
      case CellKind::kNor:
      case CellKind::kXor: {
        if (cell.fanin.empty())
          return Status::unimplemented("compile: cell " + std::to_string(i) +
                                       " has no fanin");
        std::vector<int> srcs;
        srcs.reserve(cell.fanin.size());
        for (int f : cell.fanin) {
          if (f < 0 || f >= i || ex.sig_of_cell[f] < 0)
            return Status::invalid_argument(
                "compile: combinational cell " + std::to_string(i) +
                " reads an unmapped fanin");
          srcs.push_back(ex.sig_of_cell[f]);
        }
        // Reduce wide cells with the associative partial kind until at most
        // three sources remain, then apply the cell's own function.
        const CellKind pk = partial_kind(cell.kind);
        while (srcs.size() > 3) {
          Node partial;
          partial.tt = table_for(pk, 3);
          partial.srcs = {srcs[0], srcs[1], srcs[2]};
          const int psig = new_node_sig(std::move(partial));
          srcs.erase(srcs.begin(), srcs.begin() + 3);
          srcs.insert(srcs.begin(), psig);
        }
        Node n;
        n.tt = table_for(cell.kind, static_cast<int>(srcs.size()));
        n.srcs = std::move(srcs);
        ex.sig_of_cell[i] = new_node_sig(std::move(n));
        break;
      }
    }
  }
  return ex;
}

/// Geometry of the staircase placement for one (shift) attempt.  Node k's
/// tile occupies row band 1+2k at columns c0+5k+shift.., keeping column
/// bands 0..npads-1 free as the pads' southbound corridors.  The pitch
/// leaves a spacer row under every band and a spare column after every
/// output line: an east-running feed-through drives a *south copy* onto the
/// next row's lines (one physical driver abuts two lines, DESIGN.md §5), so
/// without the spacers each node's routing corridor would be polluted by
/// the band above it.
struct Layout {
  int c0 = 0;
  int shift = 0;

  [[nodiscard]] SignalAt pad_at(int pad) const { return {0, pad, 0}; }
  [[nodiscard]] int tile_row(int k) const { return 1 + 2 * k; }
  [[nodiscard]] int tile_col(int k) const { return c0 + 5 * k + shift; }
  [[nodiscard]] SignalAt node_in(int k, int var) const {
    return {tile_row(k), tile_col(k), var};
  }
  [[nodiscard]] SignalAt node_out(int k, bool is_const) const {
    return {tile_row(k), tile_col(k) + (is_const ? 1 : 3), 0};
  }
  [[nodiscard]] SignalAt sig_at(const Expansion& ex, int sig) const {
    const Sig& s = ex.sigs[sig];
    if (s.is_pad) return pad_at(s.idx);
    return node_out(s.idx, ex.nodes[s.idx].is_const);
  }
};

/// True when no leaf cell of block (r,c) is marked defective.
[[nodiscard]] bool block_clean(const arch::DefectMap& defects, int r, int c) {
  for (int row = 0; row < core::kBlockOutputs; ++row) {
    if (defects.driver_bad(r, c, row)) return false;
    for (int col = 0; col < core::kBlockInputs; ++col)
      if (defects.crosspoint_bad(r, c, row, col)) return false;
  }
  return true;
}

struct Attempt {
  core::Fabric fabric{1, 1};
  int route_hops = 0;
};

[[nodiscard]] Result<Attempt> place_and_route(const Expansion& ex,
                                              const Layout& layout, int rows,
                                              int cols,
                                              const arch::DefectMap* defects) {
  auto fabric = core::Fabric::create(rows, cols);
  if (!fabric.ok()) return fabric.status();
  Attempt attempt{std::move(*fabric), 0};
  core::Fabric& f = attempt.fabric;

  // Place tiles (defect-checked sites first, so a bad site fails fast
  // before any routing work).
  for (int k = 0; k < static_cast<int>(ex.nodes.size()); ++k) {
    const Node& node = ex.nodes[k];
    const int r = layout.tile_row(k), c = layout.tile_col(k);
    const int width = node.is_const ? 1 : 3;
    if (r >= rows || c + width > cols)
      return Status::resource_exhausted(
          "compile: fabric too small for the staircase placement");
    if (defects)
      for (int b = 0; b < width; ++b)
        if (!block_clean(*defects, r, c + b))
          return Status::resource_exhausted(
              "compile: defective leaf cell under a tile site");
    if (node.is_const) {
      // An empty NAND row reads constant 1; the driver picks the polarity.
      f.block(r, c).driver[0] =
          node.const_value ? DriverCfg::kBuffer : DriverCfg::kInvert;
    } else {
      try {
        map::macros::lut3(f, r, c, node.tt);
      } catch (const std::invalid_argument& e) {
        return Status::internal(std::string("compile: lut3 placement: ") +
                                e.what());
      }
    }
  }

  // Route.  Pad lines and node input lines are reserved so no feed-through
  // (or its abutted south/east copy) can collide with external IO or with a
  // connection still to be made.
  map::Router router(f);
  for (int p = 0; p < ex.npads; ++p) router.reserve_line(layout.pad_at(p));
  for (int k = 0; k < static_cast<int>(ex.nodes.size()); ++k)
    for (std::size_t v = 0; v < ex.nodes[k].srcs.size(); ++v)
      router.reserve_line(layout.node_in(k, static_cast<int>(v)));
  if (defects) {
    router.set_row_filter([defects](int r, int c, int row) {
      if (defects->driver_bad(r, c, row)) return false;
      for (int col = 0; col < core::kBlockInputs; ++col)
        if (defects->crosspoint_bad(r, c, row, col)) return false;
      return true;
    });
  }
  for (int k = 0; k < static_cast<int>(ex.nodes.size()); ++k) {
    const Node& node = ex.nodes[k];
    for (std::size_t v = 0; v < node.srcs.size(); ++v) {
      const SignalAt src = layout.sig_at(ex, node.srcs[v]);
      const SignalAt dst = layout.node_in(k, static_cast<int>(v));
      auto route = router.try_route(src, dst);
      if (!route.ok())
        return Status::resource_exhausted(
            "compile: routing node " + std::to_string(k) + " input " +
            std::to_string(v) + ": " + route.status().message());
      attempt.route_hops += route->hop_count;
    }
  }

  if (const Status s = f.check(); !s.ok())
    return Status::internal("compile: mapped fabric failed validation:\n" +
                            s.message());
  if (defects && arch::conflicts(f, *defects) != 0)
    return Status::resource_exhausted(
        "compile: placement still collides with defects");
  return attempt;
}

[[nodiscard]] std::string port_name(const std::string& cell_name,
                                    const char* prefix, int index) {
  if (!cell_name.empty()) return cell_name;
  return prefix + std::to_string(index);
}

}  // namespace

namespace {

/// Netlist hash mixed with everything that changes the compiled function or
/// its timing; deliberately excludes the fabric dimensions, because the
/// placement is dimension-independent (explicit dims only pad) and
/// rt::Device re-pads designs to its own size before comparing.
[[nodiscard]] std::uint64_t design_hash(const map::Netlist& netlist,
                                        const CompileOptions& options) {
  std::uint64_t h = map::content_hash(netlist);
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mix(static_cast<std::uint64_t>(options.target));
  mix(static_cast<std::uint64_t>(options.delays.nand_ps));
  mix(static_cast<std::uint64_t>(options.delays.driver_ps));
  mix(static_cast<std::uint64_t>(options.delays.pass_ps));
  mix(static_cast<std::uint64_t>(options.delays.lfb_ps));
  return h == 0 ? 1 : h;  // 0 is reserved for "unknown"
}

}  // namespace

Result<CompiledDesign> Compiler::compile(const map::Netlist& netlist) const {
  CompiledDesign design;
  design.target = options_.target;
  design.delays = options_.delays;
  design.content_hash = design_hash(netlist, options_);
  design.report.baseline = baseline_stats(netlist, options_.fpga);
  design.report.netlist_cells = static_cast<int>(netlist.cell_count());
  design.report.netlist_depth = netlist.depth();

  if (options_.target == Target::kFpgaBaseline) {
    // The baseline is a resource-accounting model (fpga::lut_map), not a
    // simulatable structure; the report carries everything it produces.
    return design;
  }

  auto expansion = expand(netlist);
  if (!expansion.ok()) return expansion.status();
  const Expansion& ex = *expansion;
  design.report.mapped_nodes = static_cast<int>(ex.nodes.size());

  const int nnodes = static_cast<int>(ex.nodes.size());
  const int c0 = ex.npads;
  const int need_rows = std::max(2, 2 * nnodes);
  auto need_cols = [&](int shift) {
    return std::max(ex.npads + 1, c0 + 5 * nnodes + 2 + shift);
  };

  // Resolve fabric dimensions: explicit options win; with a defect map the
  // physical array is the map's; otherwise auto-size to the placement.
  int rows = options_.rows, cols = options_.cols;
  if (rows == 0 && cols == 0 && options_.defects) {
    rows = options_.defects->rows();
    cols = options_.defects->cols();
  } else if (rows == 0 && cols == 0) {
    rows = need_rows;
    cols = need_cols(0);
  } else if (rows <= 0 || cols <= 0) {
    return Status::invalid_argument(
        "compile: rows/cols must both be positive (or both 0 = auto)");
  }
  if (options_.defects &&
      (options_.defects->rows() < rows || options_.defects->cols() < cols))
    return Status::invalid_argument(
        "compile: defect map is smaller than the fabric");
  if (rows < need_rows || cols < need_cols(0))
    return Status::resource_exhausted(
        "compile: fabric " + std::to_string(rows) + "x" + std::to_string(cols) +
        " is smaller than the placement needs (" + std::to_string(need_rows) +
        "x" + std::to_string(need_cols(0)) + ")");

  // Defect avoidance: slide the whole placement east one column at a time
  // until every tile site and route clears the defect map (any region of a
  // homogeneous array is as good as any other).
  const int max_shift = options_.defects ? options_.max_placement_shifts : 0;
  Status last = Status::internal("compile: no placement attempt ran");
  for (int shift = 0; shift <= max_shift; ++shift) {
    if (cols < need_cols(shift)) break;
    Layout layout{c0, shift};
    auto attempt = place_and_route(ex, layout, rows, cols, options_.defects);
    if (!attempt.ok()) {
      last = attempt.status();
      continue;
    }

    design.fabric = std::move(attempt->fabric);
    design.report.route_hops = attempt->route_hops;
    design.report.fabric_rows = rows;
    design.report.fabric_cols = cols;

    // Port bindings.
    const auto& inputs = netlist.inputs();
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const auto& cell = netlist.cell(inputs[i]);
      design.inputs.push_back(
          {port_name(cell.name, "in", static_cast<int>(i)),
           layout.pad_at(ex.pad_of_cell[inputs[i]])});
    }
    const auto& outputs = netlist.outputs();
    for (std::size_t i = 0; i < outputs.size(); ++i) {
      const auto& cell = netlist.cell(outputs[i]);
      design.outputs.push_back(
          {port_name(cell.name, "out", static_cast<int>(i)),
           layout.sig_at(ex, ex.sig_of_cell[outputs[i]])});
    }
    int dff_index = 0;
    for (int i = 0; i < static_cast<int>(netlist.cell_count()); ++i) {
      const auto& cell = netlist.cell(i);
      if (cell.kind != CellKind::kDff) continue;
      if (cell.fanin.empty())
        return Status::invalid_argument("compile: DFF cell " +
                                        std::to_string(i) + " has no D fanin");
      const int d_cell = cell.fanin[0];
      if (d_cell < 0 || d_cell >= static_cast<int>(netlist.cell_count()) ||
          ex.sig_of_cell[d_cell] < 0)
        return Status::invalid_argument("compile: DFF with unmapped D fanin");
      design.state.push_back({port_name(cell.name, "dff", dff_index),
                              layout.pad_at(ex.pad_of_cell[i]),
                              layout.sig_at(ex, ex.sig_of_cell[d_cell])});
      ++dff_index;
    }

    // Elaborate once for the timing side of the report, then serialise.
    auto elaborated = design.fabric.try_elaborate(options_.delays);
    if (!elaborated.ok())
      return Status::internal("compile: elaboration of the mapped design: " +
                              elaborated.status().message());
    design.report.critical_path_ps =
        core::analyze_timing(elaborated->circuit()).critical_path_ps;
    // Record the levelization while the elaborated circuit is in hand:
    // Session reuses it to build the bit-parallel engine without repeating
    // the topological sort.  Designs with combinational feedback simply
    // carry no levels (the event-driven engine needs none).
    if (auto levels = sim::levelize(elaborated->circuit()); levels.ok())
      design.levels = std::move(*levels);
    design.report.fabric = fabric_stats(design.fabric);
    design.report.config_static_w_per_cm2 =
        arch::config_static_power_w_per_cm2();
    design.bitstream = core::encode_fabric(design.fabric);
    return design;
  }
  return last;
}

Result<PolyDesign> Compiler::compile_poly(
    const poly::PolyNetlist& netlist) const {
  if (Status s = netlist.validate(); !s.ok()) return s;
  std::vector<CompiledDesign> views;
  views.reserve(static_cast<std::size_t>(netlist.modes()));
  for (int m = 0; m < netlist.modes(); ++m) {
    auto view = netlist.view(m);
    if (!view.ok()) return view.status();
    auto design = compile(*view);
    if (!design.ok())
      return Status(design.status().code(),
                    "compile_poly: mode " + std::to_string(m) + ": " +
                        std::string(design.status().message()));
    views.push_back(std::move(*design));
  }
  return PolyDesign{netlist, std::move(views)};
}

Result<CompiledDesign> compile(const map::Netlist& netlist,
                               const CompileOptions& options) {
  return Compiler(options).compile(netlist);
}

Result<CompiledDesign> pad_to(const CompiledDesign& design, int rows,
                              int cols) {
  if (design.target != Target::kPolymorphic)
    return Status::failed_precondition(
        "pad_to: the FPGA baseline target has no fabric to re-target");
  if (rows < design.fabric.rows() || cols < design.fabric.cols())
    return Status::resource_exhausted(
        "pad_to: design needs " + std::to_string(design.fabric.rows()) + "x" +
        std::to_string(design.fabric.cols()) + ", target array is only " +
        std::to_string(rows) + "x" + std::to_string(cols));
  if (rows == design.fabric.rows() && cols == design.fabric.cols())
    return design;
  auto fabric = core::Fabric::create(rows, cols);
  if (!fabric.ok()) return fabric.status();
  for (int r = 0; r < design.fabric.rows(); ++r)
    for (int c = 0; c < design.fabric.cols(); ++c)
      fabric->block(r, c) = design.fabric.block(r, c);
  CompiledDesign padded = design;
  padded.fabric = std::move(*fabric);
  padded.bitstream = core::encode_fabric(padded.fabric);
  padded.levels = {};
  padded.report.fabric_rows = rows;
  padded.report.fabric_cols = cols;
  return padded;
}

bool same_content(const CompiledDesign& a, const CompiledDesign& b) {
  return a.content_hash == b.content_hash && a.bitstream == b.bitstream &&
         a.delays == b.delays;
}

}  // namespace pp::platform
