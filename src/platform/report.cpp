#include "platform/report.h"

namespace pp::platform {

FabricStats fabric_stats(const core::Fabric& fabric,
                         const arch::PolyAreaParams& area) {
  FabricStats s;
  s.used_blocks = fabric.used_blocks();
  s.active_cells = fabric.active_cells();
  s.config_bits = core::config_bits(s.used_blocks);
  s.area_lambda2 = arch::design_area_lambda2(fabric, area);
  return s;
}

BaselineStats baseline_stats(const map::Netlist& netlist,
                             const fpga::FpgaParams& params) {
  const fpga::Mapping m = fpga::lut_map(netlist, params);
  BaselineStats s;
  s.luts = m.luts;
  s.ffs = m.ffs;
  s.depth = m.depth;
  s.logic_cells = m.logic_cells;
  s.config_bits = m.config_bits(params);
  s.area_lambda2 = m.area_lambda2(params);
  return s;
}

}  // namespace pp::platform
