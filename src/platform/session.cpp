#include "platform/session.h"

#include <map>
#include <optional>
#include <utility>

#include "core/bitstream.h"
#include "platform/executor.h"
#include "poly/executor.h"

namespace pp::platform {

struct Session::Impl {
  // Exactly one source owns the circuit: a fabric (elaborated here) or a
  // raw circuit.  The simulator holds a reference into it, so Impl lives on
  // the heap and is never moved piecemeal.
  std::optional<core::Fabric> fabric;
  std::optional<core::ElaboratedFabric> elab;
  std::optional<sim::Circuit> circuit_store;
  const sim::Circuit* circuit = nullptr;
  std::optional<sim::Simulator> sim;

  std::vector<std::string> input_names;
  std::vector<sim::NetId> input_nets;
  std::vector<std::string> output_names;
  std::vector<sim::NetId> output_nets;
  // All peekable names; pokeable_ is the subset with an external driver.
  std::map<std::string, sim::NetId, std::less<>> by_name;
  std::map<std::string, sim::NetId, std::less<>> pokeable;

  struct StateElem {
    std::string name;
    sim::NetId q;
    sim::NetId d;
  };
  std::vector<StateElem> state;

  // The batch core: engine selection/caching and sharded evaluation live in
  // BatchExecutor (shared with the rt runtime), built lazily on first batch
  // use.  Its engines are independent of `sim`, so run_vectors/run_cycles
  // never disturb the session's interactive state.  Levelization recorded
  // by the compiler is handed through (empty when unavailable).
  sim::LevelMap levels;
  std::optional<BatchExecutor> executor;

  // Compiled fast path for step(): a private one-lane sequential engine
  // whose output list appends every boundary register's D net, so each
  // step both checks the captured values (step's kInternal-on-X contract)
  // and records the register file needed to resynchronize `sim` later.
  // The interactive simulator goes stale while stepping compiled
  // (sim_stale); peek resyncs it lazily, and poke / manual settle /
  // simulator() access pins the session to the event path (step_fallback)
  // because interactive drives are outside the compiled step's contract.
  std::optional<sim::CompiledEval> step_engine;
  bool step_engine_attempted = false;
  bool step_started = false;   ///< carried state in step_engine is live
  bool sim_stale = false;      ///< `sim` lags the compiled step state
  bool step_fallback = false;  ///< interactive API used; event path only
  std::vector<bool> last_inputs;  ///< inputs of the last compiled step
  std::vector<bool> reg_state;    ///< register values after the last edge

  [[nodiscard]] BatchExecutor& exec() {
    if (!executor) {
      std::vector<sim::ExternalReg> regs;
      regs.reserve(state.size());
      for (const StateElem& se : state)
        regs.push_back({se.q, se.d, sim::Logic::k0});
      executor.emplace(*circuit, input_nets, output_nets, output_names,
                       std::move(levels), std::move(regs));
    }
    return *executor;
  }

  // Build (once) the step engine; false when the design is outside the
  // compiled engine's sequential subset (async handshake gates, derived
  // clocks, dynamic tri-state) — step then stays on the event path.
  [[nodiscard]] bool ensure_step_engine() {
    if (step_engine_attempted) return step_engine.has_value();
    step_engine_attempted = true;
    std::vector<sim::NetId> step_outs = output_nets;
    std::vector<sim::ExternalReg> regs;
    regs.reserve(state.size());
    for (const StateElem& se : state) {
      step_outs.push_back(se.d);
      regs.push_back({se.q, se.d, sim::Logic::k0});
    }
    // One lane per call: a single-word scratch keeps the kernel from
    // sweeping the full default 512-lane width for one vector.  The
    // executor's levelization handoff may already have consumed `levels`;
    // compile recomputes in that case.
    auto engine = sim::CompiledEval::compile_sequential(
        *circuit, input_nets, std::move(step_outs), std::move(regs),
        levels.empty() ? nullptr : &levels,
        sim::CompiledEval::CompileOptions{.wide_words = 1});
    if (engine.ok()) step_engine.emplace(std::move(*engine));
    return step_engine.has_value();
  }

  // Bring the interactive simulator up to date with the compiled step
  // state: re-drive the last stepped inputs and the post-edge register
  // file, then settle.  No-op when `sim` is already current.
  void resync_sim() {
    if (!sim_stale) return;
    for (std::size_t j = 0; j < last_inputs.size(); ++j)
      sim->set_input(input_nets[j], sim::from_bool(last_inputs[j]));
    for (std::size_t s = 0; s < state.size(); ++s)
      sim->set_input(state[s].q, sim::from_bool(reg_state[s]));
    sim->settle();
    sim_stale = false;
  }

  // One compiled step: one cycle on one lane with the register file carried
  // in the engine's state planes.  nullopt → engine unavailable, caller
  // takes the event path.  On an X output or X capture the Status is
  // returned and last_inputs/reg_state stay at the last *successful* step
  // (a later resync restores that consistent view).
  [[nodiscard]] std::optional<Result<BitVector>> compiled_step(
      const InputVector& inputs) {
    if (!ensure_step_engine()) return std::nullopt;
    const std::size_t nout = output_nets.size();
    const std::size_t ntot = nout + state.size();
    std::vector<std::uint64_t> in_value(input_nets.size(), 0);
    const std::vector<std::uint64_t> in_unknown(input_nets.size(), 0);
    std::vector<std::uint64_t> out_value(ntot);
    std::vector<std::uint64_t> out_unknown(ntot);
    for (std::size_t j = 0; j < inputs.size(); ++j)
      if (inputs[j]) in_value[j] = 1;
    if (Status s = step_engine->run_cycles(in_value, in_unknown, out_value,
                                           out_unknown, /*cycles=*/1,
                                           /*lanes=*/1,
                                           /*reset=*/!step_started);
        !s.ok())
      return Result<BitVector>(std::move(s));
    step_started = true;
    BitVector out(nout);
    for (std::size_t k = 0; k < nout; ++k) {
      if ((out_unknown[k] & 1) != 0)
        return Result<BitVector>(Status::internal(
            "step: output '" + output_names[k] + "' settled to X"));
      out[k] = (out_value[k] & 1) != 0;
    }
    std::vector<bool> regs(state.size());
    for (std::size_t s = 0; s < state.size(); ++s) {
      if ((out_unknown[nout + s] & 1) != 0)
        return Result<BitVector>(Status::internal(
            "step: register '" + state[s].name + "' captured X"));
      regs[s] = (out_value[nout + s] & 1) != 0;
    }
    last_inputs = inputs;
    reg_state = std::move(regs);
    sim_stale = true;
    return Result<BitVector>(std::move(out));
  }

  [[nodiscard]] Result<sim::NetId> net_of(const map::SignalAt& at) const {
    if (!elab)
      return Status::failed_precondition("session has no elaborated fabric");
    if (at.r < 0 || at.r > elab->rows() || at.c < 0 || at.c > elab->cols() ||
        at.line < 0 || at.line >= core::kBlockInputs)
      return Status::out_of_range("port line outside the fabric");
    return elab->in_line(at.r, at.c, at.line);
  }

  [[nodiscard]] Status bind_name(const std::string& name, sim::NetId net,
                                 bool is_pokeable) {
    auto [it, inserted] = by_name.emplace(name, net);
    if (!inserted && it->second != net)
      return Status::invalid_argument("duplicate port name '" + name +
                                      "' bound to different nets");
    if (is_pokeable) pokeable.emplace(name, net);
    return Status();
  }

  // Polymorphic designs (load_poly): the multi-mode source and its
  // per-mode configuration views.  The base session *is* mode 0; other
  // modes get their own lazily loaded Session (each a full fabric decode —
  // exactly what reconfiguring the environment selects), and sweeps ride
  // the mode-major compiled engine, built once on first use.
  std::optional<PolyDesign> poly_design;
  std::map<std::uint32_t, Session> mode_sessions;
  std::optional<poly::ModalExecutor> modal;

  /// The lazily loaded Session serving environment mode `mode` (> 0).
  [[nodiscard]] Result<Session*> mode_session(std::uint32_t mode) {
    if (auto it = mode_sessions.find(mode); it != mode_sessions.end())
      return &it->second;
    auto sub = Session::load(
        poly_design->views[static_cast<std::size_t>(mode)]);
    if (!sub.ok())
      return Status(sub.status().code(),
                    "mode " + std::to_string(mode) + ": " +
                        std::string(sub.status().message()));
    return &mode_sessions.emplace(mode, std::move(*sub)).first->second;
  }

  /// Validate mode/sweep knobs against this session's mode axis; returns
  /// the mode count.
  [[nodiscard]] Result<std::uint32_t> check_mode_options(
      const RunOptions& options) const {
    const auto modes =
        poly_design ? static_cast<std::uint32_t>(poly_design->netlist.modes())
                    : 1u;
    if (!poly_design && (options.mode != 0 || options.sweep_modes))
      return Status::invalid_argument(
          "mode selection on a non-polymorphic session (use "
          "Session::load_poly)");
    if (options.mode != 0 && options.sweep_modes)
      return Status::invalid_argument(
          "sweep_modes evaluates every mode — it excludes a fixed mode");
    if (options.mode >= modes)
      return Status::out_of_range(
          "mode " + std::to_string(options.mode) + " outside 0.." +
          std::to_string(modes - 1));
    return modes;
  }
};

Session::Session(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
Session::Session(Session&&) noexcept = default;
Session& Session::operator=(Session&&) noexcept = default;
Session::~Session() = default;

Result<Session> Session::load(const CompiledDesign& design) {
  if (design.target != Target::kPolymorphic)
    return Status::failed_precondition(
        "Session::load: the FPGA baseline target is an accounting model, "
        "not simulatable hardware");
  auto impl = std::make_unique<Impl>();
  auto fabric =
      core::Fabric::create(design.fabric.rows(), design.fabric.cols());
  if (!fabric.ok()) return fabric.status();
  impl->fabric.emplace(std::move(*fabric));
  if (Status s = core::try_load_fabric(*impl->fabric, design.bitstream);
      !s.ok())
    return s;
  auto elab = impl->fabric->try_elaborate(design.delays);
  if (!elab.ok()) return elab.status();
  impl->elab.emplace(std::move(*elab));
  impl->circuit = &impl->elab->circuit();
  auto sim = sim::Simulator::create(*impl->circuit);
  if (!sim.ok()) return sim.status();
  impl->sim.emplace(std::move(*sim));

  for (const PortBinding& p : design.inputs) {
    auto net = impl->net_of(p.at);
    if (!net.ok()) return net.status();
    impl->input_names.push_back(p.name);
    impl->input_nets.push_back(*net);
    if (Status s = impl->bind_name(p.name, *net, true); !s.ok()) return s;
  }
  for (const PortBinding& p : design.outputs) {
    auto net = impl->net_of(p.at);
    if (!net.ok()) return net.status();
    impl->output_names.push_back(p.name);
    impl->output_nets.push_back(*net);
    if (Status s = impl->bind_name(p.name, *net, false); !s.ok()) return s;
  }
  for (const StateBinding& sb : design.state) {
    auto q = impl->net_of(sb.q_pad);
    if (!q.ok()) return q.status();
    auto d = impl->net_of(sb.d_at);
    if (!d.ok()) return d.status();
    impl->state.push_back({sb.name, *q, *d});
    if (Status s = impl->bind_name(sb.name, *q, true); !s.ok()) return s;
  }
  // Reuse the compiler's levelization: elaboration is deterministic, so the
  // recorded gate levels line up with the circuit decoded from the
  // bitstream (ensure_compiled re-validates the size before trusting them).
  impl->levels = design.levels;

  // Reset: boundary registers start at 0 (Netlist::make_state semantics).
  for (const auto& se : impl->state)
    impl->sim->set_input(se.q, sim::Logic::k0);
  if (!impl->sim->settle())
    return Status::resource_exhausted("Session::load: design never settled");
  return Session(std::move(impl));
}

Result<Session> Session::load_poly(const PolyDesign& design) {
  if (design.views.empty() ||
      static_cast<int>(design.views.size()) != design.netlist.modes())
    return Status::invalid_argument(
        "Session::load_poly: expected one configuration view per mode (" +
        std::to_string(design.netlist.modes()) + "), got " +
        std::to_string(design.views.size()));
  auto base = load(design.views.front());
  if (!base.ok())
    return Status(base.status().code(),
                  "mode 0: " + std::string(base.status().message()));
  base->impl_->poly_design.emplace(design);
  return base;
}

Result<Session> Session::from_fabric(core::Fabric fabric,
                                     std::vector<PortBinding> inputs,
                                     std::vector<PortBinding> observes,
                                     const core::FabricDelays& delays) {
  auto impl = std::make_unique<Impl>();
  impl->fabric.emplace(std::move(fabric));
  auto elab = impl->fabric->try_elaborate(delays);
  if (!elab.ok()) return elab.status();
  impl->elab.emplace(std::move(*elab));
  impl->circuit = &impl->elab->circuit();
  auto sim = sim::Simulator::create(*impl->circuit);
  if (!sim.ok()) return sim.status();
  impl->sim.emplace(std::move(*sim));
  for (const PortBinding& p : inputs) {
    auto net = impl->net_of(p.at);
    if (!net.ok()) return net.status();
    impl->input_names.push_back(p.name);
    impl->input_nets.push_back(*net);
    if (Status s = impl->bind_name(p.name, *net, true); !s.ok()) return s;
  }
  for (const PortBinding& p : observes) {
    auto net = impl->net_of(p.at);
    if (!net.ok()) return net.status();
    impl->output_names.push_back(p.name);
    impl->output_nets.push_back(*net);
    if (Status s = impl->bind_name(p.name, *net, false); !s.ok()) return s;
  }
  if (!impl->sim->settle())
    return Status::resource_exhausted("Session::from_fabric: never settled");
  return Session(std::move(impl));
}

Result<Session> Session::from_circuit(sim::Circuit circuit,
                                      std::vector<NetBinding> inputs,
                                      std::vector<NetBinding> observes) {
  auto impl = std::make_unique<Impl>();
  impl->circuit_store.emplace(std::move(circuit));
  impl->circuit = &*impl->circuit_store;
  auto sim = sim::Simulator::create(*impl->circuit);
  if (!sim.ok()) return sim.status();
  impl->sim.emplace(std::move(*sim));
  for (const NetBinding& b : inputs) {
    if (b.net >= impl->circuit->net_count())
      return Status::out_of_range("from_circuit: input net out of range");
    if (!impl->circuit->is_input(b.net))
      return Status::invalid_argument("from_circuit: net '" + b.name +
                                      "' is not a primary input");
    impl->input_names.push_back(b.name);
    impl->input_nets.push_back(b.net);
    if (Status s = impl->bind_name(b.name, b.net, true); !s.ok()) return s;
  }
  for (const NetBinding& b : observes) {
    if (b.net >= impl->circuit->net_count())
      return Status::out_of_range("from_circuit: observe net out of range");
    impl->output_names.push_back(b.name);
    impl->output_nets.push_back(b.net);
    if (Status s = impl->bind_name(b.name, b.net, false); !s.ok()) return s;
  }
  return Session(std::move(impl));
}

Status Session::poke(std::string_view name, bool value) {
  return poke_logic(name, sim::from_bool(value));
}

Status Session::poke_logic(std::string_view name, sim::Logic value) {
  const auto it = impl_->pokeable.find(name);
  if (it == impl_->pokeable.end())
    return Status::not_found("poke: no input port named '" +
                             std::string(name) + "'");
  // An interactive drive (possibly X/Z, possibly onto a register pad) is
  // outside the compiled step's contract: sync the simulator and pin the
  // session to the event path.
  impl_->resync_sim();
  impl_->step_fallback = true;
  impl_->sim->set_input(it->second, value);
  return Status();
}

Result<sim::Logic> Session::peek(std::string_view name) const {
  const auto it = impl_->by_name.find(name);
  if (it == impl_->by_name.end())
    return Status::not_found("peek: no port named '" + std::string(name) +
                             "'");
  impl_->resync_sim();
  return impl_->sim->value(it->second);
}

Result<bool> Session::peek_bool(std::string_view name) const {
  auto v = peek(name);
  if (!v.ok()) return v.status();
  if (!sim::is_binary(*v))
    return Status::internal("peek: port '" + std::string(name) + "' reads " +
                            std::string(1, sim::to_char(*v)));
  return *v == sim::Logic::k1;
}

Status Session::settle(std::uint64_t max_events) {
  // A manual settle means the caller is driving the simulator directly —
  // same interactive contract as poke, so the compiled step path retires.
  impl_->resync_sim();
  impl_->step_fallback = true;
  if (!impl_->sim->settle(max_events))
    return Status::resource_exhausted(
        "settle: event budget exhausted (oscillation?)");
  return Status();
}

Result<BitVector> Session::step(const InputVector& inputs) {
  if (inputs.size() != impl_->input_nets.size())
    return Status::invalid_argument(
        "step: expected " + std::to_string(impl_->input_nets.size()) +
        " input values, got " + std::to_string(inputs.size()));
  if (!impl_->step_fallback) {
    if (auto r = impl_->compiled_step(inputs)) return std::move(*r);
  }
  impl_->resync_sim();
  for (std::size_t j = 0; j < inputs.size(); ++j)
    impl_->sim->set_input(impl_->input_nets[j], sim::from_bool(inputs[j]));
  if (Status s = settle(); !s.ok()) return s;

  BitVector out(impl_->output_nets.size());
  for (std::size_t k = 0; k < impl_->output_nets.size(); ++k) {
    const sim::Logic v = impl_->sim->value(impl_->output_nets[k]);
    if (!sim::is_binary(v))
      return Status::internal("step: output '" + impl_->output_names[k] +
                              "' settled to " +
                              std::string(1, sim::to_char(v)));
    out[k] = v == sim::Logic::k1;
  }

  // Clock edge: capture D values, then drive them onto the Q pads.
  std::vector<sim::Logic> captured(impl_->state.size());
  for (std::size_t s = 0; s < impl_->state.size(); ++s) {
    captured[s] = impl_->sim->value(impl_->state[s].d);
    if (!sim::is_binary(captured[s]))
      return Status::internal("step: register '" + impl_->state[s].name +
                              "' captured " +
                              std::string(1, sim::to_char(captured[s])));
  }
  for (std::size_t s = 0; s < impl_->state.size(); ++s)
    impl_->sim->set_input(impl_->state[s].q, captured[s]);
  if (Status s = settle(); !s.ok()) return s;
  return out;
}

Result<std::vector<BitVector>> Session::run_vectors(
    std::span<const InputVector> vectors, const RunOptions& options) {
  if (auto modes = impl_->check_mode_options(options); !modes.ok())
    return Status(modes.status().code(),
                  "run_vectors: " + std::string(modes.status().message()));
  if (options.sweep_modes) {
    if (!impl_->modal) {
      auto modal = poly::ModalExecutor::create(impl_->poly_design->netlist);
      if (!modal.ok())
        return Status(modal.status().code(),
                      "run_vectors: sweep: " +
                          std::string(modal.status().message()));
      impl_->modal.emplace(std::move(*modal));
    }
    return impl_->modal->run_sweep(vectors);
  }
  if (options.mode != 0) {
    auto sub = impl_->mode_session(options.mode);
    if (!sub.ok())
      return Status(sub.status().code(),
                    "run_vectors: " + std::string(sub.status().message()));
    RunOptions sub_options = options;
    sub_options.mode = 0;
    return (*sub)->run_vectors(vectors, sub_options);
  }
  if (!impl_->state.empty())
    return Status::failed_precondition(
        "run_vectors: sequential design — vectors are not independent; use "
        "step()");
  return impl_->exec().run(vectors, options);
}

Result<std::vector<BitVector>> Session::run_cycles(
    std::span<const InputVector> stimulus, std::size_t cycles,
    const RunOptions& options) {
  if (auto modes = impl_->check_mode_options(options); !modes.ok())
    return Status(modes.status().code(),
                  "run_cycles: " + std::string(modes.status().message()));
  if (options.sweep_modes)
    return Status::unimplemented(
        "run_cycles: clocked polymorphic designs are evaluated per-mode "
        "(RunOptions::mode), not mode-swept");
  if (options.mode != 0) {
    auto sub = impl_->mode_session(options.mode);
    if (!sub.ok())
      return Status(sub.status().code(),
                    "run_cycles: " + std::string(sub.status().message()));
    RunOptions sub_options = options;
    sub_options.mode = 0;
    return (*sub)->run_cycles(stimulus, cycles, sub_options);
  }
  return impl_->exec().run_cycles(stimulus, cycles, options);
}

Status Session::compiled_engine_status() {
  return impl_->exec().compiled_engine_status();
}

ExecutorStats Session::executor_stats() const {
  // All-zero before the first batch run (the executor is built lazily).
  return impl_->executor ? impl_->executor->stats() : ExecutorStats{};
}

const std::vector<std::string>& Session::input_names() const {
  return impl_->input_names;
}
const std::vector<std::string>& Session::output_names() const {
  return impl_->output_names;
}
bool Session::sequential() const { return !impl_->state.empty(); }

std::size_t Session::mode_count() const {
  return impl_->poly_design
             ? static_cast<std::size_t>(impl_->poly_design->netlist.modes())
             : 1u;
}

Result<sim::NetId> Session::net(std::string_view name) const {
  const auto it = impl_->by_name.find(name);
  if (it == impl_->by_name.end())
    return Status::not_found("net: no port named '" + std::string(name) + "'");
  return it->second;
}
sim::Simulator& Session::simulator() {
  // Handing out the raw simulator is the strongest interactive contract:
  // sync it and keep every future step on the event path.
  impl_->resync_sim();
  impl_->step_fallback = true;
  return *impl_->sim;
}
const sim::Circuit& Session::circuit() const { return *impl_->circuit; }

}  // namespace pp::platform
