#include "platform/executor.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <utility>

#include "core/bitstream.h"
#include "util/thread_pool.h"

namespace pp::platform {
namespace {

constexpr std::size_t kLanes = sim::Evaluator::kBatchLanes;

/// Evaluate wide-batch granules [granule_begin, granule_end) of `vectors`
/// on one engine instance — each granule is `granule_words` plane words
/// (granule_words * kLanes stimulus vectors, except the final partial one)
/// packed straight into the engine's structure-of-arrays plane layout.
/// The packing scratch is allocated once per shard and reused across its
/// granules.  Fails on a non-binary output, whichever engine produced it.
[[nodiscard]] Status eval_granules(sim::Evaluator& eval,
                                   std::span<const InputVector> vectors,
                                   const std::vector<std::string>& output_names,
                                   std::vector<BitVector>& results,
                                   std::size_t granule_begin,
                                   std::size_t granule_end,
                                   std::size_t granule_words) {
  const std::size_t nin = eval.input_count();
  const std::size_t nout = eval.output_count();
  const std::size_t granule_lanes = granule_words * kLanes;
  // Per-shard scratch: sized for a full granule, truncated views for the
  // final partial one.  Stimulus is two-valued (BitVector), so the input
  // unknown plane is always all-zero — exactly what arms the compiled
  // engine's fast path.
  std::vector<std::uint64_t> in_value(nin * granule_words);
  const std::vector<std::uint64_t> in_unknown(nin * granule_words, 0);
  std::vector<std::uint64_t> out_value(nout * granule_words);
  std::vector<std::uint64_t> out_unknown(nout * granule_words);
  for (std::size_t g = granule_begin; g < granule_end; ++g) {
    const std::size_t v0 = g * granule_lanes;
    const std::size_t lanes =
        std::min<std::size_t>(granule_lanes, vectors.size() - v0);
    const std::size_t words = (lanes + kLanes - 1) / kLanes;
    std::fill(in_value.begin(), in_value.begin() + nin * words, 0);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const InputVector& v = vectors[v0 + lane];
      const std::size_t word = lane / kLanes;
      const std::uint64_t bit = std::uint64_t{1} << (lane % kLanes);
      for (std::size_t j = 0; j < nin; ++j)
        if (v[j]) in_value[j * words + word] |= bit;
    }
    if (Status s = eval.eval_wide(
            std::span<const std::uint64_t>(in_value.data(), nin * words),
            std::span<const std::uint64_t>(in_unknown.data(), nin * words),
            std::span<std::uint64_t>(out_value.data(), nout * words),
            std::span<std::uint64_t>(out_unknown.data(), nout * words), lanes);
        !s.ok())
      return s;
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      BitVector& r = results[v0 + lane];
      r.assign(nout, false);
      const std::size_t word = lane / kLanes;
      const std::uint64_t bit = std::uint64_t{1} << (lane % kLanes);
      for (std::size_t k = 0; k < nout; ++k) {
        if (out_unknown[k * words + word] & bit)
          return Status::internal("run_vectors: output '" + output_names[k] +
                                  "' settled to X");
        r[k] = (out_value[k * words + word] & bit) != 0;
      }
    }
  }
  return Status();
}

/// The clocked counterpart of eval_granules: each granule packs whole
/// stimulus *streams* (stream-major `stimulus[s * cycles + c]`) into the
/// cycle-major SoA planes run_cycles speaks, runs every cycle with per-lane
/// register state carried inside the engine's scratch, and unpacks one
/// result vector per cycle.  Each granule starts from reset — streams are
/// independent by contract, so sharded clones need no state exchange.
[[nodiscard]] Status eval_cycle_granules(
    sim::Evaluator& eval, std::span<const InputVector> stimulus,
    std::size_t cycles, const std::vector<std::string>& output_names,
    std::vector<BitVector>& results, std::size_t granule_begin,
    std::size_t granule_end, std::size_t granule_words) {
  const std::size_t nin = eval.input_count();
  const std::size_t nout = eval.output_count();
  const std::size_t streams = stimulus.size() / cycles;
  const std::size_t granule_lanes = granule_words * kLanes;
  std::vector<std::uint64_t> in_value(nin * cycles * granule_words);
  const std::vector<std::uint64_t> in_unknown(nin * cycles * granule_words, 0);
  std::vector<std::uint64_t> out_value(nout * cycles * granule_words);
  std::vector<std::uint64_t> out_unknown(nout * cycles * granule_words);
  for (std::size_t g = granule_begin; g < granule_end; ++g) {
    const std::size_t s0 = g * granule_lanes;
    const std::size_t lanes =
        std::min<std::size_t>(granule_lanes, streams - s0);
    const std::size_t words = (lanes + kLanes - 1) / kLanes;
    std::fill(in_value.begin(), in_value.begin() + nin * cycles * words, 0);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const std::size_t word = lane / kLanes;
      const std::uint64_t bit = std::uint64_t{1} << (lane % kLanes);
      for (std::size_t c = 0; c < cycles; ++c) {
        const InputVector& v = stimulus[(s0 + lane) * cycles + c];
        for (std::size_t j = 0; j < nin; ++j)
          if (v[j]) in_value[(c * nin + j) * words + word] |= bit;
      }
    }
    if (Status s = eval.run_cycles(
            std::span<const std::uint64_t>(in_value.data(),
                                           nin * cycles * words),
            std::span<const std::uint64_t>(in_unknown.data(),
                                           nin * cycles * words),
            std::span<std::uint64_t>(out_value.data(), nout * cycles * words),
            std::span<std::uint64_t>(out_unknown.data(),
                                     nout * cycles * words),
            cycles, lanes);
        !s.ok())
      return s;
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const std::size_t word = lane / kLanes;
      const std::uint64_t bit = std::uint64_t{1} << (lane % kLanes);
      for (std::size_t c = 0; c < cycles; ++c) {
        BitVector& r = results[(s0 + lane) * cycles + c];
        r.assign(nout, false);
        for (std::size_t k = 0; k < nout; ++k) {
          if (out_unknown[(c * nout + k) * words + word] & bit)
            return Status::internal(
                "run_cycles: output '" + output_names[k] +
                "' settled to X at cycle " + std::to_string(c) +
                " (unreset register state?)");
          r[k] = (out_value[(c * nout + k) * words + word] & bit) != 0;
        }
      }
    }
  }
  return Status();
}

}  // namespace

/// Bookkeeping for the background JIT kernel build.  The async task is
/// fully self-contained (it compiles its own program image from value
/// copies of the binding), so this state moves with the executor and the
/// future's destructor is the only join point.
struct BatchExecutor::JitState {
  bool requested = false;  ///< warm_jit has launched the build
  bool attempted = false;  ///< the build finished (engine or status below)
  Status status;           ///< failure reason when attempted && !engine
  std::future<Result<sim::JitEval>> future;
  std::unique_ptr<sim::JitEval> engine;
  /// Build events not yet attributed to a successful run's last_run_.
  std::uint64_t pending_compiles = 0;
  std::uint64_t pending_cache_hits = 0;
};

BatchExecutor::BatchExecutor(BatchExecutor&&) noexcept = default;
BatchExecutor& BatchExecutor::operator=(BatchExecutor&&) noexcept = default;
BatchExecutor::~BatchExecutor() = default;

BatchExecutor::BatchExecutor(const sim::Circuit& circuit,
                             std::vector<sim::NetId> in_nets,
                             std::vector<sim::NetId> out_nets,
                             std::vector<std::string> output_names,
                             sim::LevelMap levels,
                             std::vector<sim::ExternalReg> regs)
    : circuit_(&circuit),
      in_nets_(std::move(in_nets)),
      out_nets_(std::move(out_nets)),
      output_names_(std::move(output_names)),
      levels_(std::move(levels)),
      regs_(std::move(regs)) {
  // Clocked bindings: declared external register loops, or any behavioural
  // state-holding gate in the circuit itself.
  sequential_ = !regs_.empty();
  for (const sim::Gate& g : circuit.gates())
    if (g.kind == sim::GateKind::kDff || g.kind == sim::GateKind::kLatch ||
        g.kind == sim::GateKind::kCElement)
      sequential_ = true;
}

Status BatchExecutor::ensure_compiled() {
  if (compiled_attempted_) return compiled_status_;
  compiled_attempted_ = true;
  auto engine =
      sequential_
          ? sim::CompiledEval::compile_sequential(
                *circuit_, in_nets_, out_nets_, regs_,
                levels_.empty() ? nullptr : &levels_)
          : sim::CompiledEval::compile(*circuit_, in_nets_, out_nets_,
                                       levels_.empty() ? nullptr : &levels_);
  if (!engine.ok()) {
    compiled_status_ = engine.status();
    return compiled_status_;
  }
  compiled_ = std::make_unique<sim::CompiledEval>(std::move(*engine));
  return compiled_status_;
}

Result<sim::Evaluator*> BatchExecutor::ensure_event(std::uint64_t budget) {
  if (event_engine_) {
    event_engine_->set_max_events(budget);
    return static_cast<sim::Evaluator*>(event_engine_.get());
  }
  auto engine =
      sim::EventEval::create(*circuit_, in_nets_, out_nets_, budget, regs_);
  if (!engine.ok()) return engine.status();
  event_engine_ = std::make_unique<sim::EventEval>(std::move(*engine));
  return static_cast<sim::Evaluator*>(event_engine_.get());
}

Status BatchExecutor::compiled_engine_status() { return ensure_compiled(); }

void BatchExecutor::warm_jit(const sim::JitOptions& options) {
  if (!jit_state_) jit_state_ = std::make_unique<JitState>();
  JitState& js = *jit_state_;
  if (js.requested) return;
  js.requested = true;
  // The task compiles its own program image from value copies of the
  // binding (the circuit outlives the executor by contract): it never
  // touches the cached engines a dispatcher may be running on, and it
  // keeps working if this executor is moved mid-build.
  const sim::Circuit* circuit = circuit_;
  js.future = std::async(
      std::launch::async,
      [circuit, seq = sequential_, in = in_nets_, out = out_nets_,
       regs = regs_, levels = levels_, options]() -> Result<sim::JitEval> {
        auto base = seq ? sim::CompiledEval::compile_sequential(
                              *circuit, in, out, regs,
                              levels.empty() ? nullptr : &levels)
                        : sim::CompiledEval::compile(
                              *circuit, in, out,
                              levels.empty() ? nullptr : &levels);
        if (!base.ok()) return base.status();
        return sim::JitEval::build(*base, options);
      });
}

sim::JitEval* BatchExecutor::jit_ready() {
  if (!jit_state_ || !jit_state_->requested) return nullptr;
  JitState& js = *jit_state_;
  if (!js.attempted) {
    if (!js.future.valid() ||
        js.future.wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready)
      return nullptr;  // still building — the caller keeps falling back
    js.attempted = true;
    auto built = js.future.get();
    if (built.ok()) {
      js.engine = std::make_unique<sim::JitEval>(std::move(*built));
      const sim::JitBuildInfo& bi = js.engine->build_info();
      if (bi.compiled) {
        ++stats_.jit_compiles;
        ++js.pending_compiles;
      }
      if (bi.cache_hit) {
        ++stats_.jit_cache_hits;
        ++js.pending_cache_hits;
      }
      js.status = Status();
    } else {
      js.status = built.status();
    }
  }
  return js.engine.get();
}

Status BatchExecutor::ensure_jit() {
  if (!jit_state_ || !jit_state_->requested) warm_jit();
  JitState& js = *jit_state_;
  if (!js.attempted && js.future.valid()) js.future.wait();
  (void)jit_ready();
  return js.status;
}

Status BatchExecutor::jit_engine_status() { return ensure_jit(); }

Result<std::vector<BitVector>> BatchExecutor::run(
    std::span<const InputVector> vectors, const RunOptions& options) {
  if (options.mode != 0 || options.sweep_modes)
    return Status::invalid_argument(
        "run_vectors: this binding serves a single configuration view — "
        "mode selection and sweeps need a polymorphic session "
        "(Session::load_poly)");
  if (sequential_)
    return Status::failed_precondition(
        "run_vectors: clocked design (register state) — vectors are cycles "
        "of a stream, not independent; use run_cycles");
  const std::size_t nin = in_nets_.size();
  for (const InputVector& v : vectors)
    if (v.size() != nin)
      return Status::invalid_argument(
          "run_vectors: every vector must have " + std::to_string(nin) +
          " input values");

  std::vector<BitVector> results(vectors.size());
  if (vectors.empty()) return results;

  // Engine selection: kAuto prefers a *ready* JIT kernel (never waits on a
  // build), then the bit-parallel compiled engine, then the event-driven
  // engine when CompiledEval rejects the design; kCompiled/kJit surface
  // their engine's rejection instead.  Every engine sits behind
  // sim::Evaluator, so everything below is engine-agnostic.
  sim::Evaluator* engine = nullptr;
  bool on_jit = false;
  if (options.engine == Engine::kJit) {
    if (Status s = ensure_jit(); !s.ok()) return s;
    engine = jit_state_->engine.get();
    on_jit = true;
  } else if (options.engine != Engine::kEventDriven) {
    if (options.engine == Engine::kAuto && (engine = jit_ready()) != nullptr) {
      on_jit = true;
    } else {
      const Status s = ensure_compiled();
      if (s.ok()) {
        engine = compiled_.get();
      } else if (options.engine == Engine::kCompiled) {
        return s;
      }
    }
  }
  if (!engine) {
    auto ev = ensure_event(options.max_events_per_vector);
    if (!ev.ok()) return ev.status();
    engine = *ev;
  }
  ++stats_.runs;
  // The JIT serves the same compiled program natively, so its runs count
  // in compiled_runs; jit_passes below says how many kernel passes the
  // generated code took.  A kAuto run that wanted the JIT (warm requested)
  // but ran elsewhere is a fallback.
  const bool on_compiled = on_jit || engine == compiled_.get();
  ++(on_compiled ? stats_.compiled_runs : stats_.event_runs);
  const bool jit_fell_back = !on_jit && options.engine == Engine::kAuto &&
                             jit_state_ && jit_state_->requested;
  if (jit_fell_back) ++stats_.jit_fallbacks;

  // The pass counters live on each engine's shared state, so sharded
  // clones aggregate into the same totals; the executor's totals combine
  // interpreter and JIT (either may have served past runs).  The lifetime
  // totals follow every run, failed ones included (their passes did
  // execute); last_run_ is only replaced when a run succeeds, per its
  // documented contract.
  const auto kernel_totals = [&]() -> sim::CompiledEval::KernelStats {
    sim::CompiledEval::KernelStats t{};
    if (compiled_) t = compiled_->kernel_stats();
    if (jit_state_ && jit_state_->engine) {
      const sim::CompiledEval::KernelStats j = jit_state_->engine->kernel_stats();
      t.fast_passes += j.fast_passes;
      t.slow_passes += j.slow_passes;
      t.cycles_run += j.cycles_run;
      t.state_commits += j.state_commits;
      t.fast_cycle_passes += j.fast_cycle_passes;
    }
    return t;
  };
  const auto jit_pass_total = [&]() -> std::uint64_t {
    if (!jit_state_ || !jit_state_->engine) return 0;
    const sim::CompiledEval::KernelStats j = jit_state_->engine->kernel_stats();
    return j.fast_passes + j.slow_passes + j.cycles_run;
  };
  const sim::CompiledEval::KernelStats passes_before =
      on_compiled ? kernel_totals() : sim::CompiledEval::KernelStats{};
  const std::uint64_t jit_before = jit_pass_total();
  const auto sync_pass_totals = [&]() -> sim::CompiledEval::KernelStats {
    if (!on_compiled) return {};
    const sim::CompiledEval::KernelStats after = kernel_totals();
    stats_.fast_passes = after.fast_passes;
    stats_.slow_passes = after.slow_passes;
    stats_.cycles_run = after.cycles_run;
    stats_.state_commits = after.state_commits;
    stats_.fast_cycle_passes = after.fast_cycle_passes;
    stats_.jit_passes = jit_pass_total();
    return after;
  };
  const auto finish = [&] {
    const sim::CompiledEval::KernelStats after = sync_pass_totals();
    stats_.vectors_run += vectors.size();
    last_run_ = {};
    last_run_.runs = 1;
    ++(on_compiled ? last_run_.compiled_runs : last_run_.event_runs);
    last_run_.vectors_run = vectors.size();
    last_run_.fast_passes = after.fast_passes - passes_before.fast_passes;
    last_run_.slow_passes = after.slow_passes - passes_before.slow_passes;
    last_run_.jit_passes = jit_pass_total() - jit_before;
    last_run_.jit_fallbacks = jit_fell_back ? 1 : 0;
    if (jit_state_) {
      last_run_.jit_compiles = std::exchange(jit_state_->pending_compiles, 0);
      last_run_.jit_cache_hits =
          std::exchange(jit_state_->pending_cache_hits, 0);
    }
  };

  // Pack vectors into wide-batch granules (the engine's preferred words —
  // 512 lanes for the default compiled engine, one 64-lane word for the
  // event engine) and shard whole granules across the pool.  Compiled
  // clones share the immutable program and carry only scratch planes;
  // event clones copy the settled base simulator once per shard.
  // max_threads may exceed the pool size: extra shards simply queue, which
  // also lets single-core hosts exercise the cloning path.
  util::ThreadPool& pool = util::global_pool();
  std::size_t workers =
      options.max_threads == 0 ? pool.worker_count() : options.max_threads;
  std::size_t gwords = std::max<std::size_t>(1, engine->preferred_words());
  // A full-width granule on a small or mid-size run can leave most of the
  // pool idle (one 512-lane granule per shard).  Shrink the granule — never
  // below one word — until there is at least one granule per worker; wide
  // amortization matters less than an idle core.
  const std::size_t total_words = (vectors.size() + kLanes - 1) / kLanes;
  if (workers > 1 && gwords > 1)
    gwords = std::max<std::size_t>(
        1, std::min(gwords, (total_words + workers - 1) / workers));
  const std::size_t glanes = gwords * kLanes;
  const std::size_t ngranules = (vectors.size() + glanes - 1) / glanes;
  workers = std::min(workers, ngranules);

  if (workers <= 1) {
    // Serial reference path: stream every granule through the engine itself.
    if (Status s = eval_granules(*engine, vectors, output_names_, results, 0,
                                 ngranules, gwords);
        !s.ok()) {
      sync_pass_totals();
      return s;
    }
    finish();
    return results;
  }

  // Completion is tracked with a per-call latch rather than the pool-wide
  // wait_idle(): concurrent runs (or other pool users) must not be able to
  // stall — or deadlock — this one.
  std::mutex done_mutex;
  std::condition_variable done_cv;
  Status first_error;
  const std::size_t chunk = (ngranules + workers - 1) / workers;
  std::size_t remaining = (ngranules + chunk - 1) / chunk;
  for (std::size_t begin = 0; begin < ngranules; begin += chunk) {
    const std::size_t end = std::min(begin + chunk, ngranules);
    pool.submit([&, begin, end] {
      const std::unique_ptr<sim::Evaluator> local = engine->clone();
      Status shard_status = eval_granules(*local, vectors, output_names_,
                                          results, begin, end, gwords);
      {
        const std::lock_guard<std::mutex> lock(done_mutex);
        if (!shard_status.ok() && first_error.ok())
          first_error = std::move(shard_status);
        --remaining;
      }
      done_cv.notify_one();
    });
  }
  {
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&] { return remaining == 0; });
  }
  if (!first_error.ok()) {
    sync_pass_totals();
    return first_error;
  }
  finish();
  return results;
}

Result<std::vector<BitVector>> BatchExecutor::run_cycles(
    std::span<const InputVector> stimulus, std::size_t cycles,
    const RunOptions& options) {
  if (options.mode != 0 || options.sweep_modes)
    return Status::invalid_argument(
        "run_cycles: this binding serves a single configuration view — "
        "clocked polymorphic designs run per-mode through Session::load_poly "
        "with RunOptions::mode");
  const std::size_t nin = in_nets_.size();
  if (cycles < 1)
    return Status::invalid_argument("run_cycles: cycles must be >= 1");
  if (stimulus.size() % cycles != 0)
    return Status::invalid_argument(
        "run_cycles: " + std::to_string(stimulus.size()) +
        " stimulus vectors do not divide into whole " +
        std::to_string(cycles) + "-cycle streams");
  for (const InputVector& v : stimulus)
    if (v.size() != nin)
      return Status::invalid_argument(
          "run_cycles: every vector must have " + std::to_string(nin) +
          " input values");

  std::vector<BitVector> results(stimulus.size());
  if (stimulus.empty()) return results;
  const std::size_t streams = stimulus.size() / cycles;

  // Engine selection mirrors run(): kAuto prefers a ready JIT kernel, then
  // the compiled sequential program, falling back to the event engine's
  // per-lane cycle protocol when compile_sequential rejects the design
  // (async handshakes, derived clocks, dynamic tri-state); kCompiled/kJit
  // surface their engine's rejection.
  sim::Evaluator* engine = nullptr;
  bool on_jit = false;
  if (options.engine == Engine::kJit) {
    if (Status s = ensure_jit(); !s.ok()) return s;
    engine = jit_state_->engine.get();
    on_jit = true;
  } else if (options.engine != Engine::kEventDriven) {
    if (options.engine == Engine::kAuto && (engine = jit_ready()) != nullptr) {
      on_jit = true;
    } else {
      const Status s = ensure_compiled();
      if (s.ok()) {
        engine = compiled_.get();
      } else if (options.engine == Engine::kCompiled) {
        return s;
      }
    }
  }
  if (!engine) {
    auto ev = ensure_event(options.max_events_per_vector);
    if (!ev.ok()) return ev.status();
    engine = *ev;
  }
  ++stats_.runs;
  const bool on_compiled = on_jit || engine == compiled_.get();
  ++(on_compiled ? stats_.compiled_runs : stats_.event_runs);
  const bool jit_fell_back = !on_jit && options.engine == Engine::kAuto &&
                             jit_state_ && jit_state_->requested;
  if (jit_fell_back) ++stats_.jit_fallbacks;

  const auto kernel_totals = [&]() -> sim::CompiledEval::KernelStats {
    sim::CompiledEval::KernelStats t{};
    if (compiled_) t = compiled_->kernel_stats();
    if (jit_state_ && jit_state_->engine) {
      const sim::CompiledEval::KernelStats j = jit_state_->engine->kernel_stats();
      t.fast_passes += j.fast_passes;
      t.slow_passes += j.slow_passes;
      t.cycles_run += j.cycles_run;
      t.state_commits += j.state_commits;
      t.fast_cycle_passes += j.fast_cycle_passes;
    }
    return t;
  };
  const auto jit_pass_total = [&]() -> std::uint64_t {
    if (!jit_state_ || !jit_state_->engine) return 0;
    const sim::CompiledEval::KernelStats j = jit_state_->engine->kernel_stats();
    return j.fast_passes + j.slow_passes + j.cycles_run;
  };
  const sim::CompiledEval::KernelStats passes_before =
      on_compiled ? kernel_totals() : sim::CompiledEval::KernelStats{};
  const std::uint64_t jit_before = jit_pass_total();
  const auto sync_pass_totals = [&]() -> sim::CompiledEval::KernelStats {
    if (!on_compiled) return {};
    const sim::CompiledEval::KernelStats after = kernel_totals();
    stats_.fast_passes = after.fast_passes;
    stats_.slow_passes = after.slow_passes;
    stats_.cycles_run = after.cycles_run;
    stats_.state_commits = after.state_commits;
    stats_.fast_cycle_passes = after.fast_cycle_passes;
    stats_.jit_passes = jit_pass_total();
    return after;
  };
  const auto finish = [&] {
    const sim::CompiledEval::KernelStats after = sync_pass_totals();
    stats_.vectors_run += stimulus.size();
    last_run_ = {};
    last_run_.runs = 1;
    ++(on_compiled ? last_run_.compiled_runs : last_run_.event_runs);
    last_run_.vectors_run = stimulus.size();
    last_run_.fast_passes = after.fast_passes - passes_before.fast_passes;
    last_run_.slow_passes = after.slow_passes - passes_before.slow_passes;
    last_run_.cycles_run = after.cycles_run - passes_before.cycles_run;
    last_run_.state_commits =
        after.state_commits - passes_before.state_commits;
    last_run_.fast_cycle_passes =
        after.fast_cycle_passes - passes_before.fast_cycle_passes;
    last_run_.jit_passes = jit_pass_total() - jit_before;
    last_run_.jit_fallbacks = jit_fell_back ? 1 : 0;
    if (jit_state_) {
      last_run_.jit_compiles = std::exchange(jit_state_->pending_compiles, 0);
      last_run_.jit_cache_hits =
          std::exchange(jit_state_->pending_cache_hits, 0);
    }
  };

  // Granules span whole streams (the lane axis); every stream of a granule
  // runs all its cycles in one engine call, so register state never leaves
  // the engine's scratch planes.  Sharding follows run(): whole granules
  // per worker, granule width shrunk so no core idles on mid-size batches.
  util::ThreadPool& pool = util::global_pool();
  std::size_t workers =
      options.max_threads == 0 ? pool.worker_count() : options.max_threads;
  std::size_t gwords = std::max<std::size_t>(1, engine->preferred_words());
  const std::size_t total_words = (streams + kLanes - 1) / kLanes;
  if (workers > 1 && gwords > 1)
    gwords = std::max<std::size_t>(
        1, std::min(gwords, (total_words + workers - 1) / workers));
  const std::size_t glanes = gwords * kLanes;
  const std::size_t ngranules = (streams + glanes - 1) / glanes;
  workers = std::min(workers, ngranules);

  if (workers <= 1) {
    if (Status s = eval_cycle_granules(*engine, stimulus, cycles,
                                       output_names_, results, 0, ngranules,
                                       gwords);
        !s.ok()) {
      sync_pass_totals();
      return s;
    }
    finish();
    return results;
  }

  std::mutex done_mutex;
  std::condition_variable done_cv;
  Status first_error;
  const std::size_t chunk = (ngranules + workers - 1) / workers;
  std::size_t remaining = (ngranules + chunk - 1) / chunk;
  for (std::size_t begin = 0; begin < ngranules; begin += chunk) {
    const std::size_t end = std::min(begin + chunk, ngranules);
    pool.submit([&, begin, end] {
      const std::unique_ptr<sim::Evaluator> local = engine->clone();
      Status shard_status = eval_cycle_granules(
          *local, stimulus, cycles, output_names_, results, begin, end,
          gwords);
      {
        const std::lock_guard<std::mutex> lock(done_mutex);
        if (!shard_status.ok() && first_error.ok())
          first_error = std::move(shard_status);
        --remaining;
      }
      done_cv.notify_one();
    });
  }
  {
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&] { return remaining == 0; });
  }
  if (!first_error.ok()) {
    sync_pass_totals();
    return first_error;
  }
  finish();
  return results;
}

std::vector<std::uint8_t> pack_bit_planes(std::span<const BitVector> vectors,
                                          std::size_t width) {
  const std::size_t plane_bytes = (vectors.size() + 7) / 8;
  std::vector<std::uint8_t> bytes(width * plane_bytes, 0);
  for (std::size_t v = 0; v < vectors.size(); ++v) {
    const std::uint8_t bit = static_cast<std::uint8_t>(1u << (v % 8));
    for (std::size_t i = 0; i < width; ++i)
      if (vectors[v][i]) bytes[i * plane_bytes + v / 8] |= bit;
  }
  return bytes;
}

std::uint32_t result_checksum(std::span<const BitVector> results) {
  // Self-delimiting serialization (count, then per-vector width + packed
  // bits) so [ [1,0] ] and [ [1],[0] ] can never collide structurally; the
  // byte stream goes through the same CRC-32 the bitstream codecs use.
  std::vector<std::uint8_t> bytes;
  bytes.reserve(8 + results.size() * 4);
  const auto put_u32 = [&bytes](std::uint32_t value) {
    for (int i = 0; i < 4; ++i)
      bytes.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  };
  put_u32(static_cast<std::uint32_t>(results.size()));
  for (const BitVector& v : results) {
    put_u32(static_cast<std::uint32_t>(v.size()));
    std::uint8_t acc = 0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (v[i]) acc |= static_cast<std::uint8_t>(1u << (i % 8));
      if (i % 8 == 7) {
        bytes.push_back(acc);
        acc = 0;
      }
    }
    if (v.size() % 8 != 0) bytes.push_back(acc);
  }
  return core::crc32(bytes);
}

Result<std::vector<BitVector>> unpack_bit_planes(
    std::span<const std::uint8_t> bytes, std::size_t count,
    std::size_t width) {
  const std::size_t plane_bytes = (count + 7) / 8;
  if (bytes.size() != width * plane_bytes)
    return Status::invalid_argument(
        "unpack_bit_planes: " + std::to_string(count) + " vectors x " +
        std::to_string(width) + " bits need exactly " +
        std::to_string(width * plane_bytes) + " plane bytes, got " +
        std::to_string(bytes.size()));
  // Reject non-canonical pad bits: two byte streams must never decode to
  // the same batch (wire frames are CRC-covered but the CRC cannot see a
  // semantically-ignored bit).
  if (count % 8 != 0)
    for (std::size_t i = 0; i < width; ++i) {
      const std::uint8_t last = bytes[i * plane_bytes + plane_bytes - 1];
      if ((last & static_cast<std::uint8_t>(~((1u << (count % 8)) - 1))) != 0)
        return Status::invalid_argument(
            "unpack_bit_planes: non-zero pad bits in plane " +
            std::to_string(i));
    }
  std::vector<BitVector> vectors(count, BitVector(width, false));
  for (std::size_t v = 0; v < count; ++v) {
    const std::uint8_t bit = static_cast<std::uint8_t>(1u << (v % 8));
    for (std::size_t i = 0; i < width; ++i)
      if ((bytes[i * plane_bytes + v / 8] & bit) != 0) vectors[v][i] = true;
  }
  return vectors;
}

}  // namespace pp::platform
