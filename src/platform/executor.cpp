#include "platform/executor.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "util/thread_pool.h"

namespace pp::platform {
namespace {

constexpr int kLanes = sim::Evaluator::kBatchLanes;

/// Evaluate 64-wide batches [batch_begin, batch_end) of `vectors` on one
/// engine instance, unpacking each lane into `results`.  Fails on a
/// non-binary output, whichever engine produced it.
[[nodiscard]] Status eval_batches(sim::Evaluator& eval,
                                  std::span<const InputVector> vectors,
                                  const std::vector<std::string>& output_names,
                                  std::vector<BitVector>& results,
                                  std::size_t batch_begin,
                                  std::size_t batch_end) {
  const std::size_t nin = eval.input_count();
  const std::size_t nout = eval.output_count();
  std::vector<sim::PackedBits> in(nin), out(nout);
  for (std::size_t b = batch_begin; b < batch_end; ++b) {
    const std::size_t v0 = b * kLanes;
    const int lanes = static_cast<int>(
        std::min<std::size_t>(kLanes, vectors.size() - v0));
    for (std::size_t j = 0; j < nin; ++j) {
      sim::PackedBits p;
      for (int lane = 0; lane < lanes; ++lane)
        if (vectors[v0 + lane][j]) p.value |= std::uint64_t{1} << lane;
      in[j] = p;
    }
    if (Status s = eval.eval_packed(in, out, lanes); !s.ok()) return s;
    for (int lane = 0; lane < lanes; ++lane) {
      BitVector& r = results[v0 + lane];
      r.assign(nout, false);
      for (std::size_t k = 0; k < nout; ++k) {
        const sim::Logic v = sim::get_lane(out[k], lane);
        if (!sim::is_binary(v))
          return Status::internal("run_vectors: output '" + output_names[k] +
                                  "' settled to " +
                                  std::string(1, sim::to_char(v)));
        r[k] = v == sim::Logic::k1;
      }
    }
  }
  return Status();
}

}  // namespace

BatchExecutor::BatchExecutor(const sim::Circuit& circuit,
                             std::vector<sim::NetId> in_nets,
                             std::vector<sim::NetId> out_nets,
                             std::vector<std::string> output_names,
                             sim::LevelMap levels)
    : circuit_(&circuit),
      in_nets_(std::move(in_nets)),
      out_nets_(std::move(out_nets)),
      output_names_(std::move(output_names)),
      levels_(std::move(levels)) {}

Status BatchExecutor::ensure_compiled() {
  if (compiled_attempted_) return compiled_status_;
  compiled_attempted_ = true;
  auto engine = sim::CompiledEval::compile(
      *circuit_, in_nets_, out_nets_, levels_.empty() ? nullptr : &levels_);
  if (!engine.ok()) {
    compiled_status_ = engine.status();
    return compiled_status_;
  }
  compiled_ = std::make_unique<sim::CompiledEval>(std::move(*engine));
  return compiled_status_;
}

Result<sim::Evaluator*> BatchExecutor::ensure_event(std::uint64_t budget) {
  if (event_engine_) {
    event_engine_->set_max_events(budget);
    return static_cast<sim::Evaluator*>(event_engine_.get());
  }
  auto engine = sim::EventEval::create(*circuit_, in_nets_, out_nets_, budget);
  if (!engine.ok()) return engine.status();
  event_engine_ = std::make_unique<sim::EventEval>(std::move(*engine));
  return static_cast<sim::Evaluator*>(event_engine_.get());
}

Status BatchExecutor::compiled_engine_status() { return ensure_compiled(); }

Result<std::vector<BitVector>> BatchExecutor::run(
    std::span<const InputVector> vectors, const RunOptions& options) {
  const std::size_t nin = in_nets_.size();
  for (const InputVector& v : vectors)
    if (v.size() != nin)
      return Status::invalid_argument(
          "run_vectors: every vector must have " + std::to_string(nin) +
          " input values");

  std::vector<BitVector> results(vectors.size());
  if (vectors.empty()) return results;

  // Engine selection: kAuto prefers the bit-parallel compiled engine and
  // falls back to the event-driven engine when CompiledEval rejects the
  // design; kCompiled surfaces that rejection instead.  Both engines sit
  // behind sim::Evaluator, so everything below is engine-agnostic.
  sim::Evaluator* engine = nullptr;
  if (options.engine != Engine::kEventDriven) {
    const Status s = ensure_compiled();
    if (s.ok()) {
      engine = compiled_.get();
    } else if (options.engine == Engine::kCompiled) {
      return s;
    }
  }
  if (!engine) {
    auto ev = ensure_event(options.max_events_per_vector);
    if (!ev.ok()) return ev.status();
    engine = *ev;
  }
  ++stats_.runs;
  ++(engine == compiled_.get() ? stats_.compiled_runs : stats_.event_runs);

  // Pack vectors into 64-wide batches and shard whole batches across the
  // pool.  Compiled clones share the immutable program and carry only
  // scratch slots; event clones copy the settled base simulator once per
  // shard.  max_threads may exceed the pool size: extra shards simply
  // queue, which also lets single-core hosts exercise the cloning path.
  util::ThreadPool& pool = util::global_pool();
  std::size_t workers =
      options.max_threads == 0 ? pool.worker_count() : options.max_threads;
  const std::size_t nbatches = (vectors.size() + kLanes - 1) / kLanes;
  workers = std::min(workers, nbatches);

  if (workers <= 1) {
    // Serial reference path: stream every batch through the engine itself.
    if (Status s = eval_batches(*engine, vectors, output_names_, results, 0,
                                nbatches);
        !s.ok())
      return s;
    stats_.vectors_run += vectors.size();
    return results;
  }

  // Completion is tracked with a per-call latch rather than the pool-wide
  // wait_idle(): concurrent runs (or other pool users) must not be able to
  // stall — or deadlock — this one.
  std::mutex done_mutex;
  std::condition_variable done_cv;
  Status first_error;
  const std::size_t chunk = (nbatches + workers - 1) / workers;
  std::size_t remaining = (nbatches + chunk - 1) / chunk;
  for (std::size_t begin = 0; begin < nbatches; begin += chunk) {
    const std::size_t end = std::min(begin + chunk, nbatches);
    pool.submit([&, begin, end] {
      const std::unique_ptr<sim::Evaluator> local = engine->clone();
      Status shard_status =
          eval_batches(*local, vectors, output_names_, results, begin, end);
      {
        const std::lock_guard<std::mutex> lock(done_mutex);
        if (!shard_status.ok() && first_error.ok())
          first_error = std::move(shard_status);
        --remaining;
      }
      done_cv.notify_one();
    });
  }
  {
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&] { return remaining == 0; });
  }
  if (!first_error.ok()) return first_error;
  stats_.vectors_run += vectors.size();
  return results;
}

}  // namespace pp::platform
