// Defect injection and fault-aware placement — operationalising the paper's
// premise that nano-scale devices bring "poor reliability" [16] and its
// future-work direction on defect-tolerant, locally-connected arrays.
//
// A DefectMap marks leaf cells (crosspoints), drivers, or whole blocks as
// unusable.  `conflicts` checks a configured fabric against the map;
// `find_clean_origin` searches translation offsets for a macro footprint
// that avoids defective resources — the simplest useful remapping strategy
// on a homogeneous array (any region is as good as any other, which is the
// whole point of an undifferentiated fabric).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "core/fabric.h"
#include "util/rng.h"

namespace pp::arch {

class DefectMap {
 public:
  DefectMap(int rows, int cols);

  /// Independent Bernoulli defects at rate `p_cell` per crosspoint and
  /// `p_driver` per driver.
  static DefectMap random(int rows, int cols, double p_cell, double p_driver,
                          util::Rng& rng);

  void mark_crosspoint(int r, int c, int row, int col);
  void mark_driver(int r, int c, int row);

  [[nodiscard]] bool crosspoint_bad(int r, int c, int row, int col) const;
  [[nodiscard]] bool driver_bad(int r, int c, int row) const;
  [[nodiscard]] int defect_count() const noexcept { return defects_; }
  [[nodiscard]] int rows() const noexcept { return rows_; }
  [[nodiscard]] int cols() const noexcept { return cols_; }

 private:
  [[nodiscard]] std::size_t xp_index(int r, int c, int row, int col) const;
  [[nodiscard]] std::size_t drv_index(int r, int c, int row) const;
  int rows_, cols_;
  std::vector<bool> xp_bad_;
  std::vector<bool> drv_bad_;
  int defects_ = 0;
};

/// Number of configured resources that collide with defects (0 = clean).
[[nodiscard]] int conflicts(const core::Fabric& fabric, const DefectMap& map);

/// Try to place `configure(fabric, r0, c0)` so that it avoids all defects,
/// scanning origins row-major within the fabric bounds.  Returns the origin
/// used, or nullopt if every position conflicts.  `fp_rows`/`fp_cols` give
/// the macro footprint.  `max_origin_rows` bounds the origin row scan:
/// macros whose operands must stay on the north-boundary pads pass 1 so
/// relocation happens along the boundary only (0 = unbounded).
std::optional<std::pair<int, int>> find_clean_origin(
    core::Fabric& fabric, const DefectMap& map, int fp_rows, int fp_cols,
    const std::function<void(core::Fabric&, int, int)>& configure,
    int max_origin_rows = 0);

/// Monte-Carlo yield: probability that a macro with the given footprint and
/// configure function can be placed defect-free on a rows x cols fabric at
/// crosspoint defect rate p.  Deterministic in `seed`.
[[nodiscard]] double placement_yield(
    int rows, int cols, int fp_rows, int fp_cols,
    const std::function<void(core::Fabric&, int, int)>& configure, double p,
    int trials, std::uint64_t seed);

}  // namespace pp::arch
