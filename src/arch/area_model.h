// λ-accounting area and density models for the polymorphic fabric (§3-§4).
//
// The paper's claims reproduced here:
//   * "a pair of LUT cells could occupy less than 400 λ²" thanks to the
//     vertical RTD/DG-MOSFET stack hiding the configuration overhead;
//   * a conventional 4-LUT plus interconnect and configuration memory is
//     ~600 Kλ² (DeHon [1]) — three orders of magnitude more;
//   * "potential densities in excess of 1e9 logic cells / cm²" at the
//     10 nm / 50 nm (FDSOI / RTD) scaling limits.
#pragma once

#include "core/fabric.h"

namespace pp::arch {

struct PolyAreaParams {
  /// λ² per leaf cell (complementary pair + its share of lines).  The
  /// paper's figure of <400 λ² for a *pair of LUT cells* (2 blocks = 12
  /// NAND rows of leaf cells + drivers) backs out to ~16 λ² per leaf cell
  /// with the vertical stack; we use that derived constant.
  double lambda2_per_leaf_cell = 16.0;
  /// λ² per block of fixed overhead (word/bit line landing pads); small
  /// because the configuration plane sits *under* the logic in the
  /// vertical stack (§3).
  double lambda2_block_overhead = 4.0;
  /// Drawn feature size (nm) at the paper's scaling limit.
  double feature_nm = 10.0;
  /// Layout λ is half the drawn feature.
  [[nodiscard]] double lambda_nm() const { return feature_nm / 2.0; }
};

/// λ² area of one fully-populated block (all 36 crosspoints + 6 drivers +
/// 2 lfb taps), regardless of configuration: the *physical tile*.
[[nodiscard]] double block_area_lambda2(const PolyAreaParams& p = {});

/// λ² area of a block pair — the unit the paper quotes (<400 λ²).
[[nodiscard]] double pair_area_lambda2(const PolyAreaParams& p = {});

/// Physical cm² of one block at the given feature size.
[[nodiscard]] double block_area_cm2(const PolyAreaParams& p = {});

/// Logic-cell density (leaf cells per cm²) — the >1e9 claim.
[[nodiscard]] double cell_density_per_cm2(const PolyAreaParams& p = {});

/// λ² consumed by a configured design on the fabric: used blocks only —
/// unused polymorphic tiles are interchangeable with interconnect and do
/// not need to pre-exist as dedicated logic (the §2.2 waste argument in
/// reverse).  `count_idle_tiles` switches to whole-array accounting.
[[nodiscard]] double design_area_lambda2(const core::Fabric& fabric,
                                         const PolyAreaParams& p = {},
                                         bool count_idle_tiles = false);

}  // namespace pp::arch
