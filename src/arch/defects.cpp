#include "arch/defects.h"

#include <functional>
#include <stdexcept>

namespace pp::arch {

using core::BiasLevel;
using core::BlockConfig;
using core::DriverCfg;
using core::kBlockInputs;
using core::kBlockOutputs;

DefectMap::DefectMap(int rows, int cols) : rows_(rows), cols_(cols) {
  if (rows < 1 || cols < 1)
    throw std::invalid_argument("DefectMap: bad dimensions");
  xp_bad_.assign(static_cast<std::size_t>(rows) * cols * kBlockOutputs *
                     kBlockInputs,
                 false);
  drv_bad_.assign(static_cast<std::size_t>(rows) * cols * kBlockOutputs,
                  false);
}

std::size_t DefectMap::xp_index(int r, int c, int row, int col) const {
  return ((static_cast<std::size_t>(r) * cols_ + c) * kBlockOutputs + row) *
             kBlockInputs +
         col;
}

std::size_t DefectMap::drv_index(int r, int c, int row) const {
  return (static_cast<std::size_t>(r) * cols_ + c) * kBlockOutputs + row;
}

DefectMap DefectMap::random(int rows, int cols, double p_cell,
                            double p_driver, util::Rng& rng) {
  DefectMap m(rows, cols);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      for (int row = 0; row < kBlockOutputs; ++row) {
        for (int col = 0; col < kBlockInputs; ++col)
          if (rng.next_bool(p_cell)) m.mark_crosspoint(r, c, row, col);
        if (rng.next_bool(p_driver)) m.mark_driver(r, c, row);
      }
    }
  return m;
}

void DefectMap::mark_crosspoint(int r, int c, int row, int col) {
  auto i = xp_index(r, c, row, col);
  if (!xp_bad_[i]) ++defects_;
  xp_bad_[i] = true;
}

void DefectMap::mark_driver(int r, int c, int row) {
  auto i = drv_index(r, c, row);
  if (!drv_bad_[i]) ++defects_;
  drv_bad_[i] = true;
}

bool DefectMap::crosspoint_bad(int r, int c, int row, int col) const {
  return xp_bad_[xp_index(r, c, row, col)];
}

bool DefectMap::driver_bad(int r, int c, int row) const {
  return drv_bad_[drv_index(r, c, row)];
}

int conflicts(const core::Fabric& fabric, const DefectMap& map) {
  if (fabric.rows() != map.rows() || fabric.cols() != map.cols())
    throw std::invalid_argument("conflicts: dimension mismatch");
  int bad = 0;
  for (int r = 0; r < fabric.rows(); ++r) {
    for (int c = 0; c < fabric.cols(); ++c) {
      const BlockConfig& b = fabric.block(r, c);
      for (int row = 0; row < kBlockOutputs; ++row) {
        for (int col = 0; col < kBlockInputs; ++col) {
          // A crosspoint in its default state tolerates a stuck cell only
          // if the defect leaves it non-participating; conservatively, any
          // *used* crosspoint on a bad cell is a conflict.
          if (b.xpoint[row][col] != BiasLevel::kForce1 &&
              map.crosspoint_bad(r, c, row, col))
            ++bad;
        }
        if (b.driver[row] != DriverCfg::kOff && map.driver_bad(r, c, row))
          ++bad;
      }
    }
  }
  return bad;
}

std::optional<std::pair<int, int>> find_clean_origin(
    core::Fabric& fabric, const DefectMap& map, int fp_rows, int fp_cols,
    const std::function<void(core::Fabric&, int, int)>& configure,
    int max_origin_rows) {
  const int row_limit = max_origin_rows > 0
                            ? std::min(max_origin_rows - 1 + fp_rows,
                                       fabric.rows())
                            : fabric.rows();
  for (int r0 = 0; r0 + fp_rows <= row_limit; ++r0) {
    for (int c0 = 0; c0 + fp_cols <= fabric.cols(); ++c0) {
      fabric.clear();
      configure(fabric, r0, c0);
      if (conflicts(fabric, map) == 0) return std::make_pair(r0, c0);
    }
  }
  fabric.clear();
  return std::nullopt;
}

double placement_yield(
    int rows, int cols, int fp_rows, int fp_cols,
    const std::function<void(core::Fabric&, int, int)>& configure, double p,
    int trials, std::uint64_t seed) {
  // Yield counts any placement, boundary-constrained or not; callers that
  // need boundary pads should size `rows` to fp_rows.
  int ok = 0;
  for (int t = 0; t < trials; ++t) {
    util::Rng rng(seed + static_cast<std::uint64_t>(t) * 7919);
    const DefectMap map = DefectMap::random(rows, cols, p, p, rng);
    core::Fabric fabric(rows, cols);
    if (find_clean_origin(fabric, map, fp_rows, fp_cols, configure))
      ++ok;
  }
  return static_cast<double>(ok) / trials;
}

}  // namespace pp::arch
