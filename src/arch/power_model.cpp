#include "arch/power_model.h"

namespace pp::arch {

double config_static_power_w_per_cm2(const ConfigPowerParams& p) {
  return p.rtd_standby_a * p.v_cfg * p.cells_per_cm2;
}

double dynamic_energy_j(std::uint64_t toggles, const DynamicPowerParams& p) {
  // Each toggle charges or discharges c_node: E = 1/2 C V² per transition.
  return 0.5 * p.c_node_f * p.vdd * p.vdd * static_cast<double>(toggles);
}

double clock_tree_power_w(double freq_hz, int flip_flops, double c_per_ff_f,
                          double vdd) {
  return freq_hz * c_per_ff_f * flip_flops * vdd * vdd;
}

}  // namespace pp::arch
