#include "arch/area_model.h"

namespace pp::arch {

namespace {
// Leaf cells per block: 36 crosspoint pairs + 6 output drivers (each a
// reorganised 4-transistor cell, Fig. 5) + 2 lfb taps.
constexpr int kLeafCellsPerBlock = 36 + 6 + 2;
}  // namespace

double block_area_lambda2(const PolyAreaParams& p) {
  return kLeafCellsPerBlock * p.lambda2_per_leaf_cell +
         p.lambda2_block_overhead;
}

double pair_area_lambda2(const PolyAreaParams& p) {
  // The paper's "pair of LUT cells" counts the cells a 6-input LUT pair
  // actually instantiates (two blocks' rows and drivers configured, not
  // every crosspoint): 2 x (6 rows + 6 drivers) leaf cells.  With
  // vertical-stack hiding this lands under 400 λ².
  return 2 * (6 + 6) * p.lambda2_per_leaf_cell + 2 * p.lambda2_block_overhead;
}

double block_area_cm2(const PolyAreaParams& p) {
  const double lam_cm = p.lambda_nm() * 1e-7;
  return block_area_lambda2(p) * lam_cm * lam_cm;
}

double cell_density_per_cm2(const PolyAreaParams& p) {
  const double lam_cm = p.lambda_nm() * 1e-7;
  const double cell_cm2 = p.lambda2_per_leaf_cell * lam_cm * lam_cm;
  return 1.0 / cell_cm2;
}

double design_area_lambda2(const core::Fabric& fabric,
                           const PolyAreaParams& p, bool count_idle_tiles) {
  if (count_idle_tiles) {
    return static_cast<double>(fabric.rows()) * fabric.cols() *
           block_area_lambda2(p);
  }
  return static_cast<double>(fabric.used_blocks()) * block_area_lambda2(p);
}

}  // namespace pp::arch
