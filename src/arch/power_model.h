// Static configuration power (§3) and activity-based dynamic power proxies
// (§4.1).
//
// Reproduced claims:
//   * RTDs at the 2012 roadmap point: ~50 nm, peak currents 10-50 pA; at
//     >1e9 cells/cm² the configuration plane still draws <100 mW/cm²;
//   * removing the global clock saves the clock-tree dynamic power, the
//     dominant term in high-performance synchronous parts [43].
#pragma once

#include <cstdint>

namespace pp::arch {

struct ConfigPowerParams {
  double rtd_standby_a = 25e-12;  ///< per-RAM-cell standby current (10-50 pA)
  double v_cfg = 1.3;             ///< configuration supply (V)
  double cells_per_cm2 = 1.0e9;   ///< configuration RAM cells per cm²
};

/// Static configuration power density (W/cm²).
[[nodiscard]] double config_static_power_w_per_cm2(
    const ConfigPowerParams& p = {});

struct DynamicPowerParams {
  double c_node_f = 0.05e-15;  ///< switched capacitance per toggle (F)
  double vdd = 1.0;            ///< logic supply (V)
};

/// Dynamic energy (J) for a given toggle count (activity from pp::sim).
[[nodiscard]] double dynamic_energy_j(std::uint64_t toggles,
                                      const DynamicPowerParams& p = {});

/// Clock-tree power (W) of a synchronous island: f * C_tree * V², with the
/// tree capacitance proportional to the flip-flop count.
[[nodiscard]] double clock_tree_power_w(double freq_hz, int flip_flops,
                                        double c_per_ff_f = 5e-15,
                                        double vdd = 1.0);

}  // namespace pp::arch
