// Event-driven 4-value logic simulator with inertial delays.
//
// Design notes:
//  * Every gate output is a *driver slot* on its net; nets resolve all slots
//    plus an optional external (primary-input) slot with IEEE-1164 rules, so
//    the 3-state abutment scheme of Fig. 8 simulates faithfully, including
//    contention (X) when a bitstream mis-configures two facing drivers.
//  * Gate delays are >= 1 ps, so combinational feedback loops (the paper's
//    "asynchronous state machine" flip-flops, Fig. 9) iterate through time
//    instead of recursing; oscillation shows up as an exhausted event budget
//    rather than a hang.
//  * Inertial delay is the default (a gate swallows pulses shorter than its
//    window); the kDelay gate is transport-delay, as required for the
//    bundled-data matching delays of the micropipeline (Fig. 11).
//  * Per-net toggle counters feed the activity-based power proxy in pp::arch
//    (the sync vs async comparison of §4.1).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "sim/circuit.h"
#include "util/status.h"

namespace pp::sim {

struct SimStats {
  std::uint64_t events_processed = 0;
  std::uint64_t net_toggles = 0;      ///< total resolved-value changes
  std::uint64_t glitch_pulses = 0;    ///< pulses narrower than glitch window
  std::uint64_t max_queue = 0;
};

class Simulator {
 public:
  /// The circuit must pass validate(); throws std::invalid_argument else.
  /// Prefer `create` in new code.
  explicit Simulator(const Circuit& circuit);

  /// Status-returning factory: fails with kInvalidArgument (and the
  /// circuit's diagnostic) instead of throwing when the circuit is invalid.
  /// The circuit must outlive the simulator.
  [[nodiscard]] static Result<Simulator> create(const Circuit& circuit);

  /// Schedule a primary-input change at absolute time `t` (>= now).
  void set_input_at(NetId net, Logic v, SimTime t);
  /// Schedule a primary-input change `dt` after now.
  void set_input(NetId net, Logic v, SimTime dt = 0) {
    set_input_at(net, v, now_ + dt);
  }

  /// Process events up to and including time `t_end`.  Returns false if the
  /// event budget was exhausted first (oscillation guard).
  bool run_until(SimTime t_end, std::uint64_t max_events = 50'000'000);

  /// Run until the queue drains (quiescent) or the budget is exhausted.
  /// Returns true when quiescent.
  bool settle(std::uint64_t max_events = 50'000'000);

  [[nodiscard]] Logic value(NetId net) const { return net_value_.at(net); }
  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] const SimStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint64_t toggles(NetId net) const {
    return net_toggle_count_.at(net);
  }
  /// Time of the most recent resolved-value change on a net.
  [[nodiscard]] SimTime last_change(NetId net) const {
    return net_last_change_.at(net);
  }

  /// Pulses narrower than this window count as glitches (0 disables).
  void set_glitch_window(SimTime w) noexcept { glitch_window_ = w; }

  /// Observer invoked after each resolved net change: (time, net, value).
  void set_observer(std::function<void(SimTime, NetId, Logic)> cb) {
    observer_ = std::move(cb);
  }

 private:
  struct Event {
    SimTime t;
    std::uint64_t seq;     // FIFO tie-break
    std::uint32_t source;  // gate id, or kExternal | net id
    std::uint64_t epoch;   // inertial cancellation token
    Logic value;
    bool operator>(const Event& o) const noexcept {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };
  static constexpr std::uint32_t kExternalBit = 0x8000'0000u;

  void schedule_gate(GateId g, Logic v, SimTime t, bool transport);
  void apply_driver_change(std::uint32_t source, Logic v);
  void resolve_net(NetId n);
  void evaluate_gate(GateId g);
  [[nodiscard]] Logic compute_gate(GateId g);

  const Circuit& circuit_;
  std::vector<Logic> net_value_;
  std::vector<Logic> external_value_;       // per net; Z if not an input
  std::vector<Logic> driver_value_;         // per gate: currently driven value
  std::vector<std::vector<GateId>> fanout_; // net -> reading gates
  std::vector<std::vector<GateId>> net_drivers_;  // net -> driving gates

  // Behavioural gate internal state.
  std::vector<Logic> gate_state_;       // DFF Q / C-element keeper / latch
  std::vector<Logic> gate_prev_clk_;    // DFF edge detector

  std::vector<Event> heap_;
  std::vector<std::uint64_t> gate_epoch_;       // current inertial epoch
  std::vector<SimTime> gate_pending_time_;      // pending event time (or 0)
  std::vector<Logic> gate_pending_value_;

  std::vector<std::uint64_t> net_toggle_count_;
  std::vector<SimTime> net_last_change_;

  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
  SimTime glitch_window_ = 0;
  SimStats stats_;
  std::function<void(SimTime, NetId, Logic)> observer_;
};

/// Convenience: drive `inputs[i]` onto the i-th input net, settle, and read
/// the settled value of every net in `out_nets` into `outputs`.  Fails with
/// kInvalidArgument on a size mismatch / non-input net / invalid circuit and
/// kResourceExhausted when the circuit never settles (oscillation).
[[nodiscard]] Status evaluate_combinational(const Circuit& c,
                                            const std::vector<NetId>& in_nets,
                                            const std::vector<Logic>& inputs,
                                            const std::vector<NetId>& out_nets,
                                            std::vector<Logic>& outputs,
                                            std::uint64_t max_events = 50'000'000);

}  // namespace pp::sim
