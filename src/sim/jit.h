// JIT-compiled evaluation kernels: emit the levelized CompiledEval program
// as a self-contained C translation unit, compile it out-of-process with
// the host C compiler, dlopen the shared object, and serve it behind the
// same sim::Evaluator interface as the interpreter.
//
// Why this exists: the interpreter (sim/evaluator.cpp) already runs SoA
// plane words through per-opcode loops, but every instruction still pays a
// dispatch (switch on Op, operand-table indirection, runtime stride).  The
// generated kernel eliminates all of it — one straight-line function per
// program, every slot offset a compile-time constant, the W-word inner
// loops fully visible to the host compiler's vectorizer.  This is the
// Verilator move: the fabric's levelized netlist *is* the program, so
// compile it like one.
//
// Trust model.  A generated kernel is never trusted by construction:
//  * every freshly built or cache-loaded kernel is differentially gated
//    bit-for-bit (value and unknown planes, partial-tail lanes) against a
//    private interpreter over the same Program before `build` returns it;
//  * cache entries carry the program digest, the .so byte CRC and size in
//    a sidecar; a truncated, bit-flipped, or hash-colliding stale entry
//    fails closed — the entry is evicted and rebuilt from source;
//  * a missing host compiler degrades cleanly: `build` returns a Status
//    (kUnavailable) and callers keep serving on the interpreter.
//
// The cache directory is shared: entries are written to a temp name and
// atomically renamed into place (the .meta sidecar last, as the commit
// marker), so concurrent devices — or concurrent processes — race
// benignly toward one shared kernel per program.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sim/evaluator.h"
#include "util/status.h"

namespace pp::sim {

/// Build-time knobs for JitEval::build.  The defaults are the production
/// configuration: host `cc`, a shared per-user cache directory, and the
/// differential verification gate on.
struct JitOptions {
  /// Compiler command (split on whitespace; `{"cc"}` semantics).  Empty
  /// selects $PP_JIT_CC when set, else "cc".  The identity reported by
  /// `<cc> --version` participates in the cache key, so switching
  /// compilers never aliases cached kernels.
  std::string cc;
  /// Kernel cache directory.  Empty selects $PP_JIT_CACHE when set, else
  /// `$TMPDIR/pp-jit-cache` (or /tmp).  Created on demand.
  std::string cache_dir;
  /// Extra flags appended after the fixed `-O2 -shared -fPIC` set (also
  /// part of the cache key).
  std::string extra_cflags;
  /// Differentially gate the kernel against a private interpreter before
  /// trusting it (combinational, sequential, and modal stimulus incl.
  /// X/Z and partial-tail lanes).  Leave on outside of benchmarks.
  bool verify = true;
  /// Keep the generated .c beside the cached .so for debugging.
  bool keep_source = false;
  /// Refuse programs above this instruction count (per mode image): the
  /// generated TU grows linearly and host-compiler time super-linearly,
  /// and past this size the interpreter is the better engine anyway.
  std::size_t max_instructions = 65536;
};

/// How a JitEval acquired its kernel — surfaced for stats threading
/// (ExecutorStats::jit_compiles / jit_cache_hits) and cache tests.
struct JitBuildInfo {
  bool cache_hit = false;  ///< every mode image came from the disk cache
  bool compiled = false;   ///< at least one mode image invoked the compiler
  bool evicted = false;    ///< a corrupt/stale cache entry was evicted
  std::string key;         ///< cache key of the mode-0 image
  std::string so_path;     ///< cached .so of the mode-0 image
  std::string compiler;    ///< resolved compiler identity line
};

struct JitKernel;       // one dlopened mode image (shared across clones)
struct JitSharedStats;  // pass counters (shared across clones)

/// The generated-code backend.  One JitEval wraps one CompiledEval
/// program set (mode 0 plus modal images), each served by a dlopened
/// kernel at the program's fixed scratch width W.  Instances are
/// single-threaded like every Evaluator; clones share the immutable
/// kernel modules (and pass counters) and carry only their own scratch,
/// so per-thread sharding stays cheap.  The dlopened module is reference
/// counted across clones and closed exactly once.
class JitEval final : public Evaluator {
 public:
  /// Generate, compile (or cache-load), dlopen, validate, and
  /// differentially gate a kernel set for `base`'s program.  `base` is
  /// only read — it keeps serving traffic while this runs (typically on a
  /// warm-up thread).
  ///
  /// Failure modes:
  ///  * kUnavailable        — no working host compiler, or the program is
  ///                          too large for JIT (see JitOptions);
  ///  * kInternal           — the toolchain produced a kernel that failed
  ///                          validation or the differential gate (the
  ///                          cache entry is evicted, never served);
  ///  * filesystem Statuses — cache directory not creatable/writable.
  [[nodiscard]] static Result<JitEval> build(const CompiledEval& base,
                                             const JitOptions& options = {});

  [[nodiscard]] const char* name() const noexcept override {
    return "jit-native";
  }
  [[nodiscard]] std::size_t input_count() const noexcept override;
  [[nodiscard]] std::size_t output_count() const noexcept override;
  [[nodiscard]] Status eval_packed(std::span<const PackedBits> inputs,
                                   std::span<PackedBits> outputs,
                                   int lanes = kBatchLanes) override;
  [[nodiscard]] Status eval_wide(std::span<const std::uint64_t> in_value,
                                 std::span<const std::uint64_t> in_unknown,
                                 std::span<std::uint64_t> out_value,
                                 std::span<std::uint64_t> out_unknown,
                                 std::size_t lanes) override;
  /// Multi-cycle batch entry point, same contract as
  /// CompiledEval::run_cycles: the settle/commit control flow runs here in
  /// C++ (bit-identical to the interpreter's), only the combinational
  /// kernel passes are generated code.
  [[nodiscard]] Status run_cycles(std::span<const std::uint64_t> in_value,
                                  std::span<const std::uint64_t> in_unknown,
                                  std::span<std::uint64_t> out_value,
                                  std::span<std::uint64_t> out_unknown,
                                  std::size_t cycles, std::size_t lanes,
                                  bool reset = true) override;
  [[nodiscard]] std::size_t preferred_words() const noexcept override;
  [[nodiscard]] std::unique_ptr<Evaluator> clone() const override;

  /// Mode sweep over the generated images, same contract as
  /// CompiledEval::eval_modes (mode-major lane groups).
  [[nodiscard]] Status eval_modes(std::span<const std::uint64_t> in_value,
                                  std::span<const std::uint64_t> in_unknown,
                                  std::span<std::uint64_t> out_value,
                                  std::span<std::uint64_t> out_unknown,
                                  std::size_t lanes_per_mode);

  /// Environment modes served (1 unless built from a modal engine).
  [[nodiscard]] std::size_t mode_count() const noexcept;
  /// True when built from a compile_sequential program (run_cycles is the
  /// entry point).
  [[nodiscard]] bool sequential() const noexcept;
  /// Restore every register to its reset image (run_cycles with
  /// reset=true does this implicitly).
  void reset_state();

  /// Kernel pass accounting, shared by every clone of one build — the
  /// same shape as CompiledEval::KernelStats so executor rollups treat
  /// the two engines uniformly.
  [[nodiscard]] CompiledEval::KernelStats kernel_stats() const noexcept;

  /// How this kernel set was acquired (cache hit vs fresh compile).
  [[nodiscard]] const JitBuildInfo& build_info() const noexcept {
    return *info_;
  }

 private:
  JitEval(std::vector<std::shared_ptr<const JitKernel>> kernels,
          std::shared_ptr<const JitBuildInfo> info,
          std::shared_ptr<JitSharedStats> stats);

  [[nodiscard]] Status eval_wide_mode(std::size_t mode,
                                      std::span<const std::uint64_t> in_value,
                                      std::span<const std::uint64_t> in_unknown,
                                      std::span<std::uint64_t> out_value,
                                      std::span<std::uint64_t> out_unknown,
                                      std::size_t lanes);
  [[nodiscard]] bool settle_fixpoint(std::size_t nw, bool fast,
                                     std::size_t max_iters);

  std::vector<std::shared_ptr<const JitKernel>> kernels_;  ///< [0] = mode 0
  std::shared_ptr<const JitBuildInfo> info_;
  std::shared_ptr<JitSharedStats> stats_;
  /// Per-mode SoA scratch at fixed stride W (constants pre-broadcast).
  std::vector<std::vector<std::uint64_t>> value_, unknown_;
  std::vector<std::uint64_t> shim_;     ///< eval_packed AoS<->SoA staging
  std::vector<std::uint64_t> seq_tmp_;  ///< simultaneous-commit staging
  std::vector<std::uint64_t> mode_buf_; ///< eval_modes subplane staging
  /// Live stride of the last run_cycles pass group — the reset=false
  /// carried-state width check, mirroring the interpreter's
  /// scratch_words_.
  std::size_t seq_words_ = 0;
};

}  // namespace pp::sim
