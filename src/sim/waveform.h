// Waveform capture for the event simulator: change records per net, pulse
// statistics, and a VCD dump so traces can be inspected in standard viewers.
#pragma once

#include <string>
#include <vector>

#include "sim/circuit.h"
#include "sim/simulator.h"

namespace pp::sim {

struct Change {
  SimTime t;
  NetId net;
  Logic value;
};

class Waveform {
 public:
  /// Attach to a simulator; records every resolved net change from now on.
  /// Only the nets in `watch` are recorded (empty = all nets).
  Waveform(Simulator& sim, const Circuit& circuit,
           std::vector<NetId> watch = {});

  [[nodiscard]] const std::vector<Change>& changes() const noexcept {
    return changes_;
  }

  /// Changes of one net, in time order.
  [[nodiscard]] std::vector<Change> history(NetId net) const;

  /// Count rising edges (0 -> 1 transitions) seen on a net.
  [[nodiscard]] std::size_t rising_edges(NetId net) const;

  /// Minimum spacing between consecutive changes on a net (pulse width
  /// proxy); returns 0 when fewer than two changes were seen.
  [[nodiscard]] SimTime min_pulse(NetId net) const;

  /// Render a Value Change Dump (VCD) of the watched nets.
  [[nodiscard]] std::string to_vcd(const std::string& top = "polyhw") const;

 private:
  const Circuit& circuit_;
  std::vector<bool> watched_;
  std::vector<Change> changes_;
};

}  // namespace pp::sim
