#include "sim/waveform.h"

#include <algorithm>
#include <sstream>

namespace pp::sim {

Waveform::Waveform(Simulator& sim, const Circuit& circuit,
                   std::vector<NetId> watch)
    : circuit_(circuit) {
  watched_.assign(circuit.net_count(), watch.empty());
  for (NetId n : watch) watched_.at(n) = true;
  sim.set_observer([this](SimTime t, NetId n, Logic v) {
    if (watched_[n]) changes_.push_back({t, n, v});
  });
}

std::vector<Change> Waveform::history(NetId net) const {
  std::vector<Change> h;
  for (const auto& c : changes_)
    if (c.net == net) h.push_back(c);
  return h;
}

std::size_t Waveform::rising_edges(NetId net) const {
  std::size_t count = 0;
  Logic prev = Logic::kX;
  for (const auto& c : changes_) {
    if (c.net != net) continue;
    if (prev == Logic::k0 && c.value == Logic::k1) ++count;
    prev = c.value;
  }
  return count;
}

SimTime Waveform::min_pulse(NetId net) const {
  SimTime best = 0;
  bool have_prev = false;
  SimTime prev_t = 0;
  for (const auto& c : changes_) {
    if (c.net != net) continue;
    if (have_prev) {
      const SimTime w = c.t - prev_t;
      if (best == 0 || w < best) best = w;
    }
    prev_t = c.t;
    have_prev = true;
  }
  return best;
}

std::string Waveform::to_vcd(const std::string& top) const {
  std::ostringstream os;
  os << "$timescale 1ps $end\n$scope module " << top << " $end\n";
  // VCD identifier codes: printable ASCII starting at '!'.
  auto code = [](NetId n) {
    std::string s;
    NetId x = n;
    do {
      s.push_back(static_cast<char>('!' + x % 94));
      x /= 94;
    } while (x != 0);
    return s;
  };
  for (NetId n = 0; n < circuit_.net_count(); ++n) {
    if (!watched_[n]) continue;
    os << "$var wire 1 " << code(n) << " " << circuit_.net_name(n)
       << " $end\n";
  }
  os << "$upscope $end\n$enddefinitions $end\n";
  SimTime cur = static_cast<SimTime>(-1);
  for (const auto& c : changes_) {
    if (c.t != cur) {
      os << "#" << c.t << "\n";
      cur = c.t;
    }
    char v = to_char(c.value);
    if (v == 'Z') v = 'z';
    if (v == 'X') v = 'x';
    os << v << code(c.net) << "\n";
  }
  return os.str();
}

}  // namespace pp::sim
