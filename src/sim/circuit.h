// Gate-level circuit graph consumed by the event-driven simulator.
//
// Two layers of primitives coexist deliberately:
//  * *structural* gates (NAND + 3-state drivers + constants) — everything a
//    configured polymorphic fabric elaborates to (Figs. 7-10, 12), so that
//    simulated behaviour follows from exactly the structures the paper draws;
//  * *behavioural* gates (DFF, C-element, programmable delay line) — reference
//    models used to cross-check the structural implementations and to build
//    the Sutherland micropipeline test harnesses (Fig. 11).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/logic.h"

namespace pp::sim {

using NetId = std::uint32_t;
using GateId = std::uint32_t;
/// Simulation time in picoseconds.
using SimTime = std::uint64_t;

inline constexpr NetId kNoNet = std::numeric_limits<NetId>::max();

enum class GateKind : std::uint8_t {
  kNand,      ///< n-input NAND (the fabric's product-term line)
  kAnd,
  kOr,
  kNor,
  kNot,
  kBuf,
  kXor,
  kXnor,
  kTriBuf,    ///< inputs: {data, enable}; enable=1 drives data, else Z
  kTriInv,    ///< inputs: {data, enable}; enable=1 drives /data, else Z
  kConst0,
  kConst1,
  kDff,       ///< behavioural: {D, CLK [, RSTn]} rising-edge flip-flop
  kLatch,     ///< behavioural: {D, EN}: transparent while EN=1
  kCElement,  ///< behavioural Muller C-element: {A, B} (state-holding)
  kDelay,     ///< 1-input transport-delay line (bundled-data matching delay)
};

struct Gate {
  GateKind kind;
  std::vector<NetId> inputs;
  NetId output = kNoNet;
  SimTime delay_ps = 1;
  /// Inertial rejection window; pulses shorter than this are swallowed.
  /// Defaults to the propagation delay (classic inertial model).
  SimTime inertial_ps = 0;
};

/// A circuit under construction.  Nets are created first, then gates that
/// read/drive them.  Multiple gates may drive one net only if all drivers are
/// 3-state (checked by `validate`).
class Circuit {
 public:
  /// Create a net; name is optional and used for waveforms/diagnostics.
  NetId add_net(std::string name = {});

  /// Declare a net as a primary input (gives it an external driver slot).
  void mark_input(NetId net);

  /// Add a gate.  `delay_ps` must be >= 1 for state-affecting kinds so that
  /// feedback loops (flip-flops built from NANDs) iterate in time rather
  /// than recursing instantaneously.
  GateId add_gate(GateKind kind, std::vector<NetId> inputs, NetId output,
                  SimTime delay_ps = 1);

  /// Set the inertial window of a gate (0 = pure transport delay).
  void set_inertial(GateId gate, SimTime window_ps);

  /// Rewrite a gate's logic kind in place — how a polymorphic
  /// configuration view re-personalizes a shared structure (pp::poly).
  /// The new kind must keep the pin shape: a fixed-arity kind must match
  /// the gate's input count, and 3-state or behavioural (state-holding)
  /// kinds are rejected in either direction, since those change driver or
  /// state semantics rather than just the logic function.
  [[nodiscard]] bool set_gate_kind(GateId gate, GateKind kind);

  [[nodiscard]] std::size_t net_count() const noexcept { return net_names_.size(); }
  [[nodiscard]] std::size_t gate_count() const noexcept { return gates_.size(); }
  [[nodiscard]] const Gate& gate(GateId g) const { return gates_.at(g); }
  [[nodiscard]] const std::string& net_name(NetId n) const { return net_names_.at(n); }
  [[nodiscard]] const std::vector<Gate>& gates() const noexcept { return gates_; }
  [[nodiscard]] bool is_input(NetId n) const;

  /// Structural checks: every net driven by at most one non-3-state gate,
  /// no dangling gate pins, behavioural gates with correct pin counts.
  /// Returns an empty string when valid, else a diagnostic.
  [[nodiscard]] std::string validate() const;

  /// Total number of driver slots on a net (external + gate outputs).
  [[nodiscard]] std::size_t driver_count(NetId n) const;

 private:
  std::vector<std::string> net_names_;
  std::vector<bool> input_flag_;
  std::vector<Gate> gates_;
};

/// Expected input pin count for fixed-arity kinds; 0 means variadic (>=1).
[[nodiscard]] int gate_arity(GateKind kind) noexcept;
[[nodiscard]] const char* gate_kind_name(GateKind kind) noexcept;
/// True for kinds whose output may legally share a net with other drivers.
[[nodiscard]] bool is_tristate(GateKind kind) noexcept;

}  // namespace pp::sim
