#include "sim/logic.h"

namespace pp::sim {

Logic nand_of(std::span<const Logic> ins) noexcept {
  bool unknown = false;
  for (Logic v : ins) {
    if (v == Logic::k0) return Logic::k1;  // dominant 0
    if (!is_binary(v)) unknown = true;
  }
  return unknown ? Logic::kX : Logic::k0;
}

Logic and_of(std::span<const Logic> ins) noexcept {
  return not_of(nand_of(ins));
}

Logic or_of(std::span<const Logic> ins) noexcept {
  bool unknown = false;
  for (Logic v : ins) {
    if (v == Logic::k1) return Logic::k1;  // dominant 1
    if (!is_binary(v)) unknown = true;
  }
  return unknown ? Logic::kX : Logic::k0;
}

Logic xor_of(std::span<const Logic> ins) noexcept {
  bool acc = false;
  for (Logic v : ins) {
    if (!is_binary(v)) return Logic::kX;
    acc ^= to_bool(v);
  }
  return from_bool(acc);
}

Logic not_of(Logic v) noexcept {
  if (!is_binary(v)) return Logic::kX;
  return from_bool(!to_bool(v));
}

}  // namespace pp::sim
