#include "sim/circuit.h"

#include <sstream>

namespace pp::sim {

NetId Circuit::add_net(std::string name) {
  const auto id = static_cast<NetId>(net_names_.size());
  if (name.empty()) name = "n" + std::to_string(id);
  net_names_.push_back(std::move(name));
  input_flag_.push_back(false);
  return id;
}

void Circuit::mark_input(NetId net) { input_flag_.at(net) = true; }

bool Circuit::is_input(NetId n) const { return input_flag_.at(n); }

GateId Circuit::add_gate(GateKind kind, std::vector<NetId> inputs,
                         NetId output, SimTime delay_ps) {
  Gate g;
  g.kind = kind;
  g.inputs = std::move(inputs);
  g.output = output;
  g.delay_ps = delay_ps == 0 ? 1 : delay_ps;
  g.inertial_ps = g.delay_ps;  // classic inertial default
  if (kind == GateKind::kDelay) g.inertial_ps = 0;  // transport semantics
  gates_.push_back(std::move(g));
  return static_cast<GateId>(gates_.size() - 1);
}

void Circuit::set_inertial(GateId gate, SimTime window_ps) {
  gates_.at(gate).inertial_ps = window_ps;
}

bool Circuit::set_gate_kind(GateId gate, GateKind kind) {
  if (gate >= gates_.size()) return false;
  Gate& g = gates_[gate];
  const auto pure_logic = [](GateKind k) {
    switch (k) {
      case GateKind::kNand:
      case GateKind::kAnd:
      case GateKind::kOr:
      case GateKind::kNor:
      case GateKind::kNot:
      case GateKind::kBuf:
      case GateKind::kXor:
      case GateKind::kXnor:
      case GateKind::kConst0:
      case GateKind::kConst1:
        return true;
      default:
        return false;
    }
  };
  if (!pure_logic(g.kind) || !pure_logic(kind)) return false;
  const int arity = gate_arity(kind);
  if (arity == -1) {
    if (!g.inputs.empty()) return false;
  } else if (arity == 1) {
    if (g.inputs.size() != 1) return false;
  } else {
    // Variadic kinds accept any non-zero pin count.
    if (g.inputs.empty()) return false;
  }
  g.kind = kind;
  return true;
}

std::size_t Circuit::driver_count(NetId n) const {
  std::size_t count = input_flag_.at(n) ? 1u : 0u;
  for (const auto& g : gates_)
    if (g.output == n) ++count;
  return count;
}

int gate_arity(GateKind kind) noexcept {
  switch (kind) {
    case GateKind::kNand:
    case GateKind::kAnd:
    case GateKind::kOr:
    case GateKind::kNor:
    case GateKind::kXor:
    case GateKind::kXnor:
      return 0;  // variadic
    case GateKind::kNot:
    case GateKind::kBuf:
    case GateKind::kDelay:
      return 1;
    case GateKind::kTriBuf:
    case GateKind::kTriInv:
    case GateKind::kLatch:
      return 2;
    case GateKind::kDff:
    case GateKind::kCElement:
      return -2;  // 2 or 3 (optional active-low async reset on pin 2)
    case GateKind::kConst0:
    case GateKind::kConst1:
      return -1;  // zero inputs
  }
  return 0;
}

const char* gate_kind_name(GateKind kind) noexcept {
  switch (kind) {
    case GateKind::kNand: return "NAND";
    case GateKind::kAnd: return "AND";
    case GateKind::kOr: return "OR";
    case GateKind::kNor: return "NOR";
    case GateKind::kNot: return "NOT";
    case GateKind::kBuf: return "BUF";
    case GateKind::kXor: return "XOR";
    case GateKind::kXnor: return "XNOR";
    case GateKind::kTriBuf: return "TRIBUF";
    case GateKind::kTriInv: return "TRIINV";
    case GateKind::kConst0: return "CONST0";
    case GateKind::kConst1: return "CONST1";
    case GateKind::kDff: return "DFF";
    case GateKind::kLatch: return "LATCH";
    case GateKind::kCElement: return "CELEM";
    case GateKind::kDelay: return "DELAY";
  }
  return "?";
}

bool is_tristate(GateKind kind) noexcept {
  return kind == GateKind::kTriBuf || kind == GateKind::kTriInv;
}

std::string Circuit::validate() const {
  std::ostringstream err;
  std::vector<int> strong_drivers(net_names_.size(), 0);
  std::vector<int> tri_drivers(net_names_.size(), 0);
  for (std::size_t gi = 0; gi < gates_.size(); ++gi) {
    const Gate& g = gates_[gi];
    if (g.output == kNoNet || g.output >= net_names_.size()) {
      err << "gate " << gi << " (" << gate_kind_name(g.kind)
          << "): bad output net\n";
      continue;
    }
    for (NetId in : g.inputs) {
      if (in == kNoNet || in >= net_names_.size())
        err << "gate " << gi << ": bad input net\n";
    }
    const int arity = gate_arity(g.kind);
    const auto nin = static_cast<int>(g.inputs.size());
    if (arity == 0 && nin < 1)
      err << "gate " << gi << " (" << gate_kind_name(g.kind)
          << "): needs >= 1 input\n";
    if (arity > 0 && nin != arity)
      err << "gate " << gi << " (" << gate_kind_name(g.kind) << "): needs "
          << arity << " inputs, has " << nin << "\n";
    if (arity == -1 && nin != 0)
      err << "gate " << gi << ": constant takes no inputs\n";
    if (arity == -2 && (nin < 2 || nin > 3))
      err << "gate " << gi << " (" << gate_kind_name(g.kind)
          << "): takes 2 or 3 inputs\n";
    if (is_tristate(g.kind))
      ++tri_drivers[g.output];
    else
      ++strong_drivers[g.output];
  }
  for (std::size_t n = 0; n < net_names_.size(); ++n) {
    // External input pads behave as 3-state drivers (default released), so
    // an input net may legally also have 3-state gate drivers — that is how
    // the fabric's boundary lines work.  Strong (always-driving) gates must
    // be a net's sole driver.
    const int strong = strong_drivers[n];
    if (strong > 1)
      err << "net " << net_names_[n] << ": " << strong
          << " strong drivers (max 1)\n";
    if (strong >= 1 && (tri_drivers[n] > 0 || input_flag_[n]))
      err << "net " << net_names_[n]
          << ": mixes a strong driver with 3-state/input drivers\n";
  }
  return err.str();
}

}  // namespace pp::sim
