// Internal representation of a CompiledEval program, shared between the
// interpreter (sim/evaluator.cpp) and the JIT backend (sim/jit.cpp).  The
// JIT walks the exact instruction stream the interpreter executes —
// including the slot layout, constant image, and register wiring — so the
// two backends can be differentially gated bit-for-bit against each other.
//
// This header is implementation detail: it is included only from sim/*.cpp
// translation units (the public surface stays sim/evaluator.h and
// sim/jit.h), and nothing here is ABI for generated kernels — the emitted
// C re-states the semantics in source form.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "sim/evaluator.h"
#include "sim/logic.h"

namespace pp::sim {

/// Meaningful lanes of plane word `word` when `lanes` lanes are live in
/// total (always full except possibly the final word).
[[nodiscard]] constexpr std::size_t lanes_in_word(std::size_t lanes,
                                                  std::size_t word) noexcept {
  const std::size_t lane0 = word * Evaluator::kBatchLanes;
  return std::min<std::size_t>(Evaluator::kBatchLanes, lanes - lane0);
}

/// Bit mask selecting the meaningful lanes of plane word `word`.
[[nodiscard]] constexpr std::uint64_t word_mask(std::size_t lanes,
                                                std::size_t word) noexcept {
  const std::size_t n = lanes_in_word(lanes, word);
  return n >= static_cast<std::size_t>(Evaluator::kBatchLanes)
             ? ~std::uint64_t{0}
             : (std::uint64_t{1} << n) - 1;
}

enum class Op : std::uint8_t {
  kBuf,
  kNot,
  // Variadic forms (nin operands via the operand table).
  kAnd,
  kNand,
  kOr,
  kNor,
  kXor,
  kXnor,
  // Fixed-arity specializations: the platform compiler decomposes to <= 3
  // inputs, so nearly every emitted gate lands on one of these.  The
  // kernels unroll them without the variadic operand loop.
  kAnd2,
  kNand2,
  kOr2,
  kNor2,
  kXor2,
  kXnor2,
  kAnd3,
  kNand3,
  kOr3,
  kNor3,
  kXor3,
  kXnor3,
  kResolve,  ///< wired-and over always-driving sources: agree or X
};

/// Fixed-arity variant of a variadic op, when one exists for this arity.
[[nodiscard]] inline Op specialize_arity(Op op, std::size_t nin) noexcept {
  if (nin == 2) {
    switch (op) {
      case Op::kAnd: return Op::kAnd2;
      case Op::kNand: return Op::kNand2;
      case Op::kOr: return Op::kOr2;
      case Op::kNor: return Op::kNor2;
      case Op::kXor: return Op::kXor2;
      case Op::kXnor: return Op::kXnor2;
      default: return op;
    }
  }
  if (nin == 3) {
    switch (op) {
      case Op::kAnd: return Op::kAnd3;
      case Op::kNand: return Op::kNand3;
      case Op::kOr: return Op::kOr3;
      case Op::kNor: return Op::kNor3;
      case Op::kXor: return Op::kXor3;
      case Op::kXnor: return Op::kXnor3;
      default: return op;
    }
  }
  return op;
}

struct Instr {
  Op op;
  std::uint32_t nin;
  std::uint32_t in_ofs;  ///< first operand index in Program::operands
  std::uint32_t out;     ///< destination slot
};

constexpr std::uint32_t kNoSlot = 0xffff'ffffu;

[[nodiscard]] inline PackedBits broadcast(Logic v) noexcept {
  switch (v) {
    case Logic::k0: return {0, 0};
    case Logic::k1: return {~std::uint64_t{0}, 0};
    case Logic::kZ:
    case Logic::kX: break;
  }
  return {0, ~std::uint64_t{0}};
}

/// One register slot of a sequential program.  `q_slot` is an input-class
/// scratch slot that no instruction writes — the per-lane state plane; the
/// `d_slot` / `ctl_slot` taps are bound as (internal) program outputs so
/// DCE keeps their cones and every optimization pass applies unchanged.
struct SeqReg {
  enum class Kind : std::uint8_t {
    kDff,       ///< behavioural DFF, no reset pin
    kDffRst,    ///< behavioural DFF with active-low async reset (ctl)
    kLatch,     ///< behavioural transparent-high latch (ctl = enable)
    kExternal,  ///< externally closed loop (ExternalReg; edge-committed)
  };
  std::uint32_t q_slot = 0;
  std::uint32_t d_slot = 0;
  std::uint32_t ctl_slot = kNoSlot;  ///< RSTn / EN tap, kNoSlot when absent
  Kind kind = Kind::kDff;
  PackedBits reset;  ///< broadcast state image at reset (behavioural: X)
};

struct CompiledEval::Program {
  std::vector<Instr> instrs;
  std::vector<std::uint32_t> operands;
  std::vector<PackedBits> init;          ///< initial slot image (constants)
  std::vector<std::uint32_t> in_slots;   ///< per bound input net
  std::vector<std::uint32_t> out_slots;  ///< per bound output net
  /// Slots no instruction or input load ever writes — the constants whose
  /// init image must be re-broadcast when the scratch stride changes.
  std::vector<std::uint32_t> const_slots;
  std::uint32_t levels = 0;
  int wide_words = kDefaultWideWords;  ///< scratch width W (words per slot)
  bool fast_path_ok = false;  ///< single-plane kernel exact for known inputs
  // Sequential extension (compile_sequential).  in_slots/out_slots carry
  // the register state slots and D/EN/RSTn taps after the public bindings;
  // n_public_in/out are what input_count()/output_count() report.
  std::vector<SeqReg> regs;
  std::uint32_t n_public_in = 0;
  std::uint32_t n_public_out = 0;
  bool is_sequential = false;  ///< built by compile_sequential
  bool has_settle_regs = false;  ///< any latch / resettable DFF (fixpoint)
  std::uint32_t n_edge_regs = 0;  ///< registers committed at the clock edge
  // Pass accounting lives on the shared program so every clone of one
  // compilation aggregates into the same counters (relaxed: they are pure
  // statistics, one increment per >=64-lane pass).
  mutable std::atomic<std::uint64_t> fast_passes{0};
  mutable std::atomic<std::uint64_t> slow_passes{0};
  mutable std::atomic<std::uint64_t> cycles_run{0};
  mutable std::atomic<std::uint64_t> state_commits{0};
  mutable std::atomic<std::uint64_t> fast_cycle_passes{0};
};

}  // namespace pp::sim
