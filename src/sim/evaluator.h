// Pluggable evaluation engines for combinational batch workloads.
//
// The event-driven pp::sim::Simulator is the timing-accurate reference: it
// models inertial delays, glitches, and oscillation, and it is what every
// paper-facing figure drives.  But batch traffic ("evaluate these 10k
// stimulus vectors") does not need timing — it needs the *settled* values,
// as fast as the hardware allows.  This header separates the two concerns
// behind one interface (the classic functional-vs-timing split of
// reconfigurable-platform software stacks):
//
//  * `Evaluator` — the engine abstraction callers program against.  One
//    call evaluates a *batch* of up to 64 independent vectors, packed
//    bit-parallel in two planes per signal (see `PackedBits`).
//  * `CompiledEval` — topologically levelizes a validated combinational
//    circuit, constant-folds configuration structure (3-state drivers with
//    constant enables, the fabric's const-1 rows), dead-code-eliminates the
//    cone outside the observed outputs, and flattens what remains into a
//    contiguous instruction array evaluated 64 vectors at a time with
//    bitwise word ops.  Circuits it cannot model — combinational cycles,
//    3-state drivers whose enable is not a compile-time constant (dynamic
//    contention), behavioural async gates (DFF/latch/C-element) — are
//    rejected via Status so callers can fall back to the event engine.
//  * `EventEval` — the event-driven Simulator behind the same packed
//    interface: the always-correct fallback.
//
// Two-plane encoding: each signal carries a `value` word and an `unknown`
// word, bit i belonging to vector i of the batch.  unknown=1 means X (Z
// collapses into X at the packing boundary — at a gate input the simulator
// treats a floating line exactly like an unknown one, and after constant
// folding no CompiledEval driver can emit a *dynamic* Z, so the collapse is
// exact for every net the engine accepts).  The planes are kept canonical:
// value=0 wherever unknown=1, so plane-equality is value-equality.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "sim/circuit.h"
#include "sim/logic.h"
#include "sim/simulator.h"
#include "util/status.h"

namespace pp::sim {

/// One batch worth of a signal: bit i of each plane is vector i's value.
struct PackedBits {
  std::uint64_t value = 0;
  std::uint64_t unknown = 0;  ///< X/Z mask; canonical form has value&unknown==0

  bool operator==(const PackedBits&) const = default;
};

/// Write vector `lane`'s value into a packed signal (keeps canonical form).
constexpr void set_lane(PackedBits& p, int lane, Logic v) noexcept {
  const std::uint64_t bit = std::uint64_t{1} << lane;
  p.value &= ~bit;
  p.unknown &= ~bit;
  if (v == Logic::k1) p.value |= bit;
  else if (v != Logic::k0) p.unknown |= bit;
}

/// Read vector `lane`'s value out of a packed signal (X for unknown — the
/// packed encoding does not distinguish X from Z).
[[nodiscard]] constexpr Logic get_lane(const PackedBits& p, int lane) noexcept {
  const std::uint64_t bit = std::uint64_t{1} << lane;
  if (p.unknown & bit) return Logic::kX;
  return (p.value & bit) ? Logic::k1 : Logic::k0;
}

/// Topological levelization of a circuit's gate graph.  Level 0 gates read
/// only primary inputs, constants, or undriven nets; every other gate sits
/// one above its deepest driver.  `order` lists every gate in evaluation
/// order (drivers strictly before readers).
struct LevelMap {
  std::vector<std::uint32_t> gate_level;  ///< per GateId
  std::vector<GateId> order;              ///< all gates, topologically sorted
  std::uint32_t max_level = 0;

  [[nodiscard]] bool empty() const noexcept { return order.empty(); }
};

/// Levelize a circuit.  Fails with kFailedPrecondition when the gate graph
/// has a combinational cycle (naming a net on the cycle); behavioural
/// state-holding gates participate structurally, so circuits that close
/// feedback through them (micropipelines, in-fabric latches) also fail —
/// exactly the designs that need the event-driven engine.
[[nodiscard]] Result<LevelMap> levelize(const Circuit& circuit);

/// An evaluation engine over a fixed (circuit, input nets, output nets)
/// binding.  Engines evaluate batches of up to `kBatchLanes` independent
/// vectors; they are stateful only through scratch storage, so concurrent
/// use requires one `clone()` per thread.
class Evaluator {
 public:
  static constexpr int kBatchLanes = 64;

  virtual ~Evaluator() = default;

  [[nodiscard]] virtual const char* name() const noexcept = 0;
  [[nodiscard]] virtual std::size_t input_count() const noexcept = 0;
  [[nodiscard]] virtual std::size_t output_count() const noexcept = 0;

  /// Evaluate one batch.  `inputs[i]` packs the i-th bound input net across
  /// the batch, `outputs[k]` receives the k-th bound output net.  `lanes`
  /// bounds how many vectors of the batch are meaningful (1..kBatchLanes);
  /// engines may compute all 64 but must not fail on garbage in the unused
  /// lanes, and must leave them 0/0 in the outputs.
  [[nodiscard]] virtual Status eval_packed(std::span<const PackedBits> inputs,
                                           std::span<PackedBits> outputs,
                                           int lanes = kBatchLanes) = 0;

  /// Independent engine over the same binding, for per-thread sharding.
  [[nodiscard]] virtual std::unique_ptr<Evaluator> clone() const = 0;
};

/// The levelized bit-parallel backend.  Compilation is a one-time cost per
/// (circuit, binding); evaluation is a single pass over a flat instruction
/// array per 64-vector batch.  Clones share the immutable program and carry
/// only their own slot scratch, so cloning is cheap.
class CompiledEval final : public Evaluator {
 public:
  /// Compile a circuit.  `in_nets` must be primary inputs that no gate
  /// drives; every other primary input is treated as constantly undriven
  /// (Z -> unknown), matching a fresh event simulator.  Pass `levels` to
  /// reuse a previously computed levelization of the *same* circuit (e.g.
  /// recompiling a reconfigured fabric); it is verified to be a valid
  /// topological order of this circuit (O(pins)) and silently recomputed
  /// when it is not, so a stale map can never corrupt compilation.
  ///
  /// Failure modes (all leave the caller free to fall back):
  ///  * kInvalidArgument     — circuit fails validate(), or a bound net is
  ///                           out of range / not a primary input;
  ///  * kFailedPrecondition  — combinational cycle, behavioural async gate,
  ///                           3-state driver with a non-constant enable, or
  ///                           an externally driven net that gates also drive.
  [[nodiscard]] static Result<CompiledEval> compile(
      const Circuit& circuit, std::vector<NetId> in_nets,
      std::vector<NetId> out_nets, const LevelMap* levels = nullptr);

  [[nodiscard]] const char* name() const noexcept override {
    return "compiled-bitparallel";
  }
  [[nodiscard]] std::size_t input_count() const noexcept override;
  [[nodiscard]] std::size_t output_count() const noexcept override;
  [[nodiscard]] Status eval_packed(std::span<const PackedBits> inputs,
                                   std::span<PackedBits> outputs,
                                   int lanes = kBatchLanes) override;
  [[nodiscard]] std::unique_ptr<Evaluator> clone() const override;

  /// Introspection for tests/benches: live instructions after constant
  /// folding + dead-code elimination, and the levelized depth.
  [[nodiscard]] std::size_t instruction_count() const noexcept;
  [[nodiscard]] std::uint32_t level_count() const noexcept;

 private:
  struct Program;
  explicit CompiledEval(std::shared_ptr<const Program> program);
  std::shared_ptr<const Program> program_;
  std::vector<PackedBits> slots_;
};

/// The event-driven Simulator behind the Evaluator interface: lanes are
/// evaluated one at a time on a private simulator (cloned from the settled
/// base state, like Session::run_vectors' sharded path).  Always available
/// for any valid circuit; per-lane event budget guards oscillation.
class EventEval final : public Evaluator {
 public:
  [[nodiscard]] static Result<EventEval> create(
      const Circuit& circuit, std::vector<NetId> in_nets,
      std::vector<NetId> out_nets,
      std::uint64_t max_events_per_vector = 2'000'000);

  [[nodiscard]] const char* name() const noexcept override {
    return "event-driven";
  }
  [[nodiscard]] std::size_t input_count() const noexcept override {
    return in_nets_.size();
  }
  [[nodiscard]] std::size_t output_count() const noexcept override {
    return out_nets_.size();
  }
  [[nodiscard]] Status eval_packed(std::span<const PackedBits> inputs,
                                   std::span<PackedBits> outputs,
                                   int lanes = kBatchLanes) override;
  [[nodiscard]] std::unique_ptr<Evaluator> clone() const override;

  /// Adjust the per-lane event budget (inherited by future clones).
  void set_max_events(std::uint64_t budget) noexcept { budget_ = budget; }

 private:
  EventEval(std::vector<NetId> in_nets, std::vector<NetId> out_nets,
            std::uint64_t budget);
  std::vector<NetId> in_nets_;
  std::vector<NetId> out_nets_;
  std::uint64_t budget_;
  std::optional<Simulator> sim_;
};

}  // namespace pp::sim
