// Pluggable evaluation engines for combinational batch workloads.
//
// The event-driven pp::sim::Simulator is the timing-accurate reference: it
// models inertial delays, glitches, and oscillation, and it is what every
// paper-facing figure drives.  But batch traffic ("evaluate these 10k
// stimulus vectors") does not need timing — it needs the *settled* values,
// as fast as the hardware allows.  This header separates the two concerns
// behind one interface (the classic functional-vs-timing split of
// reconfigurable-platform software stacks):
//
//  * `Evaluator` — the engine abstraction callers program against.  The
//    throughput entry point is `eval_wide`: one call evaluates a *wide
//    batch* of many independent vectors, packed bit-parallel in
//    structure-of-arrays plane buffers (all of a signal's words
//    contiguous, value and unknown planes separate).  `eval_packed` is the
//    one-word (64-lane, AoS `PackedBits`) convenience over the same
//    kernel.
//  * `CompiledEval` — topologically levelizes a validated combinational
//    circuit, constant-folds configuration structure (3-state drivers with
//    constant enables, the fabric's const-1 rows), dead-code-eliminates the
//    cone outside the observed outputs, optimizes the remaining program
//    (buffer copy-propagation by slot aliasing, fixed-arity 2/3-input
//    opcode specialization, level-major slot renumbering), and flattens it
//    into a contiguous instruction array evaluated W words — W*64 vectors —
//    at a time with bitwise word ops.  Alongside the two-plane program it
//    derives a *two-valued* single-plane interpretation: when the program
//    has no wired-resolution and no constant-unknown source feeding the
//    live cone, a batch whose inputs carry no X/Z runs a value-plane-only
//    kernel with half the memory traffic.  Circuits it cannot model —
//    combinational cycles, 3-state drivers whose enable is not a
//    compile-time constant (dynamic contention), behavioural async gates
//    (DFF/latch/C-element) — are rejected via Status so callers can fall
//    back to the event engine.
//  * `EventEval` — the event-driven Simulator behind the same packed
//    interface: the always-correct fallback.
//
// Two-plane encoding: each signal carries a `value` word and an `unknown`
// word, bit i belonging to vector i of the batch.  unknown=1 means X (Z
// collapses into X at the packing boundary — at a gate input the simulator
// treats a floating line exactly like an unknown one, and after constant
// folding no CompiledEval driver can emit a *dynamic* Z, so the collapse is
// exact for every net the engine accepts).  The planes are kept canonical:
// value=0 wherever unknown=1, so plane-equality is value-equality.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "sim/circuit.h"
#include "sim/logic.h"
#include "sim/simulator.h"
#include "util/status.h"

namespace pp::sim {

/// One batch worth of a signal: bit i of each plane is vector i's value.
struct PackedBits {
  std::uint64_t value = 0;
  std::uint64_t unknown = 0;  ///< X/Z mask; canonical form has value&unknown==0

  bool operator==(const PackedBits&) const = default;
};

/// Write vector `lane`'s value into a packed signal (keeps canonical form).
constexpr void set_lane(PackedBits& p, int lane, Logic v) noexcept {
  const std::uint64_t bit = std::uint64_t{1} << lane;
  p.value &= ~bit;
  p.unknown &= ~bit;
  if (v == Logic::k1) p.value |= bit;
  else if (v != Logic::k0) p.unknown |= bit;
}

/// Read vector `lane`'s value out of a packed signal (X for unknown — the
/// packed encoding does not distinguish X from Z).
[[nodiscard]] constexpr Logic get_lane(const PackedBits& p, int lane) noexcept {
  const std::uint64_t bit = std::uint64_t{1} << lane;
  if (p.unknown & bit) return Logic::kX;
  return (p.value & bit) ? Logic::k1 : Logic::k0;
}

/// Topological levelization of a circuit's gate graph.  Level 0 gates read
/// only primary inputs, constants, or undriven nets; every other gate sits
/// one above its deepest driver.  `order` lists every gate in evaluation
/// order (drivers strictly before readers).
struct LevelMap {
  std::vector<std::uint32_t> gate_level;  ///< per GateId
  std::vector<GateId> order;              ///< all gates, topologically sorted
  std::uint32_t max_level = 0;

  [[nodiscard]] bool empty() const noexcept { return order.empty(); }
};

/// Levelize a circuit.  Fails with kFailedPrecondition when the gate graph
/// has a cycle, with two distinct diagnoses: a *sequential feedback loop*
/// (every cycle closes only through behavioural state-holding gates —
/// DFF/latch/C-element — so the circuit is clocked, not cyclic; the
/// sequential compiled engine breaks exactly these at register boundaries)
/// versus a *true combinational cycle* (cross-coupled gates with no
/// register on the loop; only the event-driven engine can iterate those
/// through time).  Either way a net on the offending cycle is named.
[[nodiscard]] Result<LevelMap> levelize(const Circuit& circuit);

/// A register loop closed *outside* the circuit: `q` is a primary-input pad
/// acting as the register's output, `d` is the net whose settled value the
/// register captures at each cycle's clock edge, and `reset` is the value
/// the pad holds at reset.  This is how platform boundary registers
/// (DESIGN.md §6: purely combinational fabric, Q pads driven at the array
/// edge, reset to 0) ride the sequential engines.
struct ExternalReg {
  NetId q;                  ///< primary-input pad acting as the register Q
  NetId d;                  ///< net captured into `q` at each clock edge
  Logic reset = Logic::k0;  ///< pad value at reset (boundary registers: 0)
};

/// One polymorphic-gate rewrite of a shared circuit structure: in a given
/// environment mode, `gate` computes `kind` instead of its base kind.  A
/// list of these per mode (pp::poly::Elaboration) is what turns one
/// circuit into its M configuration views.
struct ModeOverride {
  GateId gate;
  GateKind kind;
};

/// An evaluation engine over a fixed (circuit, input nets, output nets)
/// binding.  Engines evaluate wide batches of independent vectors packed
/// bit-parallel; they are stateful only through scratch storage, so
/// concurrent use requires one `clone()` per thread.
class Evaluator {
 public:
  /// Lanes (independent vectors) per 64-bit plane word — the grain of the
  /// bit-parallel encoding and the capacity of one `eval_packed` call.
  static constexpr int kBatchLanes = 64;

  virtual ~Evaluator() = default;

  [[nodiscard]] virtual const char* name() const noexcept = 0;
  [[nodiscard]] virtual std::size_t input_count() const noexcept = 0;
  [[nodiscard]] virtual std::size_t output_count() const noexcept = 0;

  /// Evaluate one 64-lane batch.  `inputs[i]` packs the i-th bound input
  /// net across the batch, `outputs[k]` receives the k-th bound output
  /// net.  `lanes` bounds how many vectors of the batch are meaningful
  /// (1..kBatchLanes); engines may compute all kBatchLanes but must not
  /// fail on garbage in the unused lanes, and must leave them 0/0 in the
  /// outputs.
  [[nodiscard]] virtual Status eval_packed(std::span<const PackedBits> inputs,
                                           std::span<PackedBits> outputs,
                                           int lanes = kBatchLanes) = 0;

  /// Evaluate one wide batch of `lanes` vectors over structure-of-arrays
  /// plane buffers.  With `words = ceil(lanes / kBatchLanes)`, input net i
  /// occupies `in_value[i*words .. i*words+words-1]` (and the same span of
  /// `in_unknown`); output net k likewise in the out planes.  Word w's bit
  /// b belongs to vector `w*kBatchLanes + b`.  Span sizes must be exactly
  /// `input_count()*words` / `output_count()*words`.  Engines must not
  /// fail on garbage in the unused lanes of the final word and must leave
  /// them 0/0 in the outputs.
  ///
  /// The base implementation adapts any engine one `eval_packed` word at a
  /// time; engines with a real wide kernel (CompiledEval) override it.
  [[nodiscard]] virtual Status eval_wide(std::span<const std::uint64_t> in_value,
                                         std::span<const std::uint64_t> in_unknown,
                                         std::span<std::uint64_t> out_value,
                                         std::span<std::uint64_t> out_unknown,
                                         std::size_t lanes);

  /// Evaluate `cycles` clock cycles of a sequential design over `lanes`
  /// independent stimulus streams, bit-parallel.  The layout is cycle-major
  /// SoA: with `words = ceil(lanes / kBatchLanes)` and `nin =
  /// input_count()`, input i of cycle c occupies
  /// `in_value[((c*nin)+i)*words .. +words-1]` (same span of `in_unknown`);
  /// output k of cycle c likewise in the out planes with `nout =
  /// output_count()`.  Span sizes must be exactly `nin*cycles*words` /
  /// `nout*cycles*words`.  Per cycle the engine settles the combinational
  /// logic with the current register state, samples the outputs (pre-edge),
  /// then pulses every clock once and commits the captured D values into
  /// the register state.  Each lane carries an independent register file.
  /// `reset` restores every register to its reset value (behavioural
  /// DFF/latch state: X, exactly like a fresh event simulator; external
  /// registers: their declared reset) before cycle 0; `reset = false`
  /// continues from the state the previous call left behind.  Engines must
  /// not fail on garbage in the unused lanes of the final word and must
  /// leave them 0/0 in the outputs.
  ///
  /// The base implementation fails with kFailedPrecondition; engines with
  /// sequential support (CompiledEval, EventEval) override it.
  [[nodiscard]] virtual Status run_cycles(std::span<const std::uint64_t> in_value,
                                          std::span<const std::uint64_t> in_unknown,
                                          std::span<std::uint64_t> out_value,
                                          std::span<std::uint64_t> out_unknown,
                                          std::size_t cycles, std::size_t lanes,
                                          bool reset = true);

  /// The wide-batch granule this engine is tuned for, in plane words: the
  /// sharding hint callers use to size `eval_wide` calls.  1 for engines
  /// that evaluate word-at-a-time behind the base `eval_wide` shim.
  [[nodiscard]] virtual std::size_t preferred_words() const noexcept {
    return 1;
  }

  /// Independent engine over the same binding, for per-thread sharding.
  [[nodiscard]] virtual std::unique_ptr<Evaluator> clone() const = 0;
};

/// The levelized bit-parallel backend.  Compilation is a one-time cost per
/// (circuit, binding); evaluation is a single pass over a flat instruction
/// array per wide batch, each instruction streaming W plane words (W*64
/// vectors) through auto-vectorizable inner loops.  Clones share the
/// immutable program (and its fast/slow pass counters) and carry only
/// their own slot scratch, so cloning is cheap.
class CompiledEval final : public Evaluator {
 public:
  /// Default wide-batch width W, in 64-lane plane words per slot (8 words
  /// = 512 vectors per kernel pass).
  static constexpr int kDefaultWideWords = 8;

  /// Compile-time knobs.  The defaults are the production configuration;
  /// the degraded combinations exist for benchmarking (the PR 2 scalar
  /// 64-lane kernel is `{.wide_words = 1, .two_valued = false,
  /// .optimize = false}`) and for differential testing of each feature.
  struct CompileOptions {
    /// Scratch width W in plane words per slot (>= 1).  `eval_wide` calls
    /// wider than W are processed in passes of W words.
    int wide_words = kDefaultWideWords;
    /// Derive the single-plane fast path: batches whose inputs carry no
    /// unknown bits run a value-plane-only kernel when the program is
    /// eligible (no wired-resolution, no constant-unknown source).
    bool two_valued = true;
    /// Program optimization passes: buffer copy-propagation via slot
    /// aliasing, fixed-arity 2/3-input opcode specialization, and
    /// level-major slot renumbering.
    bool optimize = true;
  };

  /// Compile a circuit.  `in_nets` must be primary inputs that no gate
  /// drives; every other primary input is treated as constantly undriven
  /// (Z -> unknown), matching a fresh event simulator.  Pass `levels` to
  /// reuse a previously computed levelization of the *same* circuit (e.g.
  /// recompiling a reconfigured fabric); it is verified to be a valid
  /// topological order of this circuit (O(pins)) and silently recomputed
  /// when it is not, so a stale map can never corrupt compilation.
  ///
  /// Failure modes (all leave the caller free to fall back):
  ///  * kInvalidArgument     — circuit fails validate(), a bound net is
  ///                           out of range / not a primary input, or
  ///                           options.wide_words < 1;
  ///  * kFailedPrecondition  — combinational cycle, behavioural async gate,
  ///                           3-state driver with a non-constant enable, or
  ///                           an externally driven net that gates also drive.
  [[nodiscard]] static Result<CompiledEval> compile(
      const Circuit& circuit, std::vector<NetId> in_nets,
      std::vector<NetId> out_nets, const LevelMap* levels = nullptr);
  /// As above, with explicit compile-time knobs (see CompileOptions).
  [[nodiscard]] static Result<CompiledEval> compile(
      const Circuit& circuit, std::vector<NetId> in_nets,
      std::vector<NetId> out_nets, const LevelMap* levels,
      const CompileOptions& options);

  /// Compile a *clocked* circuit for multi-cycle batch evaluation
  /// (run_cycles).  Behavioural DFFs and latches become register slots:
  /// each Q is cut into a level-0 state source and its D/EN/RSTn cones are
  /// kept live as internal taps, so the remaining combinational program
  /// levelizes and optimizes exactly like `compile`.  `regs` adds external
  /// register loops (platform boundary registers) on top.  Register state
  /// lives in per-lane SoA planes beside the scratch; reset state is X for
  /// behavioural registers (bit-identical to a fresh event simulator) and
  /// each ExternalReg's declared value.
  ///
  /// Clocking contract (the implicit single clock domain): every DFF CLK
  /// net must be a primary input that no gate drives, must not appear in
  /// `in_nets` / `out_nets` / `regs`, and must feed nothing but DFF CLK
  /// pins.  run_cycles pulses all clock nets together once per cycle.
  /// Settled-cycle semantics — latch enables and async resets are evaluated
  /// on *settled* values, so combinational glitches that would transiently
  /// open a latch or dip a reset are not modelled (the event engine is the
  /// oracle for those).
  ///
  /// Failure modes (beyond `compile`'s): kFailedPrecondition for a
  /// C-element (state with no clock discipline), a clock-discipline
  /// violation (derived/gated clock, clock used as data), a register output
  /// with multiple drivers, a true combinational cycle, or a dynamic
  /// tri-state enable anywhere in the live cone.
  [[nodiscard]] static Result<CompiledEval> compile_sequential(
      const Circuit& circuit, std::vector<NetId> in_nets,
      std::vector<NetId> out_nets, std::vector<ExternalReg> regs = {},
      const LevelMap* levels = nullptr);
  /// As above, with explicit compile-time knobs (see CompileOptions).
  [[nodiscard]] static Result<CompiledEval> compile_sequential(
      const Circuit& circuit, std::vector<NetId> in_nets,
      std::vector<NetId> out_nets, std::vector<ExternalReg> regs,
      const LevelMap* levels, const CompileOptions& options);

  /// Compile a *mode-swept* combinational engine: one engine answering all
  /// M environment modes of a polymorphic design in a single `eval_modes`
  /// sweep.  `mode_overrides[m]` rewrites the base circuit's polymorphic
  /// gates into mode m's configuration view (see ModeOverride;
  /// `mode_overrides[0]` is normally empty — the base circuit is mode 0);
  /// each view is compiled through the full pipeline (folding, DCE,
  /// copy-prop, specialization) into its own instruction image, and the
  /// images share one engine so a sweep pays one compile and selects the
  /// per-mode opcodes by lane group.  The levelization is shared — kind
  /// overrides never change the gate graph's topology.
  ///
  /// The ordinary entry points (eval_wide/eval_packed) evaluate mode 0.
  /// Failure modes are `compile`'s, plus kInvalidArgument for an override
  /// that is out of range or changes a gate's pin shape, and
  /// kFailedPrecondition when any mode's view is outside the compiled
  /// subset (sequential polymorphic designs evaluate per-mode instead).
  [[nodiscard]] static Result<CompiledEval> compile_modal(
      const Circuit& circuit, std::vector<NetId> in_nets,
      std::vector<NetId> out_nets,
      std::span<const std::vector<ModeOverride>> mode_overrides,
      const LevelMap* levels = nullptr);
  /// As above, with explicit compile-time knobs (see CompileOptions).
  [[nodiscard]] static Result<CompiledEval> compile_modal(
      const Circuit& circuit, std::vector<NetId> in_nets,
      std::vector<NetId> out_nets,
      std::span<const std::vector<ModeOverride>> mode_overrides,
      const LevelMap* levels, const CompileOptions& options);

  [[nodiscard]] const char* name() const noexcept override {
    return "compiled-bitparallel";
  }
  [[nodiscard]] std::size_t input_count() const noexcept override;
  [[nodiscard]] std::size_t output_count() const noexcept override;
  [[nodiscard]] Status eval_packed(std::span<const PackedBits> inputs,
                                   std::span<PackedBits> outputs,
                                   int lanes = kBatchLanes) override;
  [[nodiscard]] Status eval_wide(std::span<const std::uint64_t> in_value,
                                 std::span<const std::uint64_t> in_unknown,
                                 std::span<std::uint64_t> out_value,
                                 std::span<std::uint64_t> out_unknown,
                                 std::size_t lanes) override;
  /// Multi-cycle batch kernel (compile_sequential programs; a combinational
  /// program runs too, committing nothing).  Per cycle: load the cycle's
  /// inputs, settle the program (iterating transparent latches and async
  /// resets to a fixpoint), sample outputs, then commit every clocked
  /// register simultaneously from its settled D (non-binary D captures X)
  /// and re-settle so post-edge state reaches still-open latches.  Cycles
  /// whose inputs and state carry no unknown bits ride the single-plane
  /// fast path.  `reset = false` (state carried across calls) requires the
  /// same `lanes` word width as the engine's scratch; a latch feedback
  /// arrangement that fails to reach a fixpoint fails with
  /// kResourceExhausted.
  [[nodiscard]] Status run_cycles(std::span<const std::uint64_t> in_value,
                                  std::span<const std::uint64_t> in_unknown,
                                  std::span<std::uint64_t> out_value,
                                  std::span<std::uint64_t> out_unknown,
                                  std::size_t cycles, std::size_t lanes,
                                  bool reset = true) override;
  [[nodiscard]] std::size_t preferred_words() const noexcept override;
  [[nodiscard]] std::unique_ptr<Evaluator> clone() const override;

  /// Environment modes this engine answers: 1 for `compile`d engines, M
  /// for `compile_modal` ones.
  [[nodiscard]] std::size_t mode_count() const noexcept;

  /// The mode sweep: evaluate `lanes_per_mode` vectors under *every*
  /// environment mode in one call.  The planes are mode-major lane
  /// groups: with `wpm = ceil(lanes_per_mode / kBatchLanes)` and
  /// `M = mode_count()`, input net i's mode-m stimulus occupies words
  /// `in_value[(i*M + m)*wpm .. +wpm-1]` (same span of `in_unknown`), and
  /// output net k's mode-m result likewise in the out planes — so span
  /// sizes are exactly `input_count()*M*wpm` / `output_count()*M*wpm`.
  /// Sweeping the same stimulus across modes means duplicating it into
  /// each mode group.  Each group is evaluated with that mode's
  /// instruction image (kernel passes never straddle a mode boundary);
  /// dead lanes of each group's final word are left 0/0.  Works on a
  /// single-mode engine as a plain eval_wide.
  [[nodiscard]] Status eval_modes(std::span<const std::uint64_t> in_value,
                                  std::span<const std::uint64_t> in_unknown,
                                  std::span<std::uint64_t> out_value,
                                  std::span<std::uint64_t> out_unknown,
                                  std::size_t lanes_per_mode);

  /// True when this engine was built by compile_sequential (run_cycles is
  /// the entry point; eval_wide / eval_packed reject the program).
  [[nodiscard]] bool sequential() const noexcept;
  /// Register slots in the program (behavioural + external), 0 when
  /// combinational.
  [[nodiscard]] std::size_t register_count() const noexcept;
  /// Restore every register's reset value (behavioural: X; external: its
  /// declared reset) at the current scratch width.  run_cycles with
  /// `reset = true` does this implicitly.
  void reset_state();

  /// Introspection for tests/benches: live instructions after constant
  /// folding, dead-code elimination, and copy-propagation, and the
  /// levelized depth.
  [[nodiscard]] std::size_t instruction_count() const noexcept;
  [[nodiscard]] std::uint32_t level_count() const noexcept;

  /// True when the compiled program is eligible for the two-valued
  /// single-plane fast path (CompileOptions::two_valued on, no live
  /// wired-resolution, no constant-unknown source in the live cone).
  /// Whether a given batch takes it additionally requires its inputs to
  /// carry no unknown bits.
  [[nodiscard]] bool fast_path_available() const noexcept;

  /// Kernel pass accounting, shared by every clone of one compilation (so
  /// sharded runs aggregate naturally).  Counters are monotone.
  struct KernelStats {
    std::uint64_t fast_passes = 0;  ///< single-plane (two-valued) passes
    std::uint64_t slow_passes = 0;  ///< two-plane passes
    /// Clock cycles executed by run_cycles (per pass group — one 512-lane
    /// group running 32 cycles counts 32).
    std::uint64_t cycles_run = 0;
    /// Register captures committed at clock edges (edge registers per
    /// cycle per pass group; latches commit during settling, not here).
    std::uint64_t state_commits = 0;
    /// run_cycles cycles that rode the single-plane fast path (inputs and
    /// register state both free of unknown bits).
    std::uint64_t fast_cycle_passes = 0;
  };
  /// Snapshot of the pass counters across this engine and all its clones.
  [[nodiscard]] KernelStats kernel_stats() const noexcept;

  /// The compiled instruction stream.  The definition is internal
  /// (sim/compiled_program.h) — only sim/*.cpp translation units see it;
  /// the name is public so the JIT backend's helpers can take it by
  /// reference.
  struct Program;

 private:
  /// The JIT backend (sim/jit.h) emits C from the same Program image this
  /// interpreter executes, and builds private interpreter instances from
  /// it for the bit-for-bit differential gate.
  friend class JitEval;
  explicit CompiledEval(std::shared_ptr<const Program> program);
  [[nodiscard]] static Result<std::shared_ptr<Program>> compile_impl(
      const Circuit& circuit, std::vector<NetId> in_nets,
      std::vector<NetId> out_nets, const LevelMap* levels,
      const CompileOptions& options);
  void ensure_scratch(std::size_t words);
  [[nodiscard]] bool settle_fixpoint(std::size_t nw, bool fast,
                                     std::size_t max_iters);

  std::shared_ptr<const Program> program_;
  std::vector<std::uint64_t> value_;    ///< SoA scratch: slot*words + w
  std::vector<std::uint64_t> unknown_;  ///< SoA scratch, unknown plane
  std::size_t scratch_words_ = 0;
  std::vector<std::uint64_t> shim_;     ///< eval_packed AoS<->SoA staging
  std::vector<std::uint64_t> seq_tmp_;  ///< simultaneous-commit staging
  /// Mode 1..M-1 instruction images of a compile_modal engine (mode 0 is
  /// this engine itself); each carries its own scratch, all share stats
  /// aggregation through kernel_stats().
  std::vector<std::unique_ptr<CompiledEval>> modal_;
  std::vector<std::uint64_t> mode_buf_;  ///< eval_modes subplane staging
};

/// The event-driven Simulator behind the Evaluator interface: lanes are
/// evaluated one at a time on a private simulator (cloned from the settled
/// base state, like Session::run_vectors' sharded path).  Always available
/// for any valid circuit; per-lane event budget guards oscillation.
class EventEval final : public Evaluator {
 public:
  /// Build the engine over a settled base simulator.  `regs` declares
  /// external register loops for run_cycles (ignored by the combinational
  /// entry points); when the circuit is clocked, creation also drives every
  /// DFF clock net to 0 and re-settles so the first rising edge registers.
  [[nodiscard]] static Result<EventEval> create(
      const Circuit& circuit, std::vector<NetId> in_nets,
      std::vector<NetId> out_nets,
      std::uint64_t max_events_per_vector = 2'000'000,
      std::vector<ExternalReg> regs = {});

  [[nodiscard]] const char* name() const noexcept override {
    return "event-driven";
  }
  [[nodiscard]] std::size_t input_count() const noexcept override {
    return in_nets_.size();
  }
  [[nodiscard]] std::size_t output_count() const noexcept override {
    return out_nets_.size();
  }
  [[nodiscard]] Status eval_packed(std::span<const PackedBits> inputs,
                                   std::span<PackedBits> outputs,
                                   int lanes = kBatchLanes) override;
  /// The multi-cycle differential oracle: each lane runs on a private copy
  /// of the settled base simulator, one settle per input change / clock
  /// phase, so glitch-accurate latch and async-reset behaviour is exact.
  /// Per cycle: drive the cycle's inputs (latch-enable-driving inputs
  /// first) and settle, sample outputs, then capture external-register D
  /// values, raise every clock together with the external Q pads, settle,
  /// and lower the clocks.  `reset` restarts every lane from the settled
  /// base (behavioural state X, external pads at their reset value);
  /// `reset = false` is unsupported here (lane simulators are not kept) and
  /// fails with kFailedPrecondition.
  [[nodiscard]] Status run_cycles(std::span<const std::uint64_t> in_value,
                                  std::span<const std::uint64_t> in_unknown,
                                  std::span<std::uint64_t> out_value,
                                  std::span<std::uint64_t> out_unknown,
                                  std::size_t cycles, std::size_t lanes,
                                  bool reset = true) override;
  [[nodiscard]] std::unique_ptr<Evaluator> clone() const override;

  /// Adjust the per-lane event budget (inherited by future clones).
  void set_max_events(std::uint64_t budget) noexcept { budget_ = budget; }

 private:
  EventEval(std::vector<NetId> in_nets, std::vector<NetId> out_nets,
            std::uint64_t budget);
  std::vector<NetId> in_nets_;
  std::vector<NetId> out_nets_;
  std::uint64_t budget_;
  std::optional<Simulator> sim_;
  const Circuit* circuit_ = nullptr;  ///< run_cycles clock validation
  std::vector<ExternalReg> regs_;     ///< external register loops (oracle)
  std::vector<NetId> clock_nets_;     ///< every DFF CLK net, deduplicated
  std::vector<std::size_t> en_first_; ///< input indexes, latch-EN drivers first
};

}  // namespace pp::sim
