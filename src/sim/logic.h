// Four-valued logic for event-driven simulation: 0, 1, Z (undriven) and
// X (unknown/contention).  The polymorphic fabric needs all four: 3-state
// drivers produce Z on purpose (that is how blocks decouple from their
// neighbours, §4), and X tracking catches configuration bugs such as two
// drivers fighting over an abutted interconnect line.
#pragma once

#include <cstdint>
#include <span>

namespace pp::sim {

enum class Logic : std::uint8_t { k0 = 0, k1 = 1, kZ = 2, kX = 3 };

[[nodiscard]] constexpr bool is_binary(Logic v) noexcept {
  return v == Logic::k0 || v == Logic::k1;
}

[[nodiscard]] constexpr Logic from_bool(bool b) noexcept {
  return b ? Logic::k1 : Logic::k0;
}

/// Convert to bool; only valid on binary values (asserted by callers).
[[nodiscard]] constexpr bool to_bool(Logic v) noexcept { return v == Logic::k1; }

[[nodiscard]] constexpr char to_char(Logic v) noexcept {
  switch (v) {
    case Logic::k0: return '0';
    case Logic::k1: return '1';
    case Logic::kZ: return 'Z';
    case Logic::kX: return 'X';
  }
  return '?';
}

/// Wired resolution of two drivers on the same net (IEEE-1164-style):
/// Z yields to anything; equal values agree; 0 vs 1 is contention (X).
[[nodiscard]] constexpr Logic resolve(Logic a, Logic b) noexcept {
  if (a == Logic::kZ) return b;
  if (b == Logic::kZ) return a;
  if (a == b) return a;
  return Logic::kX;
}

/// NAND over an input span: dominant-0 (any 0 forces 1); all-1 gives 0;
/// otherwise unknown.  Z inputs behave as X (a floating gate input).
[[nodiscard]] Logic nand_of(std::span<const Logic> ins) noexcept;
/// AND / OR / XOR with the same dominance rules.
[[nodiscard]] Logic and_of(std::span<const Logic> ins) noexcept;
[[nodiscard]] Logic or_of(std::span<const Logic> ins) noexcept;
[[nodiscard]] Logic xor_of(std::span<const Logic> ins) noexcept;
[[nodiscard]] Logic not_of(Logic v) noexcept;

}  // namespace pp::sim
