#include "sim/simulator.h"

#include <algorithm>
#include <stdexcept>

namespace pp::sim {

Simulator::Simulator(const Circuit& circuit) : circuit_(circuit) {
  const std::string diag = circuit.validate();
  if (!diag.empty())
    throw std::invalid_argument("Simulator: invalid circuit:\n" + diag);

  const std::size_t nnets = circuit.net_count();
  const std::size_t ngates = circuit.gate_count();
  net_value_.assign(nnets, Logic::kZ);
  external_value_.assign(nnets, Logic::kZ);
  driver_value_.assign(ngates, Logic::kX);
  fanout_.assign(nnets, {});
  net_drivers_.assign(nnets, {});
  gate_state_.assign(ngates, Logic::kX);
  gate_prev_clk_.assign(ngates, Logic::kX);
  gate_epoch_.assign(ngates, 0);
  gate_pending_time_.assign(ngates, 0);
  gate_pending_value_.assign(ngates, Logic::kX);
  net_toggle_count_.assign(nnets, 0);
  net_last_change_.assign(nnets, 0);

  for (GateId g = 0; g < ngates; ++g) {
    const Gate& gate = circuit.gate(g);
    for (NetId in : gate.inputs) fanout_[in].push_back(g);
    net_drivers_[gate.output].push_back(g);
    // Tri-state drivers start released; strong drivers start unknown.
    driver_value_[g] = is_tristate(gate.kind) ? Logic::kZ : Logic::kX;
  }
  // External input pads start released (Z): an undriven boundary line reads
  // as floating, exactly like a released 3-state driver.
  for (NetId n = 0; n < nnets; ++n) resolve_net(n);
  // Kick-start: evaluate every gate at t=0 against the initial net values.
  for (GateId g = 0; g < ngates; ++g) evaluate_gate(g);
}

Result<Simulator> Simulator::create(const Circuit& circuit) {
  const std::string diag = circuit.validate();
  if (!diag.empty())
    return Status::invalid_argument("Simulator: invalid circuit:\n" + diag);
  return Simulator(circuit);
}

void Simulator::set_input_at(NetId net, Logic v, SimTime t) {
  if (!circuit_.is_input(net))
    throw std::invalid_argument("set_input_at: net " +
                                circuit_.net_name(net) +
                                " is not a primary input");
  if (t < now_) throw std::invalid_argument("set_input_at: time in the past");
  heap_.push_back(Event{t, seq_++, kExternalBit | net, 0, v});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
}

void Simulator::schedule_gate(GateId g, Logic v, SimTime t, bool transport) {
  if (!transport) {
    // Inertial semantics: a new evaluation supersedes any pending event.
    if (gate_pending_time_[g] != 0 && gate_pending_value_[g] == v) {
      return;  // identical pending event already in flight
    }
    if (gate_pending_time_[g] == 0 && driver_value_[g] == v) {
      return;  // no change needed
    }
    ++gate_epoch_[g];  // invalidate older scheduled events
    gate_pending_time_[g] = t;
    gate_pending_value_[g] = v;
  }
  heap_.push_back(Event{t, seq_++, g, transport ? 0 : gate_epoch_[g], v});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  stats_.max_queue = std::max(stats_.max_queue,
                              static_cast<std::uint64_t>(heap_.size()));
}

void Simulator::resolve_net(NetId n) {
  Logic v = external_value_[n];
  for (GateId g : net_drivers_[n]) v = resolve(v, driver_value_[g]);
  if (v == net_value_[n]) return;
  // Glitch accounting: a change that arrives within the glitch window of the
  // previous change counts as a runt pulse.
  if (glitch_window_ != 0 && net_toggle_count_[n] > 0 &&
      now_ - net_last_change_[n] < glitch_window_) {
    ++stats_.glitch_pulses;
  }
  net_value_[n] = v;
  ++net_toggle_count_[n];
  ++stats_.net_toggles;
  net_last_change_[n] = now_;
  if (observer_) observer_(now_, n, v);
  for (GateId g : fanout_[n]) evaluate_gate(g);
}

Logic Simulator::compute_gate(GateId g) {
  const Gate& gate = circuit_.gate(g);
  // Gather current input values (small, stack-friendly buffer).
  Logic ins[8];
  std::vector<Logic> big;
  std::span<const Logic> in_span;
  if (gate.inputs.size() <= 8) {
    for (std::size_t i = 0; i < gate.inputs.size(); ++i)
      ins[i] = net_value_[gate.inputs[i]];
    in_span = {ins, gate.inputs.size()};
  } else {
    big.reserve(gate.inputs.size());
    for (NetId in : gate.inputs) big.push_back(net_value_[in]);
    in_span = big;
  }

  switch (gate.kind) {
    case GateKind::kNand: return nand_of(in_span);
    case GateKind::kAnd: return and_of(in_span);
    case GateKind::kOr: return or_of(in_span);
    case GateKind::kNor: return not_of(or_of(in_span));
    case GateKind::kXor: return xor_of(in_span);
    case GateKind::kXnor: return not_of(xor_of(in_span));
    case GateKind::kNot: return not_of(in_span[0]);
    case GateKind::kBuf:
    case GateKind::kDelay:
      return is_binary(in_span[0]) ? in_span[0] : Logic::kX;
    case GateKind::kConst0: return Logic::k0;
    case GateKind::kConst1: return Logic::k1;
    case GateKind::kTriBuf: {
      const Logic en = in_span[1];
      if (en == Logic::k0) return Logic::kZ;
      if (en == Logic::k1)
        return is_binary(in_span[0]) ? in_span[0] : Logic::kX;
      return Logic::kX;
    }
    case GateKind::kTriInv: {
      const Logic en = in_span[1];
      if (en == Logic::k0) return Logic::kZ;
      if (en == Logic::k1) return not_of(in_span[0]);
      return Logic::kX;
    }
    case GateKind::kDff: {
      const Logic clk = in_span[1];
      // Optional active-low asynchronous reset on pin 2.
      if (gate.inputs.size() == 3 && in_span[2] == Logic::k0) {
        gate_state_[g] = Logic::k0;
      } else if (gate_prev_clk_[g] == Logic::k0 && clk == Logic::k1) {
        gate_state_[g] = is_binary(in_span[0]) ? in_span[0] : Logic::kX;
      }
      gate_prev_clk_[g] = clk;
      return gate_state_[g];
    }
    case GateKind::kLatch: {
      if (in_span[1] == Logic::k1)
        gate_state_[g] = is_binary(in_span[0]) ? in_span[0] : Logic::kX;
      return gate_state_[g];
    }
    case GateKind::kCElement: {
      const Logic a = in_span[0];
      const Logic b = in_span[1];
      // Optional active-low reset on pin 2 (micropipelines start empty).
      if (gate.inputs.size() == 3 && in_span[2] == Logic::k0) {
        gate_state_[g] = Logic::k0;
      } else if (a == Logic::k1 && b == Logic::k1) {
        gate_state_[g] = Logic::k1;
      } else if (a == Logic::k0 && b == Logic::k0) {
        gate_state_[g] = Logic::k0;
      }
      // else hold (X until first full agreement or reset)
      return gate_state_[g];
    }
  }
  return Logic::kX;
}

void Simulator::evaluate_gate(GateId g) {
  const Gate& gate = circuit_.gate(g);
  const Logic v = compute_gate(g);
  const bool transport = gate.kind == GateKind::kDelay;
  schedule_gate(g, v, now_ + gate.delay_ps, transport);
}

void Simulator::apply_driver_change(std::uint32_t source, Logic v) {
  if (source & kExternalBit) {
    const NetId n = source & ~kExternalBit;
    if (external_value_[n] != v) {
      external_value_[n] = v;
      resolve_net(n);
    }
    return;
  }
  const GateId g = source;
  gate_pending_time_[g] = 0;
  if (driver_value_[g] != v) {
    driver_value_[g] = v;
    resolve_net(circuit_.gate(g).output);
  }
}

bool Simulator::run_until(SimTime t_end, std::uint64_t max_events) {
  std::uint64_t budget = max_events;
  while (!heap_.empty() && heap_.front().t <= t_end) {
    if (budget-- == 0) return false;
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    const Event ev = heap_.back();
    heap_.pop_back();
    // Drop events cancelled by a newer inertial evaluation.
    if (!(ev.source & kExternalBit) && ev.epoch != 0 &&
        ev.epoch != gate_epoch_[ev.source]) {
      continue;
    }
    now_ = ev.t;
    ++stats_.events_processed;
    apply_driver_change(ev.source, ev.value);
  }
  now_ = std::max(now_, t_end);
  return true;
}

bool Simulator::settle(std::uint64_t max_events) {
  std::uint64_t budget = max_events;
  while (!heap_.empty()) {
    if (budget-- == 0) return false;
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    const Event ev = heap_.back();
    heap_.pop_back();
    if (!(ev.source & kExternalBit) && ev.epoch != 0 &&
        ev.epoch != gate_epoch_[ev.source]) {
      continue;
    }
    now_ = ev.t;
    ++stats_.events_processed;
    apply_driver_change(ev.source, ev.value);
  }
  return true;
}

Status evaluate_combinational(const Circuit& c,
                              const std::vector<NetId>& in_nets,
                              const std::vector<Logic>& inputs,
                              const std::vector<NetId>& out_nets,
                              std::vector<Logic>& outputs,
                              std::uint64_t max_events) {
  if (in_nets.size() != inputs.size())
    return Status::invalid_argument("evaluate_combinational: size mismatch");
  for (NetId n : in_nets)
    if (n >= c.net_count() || !c.is_input(n))
      return Status::invalid_argument(
          "evaluate_combinational: net is not a primary input");
  for (NetId n : out_nets)
    if (n >= c.net_count())
      return Status::invalid_argument(
          "evaluate_combinational: output net out of range");
  auto sim = Simulator::create(c);
  if (!sim.ok()) return sim.status();
  for (std::size_t i = 0; i < in_nets.size(); ++i)
    sim->set_input(in_nets[i], inputs[i]);
  if (!sim->settle(max_events))
    return Status::resource_exhausted(
        "evaluate_combinational: circuit oscillates");
  outputs.clear();
  outputs.reserve(out_nets.size());
  for (NetId n : out_nets) outputs.push_back(sim->value(n));
  return Status();
}

}  // namespace pp::sim
