#include "sim/evaluator.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <utility>

#include "sim/compiled_program.h"

namespace pp::sim {

namespace {

/// "eval_*: lanes must be 1..N" with N derived from the batch constant.
[[nodiscard]] std::string lanes_range_message(const char* fn) {
  return std::string(fn) + ": lanes must be 1.." +
         std::to_string(Evaluator::kBatchLanes);
}

/// Shared span-shape validation for eval_wide implementations.
[[nodiscard]] Status check_wide_shape(std::size_t nin, std::size_t nout,
                                      std::size_t in_value, std::size_t in_unknown,
                                      std::size_t out_value,
                                      std::size_t out_unknown,
                                      std::size_t lanes, std::size_t& words) {
  if (lanes < 1)
    return Status::invalid_argument("eval_wide: lanes must be >= 1");
  words = (lanes + Evaluator::kBatchLanes - 1) / Evaluator::kBatchLanes;
  if (in_value != nin * words || in_unknown != nin * words ||
      out_value != nout * words || out_unknown != nout * words)
    return Status::invalid_argument(
        "eval_wide: " + std::to_string(lanes) + " lanes span " +
        std::to_string(words) + " words, so expected " +
        std::to_string(nin * words) + " input and " +
        std::to_string(nout * words) +
        " output plane words per plane (value/unknown)");
  return Status();
}

}  // namespace

// ---------------------------------------------------------------------------
// Evaluator: base wide-batch adapter
// ---------------------------------------------------------------------------

Status Evaluator::eval_wide(std::span<const std::uint64_t> in_value,
                            std::span<const std::uint64_t> in_unknown,
                            std::span<std::uint64_t> out_value,
                            std::span<std::uint64_t> out_unknown,
                            std::size_t lanes) {
  const std::size_t nin = input_count();
  const std::size_t nout = output_count();
  std::size_t words = 0;
  if (Status s = check_wide_shape(nin, nout, in_value.size(), in_unknown.size(),
                                  out_value.size(), out_unknown.size(), lanes,
                                  words);
      !s.ok())
    return s;
  // Word-at-a-time adapter over eval_packed: correct for any engine, and
  // exactly the lane-at-a-time behaviour EventEval wants behind the wide
  // interface.
  std::vector<PackedBits> in(nin), out(nout);
  for (std::size_t w = 0; w < words; ++w) {
    for (std::size_t i = 0; i < nin; ++i)
      in[i] = {in_value[i * words + w], in_unknown[i * words + w]};
    if (Status s =
            eval_packed(in, out, static_cast<int>(lanes_in_word(lanes, w)));
        !s.ok())
      return s;
    for (std::size_t k = 0; k < nout; ++k) {
      out_value[k * words + w] = out[k].value;
      out_unknown[k * words + w] = out[k].unknown;
    }
  }
  return Status();
}

Status Evaluator::run_cycles(std::span<const std::uint64_t> /*in_value*/,
                             std::span<const std::uint64_t> /*in_unknown*/,
                             std::span<std::uint64_t> /*out_value*/,
                             std::span<std::uint64_t> /*out_unknown*/,
                             std::size_t /*cycles*/, std::size_t /*lanes*/,
                             bool /*reset*/) {
  return Status::failed_precondition(
      std::string("run_cycles: engine '") + name() +
      "' has no sequential entry point");
}

// ---------------------------------------------------------------------------
// Levelization
// ---------------------------------------------------------------------------

namespace {

[[nodiscard]] std::string net_label(const Circuit& c, NetId n) {
  const std::string& name = c.net_name(n);
  std::string label;
  if (name.empty()) {
    label = '#' + std::to_string(n);
  } else {
    label.reserve(name.size() + 2);
    label += '\'';
    label += name;
    label += '\'';
  }
  return label;
}

}  // namespace

Result<LevelMap> levelize(const Circuit& circuit) {
  const std::size_t ngates = circuit.gate_count();
  const std::size_t nnets = circuit.net_count();

  // net -> driving gates (several when 3-state drivers share the net) and
  // net -> reading gates (one entry per reading pin).
  std::vector<std::vector<GateId>> drivers(nnets);
  for (GateId g = 0; g < ngates; ++g)
    drivers[circuit.gate(g).output].push_back(g);
  std::vector<std::vector<GateId>> readers(nnets);
  std::vector<std::uint32_t> indegree(ngates, 0);
  for (GateId g = 0; g < ngates; ++g)
    for (NetId in : circuit.gate(g).inputs) {
      readers[in].push_back(g);
      indegree[g] += static_cast<std::uint32_t>(drivers[in].size());
    }

  // Kahn's algorithm over driver->reader edges.  A gate's level is one above
  // its deepest input driver, so the FIFO pop order is already topological.
  LevelMap lm;
  lm.gate_level.assign(ngates, 0);
  lm.order.reserve(ngates);
  std::vector<GateId> ready;
  for (GateId g = 0; g < ngates; ++g)
    if (indegree[g] == 0) ready.push_back(g);
  for (std::size_t head = 0; head < ready.size(); ++head) {
    const GateId g = ready[head];
    lm.order.push_back(g);
    std::uint32_t level = 0;
    for (NetId in : circuit.gate(g).inputs)
      for (GateId d : drivers[in])
        level = std::max(level, lm.gate_level[d] + 1);
    lm.gate_level[g] = level;
    lm.max_level = std::max(lm.max_level, level);
    for (GateId r : readers[circuit.gate(g).output])
      if (--indegree[r] == 0) ready.push_back(r);
  }

  if (lm.order.size() != ngates) {
    // Diagnose the cycle: re-run the sort with every edge *out of* a
    // state-holding gate (DFF/latch/C-element) removed.  If that completes,
    // every loop closes only at a register output — a clocked design, not a
    // combinational cycle — and the caller should reach for the sequential
    // compiled engine (or the event engine) instead.  If it still stalls,
    // the netlist has a genuine combinational cycle.
    const auto is_state_gate = [&](GateId g) {
      const GateKind k = circuit.gate(g).kind;
      return k == GateKind::kDff || k == GateKind::kLatch ||
             k == GateKind::kCElement;
    };
    std::vector<std::uint32_t> cut_indegree(ngates, 0);
    for (GateId g = 0; g < ngates; ++g)
      for (NetId in : circuit.gate(g).inputs)
        for (GateId d : drivers[in])
          if (!is_state_gate(d)) ++cut_indegree[g];
    std::vector<GateId> cut_ready;
    for (GateId g = 0; g < ngates; ++g)
      if (cut_indegree[g] == 0) cut_ready.push_back(g);
    for (std::size_t head = 0; head < cut_ready.size(); ++head) {
      const GateId g = cut_ready[head];
      if (is_state_gate(g)) continue;  // its out-edges were never counted
      for (GateId r : readers[circuit.gate(g).output])
        if (--cut_indegree[r] == 0) cut_ready.push_back(r);
    }
    if (cut_ready.size() == ngates) {
      for (GateId g = 0; g < ngates; ++g)
        if (indegree[g] != 0 && is_state_gate(g))
          return Status::failed_precondition(
              "levelize: sequential feedback loop through register output "
              "net " +
              net_label(circuit, circuit.gate(g).output) +
              " — every cycle closes at a state-holding gate "
              "(DFF/latch/C-element), so this is a clocked design; use "
              "CompiledEval::compile_sequential or the event-driven engine");
      // Unreachable in practice (a register-broken stall always leaves a
      // state gate stuck), but keep a diagnostic rather than fall through.
      for (GateId g = 0; g < ngates; ++g)
        if (indegree[g] != 0)
          return Status::failed_precondition(
              "levelize: sequential feedback loop through net " +
              net_label(circuit, circuit.gate(g).output));
    }
    for (GateId g = 0; g < ngates; ++g)
      if (cut_indegree[g] != 0)
        return Status::failed_precondition(
            "levelize: true combinational cycle through net " +
            net_label(circuit, circuit.gate(g).output) +
            " — no register breaks the loop, so only the event-driven "
            "engine can evaluate it");
  }
  return lm;
}

// ---------------------------------------------------------------------------
// CompiledEval
// ---------------------------------------------------------------------------

namespace {

/// Scalar settled value of a non-3-state combinational gate, mirroring
/// Simulator::compute_gate exactly (Z inputs behave as X).
[[nodiscard]] Logic fold_gate(GateKind kind, std::span<const Logic> ins) {
  switch (kind) {
    case GateKind::kNand: return nand_of(ins);
    case GateKind::kAnd: return and_of(ins);
    case GateKind::kOr: return or_of(ins);
    case GateKind::kNor: return not_of(or_of(ins));
    case GateKind::kXor: return xor_of(ins);
    case GateKind::kXnor: return not_of(xor_of(ins));
    case GateKind::kNot: return not_of(ins[0]);
    case GateKind::kBuf:
    case GateKind::kDelay: return is_binary(ins[0]) ? ins[0] : Logic::kX;
    case GateKind::kConst0: return Logic::k0;
    case GateKind::kConst1: return Logic::k1;
    default: return Logic::kX;
  }
}

/// True when `lm` verifiably belongs to this circuit: `order` is a
/// permutation of all gates in which every driver of every input net of a
/// gate precedes that gate (the invariant the classification pass depends
/// on), and `gate_level`/`max_level` match what that order implies.  Guards
/// against a stale LevelMap (e.g. recorded for a differently configured
/// fabric of the same size).
[[nodiscard]] bool levels_fit_circuit(
    const Circuit& c, const std::vector<std::vector<GateId>>& drivers,
    const LevelMap& lm) {
  const std::size_t ngates = c.gate_count();
  if (lm.gate_level.size() != ngates || lm.order.size() != ngates)
    return false;
  std::vector<char> done(ngates, 0);
  std::uint32_t max_seen = 0;
  for (GateId g : lm.order) {
    if (g >= ngates || done[g]) return false;
    std::uint32_t level = 0;
    for (NetId in : c.gate(g).inputs)
      for (GateId d : drivers[in]) {
        if (!done[d]) return false;
        level = std::max(level, lm.gate_level[d] + 1);
      }
    if (lm.gate_level[g] != level) return false;
    max_seen = std::max(max_seen, level);
    done[g] = 1;
  }
  return max_seen == lm.max_level;
}

[[nodiscard]] Op op_for(GateKind kind) {
  switch (kind) {
    case GateKind::kNand: return Op::kNand;
    case GateKind::kAnd: return Op::kAnd;
    case GateKind::kOr: return Op::kOr;
    case GateKind::kNor: return Op::kNor;
    case GateKind::kXor: return Op::kXor;
    case GateKind::kXnor: return Op::kXnor;
    case GateKind::kNot: return Op::kNot;
    default: return Op::kBuf;  // kBuf / kDelay (transport delay is identity
                               // once settled)
  }
}

}  // namespace

// Op / Instr / SeqReg / CompiledEval::Program moved to
// sim/compiled_program.h so the JIT backend (sim/jit.cpp) can walk the
// same instruction stream this interpreter executes.

namespace {

/// Level-major slot renumbering: slots are renamed in first-use order of
/// the emitted program (inputs, then each instruction's operands and
/// destination, then the outputs), so consecutive instructions touch
/// nearby scratch and slots orphaned by copy-propagation are dropped.
/// Mutates every slot reference in place; `init` shrinks to the live set.
void renumber_slots(std::vector<Instr>& instrs,
                    std::vector<std::uint32_t>& operands,
                    std::vector<PackedBits>& init,
                    std::vector<std::uint32_t>& in_slots,
                    std::vector<std::uint32_t>& out_slots) {
  std::vector<std::uint32_t> remap(init.size(), kNoSlot);
  std::vector<PackedBits> packed;
  packed.reserve(init.size());
  auto touch = [&](std::uint32_t s) {
    if (remap[s] == kNoSlot) {
      remap[s] = static_cast<std::uint32_t>(packed.size());
      packed.push_back(init[s]);
    }
    return remap[s];
  };
  for (std::uint32_t& s : in_slots) s = touch(s);
  for (Instr& it : instrs) {
    for (std::uint32_t j = 0; j < it.nin; ++j) {
      std::uint32_t& o = operands[it.in_ofs + j];
      o = touch(o);
    }
    it.out = touch(it.out);
  }
  for (std::uint32_t& s : out_slots) s = touch(s);
  init = std::move(packed);
}

}  // namespace

CompiledEval::CompiledEval(std::shared_ptr<const Program> program)
    : program_(std::move(program)) {
  // Capacity is fixed at W words per slot for the engine's lifetime; only
  // the live stride (scratch_words_) changes between passes.
  const auto W = static_cast<std::size_t>(program_->wide_words);
  value_.assign(program_->init.size() * W, 0);
  unknown_.assign(program_->init.size() * W, 0);
  ensure_scratch(W);
  // A fresh engine (clones included) starts with every register at its
  // reset value — the same contract as a fresh event simulator.
  if (!program_->regs.empty()) reset_state();
}

void CompiledEval::ensure_scratch(std::size_t words) {
  if (scratch_words_ == words) return;
  scratch_words_ = words;
  // A stride switch (a partial final pass, or eval_packed after a wide
  // call) only needs the constant slots re-broadcast at the new stride:
  // every other slot is written — at this stride — before it is read in
  // every pass, so no zeroing or reallocation happens on the hot path.
  for (const std::uint32_t s : program_->const_slots) {
    const PackedBits p = program_->init[s];
    for (std::size_t w = 0; w < words; ++w) {
      value_[std::size_t{s} * words + w] = p.value;
      unknown_[std::size_t{s} * words + w] = p.unknown;
    }
  }
}

std::size_t CompiledEval::input_count() const noexcept {
  return program_->n_public_in;
}
std::size_t CompiledEval::output_count() const noexcept {
  return program_->n_public_out;
}
std::size_t CompiledEval::instruction_count() const noexcept {
  return program_->instrs.size();
}
std::uint32_t CompiledEval::level_count() const noexcept {
  return program_->levels;
}
bool CompiledEval::sequential() const noexcept {
  return program_->is_sequential;
}
std::size_t CompiledEval::register_count() const noexcept {
  return program_->regs.size();
}

void CompiledEval::reset_state() {
  const Program& p = *program_;
  const std::size_t nw = scratch_words_;
  for (const SeqReg& r : p.regs) {
    std::uint64_t* qv = value_.data() + std::size_t{r.q_slot} * nw;
    std::uint64_t* qu = unknown_.data() + std::size_t{r.q_slot} * nw;
    for (std::size_t w = 0; w < nw; ++w) {
      qv[w] = r.reset.value;
      qu[w] = r.reset.unknown;
    }
  }
}

std::unique_ptr<Evaluator> CompiledEval::clone() const {
  auto copy = std::unique_ptr<CompiledEval>(new CompiledEval(program_));
  copy->modal_.reserve(modal_.size());
  for (const auto& sub : modal_)
    copy->modal_.emplace_back(new CompiledEval(sub->program_));
  return copy;
}

std::size_t CompiledEval::mode_count() const noexcept {
  return 1 + modal_.size();
}

Result<CompiledEval> CompiledEval::compile(const Circuit& circuit,
                                           std::vector<NetId> in_nets,
                                           std::vector<NetId> out_nets,
                                           const LevelMap* levels) {
  return compile(circuit, std::move(in_nets), std::move(out_nets), levels,
                 CompileOptions{});
}

Result<CompiledEval> CompiledEval::compile(const Circuit& circuit,
                                           std::vector<NetId> in_nets,
                                           std::vector<NetId> out_nets,
                                           const LevelMap* levels,
                                           const CompileOptions& options) {
  auto program = compile_impl(circuit, std::move(in_nets), std::move(out_nets),
                              levels, options);
  if (!program.ok()) return program.status();
  return CompiledEval(std::move(*program));
}

Result<CompiledEval> CompiledEval::compile_modal(
    const Circuit& circuit, std::vector<NetId> in_nets,
    std::vector<NetId> out_nets,
    std::span<const std::vector<ModeOverride>> mode_overrides,
    const LevelMap* levels) {
  return compile_modal(circuit, std::move(in_nets), std::move(out_nets),
                       mode_overrides, levels, CompileOptions{});
}

Result<CompiledEval> CompiledEval::compile_modal(
    const Circuit& circuit, std::vector<NetId> in_nets,
    std::vector<NetId> out_nets,
    std::span<const std::vector<ModeOverride>> mode_overrides,
    const LevelMap* levels, const CompileOptions& options) {
  if (mode_overrides.empty())
    return Status::invalid_argument("compile_modal: no modes");
  // Each mode's configuration view is the base circuit with its
  // polymorphic gates re-personalized; kind overrides keep the gate graph
  // (and therefore the levelization) intact, so every view compiles
  // through the full pipeline against the same topology and the images
  // differ only where the modes genuinely diverge after optimization.
  std::vector<std::shared_ptr<const Program>> programs;
  programs.reserve(mode_overrides.size());
  for (std::size_t m = 0; m < mode_overrides.size(); ++m) {
    Circuit view = circuit;
    for (const ModeOverride& o : mode_overrides[m])
      if (!view.set_gate_kind(o.gate, o.kind))
        return Status::invalid_argument(
            "compile_modal: mode " + std::to_string(m) +
            " override of gate " + std::to_string(o.gate) +
            " is out of range or changes the pin shape");
    auto program = compile_impl(view, in_nets, out_nets, levels, options);
    if (!program.ok())
      return Status(program.status().code(),
                    "compile_modal: mode " + std::to_string(m) + ": " +
                        program.status().message());
    if ((*program)->is_sequential)
      return Status::failed_precondition(
          "compile_modal: sequential programs sweep per-mode, not by lane "
          "group");
    programs.push_back(std::move(*program));
  }
  CompiledEval engine(std::move(programs.front()));
  engine.modal_.reserve(programs.size() - 1);
  for (std::size_t m = 1; m < programs.size(); ++m)
    engine.modal_.emplace_back(new CompiledEval(std::move(programs[m])));
  return engine;
}

Status CompiledEval::eval_modes(std::span<const std::uint64_t> in_value,
                                std::span<const std::uint64_t> in_unknown,
                                std::span<std::uint64_t> out_value,
                                std::span<std::uint64_t> out_unknown,
                                std::size_t lanes_per_mode) {
  const std::size_t modes = mode_count();
  if (modes == 1)
    return eval_wide(in_value, in_unknown, out_value, out_unknown,
                     lanes_per_mode);
  const std::size_t nin = program_->in_slots.size();
  const std::size_t nout = program_->out_slots.size();
  if (lanes_per_mode == 0)
    return Status::invalid_argument("eval_modes: lanes_per_mode must be >= 1");
  const std::size_t wpm =
      (lanes_per_mode + kBatchLanes - 1) / kBatchLanes;
  if (in_value.size() != nin * modes * wpm ||
      in_unknown.size() != nin * modes * wpm ||
      out_value.size() != nout * modes * wpm ||
      out_unknown.size() != nout * modes * wpm)
    return Status::invalid_argument(
        "eval_modes: plane spans must be exactly nets * modes * " +
        std::to_string(wpm) + " words (mode-major lane groups)");

  // Per-mode staging: gather each mode's lane group into the contiguous
  // layout eval_wide expects, run that mode's image, scatter the results
  // back.  The copies are a few words per net — noise against the kernel
  // passes — and keep every image's pass structure (fast-path choice, dead
  // -lane masking) exactly what a standalone engine would do.
  mode_buf_.resize(2 * (nin + nout) * wpm);
  std::uint64_t* iv = mode_buf_.data();
  std::uint64_t* iu = iv + nin * wpm;
  std::uint64_t* ov = iu + nin * wpm;
  std::uint64_t* ou = ov + nout * wpm;
  for (std::size_t m = 0; m < modes; ++m) {
    CompiledEval* engine = m == 0 ? this : modal_[m - 1].get();
    for (std::size_t i = 0; i < nin; ++i)
      for (std::size_t w = 0; w < wpm; ++w) {
        iv[i * wpm + w] = in_value[(i * modes + m) * wpm + w];
        iu[i * wpm + w] = in_unknown[(i * modes + m) * wpm + w];
      }
    if (Status s = engine->eval_wide({iv, nin * wpm}, {iu, nin * wpm},
                                     {ov, nout * wpm}, {ou, nout * wpm},
                                     lanes_per_mode);
        !s.ok())
      return Status(s.code(),
                    "eval_modes: mode " + std::to_string(m) + ": " +
                        s.message());
    for (std::size_t k = 0; k < nout; ++k)
      for (std::size_t w = 0; w < wpm; ++w) {
        out_value[(k * modes + m) * wpm + w] = ov[k * wpm + w];
        out_unknown[(k * modes + m) * wpm + w] = ou[k * wpm + w];
      }
  }
  return Status();
}

Result<std::shared_ptr<CompiledEval::Program>> CompiledEval::compile_impl(
    const Circuit& circuit, std::vector<NetId> in_nets,
    std::vector<NetId> out_nets, const LevelMap* levels,
    const CompileOptions& options) {
  if (options.wide_words < 1)
    return Status::invalid_argument(
        "CompiledEval: wide_words must be >= 1, got " +
        std::to_string(options.wide_words));
  if (const std::string diag = circuit.validate(); !diag.empty())
    return Status::invalid_argument("CompiledEval: invalid circuit:\n" + diag);

  const std::size_t ngates = circuit.gate_count();
  const std::size_t nnets = circuit.net_count();

  for (GateId g = 0; g < ngates; ++g) {
    const GateKind k = circuit.gate(g).kind;
    if (k == GateKind::kDff || k == GateKind::kLatch ||
        k == GateKind::kCElement)
      return Status::failed_precondition(
          std::string("CompiledEval: behavioural state-holding gate (") +
          gate_kind_name(k) + ") needs the event-driven engine");
  }

  std::vector<std::vector<GateId>> drivers(nnets);
  for (GateId g = 0; g < ngates; ++g)
    drivers[circuit.gate(g).output].push_back(g);

  // Levelize, reusing the caller's metadata only when it verifiably fits
  // *this* circuit (the check is O(pins), far cheaper than the sort it
  // skips); anything stale falls back to a fresh levelization, so a reused
  // map can never bypass cycle rejection or break the topo-order invariant
  // the classification pass depends on.
  LevelMap computed;
  const LevelMap* lm = nullptr;
  if (levels && levels_fit_circuit(circuit, drivers, *levels)) {
    lm = levels;
  } else {
    auto lv = levelize(circuit);
    if (!lv.ok()) return lv.status();
    computed = std::move(*lv);
    lm = &computed;
  }

  // Bound-net checks.  Externally driven nets must be pure attachment
  // points: a gate driver alongside the external slot would resolve against
  // a possibly-floating (Z) external value, which two planes cannot express.
  std::vector<char> ext(nnets, 0);
  for (NetId n : in_nets) {
    if (n >= nnets)
      return Status::invalid_argument("CompiledEval: input net out of range");
    if (!circuit.is_input(n))
      return Status::invalid_argument("CompiledEval: net " +
                                      net_label(circuit, n) +
                                      " is not a primary input");
    if (!drivers[n].empty())
      return Status::failed_precondition(
          "CompiledEval: bound input net " + net_label(circuit, n) +
          " is also gate-driven (external/driver resolution)");
    ext[n] = 1;
  }
  for (NetId n : out_nets)
    if (n >= nnets)
      return Status::invalid_argument("CompiledEval: output net out of range");

  // --- Pass A: classify every gate and net in topological order. ----------
  // A gate/net is either a compile-time constant (configuration structure:
  // const rows, released or always-on 3-state drivers, undriven lines) or
  // varying (depends on bound inputs).  Constant folding here is what turns
  // the elaborated fabric's 3-state abutment forest into plain logic.
  struct GateRec {
    bool varying = false;
    Logic cval = Logic::kZ;      // settled driver value when !varying
    Op op = Op::kBuf;            // when varying
    std::vector<NetId> srcs;     // nets read when varying
    std::uint32_t slot = kNoSlot;  // destination slot once emitted
    bool needed = false;
  };
  struct NetRec {
    bool finalized = false;
    bool varying = false;
    Logic cval = Logic::kZ;           // settled value when !varying
    Logic cpart = Logic::kZ;          // constant resolution participant
    std::vector<GateId> vdrivers;     // varying drivers
    std::uint32_t slot = kNoSlot;
    bool needed = false;
  };
  std::vector<GateRec> grec(ngates);
  std::vector<NetRec> nrec(nnets);

  // All of a net's drivers precede any reader in topo order, so a net can be
  // finalized the first time a reader (or the output binding) looks at it.
  auto finalize_net = [&](NetId n) -> NetRec& {
    NetRec& r = nrec[n];
    if (r.finalized) return r;
    r.finalized = true;
    if (ext[n]) {
      r.varying = true;
      return r;
    }
    Logic cpart = Logic::kZ;
    for (GateId d : drivers[n]) {
      if (grec[d].varying) r.vdrivers.push_back(d);
      else cpart = resolve(cpart, grec[d].cval);
    }
    if (cpart == Logic::kX || r.vdrivers.empty()) {
      // X from constant contention dominates any varying driver
      // (resolve(X, v) == X); otherwise the net is fully constant
      // (possibly Z: an undriven or all-released line).
      r.cval = cpart;
      r.vdrivers.clear();
      return r;
    }
    r.varying = true;
    r.cpart = cpart;  // kZ (absent) or a binary constant co-driver
    return r;
  };

  for (const GateId g : lm->order) {
    const Gate& gate = circuit.gate(g);
    GateRec& gr = grec[g];

    if (gate.kind == GateKind::kConst0 || gate.kind == GateKind::kConst1) {
      gr.cval = gate.kind == GateKind::kConst1 ? Logic::k1 : Logic::k0;
      continue;
    }

    if (is_tristate(gate.kind)) {
      const NetRec& en = finalize_net(gate.inputs[1]);
      if (en.varying)
        return Status::failed_precondition(
            "CompiledEval: 3-state driver on net " +
            net_label(circuit, gate.output) +
            " has a non-constant enable (dynamic contention is not "
            "representable bit-parallel)");
      if (en.cval == Logic::k0) {
        gr.cval = Logic::kZ;  // released for every vector
        continue;
      }
      if (en.cval != Logic::k1) {
        gr.cval = Logic::kX;  // unknown enable poisons the output
        continue;
      }
      // Always-on driver: plain buffer/inverter of the data input.
      const NetRec& data = finalize_net(gate.inputs[0]);
      const bool invert = gate.kind == GateKind::kTriInv;
      if (!data.varying) {
        gr.cval = invert ? not_of(data.cval)
                         : (is_binary(data.cval) ? data.cval : Logic::kX);
        continue;
      }
      gr.varying = true;
      gr.op = invert ? Op::kNot : Op::kBuf;
      gr.srcs = {gate.inputs[0]};
      continue;
    }

    // Plain combinational gate: fold when every input is constant, shortcut
    // when a dominant constant forces the output, else emit.
    bool all_const = true;
    bool dominated = false;
    Logic dom_val = Logic::kX;
    for (NetId in : gate.inputs) {
      const NetRec& ir = finalize_net(in);
      if (ir.varying) {
        all_const = false;
        continue;
      }
      switch (gate.kind) {
        case GateKind::kNand:
        case GateKind::kAnd:
          if (ir.cval == Logic::k0) {
            dominated = true;
            dom_val = gate.kind == GateKind::kNand ? Logic::k1 : Logic::k0;
          }
          break;
        case GateKind::kOr:
        case GateKind::kNor:
          if (ir.cval == Logic::k1) {
            dominated = true;
            dom_val = gate.kind == GateKind::kOr ? Logic::k1 : Logic::k0;
          }
          break;
        case GateKind::kXor:
        case GateKind::kXnor:
          if (!is_binary(ir.cval)) {
            dominated = true;
            dom_val = Logic::kX;
          }
          break;
        default: break;
      }
    }
    if (dominated) {
      gr.cval = dom_val;
      continue;
    }
    if (all_const) {
      std::vector<Logic> ins;
      ins.reserve(gate.inputs.size());
      for (NetId in : gate.inputs) ins.push_back(nrec[in].cval);
      gr.cval = fold_gate(gate.kind, ins);
      continue;
    }
    gr.varying = true;
    gr.op = op_for(gate.kind);
    gr.srcs.assign(gate.inputs.begin(), gate.inputs.end());
  }
  for (NetId n : out_nets) finalize_net(n);

  // --- Pass B: dead-code elimination. --------------------------------------
  // Only the cone feeding the bound outputs is evaluated; on an elaborated
  // fabric this strips every unconfigured block.
  {
    std::vector<NetId> stack(out_nets.begin(), out_nets.end());
    while (!stack.empty()) {
      const NetId n = stack.back();
      stack.pop_back();
      NetRec& r = nrec[n];
      if (r.needed) continue;
      r.needed = true;
      for (GateId d : r.vdrivers) {
        GateRec& gr = grec[d];
        if (gr.needed) continue;
        gr.needed = true;
        for (NetId src : gr.srcs) stack.push_back(src);
      }
    }
  }

  // --- Pass C: compact slot assignment + instruction emission. -------------
  auto program = std::make_shared<Program>();
  program->levels = lm->max_level + (ngates ? 1 : 0);
  program->wide_words = options.wide_words;
  auto new_slot = [&](PackedBits init) {
    program->init.push_back(init);
    return static_cast<std::uint32_t>(program->init.size() - 1);
  };
  auto net_slot = [&](NetId n) {
    NetRec& r = nrec[n];
    if (r.slot == kNoSlot)
      r.slot = new_slot(r.varying ? PackedBits{} : broadcast(r.cval));
    return r.slot;
  };

  // Inputs get the first slots (even when dead — they are written per batch).
  program->in_slots.reserve(in_nets.size());
  for (NetId n : in_nets) program->in_slots.push_back(net_slot(n));

  std::vector<std::uint32_t> pending(nnets, 0);
  for (NetId n = 0; n < nnets; ++n)
    pending[n] = static_cast<std::uint32_t>(nrec[n].vdrivers.size());

  auto emit = [&](Op op, std::span<const std::uint32_t> operands,
                  std::uint32_t out) {
    const auto ofs = static_cast<std::uint32_t>(program->operands.size());
    program->operands.insert(program->operands.end(), operands.begin(),
                             operands.end());
    program->instrs.push_back(
        {op, static_cast<std::uint32_t>(operands.size()), ofs, out});
  };

  for (const GateId g : lm->order) {
    GateRec& gr = grec[g];
    if (!gr.needed) continue;
    const NetId out = circuit.gate(g).output;
    NetRec& onet = nrec[out];
    const bool multi = onet.vdrivers.size() > 1 || onet.cpart != Logic::kZ;
    std::vector<std::uint32_t> operands;
    operands.reserve(gr.srcs.size());
    for (NetId src : gr.srcs) operands.push_back(net_slot(src));
    if (options.optimize && gr.op == Op::kBuf && operands.size() == 1 &&
        (multi || onet.slot == kNoSlot)) {
      // Copy-propagation: a buffer (or buf-shaped always-on driver) is a
      // slot alias, not an instruction — readers (and the wire-resolution
      // below) pick up the source slot directly.  The packed encoding
      // makes the alias exact: a buffer copies both planes verbatim.
      gr.slot = operands[0];
      if (!multi) onet.slot = gr.slot;
    } else {
      gr.slot = multi ? new_slot({}) : net_slot(out);
      emit(options.optimize ? specialize_arity(gr.op, operands.size())
                            : gr.op,
           operands, gr.slot);
    }
    if (multi && --pending[out] == 0) {
      // All drivers of this net are computed: wire-resolve them (plus the
      // constant co-driver, if any) into the net's slot before any reader.
      std::vector<std::uint32_t> rops;
      rops.reserve(onet.vdrivers.size() + 1);
      for (GateId d : onet.vdrivers) rops.push_back(grec[d].slot);
      if (onet.cpart != Logic::kZ) rops.push_back(new_slot(broadcast(onet.cpart)));
      emit(Op::kResolve, rops, net_slot(out));
    }
  }

  program->out_slots.reserve(out_nets.size());
  for (NetId n : out_nets) program->out_slots.push_back(net_slot(n));

  // --- Pass D: level-major slot renumbering (cache locality). --------------
  if (options.optimize)
    renumber_slots(program->instrs, program->operands, program->init,
                   program->in_slots, program->out_slots);

  // --- Pass E: two-valued fast-path eligibility. ---------------------------
  // The single-plane kernel is exact iff no unknown can appear anywhere in
  // the live cone when the inputs carry none: written slots start 0/0, so
  // the only unknown sources are (a) wired-resolution, which manufactures
  // X from disagreeing binary drivers, and (b) constant-unknown slots
  // (folded undriven/contended nets) read by an instruction or bound as an
  // output.
  if (options.two_valued) {
    bool ok = true;
    for (const Instr& it : program->instrs) {
      if (it.op == Op::kResolve) {
        ok = false;
        break;
      }
      for (std::uint32_t j = 0; j < it.nin && ok; ++j)
        if (program->init[program->operands[it.in_ofs + j]].unknown != 0)
          ok = false;
      if (!ok) break;
    }
    if (ok)
      for (std::uint32_t s : program->out_slots)
        if (program->init[s].unknown != 0) {
          ok = false;
          break;
        }
    program->fast_path_ok = ok;
  }

  // --- Pass F: constant-slot inventory for stride switches. ----------------
  // Slots no input load or instruction writes hold their init image for the
  // engine's lifetime; ensure_scratch re-broadcasts exactly these when the
  // live scratch stride changes (all-zero constants included — a narrower
  // stride re-reads words that belonged to other slots at the wider one).
  {
    std::vector<char> written(program->init.size(), 0);
    for (const std::uint32_t s : program->in_slots) written[s] = 1;
    for (const Instr& it : program->instrs) written[it.out] = 1;
    for (std::uint32_t s = 0; s < program->init.size(); ++s)
      if (!written[s]) program->const_slots.push_back(s);
  }

  program->n_public_in = static_cast<std::uint32_t>(program->in_slots.size());
  program->n_public_out = static_cast<std::uint32_t>(program->out_slots.size());
  return program;
}

Result<CompiledEval> CompiledEval::compile_sequential(
    const Circuit& circuit, std::vector<NetId> in_nets,
    std::vector<NetId> out_nets, std::vector<ExternalReg> regs,
    const LevelMap* levels) {
  return compile_sequential(circuit, std::move(in_nets), std::move(out_nets),
                            std::move(regs), levels, CompileOptions{});
}

Result<CompiledEval> CompiledEval::compile_sequential(
    const Circuit& circuit, std::vector<NetId> in_nets,
    std::vector<NetId> out_nets, std::vector<ExternalReg> regs,
    const LevelMap* levels, const CompileOptions& options) {
  if (const std::string diag = circuit.validate(); !diag.empty())
    return Status::invalid_argument("compile_sequential: invalid circuit:\n" +
                                    diag);
  const std::size_t ngates = circuit.gate_count();
  const std::size_t nnets = circuit.net_count();

  // --- Scan behavioural state and the implicit clock domain. ---------------
  std::vector<GateId> reg_gates;
  std::vector<char> is_reg_gate(ngates, 0);
  std::vector<NetId> clock_nets;
  for (GateId g = 0; g < ngates; ++g) {
    const Gate& gate = circuit.gate(g);
    if (gate.kind == GateKind::kCElement)
      return Status::failed_precondition(
          "compile_sequential: C-element on net " +
          net_label(circuit, gate.output) +
          " holds state with no clock discipline (asynchronous handshake) — "
          "use the event-driven engine");
    if (gate.kind == GateKind::kDff) {
      reg_gates.push_back(g);
      is_reg_gate[g] = 1;
      clock_nets.push_back(gate.inputs[1]);
    } else if (gate.kind == GateKind::kLatch) {
      reg_gates.push_back(g);
      is_reg_gate[g] = 1;
    }
  }
  std::sort(clock_nets.begin(), clock_nets.end());
  clock_nets.erase(std::unique(clock_nets.begin(), clock_nets.end()),
                   clock_nets.end());

  std::vector<std::vector<GateId>> drivers(nnets);
  for (GateId g = 0; g < ngates; ++g)
    drivers[circuit.gate(g).output].push_back(g);

  // Clock discipline: each clock net is a pure primary input that feeds
  // nothing but DFF CLK pins and is invisible to every binding — run_cycles
  // models it only as "all clocks pulse once per cycle", so any other use
  // (gated/derived clock, clock observed as data) must be rejected.
  std::vector<char> is_clock(nnets, 0);
  for (NetId clk : clock_nets) {
    is_clock[clk] = 1;
    if (!circuit.is_input(clk))
      return Status::failed_precondition(
          "compile_sequential: DFF clock net " + net_label(circuit, clk) +
          " is not a primary input (derived clocks need the event-driven "
          "engine)");
    if (!drivers[clk].empty())
      return Status::failed_precondition(
          "compile_sequential: clock net " + net_label(circuit, clk) +
          " is also gate-driven (gated clocks need the event-driven engine)");
  }
  for (GateId g = 0; g < ngates; ++g) {
    const Gate& gate = circuit.gate(g);
    for (std::size_t pin = 0; pin < gate.inputs.size(); ++pin)
      if (is_clock[gate.inputs[pin]] &&
          !(gate.kind == GateKind::kDff && pin == 1))
        return Status::failed_precondition(
            "compile_sequential: clock net " +
            net_label(circuit, gate.inputs[pin]) + " also feeds a " +
            gate_kind_name(gate.kind) +
            " pin (a clock observed as data cannot ride the implicit "
            "once-per-cycle pulse)");
  }

  // Public bindings are validated against the *original* circuit: the
  // derived circuit marks register outputs as primary inputs, so compiling
  // it would silently accept a register Q bound as a public input.
  const auto bound_as_input = [&](NetId n) {
    return std::find(in_nets.begin(), in_nets.end(), n) != in_nets.end();
  };
  for (NetId n : in_nets) {
    if (n >= nnets)
      return Status::invalid_argument(
          "compile_sequential: input net out of range");
    if (!circuit.is_input(n))
      return Status::invalid_argument("compile_sequential: net " +
                                      net_label(circuit, n) +
                                      " is not a primary input");
    if (is_clock[n])
      return Status::failed_precondition(
          "compile_sequential: clock net " + net_label(circuit, n) +
          " must not be bound as a data input (run_cycles pulses it "
          "implicitly)");
  }
  for (NetId n : out_nets) {
    if (n >= nnets)
      return Status::invalid_argument(
          "compile_sequential: output net out of range");
    if (is_clock[n])
      return Status::failed_precondition(
          "compile_sequential: clock net " + net_label(circuit, n) +
          " must not be bound as an output");
  }

  std::vector<char> ext_q(nnets, 0);
  for (const ExternalReg& r : regs) {
    if (r.q >= nnets || r.d >= nnets)
      return Status::invalid_argument(
          "compile_sequential: external register net out of range");
    if (!circuit.is_input(r.q))
      return Status::invalid_argument(
          "compile_sequential: external register Q net " +
          net_label(circuit, r.q) + " is not a primary input");
    if (is_clock[r.q] || is_clock[r.d])
      return Status::failed_precondition(
          "compile_sequential: external register touches clock net " +
          net_label(circuit, is_clock[r.q] ? r.q : r.d));
    if (ext_q[r.q])
      return Status::invalid_argument(
          "compile_sequential: external register Q net " +
          net_label(circuit, r.q) + " declared twice");
    if (bound_as_input(r.q))
      return Status::invalid_argument(
          "compile_sequential: external register Q net " +
          net_label(circuit, r.q) +
          " is also bound as a public input (the input load would clobber "
          "its state every cycle)");
    ext_q[r.q] = 1;
  }
  for (const GateId g : reg_gates) {
    const NetId q = circuit.gate(g).output;
    if (drivers[q].size() != 1)
      return Status::failed_precondition(
          "compile_sequential: register output net " + net_label(circuit, q) +
          " has multiple drivers (wired resolution of state is not "
          "representable bit-parallel)");
    if (circuit.is_input(q))
      return Status::failed_precondition(
          "compile_sequential: register output net " + net_label(circuit, q) +
          " is externally drivable (external/driver resolution)");
  }

  // --- Derive the combinational view. --------------------------------------
  // Same nets (ids and names preserved), register Q nets promoted to primary
  // inputs, register gates dropped; every other gate copied verbatim.  The
  // whole combinational compiler — constant folding, DCE, copy-propagation,
  // arity specialization, renumbering, fast-path analysis — then applies
  // unchanged.  `levels` is forwarded: compile_impl verifies fit and
  // recomputes when the gate list changed (any behavioural register), so a
  // stale map still cannot corrupt compilation.
  Circuit derived;
  for (NetId n = 0; n < nnets; ++n) {
    derived.add_net(circuit.net_name(n));
    if (circuit.is_input(n)) derived.mark_input(n);
  }
  for (const GateId g : reg_gates) derived.mark_input(circuit.gate(g).output);
  for (GateId g = 0; g < ngates; ++g) {
    if (is_reg_gate[g]) continue;
    const Gate& gate = circuit.gate(g);
    const GateId ng =
        derived.add_gate(gate.kind, gate.inputs, gate.output, gate.delay_ps);
    derived.set_inertial(ng, gate.inertial_ps);
  }

  // Derived binding: public inputs, then behavioural Q state, then external
  // Q state; public outputs, then each register's D (and EN/RSTn) taps.
  std::vector<NetId> dins = in_nets;
  std::vector<NetId> douts = out_nets;
  struct TapRec {
    SeqReg::Kind kind;
    PackedBits reset;
    bool has_ctl;
  };
  std::vector<TapRec> taps;
  taps.reserve(reg_gates.size() + regs.size());
  for (const GateId g : reg_gates) {
    const Gate& gate = circuit.gate(g);
    dins.push_back(gate.output);
    douts.push_back(gate.inputs[0]);  // D
    if (gate.kind == GateKind::kLatch) {
      douts.push_back(gate.inputs[1]);  // EN
      taps.push_back({SeqReg::Kind::kLatch, broadcast(Logic::kX), true});
    } else if (gate.inputs.size() == 3) {
      douts.push_back(gate.inputs[2]);  // RSTn
      taps.push_back({SeqReg::Kind::kDffRst, broadcast(Logic::kX), true});
    } else {
      taps.push_back({SeqReg::Kind::kDff, broadcast(Logic::kX), false});
    }
  }
  for (const ExternalReg& r : regs) {
    dins.push_back(r.q);
    douts.push_back(r.d);
    taps.push_back({SeqReg::Kind::kExternal, broadcast(r.reset), false});
  }

  auto compiled = compile_impl(derived, std::move(dins), std::move(douts),
                               levels, options);
  if (!compiled.ok()) return compiled.status();
  std::shared_ptr<Program>& program = *compiled;

  program->is_sequential = true;
  program->n_public_in = static_cast<std::uint32_t>(in_nets.size());
  program->n_public_out = static_cast<std::uint32_t>(out_nets.size());
  program->regs.reserve(taps.size());
  std::size_t qi = in_nets.size();
  std::size_t ti = out_nets.size();
  for (const TapRec& t : taps) {
    SeqReg r;
    r.kind = t.kind;
    r.reset = t.reset;
    r.q_slot = program->in_slots[qi++];
    r.d_slot = program->out_slots[ti++];
    if (t.has_ctl) r.ctl_slot = program->out_slots[ti++];
    if (t.kind != SeqReg::Kind::kLatch) ++program->n_edge_regs;
    if (t.kind == SeqReg::Kind::kLatch || t.kind == SeqReg::Kind::kDffRst)
      program->has_settle_regs = true;
    program->regs.push_back(r);
  }

  return CompiledEval(std::move(program));
}

namespace {

// The wide kernels.  Scratch is structure-of-arrays: slot s's words are
// val[s*nw .. s*nw+nw-1] (and likewise unk), so every case body is a small
// fixed-shape loop over nw words that the compiler can unroll and
// auto-vectorize.  Destination slots are in SSA form (each written by
// exactly one instruction, allocated at emission), so dst never aliases a
// source and the accumulate-in-place pattern below is safe.

/// Two-plane (4-state) kernel: the always-correct interpretation.
void run_two_plane(std::span<const Instr> instrs, const std::uint32_t* ops,
                   std::uint64_t* val, std::uint64_t* unk, std::size_t nw) {
  for (const Instr& it : instrs) {
    const std::uint32_t* o = ops + it.in_ofs;
    std::uint64_t* dv = val + std::size_t{it.out} * nw;
    std::uint64_t* du = unk + std::size_t{it.out} * nw;
    const std::uint64_t* a = val + std::size_t{o[0]} * nw;
    const std::uint64_t* x = unk + std::size_t{o[0]} * nw;
    switch (it.op) {
      case Op::kBuf:
        for (std::size_t w = 0; w < nw; ++w) {
          dv[w] = a[w];
          du[w] = x[w];
        }
        break;
      case Op::kNot:
        for (std::size_t w = 0; w < nw; ++w) {
          dv[w] = ~a[w] & ~x[w];
          du[w] = x[w];
        }
        break;
      case Op::kAnd:
      case Op::kNand: {
        // dv accumulates all1, du accumulates any0 until the finish loop.
        for (std::size_t w = 0; w < nw; ++w) {
          dv[w] = a[w];
          du[w] = ~a[w] & ~x[w];
        }
        for (std::uint32_t j = 1; j < it.nin; ++j) {
          const std::uint64_t* b = val + std::size_t{o[j]} * nw;
          const std::uint64_t* y = unk + std::size_t{o[j]} * nw;
          for (std::size_t w = 0; w < nw; ++w) {
            dv[w] &= b[w];
            du[w] |= ~b[w] & ~y[w];
          }
        }
        if (it.op == Op::kAnd) {
          for (std::size_t w = 0; w < nw; ++w) du[w] = ~(dv[w] | du[w]);
        } else {
          for (std::size_t w = 0; w < nw; ++w) {
            const std::uint64_t all1 = dv[w], any0 = du[w];
            dv[w] = any0;
            du[w] = ~(all1 | any0);
          }
        }
        break;
      }
      case Op::kOr:
      case Op::kNor: {
        // dv accumulates any1, du accumulates all0 until the finish loop.
        for (std::size_t w = 0; w < nw; ++w) {
          dv[w] = a[w];
          du[w] = ~a[w] & ~x[w];
        }
        for (std::uint32_t j = 1; j < it.nin; ++j) {
          const std::uint64_t* b = val + std::size_t{o[j]} * nw;
          const std::uint64_t* y = unk + std::size_t{o[j]} * nw;
          for (std::size_t w = 0; w < nw; ++w) {
            dv[w] |= b[w];
            du[w] &= ~b[w] & ~y[w];
          }
        }
        if (it.op == Op::kOr) {
          for (std::size_t w = 0; w < nw; ++w) du[w] = ~(dv[w] | du[w]);
        } else {
          for (std::size_t w = 0; w < nw; ++w) {
            const std::uint64_t any1 = dv[w], all0 = du[w];
            dv[w] = all0;
            du[w] = ~(any1 | all0);
          }
        }
        break;
      }
      case Op::kXor:
      case Op::kXnor: {
        for (std::size_t w = 0; w < nw; ++w) {
          dv[w] = a[w];
          du[w] = x[w];
        }
        for (std::uint32_t j = 1; j < it.nin; ++j) {
          const std::uint64_t* b = val + std::size_t{o[j]} * nw;
          const std::uint64_t* y = unk + std::size_t{o[j]} * nw;
          for (std::size_t w = 0; w < nw; ++w) {
            dv[w] ^= b[w];
            du[w] |= y[w];
          }
        }
        if (it.op == Op::kXnor) {
          for (std::size_t w = 0; w < nw; ++w) dv[w] = ~dv[w] & ~du[w];
        } else {
          for (std::size_t w = 0; w < nw; ++w) dv[w] &= ~du[w];
        }
        break;
      }
      case Op::kAnd2:
      case Op::kNand2: {
        const std::uint64_t* b = val + std::size_t{o[1]} * nw;
        const std::uint64_t* y = unk + std::size_t{o[1]} * nw;
        if (it.op == Op::kAnd2) {
          for (std::size_t w = 0; w < nw; ++w) {
            const std::uint64_t all1 = a[w] & b[w];
            const std::uint64_t any0 = (~a[w] & ~x[w]) | (~b[w] & ~y[w]);
            dv[w] = all1;
            du[w] = ~(all1 | any0);
          }
        } else {
          for (std::size_t w = 0; w < nw; ++w) {
            const std::uint64_t all1 = a[w] & b[w];
            const std::uint64_t any0 = (~a[w] & ~x[w]) | (~b[w] & ~y[w]);
            dv[w] = any0;
            du[w] = ~(all1 | any0);
          }
        }
        break;
      }
      case Op::kOr2:
      case Op::kNor2: {
        const std::uint64_t* b = val + std::size_t{o[1]} * nw;
        const std::uint64_t* y = unk + std::size_t{o[1]} * nw;
        if (it.op == Op::kOr2) {
          for (std::size_t w = 0; w < nw; ++w) {
            const std::uint64_t any1 = a[w] | b[w];
            const std::uint64_t all0 = ~a[w] & ~x[w] & ~b[w] & ~y[w];
            dv[w] = any1;
            du[w] = ~(any1 | all0);
          }
        } else {
          for (std::size_t w = 0; w < nw; ++w) {
            const std::uint64_t any1 = a[w] | b[w];
            const std::uint64_t all0 = ~a[w] & ~x[w] & ~b[w] & ~y[w];
            dv[w] = all0;
            du[w] = ~(any1 | all0);
          }
        }
        break;
      }
      case Op::kXor2:
      case Op::kXnor2: {
        const std::uint64_t* b = val + std::size_t{o[1]} * nw;
        const std::uint64_t* y = unk + std::size_t{o[1]} * nw;
        if (it.op == Op::kXor2) {
          for (std::size_t w = 0; w < nw; ++w) {
            const std::uint64_t u = x[w] | y[w];
            dv[w] = (a[w] ^ b[w]) & ~u;
            du[w] = u;
          }
        } else {
          for (std::size_t w = 0; w < nw; ++w) {
            const std::uint64_t u = x[w] | y[w];
            dv[w] = ~(a[w] ^ b[w]) & ~u;
            du[w] = u;
          }
        }
        break;
      }
      case Op::kAnd3:
      case Op::kNand3: {
        const std::uint64_t* b = val + std::size_t{o[1]} * nw;
        const std::uint64_t* y = unk + std::size_t{o[1]} * nw;
        const std::uint64_t* c = val + std::size_t{o[2]} * nw;
        const std::uint64_t* z = unk + std::size_t{o[2]} * nw;
        if (it.op == Op::kAnd3) {
          for (std::size_t w = 0; w < nw; ++w) {
            const std::uint64_t all1 = a[w] & b[w] & c[w];
            const std::uint64_t any0 =
                (~a[w] & ~x[w]) | (~b[w] & ~y[w]) | (~c[w] & ~z[w]);
            dv[w] = all1;
            du[w] = ~(all1 | any0);
          }
        } else {
          for (std::size_t w = 0; w < nw; ++w) {
            const std::uint64_t all1 = a[w] & b[w] & c[w];
            const std::uint64_t any0 =
                (~a[w] & ~x[w]) | (~b[w] & ~y[w]) | (~c[w] & ~z[w]);
            dv[w] = any0;
            du[w] = ~(all1 | any0);
          }
        }
        break;
      }
      case Op::kOr3:
      case Op::kNor3: {
        const std::uint64_t* b = val + std::size_t{o[1]} * nw;
        const std::uint64_t* y = unk + std::size_t{o[1]} * nw;
        const std::uint64_t* c = val + std::size_t{o[2]} * nw;
        const std::uint64_t* z = unk + std::size_t{o[2]} * nw;
        if (it.op == Op::kOr3) {
          for (std::size_t w = 0; w < nw; ++w) {
            const std::uint64_t any1 = a[w] | b[w] | c[w];
            const std::uint64_t all0 =
                ~a[w] & ~x[w] & ~b[w] & ~y[w] & ~c[w] & ~z[w];
            dv[w] = any1;
            du[w] = ~(any1 | all0);
          }
        } else {
          for (std::size_t w = 0; w < nw; ++w) {
            const std::uint64_t any1 = a[w] | b[w] | c[w];
            const std::uint64_t all0 =
                ~a[w] & ~x[w] & ~b[w] & ~y[w] & ~c[w] & ~z[w];
            dv[w] = all0;
            du[w] = ~(any1 | all0);
          }
        }
        break;
      }
      case Op::kXor3:
      case Op::kXnor3: {
        const std::uint64_t* b = val + std::size_t{o[1]} * nw;
        const std::uint64_t* y = unk + std::size_t{o[1]} * nw;
        const std::uint64_t* c = val + std::size_t{o[2]} * nw;
        const std::uint64_t* z = unk + std::size_t{o[2]} * nw;
        if (it.op == Op::kXor3) {
          for (std::size_t w = 0; w < nw; ++w) {
            const std::uint64_t u = x[w] | y[w] | z[w];
            dv[w] = (a[w] ^ b[w] ^ c[w]) & ~u;
            du[w] = u;
          }
        } else {
          for (std::size_t w = 0; w < nw; ++w) {
            const std::uint64_t u = x[w] | y[w] | z[w];
            dv[w] = ~(a[w] ^ b[w] ^ c[w]) & ~u;
            du[w] = u;
          }
        }
        break;
      }
      case Op::kResolve: {
        // dv/du accumulate the wired-and resolution pairwise.
        for (std::size_t w = 0; w < nw; ++w) {
          dv[w] = a[w];
          du[w] = x[w];
        }
        for (std::uint32_t j = 1; j < it.nin; ++j) {
          const std::uint64_t* b = val + std::size_t{o[j]} * nw;
          const std::uint64_t* y = unk + std::size_t{o[j]} * nw;
          for (std::size_t w = 0; w < nw; ++w) {
            du[w] |= y[w] | (dv[w] ^ b[w]);
            dv[w] &= b[w];
          }
        }
        for (std::size_t w = 0; w < nw; ++w) dv[w] &= ~du[w];
        break;
      }
    }
  }
}

/// Single-plane (two-valued) kernel: exact when the program is fast-path
/// eligible and no input lane carries an unknown — half the memory traffic
/// of the two-plane interpretation.  Op::kResolve never reaches here
/// (eligibility excludes it: resolution manufactures X from binary
/// disagreement, which one plane cannot express).
void run_one_plane(std::span<const Instr> instrs, const std::uint32_t* ops,
                   std::uint64_t* val, std::size_t nw) {
  for (const Instr& it : instrs) {
    const std::uint32_t* o = ops + it.in_ofs;
    std::uint64_t* dv = val + std::size_t{it.out} * nw;
    const std::uint64_t* a = val + std::size_t{o[0]} * nw;
    switch (it.op) {
      case Op::kBuf:
        for (std::size_t w = 0; w < nw; ++w) dv[w] = a[w];
        break;
      case Op::kNot:
        for (std::size_t w = 0; w < nw; ++w) dv[w] = ~a[w];
        break;
      case Op::kAnd:
      case Op::kNand: {
        for (std::size_t w = 0; w < nw; ++w) dv[w] = a[w];
        for (std::uint32_t j = 1; j < it.nin; ++j) {
          const std::uint64_t* b = val + std::size_t{o[j]} * nw;
          for (std::size_t w = 0; w < nw; ++w) dv[w] &= b[w];
        }
        if (it.op == Op::kNand)
          for (std::size_t w = 0; w < nw; ++w) dv[w] = ~dv[w];
        break;
      }
      case Op::kOr:
      case Op::kNor: {
        for (std::size_t w = 0; w < nw; ++w) dv[w] = a[w];
        for (std::uint32_t j = 1; j < it.nin; ++j) {
          const std::uint64_t* b = val + std::size_t{o[j]} * nw;
          for (std::size_t w = 0; w < nw; ++w) dv[w] |= b[w];
        }
        if (it.op == Op::kNor)
          for (std::size_t w = 0; w < nw; ++w) dv[w] = ~dv[w];
        break;
      }
      case Op::kXor:
      case Op::kXnor: {
        for (std::size_t w = 0; w < nw; ++w) dv[w] = a[w];
        for (std::uint32_t j = 1; j < it.nin; ++j) {
          const std::uint64_t* b = val + std::size_t{o[j]} * nw;
          for (std::size_t w = 0; w < nw; ++w) dv[w] ^= b[w];
        }
        if (it.op == Op::kXnor)
          for (std::size_t w = 0; w < nw; ++w) dv[w] = ~dv[w];
        break;
      }
      case Op::kAnd2: {
        const std::uint64_t* b = val + std::size_t{o[1]} * nw;
        for (std::size_t w = 0; w < nw; ++w) dv[w] = a[w] & b[w];
        break;
      }
      case Op::kNand2: {
        const std::uint64_t* b = val + std::size_t{o[1]} * nw;
        for (std::size_t w = 0; w < nw; ++w) dv[w] = ~(a[w] & b[w]);
        break;
      }
      case Op::kOr2: {
        const std::uint64_t* b = val + std::size_t{o[1]} * nw;
        for (std::size_t w = 0; w < nw; ++w) dv[w] = a[w] | b[w];
        break;
      }
      case Op::kNor2: {
        const std::uint64_t* b = val + std::size_t{o[1]} * nw;
        for (std::size_t w = 0; w < nw; ++w) dv[w] = ~(a[w] | b[w]);
        break;
      }
      case Op::kXor2: {
        const std::uint64_t* b = val + std::size_t{o[1]} * nw;
        for (std::size_t w = 0; w < nw; ++w) dv[w] = a[w] ^ b[w];
        break;
      }
      case Op::kXnor2: {
        const std::uint64_t* b = val + std::size_t{o[1]} * nw;
        for (std::size_t w = 0; w < nw; ++w) dv[w] = ~(a[w] ^ b[w]);
        break;
      }
      case Op::kAnd3: {
        const std::uint64_t* b = val + std::size_t{o[1]} * nw;
        const std::uint64_t* c = val + std::size_t{o[2]} * nw;
        for (std::size_t w = 0; w < nw; ++w) dv[w] = a[w] & b[w] & c[w];
        break;
      }
      case Op::kNand3: {
        const std::uint64_t* b = val + std::size_t{o[1]} * nw;
        const std::uint64_t* c = val + std::size_t{o[2]} * nw;
        for (std::size_t w = 0; w < nw; ++w) dv[w] = ~(a[w] & b[w] & c[w]);
        break;
      }
      case Op::kOr3: {
        const std::uint64_t* b = val + std::size_t{o[1]} * nw;
        const std::uint64_t* c = val + std::size_t{o[2]} * nw;
        for (std::size_t w = 0; w < nw; ++w) dv[w] = a[w] | b[w] | c[w];
        break;
      }
      case Op::kNor3: {
        const std::uint64_t* b = val + std::size_t{o[1]} * nw;
        const std::uint64_t* c = val + std::size_t{o[2]} * nw;
        for (std::size_t w = 0; w < nw; ++w) dv[w] = ~(a[w] | b[w] | c[w]);
        break;
      }
      case Op::kXor3: {
        const std::uint64_t* b = val + std::size_t{o[1]} * nw;
        const std::uint64_t* c = val + std::size_t{o[2]} * nw;
        for (std::size_t w = 0; w < nw; ++w) dv[w] = a[w] ^ b[w] ^ c[w];
        break;
      }
      case Op::kXnor3: {
        const std::uint64_t* b = val + std::size_t{o[1]} * nw;
        const std::uint64_t* c = val + std::size_t{o[2]} * nw;
        for (std::size_t w = 0; w < nw; ++w) dv[w] = ~(a[w] ^ b[w] ^ c[w]);
        break;
      }
      case Op::kResolve:
        break;  // unreachable: fast-path eligibility excludes resolution
    }
  }
}

}  // namespace

Status CompiledEval::eval_wide(std::span<const std::uint64_t> in_value,
                               std::span<const std::uint64_t> in_unknown,
                               std::span<std::uint64_t> out_value,
                               std::span<std::uint64_t> out_unknown,
                               std::size_t lanes) {
  const Program& p = *program_;
  if (p.is_sequential)
    return Status::failed_precondition(
        "eval_wide: sequential program (register state needs a cycle "
        "protocol) — use run_cycles");
  const std::size_t nin = p.in_slots.size();
  const std::size_t nout = p.out_slots.size();
  std::size_t words = 0;
  if (Status s = check_wide_shape(nin, nout, in_value.size(), in_unknown.size(),
                                  out_value.size(), out_unknown.size(), lanes,
                                  words);
      !s.ok())
    return s;

  const auto W = static_cast<std::size_t>(p.wide_words);
  for (std::size_t w0 = 0; w0 < words; w0 += W) {
    const std::size_t nw = std::min(W, words - w0);
    ensure_scratch(nw);

    // Load inputs into scratch: canonicalize (value 0 where unknown) and
    // zero the dead lanes of the final word, accumulating whether any live
    // lane carries an unknown — the per-pass fast-path condition.
    std::uint64_t any_unknown = 0;
    for (std::size_t i = 0; i < nin; ++i) {
      const std::uint64_t* sv = in_value.data() + i * words + w0;
      const std::uint64_t* su = in_unknown.data() + i * words + w0;
      std::uint64_t* dv = value_.data() + std::size_t{p.in_slots[i]} * nw;
      std::uint64_t* du = unknown_.data() + std::size_t{p.in_slots[i]} * nw;
      for (std::size_t w = 0; w < nw; ++w) {
        const std::uint64_t m = word_mask(lanes, w0 + w);
        const std::uint64_t u = su[w] & m;
        dv[w] = sv[w] & ~u & m;
        du[w] = u;
        any_unknown |= u;
      }
    }

    const bool fast = p.fast_path_ok && any_unknown == 0;
    (fast ? p.fast_passes : p.slow_passes)
        .fetch_add(1, std::memory_order_relaxed);
    if (fast)
      run_one_plane(p.instrs, p.operands.data(), value_.data(), nw);
    else
      run_two_plane(p.instrs, p.operands.data(), value_.data(),
                    unknown_.data(), nw);

    // Store outputs, masking dead lanes of the final word to 0/0.  A fast
    // pass never touches the unknown plane; its outputs are all-known by
    // construction.
    for (std::size_t k = 0; k < nout; ++k) {
      const std::uint64_t* sv = value_.data() + std::size_t{p.out_slots[k]} * nw;
      const std::uint64_t* su =
          unknown_.data() + std::size_t{p.out_slots[k]} * nw;
      std::uint64_t* dv = out_value.data() + k * words + w0;
      std::uint64_t* du = out_unknown.data() + k * words + w0;
      for (std::size_t w = 0; w < nw; ++w) {
        const std::uint64_t m = word_mask(lanes, w0 + w);
        dv[w] = sv[w] & m;
        du[w] = fast ? 0 : su[w] & m;
      }
    }
  }
  return Status();
}

bool CompiledEval::settle_fixpoint(std::size_t nw, bool fast,
                                   std::size_t max_iters) {
  const Program& p = *program_;
  std::uint64_t* val = value_.data();
  std::uint64_t* unk = unknown_.data();
  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    if (fast)
      run_one_plane(p.instrs, p.operands.data(), val, nw);
    else
      run_two_plane(p.instrs, p.operands.data(), val, unk, nw);
    if (!p.has_settle_regs) return true;  // edge-triggered only: one pass

    // Stage every level-sensitive update (transparent-latch capture, async
    // reset) before writing any of them: a D tap can alias another
    // register's Q slot through copy-propagation, so the rules must see a
    // consistent pre-update snapshot — exactly the simultaneous semantics
    // the settled event simulator converges to.
    std::uint64_t* tv = seq_tmp_.data();
    std::uint64_t* tu = tv + p.regs.size() * nw;
    for (std::size_t ri = 0; ri < p.regs.size(); ++ri) {
      const SeqReg& r = p.regs[ri];
      if (r.kind != SeqReg::Kind::kLatch && r.kind != SeqReg::Kind::kDffRst)
        continue;
      const std::uint64_t* qv = val + std::size_t{r.q_slot} * nw;
      const std::uint64_t* qu = unk + std::size_t{r.q_slot} * nw;
      const std::uint64_t* dv = val + std::size_t{r.d_slot} * nw;
      const std::uint64_t* du = unk + std::size_t{r.d_slot} * nw;
      const std::uint64_t* cv = val + std::size_t{r.ctl_slot} * nw;
      const std::uint64_t* cu = unk + std::size_t{r.ctl_slot} * nw;
      std::uint64_t* nv = tv + ri * nw;
      std::uint64_t* nu = tu + ri * nw;
      if (r.kind == SeqReg::Kind::kLatch) {
        // Capture where EN is a known 1; hold elsewhere (EN of 0/X/Z all
        // hold, mirroring the behavioural latch exactly).
        if (fast) {
          for (std::size_t w = 0; w < nw; ++w)
            nv[w] = (cv[w] & dv[w]) | (~cv[w] & qv[w]);
        } else {
          for (std::size_t w = 0; w < nw; ++w) {
            const std::uint64_t en1 = cv[w] & ~cu[w];
            nv[w] = (en1 & dv[w]) | (~en1 & qv[w]);
            nu[w] = (en1 & du[w]) | (~en1 & qu[w]);
          }
        }
      } else {
        // Async reset: clear state where RSTn is a known 0 (an unknown
        // RSTn does not reset, mirroring the behavioural DFF exactly).
        if (fast) {
          for (std::size_t w = 0; w < nw; ++w) nv[w] = qv[w] & cv[w];
        } else {
          for (std::size_t w = 0; w < nw; ++w) {
            const std::uint64_t rst0 = ~cv[w] & ~cu[w];
            nv[w] = qv[w] & ~rst0;
            nu[w] = qu[w] & ~rst0;
          }
        }
      }
    }
    std::uint64_t delta = 0;
    for (std::size_t ri = 0; ri < p.regs.size(); ++ri) {
      const SeqReg& r = p.regs[ri];
      if (r.kind != SeqReg::Kind::kLatch && r.kind != SeqReg::Kind::kDffRst)
        continue;
      std::uint64_t* qv = val + std::size_t{r.q_slot} * nw;
      std::uint64_t* qu = unk + std::size_t{r.q_slot} * nw;
      const std::uint64_t* nv = tv + ri * nw;
      const std::uint64_t* nu = tu + ri * nw;
      for (std::size_t w = 0; w < nw; ++w) {
        delta |= qv[w] ^ nv[w];
        qv[w] = nv[w];
      }
      if (!fast)
        for (std::size_t w = 0; w < nw; ++w) {
          delta |= qu[w] ^ nu[w];
          qu[w] = nu[w];
        }
    }
    if (delta == 0) return true;
  }
  return false;
}

Status CompiledEval::run_cycles(std::span<const std::uint64_t> in_value,
                                std::span<const std::uint64_t> in_unknown,
                                std::span<std::uint64_t> out_value,
                                std::span<std::uint64_t> out_unknown,
                                std::size_t cycles, std::size_t lanes,
                                bool reset) {
  const Program& p = *program_;
  const std::size_t nin = p.n_public_in;
  const std::size_t nout = p.n_public_out;
  if (cycles < 1)
    return Status::invalid_argument("run_cycles: cycles must be >= 1");
  if (lanes < 1)
    return Status::invalid_argument("run_cycles: lanes must be >= 1");
  const std::size_t words =
      (lanes + Evaluator::kBatchLanes - 1) / Evaluator::kBatchLanes;
  if (in_value.size() != nin * cycles * words ||
      in_unknown.size() != nin * cycles * words ||
      out_value.size() != nout * cycles * words ||
      out_unknown.size() != nout * cycles * words)
    return Status::invalid_argument(
        "run_cycles: " + std::to_string(lanes) + " lanes over " +
        std::to_string(cycles) + " cycles expect " +
        std::to_string(nin * cycles * words) + " input and " +
        std::to_string(nout * cycles * words) +
        " output plane words per plane");
  if (!reset && scratch_words_ != words)
    return Status::failed_precondition(
        "run_cycles: reset=false continues from carried register state, "
        "which lives at the previous call's lane width (" +
        std::to_string(scratch_words_) + " plane words, got " +
        std::to_string(words) + ")");

  const auto W = static_cast<std::size_t>(p.wide_words);
  seq_tmp_.resize(2 * p.regs.size() * W);
  // Latch chains propagate one stage per fixpoint iteration (each iteration
  // re-runs the whole combinational program), so any converging
  // arrangement settles within the register count; the margin keeps tiny
  // programs from tripping on reset transients.
  const std::size_t max_iters = p.regs.size() + 8;

  for (std::size_t w0 = 0; w0 < words; w0 += W) {
    const std::size_t nw = std::min(W, words - w0);
    ensure_scratch(nw);
    // Each pass group carries its own independent register files in the
    // state slots; reset=false is single-group by the width check above.
    if (reset) reset_state();
    for (std::size_t c = 0; c < cycles; ++c) {
      // Load cycle c's inputs (canonicalized, dead lanes forced to 0/0).
      std::uint64_t any_unknown = 0;
      for (std::size_t i = 0; i < nin; ++i) {
        const std::uint64_t* sv = in_value.data() + (c * nin + i) * words + w0;
        const std::uint64_t* su =
            in_unknown.data() + (c * nin + i) * words + w0;
        std::uint64_t* dv = value_.data() + std::size_t{p.in_slots[i]} * nw;
        std::uint64_t* du = unknown_.data() + std::size_t{p.in_slots[i]} * nw;
        for (std::size_t w = 0; w < nw; ++w) {
          const std::uint64_t m = word_mask(lanes, w0 + w);
          const std::uint64_t u = su[w] & m;
          dv[w] = sv[w] & ~u & m;
          du[w] = u;
          any_unknown |= u;
        }
      }
      // Fast cycles need the register state known too: behavioural state
      // starts at X, so the first cycles of a batch run two-plane until
      // every register has captured a binary value.
      // Dead lanes are excluded: reset parks them at X (whole-word
      // broadcast) and a latch holds that X forever, which must not pin
      // live all-known lanes onto the two-plane kernel.
      std::uint64_t state_unknown = 0;
      for (const SeqReg& r : p.regs) {
        const std::uint64_t* qu =
            unknown_.data() + std::size_t{r.q_slot} * nw;
        for (std::size_t w = 0; w < nw; ++w)
          state_unknown |= qu[w] & word_mask(lanes, w0 + w);
      }
      const bool fast =
          p.fast_path_ok && any_unknown == 0 && state_unknown == 0;
      p.cycles_run.fetch_add(1, std::memory_order_relaxed);
      if (fast) p.fast_cycle_passes.fetch_add(1, std::memory_order_relaxed);

      // Settle the combinational program with the pre-edge state.
      if (!settle_fixpoint(nw, fast, max_iters))
        return Status::resource_exhausted(
            "run_cycles: level-sensitive feedback failed to settle after " +
            std::to_string(max_iters) + " iterations (oscillation?)");

      // Sample outputs pre-edge, masking dead lanes to 0/0.
      for (std::size_t k = 0; k < nout; ++k) {
        const std::uint64_t* sv =
            value_.data() + std::size_t{p.out_slots[k]} * nw;
        const std::uint64_t* su =
            unknown_.data() + std::size_t{p.out_slots[k]} * nw;
        std::uint64_t* dv = out_value.data() + (c * nout + k) * words + w0;
        std::uint64_t* du = out_unknown.data() + (c * nout + k) * words + w0;
        for (std::size_t w = 0; w < nw; ++w) {
          const std::uint64_t m = word_mask(lanes, w0 + w);
          dv[w] = sv[w] & m;
          du[w] = fast ? 0 : su[w] & m;
        }
      }

      // Clock edge: every edge-triggered register commits its settled D
      // simultaneously (two-phase through seq_tmp_, since a D tap can alias
      // another register's Q slot).  A non-binary D captures X; a known-0
      // RSTn overrides the capture with 0, an unknown RSTn does not.
      if (p.n_edge_regs != 0) {
        std::uint64_t* tv = seq_tmp_.data();
        std::uint64_t* tu = tv + p.regs.size() * nw;
        for (std::size_t ri = 0; ri < p.regs.size(); ++ri) {
          const SeqReg& r = p.regs[ri];
          if (r.kind == SeqReg::Kind::kLatch) continue;
          const std::uint64_t* dvs =
              value_.data() + std::size_t{r.d_slot} * nw;
          const std::uint64_t* dus =
              unknown_.data() + std::size_t{r.d_slot} * nw;
          std::uint64_t* nv = tv + ri * nw;
          std::uint64_t* nu = tu + ri * nw;
          if (r.kind == SeqReg::Kind::kDffRst) {
            const std::uint64_t* cv =
                value_.data() + std::size_t{r.ctl_slot} * nw;
            const std::uint64_t* cu =
                unknown_.data() + std::size_t{r.ctl_slot} * nw;
            if (fast) {
              for (std::size_t w = 0; w < nw; ++w) nv[w] = dvs[w] & cv[w];
            } else {
              for (std::size_t w = 0; w < nw; ++w) {
                const std::uint64_t rst0 = ~cv[w] & ~cu[w];
                nv[w] = dvs[w] & ~rst0;
                nu[w] = dus[w] & ~rst0;
              }
            }
          } else if (fast) {
            for (std::size_t w = 0; w < nw; ++w) nv[w] = dvs[w];
          } else {
            for (std::size_t w = 0; w < nw; ++w) {
              nv[w] = dvs[w];
              nu[w] = dus[w];
            }
          }
        }
        std::uint64_t edge_delta = 0;
        for (std::size_t ri = 0; ri < p.regs.size(); ++ri) {
          const SeqReg& r = p.regs[ri];
          if (r.kind == SeqReg::Kind::kLatch) continue;
          std::uint64_t* qv = value_.data() + std::size_t{r.q_slot} * nw;
          std::uint64_t* qu = unknown_.data() + std::size_t{r.q_slot} * nw;
          const std::uint64_t* nv = tv + ri * nw;
          const std::uint64_t* nu = tu + ri * nw;
          for (std::size_t w = 0; w < nw; ++w) {
            edge_delta |= qv[w] ^ nv[w];
            qv[w] = nv[w];
          }
          if (!fast)
            for (std::size_t w = 0; w < nw; ++w) {
              edge_delta |= qu[w] ^ nu[w];
              qu[w] = nu[w];
            }
        }
        p.state_commits.fetch_add(p.n_edge_regs, std::memory_order_relaxed);

        // Post-edge settle: the committed state must reach still-open
        // latches and Q-dependent async resets *before* the next cycle's
        // inputs can close them — the event simulator propagates the edge
        // under cycle-c inputs, so the compiled engine must too.
        if (edge_delta != 0 && p.has_settle_regs &&
            !settle_fixpoint(nw, fast, max_iters))
          return Status::resource_exhausted(
              "run_cycles: post-edge feedback failed to settle after " +
              std::to_string(max_iters) + " iterations (oscillation?)");
      }
    }
  }
  return Status();
}

Status CompiledEval::eval_packed(std::span<const PackedBits> inputs,
                                 std::span<PackedBits> outputs, int lanes) {
  if (program_->is_sequential)
    return Status::failed_precondition(
        "eval_packed: sequential program (register state needs a cycle "
        "protocol) — use run_cycles");
  if (lanes < 1 || lanes > kBatchLanes)
    return Status::invalid_argument(lanes_range_message("eval_packed"));
  const std::size_t nin = program_->in_slots.size();
  const std::size_t nout = program_->out_slots.size();
  if (inputs.size() != nin || outputs.size() != nout)
    return Status::invalid_argument(
        "eval_packed: expected " + std::to_string(nin) + " inputs and " +
        std::to_string(nout) + " outputs");

  // One-word AoS<->SoA shim: with words == 1 the two layouts coincide per
  // signal, so staging is a flat copy into the wide entry point.
  shim_.resize(2 * (nin + nout));
  std::uint64_t* iv = shim_.data();
  std::uint64_t* iu = iv + nin;
  std::uint64_t* ov = iu + nin;
  std::uint64_t* ou = ov + nout;
  for (std::size_t i = 0; i < nin; ++i) {
    iv[i] = inputs[i].value;
    iu[i] = inputs[i].unknown;
  }
  if (Status s = eval_wide({iv, nin}, {iu, nin}, {ov, nout}, {ou, nout},
                           static_cast<std::size_t>(lanes));
      !s.ok())
    return s;
  for (std::size_t k = 0; k < nout; ++k) outputs[k] = {ov[k], ou[k]};
  return Status();
}

std::size_t CompiledEval::preferred_words() const noexcept {
  return static_cast<std::size_t>(program_->wide_words);
}

bool CompiledEval::fast_path_available() const noexcept {
  return program_->fast_path_ok;
}

CompiledEval::KernelStats CompiledEval::kernel_stats() const noexcept {
  KernelStats total{program_->fast_passes.load(std::memory_order_relaxed),
                    program_->slow_passes.load(std::memory_order_relaxed),
                    program_->cycles_run.load(std::memory_order_relaxed),
                    program_->state_commits.load(std::memory_order_relaxed),
                    program_->fast_cycle_passes.load(std::memory_order_relaxed)};
  // A modal engine's sweep runs one image per mode; the counters of every
  // mode's shared program roll up into one view.
  for (const auto& sub : modal_) {
    const KernelStats s = sub->kernel_stats();
    total.fast_passes += s.fast_passes;
    total.slow_passes += s.slow_passes;
    total.cycles_run += s.cycles_run;
    total.state_commits += s.state_commits;
    total.fast_cycle_passes += s.fast_cycle_passes;
  }
  return total;
}

// ---------------------------------------------------------------------------
// EventEval
// ---------------------------------------------------------------------------

EventEval::EventEval(std::vector<NetId> in_nets, std::vector<NetId> out_nets,
                     std::uint64_t budget)
    : in_nets_(std::move(in_nets)),
      out_nets_(std::move(out_nets)),
      budget_(budget) {}

Result<EventEval> EventEval::create(const Circuit& circuit,
                                    std::vector<NetId> in_nets,
                                    std::vector<NetId> out_nets,
                                    std::uint64_t max_events_per_vector,
                                    std::vector<ExternalReg> regs) {
  for (NetId n : in_nets) {
    if (n >= circuit.net_count())
      return Status::invalid_argument("EventEval: input net out of range");
    if (!circuit.is_input(n))
      return Status::invalid_argument("EventEval: net " +
                                      net_label(circuit, n) +
                                      " is not a primary input");
  }
  for (NetId n : out_nets)
    if (n >= circuit.net_count())
      return Status::invalid_argument("EventEval: output net out of range");
  for (const ExternalReg& r : regs) {
    if (r.q >= circuit.net_count() || r.d >= circuit.net_count())
      return Status::invalid_argument(
          "EventEval: external register net out of range");
    if (!circuit.is_input(r.q))
      return Status::invalid_argument("EventEval: external register Q net " +
                                      net_label(circuit, r.q) +
                                      " is not a primary input");
  }
  auto sim = Simulator::create(circuit);
  if (!sim.ok()) return sim.status();
  EventEval ev(std::move(in_nets), std::move(out_nets),
               max_events_per_vector);
  ev.sim_.emplace(std::move(*sim));
  ev.circuit_ = &circuit;
  ev.regs_ = std::move(regs);
  // Discover the clock domain: every DFF CLK net, deduplicated.  The
  // preamble below arms each edge detector (the construction kick-start
  // leaves prev_clk at Z, so a first rising edge would not register) and
  // parks the external register pads at their reset value, giving
  // run_cycles the same base state as a freshly reset compiled engine.
  for (const Gate& g : circuit.gates())
    if (g.kind == GateKind::kDff) ev.clock_nets_.push_back(g.inputs[1]);
  std::sort(ev.clock_nets_.begin(), ev.clock_nets_.end());
  ev.clock_nets_.erase(
      std::unique(ev.clock_nets_.begin(), ev.clock_nets_.end()),
      ev.clock_nets_.end());
  for (NetId clk : ev.clock_nets_)
    if (circuit.is_input(clk)) ev.sim_->set_input(clk, Logic::k0);
  for (const ExternalReg& r : ev.regs_) ev.sim_->set_input(r.q, r.reset);
  // Latch-enable-driving inputs go first at each cycle: when an enable
  // falls in the same cycle a data input changes, the settled semantics
  // ("hold the previous cycle's value") require the enable to close before
  // the new data can race through a directly wired D pin.
  std::vector<char> drives_en(ev.in_nets_.size(), 0);
  for (const Gate& g : circuit.gates())
    if (g.kind == GateKind::kLatch)
      for (std::size_t j = 0; j < ev.in_nets_.size(); ++j)
        if (ev.in_nets_[j] == g.inputs[1]) drives_en[j] = 1;
  for (std::size_t j = 0; j < ev.in_nets_.size(); ++j)
    if (drives_en[j]) ev.en_first_.push_back(j);
  for (std::size_t j = 0; j < ev.in_nets_.size(); ++j)
    if (!drives_en[j]) ev.en_first_.push_back(j);
  if (!ev.sim_->settle())
    return Status::resource_exhausted("EventEval: base state never settled");
  return ev;
}

Status EventEval::run_cycles(std::span<const std::uint64_t> in_value,
                             std::span<const std::uint64_t> in_unknown,
                             std::span<std::uint64_t> out_value,
                             std::span<std::uint64_t> out_unknown,
                             std::size_t cycles, std::size_t lanes,
                             bool reset) {
  if (!reset)
    return Status::failed_precondition(
        "EventEval::run_cycles: carrying state across calls is not "
        "supported (lane simulators are rebuilt from the base per call)");
  if (cycles < 1)
    return Status::invalid_argument("run_cycles: cycles must be >= 1");
  if (lanes < 1)
    return Status::invalid_argument("run_cycles: lanes must be >= 1");
  const std::size_t nin = in_nets_.size();
  const std::size_t nout = out_nets_.size();
  const std::size_t words = (lanes + kBatchLanes - 1) / kBatchLanes;
  if (in_value.size() != nin * cycles * words ||
      in_unknown.size() != nin * cycles * words ||
      out_value.size() != nout * cycles * words ||
      out_unknown.size() != nout * cycles * words)
    return Status::invalid_argument(
        "run_cycles: " + std::to_string(lanes) + " lanes over " +
        std::to_string(cycles) + " cycles expect " +
        std::to_string(nin * cycles * words) + " input and " +
        std::to_string(nout * cycles * words) +
        " output plane words per plane");
  // The same implicit-clock contract as the compiled engine: run_cycles
  // models clocks only as "all pulse once per cycle", so a clock that is
  // gate-driven, not a primary input, or doubles as a bound data input
  // cannot be expressed (full timing simulation via the Simulator API can).
  for (NetId clk : clock_nets_) {
    if (!circuit_->is_input(clk))
      return Status::failed_precondition(
          "EventEval::run_cycles: DFF clock net " +
          net_label(*circuit_, clk) + " is not a primary input");
    for (NetId n : in_nets_)
      if (n == clk)
        return Status::failed_precondition(
            "EventEval::run_cycles: clock net " + net_label(*circuit_, clk) +
            " must not be bound as a data input");
  }
  if (!clock_nets_.empty()) {
    std::vector<char> is_clock(circuit_->net_count(), 0);
    for (NetId clk : clock_nets_) is_clock[clk] = 1;
    for (const Gate& g : circuit_->gates())
      if (is_clock[g.output])
        return Status::failed_precondition(
            "EventEval::run_cycles: clock net " +
            net_label(*circuit_, g.output) + " is gate-driven (gated clock)");
  }

  std::fill(out_value.begin(), out_value.end(), 0);
  std::fill(out_unknown.begin(), out_unknown.end(), 0);
  std::vector<Logic> captured(regs_.size());
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const std::size_t word = lane / kBatchLanes;
    const std::uint64_t bit = std::uint64_t{1} << (lane % kBatchLanes);
    // Each lane runs on a private copy of the settled, preamble-armed base.
    Simulator sim(*sim_);
    for (std::size_t c = 0; c < cycles; ++c) {
      for (const std::size_t i : en_first_) {
        const std::size_t ofs = (c * nin + i) * words + word;
        const Logic v = (in_unknown[ofs] & bit)
                            ? Logic::kX
                            : ((in_value[ofs] & bit) ? Logic::k1 : Logic::k0);
        sim.set_input(in_nets_[i], v);
      }
      if (!sim.settle(budget_))
        return Status::resource_exhausted(
            "EventEval: event budget exhausted (oscillation?)");
      for (std::size_t k = 0; k < nout; ++k) {
        const Logic v = sim.value(out_nets_[k]);
        const std::size_t ofs = (c * nout + k) * words + word;
        if (v == Logic::k1) out_value[ofs] |= bit;
        else if (v != Logic::k0) out_unknown[ofs] |= bit;
      }
      // Clock edge.  External D values are captured pre-edge; the clock
      // events are scheduled *before* the pad updates so a DFF whose D is
      // wired straight to a pad still captures the pre-edge value (events
      // at one timestamp apply in insertion order).
      for (std::size_t r = 0; r < regs_.size(); ++r) {
        const Logic d = sim.value(regs_[r].d);
        captured[r] = is_binary(d) ? d : Logic::kX;
      }
      for (NetId clk : clock_nets_) sim.set_input(clk, Logic::k1);
      for (std::size_t r = 0; r < regs_.size(); ++r)
        sim.set_input(regs_[r].q, captured[r]);
      if (!sim.settle(budget_))
        return Status::resource_exhausted(
            "EventEval: event budget exhausted (oscillation?)");
      for (NetId clk : clock_nets_) sim.set_input(clk, Logic::k0);
      if (!sim.settle(budget_))
        return Status::resource_exhausted(
            "EventEval: event budget exhausted (oscillation?)");
    }
  }
  return Status();
}

std::unique_ptr<Evaluator> EventEval::clone() const {
  return std::unique_ptr<Evaluator>(new EventEval(*this));
}

Status EventEval::eval_packed(std::span<const PackedBits> inputs,
                              std::span<PackedBits> outputs, int lanes) {
  if (lanes < 1 || lanes > kBatchLanes)
    return Status::invalid_argument(lanes_range_message("eval_packed"));
  if (inputs.size() != in_nets_.size() || outputs.size() != out_nets_.size())
    return Status::invalid_argument(
        "eval_packed: expected " + std::to_string(in_nets_.size()) +
        " inputs and " + std::to_string(out_nets_.size()) + " outputs");
  for (PackedBits& p : outputs) p = {};
  for (int lane = 0; lane < lanes; ++lane) {
    for (std::size_t j = 0; j < in_nets_.size(); ++j)
      sim_->set_input(in_nets_[j], get_lane(inputs[j], lane));
    if (!sim_->settle(budget_))
      return Status::resource_exhausted(
          "EventEval: event budget exhausted (oscillation?)");
    for (std::size_t k = 0; k < out_nets_.size(); ++k)
      set_lane(outputs[k], lane, sim_->value(out_nets_[k]));
  }
  return Status();
}

}  // namespace pp::sim
