#include "sim/evaluator.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <utility>

namespace pp::sim {

namespace {

/// "eval_*: lanes must be 1..N" with N derived from the batch constant.
[[nodiscard]] std::string lanes_range_message(const char* fn) {
  return std::string(fn) + ": lanes must be 1.." +
         std::to_string(Evaluator::kBatchLanes);
}

/// Meaningful lanes of plane word `word` when `lanes` lanes are live in
/// total (always full except possibly the final word).
[[nodiscard]] constexpr std::size_t lanes_in_word(std::size_t lanes,
                                                  std::size_t word) noexcept {
  const std::size_t lane0 = word * Evaluator::kBatchLanes;
  return std::min<std::size_t>(Evaluator::kBatchLanes, lanes - lane0);
}

/// Bit mask selecting the meaningful lanes of plane word `word`.
[[nodiscard]] constexpr std::uint64_t word_mask(std::size_t lanes,
                                                std::size_t word) noexcept {
  const std::size_t n = lanes_in_word(lanes, word);
  return n >= static_cast<std::size_t>(Evaluator::kBatchLanes)
             ? ~std::uint64_t{0}
             : (std::uint64_t{1} << n) - 1;
}

/// Shared span-shape validation for eval_wide implementations.
[[nodiscard]] Status check_wide_shape(std::size_t nin, std::size_t nout,
                                      std::size_t in_value, std::size_t in_unknown,
                                      std::size_t out_value,
                                      std::size_t out_unknown,
                                      std::size_t lanes, std::size_t& words) {
  if (lanes < 1)
    return Status::invalid_argument("eval_wide: lanes must be >= 1");
  words = (lanes + Evaluator::kBatchLanes - 1) / Evaluator::kBatchLanes;
  if (in_value != nin * words || in_unknown != nin * words ||
      out_value != nout * words || out_unknown != nout * words)
    return Status::invalid_argument(
        "eval_wide: " + std::to_string(lanes) + " lanes span " +
        std::to_string(words) + " words, so expected " +
        std::to_string(nin * words) + " input and " +
        std::to_string(nout * words) +
        " output plane words per plane (value/unknown)");
  return Status();
}

}  // namespace

// ---------------------------------------------------------------------------
// Evaluator: base wide-batch adapter
// ---------------------------------------------------------------------------

Status Evaluator::eval_wide(std::span<const std::uint64_t> in_value,
                            std::span<const std::uint64_t> in_unknown,
                            std::span<std::uint64_t> out_value,
                            std::span<std::uint64_t> out_unknown,
                            std::size_t lanes) {
  const std::size_t nin = input_count();
  const std::size_t nout = output_count();
  std::size_t words = 0;
  if (Status s = check_wide_shape(nin, nout, in_value.size(), in_unknown.size(),
                                  out_value.size(), out_unknown.size(), lanes,
                                  words);
      !s.ok())
    return s;
  // Word-at-a-time adapter over eval_packed: correct for any engine, and
  // exactly the lane-at-a-time behaviour EventEval wants behind the wide
  // interface.
  std::vector<PackedBits> in(nin), out(nout);
  for (std::size_t w = 0; w < words; ++w) {
    for (std::size_t i = 0; i < nin; ++i)
      in[i] = {in_value[i * words + w], in_unknown[i * words + w]};
    if (Status s =
            eval_packed(in, out, static_cast<int>(lanes_in_word(lanes, w)));
        !s.ok())
      return s;
    for (std::size_t k = 0; k < nout; ++k) {
      out_value[k * words + w] = out[k].value;
      out_unknown[k * words + w] = out[k].unknown;
    }
  }
  return Status();
}

// ---------------------------------------------------------------------------
// Levelization
// ---------------------------------------------------------------------------

namespace {

[[nodiscard]] std::string net_label(const Circuit& c, NetId n) {
  const std::string& name = c.net_name(n);
  std::string label;
  if (name.empty()) {
    label = '#' + std::to_string(n);
  } else {
    label.reserve(name.size() + 2);
    label += '\'';
    label += name;
    label += '\'';
  }
  return label;
}

}  // namespace

Result<LevelMap> levelize(const Circuit& circuit) {
  const std::size_t ngates = circuit.gate_count();
  const std::size_t nnets = circuit.net_count();

  // net -> driving gates (several when 3-state drivers share the net) and
  // net -> reading gates (one entry per reading pin).
  std::vector<std::vector<GateId>> drivers(nnets);
  for (GateId g = 0; g < ngates; ++g)
    drivers[circuit.gate(g).output].push_back(g);
  std::vector<std::vector<GateId>> readers(nnets);
  std::vector<std::uint32_t> indegree(ngates, 0);
  for (GateId g = 0; g < ngates; ++g)
    for (NetId in : circuit.gate(g).inputs) {
      readers[in].push_back(g);
      indegree[g] += static_cast<std::uint32_t>(drivers[in].size());
    }

  // Kahn's algorithm over driver->reader edges.  A gate's level is one above
  // its deepest input driver, so the FIFO pop order is already topological.
  LevelMap lm;
  lm.gate_level.assign(ngates, 0);
  lm.order.reserve(ngates);
  std::vector<GateId> ready;
  for (GateId g = 0; g < ngates; ++g)
    if (indegree[g] == 0) ready.push_back(g);
  for (std::size_t head = 0; head < ready.size(); ++head) {
    const GateId g = ready[head];
    lm.order.push_back(g);
    std::uint32_t level = 0;
    for (NetId in : circuit.gate(g).inputs)
      for (GateId d : drivers[in])
        level = std::max(level, lm.gate_level[d] + 1);
    lm.gate_level[g] = level;
    lm.max_level = std::max(lm.max_level, level);
    for (GateId r : readers[circuit.gate(g).output])
      if (--indegree[r] == 0) ready.push_back(r);
  }

  if (lm.order.size() != ngates) {
    for (GateId g = 0; g < ngates; ++g)
      if (indegree[g] != 0)
        return Status::failed_precondition(
            "levelize: combinational cycle through net " +
            net_label(circuit, circuit.gate(g).output));
  }
  return lm;
}

// ---------------------------------------------------------------------------
// CompiledEval
// ---------------------------------------------------------------------------

namespace {

enum class Op : std::uint8_t {
  kBuf,
  kNot,
  // Variadic forms (nin operands via the operand table).
  kAnd,
  kNand,
  kOr,
  kNor,
  kXor,
  kXnor,
  // Fixed-arity specializations: the platform compiler decomposes to <= 3
  // inputs, so nearly every emitted gate lands on one of these.  The
  // kernels unroll them without the variadic operand loop.
  kAnd2,
  kNand2,
  kOr2,
  kNor2,
  kXor2,
  kXnor2,
  kAnd3,
  kNand3,
  kOr3,
  kNor3,
  kXor3,
  kXnor3,
  kResolve,  ///< wired-and over always-driving sources: agree or X
};

/// Fixed-arity variant of a variadic op, when one exists for this arity.
[[nodiscard]] Op specialize_arity(Op op, std::size_t nin) noexcept {
  if (nin == 2) {
    switch (op) {
      case Op::kAnd: return Op::kAnd2;
      case Op::kNand: return Op::kNand2;
      case Op::kOr: return Op::kOr2;
      case Op::kNor: return Op::kNor2;
      case Op::kXor: return Op::kXor2;
      case Op::kXnor: return Op::kXnor2;
      default: return op;
    }
  }
  if (nin == 3) {
    switch (op) {
      case Op::kAnd: return Op::kAnd3;
      case Op::kNand: return Op::kNand3;
      case Op::kOr: return Op::kOr3;
      case Op::kNor: return Op::kNor3;
      case Op::kXor: return Op::kXor3;
      case Op::kXnor: return Op::kXnor3;
      default: return op;
    }
  }
  return op;
}

struct Instr {
  Op op;
  std::uint32_t nin;
  std::uint32_t in_ofs;  ///< first operand index in Program::operands
  std::uint32_t out;     ///< destination slot
};

constexpr std::uint32_t kNoSlot = 0xffff'ffffu;

[[nodiscard]] PackedBits broadcast(Logic v) noexcept {
  switch (v) {
    case Logic::k0: return {0, 0};
    case Logic::k1: return {~std::uint64_t{0}, 0};
    case Logic::kZ:
    case Logic::kX: break;
  }
  return {0, ~std::uint64_t{0}};
}

/// Scalar settled value of a non-3-state combinational gate, mirroring
/// Simulator::compute_gate exactly (Z inputs behave as X).
[[nodiscard]] Logic fold_gate(GateKind kind, std::span<const Logic> ins) {
  switch (kind) {
    case GateKind::kNand: return nand_of(ins);
    case GateKind::kAnd: return and_of(ins);
    case GateKind::kOr: return or_of(ins);
    case GateKind::kNor: return not_of(or_of(ins));
    case GateKind::kXor: return xor_of(ins);
    case GateKind::kXnor: return not_of(xor_of(ins));
    case GateKind::kNot: return not_of(ins[0]);
    case GateKind::kBuf:
    case GateKind::kDelay: return is_binary(ins[0]) ? ins[0] : Logic::kX;
    case GateKind::kConst0: return Logic::k0;
    case GateKind::kConst1: return Logic::k1;
    default: return Logic::kX;
  }
}

/// True when `lm` verifiably belongs to this circuit: `order` is a
/// permutation of all gates in which every driver of every input net of a
/// gate precedes that gate (the invariant the classification pass depends
/// on), and `gate_level`/`max_level` match what that order implies.  Guards
/// against a stale LevelMap (e.g. recorded for a differently configured
/// fabric of the same size).
[[nodiscard]] bool levels_fit_circuit(
    const Circuit& c, const std::vector<std::vector<GateId>>& drivers,
    const LevelMap& lm) {
  const std::size_t ngates = c.gate_count();
  if (lm.gate_level.size() != ngates || lm.order.size() != ngates)
    return false;
  std::vector<char> done(ngates, 0);
  std::uint32_t max_seen = 0;
  for (GateId g : lm.order) {
    if (g >= ngates || done[g]) return false;
    std::uint32_t level = 0;
    for (NetId in : c.gate(g).inputs)
      for (GateId d : drivers[in]) {
        if (!done[d]) return false;
        level = std::max(level, lm.gate_level[d] + 1);
      }
    if (lm.gate_level[g] != level) return false;
    max_seen = std::max(max_seen, level);
    done[g] = 1;
  }
  return max_seen == lm.max_level;
}

[[nodiscard]] Op op_for(GateKind kind) {
  switch (kind) {
    case GateKind::kNand: return Op::kNand;
    case GateKind::kAnd: return Op::kAnd;
    case GateKind::kOr: return Op::kOr;
    case GateKind::kNor: return Op::kNor;
    case GateKind::kXor: return Op::kXor;
    case GateKind::kXnor: return Op::kXnor;
    case GateKind::kNot: return Op::kNot;
    default: return Op::kBuf;  // kBuf / kDelay (transport delay is identity
                               // once settled)
  }
}

}  // namespace

struct CompiledEval::Program {
  std::vector<Instr> instrs;
  std::vector<std::uint32_t> operands;
  std::vector<PackedBits> init;          ///< initial slot image (constants)
  std::vector<std::uint32_t> in_slots;   ///< per bound input net
  std::vector<std::uint32_t> out_slots;  ///< per bound output net
  /// Slots no instruction or input load ever writes — the constants whose
  /// init image must be re-broadcast when the scratch stride changes.
  std::vector<std::uint32_t> const_slots;
  std::uint32_t levels = 0;
  int wide_words = kDefaultWideWords;  ///< scratch width W (words per slot)
  bool fast_path_ok = false;  ///< single-plane kernel exact for known inputs
  // Pass accounting lives on the shared program so every clone of one
  // compilation aggregates into the same counters (relaxed: they are pure
  // statistics, one increment per >=64-lane pass).
  mutable std::atomic<std::uint64_t> fast_passes{0};
  mutable std::atomic<std::uint64_t> slow_passes{0};
};

namespace {

/// Level-major slot renumbering: slots are renamed in first-use order of
/// the emitted program (inputs, then each instruction's operands and
/// destination, then the outputs), so consecutive instructions touch
/// nearby scratch and slots orphaned by copy-propagation are dropped.
/// Mutates every slot reference in place; `init` shrinks to the live set.
void renumber_slots(std::vector<Instr>& instrs,
                    std::vector<std::uint32_t>& operands,
                    std::vector<PackedBits>& init,
                    std::vector<std::uint32_t>& in_slots,
                    std::vector<std::uint32_t>& out_slots) {
  std::vector<std::uint32_t> remap(init.size(), kNoSlot);
  std::vector<PackedBits> packed;
  packed.reserve(init.size());
  auto touch = [&](std::uint32_t s) {
    if (remap[s] == kNoSlot) {
      remap[s] = static_cast<std::uint32_t>(packed.size());
      packed.push_back(init[s]);
    }
    return remap[s];
  };
  for (std::uint32_t& s : in_slots) s = touch(s);
  for (Instr& it : instrs) {
    for (std::uint32_t j = 0; j < it.nin; ++j) {
      std::uint32_t& o = operands[it.in_ofs + j];
      o = touch(o);
    }
    it.out = touch(it.out);
  }
  for (std::uint32_t& s : out_slots) s = touch(s);
  init = std::move(packed);
}

}  // namespace

CompiledEval::CompiledEval(std::shared_ptr<const Program> program)
    : program_(std::move(program)) {
  // Capacity is fixed at W words per slot for the engine's lifetime; only
  // the live stride (scratch_words_) changes between passes.
  const auto W = static_cast<std::size_t>(program_->wide_words);
  value_.assign(program_->init.size() * W, 0);
  unknown_.assign(program_->init.size() * W, 0);
  ensure_scratch(W);
}

void CompiledEval::ensure_scratch(std::size_t words) {
  if (scratch_words_ == words) return;
  scratch_words_ = words;
  // A stride switch (a partial final pass, or eval_packed after a wide
  // call) only needs the constant slots re-broadcast at the new stride:
  // every other slot is written — at this stride — before it is read in
  // every pass, so no zeroing or reallocation happens on the hot path.
  for (const std::uint32_t s : program_->const_slots) {
    const PackedBits p = program_->init[s];
    for (std::size_t w = 0; w < words; ++w) {
      value_[std::size_t{s} * words + w] = p.value;
      unknown_[std::size_t{s} * words + w] = p.unknown;
    }
  }
}

std::size_t CompiledEval::input_count() const noexcept {
  return program_->in_slots.size();
}
std::size_t CompiledEval::output_count() const noexcept {
  return program_->out_slots.size();
}
std::size_t CompiledEval::instruction_count() const noexcept {
  return program_->instrs.size();
}
std::uint32_t CompiledEval::level_count() const noexcept {
  return program_->levels;
}

std::unique_ptr<Evaluator> CompiledEval::clone() const {
  return std::unique_ptr<Evaluator>(new CompiledEval(program_));
}

Result<CompiledEval> CompiledEval::compile(const Circuit& circuit,
                                           std::vector<NetId> in_nets,
                                           std::vector<NetId> out_nets,
                                           const LevelMap* levels) {
  return compile(circuit, std::move(in_nets), std::move(out_nets), levels,
                 CompileOptions{});
}

Result<CompiledEval> CompiledEval::compile(const Circuit& circuit,
                                           std::vector<NetId> in_nets,
                                           std::vector<NetId> out_nets,
                                           const LevelMap* levels,
                                           const CompileOptions& options) {
  if (options.wide_words < 1)
    return Status::invalid_argument(
        "CompiledEval: wide_words must be >= 1, got " +
        std::to_string(options.wide_words));
  if (const std::string diag = circuit.validate(); !diag.empty())
    return Status::invalid_argument("CompiledEval: invalid circuit:\n" + diag);

  const std::size_t ngates = circuit.gate_count();
  const std::size_t nnets = circuit.net_count();

  for (GateId g = 0; g < ngates; ++g) {
    const GateKind k = circuit.gate(g).kind;
    if (k == GateKind::kDff || k == GateKind::kLatch ||
        k == GateKind::kCElement)
      return Status::failed_precondition(
          std::string("CompiledEval: behavioural state-holding gate (") +
          gate_kind_name(k) + ") needs the event-driven engine");
  }

  std::vector<std::vector<GateId>> drivers(nnets);
  for (GateId g = 0; g < ngates; ++g)
    drivers[circuit.gate(g).output].push_back(g);

  // Levelize, reusing the caller's metadata only when it verifiably fits
  // *this* circuit (the check is O(pins), far cheaper than the sort it
  // skips); anything stale falls back to a fresh levelization, so a reused
  // map can never bypass cycle rejection or break the topo-order invariant
  // the classification pass depends on.
  LevelMap computed;
  const LevelMap* lm = nullptr;
  if (levels && levels_fit_circuit(circuit, drivers, *levels)) {
    lm = levels;
  } else {
    auto lv = levelize(circuit);
    if (!lv.ok()) return lv.status();
    computed = std::move(*lv);
    lm = &computed;
  }

  // Bound-net checks.  Externally driven nets must be pure attachment
  // points: a gate driver alongside the external slot would resolve against
  // a possibly-floating (Z) external value, which two planes cannot express.
  std::vector<char> ext(nnets, 0);
  for (NetId n : in_nets) {
    if (n >= nnets)
      return Status::invalid_argument("CompiledEval: input net out of range");
    if (!circuit.is_input(n))
      return Status::invalid_argument("CompiledEval: net " +
                                      net_label(circuit, n) +
                                      " is not a primary input");
    if (!drivers[n].empty())
      return Status::failed_precondition(
          "CompiledEval: bound input net " + net_label(circuit, n) +
          " is also gate-driven (external/driver resolution)");
    ext[n] = 1;
  }
  for (NetId n : out_nets)
    if (n >= nnets)
      return Status::invalid_argument("CompiledEval: output net out of range");

  // --- Pass A: classify every gate and net in topological order. ----------
  // A gate/net is either a compile-time constant (configuration structure:
  // const rows, released or always-on 3-state drivers, undriven lines) or
  // varying (depends on bound inputs).  Constant folding here is what turns
  // the elaborated fabric's 3-state abutment forest into plain logic.
  struct GateRec {
    bool varying = false;
    Logic cval = Logic::kZ;      // settled driver value when !varying
    Op op = Op::kBuf;            // when varying
    std::vector<NetId> srcs;     // nets read when varying
    std::uint32_t slot = kNoSlot;  // destination slot once emitted
    bool needed = false;
  };
  struct NetRec {
    bool finalized = false;
    bool varying = false;
    Logic cval = Logic::kZ;           // settled value when !varying
    Logic cpart = Logic::kZ;          // constant resolution participant
    std::vector<GateId> vdrivers;     // varying drivers
    std::uint32_t slot = kNoSlot;
    bool needed = false;
  };
  std::vector<GateRec> grec(ngates);
  std::vector<NetRec> nrec(nnets);

  // All of a net's drivers precede any reader in topo order, so a net can be
  // finalized the first time a reader (or the output binding) looks at it.
  auto finalize_net = [&](NetId n) -> NetRec& {
    NetRec& r = nrec[n];
    if (r.finalized) return r;
    r.finalized = true;
    if (ext[n]) {
      r.varying = true;
      return r;
    }
    Logic cpart = Logic::kZ;
    for (GateId d : drivers[n]) {
      if (grec[d].varying) r.vdrivers.push_back(d);
      else cpart = resolve(cpart, grec[d].cval);
    }
    if (cpart == Logic::kX || r.vdrivers.empty()) {
      // X from constant contention dominates any varying driver
      // (resolve(X, v) == X); otherwise the net is fully constant
      // (possibly Z: an undriven or all-released line).
      r.cval = cpart;
      r.vdrivers.clear();
      return r;
    }
    r.varying = true;
    r.cpart = cpart;  // kZ (absent) or a binary constant co-driver
    return r;
  };

  for (const GateId g : lm->order) {
    const Gate& gate = circuit.gate(g);
    GateRec& gr = grec[g];

    if (gate.kind == GateKind::kConst0 || gate.kind == GateKind::kConst1) {
      gr.cval = gate.kind == GateKind::kConst1 ? Logic::k1 : Logic::k0;
      continue;
    }

    if (is_tristate(gate.kind)) {
      const NetRec& en = finalize_net(gate.inputs[1]);
      if (en.varying)
        return Status::failed_precondition(
            "CompiledEval: 3-state driver on net " +
            net_label(circuit, gate.output) +
            " has a non-constant enable (dynamic contention is not "
            "representable bit-parallel)");
      if (en.cval == Logic::k0) {
        gr.cval = Logic::kZ;  // released for every vector
        continue;
      }
      if (en.cval != Logic::k1) {
        gr.cval = Logic::kX;  // unknown enable poisons the output
        continue;
      }
      // Always-on driver: plain buffer/inverter of the data input.
      const NetRec& data = finalize_net(gate.inputs[0]);
      const bool invert = gate.kind == GateKind::kTriInv;
      if (!data.varying) {
        gr.cval = invert ? not_of(data.cval)
                         : (is_binary(data.cval) ? data.cval : Logic::kX);
        continue;
      }
      gr.varying = true;
      gr.op = invert ? Op::kNot : Op::kBuf;
      gr.srcs = {gate.inputs[0]};
      continue;
    }

    // Plain combinational gate: fold when every input is constant, shortcut
    // when a dominant constant forces the output, else emit.
    bool all_const = true;
    bool dominated = false;
    Logic dom_val = Logic::kX;
    for (NetId in : gate.inputs) {
      const NetRec& ir = finalize_net(in);
      if (ir.varying) {
        all_const = false;
        continue;
      }
      switch (gate.kind) {
        case GateKind::kNand:
        case GateKind::kAnd:
          if (ir.cval == Logic::k0) {
            dominated = true;
            dom_val = gate.kind == GateKind::kNand ? Logic::k1 : Logic::k0;
          }
          break;
        case GateKind::kOr:
        case GateKind::kNor:
          if (ir.cval == Logic::k1) {
            dominated = true;
            dom_val = gate.kind == GateKind::kOr ? Logic::k1 : Logic::k0;
          }
          break;
        case GateKind::kXor:
        case GateKind::kXnor:
          if (!is_binary(ir.cval)) {
            dominated = true;
            dom_val = Logic::kX;
          }
          break;
        default: break;
      }
    }
    if (dominated) {
      gr.cval = dom_val;
      continue;
    }
    if (all_const) {
      std::vector<Logic> ins;
      ins.reserve(gate.inputs.size());
      for (NetId in : gate.inputs) ins.push_back(nrec[in].cval);
      gr.cval = fold_gate(gate.kind, ins);
      continue;
    }
    gr.varying = true;
    gr.op = op_for(gate.kind);
    gr.srcs.assign(gate.inputs.begin(), gate.inputs.end());
  }
  for (NetId n : out_nets) finalize_net(n);

  // --- Pass B: dead-code elimination. --------------------------------------
  // Only the cone feeding the bound outputs is evaluated; on an elaborated
  // fabric this strips every unconfigured block.
  {
    std::vector<NetId> stack(out_nets.begin(), out_nets.end());
    while (!stack.empty()) {
      const NetId n = stack.back();
      stack.pop_back();
      NetRec& r = nrec[n];
      if (r.needed) continue;
      r.needed = true;
      for (GateId d : r.vdrivers) {
        GateRec& gr = grec[d];
        if (gr.needed) continue;
        gr.needed = true;
        for (NetId src : gr.srcs) stack.push_back(src);
      }
    }
  }

  // --- Pass C: compact slot assignment + instruction emission. -------------
  auto program = std::make_shared<Program>();
  program->levels = lm->max_level + (ngates ? 1 : 0);
  program->wide_words = options.wide_words;
  auto new_slot = [&](PackedBits init) {
    program->init.push_back(init);
    return static_cast<std::uint32_t>(program->init.size() - 1);
  };
  auto net_slot = [&](NetId n) {
    NetRec& r = nrec[n];
    if (r.slot == kNoSlot)
      r.slot = new_slot(r.varying ? PackedBits{} : broadcast(r.cval));
    return r.slot;
  };

  // Inputs get the first slots (even when dead — they are written per batch).
  program->in_slots.reserve(in_nets.size());
  for (NetId n : in_nets) program->in_slots.push_back(net_slot(n));

  std::vector<std::uint32_t> pending(nnets, 0);
  for (NetId n = 0; n < nnets; ++n)
    pending[n] = static_cast<std::uint32_t>(nrec[n].vdrivers.size());

  auto emit = [&](Op op, std::span<const std::uint32_t> operands,
                  std::uint32_t out) {
    const auto ofs = static_cast<std::uint32_t>(program->operands.size());
    program->operands.insert(program->operands.end(), operands.begin(),
                             operands.end());
    program->instrs.push_back(
        {op, static_cast<std::uint32_t>(operands.size()), ofs, out});
  };

  for (const GateId g : lm->order) {
    GateRec& gr = grec[g];
    if (!gr.needed) continue;
    const NetId out = circuit.gate(g).output;
    NetRec& onet = nrec[out];
    const bool multi = onet.vdrivers.size() > 1 || onet.cpart != Logic::kZ;
    std::vector<std::uint32_t> operands;
    operands.reserve(gr.srcs.size());
    for (NetId src : gr.srcs) operands.push_back(net_slot(src));
    if (options.optimize && gr.op == Op::kBuf && operands.size() == 1 &&
        (multi || onet.slot == kNoSlot)) {
      // Copy-propagation: a buffer (or buf-shaped always-on driver) is a
      // slot alias, not an instruction — readers (and the wire-resolution
      // below) pick up the source slot directly.  The packed encoding
      // makes the alias exact: a buffer copies both planes verbatim.
      gr.slot = operands[0];
      if (!multi) onet.slot = gr.slot;
    } else {
      gr.slot = multi ? new_slot({}) : net_slot(out);
      emit(options.optimize ? specialize_arity(gr.op, operands.size())
                            : gr.op,
           operands, gr.slot);
    }
    if (multi && --pending[out] == 0) {
      // All drivers of this net are computed: wire-resolve them (plus the
      // constant co-driver, if any) into the net's slot before any reader.
      std::vector<std::uint32_t> rops;
      rops.reserve(onet.vdrivers.size() + 1);
      for (GateId d : onet.vdrivers) rops.push_back(grec[d].slot);
      if (onet.cpart != Logic::kZ) rops.push_back(new_slot(broadcast(onet.cpart)));
      emit(Op::kResolve, rops, net_slot(out));
    }
  }

  program->out_slots.reserve(out_nets.size());
  for (NetId n : out_nets) program->out_slots.push_back(net_slot(n));

  // --- Pass D: level-major slot renumbering (cache locality). --------------
  if (options.optimize)
    renumber_slots(program->instrs, program->operands, program->init,
                   program->in_slots, program->out_slots);

  // --- Pass E: two-valued fast-path eligibility. ---------------------------
  // The single-plane kernel is exact iff no unknown can appear anywhere in
  // the live cone when the inputs carry none: written slots start 0/0, so
  // the only unknown sources are (a) wired-resolution, which manufactures
  // X from disagreeing binary drivers, and (b) constant-unknown slots
  // (folded undriven/contended nets) read by an instruction or bound as an
  // output.
  if (options.two_valued) {
    bool ok = true;
    for (const Instr& it : program->instrs) {
      if (it.op == Op::kResolve) {
        ok = false;
        break;
      }
      for (std::uint32_t j = 0; j < it.nin && ok; ++j)
        if (program->init[program->operands[it.in_ofs + j]].unknown != 0)
          ok = false;
      if (!ok) break;
    }
    if (ok)
      for (std::uint32_t s : program->out_slots)
        if (program->init[s].unknown != 0) {
          ok = false;
          break;
        }
    program->fast_path_ok = ok;
  }

  // --- Pass F: constant-slot inventory for stride switches. ----------------
  // Slots no input load or instruction writes hold their init image for the
  // engine's lifetime; ensure_scratch re-broadcasts exactly these when the
  // live scratch stride changes (all-zero constants included — a narrower
  // stride re-reads words that belonged to other slots at the wider one).
  {
    std::vector<char> written(program->init.size(), 0);
    for (const std::uint32_t s : program->in_slots) written[s] = 1;
    for (const Instr& it : program->instrs) written[it.out] = 1;
    for (std::uint32_t s = 0; s < program->init.size(); ++s)
      if (!written[s]) program->const_slots.push_back(s);
  }

  return CompiledEval(std::move(program));
}

namespace {

// The wide kernels.  Scratch is structure-of-arrays: slot s's words are
// val[s*nw .. s*nw+nw-1] (and likewise unk), so every case body is a small
// fixed-shape loop over nw words that the compiler can unroll and
// auto-vectorize.  Destination slots are in SSA form (each written by
// exactly one instruction, allocated at emission), so dst never aliases a
// source and the accumulate-in-place pattern below is safe.

/// Two-plane (4-state) kernel: the always-correct interpretation.
void run_two_plane(std::span<const Instr> instrs, const std::uint32_t* ops,
                   std::uint64_t* val, std::uint64_t* unk, std::size_t nw) {
  for (const Instr& it : instrs) {
    const std::uint32_t* o = ops + it.in_ofs;
    std::uint64_t* dv = val + std::size_t{it.out} * nw;
    std::uint64_t* du = unk + std::size_t{it.out} * nw;
    const std::uint64_t* a = val + std::size_t{o[0]} * nw;
    const std::uint64_t* x = unk + std::size_t{o[0]} * nw;
    switch (it.op) {
      case Op::kBuf:
        for (std::size_t w = 0; w < nw; ++w) {
          dv[w] = a[w];
          du[w] = x[w];
        }
        break;
      case Op::kNot:
        for (std::size_t w = 0; w < nw; ++w) {
          dv[w] = ~a[w] & ~x[w];
          du[w] = x[w];
        }
        break;
      case Op::kAnd:
      case Op::kNand: {
        // dv accumulates all1, du accumulates any0 until the finish loop.
        for (std::size_t w = 0; w < nw; ++w) {
          dv[w] = a[w];
          du[w] = ~a[w] & ~x[w];
        }
        for (std::uint32_t j = 1; j < it.nin; ++j) {
          const std::uint64_t* b = val + std::size_t{o[j]} * nw;
          const std::uint64_t* y = unk + std::size_t{o[j]} * nw;
          for (std::size_t w = 0; w < nw; ++w) {
            dv[w] &= b[w];
            du[w] |= ~b[w] & ~y[w];
          }
        }
        if (it.op == Op::kAnd) {
          for (std::size_t w = 0; w < nw; ++w) du[w] = ~(dv[w] | du[w]);
        } else {
          for (std::size_t w = 0; w < nw; ++w) {
            const std::uint64_t all1 = dv[w], any0 = du[w];
            dv[w] = any0;
            du[w] = ~(all1 | any0);
          }
        }
        break;
      }
      case Op::kOr:
      case Op::kNor: {
        // dv accumulates any1, du accumulates all0 until the finish loop.
        for (std::size_t w = 0; w < nw; ++w) {
          dv[w] = a[w];
          du[w] = ~a[w] & ~x[w];
        }
        for (std::uint32_t j = 1; j < it.nin; ++j) {
          const std::uint64_t* b = val + std::size_t{o[j]} * nw;
          const std::uint64_t* y = unk + std::size_t{o[j]} * nw;
          for (std::size_t w = 0; w < nw; ++w) {
            dv[w] |= b[w];
            du[w] &= ~b[w] & ~y[w];
          }
        }
        if (it.op == Op::kOr) {
          for (std::size_t w = 0; w < nw; ++w) du[w] = ~(dv[w] | du[w]);
        } else {
          for (std::size_t w = 0; w < nw; ++w) {
            const std::uint64_t any1 = dv[w], all0 = du[w];
            dv[w] = all0;
            du[w] = ~(any1 | all0);
          }
        }
        break;
      }
      case Op::kXor:
      case Op::kXnor: {
        for (std::size_t w = 0; w < nw; ++w) {
          dv[w] = a[w];
          du[w] = x[w];
        }
        for (std::uint32_t j = 1; j < it.nin; ++j) {
          const std::uint64_t* b = val + std::size_t{o[j]} * nw;
          const std::uint64_t* y = unk + std::size_t{o[j]} * nw;
          for (std::size_t w = 0; w < nw; ++w) {
            dv[w] ^= b[w];
            du[w] |= y[w];
          }
        }
        if (it.op == Op::kXnor) {
          for (std::size_t w = 0; w < nw; ++w) dv[w] = ~dv[w] & ~du[w];
        } else {
          for (std::size_t w = 0; w < nw; ++w) dv[w] &= ~du[w];
        }
        break;
      }
      case Op::kAnd2:
      case Op::kNand2: {
        const std::uint64_t* b = val + std::size_t{o[1]} * nw;
        const std::uint64_t* y = unk + std::size_t{o[1]} * nw;
        if (it.op == Op::kAnd2) {
          for (std::size_t w = 0; w < nw; ++w) {
            const std::uint64_t all1 = a[w] & b[w];
            const std::uint64_t any0 = (~a[w] & ~x[w]) | (~b[w] & ~y[w]);
            dv[w] = all1;
            du[w] = ~(all1 | any0);
          }
        } else {
          for (std::size_t w = 0; w < nw; ++w) {
            const std::uint64_t all1 = a[w] & b[w];
            const std::uint64_t any0 = (~a[w] & ~x[w]) | (~b[w] & ~y[w]);
            dv[w] = any0;
            du[w] = ~(all1 | any0);
          }
        }
        break;
      }
      case Op::kOr2:
      case Op::kNor2: {
        const std::uint64_t* b = val + std::size_t{o[1]} * nw;
        const std::uint64_t* y = unk + std::size_t{o[1]} * nw;
        if (it.op == Op::kOr2) {
          for (std::size_t w = 0; w < nw; ++w) {
            const std::uint64_t any1 = a[w] | b[w];
            const std::uint64_t all0 = ~a[w] & ~x[w] & ~b[w] & ~y[w];
            dv[w] = any1;
            du[w] = ~(any1 | all0);
          }
        } else {
          for (std::size_t w = 0; w < nw; ++w) {
            const std::uint64_t any1 = a[w] | b[w];
            const std::uint64_t all0 = ~a[w] & ~x[w] & ~b[w] & ~y[w];
            dv[w] = all0;
            du[w] = ~(any1 | all0);
          }
        }
        break;
      }
      case Op::kXor2:
      case Op::kXnor2: {
        const std::uint64_t* b = val + std::size_t{o[1]} * nw;
        const std::uint64_t* y = unk + std::size_t{o[1]} * nw;
        if (it.op == Op::kXor2) {
          for (std::size_t w = 0; w < nw; ++w) {
            const std::uint64_t u = x[w] | y[w];
            dv[w] = (a[w] ^ b[w]) & ~u;
            du[w] = u;
          }
        } else {
          for (std::size_t w = 0; w < nw; ++w) {
            const std::uint64_t u = x[w] | y[w];
            dv[w] = ~(a[w] ^ b[w]) & ~u;
            du[w] = u;
          }
        }
        break;
      }
      case Op::kAnd3:
      case Op::kNand3: {
        const std::uint64_t* b = val + std::size_t{o[1]} * nw;
        const std::uint64_t* y = unk + std::size_t{o[1]} * nw;
        const std::uint64_t* c = val + std::size_t{o[2]} * nw;
        const std::uint64_t* z = unk + std::size_t{o[2]} * nw;
        if (it.op == Op::kAnd3) {
          for (std::size_t w = 0; w < nw; ++w) {
            const std::uint64_t all1 = a[w] & b[w] & c[w];
            const std::uint64_t any0 =
                (~a[w] & ~x[w]) | (~b[w] & ~y[w]) | (~c[w] & ~z[w]);
            dv[w] = all1;
            du[w] = ~(all1 | any0);
          }
        } else {
          for (std::size_t w = 0; w < nw; ++w) {
            const std::uint64_t all1 = a[w] & b[w] & c[w];
            const std::uint64_t any0 =
                (~a[w] & ~x[w]) | (~b[w] & ~y[w]) | (~c[w] & ~z[w]);
            dv[w] = any0;
            du[w] = ~(all1 | any0);
          }
        }
        break;
      }
      case Op::kOr3:
      case Op::kNor3: {
        const std::uint64_t* b = val + std::size_t{o[1]} * nw;
        const std::uint64_t* y = unk + std::size_t{o[1]} * nw;
        const std::uint64_t* c = val + std::size_t{o[2]} * nw;
        const std::uint64_t* z = unk + std::size_t{o[2]} * nw;
        if (it.op == Op::kOr3) {
          for (std::size_t w = 0; w < nw; ++w) {
            const std::uint64_t any1 = a[w] | b[w] | c[w];
            const std::uint64_t all0 =
                ~a[w] & ~x[w] & ~b[w] & ~y[w] & ~c[w] & ~z[w];
            dv[w] = any1;
            du[w] = ~(any1 | all0);
          }
        } else {
          for (std::size_t w = 0; w < nw; ++w) {
            const std::uint64_t any1 = a[w] | b[w] | c[w];
            const std::uint64_t all0 =
                ~a[w] & ~x[w] & ~b[w] & ~y[w] & ~c[w] & ~z[w];
            dv[w] = all0;
            du[w] = ~(any1 | all0);
          }
        }
        break;
      }
      case Op::kXor3:
      case Op::kXnor3: {
        const std::uint64_t* b = val + std::size_t{o[1]} * nw;
        const std::uint64_t* y = unk + std::size_t{o[1]} * nw;
        const std::uint64_t* c = val + std::size_t{o[2]} * nw;
        const std::uint64_t* z = unk + std::size_t{o[2]} * nw;
        if (it.op == Op::kXor3) {
          for (std::size_t w = 0; w < nw; ++w) {
            const std::uint64_t u = x[w] | y[w] | z[w];
            dv[w] = (a[w] ^ b[w] ^ c[w]) & ~u;
            du[w] = u;
          }
        } else {
          for (std::size_t w = 0; w < nw; ++w) {
            const std::uint64_t u = x[w] | y[w] | z[w];
            dv[w] = ~(a[w] ^ b[w] ^ c[w]) & ~u;
            du[w] = u;
          }
        }
        break;
      }
      case Op::kResolve: {
        // dv/du accumulate the wired-and resolution pairwise.
        for (std::size_t w = 0; w < nw; ++w) {
          dv[w] = a[w];
          du[w] = x[w];
        }
        for (std::uint32_t j = 1; j < it.nin; ++j) {
          const std::uint64_t* b = val + std::size_t{o[j]} * nw;
          const std::uint64_t* y = unk + std::size_t{o[j]} * nw;
          for (std::size_t w = 0; w < nw; ++w) {
            du[w] |= y[w] | (dv[w] ^ b[w]);
            dv[w] &= b[w];
          }
        }
        for (std::size_t w = 0; w < nw; ++w) dv[w] &= ~du[w];
        break;
      }
    }
  }
}

/// Single-plane (two-valued) kernel: exact when the program is fast-path
/// eligible and no input lane carries an unknown — half the memory traffic
/// of the two-plane interpretation.  Op::kResolve never reaches here
/// (eligibility excludes it: resolution manufactures X from binary
/// disagreement, which one plane cannot express).
void run_one_plane(std::span<const Instr> instrs, const std::uint32_t* ops,
                   std::uint64_t* val, std::size_t nw) {
  for (const Instr& it : instrs) {
    const std::uint32_t* o = ops + it.in_ofs;
    std::uint64_t* dv = val + std::size_t{it.out} * nw;
    const std::uint64_t* a = val + std::size_t{o[0]} * nw;
    switch (it.op) {
      case Op::kBuf:
        for (std::size_t w = 0; w < nw; ++w) dv[w] = a[w];
        break;
      case Op::kNot:
        for (std::size_t w = 0; w < nw; ++w) dv[w] = ~a[w];
        break;
      case Op::kAnd:
      case Op::kNand: {
        for (std::size_t w = 0; w < nw; ++w) dv[w] = a[w];
        for (std::uint32_t j = 1; j < it.nin; ++j) {
          const std::uint64_t* b = val + std::size_t{o[j]} * nw;
          for (std::size_t w = 0; w < nw; ++w) dv[w] &= b[w];
        }
        if (it.op == Op::kNand)
          for (std::size_t w = 0; w < nw; ++w) dv[w] = ~dv[w];
        break;
      }
      case Op::kOr:
      case Op::kNor: {
        for (std::size_t w = 0; w < nw; ++w) dv[w] = a[w];
        for (std::uint32_t j = 1; j < it.nin; ++j) {
          const std::uint64_t* b = val + std::size_t{o[j]} * nw;
          for (std::size_t w = 0; w < nw; ++w) dv[w] |= b[w];
        }
        if (it.op == Op::kNor)
          for (std::size_t w = 0; w < nw; ++w) dv[w] = ~dv[w];
        break;
      }
      case Op::kXor:
      case Op::kXnor: {
        for (std::size_t w = 0; w < nw; ++w) dv[w] = a[w];
        for (std::uint32_t j = 1; j < it.nin; ++j) {
          const std::uint64_t* b = val + std::size_t{o[j]} * nw;
          for (std::size_t w = 0; w < nw; ++w) dv[w] ^= b[w];
        }
        if (it.op == Op::kXnor)
          for (std::size_t w = 0; w < nw; ++w) dv[w] = ~dv[w];
        break;
      }
      case Op::kAnd2: {
        const std::uint64_t* b = val + std::size_t{o[1]} * nw;
        for (std::size_t w = 0; w < nw; ++w) dv[w] = a[w] & b[w];
        break;
      }
      case Op::kNand2: {
        const std::uint64_t* b = val + std::size_t{o[1]} * nw;
        for (std::size_t w = 0; w < nw; ++w) dv[w] = ~(a[w] & b[w]);
        break;
      }
      case Op::kOr2: {
        const std::uint64_t* b = val + std::size_t{o[1]} * nw;
        for (std::size_t w = 0; w < nw; ++w) dv[w] = a[w] | b[w];
        break;
      }
      case Op::kNor2: {
        const std::uint64_t* b = val + std::size_t{o[1]} * nw;
        for (std::size_t w = 0; w < nw; ++w) dv[w] = ~(a[w] | b[w]);
        break;
      }
      case Op::kXor2: {
        const std::uint64_t* b = val + std::size_t{o[1]} * nw;
        for (std::size_t w = 0; w < nw; ++w) dv[w] = a[w] ^ b[w];
        break;
      }
      case Op::kXnor2: {
        const std::uint64_t* b = val + std::size_t{o[1]} * nw;
        for (std::size_t w = 0; w < nw; ++w) dv[w] = ~(a[w] ^ b[w]);
        break;
      }
      case Op::kAnd3: {
        const std::uint64_t* b = val + std::size_t{o[1]} * nw;
        const std::uint64_t* c = val + std::size_t{o[2]} * nw;
        for (std::size_t w = 0; w < nw; ++w) dv[w] = a[w] & b[w] & c[w];
        break;
      }
      case Op::kNand3: {
        const std::uint64_t* b = val + std::size_t{o[1]} * nw;
        const std::uint64_t* c = val + std::size_t{o[2]} * nw;
        for (std::size_t w = 0; w < nw; ++w) dv[w] = ~(a[w] & b[w] & c[w]);
        break;
      }
      case Op::kOr3: {
        const std::uint64_t* b = val + std::size_t{o[1]} * nw;
        const std::uint64_t* c = val + std::size_t{o[2]} * nw;
        for (std::size_t w = 0; w < nw; ++w) dv[w] = a[w] | b[w] | c[w];
        break;
      }
      case Op::kNor3: {
        const std::uint64_t* b = val + std::size_t{o[1]} * nw;
        const std::uint64_t* c = val + std::size_t{o[2]} * nw;
        for (std::size_t w = 0; w < nw; ++w) dv[w] = ~(a[w] | b[w] | c[w]);
        break;
      }
      case Op::kXor3: {
        const std::uint64_t* b = val + std::size_t{o[1]} * nw;
        const std::uint64_t* c = val + std::size_t{o[2]} * nw;
        for (std::size_t w = 0; w < nw; ++w) dv[w] = a[w] ^ b[w] ^ c[w];
        break;
      }
      case Op::kXnor3: {
        const std::uint64_t* b = val + std::size_t{o[1]} * nw;
        const std::uint64_t* c = val + std::size_t{o[2]} * nw;
        for (std::size_t w = 0; w < nw; ++w) dv[w] = ~(a[w] ^ b[w] ^ c[w]);
        break;
      }
      case Op::kResolve:
        break;  // unreachable: fast-path eligibility excludes resolution
    }
  }
}

}  // namespace

Status CompiledEval::eval_wide(std::span<const std::uint64_t> in_value,
                               std::span<const std::uint64_t> in_unknown,
                               std::span<std::uint64_t> out_value,
                               std::span<std::uint64_t> out_unknown,
                               std::size_t lanes) {
  const Program& p = *program_;
  const std::size_t nin = p.in_slots.size();
  const std::size_t nout = p.out_slots.size();
  std::size_t words = 0;
  if (Status s = check_wide_shape(nin, nout, in_value.size(), in_unknown.size(),
                                  out_value.size(), out_unknown.size(), lanes,
                                  words);
      !s.ok())
    return s;

  const auto W = static_cast<std::size_t>(p.wide_words);
  for (std::size_t w0 = 0; w0 < words; w0 += W) {
    const std::size_t nw = std::min(W, words - w0);
    ensure_scratch(nw);

    // Load inputs into scratch: canonicalize (value 0 where unknown) and
    // zero the dead lanes of the final word, accumulating whether any live
    // lane carries an unknown — the per-pass fast-path condition.
    std::uint64_t any_unknown = 0;
    for (std::size_t i = 0; i < nin; ++i) {
      const std::uint64_t* sv = in_value.data() + i * words + w0;
      const std::uint64_t* su = in_unknown.data() + i * words + w0;
      std::uint64_t* dv = value_.data() + std::size_t{p.in_slots[i]} * nw;
      std::uint64_t* du = unknown_.data() + std::size_t{p.in_slots[i]} * nw;
      for (std::size_t w = 0; w < nw; ++w) {
        const std::uint64_t m = word_mask(lanes, w0 + w);
        const std::uint64_t u = su[w] & m;
        dv[w] = sv[w] & ~u & m;
        du[w] = u;
        any_unknown |= u;
      }
    }

    const bool fast = p.fast_path_ok && any_unknown == 0;
    (fast ? p.fast_passes : p.slow_passes)
        .fetch_add(1, std::memory_order_relaxed);
    if (fast)
      run_one_plane(p.instrs, p.operands.data(), value_.data(), nw);
    else
      run_two_plane(p.instrs, p.operands.data(), value_.data(),
                    unknown_.data(), nw);

    // Store outputs, masking dead lanes of the final word to 0/0.  A fast
    // pass never touches the unknown plane; its outputs are all-known by
    // construction.
    for (std::size_t k = 0; k < nout; ++k) {
      const std::uint64_t* sv = value_.data() + std::size_t{p.out_slots[k]} * nw;
      const std::uint64_t* su =
          unknown_.data() + std::size_t{p.out_slots[k]} * nw;
      std::uint64_t* dv = out_value.data() + k * words + w0;
      std::uint64_t* du = out_unknown.data() + k * words + w0;
      for (std::size_t w = 0; w < nw; ++w) {
        const std::uint64_t m = word_mask(lanes, w0 + w);
        dv[w] = sv[w] & m;
        du[w] = fast ? 0 : su[w] & m;
      }
    }
  }
  return Status();
}

Status CompiledEval::eval_packed(std::span<const PackedBits> inputs,
                                 std::span<PackedBits> outputs, int lanes) {
  if (lanes < 1 || lanes > kBatchLanes)
    return Status::invalid_argument(lanes_range_message("eval_packed"));
  const std::size_t nin = program_->in_slots.size();
  const std::size_t nout = program_->out_slots.size();
  if (inputs.size() != nin || outputs.size() != nout)
    return Status::invalid_argument(
        "eval_packed: expected " + std::to_string(nin) + " inputs and " +
        std::to_string(nout) + " outputs");

  // One-word AoS<->SoA shim: with words == 1 the two layouts coincide per
  // signal, so staging is a flat copy into the wide entry point.
  shim_.resize(2 * (nin + nout));
  std::uint64_t* iv = shim_.data();
  std::uint64_t* iu = iv + nin;
  std::uint64_t* ov = iu + nin;
  std::uint64_t* ou = ov + nout;
  for (std::size_t i = 0; i < nin; ++i) {
    iv[i] = inputs[i].value;
    iu[i] = inputs[i].unknown;
  }
  if (Status s = eval_wide({iv, nin}, {iu, nin}, {ov, nout}, {ou, nout},
                           static_cast<std::size_t>(lanes));
      !s.ok())
    return s;
  for (std::size_t k = 0; k < nout; ++k) outputs[k] = {ov[k], ou[k]};
  return Status();
}

std::size_t CompiledEval::preferred_words() const noexcept {
  return static_cast<std::size_t>(program_->wide_words);
}

bool CompiledEval::fast_path_available() const noexcept {
  return program_->fast_path_ok;
}

CompiledEval::KernelStats CompiledEval::kernel_stats() const noexcept {
  return {program_->fast_passes.load(std::memory_order_relaxed),
          program_->slow_passes.load(std::memory_order_relaxed)};
}

// ---------------------------------------------------------------------------
// EventEval
// ---------------------------------------------------------------------------

EventEval::EventEval(std::vector<NetId> in_nets, std::vector<NetId> out_nets,
                     std::uint64_t budget)
    : in_nets_(std::move(in_nets)),
      out_nets_(std::move(out_nets)),
      budget_(budget) {}

Result<EventEval> EventEval::create(const Circuit& circuit,
                                    std::vector<NetId> in_nets,
                                    std::vector<NetId> out_nets,
                                    std::uint64_t max_events_per_vector) {
  for (NetId n : in_nets) {
    if (n >= circuit.net_count())
      return Status::invalid_argument("EventEval: input net out of range");
    if (!circuit.is_input(n))
      return Status::invalid_argument("EventEval: net " +
                                      net_label(circuit, n) +
                                      " is not a primary input");
  }
  for (NetId n : out_nets)
    if (n >= circuit.net_count())
      return Status::invalid_argument("EventEval: output net out of range");
  auto sim = Simulator::create(circuit);
  if (!sim.ok()) return sim.status();
  EventEval ev(std::move(in_nets), std::move(out_nets),
               max_events_per_vector);
  ev.sim_.emplace(std::move(*sim));
  if (!ev.sim_->settle())
    return Status::resource_exhausted("EventEval: base state never settled");
  return ev;
}

std::unique_ptr<Evaluator> EventEval::clone() const {
  return std::unique_ptr<Evaluator>(new EventEval(*this));
}

Status EventEval::eval_packed(std::span<const PackedBits> inputs,
                              std::span<PackedBits> outputs, int lanes) {
  if (lanes < 1 || lanes > kBatchLanes)
    return Status::invalid_argument(lanes_range_message("eval_packed"));
  if (inputs.size() != in_nets_.size() || outputs.size() != out_nets_.size())
    return Status::invalid_argument(
        "eval_packed: expected " + std::to_string(in_nets_.size()) +
        " inputs and " + std::to_string(out_nets_.size()) + " outputs");
  for (PackedBits& p : outputs) p = {};
  for (int lane = 0; lane < lanes; ++lane) {
    for (std::size_t j = 0; j < in_nets_.size(); ++j)
      sim_->set_input(in_nets_[j], get_lane(inputs[j], lane));
    if (!sim_->settle(budget_))
      return Status::resource_exhausted(
          "EventEval: event budget exhausted (oscillation?)");
    for (std::size_t k = 0; k < out_nets_.size(); ++k)
      set_lane(outputs[k], lane, sim_->value(out_nets_[k]));
  }
  return Status();
}

}  // namespace pp::sim
