#include "sim/evaluator.h"

#include <algorithm>
#include <string>
#include <utility>

namespace pp::sim {

// ---------------------------------------------------------------------------
// Levelization
// ---------------------------------------------------------------------------

namespace {

[[nodiscard]] std::string net_label(const Circuit& c, NetId n) {
  const std::string& name = c.net_name(n);
  std::string label;
  if (name.empty()) {
    label = '#' + std::to_string(n);
  } else {
    label.reserve(name.size() + 2);
    label += '\'';
    label += name;
    label += '\'';
  }
  return label;
}

}  // namespace

Result<LevelMap> levelize(const Circuit& circuit) {
  const std::size_t ngates = circuit.gate_count();
  const std::size_t nnets = circuit.net_count();

  // net -> driving gates (several when 3-state drivers share the net) and
  // net -> reading gates (one entry per reading pin).
  std::vector<std::vector<GateId>> drivers(nnets);
  for (GateId g = 0; g < ngates; ++g)
    drivers[circuit.gate(g).output].push_back(g);
  std::vector<std::vector<GateId>> readers(nnets);
  std::vector<std::uint32_t> indegree(ngates, 0);
  for (GateId g = 0; g < ngates; ++g)
    for (NetId in : circuit.gate(g).inputs) {
      readers[in].push_back(g);
      indegree[g] += static_cast<std::uint32_t>(drivers[in].size());
    }

  // Kahn's algorithm over driver->reader edges.  A gate's level is one above
  // its deepest input driver, so the FIFO pop order is already topological.
  LevelMap lm;
  lm.gate_level.assign(ngates, 0);
  lm.order.reserve(ngates);
  std::vector<GateId> ready;
  for (GateId g = 0; g < ngates; ++g)
    if (indegree[g] == 0) ready.push_back(g);
  for (std::size_t head = 0; head < ready.size(); ++head) {
    const GateId g = ready[head];
    lm.order.push_back(g);
    std::uint32_t level = 0;
    for (NetId in : circuit.gate(g).inputs)
      for (GateId d : drivers[in])
        level = std::max(level, lm.gate_level[d] + 1);
    lm.gate_level[g] = level;
    lm.max_level = std::max(lm.max_level, level);
    for (GateId r : readers[circuit.gate(g).output])
      if (--indegree[r] == 0) ready.push_back(r);
  }

  if (lm.order.size() != ngates) {
    for (GateId g = 0; g < ngates; ++g)
      if (indegree[g] != 0)
        return Status::failed_precondition(
            "levelize: combinational cycle through net " +
            net_label(circuit, circuit.gate(g).output));
  }
  return lm;
}

// ---------------------------------------------------------------------------
// CompiledEval
// ---------------------------------------------------------------------------

namespace {

enum class Op : std::uint8_t {
  kBuf,
  kNot,
  kAnd,
  kNand,
  kOr,
  kNor,
  kXor,
  kXnor,
  kResolve,  ///< wired-and over always-driving sources: agree or X
};

struct Instr {
  Op op;
  std::uint32_t nin;
  std::uint32_t in_ofs;  ///< first operand index in Program::operands
  std::uint32_t out;     ///< destination slot
};

constexpr std::uint32_t kNoSlot = 0xffff'ffffu;

[[nodiscard]] PackedBits broadcast(Logic v) noexcept {
  switch (v) {
    case Logic::k0: return {0, 0};
    case Logic::k1: return {~std::uint64_t{0}, 0};
    case Logic::kZ:
    case Logic::kX: break;
  }
  return {0, ~std::uint64_t{0}};
}

/// Scalar settled value of a non-3-state combinational gate, mirroring
/// Simulator::compute_gate exactly (Z inputs behave as X).
[[nodiscard]] Logic fold_gate(GateKind kind, std::span<const Logic> ins) {
  switch (kind) {
    case GateKind::kNand: return nand_of(ins);
    case GateKind::kAnd: return and_of(ins);
    case GateKind::kOr: return or_of(ins);
    case GateKind::kNor: return not_of(or_of(ins));
    case GateKind::kXor: return xor_of(ins);
    case GateKind::kXnor: return not_of(xor_of(ins));
    case GateKind::kNot: return not_of(ins[0]);
    case GateKind::kBuf:
    case GateKind::kDelay: return is_binary(ins[0]) ? ins[0] : Logic::kX;
    case GateKind::kConst0: return Logic::k0;
    case GateKind::kConst1: return Logic::k1;
    default: return Logic::kX;
  }
}

/// True when `lm` verifiably belongs to this circuit: `order` is a
/// permutation of all gates in which every driver of every input net of a
/// gate precedes that gate (the invariant the classification pass depends
/// on), and `gate_level`/`max_level` match what that order implies.  Guards
/// against a stale LevelMap (e.g. recorded for a differently configured
/// fabric of the same size).
[[nodiscard]] bool levels_fit_circuit(
    const Circuit& c, const std::vector<std::vector<GateId>>& drivers,
    const LevelMap& lm) {
  const std::size_t ngates = c.gate_count();
  if (lm.gate_level.size() != ngates || lm.order.size() != ngates)
    return false;
  std::vector<char> done(ngates, 0);
  std::uint32_t max_seen = 0;
  for (GateId g : lm.order) {
    if (g >= ngates || done[g]) return false;
    std::uint32_t level = 0;
    for (NetId in : c.gate(g).inputs)
      for (GateId d : drivers[in]) {
        if (!done[d]) return false;
        level = std::max(level, lm.gate_level[d] + 1);
      }
    if (lm.gate_level[g] != level) return false;
    max_seen = std::max(max_seen, level);
    done[g] = 1;
  }
  return max_seen == lm.max_level;
}

[[nodiscard]] Op op_for(GateKind kind) {
  switch (kind) {
    case GateKind::kNand: return Op::kNand;
    case GateKind::kAnd: return Op::kAnd;
    case GateKind::kOr: return Op::kOr;
    case GateKind::kNor: return Op::kNor;
    case GateKind::kXor: return Op::kXor;
    case GateKind::kXnor: return Op::kXnor;
    case GateKind::kNot: return Op::kNot;
    default: return Op::kBuf;  // kBuf / kDelay (transport delay is identity
                               // once settled)
  }
}

}  // namespace

struct CompiledEval::Program {
  std::vector<Instr> instrs;
  std::vector<std::uint32_t> operands;
  std::vector<PackedBits> init;          ///< initial slot image (constants)
  std::vector<std::uint32_t> in_slots;   ///< per bound input net
  std::vector<std::uint32_t> out_slots;  ///< per bound output net
  std::uint32_t levels = 0;
};

CompiledEval::CompiledEval(std::shared_ptr<const Program> program)
    : program_(std::move(program)), slots_(program_->init) {}

std::size_t CompiledEval::input_count() const noexcept {
  return program_->in_slots.size();
}
std::size_t CompiledEval::output_count() const noexcept {
  return program_->out_slots.size();
}
std::size_t CompiledEval::instruction_count() const noexcept {
  return program_->instrs.size();
}
std::uint32_t CompiledEval::level_count() const noexcept {
  return program_->levels;
}

std::unique_ptr<Evaluator> CompiledEval::clone() const {
  return std::unique_ptr<Evaluator>(new CompiledEval(program_));
}

Result<CompiledEval> CompiledEval::compile(const Circuit& circuit,
                                           std::vector<NetId> in_nets,
                                           std::vector<NetId> out_nets,
                                           const LevelMap* levels) {
  if (const std::string diag = circuit.validate(); !diag.empty())
    return Status::invalid_argument("CompiledEval: invalid circuit:\n" + diag);

  const std::size_t ngates = circuit.gate_count();
  const std::size_t nnets = circuit.net_count();

  for (GateId g = 0; g < ngates; ++g) {
    const GateKind k = circuit.gate(g).kind;
    if (k == GateKind::kDff || k == GateKind::kLatch ||
        k == GateKind::kCElement)
      return Status::failed_precondition(
          std::string("CompiledEval: behavioural state-holding gate (") +
          gate_kind_name(k) + ") needs the event-driven engine");
  }

  std::vector<std::vector<GateId>> drivers(nnets);
  for (GateId g = 0; g < ngates; ++g)
    drivers[circuit.gate(g).output].push_back(g);

  // Levelize, reusing the caller's metadata only when it verifiably fits
  // *this* circuit (the check is O(pins), far cheaper than the sort it
  // skips); anything stale falls back to a fresh levelization, so a reused
  // map can never bypass cycle rejection or break the topo-order invariant
  // the classification pass depends on.
  LevelMap computed;
  const LevelMap* lm = nullptr;
  if (levels && levels_fit_circuit(circuit, drivers, *levels)) {
    lm = levels;
  } else {
    auto lv = levelize(circuit);
    if (!lv.ok()) return lv.status();
    computed = std::move(*lv);
    lm = &computed;
  }

  // Bound-net checks.  Externally driven nets must be pure attachment
  // points: a gate driver alongside the external slot would resolve against
  // a possibly-floating (Z) external value, which two planes cannot express.
  std::vector<char> ext(nnets, 0);
  for (NetId n : in_nets) {
    if (n >= nnets)
      return Status::invalid_argument("CompiledEval: input net out of range");
    if (!circuit.is_input(n))
      return Status::invalid_argument("CompiledEval: net " +
                                      net_label(circuit, n) +
                                      " is not a primary input");
    if (!drivers[n].empty())
      return Status::failed_precondition(
          "CompiledEval: bound input net " + net_label(circuit, n) +
          " is also gate-driven (external/driver resolution)");
    ext[n] = 1;
  }
  for (NetId n : out_nets)
    if (n >= nnets)
      return Status::invalid_argument("CompiledEval: output net out of range");

  // --- Pass A: classify every gate and net in topological order. ----------
  // A gate/net is either a compile-time constant (configuration structure:
  // const rows, released or always-on 3-state drivers, undriven lines) or
  // varying (depends on bound inputs).  Constant folding here is what turns
  // the elaborated fabric's 3-state abutment forest into plain logic.
  struct GateRec {
    bool varying = false;
    Logic cval = Logic::kZ;      // settled driver value when !varying
    Op op = Op::kBuf;            // when varying
    std::vector<NetId> srcs;     // nets read when varying
    std::uint32_t slot = kNoSlot;  // destination slot once emitted
    bool needed = false;
  };
  struct NetRec {
    bool finalized = false;
    bool varying = false;
    Logic cval = Logic::kZ;           // settled value when !varying
    Logic cpart = Logic::kZ;          // constant resolution participant
    std::vector<GateId> vdrivers;     // varying drivers
    std::uint32_t slot = kNoSlot;
    bool needed = false;
  };
  std::vector<GateRec> grec(ngates);
  std::vector<NetRec> nrec(nnets);

  // All of a net's drivers precede any reader in topo order, so a net can be
  // finalized the first time a reader (or the output binding) looks at it.
  auto finalize_net = [&](NetId n) -> NetRec& {
    NetRec& r = nrec[n];
    if (r.finalized) return r;
    r.finalized = true;
    if (ext[n]) {
      r.varying = true;
      return r;
    }
    Logic cpart = Logic::kZ;
    for (GateId d : drivers[n]) {
      if (grec[d].varying) r.vdrivers.push_back(d);
      else cpart = resolve(cpart, grec[d].cval);
    }
    if (cpart == Logic::kX || r.vdrivers.empty()) {
      // X from constant contention dominates any varying driver
      // (resolve(X, v) == X); otherwise the net is fully constant
      // (possibly Z: an undriven or all-released line).
      r.cval = cpart;
      r.vdrivers.clear();
      return r;
    }
    r.varying = true;
    r.cpart = cpart;  // kZ (absent) or a binary constant co-driver
    return r;
  };

  for (const GateId g : lm->order) {
    const Gate& gate = circuit.gate(g);
    GateRec& gr = grec[g];

    if (gate.kind == GateKind::kConst0 || gate.kind == GateKind::kConst1) {
      gr.cval = gate.kind == GateKind::kConst1 ? Logic::k1 : Logic::k0;
      continue;
    }

    if (is_tristate(gate.kind)) {
      const NetRec& en = finalize_net(gate.inputs[1]);
      if (en.varying)
        return Status::failed_precondition(
            "CompiledEval: 3-state driver on net " +
            net_label(circuit, gate.output) +
            " has a non-constant enable (dynamic contention is not "
            "representable bit-parallel)");
      if (en.cval == Logic::k0) {
        gr.cval = Logic::kZ;  // released for every vector
        continue;
      }
      if (en.cval != Logic::k1) {
        gr.cval = Logic::kX;  // unknown enable poisons the output
        continue;
      }
      // Always-on driver: plain buffer/inverter of the data input.
      const NetRec& data = finalize_net(gate.inputs[0]);
      const bool invert = gate.kind == GateKind::kTriInv;
      if (!data.varying) {
        gr.cval = invert ? not_of(data.cval)
                         : (is_binary(data.cval) ? data.cval : Logic::kX);
        continue;
      }
      gr.varying = true;
      gr.op = invert ? Op::kNot : Op::kBuf;
      gr.srcs = {gate.inputs[0]};
      continue;
    }

    // Plain combinational gate: fold when every input is constant, shortcut
    // when a dominant constant forces the output, else emit.
    bool all_const = true;
    bool dominated = false;
    Logic dom_val = Logic::kX;
    for (NetId in : gate.inputs) {
      const NetRec& ir = finalize_net(in);
      if (ir.varying) {
        all_const = false;
        continue;
      }
      switch (gate.kind) {
        case GateKind::kNand:
        case GateKind::kAnd:
          if (ir.cval == Logic::k0) {
            dominated = true;
            dom_val = gate.kind == GateKind::kNand ? Logic::k1 : Logic::k0;
          }
          break;
        case GateKind::kOr:
        case GateKind::kNor:
          if (ir.cval == Logic::k1) {
            dominated = true;
            dom_val = gate.kind == GateKind::kOr ? Logic::k1 : Logic::k0;
          }
          break;
        case GateKind::kXor:
        case GateKind::kXnor:
          if (!is_binary(ir.cval)) {
            dominated = true;
            dom_val = Logic::kX;
          }
          break;
        default: break;
      }
    }
    if (dominated) {
      gr.cval = dom_val;
      continue;
    }
    if (all_const) {
      std::vector<Logic> ins;
      ins.reserve(gate.inputs.size());
      for (NetId in : gate.inputs) ins.push_back(nrec[in].cval);
      gr.cval = fold_gate(gate.kind, ins);
      continue;
    }
    gr.varying = true;
    gr.op = op_for(gate.kind);
    gr.srcs.assign(gate.inputs.begin(), gate.inputs.end());
  }
  for (NetId n : out_nets) finalize_net(n);

  // --- Pass B: dead-code elimination. --------------------------------------
  // Only the cone feeding the bound outputs is evaluated; on an elaborated
  // fabric this strips every unconfigured block.
  {
    std::vector<NetId> stack(out_nets.begin(), out_nets.end());
    while (!stack.empty()) {
      const NetId n = stack.back();
      stack.pop_back();
      NetRec& r = nrec[n];
      if (r.needed) continue;
      r.needed = true;
      for (GateId d : r.vdrivers) {
        GateRec& gr = grec[d];
        if (gr.needed) continue;
        gr.needed = true;
        for (NetId src : gr.srcs) stack.push_back(src);
      }
    }
  }

  // --- Pass C: compact slot assignment + instruction emission. -------------
  auto program = std::make_shared<Program>();
  program->levels = lm->max_level + (ngates ? 1 : 0);
  auto new_slot = [&](PackedBits init) {
    program->init.push_back(init);
    return static_cast<std::uint32_t>(program->init.size() - 1);
  };
  auto net_slot = [&](NetId n) {
    NetRec& r = nrec[n];
    if (r.slot == kNoSlot)
      r.slot = new_slot(r.varying ? PackedBits{} : broadcast(r.cval));
    return r.slot;
  };

  // Inputs get the first slots (even when dead — they are written per batch).
  program->in_slots.reserve(in_nets.size());
  for (NetId n : in_nets) program->in_slots.push_back(net_slot(n));

  std::vector<std::uint32_t> pending(nnets, 0);
  for (NetId n = 0; n < nnets; ++n)
    pending[n] = static_cast<std::uint32_t>(nrec[n].vdrivers.size());

  auto emit = [&](Op op, std::span<const std::uint32_t> operands,
                  std::uint32_t out) {
    const auto ofs = static_cast<std::uint32_t>(program->operands.size());
    program->operands.insert(program->operands.end(), operands.begin(),
                             operands.end());
    program->instrs.push_back(
        {op, static_cast<std::uint32_t>(operands.size()), ofs, out});
  };

  for (const GateId g : lm->order) {
    GateRec& gr = grec[g];
    if (!gr.needed) continue;
    const NetId out = circuit.gate(g).output;
    NetRec& onet = nrec[out];
    const bool multi = onet.vdrivers.size() > 1 || onet.cpart != Logic::kZ;
    std::vector<std::uint32_t> operands;
    operands.reserve(gr.srcs.size());
    for (NetId src : gr.srcs) operands.push_back(net_slot(src));
    gr.slot = multi ? new_slot({}) : net_slot(out);
    emit(gr.op, operands, gr.slot);
    if (multi && --pending[out] == 0) {
      // All drivers of this net are computed: wire-resolve them (plus the
      // constant co-driver, if any) into the net's slot before any reader.
      std::vector<std::uint32_t> rops;
      rops.reserve(onet.vdrivers.size() + 1);
      for (GateId d : onet.vdrivers) rops.push_back(grec[d].slot);
      if (onet.cpart != Logic::kZ) rops.push_back(new_slot(broadcast(onet.cpart)));
      emit(Op::kResolve, rops, net_slot(out));
    }
  }

  program->out_slots.reserve(out_nets.size());
  for (NetId n : out_nets) program->out_slots.push_back(net_slot(n));

  return CompiledEval(std::move(program));
}

Status CompiledEval::eval_packed(std::span<const PackedBits> inputs,
                                 std::span<PackedBits> outputs, int lanes) {
  if (lanes < 1 || lanes > kBatchLanes)
    return Status::invalid_argument("eval_packed: lanes must be 1..64");
  if (inputs.size() != program_->in_slots.size() ||
      outputs.size() != program_->out_slots.size())
    return Status::invalid_argument(
        "eval_packed: expected " + std::to_string(program_->in_slots.size()) +
        " inputs and " + std::to_string(program_->out_slots.size()) +
        " outputs");

  PackedBits* s = slots_.data();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    PackedBits p = inputs[i];
    p.value &= ~p.unknown;  // canonicalize
    s[program_->in_slots[i]] = p;
  }

  const std::uint32_t* ops = program_->operands.data();
  for (const Instr& it : program_->instrs) {
    const std::uint32_t* o = ops + it.in_ofs;
    switch (it.op) {
      case Op::kBuf:
        s[it.out] = s[o[0]];
        break;
      case Op::kNot: {
        const PackedBits a = s[o[0]];
        s[it.out] = {~a.value & ~a.unknown, a.unknown};
        break;
      }
      case Op::kAnd:
      case Op::kNand: {
        std::uint64_t all1 = ~std::uint64_t{0}, any0 = 0;
        for (std::uint32_t j = 0; j < it.nin; ++j) {
          const PackedBits a = s[o[j]];
          all1 &= a.value;
          any0 |= ~a.value & ~a.unknown;
        }
        s[it.out] = {it.op == Op::kAnd ? all1 : any0, ~(all1 | any0)};
        break;
      }
      case Op::kOr:
      case Op::kNor: {
        std::uint64_t any1 = 0, all0 = ~std::uint64_t{0};
        for (std::uint32_t j = 0; j < it.nin; ++j) {
          const PackedBits a = s[o[j]];
          any1 |= a.value;
          all0 &= ~a.value & ~a.unknown;
        }
        s[it.out] = {it.op == Op::kOr ? any1 : all0, ~(any1 | all0)};
        break;
      }
      case Op::kXor:
      case Op::kXnor: {
        std::uint64_t v = 0, u = 0;
        for (std::uint32_t j = 0; j < it.nin; ++j) {
          const PackedBits a = s[o[j]];
          v ^= a.value;
          u |= a.unknown;
        }
        if (it.op == Op::kXnor) v = ~v;
        s[it.out] = {v & ~u, u};
        break;
      }
      case Op::kResolve: {
        PackedBits acc = s[o[0]];
        for (std::uint32_t j = 1; j < it.nin; ++j) {
          const PackedBits b = s[o[j]];
          acc.unknown |= b.unknown | (acc.value ^ b.value);
          acc.value &= b.value;
        }
        acc.value &= ~acc.unknown;
        s[it.out] = acc;
        break;
      }
    }
  }

  const std::uint64_t mask =
      lanes >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << lanes) - 1;
  for (std::size_t k = 0; k < outputs.size(); ++k) {
    const PackedBits p = s[program_->out_slots[k]];
    outputs[k] = {p.value & mask, p.unknown & mask};
  }
  return Status();
}

// ---------------------------------------------------------------------------
// EventEval
// ---------------------------------------------------------------------------

EventEval::EventEval(std::vector<NetId> in_nets, std::vector<NetId> out_nets,
                     std::uint64_t budget)
    : in_nets_(std::move(in_nets)),
      out_nets_(std::move(out_nets)),
      budget_(budget) {}

Result<EventEval> EventEval::create(const Circuit& circuit,
                                    std::vector<NetId> in_nets,
                                    std::vector<NetId> out_nets,
                                    std::uint64_t max_events_per_vector) {
  for (NetId n : in_nets) {
    if (n >= circuit.net_count())
      return Status::invalid_argument("EventEval: input net out of range");
    if (!circuit.is_input(n))
      return Status::invalid_argument("EventEval: net " +
                                      net_label(circuit, n) +
                                      " is not a primary input");
  }
  for (NetId n : out_nets)
    if (n >= circuit.net_count())
      return Status::invalid_argument("EventEval: output net out of range");
  auto sim = Simulator::create(circuit);
  if (!sim.ok()) return sim.status();
  EventEval ev(std::move(in_nets), std::move(out_nets),
               max_events_per_vector);
  ev.sim_.emplace(std::move(*sim));
  if (!ev.sim_->settle())
    return Status::resource_exhausted("EventEval: base state never settled");
  return ev;
}

std::unique_ptr<Evaluator> EventEval::clone() const {
  return std::unique_ptr<Evaluator>(new EventEval(*this));
}

Status EventEval::eval_packed(std::span<const PackedBits> inputs,
                              std::span<PackedBits> outputs, int lanes) {
  if (lanes < 1 || lanes > kBatchLanes)
    return Status::invalid_argument("eval_packed: lanes must be 1..64");
  if (inputs.size() != in_nets_.size() || outputs.size() != out_nets_.size())
    return Status::invalid_argument(
        "eval_packed: expected " + std::to_string(in_nets_.size()) +
        " inputs and " + std::to_string(out_nets_.size()) + " outputs");
  for (PackedBits& p : outputs) p = {};
  for (int lane = 0; lane < lanes; ++lane) {
    for (std::size_t j = 0; j < in_nets_.size(); ++j)
      sim_->set_input(in_nets_[j], get_lane(inputs[j], lane));
    if (!sim_->settle(budget_))
      return Status::resource_exhausted(
          "EventEval: event budget exhausted (oscillation?)");
    for (std::size_t k = 0; k < out_nets_.size(); ++k)
      set_lane(outputs[k], lane, sim_->value(out_nets_[k]));
  }
  return Status();
}

}  // namespace pp::sim
