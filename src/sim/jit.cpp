// JitEval implementation: C code generation from the CompiledEval program
// image, out-of-process compilation, the content-hash kernel cache, and
// the runtime that drives the dlopened kernels behind the Evaluator
// interface.  See sim/jit.h for the trust model and DESIGN.md §16 for the
// full shape.
#include "sim/jit.h"

#include <dlfcn.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <utility>

#include "core/bitstream.h"
#include "sim/compiled_program.h"

namespace pp::sim {

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Content hashing (FNV-1a 64) — the program digest embedded in every
// generated TU, and the cache key over (source, compiler, flags).
// ---------------------------------------------------------------------------

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void fnv_u64(std::uint64_t& h, std::uint64_t v) { fnv_bytes(h, &v, 8); }
void fnv_u32(std::uint64_t& h, std::uint32_t v) { fnv_bytes(h, &v, 4); }
void fnv_str(std::uint64_t& h, const std::string& s) {
  fnv_u64(h, s.size());
  fnv_bytes(h, s.data(), s.size());
}

[[nodiscard]] std::string hex16(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return s;
}

/// Structural digest of one Program: everything that determines the
/// emitted kernel's behaviour.  Embedded in the generated source and in
/// the cache sidecar, so a hash-colliding stale cache entry is caught by
/// digest mismatch after dlopen, not trusted.
[[nodiscard]] std::uint64_t program_digest(const CompiledEval::Program& p) {
  std::uint64_t h = kFnvOffset;
  fnv_bytes(h, "ppjit1", 6);
  fnv_u32(h, static_cast<std::uint32_t>(p.wide_words));
  fnv_u32(h, p.fast_path_ok ? 1u : 0u);
  fnv_u64(h, p.instrs.size());
  for (const Instr& it : p.instrs) {
    fnv_u32(h, static_cast<std::uint32_t>(it.op));
    fnv_u32(h, it.nin);
    fnv_u32(h, it.in_ofs);
    fnv_u32(h, it.out);
  }
  fnv_u64(h, p.operands.size());
  for (std::uint32_t o : p.operands) fnv_u32(h, o);
  fnv_u64(h, p.init.size());
  for (const PackedBits& b : p.init) {
    fnv_u64(h, b.value);
    fnv_u64(h, b.unknown);
  }
  fnv_u64(h, p.in_slots.size());
  for (std::uint32_t s : p.in_slots) fnv_u32(h, s);
  fnv_u64(h, p.out_slots.size());
  for (std::uint32_t s : p.out_slots) fnv_u32(h, s);
  fnv_u64(h, p.const_slots.size());
  for (std::uint32_t s : p.const_slots) fnv_u32(h, s);
  fnv_u64(h, p.regs.size());
  for (const SeqReg& r : p.regs) {
    fnv_u32(h, r.q_slot);
    fnv_u32(h, r.d_slot);
    fnv_u32(h, r.ctl_slot);
    fnv_u32(h, static_cast<std::uint32_t>(r.kind));
    fnv_u64(h, r.reset.value);
    fnv_u64(h, r.reset.unknown);
  }
  fnv_u32(h, p.n_public_in);
  fnv_u32(h, p.n_public_out);
  fnv_u32(h, (p.is_sequential ? 1u : 0u) | (p.has_settle_regs ? 2u : 0u));
  fnv_u32(h, p.n_edge_regs);
  return h;
}

// ---------------------------------------------------------------------------
// C code generation
// ---------------------------------------------------------------------------

/// The variadic base class of an opcode plus its operand count — the
/// emitter generalizes the fixed-arity specializations back to one
/// formula per class (the interpreter's 2/3-input cases are literally the
/// variadic formulas unrolled, so the generated code matches both).
enum class OpBase { kBuf, kNot, kAnd, kNand, kOr, kNor, kXor, kXnor, kResolve };

[[nodiscard]] OpBase op_base(Op op) noexcept {
  switch (op) {
    case Op::kBuf: return OpBase::kBuf;
    case Op::kNot: return OpBase::kNot;
    case Op::kAnd: case Op::kAnd2: case Op::kAnd3: return OpBase::kAnd;
    case Op::kNand: case Op::kNand2: case Op::kNand3: return OpBase::kNand;
    case Op::kOr: case Op::kOr2: case Op::kOr3: return OpBase::kOr;
    case Op::kNor: case Op::kNor2: case Op::kNor3: return OpBase::kNor;
    case Op::kXor: case Op::kXor2: case Op::kXor3: return OpBase::kXor;
    case Op::kXnor: case Op::kXnor2: case Op::kXnor3: return OpBase::kXnor;
    case Op::kResolve: return OpBase::kResolve;
  }
  return OpBase::kBuf;
}

/// The full TU for one Program.  Exported symbols:
///   pp_jit_abi / pp_jit_w / pp_jit_slots / pp_jit_has_fast — validated
///     against the program after dlopen (a stale or colliding cache entry
///     with a different shape fails closed here);
///   pp_jit_digest — the program content digest, the final stale-entry
///     tripwire;
///   pp_jit_eval2 (+ pp_jit_eval1 when fast-path eligible) — the kernels.
/// Both kernels process all W words of every slot unconditionally; the
/// caller masks dead lanes/words at the load/store boundary exactly like
/// the interpreter.
///
/// Two structural decisions keep the generated code fast and compilable at
/// fabric scale (tens of thousands of instructions):
///
///  1. **Chunking.**  The program is split into bounded noinline helper
///     functions — as one function the host compiler's whole-function
///     passes go super-linear (minutes of cc1 on the fig10 16-bit
///     datapath).  Levelization already fixed the order, so the split is
///     free.
///
///  2. **Scalarization.**  Each chunk is one `for (w)` loop whose
///     intermediate slots live in C locals, not plane memory.  Only slots
///     the outside world can observe — program inputs/outputs, constants,
///     register taps — or values that cross a chunk boundary are stored to
///     V/U.  Everything else stays in registers, so per-instruction text
///     shrinks (no 8x-unrolled loop per gate, no 2 loads + 1 store per
///     operand plane) and a pass stops being bound on instruction fetch
///     and plane traffic.  The interpreter writes every slot; the kernels
///     observably agree because nothing reads a non-materialized slot's
///     plane image — the differential gate in build() enforces exactly
///     this.
[[nodiscard]] std::string emit_c(const CompiledEval::Program& p,
                                 const std::string& digest_hex) {
  std::string s;
  s.reserve(256 + p.instrs.size() * 120);
  s += "/* generated by pp::sim::JitEval — do not edit.\n";
  s += " * program digest " + digest_hex + ", " +
       std::to_string(p.instrs.size()) + " instructions, W=" +
       std::to_string(p.wide_words) + " plane words. */\n";
  s += "#include <stdint.h>\n";
  s += "#define W " + std::to_string(p.wide_words) + "\n";
  s += "const char pp_jit_digest[] = \"" + digest_hex + "\";\n";
  s += "const uint32_t pp_jit_abi = 1u;\n";
  s += "const uint32_t pp_jit_w = " + std::to_string(p.wide_words) + "u;\n";
  s += "const uint32_t pp_jit_slots = " + std::to_string(p.init.size()) +
       "u;\n";
  s += std::string("const uint32_t pp_jit_has_fast = ") +
       (p.fast_path_ok ? "1u;\n" : "0u;\n");

  constexpr std::size_t kChunk = 256;
  const std::size_t nchunks = (p.instrs.size() + kChunk - 1) / kChunk;
  const std::size_t nslots = p.init.size();

  // Slot classification: which defined slots must be stored to the planes.
  // Externally observable slots first (the C++ wrapper loads inputs and
  // constants, scans and commits register taps, and gathers outputs from
  // plane memory), then anything whose def and a use land in different
  // chunks, then the degenerate multi-def case (keep the plane current so
  // a later chunk always sees the latest image).
  std::vector<std::uint8_t> mat(nslots, 0);
  for (std::uint32_t sl : p.in_slots) mat[sl] = 1;
  for (std::uint32_t sl : p.out_slots) mat[sl] = 1;
  for (std::uint32_t sl : p.const_slots) mat[sl] = 1;
  for (const SeqReg& r : p.regs) {
    mat[r.q_slot] = 1;
    mat[r.d_slot] = 1;
    if (r.ctl_slot != kNoSlot) mat[r.ctl_slot] = 1;
  }
  std::vector<std::int32_t> defc(nslots, -1);
  for (std::size_t i = 0; i < p.instrs.size(); ++i) {
    const Instr& it = p.instrs[i];
    const auto c = static_cast<std::int32_t>(i / kChunk);
    const std::uint32_t* o = p.operands.data() + it.in_ofs;
    for (std::uint32_t j = 0; j < it.nin; ++j)
      if (defc[o[j]] >= 0 && defc[o[j]] != c) mat[o[j]] = 1;
    if (defc[it.out] >= 0) mat[it.out] = 1;
    defc[it.out] = c;
  }

  // `local[slot] == chunk` → the slot was defined earlier in the chunk
  // being emitted and its C local is in scope.
  std::vector<std::int32_t> local(nslots, -1);

  auto emit_fn = [&](bool two_plane) {
    std::fill(local.begin(), local.end(), -1);
    const char* args = two_plane
                           ? "(uint64_t* restrict V, uint64_t* restrict U)"
                           : "(uint64_t* restrict V)";
    const char* tag = two_plane ? "2" : "1";
    std::int32_t cur = -1;
    auto rv = [&](std::uint32_t sl) {
      return local[sl] == cur ? "v" + std::to_string(sl)
                              : "V[" + std::to_string(sl) + "*W+w]";
    };
    auto ru = [&](std::uint32_t sl) {
      return local[sl] == cur ? "u" + std::to_string(sl)
                              : "U[" + std::to_string(sl) + "*W+w]";
    };
    // `(v0 op v1 op ...)` over the value plane of each operand.
    auto join_v = [&](const std::uint32_t* o, std::uint32_t n,
                      const char* sep) {
      std::string e = rv(o[0]);
      for (std::uint32_t j = 1; j < n; ++j) e += sep + rv(o[j]);
      return e;
    };
    // `(u0 | u1 | ...)` over the unknown plane of each operand.
    auto join_u = [&](const std::uint32_t* o, std::uint32_t n) {
      std::string e = ru(o[0]);
      for (std::uint32_t j = 1; j < n; ++j) e += " | " + ru(o[j]);
      return e;
    };
    // `(~v0 & ~u0) <sep> (~v1 & ~u1) ...` — the known-0 term per operand.
    auto join_known0 = [&](const std::uint32_t* o, std::uint32_t n,
                           const char* sep) {
      std::string e;
      for (std::uint32_t j = 0; j < n; ++j) {
        if (j) e += sep;
        e += "(~" + rv(o[j]) + " & ~" + ru(o[j]) + ")";
      }
      return e;
    };

    for (std::size_t c = 0; c < nchunks; ++c) {
      cur = static_cast<std::int32_t>(c);
      s += std::string("static __attribute__((noinline)) void pp_c") + tag +
           "_" + std::to_string(c) + args + " {\n";
      s += "  for (int w = 0; w < W; ++w) {\n";
      const std::size_t hi = std::min(p.instrs.size(), (c + 1) * kChunk);
      for (std::size_t i = c * kChunk; i < hi; ++i) {
        const Instr& it = p.instrs[i];
        const std::uint32_t* o = p.operands.data() + it.in_ofs;
        const std::string dv = "v" + std::to_string(it.out);
        const std::string du = "u" + std::to_string(it.out);
        // One statement (or braced block, when the formula needs shared
        // subterms) per instruction — the exact interpreter formula with
        // operand references resolved to in-scope locals or plane words.
        if (local[it.out] != cur)
          s += two_plane ? "    uint64_t " + dv + ", " + du + ";\n"
                         : "    uint64_t " + dv + ";\n";
        if (two_plane) {
          switch (op_base(it.op)) {
            case OpBase::kBuf:
              s += "    " + dv + " = " + rv(o[0]) + "; " + du + " = " +
                   ru(o[0]) + ";\n";
              break;
            case OpBase::kNot:
              s += "    " + dv + " = ~" + rv(o[0]) + " & ~" + ru(o[0]) +
                   "; " + du + " = " + ru(o[0]) + ";\n";
              break;
            case OpBase::kAnd:
            case OpBase::kNand:
              s += "    { const uint64_t all1 = " + join_v(o, it.nin, " & ") +
                   ";\n      const uint64_t any0 = " +
                   join_known0(o, it.nin, " | ") + ";\n      " + dv + " = " +
                   (op_base(it.op) == OpBase::kAnd ? "all1" : "any0") +
                   "; " + du + " = ~(all1 | any0); }\n";
              break;
            case OpBase::kOr:
            case OpBase::kNor:
              s += "    { const uint64_t any1 = " + join_v(o, it.nin, " | ") +
                   ";\n      const uint64_t all0 = " +
                   join_known0(o, it.nin, " & ") + ";\n      " + dv + " = " +
                   (op_base(it.op) == OpBase::kOr ? "any1" : "all0") +
                   "; " + du + " = ~(any1 | all0); }\n";
              break;
            case OpBase::kXor:
            case OpBase::kXnor:
              s += "    { const uint64_t xu = " + join_u(o, it.nin) +
                   ";\n      " + dv + " = " +
                   (op_base(it.op) == OpBase::kXor ? "(" : "~(") +
                   join_v(o, it.nin, " ^ ") + ") & ~xu; " + du +
                   " = xu; }\n";
              break;
            case OpBase::kResolve: {
              // Pairwise wired-and accumulation, same order as the
              // interpreter.
              s += "    { uint64_t rv = " + rv(o[0]) +
                   "; uint64_t ru = " + ru(o[0]) + ";\n";
              for (std::uint32_t j = 1; j < it.nin; ++j) {
                s += "      ru |= " + ru(o[j]) + " | (rv ^ " + rv(o[j]) +
                     "); rv &= " + rv(o[j]) + ";\n";
              }
              s += "      " + dv + " = rv & ~ru; " + du + " = ru; }\n";
              break;
            }
          }
        } else {
          switch (op_base(it.op)) {
            case OpBase::kBuf:
              s += "    " + dv + " = " + rv(o[0]) + ";\n";
              break;
            case OpBase::kNot:
              s += "    " + dv + " = ~" + rv(o[0]) + ";\n";
              break;
            case OpBase::kAnd:
              s += "    " + dv + " = " + join_v(o, it.nin, " & ") + ";\n";
              break;
            case OpBase::kNand:
              s += "    " + dv + " = ~(" + join_v(o, it.nin, " & ") + ");\n";
              break;
            case OpBase::kOr:
              s += "    " + dv + " = " + join_v(o, it.nin, " | ") + ";\n";
              break;
            case OpBase::kNor:
              s += "    " + dv + " = ~(" + join_v(o, it.nin, " | ") + ");\n";
              break;
            case OpBase::kXor:
              s += "    " + dv + " = " + join_v(o, it.nin, " ^ ") + ";\n";
              break;
            case OpBase::kXnor:
              s += "    " + dv + " = ~(" + join_v(o, it.nin, " ^ ") + ");\n";
              break;
            case OpBase::kResolve:
              break;  // unreachable: fast-path eligibility excludes resolution
          }
        }
        local[it.out] = cur;
        if (mat[it.out]) {
          const std::string os = std::to_string(it.out);
          s += "    V[" + os + "*W+w] = " + dv + ";";
          if (two_plane) s += " U[" + os + "*W+w] = " + du + ";";
          s += "\n";
        }
      }
      s += "  }\n}\n";
    }
    s += std::string("void pp_jit_eval") + tag + args + " {\n";
    if (p.instrs.empty())
      s += two_plane ? "  (void)V; (void)U;\n" : "  (void)V;\n";
    for (std::size_t c = 0; c < nchunks; ++c)
      s += std::string("  pp_c") + tag + "_" + std::to_string(c) +
           (two_plane ? "(V, U);\n" : "(V);\n");
    s += "}\n";
  };
  emit_fn(/*two_plane=*/true);
  if (p.fast_path_ok) emit_fn(/*two_plane=*/false);
  return s;
}

// ---------------------------------------------------------------------------
// Out-of-process compilation
// ---------------------------------------------------------------------------

[[nodiscard]] std::vector<std::string> split_ws(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

/// fork/execvp `argv`, stdout/stderr captured to files (empty path =
/// /dev/null).  Returns the exit code, 127 when exec itself failed, or -1
/// when fork/waitpid failed.
[[nodiscard]] int run_command(const std::vector<std::string>& argv,
                              const std::string& out_path,
                              const std::string& err_path) {
  std::vector<char*> av;
  av.reserve(argv.size() + 1);
  for (const std::string& a : argv) av.push_back(const_cast<char*>(a.c_str()));
  av.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    const char* out = out_path.empty() ? "/dev/null" : out_path.c_str();
    const char* err = err_path.empty() ? "/dev/null" : err_path.c_str();
    if (!::freopen(out, "w", stdout) || !::freopen(err, "w", stderr))
      ::_exit(127);
    ::execvp(av[0], av.data());
    ::_exit(127);
  }
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0)
    if (errno != EINTR) return -1;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  return -1;
}

[[nodiscard]] std::string read_text_file(const std::string& path,
                                         std::size_t max_bytes = 4096) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::string s(max_bytes, '\0');
  in.read(s.data(), static_cast<std::streamsize>(max_bytes));
  s.resize(static_cast<std::size_t>(in.gcount()));
  return s;
}

[[nodiscard]] bool write_file(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  return static_cast<bool>(out);
}

/// First line of `<cc> --version`, cached per compiler command for the
/// process lifetime (the identity participates in every cache key, so it
/// is on the build path of every kernel).  Empty Result = no compiler.
[[nodiscard]] Result<std::string> compiler_identity(
    const std::vector<std::string>& cc, const std::string& scratch_dir) {
  static std::mutex mu;
  static std::map<std::string, Result<std::string>> cache;
  std::string key;
  for (const std::string& a : cc) {
    key += a;
    key += '\x1f';
  }
  std::lock_guard<std::mutex> lock(mu);
  if (auto it = cache.find(key); it != cache.end()) return it->second;

  static std::atomic<std::uint64_t> seq{0};
  const std::string out = scratch_dir + "/tmp-ccid-" +
                          std::to_string(::getpid()) + "-" +
                          std::to_string(seq.fetch_add(1));
  std::vector<std::string> argv = cc;
  argv.emplace_back("--version");
  const int rc = run_command(argv, out, "");
  std::string first = read_text_file(out, 512);
  std::error_code ec;
  fs::remove(out, ec);
  if (const std::size_t nl = first.find('\n'); nl != std::string::npos)
    first.resize(nl);
  Result<std::string> r =
      (rc != 0 || first.empty())
          ? Result<std::string>(Status::unavailable(
                "jit: host compiler '" + cc.front() +
                "' not found or not runnable (exit " + std::to_string(rc) +
                ") — set PP_JIT_CC or keep serving on the interpreter"))
          : Result<std::string>(std::move(first));
  cache.emplace(key, r);
  return r;
}

// ---------------------------------------------------------------------------
// Kernel cache
// ---------------------------------------------------------------------------

[[nodiscard]] std::uint32_t file_crc32(const std::string& path,
                                       std::uint64_t& size_out) {
  std::ifstream in(path, std::ios::binary);
  size_out = 0;
  if (!in) return 0;
  std::vector<std::uint8_t> buf(std::istreambuf_iterator<char>(in), {});
  size_out = buf.size();
  return core::crc32(buf);
}

struct MetaFile {
  std::string digest;
  std::uint64_t size = 0;
  std::uint32_t crc = 0;
  std::string compiler;
};

[[nodiscard]] std::string meta_to_text(const MetaFile& m) {
  return "pp-jit-meta v1\ndigest " + m.digest + "\nsize " +
         std::to_string(m.size) + "\ncrc32 " + std::to_string(m.crc) +
         "\ncompiler " + m.compiler + "\n";
}

[[nodiscard]] bool meta_from_text(const std::string& text, MetaFile& m) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "pp-jit-meta v1") return false;
  bool have_digest = false, have_size = false, have_crc = false;
  while (std::getline(in, line)) {
    const std::size_t sp = line.find(' ');
    if (sp == std::string::npos) continue;
    const std::string k = line.substr(0, sp), v = line.substr(sp + 1);
    if (k == "digest") {
      m.digest = v;
      have_digest = true;
    } else if (k == "size") {
      m.size = std::strtoull(v.c_str(), nullptr, 10);
      have_size = true;
    } else if (k == "crc32") {
      m.crc = static_cast<std::uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
      have_crc = true;
    } else if (k == "compiler") {
      m.compiler = v;
    }
  }
  return have_digest && have_size && have_crc;
}

/// Process-unique temp path prefix inside the cache directory (same
/// filesystem as the final name, so rename(2) is atomic).
[[nodiscard]] std::string temp_prefix(const std::string& dir) {
  static std::atomic<std::uint64_t> seq{0};
  return dir + "/tmp-" + std::to_string(::getpid()) + "-" +
         std::to_string(seq.fetch_add(1));
}

void remove_quiet(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
}

}  // namespace

// ---------------------------------------------------------------------------
// Kernel module: one dlopened mode image
// ---------------------------------------------------------------------------

using EvalFn2 = void (*)(std::uint64_t*, std::uint64_t*);
using EvalFn1 = void (*)(std::uint64_t*);

struct JitKernel {
  std::shared_ptr<const CompiledEval::Program> program;
  std::string so_path;      ///< cache entry backing this module
  std::string meta_path;
  void* handle = nullptr;   ///< dlopen handle, closed exactly once
  EvalFn2 eval2 = nullptr;
  EvalFn1 eval1 = nullptr;  ///< null unless the program is fast-path eligible

  JitKernel() = default;
  JitKernel(const JitKernel&) = delete;
  JitKernel& operator=(const JitKernel&) = delete;
  ~JitKernel() {
    if (handle) ::dlclose(handle);
  }
};

struct JitSharedStats {
  std::atomic<std::uint64_t> fast_passes{0};
  std::atomic<std::uint64_t> slow_passes{0};
  std::atomic<std::uint64_t> cycles_run{0};
  std::atomic<std::uint64_t> state_commits{0};
  std::atomic<std::uint64_t> fast_cycle_passes{0};
  void reset() {
    fast_passes = 0;
    slow_passes = 0;
    cycles_run = 0;
    state_commits = 0;
    fast_cycle_passes = 0;
  }
};

namespace {

/// dlopen `so_path` and validate every exported symbol against the
/// program: ABI tag, scratch shape, fast-path presence, and the embedded
/// program digest.  Any mismatch (or dlopen/dlsym failure) is a poisoned
/// entry — the caller evicts it.  RTLD_LOCAL keeps kernel symbols out of
/// the process's global namespace (every module exports the same names).
[[nodiscard]] Status open_and_validate(
    JitKernel& k, const std::shared_ptr<const CompiledEval::Program>& p,
    const std::string& so_path, const std::string& digest_hex) {
  void* handle = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!handle) {
    const char* err = ::dlerror();
    return Status::data_loss("jit: dlopen(" + so_path +
                             ") failed: " + (err ? err : "unknown"));
  }
  // From here every failure path must dlclose — stash the handle first so
  // the Kernel destructor owns the lifecycle even mid-validation.
  k.handle = handle;
  k.program = p;
  k.so_path = so_path;

  auto sym = [&](const char* name) { return ::dlsym(handle, name); };
  const auto* abi = static_cast<const std::uint32_t*>(sym("pp_jit_abi"));
  const auto* w = static_cast<const std::uint32_t*>(sym("pp_jit_w"));
  const auto* slots = static_cast<const std::uint32_t*>(sym("pp_jit_slots"));
  const auto* has_fast =
      static_cast<const std::uint32_t*>(sym("pp_jit_has_fast"));
  const auto* digest = static_cast<const char*>(sym("pp_jit_digest"));
  if (!abi || !w || !slots || !has_fast || !digest)
    return Status::data_loss("jit: " + so_path +
                             " is missing kernel metadata symbols");
  if (*abi != 1u)
    return Status::data_loss("jit: " + so_path + " has ABI " +
                             std::to_string(*abi) + ", expected 1");
  if (*w != static_cast<std::uint32_t>(p->wide_words) ||
      *slots != static_cast<std::uint32_t>(p->init.size()) ||
      (*has_fast != 0u) != p->fast_path_ok)
    return Status::data_loss("jit: " + so_path +
                             " kernel shape does not match the program");
  if (digest_hex != digest)
    return Status::data_loss("jit: " + so_path +
                             " embeds program digest " + std::string(digest) +
                             ", expected " + digest_hex +
                             " (stale or colliding cache entry)");
  k.eval2 = reinterpret_cast<EvalFn2>(sym("pp_jit_eval2"));
  if (!k.eval2)
    return Status::data_loss("jit: " + so_path + " exports no pp_jit_eval2");
  if (p->fast_path_ok) {
    k.eval1 = reinterpret_cast<EvalFn1>(sym("pp_jit_eval1"));
    if (!k.eval1)
      return Status::data_loss("jit: " + so_path + " exports no pp_jit_eval1");
  }
  return Status();
}

}  // namespace

// ---------------------------------------------------------------------------
// JitEval runtime
// ---------------------------------------------------------------------------

JitEval::JitEval(std::vector<std::shared_ptr<const JitKernel>> kernels,
                 std::shared_ptr<const JitBuildInfo> info,
                 std::shared_ptr<JitSharedStats> stats)
    : kernels_(std::move(kernels)),
      info_(std::move(info)),
      stats_(std::move(stats)) {
  value_.resize(kernels_.size());
  unknown_.resize(kernels_.size());
  for (std::size_t m = 0; m < kernels_.size(); ++m) {
    const CompiledEval::Program& p = *kernels_[m]->program;
    const auto W = static_cast<std::size_t>(p.wide_words);
    value_[m].assign(p.init.size() * W, 0);
    unknown_[m].assign(p.init.size() * W, 0);
    // The scratch stride is fixed at W for the kernel's lifetime, so the
    // constant image broadcasts exactly once.
    for (const std::uint32_t s : p.const_slots) {
      const PackedBits b = p.init[s];
      for (std::size_t w = 0; w < W; ++w) {
        value_[m][std::size_t{s} * W + w] = b.value;
        unknown_[m][std::size_t{s} * W + w] = b.unknown;
      }
    }
  }
  const CompiledEval::Program& p0 = *kernels_.front()->program;
  seq_words_ = static_cast<std::size_t>(p0.wide_words);
  if (!p0.regs.empty()) reset_state();
}

std::size_t JitEval::input_count() const noexcept {
  return kernels_.front()->program->n_public_in;
}
std::size_t JitEval::output_count() const noexcept {
  return kernels_.front()->program->n_public_out;
}
std::size_t JitEval::mode_count() const noexcept { return kernels_.size(); }
bool JitEval::sequential() const noexcept {
  return kernels_.front()->program->is_sequential;
}
std::size_t JitEval::preferred_words() const noexcept {
  return static_cast<std::size_t>(kernels_.front()->program->wide_words);
}

void JitEval::reset_state() {
  const CompiledEval::Program& p = *kernels_.front()->program;
  const auto W = static_cast<std::size_t>(p.wide_words);
  for (const SeqReg& r : p.regs) {
    std::uint64_t* qv = value_.front().data() + std::size_t{r.q_slot} * W;
    std::uint64_t* qu = unknown_.front().data() + std::size_t{r.q_slot} * W;
    for (std::size_t w = 0; w < W; ++w) {
      qv[w] = r.reset.value;
      qu[w] = r.reset.unknown;
    }
  }
}

std::unique_ptr<Evaluator> JitEval::clone() const {
  return std::unique_ptr<Evaluator>(new JitEval(kernels_, info_, stats_));
}

CompiledEval::KernelStats JitEval::kernel_stats() const noexcept {
  return {stats_->fast_passes.load(std::memory_order_relaxed),
          stats_->slow_passes.load(std::memory_order_relaxed),
          stats_->cycles_run.load(std::memory_order_relaxed),
          stats_->state_commits.load(std::memory_order_relaxed),
          stats_->fast_cycle_passes.load(std::memory_order_relaxed)};
}

Status JitEval::eval_wide_mode(std::size_t mode,
                               std::span<const std::uint64_t> in_value,
                               std::span<const std::uint64_t> in_unknown,
                               std::span<std::uint64_t> out_value,
                               std::span<std::uint64_t> out_unknown,
                               std::size_t lanes) {
  const JitKernel& k = *kernels_[mode];
  const CompiledEval::Program& p = *k.program;
  if (p.is_sequential)
    return Status::failed_precondition(
        "eval_wide: sequential program (register state needs a cycle "
        "protocol) — use run_cycles");
  const std::size_t nin = p.in_slots.size();
  const std::size_t nout = p.out_slots.size();
  if (lanes < 1)
    return Status::invalid_argument("eval_wide: lanes must be >= 1");
  const std::size_t words =
      (lanes + Evaluator::kBatchLanes - 1) / Evaluator::kBatchLanes;
  if (in_value.size() != nin * words || in_unknown.size() != nin * words ||
      out_value.size() != nout * words || out_unknown.size() != nout * words)
    return Status::invalid_argument(
        "eval_wide: " + std::to_string(lanes) + " lanes span " +
        std::to_string(words) + " words, so expected " +
        std::to_string(nin * words) + " input and " +
        std::to_string(nout * words) +
        " output plane words per plane (value/unknown)");

  const auto W = static_cast<std::size_t>(p.wide_words);
  std::uint64_t* val = value_[mode].data();
  std::uint64_t* unk = unknown_[mode].data();
  for (std::size_t w0 = 0; w0 < words; w0 += W) {
    const std::size_t nw = std::min(W, words - w0);
    // Load inputs at the fixed stride W; only the nw live words are
    // written (the kernel computes garbage in the dead words, which the
    // masked store below never reads).
    std::uint64_t any_unknown = 0;
    for (std::size_t i = 0; i < nin; ++i) {
      const std::uint64_t* sv = in_value.data() + i * words + w0;
      const std::uint64_t* su = in_unknown.data() + i * words + w0;
      std::uint64_t* dv = val + std::size_t{p.in_slots[i]} * W;
      std::uint64_t* du = unk + std::size_t{p.in_slots[i]} * W;
      for (std::size_t w = 0; w < nw; ++w) {
        const std::uint64_t m = word_mask(lanes, w0 + w);
        const std::uint64_t u = su[w] & m;
        dv[w] = sv[w] & ~u & m;
        du[w] = u;
        any_unknown |= u;
      }
    }

    const bool fast = p.fast_path_ok && any_unknown == 0;
    (fast ? stats_->fast_passes : stats_->slow_passes)
        .fetch_add(1, std::memory_order_relaxed);
    if (fast)
      k.eval1(val);
    else
      k.eval2(val, unk);

    for (std::size_t kk = 0; kk < nout; ++kk) {
      const std::uint64_t* sv = val + std::size_t{p.out_slots[kk]} * W;
      const std::uint64_t* su = unk + std::size_t{p.out_slots[kk]} * W;
      std::uint64_t* dv = out_value.data() + kk * words + w0;
      std::uint64_t* du = out_unknown.data() + kk * words + w0;
      for (std::size_t w = 0; w < nw; ++w) {
        const std::uint64_t m = word_mask(lanes, w0 + w);
        dv[w] = sv[w] & m;
        du[w] = fast ? 0 : su[w] & m;
      }
    }
  }
  return Status();
}

Status JitEval::eval_wide(std::span<const std::uint64_t> in_value,
                          std::span<const std::uint64_t> in_unknown,
                          std::span<std::uint64_t> out_value,
                          std::span<std::uint64_t> out_unknown,
                          std::size_t lanes) {
  return eval_wide_mode(0, in_value, in_unknown, out_value, out_unknown,
                        lanes);
}

Status JitEval::eval_modes(std::span<const std::uint64_t> in_value,
                           std::span<const std::uint64_t> in_unknown,
                           std::span<std::uint64_t> out_value,
                           std::span<std::uint64_t> out_unknown,
                           std::size_t lanes_per_mode) {
  const std::size_t modes = kernels_.size();
  if (modes == 1)
    return eval_wide(in_value, in_unknown, out_value, out_unknown,
                     lanes_per_mode);
  const CompiledEval::Program& p0 = *kernels_.front()->program;
  const std::size_t nin = p0.in_slots.size();
  const std::size_t nout = p0.out_slots.size();
  if (lanes_per_mode == 0)
    return Status::invalid_argument("eval_modes: lanes_per_mode must be >= 1");
  const std::size_t wpm =
      (lanes_per_mode + kBatchLanes - 1) / kBatchLanes;
  if (in_value.size() != nin * modes * wpm ||
      in_unknown.size() != nin * modes * wpm ||
      out_value.size() != nout * modes * wpm ||
      out_unknown.size() != nout * modes * wpm)
    return Status::invalid_argument(
        "eval_modes: plane spans must be exactly nets * modes * " +
        std::to_string(wpm) + " words (mode-major lane groups)");

  mode_buf_.resize(2 * (nin + nout) * wpm);
  std::uint64_t* iv = mode_buf_.data();
  std::uint64_t* iu = iv + nin * wpm;
  std::uint64_t* ov = iu + nin * wpm;
  std::uint64_t* ou = ov + nout * wpm;
  for (std::size_t m = 0; m < modes; ++m) {
    for (std::size_t i = 0; i < nin; ++i)
      for (std::size_t w = 0; w < wpm; ++w) {
        iv[i * wpm + w] = in_value[(i * modes + m) * wpm + w];
        iu[i * wpm + w] = in_unknown[(i * modes + m) * wpm + w];
      }
    if (Status s = eval_wide_mode(m, {iv, nin * wpm}, {iu, nin * wpm},
                                  {ov, nout * wpm}, {ou, nout * wpm},
                                  lanes_per_mode);
        !s.ok())
      return Status(s.code(), "eval_modes: mode " + std::to_string(m) + ": " +
                                  s.message());
    for (std::size_t kk = 0; kk < nout; ++kk)
      for (std::size_t w = 0; w < wpm; ++w) {
        out_value[(kk * modes + m) * wpm + w] = ov[kk * wpm + w];
        out_unknown[(kk * modes + m) * wpm + w] = ou[kk * wpm + w];
      }
  }
  return Status();
}

Status JitEval::eval_packed(std::span<const PackedBits> inputs,
                            std::span<PackedBits> outputs, int lanes) {
  const CompiledEval::Program& p = *kernels_.front()->program;
  if (p.is_sequential)
    return Status::failed_precondition(
        "eval_packed: sequential program (register state needs a cycle "
        "protocol) — use run_cycles");
  if (lanes < 1 || lanes > kBatchLanes)
    return Status::invalid_argument("eval_packed: lanes must be 1.." +
                                    std::to_string(kBatchLanes));
  const std::size_t nin = p.in_slots.size();
  const std::size_t nout = p.out_slots.size();
  if (inputs.size() != nin || outputs.size() != nout)
    return Status::invalid_argument(
        "eval_packed: expected " + std::to_string(nin) + " inputs and " +
        std::to_string(nout) + " outputs");
  shim_.resize(2 * (nin + nout));
  std::uint64_t* iv = shim_.data();
  std::uint64_t* iu = iv + nin;
  std::uint64_t* ov = iu + nin;
  std::uint64_t* ou = ov + nout;
  for (std::size_t i = 0; i < nin; ++i) {
    iv[i] = inputs[i].value;
    iu[i] = inputs[i].unknown;
  }
  if (Status s = eval_wide({iv, nin}, {iu, nin}, {ov, nout}, {ou, nout},
                           static_cast<std::size_t>(lanes));
      !s.ok())
    return s;
  for (std::size_t kk = 0; kk < nout; ++kk) outputs[kk] = {ov[kk], ou[kk]};
  return Status();
}

bool JitEval::settle_fixpoint(std::size_t nw, bool fast,
                              std::size_t max_iters) {
  const JitKernel& k = *kernels_.front();
  const CompiledEval::Program& p = *k.program;
  const auto W = static_cast<std::size_t>(p.wide_words);
  std::uint64_t* val = value_.front().data();
  std::uint64_t* unk = unknown_.front().data();
  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    if (fast)
      k.eval1(val);
    else
      k.eval2(val, unk);
    if (!p.has_settle_regs) return true;  // edge-triggered only: one pass

    // Same simultaneous two-phase staging as the interpreter's
    // settle_fixpoint, at the fixed stride W over the nw live words
    // (delta over the live words only — the dead tail holds garbage the
    // kernel keeps recomputing, which must not block convergence).
    std::uint64_t* tv = seq_tmp_.data();
    std::uint64_t* tu = tv + p.regs.size() * W;
    for (std::size_t ri = 0; ri < p.regs.size(); ++ri) {
      const SeqReg& r = p.regs[ri];
      if (r.kind != SeqReg::Kind::kLatch && r.kind != SeqReg::Kind::kDffRst)
        continue;
      const std::uint64_t* qv = val + std::size_t{r.q_slot} * W;
      const std::uint64_t* qu = unk + std::size_t{r.q_slot} * W;
      const std::uint64_t* dv = val + std::size_t{r.d_slot} * W;
      const std::uint64_t* du = unk + std::size_t{r.d_slot} * W;
      const std::uint64_t* cv = val + std::size_t{r.ctl_slot} * W;
      const std::uint64_t* cu = unk + std::size_t{r.ctl_slot} * W;
      std::uint64_t* nv = tv + ri * W;
      std::uint64_t* nu = tu + ri * W;
      if (r.kind == SeqReg::Kind::kLatch) {
        if (fast) {
          for (std::size_t w = 0; w < nw; ++w)
            nv[w] = (cv[w] & dv[w]) | (~cv[w] & qv[w]);
        } else {
          for (std::size_t w = 0; w < nw; ++w) {
            const std::uint64_t en1 = cv[w] & ~cu[w];
            nv[w] = (en1 & dv[w]) | (~en1 & qv[w]);
            nu[w] = (en1 & du[w]) | (~en1 & qu[w]);
          }
        }
      } else {
        if (fast) {
          for (std::size_t w = 0; w < nw; ++w) nv[w] = qv[w] & cv[w];
        } else {
          for (std::size_t w = 0; w < nw; ++w) {
            const std::uint64_t rst0 = ~cv[w] & ~cu[w];
            nv[w] = qv[w] & ~rst0;
            nu[w] = qu[w] & ~rst0;
          }
        }
      }
    }
    std::uint64_t delta = 0;
    for (std::size_t ri = 0; ri < p.regs.size(); ++ri) {
      const SeqReg& r = p.regs[ri];
      if (r.kind != SeqReg::Kind::kLatch && r.kind != SeqReg::Kind::kDffRst)
        continue;
      std::uint64_t* qv = val + std::size_t{r.q_slot} * W;
      std::uint64_t* qu = unk + std::size_t{r.q_slot} * W;
      const std::uint64_t* nv = tv + ri * W;
      const std::uint64_t* nu = tu + ri * W;
      for (std::size_t w = 0; w < nw; ++w) {
        delta |= qv[w] ^ nv[w];
        qv[w] = nv[w];
      }
      if (!fast)
        for (std::size_t w = 0; w < nw; ++w) {
          delta |= qu[w] ^ nu[w];
          qu[w] = nu[w];
        }
    }
    if (delta == 0) return true;
  }
  return false;
}

Status JitEval::run_cycles(std::span<const std::uint64_t> in_value,
                           std::span<const std::uint64_t> in_unknown,
                           std::span<std::uint64_t> out_value,
                           std::span<std::uint64_t> out_unknown,
                           std::size_t cycles, std::size_t lanes, bool reset) {
  const CompiledEval::Program& p = *kernels_.front()->program;
  const std::size_t nin = p.n_public_in;
  const std::size_t nout = p.n_public_out;
  if (cycles < 1)
    return Status::invalid_argument("run_cycles: cycles must be >= 1");
  if (lanes < 1)
    return Status::invalid_argument("run_cycles: lanes must be >= 1");
  const std::size_t words =
      (lanes + Evaluator::kBatchLanes - 1) / Evaluator::kBatchLanes;
  if (in_value.size() != nin * cycles * words ||
      in_unknown.size() != nin * cycles * words ||
      out_value.size() != nout * cycles * words ||
      out_unknown.size() != nout * cycles * words)
    return Status::invalid_argument(
        "run_cycles: " + std::to_string(lanes) + " lanes over " +
        std::to_string(cycles) + " cycles expect " +
        std::to_string(nin * cycles * words) + " input and " +
        std::to_string(nout * cycles * words) +
        " output plane words per plane");
  if (!reset && seq_words_ != words)
    return Status::failed_precondition(
        "run_cycles: reset=false continues from carried register state, "
        "which lives at the previous call's lane width (" +
        std::to_string(seq_words_) + " plane words, got " +
        std::to_string(words) + ")");

  const JitKernel& k = *kernels_.front();
  const auto W = static_cast<std::size_t>(p.wide_words);
  seq_tmp_.resize(2 * p.regs.size() * W);
  const std::size_t max_iters = p.regs.size() + 8;
  std::uint64_t* val = value_.front().data();
  std::uint64_t* unk = unknown_.front().data();
  (void)k;

  for (std::size_t w0 = 0; w0 < words; w0 += W) {
    const std::size_t nw = std::min(W, words - w0);
    seq_words_ = nw;
    if (reset) reset_state();
    for (std::size_t c = 0; c < cycles; ++c) {
      std::uint64_t any_unknown = 0;
      for (std::size_t i = 0; i < nin; ++i) {
        const std::uint64_t* sv = in_value.data() + (c * nin + i) * words + w0;
        const std::uint64_t* su =
            in_unknown.data() + (c * nin + i) * words + w0;
        std::uint64_t* dv = val + std::size_t{p.in_slots[i]} * W;
        std::uint64_t* du = unk + std::size_t{p.in_slots[i]} * W;
        for (std::size_t w = 0; w < nw; ++w) {
          const std::uint64_t m = word_mask(lanes, w0 + w);
          const std::uint64_t u = su[w] & m;
          dv[w] = sv[w] & ~u & m;
          du[w] = u;
          any_unknown |= u;
        }
      }
      std::uint64_t state_unknown = 0;
      for (const SeqReg& r : p.regs) {
        const std::uint64_t* qu = unk + std::size_t{r.q_slot} * W;
        for (std::size_t w = 0; w < nw; ++w)
          state_unknown |= qu[w] & word_mask(lanes, w0 + w);
      }
      const bool fast =
          p.fast_path_ok && any_unknown == 0 && state_unknown == 0;
      stats_->cycles_run.fetch_add(1, std::memory_order_relaxed);
      if (fast)
        stats_->fast_cycle_passes.fetch_add(1, std::memory_order_relaxed);

      if (!settle_fixpoint(nw, fast, max_iters))
        return Status::resource_exhausted(
            "run_cycles: level-sensitive feedback failed to settle after " +
            std::to_string(max_iters) + " iterations (oscillation?)");

      for (std::size_t kk = 0; kk < nout; ++kk) {
        const std::uint64_t* sv = val + std::size_t{p.out_slots[kk]} * W;
        const std::uint64_t* su = unk + std::size_t{p.out_slots[kk]} * W;
        std::uint64_t* dv = out_value.data() + (c * nout + kk) * words + w0;
        std::uint64_t* du = out_unknown.data() + (c * nout + kk) * words + w0;
        for (std::size_t w = 0; w < nw; ++w) {
          const std::uint64_t m = word_mask(lanes, w0 + w);
          dv[w] = sv[w] & m;
          du[w] = fast ? 0 : su[w] & m;
        }
      }

      if (p.n_edge_regs != 0) {
        std::uint64_t* tv = seq_tmp_.data();
        std::uint64_t* tu = tv + p.regs.size() * W;
        for (std::size_t ri = 0; ri < p.regs.size(); ++ri) {
          const SeqReg& r = p.regs[ri];
          if (r.kind == SeqReg::Kind::kLatch) continue;
          const std::uint64_t* dvs = val + std::size_t{r.d_slot} * W;
          const std::uint64_t* dus = unk + std::size_t{r.d_slot} * W;
          std::uint64_t* nv = tv + ri * W;
          std::uint64_t* nu = tu + ri * W;
          if (r.kind == SeqReg::Kind::kDffRst) {
            const std::uint64_t* cv = val + std::size_t{r.ctl_slot} * W;
            const std::uint64_t* cu = unk + std::size_t{r.ctl_slot} * W;
            if (fast) {
              for (std::size_t w = 0; w < nw; ++w) nv[w] = dvs[w] & cv[w];
            } else {
              for (std::size_t w = 0; w < nw; ++w) {
                const std::uint64_t rst0 = ~cv[w] & ~cu[w];
                nv[w] = dvs[w] & ~rst0;
                nu[w] = dus[w] & ~rst0;
              }
            }
          } else if (fast) {
            for (std::size_t w = 0; w < nw; ++w) nv[w] = dvs[w];
          } else {
            for (std::size_t w = 0; w < nw; ++w) {
              nv[w] = dvs[w];
              nu[w] = dus[w];
            }
          }
        }
        std::uint64_t edge_delta = 0;
        for (std::size_t ri = 0; ri < p.regs.size(); ++ri) {
          const SeqReg& r = p.regs[ri];
          if (r.kind == SeqReg::Kind::kLatch) continue;
          std::uint64_t* qv = val + std::size_t{r.q_slot} * W;
          std::uint64_t* qu = unk + std::size_t{r.q_slot} * W;
          const std::uint64_t* nv = tv + ri * W;
          const std::uint64_t* nu = tu + ri * W;
          for (std::size_t w = 0; w < nw; ++w) {
            edge_delta |= qv[w] ^ nv[w];
            qv[w] = nv[w];
          }
          if (!fast)
            for (std::size_t w = 0; w < nw; ++w) {
              edge_delta |= qu[w] ^ nu[w];
              qu[w] = nu[w];
            }
        }
        stats_->state_commits.fetch_add(p.n_edge_regs,
                                        std::memory_order_relaxed);
        if (edge_delta != 0 && p.has_settle_regs &&
            !settle_fixpoint(nw, fast, max_iters))
          return Status::resource_exhausted(
              "run_cycles: post-edge feedback failed to settle after " +
              std::to_string(max_iters) + " iterations (oscillation?)");
      }
    }
  }
  return Status();
}

// ---------------------------------------------------------------------------
// build(): codegen -> cache -> compile -> dlopen -> verify
// ---------------------------------------------------------------------------

namespace {

/// xorshift64 — deterministic stimulus for the differential gate.
struct VerifyRng {
  std::uint64_t s = 0x9e3779b97f4a7c15ull;
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
};

/// Random plane pair with ~1/8 unknown density (canonical), or all-known
/// when `with_x` is false.
void fill_planes(VerifyRng& rng, std::span<std::uint64_t> value,
                 std::span<std::uint64_t> unknown, bool with_x) {
  for (std::size_t i = 0; i < value.size(); ++i) {
    const std::uint64_t u =
        with_x ? (rng.next() & rng.next() & rng.next()) : 0;
    value[i] = rng.next() & ~u;
    unknown[i] = u;
  }
}

}  // namespace

Result<JitEval> JitEval::build(const CompiledEval& base,
                               const JitOptions& options) {
  // Snapshot the immutable program set — `base` may be serving traffic on
  // another thread; nothing below mutates it.
  std::vector<std::shared_ptr<const CompiledEval::Program>> programs;
  programs.push_back(base.program_);
  for (const auto& sub : base.modal_) programs.push_back(sub->program_);
  for (const auto& p : programs)
    if (p->instrs.size() > options.max_instructions)
      return Status::unavailable(
          "jit: program has " + std::to_string(p->instrs.size()) +
          " instructions, above the " +
          std::to_string(options.max_instructions) +
          "-instruction JIT ceiling — the interpreter serves it");

  // Resolve the compiler command and cache directory ($PP_JIT_CC /
  // $PP_JIT_CACHE, then defaults).
  std::string cc_spec = options.cc;
  if (cc_spec.empty()) {
    const char* env = std::getenv("PP_JIT_CC");
    cc_spec = env && *env ? env : "cc";
  }
  const std::vector<std::string> cc = split_ws(cc_spec);
  if (cc.empty())
    return Status::invalid_argument("jit: empty compiler command");

  std::string dir = options.cache_dir;
  if (dir.empty()) {
    if (const char* env = std::getenv("PP_JIT_CACHE"); env && *env) {
      dir = env;
    } else {
      const char* tmp = std::getenv("TMPDIR");
      dir = std::string(tmp && *tmp ? tmp : "/tmp") + "/pp-jit-cache";
    }
  }
  {
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
      return Status::unavailable("jit: cannot create kernel cache '" + dir +
                                 "': " + ec.message());
  }

  Result<std::string> identity = compiler_identity(cc, dir);
  if (!identity.ok()) return identity.status();

  JitBuildInfo info;
  info.compiler = *identity;
  info.cache_hit = true;

  // Build (or cache-load) one kernel module per mode image.
  std::vector<std::shared_ptr<const JitKernel>> kernels;
  kernels.reserve(programs.size());
  for (std::size_t m = 0; m < programs.size(); ++m) {
    const auto& prog = programs[m];
    const std::string digest_hex = hex16(program_digest(*prog));
    const std::string source = emit_c(*prog, digest_hex);
    std::uint64_t kh = kFnvOffset;
    fnv_str(kh, source);
    fnv_str(kh, info.compiler);
    fnv_str(kh, options.extra_cflags);
    const std::string key = hex16(kh);
    const std::string so_path = dir + "/pp-" + key + ".so";
    const std::string meta_path = so_path + ".meta";
    if (m == 0) {
      info.key = key;
      info.so_path = so_path;
    }

    // Cache probe: the .meta sidecar is the commit marker.  Every
    // validation failure from here to dlopen evicts the entry and falls
    // through to a rebuild — a cache can only ever cost a recompile,
    // never serve a wrong kernel.
    auto kernel = std::make_shared<JitKernel>();
    bool loaded = false;
    if (const std::string meta_text = read_text_file(meta_path);
        !meta_text.empty()) {
      MetaFile meta;
      std::uint64_t so_size = 0;
      const std::uint32_t so_crc = file_crc32(so_path, so_size);
      if (meta_from_text(meta_text, meta) && meta.digest == digest_hex &&
          meta.size == so_size && meta.crc == so_crc) {
        if (open_and_validate(*kernel, prog, so_path, digest_hex).ok()) {
          loaded = true;
        } else {
          kernel = std::make_shared<JitKernel>();  // drop the poisoned handle
        }
      }
      if (!loaded) {
        remove_quiet(meta_path);
        remove_quiet(so_path);
        info.evicted = true;
      }
    }

    if (!loaded) {
      info.cache_hit = false;
      // Compile out-of-process into temp names, then rename into place
      // (.so first, .meta last) so concurrent builders race benignly.
      const std::string tmp = temp_prefix(dir);
      const std::string c_path = tmp + ".c";
      const std::string so_tmp = tmp + ".so";
      const std::string err_path = tmp + ".err";
      if (!write_file(c_path, source))
        return Status::unavailable("jit: cannot write " + c_path);
      std::vector<std::string> argv = cc;
      argv.insert(argv.end(), {"-O2", "-shared", "-fPIC"});
      for (const std::string& f : split_ws(options.extra_cflags))
        argv.push_back(f);
      argv.insert(argv.end(), {"-o", so_tmp, c_path});
      const int rc = run_command(argv, "", err_path);
      if (rc != 0) {
        std::string err = read_text_file(err_path, 1024);
        remove_quiet(c_path);
        remove_quiet(so_tmp);
        remove_quiet(err_path);
        return Status::unavailable(
            "jit: '" + cc.front() + "' failed (exit " + std::to_string(rc) +
            ") compiling the generated kernel" +
            (err.empty() ? std::string() : ":\n" + err));
      }
      remove_quiet(err_path);
      if (options.keep_source) {
        std::error_code ec;
        fs::rename(c_path, so_path + ".c", ec);
      } else {
        remove_quiet(c_path);
      }
      MetaFile meta;
      meta.digest = digest_hex;
      meta.crc = file_crc32(so_tmp, meta.size);
      meta.compiler = info.compiler;
      const std::string meta_tmp = tmp + ".meta";
      std::error_code ec;
      fs::rename(so_tmp, so_path, ec);
      bool meta_ok = false;
      if (!ec && write_file(meta_tmp, meta_to_text(meta))) {
        fs::rename(meta_tmp, meta_path, ec);
        meta_ok = !ec;
      }
      if (!meta_ok) {
        remove_quiet(so_tmp);
        remove_quiet(meta_tmp);
        remove_quiet(so_path);
        return Status::unavailable("jit: cannot install kernel into '" + dir +
                                   "': " +
                                   (ec ? ec.message() : "metadata write failed"));
      }
      info.compiled = true;
      if (Status s = open_and_validate(*kernel, prog, so_path, digest_hex);
          !s.ok()) {
        remove_quiet(meta_path);
        remove_quiet(so_path);
        return Status::internal(
            "jit: freshly built kernel failed validation: " + s.message());
      }
    }
    kernel->meta_path = meta_path;
    kernels.push_back(std::move(kernel));
  }

  JitEval jit(std::move(kernels), std::make_shared<JitBuildInfo>(info),
              std::make_shared<JitSharedStats>());

  if (options.verify) {
    // Differential gate: deterministic stimulus (X/Z density ~1/8, plus an
    // all-known batch for the fast path; full and partial-tail lane
    // counts) through a private interpreter over the *same* Program, bit
    // compared on both planes.  A kernel that disagrees anywhere is
    // evicted and never served.
    auto mismatch = [&](const std::string& what) {
      for (const auto& kr : jit.kernels_) {
        remove_quiet(kr->meta_path);
        remove_quiet(kr->so_path);
      }
      return Status::internal(
          "jit: generated kernel disagrees with the interpreter (" + what +
          ") — entry evicted; serve the interpreter and report this");
    };
    VerifyRng rng;
    const auto W =
        static_cast<std::size_t>(jit.kernels_.front()->program->wide_words);
    const std::size_t full = W * Evaluator::kBatchLanes;
    const std::size_t partial = full > 27 ? full - 27 : full;
    for (std::size_t m = 0; m < jit.kernels_.size(); ++m) {
      const auto& prog = jit.kernels_[m]->program;
      CompiledEval interp(prog);
      const std::size_t nin = prog->in_slots.size();
      const std::size_t nout = prog->out_slots.size();
      for (const std::size_t lanes : {full, partial}) {
        for (const bool with_x : {true, false}) {
          const std::size_t words =
              (lanes + Evaluator::kBatchLanes - 1) / Evaluator::kBatchLanes;
          if (prog->is_sequential) {
            const std::size_t pin = prog->n_public_in;
            const std::size_t pout = prog->n_public_out;
            const std::size_t cycles = 6;
            std::vector<std::uint64_t> iv(pin * cycles * words),
                iu(pin * cycles * words), ov_a(pout * cycles * words),
                ou_a(pout * cycles * words), ov_b(pout * cycles * words),
                ou_b(pout * cycles * words);
            fill_planes(rng, iv, iu, with_x);
            if (!interp.run_cycles(iv, iu, ov_a, ou_a, cycles, lanes).ok() ||
                !jit.run_cycles(iv, iu, ov_b, ou_b, cycles, lanes).ok())
              return mismatch("run_cycles status");
            if (ov_a != ov_b || ou_a != ou_b)
              return mismatch("run_cycles planes, lanes=" +
                              std::to_string(lanes));
          } else {
            std::vector<std::uint64_t> iv(nin * words), iu(nin * words),
                ov_a(nout * words), ou_a(nout * words), ov_b(nout * words),
                ou_b(nout * words);
            fill_planes(rng, iv, iu, with_x);
            if (!interp.eval_wide(iv, iu, ov_a, ou_a, lanes).ok() ||
                !jit.eval_wide_mode(m, iv, iu, ov_b, ou_b, lanes).ok())
              return mismatch("eval_wide status");
            if (ov_a != ov_b || ou_a != ou_b)
              return mismatch("mode " + std::to_string(m) +
                              " planes, lanes=" + std::to_string(lanes));
          }
        }
      }
    }
    // The gate's passes are not traffic: restart the counters so executor
    // stats see only served batches.
    jit.stats_->reset();
    jit.seq_words_ =
        static_cast<std::size_t>(jit.kernels_.front()->program->wide_words);
    if (!jit.kernels_.front()->program->regs.empty()) jit.reset_state();
  }

  return jit;
}

}  // namespace pp::sim
