#include "device/dg_mosfet.h"

#include <algorithm>
#include <cmath>

namespace pp::device {
namespace {

/// Shared NMOS-shaped current expression; PMOS maps onto it by symmetry.
double channel_current(const MosParams& p, double vgs, double vds,
                       double vth) noexcept {
  vds = std::max(vds, 0.0);
  const double vov = vgs - vth;
  // Drain-source dependence shared by both regions; guarantees Id == 0 at
  // vds == 0 so DC solves always bracket a root.
  const double ds_onset = 1.0 - std::exp(-vds / p.v_t);
  if (vov <= 0.0) {
    // Subthreshold: exponential in the gate overdrive.
    return p.i_off * std::exp(vov / (p.n_sub * p.v_t)) * ds_onset;
  }
  const double idsat = p.k * std::pow(vov, p.alpha);
  const double vdsat = vov;  // simple alpha-power saturation voltage
  double id;
  if (vds >= vdsat) {
    id = idsat;
  } else {
    const double x = vds / vdsat;
    id = idsat * x * (2.0 - x);  // quadratic triode blend, C1 at vds = vdsat
  }
  id *= 1.0 + p.lambda_ch * vds;
  // Keep the subthreshold floor so the current is strictly positive for
  // vds > 0 — the bisection solvers rely on a sign change at the rails.
  return id + p.i_off * ds_onset;
}

}  // namespace

double nmos_vth(const MosParams& p, double vbg) noexcept {
  return p.vth0 - p.gamma * vbg;
}

double pmos_vth(const MosParams& p, double vbg) noexcept {
  return p.vth0 + p.gamma * vbg;
}

double nmos_id(const MosParams& p, double vgs, double vds,
               double vbg) noexcept {
  return channel_current(p, vgs, vds, nmos_vth(p, vbg));
}

double pmos_id(const MosParams& p, double vsg, double vsd,
               double vbg) noexcept {
  return channel_current(p, vsg, vsd, pmos_vth(p, vbg));
}

}  // namespace pp::device
