// The multi-valued RTD configuration RAM of Fig. 6.
//
// Topology (van der Wagt tunnelling SRAM [34]): load RTD from Vdd_cfg to the
// storage node, driver RTD from the storage node to ground, and an access
// transistor (modelled as a conductance when the word line is asserted)
// connecting the node to the bit line.  The storage node's three stable
// voltages encode the three back-gate configuration levels; an affine level
// shifter (part of the vertical stack in the paper) maps them onto the
// -2 / 0 / +2 V biases required by the leaf-cell transistors.
//
// The paper's claim reproduced here: the cell holds (at least) three states,
// each state is restored after small perturbations, writes move the cell
// between any pair of states, and standby current stays in the tens of pA
// per cell (Nanotechnology Roadmap figure quoted in §3).
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "device/rtd.h"

namespace pp::device {

/// A DC operating point of the storage node.
struct StablePoint {
  double v;       ///< storage-node voltage
  bool stable;    ///< true if the point is restoring (d(net current)/dV < 0)
};

struct RtdRamParams {
  RtdParams rtd = three_state_rtd();  ///< both diodes (matched pair)
  double vdd = 1.3;                   ///< configuration supply (V)
  double c_node = 1.0e-15;            ///< storage node capacitance (F)
  double g_access = 5.0e-5;           ///< access transistor on-conductance (S)
};

class RtdRam {
 public:
  explicit RtdRam(RtdRamParams params = {});

  /// All DC operating points (stable and unstable), ascending in voltage.
  [[nodiscard]] std::vector<StablePoint> operating_points() const;

  /// The stable storage voltages only.  For the default parameters there are
  /// exactly three.
  [[nodiscard]] std::vector<double> stable_levels() const;

  /// Number of storable levels.
  [[nodiscard]] std::size_t num_levels() const { return stable_levels().size(); }

  /// Write level index `level` (0-based, ascending voltage): pulls the bit
  /// line to that level's target voltage, asserts the word line for
  /// `pulse_s`, releases, then lets the node relax.  Returns the settled
  /// storage voltage.  Current state persists across calls.
  double write(std::size_t level, double pulse_s = 2.0e-9);

  /// Read the current level index by nearest stable level.
  [[nodiscard]] std::size_t read() const;

  /// Storage node voltage right now.
  [[nodiscard]] double node_voltage() const noexcept { return v_node_; }

  /// Perturb the node by dv and relax for `settle_s`; returns the settled
  /// voltage.  Retention means read() is unchanged for |dv| below the noise
  /// margin.
  double perturb(double dv, double settle_s = 20.0e-9);

  /// Static current drawn from the configuration supply in the current
  /// state (the standby power story of §3).
  [[nodiscard]] double standby_current() const;

  /// Map a stored level to the leaf-cell back-gate bias it generates
  /// through the level shifter: level 0 -> -2 V, middle -> 0 V, top -> +2 V.
  [[nodiscard]] double bias_voltage_for(std::size_t level) const;

  [[nodiscard]] const RtdRamParams& params() const noexcept { return p_; }

 private:
  /// Net current into the storage node (excluding the access device).
  [[nodiscard]] double net_current(double v) const;
  /// Integrate the node ODE for `dur` seconds with optional bit-line drive.
  void integrate(double dur, bool access_on, double v_bit);

  RtdRamParams p_;
  Rtd rtd_;
  double v_node_;
};

}  // namespace pp::device
