// Phenomenological resonant tunnelling diode (RTD) model.
//
// The paper's configuration memory (Fig. 6) is a tunnelling SRAM after
// van der Wagt [34]: two RTDs in series between the configuration rails with
// the storage node in between.  Stable states sit where the load and driver
// I-V curves intersect with net-restoring slope; with multi-peak RTDs the
// cell stores >2 levels — the paper needs 3 (for back biases -2/0/+2 V).
//
// Each peak contributes the classic normalised resonant term
//     I_peak(V) = Ip * (V/Vp) * exp(1 - V/Vp)
// which peaks at exactly (Vp, Ip) and decays beyond it (the NDR region);
// a thermionic/excess term Is*(exp(V/Vex) - 1) supplies the valley-after
// current rise.  Multi-peak devices sum shifted copies of the resonant term,
// which is the standard compact-model treatment for series/stacked RTDs
// (e.g. Seabaugh's nine-state memory [36]).
#pragma once

#include <vector>

namespace pp::device {

/// One resonance of the diode.
struct RtdPeak {
  double vp;  ///< peak voltage (V), measured from the peak's own onset
  double ip;  ///< peak current (A)
  double von; ///< onset offset of this peak from V = 0 (V)
};

struct RtdParams {
  std::vector<RtdPeak> peaks{{0.15, 1.0e-6, 0.0}};  ///< default: single peak
  double i_excess = 2.0e-9;  ///< excess/thermionic current scale (A)
  double v_excess = 0.22;    ///< excess current exponential slope (V)
};

/// Two-peak device used by the 3-state configuration RAM.
[[nodiscard]] RtdParams three_state_rtd();

class Rtd {
 public:
  explicit Rtd(RtdParams params = {}) : p_(std::move(params)) {}

  /// Terminal current at bias v (odd-symmetric for v < 0).
  [[nodiscard]] double current(double v) const noexcept;

  /// Numerical dI/dV (central difference), used for stability analysis.
  [[nodiscard]] double conductance(double v, double dv = 1e-5) const noexcept;

  /// Peak-to-valley current ratio of the first resonance, a standard RTD
  /// figure of merit (the paper cites Si devices reaching "adequate" PVCR).
  [[nodiscard]] double pvcr() const;

  [[nodiscard]] const RtdParams& params() const noexcept { return p_; }

 private:
  RtdParams p_;
};

}  // namespace pp::device
