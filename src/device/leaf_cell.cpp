#include "device/leaf_cell.h"

namespace pp::device {

LeafCell::LeafCell(RtdRamParams ram_params, MosParams mos_params)
    : ram_(std::move(ram_params)), nand_(mos_params) {}

std::size_t LeafCell::level_for(BiasLevel b) noexcept {
  // Level 0 (lowest node voltage) -> -2 V -> Force0; level 2 -> +2 V ->
  // Force1; the middle level leaves the pair live.
  switch (b) {
    case BiasLevel::kForce0: return 0;
    case BiasLevel::kActive: return 1;
    case BiasLevel::kForce1: return 2;
  }
  return 1;
}

BiasLevel LeafCell::bias_for(std::size_t level) noexcept {
  switch (level) {
    case 0: return BiasLevel::kForce0;
    case 2: return BiasLevel::kForce1;
    default: return BiasLevel::kActive;
  }
}

double LeafCell::program(BiasLevel level) {
  return ram_.write(level_for(level));
}

BiasLevel LeafCell::configured() const { return bias_for(ram_.read()); }

double LeafCell::back_gate_voltage() const {
  return ram_.bias_voltage_for(ram_.read());
}

double LeafCell::nand_row_vout(double va, double vb,
                               const LeafCell& other) const {
  return nand_.vout(va, vb, back_gate_voltage(), other.back_gate_voltage());
}

bool LeafCell::effective_input(bool live) const {
  switch (configured()) {
    case BiasLevel::kForce0: return false;
    case BiasLevel::kForce1: return true;
    case BiasLevel::kActive: return live;
  }
  return live;
}

}  // namespace pp::device
