// buffer.h is constexpr-only; this translation unit exists to give the
// header a home in the library and to anchor its vtable-free symbols.
#include "device/buffer.h"

namespace pp::device {
// Intentionally empty.
}  // namespace pp::device
