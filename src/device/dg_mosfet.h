// Behavioural compact model of the thin-body fully-depleted double-gate
// (FD DG) MOSFET of Fig. 2 of the paper (10 nm gate, 1.5 nm silicon film,
// after Ren et al. [30]).
//
// The device has two gates: the *front* gate carries the logic signal, the
// *back* gate carries a quasi-static configuration bias (driven by the RTD
// RAM, Fig. 6).  The key behaviour exploited by the paper is that the back
// gate shifts the effective threshold voltage:
//
//    Vth_eff(n) = Vth0 - gamma * Vbg        (NMOS: positive bias strengthens)
//    Vth_eff(p) = Vth0 + gamma * Vbg        (PMOS: positive bias weakens)
//
// so a sufficiently positive shared back bias forces the N device on and the
// P device off (and vice versa), turning a complementary pair into a
// programmable constant / pass element / active gate — the "polymorphism".
//
// The drain current uses an alpha-power-law strong-inversion model with an
// exponential subthreshold tail.  This is not a TCAD model; it is chosen so
// that (a) currents are continuous and strictly monotone in the terminal
// voltages (which the DC solvers rely on), and (b) the Fig. 3 family of
// transfer curves is reproduced qualitatively (switching point monotone in
// V_G2, rails reached beyond |V_G2| >= ~1.5 V).
#pragma once

namespace pp::device {

/// Electrical parameters shared by the N and P devices of a leaf cell.
/// Defaults are calibrated so that, with Vdd = 1.0 V, the configurable
/// inverter reproduces the Fig. 3 curve family (see DESIGN.md §5).
struct MosParams {
  double vth0 = 0.30;      ///< zero-back-bias threshold magnitude (V)
  double gamma = 0.60;     ///< back-gate coupling dVth/dVbg (dimensionless)
  double k = 1.0e-4;       ///< transconductance coefficient (A / V^alpha)
  double alpha = 1.30;     ///< velocity-saturation exponent (1=velocity-sat, 2=square law)
  double n_sub = 1.5;      ///< subthreshold ideality factor
  double i_off = 1.0e-12;  ///< subthreshold current scale at Vgs = Vth (A)
  double lambda_ch = 0.05; ///< channel-length modulation (1/V)
  double v_t = 0.0259;     ///< thermal voltage kT/q at 300 K (V)
};

/// NMOS drain current (A), source grounded convention.
/// @param vgs front-gate to source voltage
/// @param vds drain to source voltage (>= 0; negative values are clamped to 0)
/// @param vbg back-gate configuration bias
[[nodiscard]] double nmos_id(const MosParams& p, double vgs, double vds,
                             double vbg) noexcept;

/// PMOS source-to-drain current magnitude (A).  Mirrors nmos_id with the
/// back-gate sense inverted: positive vbg *weakens* the P device.
/// @param vsg source to front-gate voltage
/// @param vsd source to drain voltage (>= 0)
/// @param vbg back-gate configuration bias (shared with the N device)
[[nodiscard]] double pmos_id(const MosParams& p, double vsg, double vsd,
                             double vbg) noexcept;

/// Effective NMOS threshold under back bias.
[[nodiscard]] double nmos_vth(const MosParams& p, double vbg) noexcept;
/// Effective PMOS threshold (as a positive magnitude) under back bias.
[[nodiscard]] double pmos_vth(const MosParams& p, double vbg) noexcept;

}  // namespace pp::device
