#include "device/rtd_ram.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/numeric.h"

namespace pp::device {

RtdRam::RtdRam(RtdRamParams params) : p_(std::move(params)), rtd_(p_.rtd) {
  const auto levels = stable_levels();
  if (levels.empty())
    throw std::invalid_argument("RtdRam: parameters admit no stable state");
  // Power up into the lowest state (deterministic for reproducibility).
  v_node_ = levels.front();
}

double RtdRam::net_current(double v) const {
  // Load RTD sources current from Vdd, driver RTD sinks to ground.
  return rtd_.current(p_.vdd - v) - rtd_.current(v);
}

std::vector<StablePoint> RtdRam::operating_points() const {
  std::vector<StablePoint> pts;
  // Scan for sign changes of the net node current, then bisect each.
  const int kGrid = 4000;
  double prev_v = 0.0;
  double prev_f = net_current(prev_v);
  for (int i = 1; i <= kGrid; ++i) {
    const double v = p_.vdd * static_cast<double>(i) / kGrid;
    const double f = net_current(v);
    if ((prev_f > 0.0) != (f > 0.0)) {
      const double root =
          util::bisect([this](double x) { return net_current(x); }, prev_v, v);
      const double dv = 1e-5;
      const double slope =
          (net_current(root + dv) - net_current(root - dv)) / (2 * dv);
      pts.push_back({root, slope < 0.0});
    }
    prev_v = v;
    prev_f = f;
  }
  return pts;
}

std::vector<double> RtdRam::stable_levels() const {
  std::vector<double> levels;
  for (const auto& pt : operating_points())
    if (pt.stable) levels.push_back(pt.v);
  return levels;
}

void RtdRam::integrate(double dur, bool access_on, double v_bit) {
  // Explicit RK4 on C dV/dt = I_net(V) + G_acc (V_bit - V).
  auto dvdt = [&](double /*t*/, double v) {
    double i = net_current(v);
    if (access_on) i += p_.g_access * (v_bit - v);
    return i / p_.c_node;
  };
  // Time constant ~ C/G: step well below it for stability.
  const double tau = p_.c_node / p_.g_access;
  const auto steps =
      static_cast<std::size_t>(std::max(200.0, 40.0 * dur / tau));
  const auto traj = util::rk4(dvdt, v_node_, 0.0, dur, steps);
  v_node_ = traj.back();
}

double RtdRam::write(std::size_t level, double pulse_s) {
  const auto levels = stable_levels();
  if (level >= levels.size())
    throw std::out_of_range("RtdRam::write: level index out of range");
  integrate(pulse_s, /*access_on=*/true, /*v_bit=*/levels[level]);
  integrate(pulse_s, /*access_on=*/false, 0.0);  // release and settle
  return v_node_;
}

std::size_t RtdRam::read() const {
  const auto levels = stable_levels();
  std::size_t best = 0;
  double best_d = std::fabs(v_node_ - levels[0]);
  for (std::size_t i = 1; i < levels.size(); ++i) {
    const double d = std::fabs(v_node_ - levels[i]);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

double RtdRam::perturb(double dv, double settle_s) {
  v_node_ += dv;
  v_node_ = std::clamp(v_node_, 0.0, p_.vdd);
  integrate(settle_s, /*access_on=*/false, 0.0);
  return v_node_;
}

double RtdRam::standby_current() const {
  // In DC balance the supply current equals the load-RTD current.
  return rtd_.current(p_.vdd - v_node_);
}

double RtdRam::bias_voltage_for(std::size_t level) const {
  const auto levels = stable_levels();
  if (level >= levels.size())
    throw std::out_of_range("RtdRam::bias_voltage_for: bad level");
  if (levels.size() == 1) return 0.0;
  // Affine map: lowest level -> -2 V, highest -> +2 V (the vertical-stack
  // level shifter of §3 "matching the VG values ... with the RAM tunneling
  // voltages").
  const double lo = levels.front();
  const double hi = levels.back();
  return -2.0 + 4.0 * (levels[level] - lo) / (hi - lo);
}

}  // namespace pp::device
