#include "device/inverter.h"

#include <algorithm>

#include "util/numeric.h"

namespace pp::device {

double ConfigurableInverter::vout(double vin, double vg2) const {
  // Net current into the output node as a function of the output voltage:
  //   f(v) = I_pullup(v) - I_pulldown(v)
  // I_pullup decreases with v (PMOS Vsd shrinks), I_pulldown increases
  // (NMOS Vds grows), so f is strictly decreasing; f(0) > 0 and f(vdd) < 0
  // thanks to the subthreshold floor in the device model.
  auto f = [&](double v) {
    const double i_up = pmos_id(p_, vdd_ - vin, vdd_ - v, vg2);
    const double i_dn = nmos_id(p_, vin, v, vg2);
    return i_up - i_dn;
  };
  // Guard: if the bracketing fails at a rail (numerically exact zero), the
  // output *is* that rail.
  if (f(0.0) <= 0.0) return 0.0;
  if (f(vdd_) >= 0.0) return vdd_;
  return util::bisect(f, 0.0, vdd_);
}

std::vector<double> ConfigurableInverter::vtc(const std::vector<double>& vins,
                                              double vg2) const {
  std::vector<double> out;
  out.reserve(vins.size());
  for (double vin : vins) out.push_back(vout(vin, vg2));
  return out;
}

double ConfigurableInverter::switching_point(double vg2) const {
  const double mid = 0.5 * vdd_;
  auto g = [&](double vin) { return vout(vin, vg2) - mid; };
  const double sweep_max = 1.2 * vdd_;
  if (g(0.0) < 0.0) return 0.0;        // already low at vin=0: stuck low
  if (g(sweep_max) > 0.0) return sweep_max;  // still high: stuck high
  return util::bisect(g, 0.0, sweep_max);
}

InverterRegime ConfigurableInverter::regime(double vg2, double vin_max) const {
  const double hi_thresh = 0.9 * vdd_;
  const double lo_thresh = 0.1 * vdd_;
  const double at_lo = vout(0.0, vg2);
  const double at_hi = vout(vin_max, vg2);
  if (at_lo < lo_thresh && at_hi < lo_thresh) return InverterRegime::kStuckLow;
  if (at_lo > hi_thresh && at_hi > hi_thresh) return InverterRegime::kStuckHigh;
  return InverterRegime::kInverting;
}

}  // namespace pp::device
