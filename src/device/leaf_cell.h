// The complete polymorphic leaf cell of Fig. 6: a complementary FD DG pair
// whose shared back gate is held by a three-level RTD tunnelling RAM in the
// vertical stack.  This class closes the device-level programming loop:
//
//   program(BiasLevel)  -> write the matching RAM level (Fig. 6 dynamics)
//   back_gate_voltage() -> the analog bias the stack presents (-2/0/+2 V)
//   configured()        -> the logic role the digital fabric model assumes
//   contribution(...)   -> the cell's analog behaviour inside a NAND row,
//                          checked against the Fig. 4 digital semantics
//
// pp::core's BlockConfig stores BiasLevel per crosspoint; LeafCell is the
// physical realisation of one such trit, and the integration tests drive
// whole block images through it (ConfigRam -> LeafCell -> ConfigRam).
#pragma once

#include "device/dg_mosfet.h"
#include "device/nand2.h"
#include "device/rtd_ram.h"

namespace pp::device {

class LeafCell {
 public:
  explicit LeafCell(RtdRamParams ram_params = {}, MosParams mos_params = {});

  /// Program the cell's role by writing the corresponding RAM level.
  /// Returns the settled storage-node voltage.
  double program(BiasLevel level);

  /// The role currently stored (read back through the RAM).
  [[nodiscard]] BiasLevel configured() const;

  /// Analog back-gate bias presented to the pair by the vertical stack.
  [[nodiscard]] double back_gate_voltage() const;

  /// Static current drawn by this cell's configuration plane (A).
  [[nodiscard]] double standby_current() const { return ram_.standby_current(); }

  /// DC output of a 2-input NAND row where THIS cell gates input A and a
  /// second cell (bias `other`) gates input B — the Fig. 4 circuit driven
  /// from the real programmed bias instead of an ideal rail.
  [[nodiscard]] double nand_row_vout(double va, double vb,
                                     const LeafCell& other) const;

  /// Effective digital input seen by the NAND term for a live input value,
  /// per the Fig. 4 semantics of the *programmed* role.
  [[nodiscard]] bool effective_input(bool live) const;

  [[nodiscard]] const RtdRam& ram() const noexcept { return ram_; }

 private:
  /// Map a role onto the RAM level index (ascending voltage order).
  [[nodiscard]] static std::size_t level_for(BiasLevel b) noexcept;
  [[nodiscard]] static BiasLevel bias_for(std::size_t level) noexcept;

  RtdRam ram_;
  ConfigurableNand2 nand_;
};

}  // namespace pp::device
