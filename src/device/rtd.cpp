#include "device/rtd.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pp::device {

RtdParams three_state_rtd() {
  RtdParams p;
  // Two resonances ~0.55 V apart: with two of these diodes in series across a
  // 1.3 V supply the storage node has exactly three stable points (verified
  // by RtdRam tests); the middle one sits near Vdd/2.
  p.peaks = {{0.15, 1.0e-6, 0.0}, {0.15, 0.9e-6, 0.55}};
  p.i_excess = 2.0e-9;
  p.v_excess = 0.22;
  return p;
}

double Rtd::current(double v) const noexcept {
  const double sign = v < 0.0 ? -1.0 : 1.0;
  const double va = std::fabs(v);
  double i = 0.0;
  for (const auto& pk : p_.peaks) {
    const double x = va - pk.von;
    if (x <= 0.0) continue;
    i += pk.ip * (x / pk.vp) * std::exp(1.0 - x / pk.vp);
  }
  i += p_.i_excess * (std::exp(va / p_.v_excess) - 1.0);
  return sign * i;
}

double Rtd::conductance(double v, double dv) const noexcept {
  return (current(v + dv) - current(v - dv)) / (2.0 * dv);
}

double Rtd::pvcr() const {
  if (p_.peaks.empty()) throw std::logic_error("Rtd::pvcr: no peaks");
  const auto& pk = p_.peaks.front();
  const double ipk = current(pk.von + pk.vp);
  // Search for the valley between this peak and the next onset (or 4*Vp).
  double v_end = pk.von + 4.0 * pk.vp;
  if (p_.peaks.size() > 1) v_end = std::min(v_end, p_.peaks[1].von + 1e-9);
  double imin = ipk;
  for (double v = pk.von + pk.vp; v <= v_end; v += pk.vp / 200.0) {
    imin = std::min(imin, current(v));
  }
  return ipk / std::max(imin, 1e-30);
}

}  // namespace pp::device
