// The configurable inverter of Fig. 3: a complementary FD DG pair whose
// shared back gate V_G2 moves the switching threshold across the full logic
// range, saturating into "always high" / "always low" behaviour at the
// extremes.  This one circuit is the paper's core polymorphism demonstration.
#pragma once

#include <vector>

#include "device/dg_mosfet.h"

namespace pp::device {

/// Operating regime of the configurable inverter for a given back bias.
enum class InverterRegime {
  kStuckHigh,   ///< V_G2 <= ~-1.5 V: output high for the whole input range
  kInverting,   ///< intermediate bias: normal inverter, shifted threshold
  kStuckLow,    ///< V_G2 >= ~+1.5 V: output low for the whole input range
};

class ConfigurableInverter {
 public:
  explicit ConfigurableInverter(MosParams params = {}, double vdd = 1.0)
      : p_(params), vdd_(vdd) {}

  /// DC output voltage for input `vin` under back bias `vg2`, found by
  /// bisection of the pull-up/pull-down current balance (unique root because
  /// both currents are strictly monotone in Vout).
  [[nodiscard]] double vout(double vin, double vg2) const;

  /// Full transfer curve: vout at each `vin` sample.
  [[nodiscard]] std::vector<double> vtc(const std::vector<double>& vins,
                                        double vg2) const;

  /// Input voltage where the output crosses Vdd/2, or the nearest rail if the
  /// output never crosses (stuck configurations).  The Fig. 3 claim is that
  /// this point moves monotonically with vg2 over the full logic range.
  [[nodiscard]] double switching_point(double vg2) const;

  /// Classify the regime over an input sweep [0, vin_max].
  [[nodiscard]] InverterRegime regime(double vg2, double vin_max = 1.2) const;

  [[nodiscard]] double vdd() const noexcept { return vdd_; }
  [[nodiscard]] const MosParams& params() const noexcept { return p_; }

 private:
  MosParams p_;
  double vdd_;
};

}  // namespace pp::device
