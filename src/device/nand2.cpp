#include "device/nand2.h"

#include <algorithm>

#include "util/numeric.h"

namespace pp::device {

double ConfigurableNand2::pulldown_current(double va, double vb, double bga,
                                           double bgb, double vout) const {
  if (vout <= 0.0) return 0.0;
  // Series stack: transistor B at the bottom (source grounded), transistor A
  // on top (drain at the output).  Find the midpoint voltage vm where the two
  // device currents agree.  I_bot rises with vm, I_top falls, so the
  // difference is monotone and brackets a root on [0, vout].
  auto diff = [&](double vm) {
    const double i_bot = nmos_id(p_, vb, vm, bgb);
    const double i_top = nmos_id(p_, va - vm, vout - vm, bga);
    return i_bot - i_top;
  };
  if (diff(0.0) >= 0.0) return nmos_id(p_, vb, 0.0, bgb);  // bottom off
  if (diff(vout) <= 0.0) return nmos_id(p_, vb, vout, bgb);
  const double vm = util::bisect(diff, 0.0, vout);
  return nmos_id(p_, vb, vm, bgb);
}

double ConfigurableNand2::vout(double va, double vb, double bga,
                               double bgb) const {
  // Pull-up: the two PMOS devices in parallel between Vdd and the output.
  auto pullup = [&](double v) {
    return pmos_id(p_, vdd_ - va, vdd_ - v, bga) +
           pmos_id(p_, vdd_ - vb, vdd_ - v, bgb);
  };
  auto f = [&](double v) { return pullup(v) - pulldown_current(va, vb, bga, bgb, v); };
  if (f(0.0) <= 0.0) return 0.0;
  if (f(vdd_) >= 0.0) return vdd_;
  return util::bisect(f, 0.0, vdd_);
}

bool ConfigurableNand2::digital_out(bool a, bool b, BiasLevel bga,
                                    BiasLevel bgb) noexcept {
  auto effective = [](bool live, BiasLevel bias) {
    switch (bias) {
      case BiasLevel::kForce0: return false;
      case BiasLevel::kForce1: return true;
      case BiasLevel::kActive: return live;
    }
    return live;
  };
  return !(effective(a, bga) && effective(b, bgb));
}

}  // namespace pp::device
