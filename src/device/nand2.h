// The configurable 2-NAND of Fig. 4: two complementary FD DG pairs sharing an
// output, each pair biased by its own back-gate voltage (V_G1, V_G2 in the
// paper's table; "VA"/"VB" here to avoid clashing with the inverter's V_G2).
//
// Back-bias semantics (the paper's enhanced function table):
//   bias = +2 V  -> that input behaves as constant 1 (N on / P off)
//   bias =  0 V  -> that input is live
//   bias = -2 V  -> that input behaves as constant 0 (N off / P on), which
//                   forces the NAND output to 1 regardless of the other input
//
//   (VA, VB) = ( 0, +2)  ->  Out = /A        ("A-bar" row)
//   (VA, VB) = (+2,  0)  ->  Out = /B
//   (VA, VB) = ( 0,  0)  ->  Out = /(A.B)    (plain NAND)
//   (VA, VB) = (-2, -2)  ->  Out = 1
//   (VA, VB) = (+2, +2)  ->  Out = 0
#pragma once

#include <cstdint>

#include "device/dg_mosfet.h"

namespace pp::device {

/// Quantised back-gate configuration level, matching the three stable levels
/// of the RTD configuration RAM (Fig. 6).
enum class BiasLevel : std::int8_t {
  kForce0 = -1,  ///< -2 V: input treated as constant 0
  kActive = 0,   ///<  0 V: input live
  kForce1 = +1,  ///< +2 V: input treated as constant 1
};

/// Back-gate voltage corresponding to a quantised level.
[[nodiscard]] constexpr double bias_voltage(BiasLevel b) noexcept {
  return 2.0 * static_cast<double>(static_cast<std::int8_t>(b));
}

class ConfigurableNand2 {
 public:
  explicit ConfigurableNand2(MosParams params = {}, double vdd = 1.0)
      : p_(params), vdd_(vdd) {}

  /// Analog DC output for input voltages (va, vb) under back biases
  /// (bga, bgb), solved with nested bisection: the inner loop finds the
  /// series-stack midpoint voltage, the outer loop balances pull-up vs
  /// pull-down current at the output node.
  [[nodiscard]] double vout(double va, double vb, double bga,
                            double bgb) const;

  /// Ideal digital behaviour implied by the bias semantics above; used as
  /// the reference the analog solve is checked against in tests.
  [[nodiscard]] static bool digital_out(bool a, bool b, BiasLevel bga,
                                        BiasLevel bgb) noexcept;

  [[nodiscard]] double vdd() const noexcept { return vdd_; }

 private:
  /// Pull-down current of the series NMOS stack for a given output voltage.
  [[nodiscard]] double pulldown_current(double va, double vb, double bga,
                                        double bgb, double vout) const;

  MosParams p_;
  double vdd_;
};

}  // namespace pp::device
