// The configurable inverting / non-inverting / 3-state buffer of Fig. 5.
// The same four transistors of the 2-NAND are reorganised into a driver whose
// back-gate pair (VG1, VG2) selects among:
//
//   (VG1, VG2) = (-2,  0)  ->  Out = /In    (inverting driver)
//   (VG1, VG2) = (+2, -2)  ->  Out =  In    (non-inverting driver)
//   (VG1, VG2) = ( 0, -2)  ->  Out =  Z     (open circuit / decoupled)
//
// In the fabric (Fig. 7/8) one of these terminates every NAND-array output
// line.  Its three roles are exactly the paper's: decouple adjacent cells /
// set logic direction (Z), create complex logic + data feed-through
// (inverting or buffering), and pass-transistor connection to the neighbour.
#pragma once

#include <cstdint>
#include <optional>

namespace pp::device {

enum class BufferMode : std::uint8_t {
  kInverting,     ///< drives /In
  kNonInverting,  ///< drives In (two-stage, restores levels)
  kOpenCircuit,   ///< output floats (high impedance)
  kPassGate,      ///< unbuffered ohmic connection (degrades levels; counted
                  ///< separately in the delay model but logically = In)
};

/// The back-gate voltage pair that programs a mode (paper Fig. 5 table).
struct BufferBias {
  double vg1;
  double vg2;
};

[[nodiscard]] constexpr BufferBias buffer_bias(BufferMode m) noexcept {
  switch (m) {
    case BufferMode::kInverting: return {-2.0, 0.0};
    case BufferMode::kNonInverting: return {+2.0, -2.0};
    case BufferMode::kOpenCircuit: return {0.0, -2.0};
    case BufferMode::kPassGate: return {+2.0, +2.0};
  }
  return {0.0, -2.0};
}

/// Digital behaviour: nullopt represents high impedance (Z).
[[nodiscard]] constexpr std::optional<bool> buffer_out(BufferMode m,
                                                       bool in) noexcept {
  switch (m) {
    case BufferMode::kInverting: return !in;
    case BufferMode::kNonInverting: return in;
    case BufferMode::kOpenCircuit: return std::nullopt;
    case BufferMode::kPassGate: return in;
  }
  return std::nullopt;
}

/// Whether the mode actively drives (restores) logic levels.
[[nodiscard]] constexpr bool buffer_drives(BufferMode m) noexcept {
  return m == BufferMode::kInverting || m == BufferMode::kNonInverting;
}

}  // namespace pp::device
