#include "core/block.h"

#include <sstream>

namespace pp::core {

BlockConfig::BlockConfig() {
  for (auto& row : xpoint) row.fill(BiasLevel::kForce1);
  driver.fill(DriverCfg::kOff);
  col_src.fill(ColSource::kAbut);
  lfb_src.fill(LfbSel{});
}

BlockConfig BlockConfig::empty() { return BlockConfig{}; }

bool BlockConfig::is_empty() const { return *this == BlockConfig{}; }

int BlockConfig::active_cells() const {
  int count = 0;
  for (const auto& row : xpoint)
    for (BiasLevel b : row)
      if (b != BiasLevel::kForce1) ++count;
  for (DriverCfg d : driver)
    if (d != DriverCfg::kOff) ++count;
  for (const LfbSel& s : lfb_src)
    if (s.which != LfbWhich::kOff) ++count;
  return count;
}

int BlockConfig::used_terms() const {
  int count = 0;
  for (int r = 0; r < kBlockOutputs; ++r) {
    bool any = false;
    for (BiasLevel b : xpoint[r])
      if (b == BiasLevel::kActive) any = true;
    if (any) ++count;
  }
  return count;
}

std::string BlockConfig::validate() const {
  std::ostringstream err;
  for (int k = 0; k < kLfbLines; ++k) {
    if (lfb_src[k].which != LfbWhich::kOff &&
        lfb_src[k].row >= kBlockOutputs)
      err << "lfb" << k << " selects nonexistent row "
          << static_cast<int>(lfb_src[k].row) << "\n";
  }
  for (int c = 0; c < kBlockInputs; ++c) {
    const ColSource s = col_src[c];
    if (s == ColSource::kLfb0 && lfb_src[0].which == LfbWhich::kOff)
      err << "column " << c << " reads lfb0 which has no source\n";
    if (s == ColSource::kLfb1 && lfb_src[1].which == LfbWhich::kOff)
      err << "column " << c << " reads lfb1 which has no source\n";
  }
  return err.str();
}

bool block_row_value(const BlockConfig& cfg, int row,
                     const std::array<bool, kBlockInputs>& in) {
  bool any_active = false;
  for (int c = 0; c < kBlockInputs; ++c) {
    switch (cfg.xpoint[row][c]) {
      case BiasLevel::kForce0:
        return true;  // row disabled: pull-up wins unconditionally
      case BiasLevel::kForce1:
        break;  // input not instantiated
      case BiasLevel::kActive:
        if (!in[c]) return true;  // dominant 0 on a NAND term
        any_active = true;
        break;
    }
  }
  // No dominant 0: /(AND of actives) = 0 if the term has active inputs,
  // else the pulled-up constant 1.
  return !any_active;
}

std::optional<bool> block_driver_value(const BlockConfig& cfg, int row,
                                       bool row_value) {
  switch (cfg.driver[row]) {
    case DriverCfg::kOff: return std::nullopt;
    case DriverCfg::kInvert: return !row_value;
    case DriverCfg::kBuffer:
    case DriverCfg::kPass: return row_value;
  }
  return std::nullopt;
}

}  // namespace pp::core
