// The 6x6 NAND-array block of Fig. 7 — the unit of configuration of the
// polymorphic platform.
//
// A block is a 6-input / 6-output NAND plane built from polymorphic leaf
// cells (Figs. 4-6).  Each crosspoint holds one three-level back-gate bias:
//
//   kForce1 : the input is treated as constant 1 — it simply does not
//             participate in this row's NAND term (the "not instantiated"
//             state the paper's area argument depends on);
//   kActive : the input participates in the term;
//   kForce0 : the row is forced high regardless of inputs (row disabled).
//
// Each output row terminates in the configurable inverting / non-inverting /
// 3-state driver of Fig. 5, which (a) decouples the block from its
// neighbours, (b) sets the direction of logic flow, (c) provides the
// feed-through path that turns unused logic into interconnect, and (d) can
// degrade to a plain pass-transistor connection.
//
// Two local feedback lines (lfb, Fig. 8) can each tap one output row and be
// read by any input column in place of the abutted inter-block line; they
// provide the local feedback from which latches and flip-flops are built
// "using standard asynchronous state machine techniques" (Fig. 9).
//
// Configuration storage: the paper states each block appears externally as a
// multi-valued 8x8 RAM requiring 128 bits.  Our layout accounts for exactly
// that: 64 three-level cells (trits), each encoded in 2 bits = 128 bits.
// See block.cpp for the cell-by-cell layout (36 crosspoints + 12 driver +
// 6 column-source + 4 lfb-select + 6 spare).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "device/nand2.h"

namespace pp::core {

inline constexpr int kBlockInputs = 6;   ///< input columns per block
inline constexpr int kBlockOutputs = 6;  ///< output rows (NAND terms)
inline constexpr int kLfbLines = 2;      ///< local feedback lines per block
inline constexpr int kConfigTrits = 64;  ///< 8x8 multi-valued RAM cells
inline constexpr int kConfigBits = 128;  ///< 2 bits per trit, paper's figure

using device::BiasLevel;

/// Output-row driver configuration (Fig. 5 modes).
enum class DriverCfg : std::uint8_t {
  kOff = 0,     ///< 3-state released: block decoupled from the abutted line
  kInvert = 1,  ///< drives the complement of the row (active NAND output)
  kBuffer = 2,  ///< drives the row value (feed-through / cascading)
  kPass = 3,    ///< pass-transistor connection (fast, non-restoring)
};

/// What an input column reads.
enum class ColSource : std::uint8_t {
  kAbut = 0,  ///< the abutted inter-block line (west/north neighbour)
  kLfb0 = 1,  ///< local feedback line 0
  kLfb1 = 2,  ///< local feedback line 1
};

/// Which block a local feedback line taps.  The paper draws the lfb lines
/// running between members of a configured block *pair* (Fig. 8): feedback
/// may come from the block's own rows (latch inside one block) or from the
/// rows of the block immediately east or south (the downstream half of the
/// pair) — this is what closes the loop for flip-flops (Fig. 9) and the
/// Muller C-element (Fig. 11) without any non-local wiring.
enum class LfbWhich : std::uint8_t { kOff = 0, kOwn = 1, kEast = 2, kSouth = 3 };

struct LfbSel {
  LfbWhich which = LfbWhich::kOff;
  std::uint8_t row = 0;  ///< tapped output row of the selected block
  bool operator==(const LfbSel&) const = default;
};

struct BlockConfig {
  /// xpoint[row][col]; default kForce1 = input not instantiated in the term.
  std::array<std::array<BiasLevel, kBlockInputs>, kBlockOutputs> xpoint{};
  std::array<DriverCfg, kBlockOutputs> driver{};
  std::array<ColSource, kBlockInputs> col_src{};
  std::array<LfbSel, kLfbLines> lfb_src{};

  BlockConfig();

  /// All-off block: every crosspoint ignored, every driver released.
  [[nodiscard]] static BlockConfig empty();

  /// True if nothing in the block is instantiated (the idle tile).
  [[nodiscard]] bool is_empty() const;

  /// Count of leaf cells actually instantiated (active crosspoints +
  /// enabled drivers + lfb taps) — the quantity the paper's area argument
  /// counts, since unused polymorphic cells are *configured away*.
  [[nodiscard]] int active_cells() const;

  /// Rows whose NAND term has at least one active input.
  [[nodiscard]] int used_terms() const;

  /// Sanity diagnostics (e.g. lfb select out of range, column reading an
  /// unsourced lfb).  Empty string = OK.  Neighbour existence is checked by
  /// Fabric::validate, which knows the block's position.
  [[nodiscard]] std::string validate() const;

  bool operator==(const BlockConfig&) const = default;
};

/// Evaluate one row's NAND term digitally for given column values — the
/// ideal semantics the elaborated circuit must match (used by tests and the
/// truth-table oracle in pp::map).
[[nodiscard]] bool block_row_value(const BlockConfig& cfg, int row,
                                   const std::array<bool, kBlockInputs>& in);

/// Value leaving driver `row` given its row value; nullopt = Z (driver off).
[[nodiscard]] std::optional<bool> block_driver_value(const BlockConfig& cfg,
                                                     int row, bool row_value);

}  // namespace pp::core
