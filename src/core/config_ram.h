// The paper (§4): "From the outside, the reconfiguration array appears as a
// simple (albeit multi-valued) 8x8 RAM block ... each block requires 128
// bits reconfiguration data."
//
// ConfigRam is that view: 64 three-level cells (trits) addressed by word
// line (row) and bit line (column), with a documented cell layout mapping
// trits onto BlockConfig fields:
//
//   trits  0..35 : crosspoint biases, xpoint[row][col] row-major
//                  (0 = Force1 / not instantiated, 1 = Active, 2 = Force0)
//   trits 36..47 : output drivers, 2 trits per driver (base-3 value 0..3)
//   trits 48..53 : column sources (0 = abutted line, 1 = lfb0, 2 = lfb1)
//   trits 54..57 : lfb0 select {which lo, which hi, row lo, row hi}
//   trits 58..61 : lfb1 select
//   trits 62..63 : spare (always 0)
//
// 64 trits x 2 bits/trit = 128 bits — exactly the paper's figure, which
// bench_tab_config_bits compares against the XC5200-class CLB accounting.
#pragma once

#include <array>
#include <cstdint>

#include "core/block.h"

namespace pp::core {

inline constexpr int kRamRows = 8;
inline constexpr int kRamCols = 8;

class ConfigRam {
 public:
  ConfigRam() { cells_.fill(0); }

  /// Build the RAM image of a block configuration.
  static ConfigRam from_config(const BlockConfig& cfg);

  /// Decode back to a BlockConfig; throws std::invalid_argument on values
  /// outside the encodable range (e.g. driver code 4+, bad lfb row).
  [[nodiscard]] BlockConfig to_config() const;

  /// Word/bit-line cell access (trit value 0..2).
  [[nodiscard]] std::uint8_t read(int row, int col) const;
  void write(int row, int col, std::uint8_t trit);

  /// Flat trit access, index 0..63.
  [[nodiscard]] std::uint8_t trit(int i) const;
  void set_trit(int i, std::uint8_t v);

  bool operator==(const ConfigRam&) const = default;

 private:
  std::array<std::uint8_t, kRamRows * kRamCols> cells_;
};

}  // namespace pp::core
