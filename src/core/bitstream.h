// Serialised configuration bitstreams.
//
// Per block: the 64 config trits of ConfigRam packed 2 bits per trit =
// 16 bytes = 128 bits, the paper's per-block figure.  Per fabric: a small
// header (magic, dimensions) + blocks in row-major order + CRC32, which is
// what "a link to a reconfiguration bit stream" (§4) needs in practice.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/config_ram.h"
#include "core/fabric.h"
#include "util/status.h"

namespace pp::core {

inline constexpr int kBlockBytes = kConfigBits / 8;  // 16

/// CRC-32 (IEEE 802.3, reflected) over a byte span.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Pack one block into its 16-byte image (2 bits per trit, little-endian
/// trit order within each byte).
[[nodiscard]] std::vector<std::uint8_t> encode_block(const BlockConfig& cfg);

/// Decode a 16-byte block image.  Fails with kInvalidArgument on a wrong
/// image size, kDataLoss on the reserved trit code 0b11 or any out-of-range
/// field (corrupt configuration data).
[[nodiscard]] Result<BlockConfig> try_decode_block(
    std::span<const std::uint8_t> bytes);

/// Deprecated shim over `try_decode_block`; throws std::invalid_argument.
[[nodiscard]] BlockConfig decode_block(std::span<const std::uint8_t> bytes);

/// Full-fabric bitstream with header and CRC.
[[nodiscard]] std::vector<std::uint8_t> encode_fabric(const Fabric& fabric);

/// Parse and load a fabric bitstream.  Error codes: kInvalidArgument for a
/// bad magic or a dimension mismatch with `fabric`, kOutOfRange for a
/// truncated/oversized stream, kDataLoss for a CRC failure or a corrupt
/// block image.  On failure the fabric is left unmodified.
[[nodiscard]] Status try_load_fabric(Fabric& fabric,
                                     std::span<const std::uint8_t> bytes);

/// Deprecated shim over `try_load_fabric`; throws std::invalid_argument.
void load_fabric(Fabric& fabric, std::span<const std::uint8_t> bytes);

/// Bits of configuration a given fabric region carries (the TAB-A metric):
/// simply 128 x number of blocks.
[[nodiscard]] inline long long config_bits(int blocks) {
  return static_cast<long long>(blocks) * kConfigBits;
}

}  // namespace pp::core
