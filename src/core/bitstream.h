// Serialised configuration bitstreams.
//
// Per block: the 64 config trits of ConfigRam packed 2 bits per trit =
// 16 bytes = 128 bits, the paper's per-block figure.  Per fabric: a small
// header (magic, dimensions) + blocks in row-major order + CRC32, which is
// what "a link to a reconfiguration bit stream" (§4) needs in practice.
//
// Partial reconfiguration: a *delta* stream carries only the blocks whose
// 16-byte images differ between two personalities of the same array
// (block-addressed frames, DESIGN.md §10).  A delta is bound to its base
// configuration by the base bitstream's CRC, so a reconfiguration
// controller can never apply it to the wrong resident personality; the
// stream itself is covered by a trailing CRC like the full bitstream.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/config_ram.h"
#include "core/fabric.h"
#include "util/status.h"

namespace pp::core {

inline constexpr int kBlockBytes = kConfigBits / 8;  // 16

/// CRC-32 (IEEE 802.3, reflected) over a byte span.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Pack one block into its 16-byte image (2 bits per trit, little-endian
/// trit order within each byte).
[[nodiscard]] std::vector<std::uint8_t> encode_block(const BlockConfig& cfg);

/// Decode a 16-byte block image.  Fails with kInvalidArgument on a wrong
/// image size, kDataLoss on the reserved trit code 0b11 or any out-of-range
/// field (corrupt configuration data).
[[nodiscard]] Result<BlockConfig> try_decode_block(
    std::span<const std::uint8_t> bytes);

/// Full-fabric bitstream with header and CRC.
[[nodiscard]] std::vector<std::uint8_t> encode_fabric(const Fabric& fabric);

/// Parse and load a fabric bitstream.  Error codes: kInvalidArgument for a
/// bad magic or a dimension mismatch with `fabric`, kOutOfRange for a
/// truncated/oversized stream, kDataLoss for a CRC failure or a corrupt
/// block image.  On failure the fabric is left unmodified.
[[nodiscard]] Status try_load_fabric(Fabric& fabric,
                                     std::span<const std::uint8_t> bytes);

// --- Partial-reconfiguration deltas (DESIGN.md §10) ------------------------
//
// Layout (all integers little-endian):
//   [0,4)    magic "PPDT"
//   [4,6)    rows   [6,8) cols          — array dimensions
//   [8,12)   CRC-32 of the *base* full bitstream (encode_fabric(from))
//   [12,16)  frame count
//   then per frame: u32 row-major block index + 16-byte block image,
//   indices strictly increasing;
//   [end-4,end) CRC-32 over every preceding byte of the delta stream.

inline constexpr std::size_t kDeltaHeaderBytes = 16;
inline constexpr std::size_t kDeltaFrameBytes = 4 + kBlockBytes;  // 20
inline constexpr std::size_t kDeltaTrailerBytes = 4;

/// Encode the delta that reconfigures `from` into `to`.  One frame per
/// block whose 16-byte image differs; identical fabrics yield a zero-frame
/// delta (header + CRC only).  Fails with kInvalidArgument when the two
/// fabrics have different dimensions (a delta never resizes the array).
[[nodiscard]] Result<std::vector<std::uint8_t>> encode_delta(
    const Fabric& from, const Fabric& to);

/// CRC identifying a fabric's configuration: the trailing CRC of its full
/// bitstream (crc over header + blocks, computed incrementally — the
/// stream is never materialized).  This is the value a delta's base-CRC
/// field carries; deliberately *not* a CRC over the entire stream, because
/// crc32(m ++ crc32(m)) is the same constant for every m.
[[nodiscard]] std::uint32_t fabric_config_crc(const Fabric& fabric);

/// Apply a delta stream to the resident configuration.  Error codes:
/// kInvalidArgument for a bad magic or dimension mismatch, kOutOfRange for
/// a truncated/oversized stream or a frame index outside the array (or out
/// of order), kDataLoss for a stream-CRC failure, a corrupt block image, or
/// a base-CRC mismatch (the delta was encoded against a different resident
/// configuration).  On failure the fabric is left unmodified.
[[nodiscard]] Status try_apply_delta(Fabric& fabric,
                                     std::span<const std::uint8_t> bytes);

/// As above, but the caller supplies the resident configuration's CRC
/// (`fabric_config_crc(fabric)`, or the trailing 4 bytes of the bitstream
/// it was loaded from) instead of having it re-derived — the reconfig
/// controller's hot path, which tracks the CRC across swaps.
[[nodiscard]] Status try_apply_delta(Fabric& fabric,
                                     std::span<const std::uint8_t> bytes,
                                     std::uint32_t resident_crc);

/// Parsed summary of a delta stream (size/frame accounting for reconfig
/// cost reporting).  Validates header, size, and stream CRC.
struct DeltaInfo {
  int rows = 0;
  int cols = 0;
  std::size_t frames = 0;
  std::uint32_t base_crc = 0;
};
[[nodiscard]] Result<DeltaInfo> inspect_delta(
    std::span<const std::uint8_t> bytes);

/// Bits of configuration a given fabric region carries (the TAB-A metric):
/// simply 128 x number of blocks.
[[nodiscard]] inline long long config_bits(int blocks) {
  return static_cast<long long>(blocks) * kConfigBits;
}

}  // namespace pp::core
