#include "core/fabric.h"

#include <sstream>
#include <stdexcept>

namespace pp::core {

Fabric::Fabric(int rows, int cols) : rows_(rows), cols_(cols) {
  if (rows < 1 || cols < 1)
    throw std::invalid_argument("Fabric: dimensions must be positive");
  blocks_.assign(static_cast<std::size_t>(rows) * cols, BlockConfig{});
}

BlockConfig& Fabric::block(int r, int c) {
  if (r < 0 || r >= rows_ || c < 0 || c >= cols_)
    throw std::out_of_range("Fabric::block");
  return blocks_[idx(r, c)];
}

const BlockConfig& Fabric::block(int r, int c) const {
  if (r < 0 || r >= rows_ || c < 0 || c >= cols_)
    throw std::out_of_range("Fabric::block");
  return blocks_[idx(r, c)];
}

void Fabric::clear() {
  for (auto& b : blocks_) b = BlockConfig{};
}

int Fabric::active_cells() const {
  int total = 0;
  for (const auto& b : blocks_) total += b.active_cells();
  return total;
}

int Fabric::used_blocks() const {
  int total = 0;
  for (const auto& b : blocks_)
    if (!b.is_empty()) ++total;
  return total;
}

Result<Fabric> Fabric::create(int rows, int cols) {
  if (rows < 1 || cols < 1)
    return Status::invalid_argument("Fabric: dimensions must be positive");
  return Fabric(rows, cols);
}

std::string Fabric::validate() const {
  const Status s = check();
  return s.ok() ? std::string{} : s.message();
}

Status Fabric::check() const {
  std::ostringstream err;
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      const BlockConfig& b = blocks_[idx(r, c)];
      const std::string local = b.validate();
      if (!local.empty())
        err << "block(" << r << "," << c << "): " << local;
      for (int k = 0; k < kLfbLines; ++k) {
        if (b.lfb_src[k].which == LfbWhich::kEast && c == cols_ - 1)
          err << "block(" << r << "," << c << "): lfb" << k
              << " taps east neighbour at array edge\n";
        if (b.lfb_src[k].which == LfbWhich::kSouth && r == rows_ - 1)
          err << "block(" << r << "," << c << "): lfb" << k
              << " taps south neighbour at array edge\n";
      }
    }
  }
  // Abutment contention: input line j of (r,c) must not be driven by both
  // the west and north neighbours.
  for (int r = 0; r <= rows_; ++r) {
    for (int c = 0; c <= cols_; ++c) {
      for (int j = 0; j < kBlockInputs; ++j) {
        int drivers = 0;
        if (c > 0 && r < rows_ &&
            blocks_[idx(r, c - 1)].driver[j] != DriverCfg::kOff)
          ++drivers;
        if (r > 0 && c < cols_ &&
            blocks_[idx(r - 1, c)].driver[j] != DriverCfg::kOff)
          ++drivers;
        if (drivers > 1)
          err << "input line (" << r << "," << c << "," << j
              << "): driven by both west and north neighbours\n";
      }
    }
  }
  std::string diag = err.str();
  if (diag.empty()) return Status();
  return Status::invalid_argument(std::move(diag));
}

sim::NetId ElaboratedFabric::in_line(int r, int c, int j) const {
  if (r < 0 || r > rows_ || c < 0 || c > cols_ || j < 0 || j >= kBlockInputs)
    throw std::out_of_range("ElaboratedFabric::in_line");
  return in_lines_[(static_cast<std::size_t>(r) * (cols_ + 1) + c) *
                       kBlockInputs +
                   j];
}

sim::NetId ElaboratedFabric::row_net(int r, int c, int i) const {
  if (r < 0 || r >= rows_ || c < 0 || c >= cols_ || i < 0 ||
      i >= kBlockOutputs)
    throw std::out_of_range("ElaboratedFabric::row_net");
  return row_nets_[(static_cast<std::size_t>(r) * cols_ + c) * kBlockOutputs +
                   i];
}

sim::NetId ElaboratedFabric::lfb_net(int r, int c, int k) const {
  if (r < 0 || r >= rows_ || c < 0 || c >= cols_ || k < 0 || k >= kLfbLines)
    throw std::out_of_range("ElaboratedFabric::lfb_net");
  return lfb_nets_[(static_cast<std::size_t>(r) * cols_ + c) * kLfbLines + k];
}

ElaboratedFabric Fabric::elaborate(const FabricDelays& d) const {
  auto result = try_elaborate(d);
  result.status().throw_if_error();
  return std::move(result).value();
}

Result<ElaboratedFabric> Fabric::try_elaborate(const FabricDelays& d) const {
  if (const Status s = check(); !s.ok())
    return Status::invalid_argument("Fabric::elaborate: invalid config:\n" +
                                    s.message());

  ElaboratedFabric ef;
  ef.rows_ = rows_;
  ef.cols_ = cols_;
  sim::Circuit& ckt = ef.circuit_;

  auto name = [](const char* kind, int r, int c, int i) {
    std::ostringstream os;
    os << kind << "_" << r << "_" << c << "_" << i;
    return os.str();
  };

  // 1. Create all input-line nets, including the south/east boundary rows.
  ef.in_lines_.assign(
      static_cast<std::size_t>(rows_ + 1) * (cols_ + 1) * kBlockInputs,
      sim::kNoNet);
  for (int r = 0; r <= rows_; ++r) {
    for (int c = 0; c <= cols_; ++c) {
      if (r == rows_ && c == cols_) continue;  // no block abuts the corner
      for (int j = 0; j < kBlockInputs; ++j) {
        const auto net = ckt.add_net(name("il", r, c, j));
        ef.in_lines_[(static_cast<std::size_t>(r) * (cols_ + 1) + c) *
                         kBlockInputs +
                     j] = net;
        // West/north boundary lines expose external (3-state) input pads —
        // the paper's IO happens at the array edge only.  A boundary line
        // may also be driven by its one existing neighbour; driving both
        // shows up as contention in simulation.
        const bool west_boundary = c == 0 && r < rows_;
        const bool north_boundary = r == 0 && c < cols_;
        if (west_boundary || north_boundary) {
          ckt.mark_input(net);
          ef.primary_inputs_.push_back(net);
        }
      }
    }
  }

  // 2. Row nets and lfb nets per block.
  ef.row_nets_.assign(static_cast<std::size_t>(rows_) * cols_ * kBlockOutputs,
                      sim::kNoNet);
  ef.lfb_nets_.assign(static_cast<std::size_t>(rows_) * cols_ * kLfbLines,
                      sim::kNoNet);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      const BlockConfig& cfg = blocks_[idx(r, c)];
      for (int i = 0; i < kBlockOutputs; ++i) {
        ef.row_nets_[(static_cast<std::size_t>(r) * cols_ + c) *
                         kBlockOutputs +
                     i] = ckt.add_net(name("row", r, c, i));
      }
      for (int k = 0; k < kLfbLines; ++k) {
        if (cfg.lfb_src[k].which != LfbWhich::kOff) {
          ef.lfb_nets_[(static_cast<std::size_t>(r) * cols_ + c) * kLfbLines +
                       k] = ckt.add_net(name("lfb", r, c, k));
        }
      }
    }
  }

  // A shared constant-1 net enables all configured-on 3-state drivers.
  const sim::NetId one = ckt.add_net("const1");
  ckt.add_gate(sim::GateKind::kConst1, {}, one, 1);

  // 3. Per-block gates.
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      const BlockConfig& cfg = blocks_[idx(r, c)];

      // Column source nets for this block.
      std::array<sim::NetId, kBlockInputs> col_net{};
      for (int j = 0; j < kBlockInputs; ++j) {
        switch (cfg.col_src[j]) {
          case ColSource::kAbut: col_net[j] = ef.in_line(r, c, j); break;
          case ColSource::kLfb0: col_net[j] = ef.lfb_net(r, c, 0); break;
          case ColSource::kLfb1: col_net[j] = ef.lfb_net(r, c, 1); break;
        }
        if (col_net[j] == sim::kNoNet)
          return Status::internal("elaborate: column reads unsourced lfb");
      }

      // NAND rows.
      for (int i = 0; i < kBlockOutputs; ++i) {
        const sim::NetId out = ef.row_net(r, c, i);
        bool disabled = false;
        std::vector<sim::NetId> ins;
        for (int j = 0; j < kBlockInputs; ++j) {
          if (cfg.xpoint[i][j] == BiasLevel::kForce0) disabled = true;
          if (cfg.xpoint[i][j] == BiasLevel::kActive)
            ins.push_back(col_net[j]);
        }
        if (disabled || ins.empty()) {
          ckt.add_gate(sim::GateKind::kConst1, {}, out, d.nand_ps);
        } else {
          ckt.add_gate(sim::GateKind::kNand, std::move(ins), out, d.nand_ps);
        }
      }

      // Output drivers: one physical driver = up to two elaborated 3-state
      // gates (east abutment + south abutment) sharing the configuration.
      for (int i = 0; i < kBlockOutputs; ++i) {
        const DriverCfg dc = cfg.driver[i];
        if (dc == DriverCfg::kOff) continue;
        const sim::GateKind kind = dc == DriverCfg::kInvert
                                       ? sim::GateKind::kTriInv
                                       : sim::GateKind::kTriBuf;
        const sim::SimTime delay =
            dc == DriverCfg::kPass ? d.pass_ps : d.driver_ps;
        const sim::NetId src = ef.row_net(r, c, i);
        // East abutment: input line i of (r, c+1).
        ckt.add_gate(kind, {src, one}, ef.in_line(r, c + 1, i), delay);
        // South abutment: input line i of (r+1, c).
        ckt.add_gate(kind, {src, one}, ef.in_line(r + 1, c, i), delay);
      }

      // lfb taps: own row, or a row of the east/south pair partner.
      for (int k = 0; k < kLfbLines; ++k) {
        const LfbSel& sel = cfg.lfb_src[k];
        if (sel.which == LfbWhich::kOff) continue;
        int sr = r, sc = c;
        if (sel.which == LfbWhich::kEast) ++sc;
        if (sel.which == LfbWhich::kSouth) ++sr;
        ckt.add_gate(sim::GateKind::kTriBuf,
                     {ef.row_net(sr, sc, sel.row), one},
                     ef.lfb_net(r, c, k), d.lfb_ps);
      }
    }
  }

  const std::string cdiag = ckt.validate();
  if (!cdiag.empty())
    return Status::internal("Fabric::elaborate produced invalid circuit:\n" +
                            cdiag);
  return ef;
}

}  // namespace pp::core
