#include "core/bitstream.h"

#include <array>
#include <stdexcept>

namespace pp::core {
namespace {

constexpr char kMagic[4] = {'P', 'P', 'H', 'W'};

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int b = 0; b < 8; ++b)
      crc = (crc >> 1) ^ (crc & 1 ? 0xEDB88320u : 0u);
    table[i] = crc;
  }
  return table;
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

std::uint16_t get_u16(std::span<const std::uint8_t> in, std::size_t at) {
  return static_cast<std::uint16_t>(in[at] | (in[at + 1] << 8));
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const auto table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::uint8_t byte : data)
    crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFF];
  return crc ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> encode_block(const BlockConfig& cfg) {
  const ConfigRam ram = ConfigRam::from_config(cfg);
  std::vector<std::uint8_t> out(kBlockBytes, 0);
  for (int i = 0; i < kConfigTrits; ++i) {
    const std::uint8_t t = ram.trit(i);
    out[i / 4] |= static_cast<std::uint8_t>(t << (2 * (i % 4)));
  }
  return out;
}

Result<BlockConfig> try_decode_block(std::span<const std::uint8_t> bytes) {
  if (bytes.size() != kBlockBytes)
    return Status::invalid_argument("decode_block: need exactly 16 bytes");
  ConfigRam ram;
  for (int i = 0; i < kConfigTrits; ++i) {
    const std::uint8_t t = (bytes[i / 4] >> (2 * (i % 4))) & 0x3;
    if (t == 3)
      return Status::data_loss("decode_block: reserved trit code 0b11");
    ram.set_trit(i, t);
  }
  try {
    return ram.to_config();
  } catch (const std::invalid_argument& e) {
    // ConfigRam::to_config still reports out-of-range fields by throwing.
    return Status::data_loss(std::string("decode_block: ") + e.what());
  }
}

BlockConfig decode_block(std::span<const std::uint8_t> bytes) {
  auto result = try_decode_block(bytes);
  result.status().throw_if_error();
  return std::move(result).value();
}

std::vector<std::uint8_t> encode_fabric(const Fabric& fabric) {
  std::vector<std::uint8_t> out;
  out.reserve(8 + static_cast<std::size_t>(fabric.rows()) * fabric.cols() *
                      kBlockBytes + 4);
  for (char m : kMagic) out.push_back(static_cast<std::uint8_t>(m));
  put_u16(out, static_cast<std::uint16_t>(fabric.rows()));
  put_u16(out, static_cast<std::uint16_t>(fabric.cols()));
  for (int r = 0; r < fabric.rows(); ++r) {
    for (int c = 0; c < fabric.cols(); ++c) {
      const auto blk = encode_block(fabric.block(r, c));
      out.insert(out.end(), blk.begin(), blk.end());
    }
  }
  const std::uint32_t crc = crc32(out);
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>((crc >> (8 * i)) & 0xFF));
  return out;
}

Status try_load_fabric(Fabric& fabric, std::span<const std::uint8_t> bytes) {
  const std::size_t nblocks =
      static_cast<std::size_t>(fabric.rows()) * fabric.cols();
  const std::size_t expect = 8 + nblocks * kBlockBytes + 4;
  if (bytes.size() < 8)
    return Status::out_of_range("load_fabric: stream shorter than header");
  for (int i = 0; i < 4; ++i)
    if (bytes[i] != static_cast<std::uint8_t>(kMagic[i]))
      return Status::invalid_argument("load_fabric: bad magic");
  if (bytes.size() != expect)
    return Status::out_of_range("load_fabric: truncated or oversized stream");
  const int rows = get_u16(bytes, 4);
  const int cols = get_u16(bytes, 6);
  if (rows != fabric.rows() || cols != fabric.cols())
    return Status::invalid_argument("load_fabric: dimension mismatch");
  const auto body = bytes.first(bytes.size() - 4);
  std::uint32_t crc_stored = 0;
  for (int i = 0; i < 4; ++i)
    crc_stored |= static_cast<std::uint32_t>(bytes[bytes.size() - 4 + i])
                  << (8 * i);
  if (crc32(body) != crc_stored)
    return Status::data_loss("load_fabric: CRC mismatch");
  // Decode every block before touching the fabric so a corrupt image that
  // slipped past the CRC cannot leave it half-programmed.
  std::vector<BlockConfig> decoded;
  decoded.reserve(nblocks);
  std::size_t at = 8;
  for (std::size_t b = 0; b < nblocks; ++b) {
    auto blk = try_decode_block(bytes.subspan(at, kBlockBytes));
    if (!blk.ok()) return blk.status();
    decoded.push_back(std::move(*blk));
    at += kBlockBytes;
  }
  std::size_t i = 0;
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) fabric.block(r, c) = decoded[i++];
  return Status();
}

void load_fabric(Fabric& fabric, std::span<const std::uint8_t> bytes) {
  try_load_fabric(fabric, bytes).throw_if_error();
}

}  // namespace pp::core
