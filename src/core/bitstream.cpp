#include "core/bitstream.h"

#include <array>
#include <stdexcept>
#include <string>

namespace pp::core {
namespace {

constexpr char kMagic[4] = {'P', 'P', 'H', 'W'};
constexpr char kDeltaMagic[4] = {'P', 'P', 'D', 'T'};

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int b = 0; b < 8; ++b)
      crc = (crc >> 1) ^ (crc & 1 ? 0xEDB88320u : 0u);
    table[i] = crc;
  }
  return table;
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

std::uint16_t get_u16(std::span<const std::uint8_t> in, std::size_t at) {
  return static_cast<std::uint16_t>(in[at] | (in[at + 1] << 8));
}

std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(in[at + i]) << (8 * i);
  return v;
}

/// Check the trailing CRC of a stream: crc32 over everything before it.
[[nodiscard]] bool trailer_crc_ok(std::span<const std::uint8_t> bytes) {
  const auto body = bytes.first(bytes.size() - 4);
  return crc32(body) == get_u32(bytes, bytes.size() - 4);
}

/// The header bytes of a fabric's full bitstream (magic + dimensions).
[[nodiscard]] std::vector<std::uint8_t> fabric_header(const Fabric& fabric) {
  std::vector<std::uint8_t> header;
  for (char m : kMagic) header.push_back(static_cast<std::uint8_t>(m));
  put_u16(header, static_cast<std::uint16_t>(fabric.rows()));
  put_u16(header, static_cast<std::uint16_t>(fabric.cols()));
  return header;
}

/// Raw (pre/post-conditioning applied by the callers) CRC state update.
std::uint32_t crc_update(std::uint32_t state,
                         std::span<const std::uint8_t> data) {
  static const auto table = make_crc_table();
  for (std::uint8_t byte : data)
    state = (state >> 8) ^ table[(state ^ byte) & 0xFF];
  return state;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  return crc_update(0xFFFFFFFFu, data) ^ 0xFFFFFFFFu;
}

std::uint32_t fabric_config_crc(const Fabric& fabric) {
  std::uint32_t state = crc_update(0xFFFFFFFFu, fabric_header(fabric));
  for (int r = 0; r < fabric.rows(); ++r)
    for (int c = 0; c < fabric.cols(); ++c)
      state = crc_update(state, encode_block(fabric.block(r, c)));
  return state ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> encode_block(const BlockConfig& cfg) {
  const ConfigRam ram = ConfigRam::from_config(cfg);
  std::vector<std::uint8_t> out(kBlockBytes, 0);
  for (int i = 0; i < kConfigTrits; ++i) {
    const std::uint8_t t = ram.trit(i);
    out[i / 4] |= static_cast<std::uint8_t>(t << (2 * (i % 4)));
  }
  return out;
}

Result<BlockConfig> try_decode_block(std::span<const std::uint8_t> bytes) {
  if (bytes.size() != kBlockBytes)
    return Status::invalid_argument("decode_block: need exactly 16 bytes");
  ConfigRam ram;
  for (int i = 0; i < kConfigTrits; ++i) {
    const std::uint8_t t = (bytes[i / 4] >> (2 * (i % 4))) & 0x3;
    if (t == 3)
      return Status::data_loss("decode_block: reserved trit code 0b11");
    ram.set_trit(i, t);
  }
  try {
    return ram.to_config();
  } catch (const std::invalid_argument& e) {
    // ConfigRam::to_config still reports out-of-range fields by throwing.
    return Status::data_loss(std::string("decode_block: ") + e.what());
  }
}

std::vector<std::uint8_t> encode_fabric(const Fabric& fabric) {
  std::vector<std::uint8_t> out;
  out.reserve(8 + static_cast<std::size_t>(fabric.rows()) * fabric.cols() *
                      kBlockBytes + 4);
  for (char m : kMagic) out.push_back(static_cast<std::uint8_t>(m));
  put_u16(out, static_cast<std::uint16_t>(fabric.rows()));
  put_u16(out, static_cast<std::uint16_t>(fabric.cols()));
  for (int r = 0; r < fabric.rows(); ++r) {
    for (int c = 0; c < fabric.cols(); ++c) {
      const auto blk = encode_block(fabric.block(r, c));
      out.insert(out.end(), blk.begin(), blk.end());
    }
  }
  put_u32(out, crc32(out));
  return out;
}

Status try_load_fabric(Fabric& fabric, std::span<const std::uint8_t> bytes) {
  const std::size_t nblocks =
      static_cast<std::size_t>(fabric.rows()) * fabric.cols();
  const std::size_t expect = 8 + nblocks * kBlockBytes + 4;
  if (bytes.size() < 8)
    return Status::out_of_range("load_fabric: stream shorter than header");
  for (int i = 0; i < 4; ++i)
    if (bytes[i] != static_cast<std::uint8_t>(kMagic[i]))
      return Status::invalid_argument("load_fabric: bad magic");
  if (bytes.size() != expect)
    return Status::out_of_range("load_fabric: truncated or oversized stream");
  const int rows = get_u16(bytes, 4);
  const int cols = get_u16(bytes, 6);
  if (rows != fabric.rows() || cols != fabric.cols())
    return Status::invalid_argument("load_fabric: dimension mismatch");
  if (!trailer_crc_ok(bytes))
    return Status::data_loss("load_fabric: CRC mismatch");
  // Decode every block before touching the fabric so a corrupt image that
  // slipped past the CRC cannot leave it half-programmed.
  std::vector<BlockConfig> decoded;
  decoded.reserve(nblocks);
  std::size_t at = 8;
  for (std::size_t b = 0; b < nblocks; ++b) {
    auto blk = try_decode_block(bytes.subspan(at, kBlockBytes));
    if (!blk.ok()) return blk.status();
    decoded.push_back(std::move(*blk));
    at += kBlockBytes;
  }
  std::size_t i = 0;
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) fabric.block(r, c) = decoded[i++];
  return Status();
}

Result<std::vector<std::uint8_t>> encode_delta(const Fabric& from,
                                               const Fabric& to) {
  if (from.rows() != to.rows() || from.cols() != to.cols())
    return Status::invalid_argument(
        "encode_delta: fabric dimensions differ (a delta never resizes the "
        "array)");
  std::vector<std::uint8_t> out;
  for (char m : kDeltaMagic) out.push_back(static_cast<std::uint8_t>(m));
  put_u16(out, static_cast<std::uint16_t>(from.rows()));
  put_u16(out, static_cast<std::uint16_t>(from.cols()));
  // Base CRC and frame count are patched in after the sweep (the base CRC
  // is accumulated from the same block images the comparison needs, so the
  // base bitstream is never materialized).
  const std::size_t base_crc_at = out.size();
  put_u32(out, 0);
  const std::size_t count_at = out.size();
  put_u32(out, 0);
  std::uint32_t base_state = crc_update(0xFFFFFFFFu, fabric_header(from));
  std::uint32_t frames = 0;
  for (int r = 0; r < from.rows(); ++r) {
    for (int c = 0; c < from.cols(); ++c) {
      const auto base = encode_block(from.block(r, c));
      base_state = crc_update(base_state, base);
      const auto next = encode_block(to.block(r, c));
      if (base == next) continue;
      put_u32(out, static_cast<std::uint32_t>(r) * from.cols() + c);
      out.insert(out.end(), next.begin(), next.end());
      ++frames;
    }
  }
  const std::uint32_t base_crc = base_state ^ 0xFFFFFFFFu;
  for (int i = 0; i < 4; ++i) {
    out[base_crc_at + i] =
        static_cast<std::uint8_t>((base_crc >> (8 * i)) & 0xFF);
    out[count_at + i] = static_cast<std::uint8_t>((frames >> (8 * i)) & 0xFF);
  }
  put_u32(out, crc32(out));
  return out;
}

namespace {

/// Shared header validation for apply/inspect.  On success `info` carries
/// the parsed dimensions, frame count, and base CRC.
[[nodiscard]] Status parse_delta(std::span<const std::uint8_t> bytes,
                                 DeltaInfo& info) {
  if (bytes.size() < kDeltaHeaderBytes + kDeltaTrailerBytes)
    return Status::out_of_range("apply_delta: stream shorter than header");
  for (int i = 0; i < 4; ++i)
    if (bytes[i] != static_cast<std::uint8_t>(kDeltaMagic[i]))
      return Status::invalid_argument("apply_delta: bad magic");
  info.rows = get_u16(bytes, 4);
  info.cols = get_u16(bytes, 6);
  info.base_crc = get_u32(bytes, 8);
  info.frames = get_u32(bytes, 12);
  const std::size_t expect = kDeltaHeaderBytes +
                             info.frames * kDeltaFrameBytes +
                             kDeltaTrailerBytes;
  if (bytes.size() != expect)
    return Status::out_of_range("apply_delta: truncated or oversized stream");
  if (!trailer_crc_ok(bytes))
    return Status::data_loss("apply_delta: stream CRC mismatch");
  return Status();
}

}  // namespace

Status try_apply_delta(Fabric& fabric, std::span<const std::uint8_t> bytes) {
  return try_apply_delta(fabric, bytes, fabric_config_crc(fabric));
}

Status try_apply_delta(Fabric& fabric, std::span<const std::uint8_t> bytes,
                       std::uint32_t resident_crc) {
  DeltaInfo info;
  if (Status s = parse_delta(bytes, info); !s.ok()) return s;
  if (info.rows != fabric.rows() || info.cols != fabric.cols())
    return Status::invalid_argument("apply_delta: dimension mismatch");
  if (info.base_crc != resident_crc)
    return Status::data_loss(
        "apply_delta: base CRC mismatch (delta encoded against a different "
        "resident configuration)");
  const std::size_t nblocks =
      static_cast<std::size_t>(info.rows) * info.cols;
  // Decode every frame before touching the fabric (same commit discipline
  // as try_load_fabric): a bad frame must leave the array untouched.
  std::vector<std::pair<std::size_t, BlockConfig>> decoded;
  decoded.reserve(info.frames);
  std::size_t at = kDeltaHeaderBytes;
  std::uint64_t prev_index = 0;
  for (std::size_t f = 0; f < info.frames; ++f) {
    const std::uint32_t index = get_u32(bytes, at);
    if (index >= nblocks)
      return Status::out_of_range("apply_delta: frame " + std::to_string(f) +
                                  " addresses block " + std::to_string(index) +
                                  " outside the array");
    if (f > 0 && index <= prev_index)
      return Status::out_of_range(
          "apply_delta: frame indices must be strictly increasing");
    prev_index = index;
    auto blk = try_decode_block(bytes.subspan(at + 4, kBlockBytes));
    if (!blk.ok()) return blk.status();
    decoded.emplace_back(index, std::move(*blk));
    at += kDeltaFrameBytes;
  }
  for (auto& [index, cfg] : decoded)
    fabric.block(static_cast<int>(index / info.cols),
                 static_cast<int>(index % info.cols)) = std::move(cfg);
  return Status();
}

Result<DeltaInfo> inspect_delta(std::span<const std::uint8_t> bytes) {
  DeltaInfo info;
  if (Status s = parse_delta(bytes, info); !s.ok()) return s;
  return info;
}

}  // namespace pp::core
