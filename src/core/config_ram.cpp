#include "core/config_ram.h"

#include <stdexcept>

namespace pp::core {
namespace {

constexpr int kXpointBase = 0;
constexpr int kDriverBase = 36;
constexpr int kColSrcBase = 48;
constexpr int kLfbBase = 54;  // 4 trits per lfb line

std::uint8_t bias_to_trit(BiasLevel b) {
  switch (b) {
    case BiasLevel::kForce1: return 0;
    case BiasLevel::kActive: return 1;
    case BiasLevel::kForce0: return 2;
  }
  return 0;
}

BiasLevel trit_to_bias(std::uint8_t t) {
  switch (t) {
    case 0: return BiasLevel::kForce1;
    case 1: return BiasLevel::kActive;
    case 2: return BiasLevel::kForce0;
    default: throw std::invalid_argument("ConfigRam: bad bias trit");
  }
}

}  // namespace

std::uint8_t ConfigRam::read(int row, int col) const {
  if (row < 0 || row >= kRamRows || col < 0 || col >= kRamCols)
    throw std::out_of_range("ConfigRam::read");
  return cells_[row * kRamCols + col];
}

void ConfigRam::write(int row, int col, std::uint8_t t) {
  if (row < 0 || row >= kRamRows || col < 0 || col >= kRamCols)
    throw std::out_of_range("ConfigRam::write");
  if (t > 2) throw std::invalid_argument("ConfigRam::write: trit must be 0..2");
  cells_[row * kRamCols + col] = t;
}

std::uint8_t ConfigRam::trit(int i) const {
  if (i < 0 || i >= kRamRows * kRamCols)
    throw std::out_of_range("ConfigRam::trit");
  return cells_[i];
}

void ConfigRam::set_trit(int i, std::uint8_t v) {
  if (i < 0 || i >= kRamRows * kRamCols)
    throw std::out_of_range("ConfigRam::set_trit");
  if (v > 2) throw std::invalid_argument("ConfigRam::set_trit: trit 0..2");
  cells_[i] = v;
}

ConfigRam ConfigRam::from_config(const BlockConfig& cfg) {
  ConfigRam ram;
  for (int r = 0; r < kBlockOutputs; ++r)
    for (int c = 0; c < kBlockInputs; ++c)
      ram.cells_[kXpointBase + r * kBlockInputs + c] =
          bias_to_trit(cfg.xpoint[r][c]);
  for (int i = 0; i < kBlockOutputs; ++i) {
    const auto v = static_cast<std::uint8_t>(cfg.driver[i]);
    ram.cells_[kDriverBase + 2 * i] = v % 3;
    ram.cells_[kDriverBase + 2 * i + 1] = v / 3;
  }
  for (int c = 0; c < kBlockInputs; ++c)
    ram.cells_[kColSrcBase + c] = static_cast<std::uint8_t>(cfg.col_src[c]);
  for (int k = 0; k < kLfbLines; ++k) {
    const auto which = static_cast<std::uint8_t>(cfg.lfb_src[k].which);
    const std::uint8_t row = cfg.lfb_src[k].row;
    const int base = kLfbBase + 4 * k;
    ram.cells_[base + 0] = which % 3;
    ram.cells_[base + 1] = which / 3;
    ram.cells_[base + 2] = row % 3;
    ram.cells_[base + 3] = row / 3;
  }
  return ram;
}

BlockConfig ConfigRam::to_config() const {
  BlockConfig cfg;
  for (int r = 0; r < kBlockOutputs; ++r)
    for (int c = 0; c < kBlockInputs; ++c)
      cfg.xpoint[r][c] = trit_to_bias(cells_[kXpointBase + r * kBlockInputs + c]);
  for (int i = 0; i < kBlockOutputs; ++i) {
    const int v = cells_[kDriverBase + 2 * i] + 3 * cells_[kDriverBase + 2 * i + 1];
    if (v > 3) throw std::invalid_argument("ConfigRam: bad driver code");
    cfg.driver[i] = static_cast<DriverCfg>(v);
  }
  for (int c = 0; c < kBlockInputs; ++c) {
    const std::uint8_t v = cells_[kColSrcBase + c];
    if (v > 2) throw std::invalid_argument("ConfigRam: bad column source");
    cfg.col_src[c] = static_cast<ColSource>(v);
  }
  for (int k = 0; k < kLfbLines; ++k) {
    const int base = kLfbBase + 4 * k;
    const int which = cells_[base + 0] + 3 * cells_[base + 1];
    const int row = cells_[base + 2] + 3 * cells_[base + 3];
    if (which > 3) throw std::invalid_argument("ConfigRam: bad lfb which");
    if (row >= kBlockOutputs)
      throw std::invalid_argument("ConfigRam: bad lfb row");
    cfg.lfb_src[k].which = static_cast<LfbWhich>(which);
    cfg.lfb_src[k].row = static_cast<std::uint8_t>(row);
  }
  return cfg;
}

}  // namespace pp::core
