// Static timing analysis over elaborated circuits.
//
// Computes longest combinational arrival times from timing start points
// (primary inputs, state-element outputs, constants) to every net, treating
// state-holding gates (DFF/latch/C-element) as path endpoints.  Nets caught
// in purely combinational feedback loops (the fabric's cross-coupled NAND
// latches before they are recognised as state) are reported as loop members
// and excluded from arrival propagation.
//
// This gives the paper-facing numbers (Fig. 9 clock-to-Q scale, Fig. 10
// ripple depth) without simulation, and lets tests assert that simulated
// settling times never exceed the static bound.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/circuit.h"

namespace pp::core {

struct TimingReport {
  /// Longest arrival time per net (ps); 0 for start points and loop nets.
  std::vector<sim::SimTime> arrival;
  /// True for nets involved in a combinational cycle.
  std::vector<bool> in_loop;
  /// Longest arrival over all nets (the combinational critical path).
  sim::SimTime critical_path_ps = 0;
  /// Net achieving the critical path (kNoNet if the circuit is empty).
  sim::NetId critical_net = sim::kNoNet;
  /// Number of nets on combinational loops.
  int loop_nets = 0;
};

/// Analyse a circuit.  Runs in O(nets + gate pins).
[[nodiscard]] TimingReport analyze_timing(const sim::Circuit& circuit);

}  // namespace pp::core
