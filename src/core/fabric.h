// The block array of Fig. 8: adjacent-only connectivity with 90°-rotated
// neighbours, elaborated into a pp::sim circuit.
//
// Connectivity model (documented modelling decision — DESIGN.md §5):
//  * Block (r,c) owns six *input lines*, one per NAND column.  Input line j
//    can be driven, through 3-state drivers only, by
//       - output driver j of the WEST neighbour (r, c-1),
//       - output driver j of the NORTH neighbour (r-1, c),
//    which realises the paper's "outputs of each cell abut the inputs of the
//    two adjacent cells" under the 90° rotation.  At most one of the two may
//    be enabled; enabling both is a configuration error that the simulator
//    surfaces as contention (X).
//  * A block's output driver i is physically one driver whose output node
//    touches both abutting lines; we instantiate one 3-state gate per
//    abutted line sharing the same configuration.  With the driver released
//    the two lines float independently (the driver's output junction
//    isolates them), matching the electrical reality.
//  * Input lines on the array's west and north boundary are primary-input
//    attachment points; output-driver nets reaching the east and south
//    boundary are primary outputs.
//  * Column j of a block may instead read one of the block's two lfb lines
//    (local feedback, Fig. 8), each tapping a configured output row — this
//    is what makes state elements possible without global routing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/block.h"
#include "sim/circuit.h"
#include "sim/simulator.h"
#include "util/status.h"

namespace pp::core {

/// Gate timing used during elaboration.  Values are picoseconds; defaults
/// are the 22 nm-class numbers produced by pp::arch::scaled_delays (kept
/// here literally so core does not depend on arch).
struct FabricDelays {
  sim::SimTime nand_ps = 10;    ///< NAND plane row evaluation
  sim::SimTime driver_ps = 8;   ///< restoring driver (invert/buffer)
  sim::SimTime pass_ps = 3;     ///< pass-transistor connection
  sim::SimTime lfb_ps = 2;      ///< local feedback tap

  bool operator==(const FabricDelays&) const = default;
};

/// Where a fabric net lives, for diagnostics and the mapper.
struct LinePos {
  int r, c, line;
  bool operator==(const LinePos&) const = default;
};

class Fabric;

/// The result of elaborating a configured fabric: a simulatable circuit plus
/// the net bookkeeping needed to drive and observe it.
class ElaboratedFabric {
 public:
  [[nodiscard]] const sim::Circuit& circuit() const noexcept { return circuit_; }

  /// Input line j of block (r,c); r in [0,rows], c in [0,cols] — the
  /// out-of-range row/col index addresses the south/east boundary nets.
  [[nodiscard]] sim::NetId in_line(int r, int c, int j) const;
  /// NAND row net i of block (r,c) (before the output driver).
  [[nodiscard]] sim::NetId row_net(int r, int c, int i) const;
  /// lfb net k of block (r,c); kNoNet if that lfb has no source.
  [[nodiscard]] sim::NetId lfb_net(int r, int c, int k) const;

  /// Primary-input nets (all west- and north-boundary input lines).
  [[nodiscard]] const std::vector<sim::NetId>& primary_inputs() const noexcept {
    return primary_inputs_;
  }

  [[nodiscard]] int rows() const noexcept { return rows_; }
  [[nodiscard]] int cols() const noexcept { return cols_; }

 private:
  friend class Fabric;
  int rows_ = 0, cols_ = 0;
  sim::Circuit circuit_;
  std::vector<sim::NetId> in_lines_;   // (rows+1) x (cols+1) x 6
  std::vector<sim::NetId> row_nets_;   // rows x cols x 6
  std::vector<sim::NetId> lfb_nets_;   // rows x cols x 2
  std::vector<sim::NetId> primary_inputs_;
};

class Fabric {
 public:
  /// Throws std::invalid_argument on non-positive dimensions; prefer
  /// `create` in new code.
  Fabric(int rows, int cols);

  /// Status-returning factory.
  [[nodiscard]] static Result<Fabric> create(int rows, int cols);

  [[nodiscard]] int rows() const noexcept { return rows_; }
  [[nodiscard]] int cols() const noexcept { return cols_; }

  [[nodiscard]] BlockConfig& block(int r, int c);
  [[nodiscard]] const BlockConfig& block(int r, int c) const;

  /// Clear every block to the empty configuration.
  void clear();

  /// Count of instantiated leaf cells over the whole array (area proxy).
  [[nodiscard]] int active_cells() const;
  /// Number of non-empty blocks.
  [[nodiscard]] int used_blocks() const;

  /// Static configuration checks across blocks: per input line at most one
  /// enabled abutting driver; block-local validity.  The error message
  /// carries one diagnostic line per violation.
  [[nodiscard]] Status check() const;

  /// Deprecated shim over `check()`: empty string = OK, else the diagnostic
  /// text (the seed's convention, kept for existing callers/tests).
  [[nodiscard]] std::string validate() const;

  /// Build the simulatable circuit.  Fails with kInvalidArgument when the
  /// configuration does not pass `check()`.
  [[nodiscard]] Result<ElaboratedFabric> try_elaborate(
      const FabricDelays& d = {}) const;

  /// Deprecated shim over `try_elaborate`; throws std::invalid_argument on a
  /// configuration error.
  [[nodiscard]] ElaboratedFabric elaborate(const FabricDelays& d = {}) const;

 private:
  [[nodiscard]] int idx(int r, int c) const { return r * cols_ + c; }
  int rows_, cols_;
  std::vector<BlockConfig> blocks_;
};

}  // namespace pp::core
