#include "core/timing.h"

#include <algorithm>

namespace pp::core {

using sim::Circuit;
using sim::Gate;
using sim::GateId;
using sim::GateKind;
using sim::NetId;
using sim::SimTime;

namespace {

bool is_state_gate(GateKind k) {
  return k == GateKind::kDff || k == GateKind::kLatch ||
         k == GateKind::kCElement;
}

bool is_source_gate(GateKind k) {
  return k == GateKind::kConst0 || k == GateKind::kConst1;
}

}  // namespace

TimingReport analyze_timing(const Circuit& ckt) {
  const auto nnets = static_cast<std::uint32_t>(ckt.net_count());
  const auto ngates = static_cast<std::uint32_t>(ckt.gate_count());

  TimingReport rep;
  rep.arrival.assign(nnets, 0);
  rep.in_loop.assign(nnets, false);

  // Combinational dependency edges: gate output depends on gate inputs,
  // except for state/constant gates whose outputs are timing start points.
  // Build per-net fan-in gate list for combinational gates only.
  std::vector<std::vector<GateId>> driver_of(nnets);
  for (GateId g = 0; g < ngates; ++g) {
    const Gate& gate = ckt.gate(g);
    if (is_state_gate(gate.kind) || is_source_gate(gate.kind)) continue;
    driver_of[gate.output].push_back(g);
  }

  // Iterative longest-path relaxation with a combinational-loop guard: a
  // DAG settles within #nets iterations; nets still changing afterwards are
  // on cycles.
  bool changed = true;
  std::uint32_t iter = 0;
  std::vector<SimTime> next = rep.arrival;
  while (changed && iter <= nnets + 1) {
    changed = false;
    for (NetId n = 0; n < nnets; ++n) {
      SimTime best = 0;
      for (GateId g : driver_of[n]) {
        const Gate& gate = ckt.gate(g);
        SimTime in_arrival = 0;
        for (NetId in : gate.inputs)
          in_arrival = std::max(in_arrival, rep.arrival[in]);
        best = std::max(best, in_arrival + gate.delay_ps);
      }
      next[n] = best;
      if (best != rep.arrival[n]) changed = true;
    }
    rep.arrival.swap(next);
    ++iter;
  }

  if (changed) {
    // Cycles present: one more bounded sweep marks every net whose arrival
    // is still growing as a loop member, then freeze them at 0.
    for (NetId n = 0; n < nnets; ++n) {
      SimTime best = 0;
      for (GateId g : driver_of[n]) {
        const Gate& gate = ckt.gate(g);
        SimTime in_arrival = 0;
        for (NetId in : gate.inputs)
          in_arrival = std::max(in_arrival, rep.arrival[in]);
        best = std::max(best, in_arrival + gate.delay_ps);
      }
      if (best != rep.arrival[n]) rep.in_loop[n] = true;
    }
    // Propagate loop membership forward so everything downstream of a loop
    // is flagged too (its arrival bound is unreliable).
    bool grow = true;
    std::uint32_t guard = 0;
    while (grow && guard++ <= nnets) {
      grow = false;
      for (NetId n = 0; n < nnets; ++n) {
        if (rep.in_loop[n]) continue;
        for (GateId g : driver_of[n]) {
          for (NetId in : ckt.gate(g).inputs) {
            if (rep.in_loop[in]) {
              rep.in_loop[n] = true;
              grow = true;
              break;
            }
          }
          if (rep.in_loop[n]) break;
        }
      }
    }
    for (NetId n = 0; n < nnets; ++n)
      if (rep.in_loop[n]) {
        rep.arrival[n] = 0;
        ++rep.loop_nets;
      }
  }

  for (NetId n = 0; n < nnets; ++n) {
    if (rep.arrival[n] > rep.critical_path_ps) {
      rep.critical_path_ps = rep.arrival[n];
      rep.critical_net = n;
    }
  }
  return rep;
}

}  // namespace pp::core
