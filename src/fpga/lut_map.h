// Technology mapping of pp::map netlists onto K-input LUT cells — the
// baseline side of the paper's function-for-function comparisons.
//
// Greedy cone-packing: process cells in topological order; each logic cell
// tries to absorb its combinational fan-in cones while the merged support
// stays within K inputs.  Not FlowMap-optimal, but deterministic,
// depth-aware, and representative of what the comparison needs (the paper's
// argument is about config-bit/area ratios, not mapper quality).
#pragma once

#include "fpga/logic_cell.h"
#include "map/netlist.h"

namespace pp::fpga {

struct Mapping {
  int luts = 0;       ///< K-LUTs used
  int ffs = 0;        ///< flip-flops used
  int depth = 0;      ///< LUT levels on the critical path
  int logic_cells = 0;///< tiles consumed: max(luts, ffs) packed into cells

  /// Total configuration bits (tiles x per-tile bits).
  [[nodiscard]] long long config_bits(const FpgaParams& p = {}) const;
  /// Total λ² area.
  [[nodiscard]] double area_lambda2(const FpgaParams& p = {}) const;
};

/// Map `netlist` onto K-input LUTs.
[[nodiscard]] Mapping lut_map(const map::Netlist& netlist,
                              const FpgaParams& params = {});

}  // namespace pp::fpga
