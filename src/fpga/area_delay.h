// Interconnect-dominated delay model for the FPGA baseline (§2.1) and the
// technology-scaling relations the paper leans on:
//   * path delay = logic delay + routed-wire Elmore delay through
//     pass-transistor switches;
//   * interconnect share of path delay ~80% at DSM nodes (DeHon [1]);
//   * FPGA operating frequency improving only as O(λ^-1/2) under scaling
//     (De Dinechin [18]);
//   * the Liu & Pai [20] observation that driving 1 mm in 100 ps takes a
//     driver with W/L in the hundreds.
#pragma once

namespace pp::fpga {

/// Technology point parameterised by drawn feature size (nm).  Wire and
/// device constants follow constant-field scaling from a 250 nm anchor.
struct TechPoint {
  double feature_nm;

  /// Wire resistance per µm (Ω/µm) for a minimum-width mid-layer wire.
  [[nodiscard]] double wire_r_per_um() const;
  /// Wire capacitance per µm (fF/µm); roughly scale-invariant.
  [[nodiscard]] double wire_c_per_um() const;
  /// On-resistance of a minimum-size pass switch (Ω).
  [[nodiscard]] double switch_r() const;
  /// Switch junction capacitance (fF).
  [[nodiscard]] double switch_c() const;
  /// Intrinsic LUT (logic) delay (ps); scales with feature size.
  [[nodiscard]] double lut_delay_ps() const;
};

/// Elmore delay (ps) of a routed connection of `segments` wire segments of
/// `seg_len_um` each, through one switch per segment, driven by a driver of
/// `drive_r` Ω.
[[nodiscard]] double routed_delay_ps(const TechPoint& t, int segments,
                                     double seg_len_um, double drive_r);

/// Critical-path estimate (ps) for a mapping of LUT depth `depth` with an
/// average of `avg_segments` routing segments between LUT levels.
[[nodiscard]] double critical_path_ps(const TechPoint& t, int depth,
                                      int avg_segments = 4,
                                      double seg_len_um = 30.0);

/// Fraction of the critical path spent in interconnect (the ~80% claim).
[[nodiscard]] double interconnect_fraction(const TechPoint& t, int depth,
                                           int avg_segments = 4,
                                           double seg_len_um = 30.0);

/// De Dinechin scaling law: relative FPGA frequency at feature f vs anchor.
[[nodiscard]] double dedinechin_freq_scale(double feature_nm,
                                           double anchor_nm = 250.0);

/// Delay (ps) to drive a line of `len_mm` with a driver of width ratio
/// `w_over_l` at technology `t` (distributed RC + driver charging).
[[nodiscard]] double line_drive_delay_ps(const TechPoint& t, double len_mm,
                                         double w_over_l);

/// Smallest driver W/L (searched) achieving `target_ps` on `len_mm` of wire.
[[nodiscard]] double required_driver_ratio(const TechPoint& t, double len_mm,
                                           double target_ps);

}  // namespace pp::fpga
