#include "fpga/area_delay.h"

#include <cmath>

namespace pp::fpga {

namespace {
// 250 nm anchor constants (typical mid-1990s process, matching the era of
// the paper's citations).  Switch R/C describe a *buffered* routing switch;
// the separate min-driver R anchors the Liu & Pai line-driving analysis
// (a minimum-size device, ~10x weaker than a routing buffer).
constexpr double kAnchorNm = 250.0;
constexpr double kAnchorWireR = 0.08;       // Ω/µm
constexpr double kAnchorWireC = 0.20;       // fF/µm
constexpr double kAnchorSwitchR = 1000;     // Ω
constexpr double kAnchorSwitchC = 40.0;     // fF (junction + fanout stubs)
constexpr double kAnchorLutPs = 250;        // ps
constexpr double kAnchorMinDriverR = 10000; // Ω
}  // namespace

double TechPoint::wire_r_per_um() const {
  // Cross-section shrinks quadratically with feature size.
  const double s = kAnchorNm / feature_nm;
  return kAnchorWireR * s * s;
}

double TechPoint::wire_c_per_um() const {
  // Fringing keeps per-length capacitance roughly constant across nodes.
  return kAnchorWireC;
}

double TechPoint::switch_r() const {
  // Pass-device on-resistance grows as drive weakens; roughly 1/s with
  // constant-field scaling at fixed W/L.
  const double s = kAnchorNm / feature_nm;
  return kAnchorSwitchR * s;
}

double TechPoint::switch_c() const {
  const double s = kAnchorNm / feature_nm;
  return kAnchorSwitchC / s;
}

double TechPoint::lut_delay_ps() const {
  const double s = kAnchorNm / feature_nm;
  return kAnchorLutPs / s;
}

double routed_delay_ps(const TechPoint& t, int segments, double seg_len_um,
                       double drive_r) {
  // Elmore through a chain: driver sees all downstream C; each switch sees
  // its own downstream tail.  Units: Ω * fF = 1e-15 * 1e0 s = 1e-3 ps, so
  // multiply by 1e-3.
  const double rw = t.wire_r_per_um() * seg_len_um;
  const double cw = t.wire_c_per_um() * seg_len_um;
  const double rs = t.switch_r();
  const double cs = t.switch_c();
  double delay = 0.0;
  // Total downstream capacitance seen by node i (i = 0 is the driver).
  for (int i = 0; i <= segments; ++i) {
    const double r_here = (i == 0) ? drive_r : rs + 0.5 * rw;
    const double c_down =
        (segments - i) * (cw + cs) + (i == 0 ? 0.0 : cw * 0.5);
    delay += r_here * c_down;
  }
  return delay * 1e-3;
}

double critical_path_ps(const TechPoint& t, int depth, int avg_segments,
                        double seg_len_um) {
  const double logic = depth * t.lut_delay_ps();
  const double wire =
      depth * routed_delay_ps(t, avg_segments, seg_len_um, t.switch_r());
  return logic + wire;
}

double interconnect_fraction(const TechPoint& t, int depth, int avg_segments,
                             double seg_len_um) {
  const double total = critical_path_ps(t, depth, avg_segments, seg_len_um);
  const double logic = depth * t.lut_delay_ps();
  return (total - logic) / total;
}

double dedinechin_freq_scale(double feature_nm, double anchor_nm) {
  return std::sqrt(anchor_nm / feature_nm);
}

double line_drive_delay_ps(const TechPoint& t, double len_mm,
                           double w_over_l) {
  const double len_um = len_mm * 1000.0;
  const double rw = t.wire_r_per_um() * len_um;
  const double cw = t.wire_c_per_um() * len_um;
  const double s = kAnchorNm / t.feature_nm;
  const double rd = kAnchorMinDriverR * s / w_over_l;  // widen to reduce R
  // Distributed line driven at one end: 0.4 RwCw + 0.7 Rd Cw (Sakurai).
  return (0.4 * rw * cw + 0.7 * rd * cw) * 1e-3;
}

double required_driver_ratio(const TechPoint& t, double len_mm,
                             double target_ps) {
  // line_drive_delay is monotone decreasing in w_over_l; the distributed
  // term is a floor.  Binary search on top of an exponential bracket.
  double lo = 1.0, hi = 1.0;
  if (line_drive_delay_ps(t, len_mm, lo) <= target_ps) return lo;
  while (line_drive_delay_ps(t, len_mm, hi) > target_ps) {
    hi *= 2.0;
    if (hi > 1e7) return hi;  // unreachable target: report the huge ratio
  }
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (line_drive_delay_ps(t, len_mm, mid) > target_ps)
      lo = mid;
    else
      hi = mid;
  }
  return hi;
}

}  // namespace pp::fpga
