#include "fpga/logic_cell.h"

namespace pp::fpga {

CellBits cell_config_bits(const FpgaParams& p) {
  CellBits b{};
  b.lut = 1 << p.lut_k;
  // Fig. 1 control set: FF/combinational output select (M1..M3), clock
  // enable, clear routing, carry-chain configuration — 8 bits is the usual
  // count for this class of cell.
  b.ff_control = 8;
  // Connection block: each LUT input selects among fc_in * W wires with one
  // pass switch per candidate; the output taps fc_out wires.
  b.conn_block =
      static_cast<int>(p.lut_k * p.fc_in * p.channel_width) + p.fc_out;
  // Subset switch box: 6W switches per box, shared by the 4 tiles meeting
  // at its corner, with one horizontal and one vertical channel per tile:
  // 2 * 6W / 4 = 3W bits per tile.
  b.switch_box = 3 * p.channel_width;
  return b;
}

double cell_area_lambda2(const FpgaParams& p) {
  return cell_config_bits(p).total() * p.lambda2_per_bit;
}

}  // namespace pp::fpga
