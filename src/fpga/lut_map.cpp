#include "fpga/lut_map.h"

#include <algorithm>
#include <set>
#include <vector>

namespace pp::fpga {

using map::CellKind;
using map::Netlist;

long long Mapping::config_bits(const FpgaParams& p) const {
  return static_cast<long long>(logic_cells) * cell_config_bits(p).total();
}

double Mapping::area_lambda2(const FpgaParams& p) const {
  return static_cast<double>(logic_cells) * cell_area_lambda2(p);
}

Mapping lut_map(const Netlist& nl, const FpgaParams& params) {
  const int k = params.lut_k;
  const auto n = static_cast<int>(nl.cell_count());

  // For each cell: the support set (source cells: inputs/DFFs/constants it
  // ultimately reads through cells already absorbed into its LUT) and the
  // LUT depth.  A cell starts as "absorb fanin if the union of supports
  // fits in K", else it reads its fanins' LUT outputs.
  std::vector<std::set<int>> support(n);
  std::vector<int> depth(n, 0);
  std::vector<bool> is_lut_root(n, false);

  auto source = [&](int i) {
    const CellKind kind = nl.cell(i).kind;
    return kind == CellKind::kInput || kind == CellKind::kDff ||
           kind == CellKind::kConst0 || kind == CellKind::kConst1;
  };

  for (int i = 0; i < n; ++i) {
    const auto& c = nl.cell(i);
    if (source(i)) {
      support[i] = {i};
      depth[i] = 0;
      continue;
    }
    // Try to absorb each fanin's cone; a fanin that is itself a source or
    // whose absorption would overflow K contributes itself as an input.
    std::set<int> merged;
    int d = 0;
    for (int f : c.fanin) {
      if (f >= i) continue;  // forward DFF refs handled at the DFF itself
      std::set<int> candidate = merged;
      if (source(f) || is_lut_root[f]) {
        candidate.insert(f);
      } else {
        candidate.insert(support[f].begin(), support[f].end());
      }
      if (static_cast<int>(candidate.size()) <= k && !is_lut_root[f]) {
        merged = std::move(candidate);
        d = std::max(d, depth[f]);
      } else {
        merged.insert(f);
        d = std::max(d, depth[f] + (source(f) ? 0 : 1));
        // Reading a non-source fanin as a LUT input freezes that fanin as
        // a LUT root of its own.
        if (!source(f)) is_lut_root[f] = true;
      }
      if (static_cast<int>(merged.size()) > k) {
        // Fall back: treat every fanin as a direct input.
        merged.clear();
        d = 0;
        for (int g : c.fanin) {
          if (g >= i) continue;
          merged.insert(g);
          if (!source(g)) {
            is_lut_root[g] = true;
            d = std::max(d, depth[g] + 1);
          }
        }
        break;
      }
    }
    support[i] = std::move(merged);
    depth[i] = d;
  }

  // Outputs and DFF D-inputs are LUT roots too.
  for (int o : nl.outputs())
    if (!source(o)) is_lut_root[o] = true;
  for (int i = 0; i < n; ++i)
    if (nl.cell(i).kind == CellKind::kDff) {
      const int d_in = nl.cell(i).fanin[0];
      if (!source(d_in)) is_lut_root[d_in] = true;
    }

  Mapping m;
  for (int i = 0; i < n; ++i) {
    if (is_lut_root[i]) {
      ++m.luts;
      m.depth = std::max(m.depth, depth[i] + 1);
    }
    if (nl.cell(i).kind == CellKind::kDff) ++m.ffs;
  }
  // A logic cell provides one LUT and one FF; FFs pack with their source
  // LUT when possible (standard packing assumption).
  m.logic_cells = std::max(m.luts, m.ffs);
  if (m.logic_cells == 0) m.logic_cells = m.ffs > 0 ? m.ffs : 1;
  return m;
}

}  // namespace pp::fpga
