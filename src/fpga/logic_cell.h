// The conventional-FPGA baseline of §2 / Fig. 1: an XC5200-class logic cell
// (4-input LUT, D flip-flop, carry/control multiplexers) inside an
// island-style tile with connection blocks and a switch box.
//
// The paper's comparisons are resource-accounting comparisons, so the
// baseline is a *model*: it counts configuration bits and λ²-area per tile
// and estimates routed delay with an Elmore RC model.  The constants are
// calibrated to the figures the paper itself cites: a "typical 4-input LUT
// could be as high as 600 Kλ² if the programmable interconnect and
// configuration memory are included" (DeHon [1]), and a CLB plus its
// interconnect carries "several hundred bits".
#pragma once

namespace pp::fpga {

struct FpgaParams {
  int lut_k = 4;            ///< LUT input count (Fig. 1 logic cell)
  int cells_per_clb = 4;    ///< XC5200 groups 4 logic cells per CLB
  int channel_width = 24;   ///< routing wires per channel (W)
  double fc_in = 1.0;       ///< connection-box input flexibility (fraction of W)
  int fc_out = 12;          ///< output connection switches per cell
  int fs = 3;               ///< switch-box flexibility (3 = classic subset box)
  /// λ² of tile area attributed to each configuration bit (SRAM cell +
  /// pass transistor + share of drivers); calibrated so that one logic
  /// cell tile lands at DeHon's ~600 Kλ².
  double lambda2_per_bit = 2900.0;
};

/// Configuration-bit accounting for one logic cell *tile* (cell + its share
/// of routing).  Breakdown mirrors §2.2's argument that routing bits, not
/// LUT bits, dominate FPGA area.
struct CellBits {
  int lut;         ///< 2^K truth-table bits
  int ff_control;  ///< FF bypass, set/reset select, clock enable, carry muxes
  int conn_block;  ///< input + output connection-box switches
  int switch_box;  ///< tile's share of the switch box
  [[nodiscard]] int total() const {
    return lut + ff_control + conn_block + switch_box;
  }
};

[[nodiscard]] CellBits cell_config_bits(const FpgaParams& p = {});

/// λ² area of one logic-cell tile (config-bit proportional, DeHon's model).
[[nodiscard]] double cell_area_lambda2(const FpgaParams& p = {});

}  // namespace pp::fpga
