#include "rt/design_cache.h"

#include <optional>
#include <utility>

#include "core/bitstream.h"

namespace pp::rt {

namespace {

/// Resolve a port binding to its elaborated net (the same addressing rule
/// platform::Session uses: r/c may equal rows/cols to reach the south/east
/// boundary lines).
[[nodiscard]] Result<sim::NetId> net_of(const core::ElaboratedFabric& elab,
                                        const map::SignalAt& at) {
  if (at.r < 0 || at.r > elab.rows() || at.c < 0 || at.c > elab.cols() ||
      at.line < 0 || at.line >= core::kBlockInputs)
    return Status::out_of_range("resident design: port line outside the "
                                "fabric");
  return elab.in_line(at.r, at.c, at.line);
}

}  // namespace

Result<std::shared_ptr<ResidentDesign>> ResidentDesign::create(
    std::string name, platform::CompiledDesign padded) {
  if (padded.target != platform::Target::kPolymorphic)
    return Status::failed_precondition(
        "Device::load: the FPGA baseline target is an accounting model, "
        "nothing can be made resident");
  auto rd = std::shared_ptr<ResidentDesign>(new ResidentDesign());
  rd->name_ = std::move(name);
  rd->design_ = std::move(padded);

  auto fabric = core::Fabric::create(rd->design_.fabric.rows(),
                                     rd->design_.fabric.cols());
  if (!fabric.ok()) return fabric.status();
  rd->fabric_ = std::move(*fabric);
  if (Status s = core::try_load_fabric(rd->fabric_, rd->design_.bitstream);
      !s.ok())
    return s;

  auto elab = rd->fabric_.try_elaborate(rd->design_.delays);
  if (!elab.ok()) return elab.status();
  rd->elab_ = std::make_unique<core::ElaboratedFabric>(std::move(*elab));

  std::vector<sim::NetId> in_nets, out_nets;
  std::vector<std::string> output_names;
  for (const platform::PortBinding& p : rd->design_.inputs) {
    auto net = net_of(*rd->elab_, p.at);
    if (!net.ok()) return net.status();
    in_nets.push_back(*net);
  }
  for (const platform::PortBinding& p : rd->design_.outputs) {
    auto net = net_of(*rd->elab_, p.at);
    if (!net.ok()) return net.status();
    out_nets.push_back(*net);
    output_names.push_back(p.name);
  }
  // Boundary registers become external register loops (reset 0, the
  // Netlist::make_state convention): the executor's run_cycles closes them
  // at each clock edge, so clocked designs are resident like any other.
  std::vector<sim::ExternalReg> regs;
  regs.reserve(rd->design_.state.size());
  for (const platform::StateBinding& sb : rd->design_.state) {
    auto q = net_of(*rd->elab_, sb.q_pad);
    if (!q.ok()) return q.status();
    auto d = net_of(*rd->elab_, sb.d_at);
    if (!d.ok()) return d.status();
    regs.push_back({*q, *d, sim::Logic::k0});
  }

  // Recover the levelization once at load: the compiler's recorded levels
  // survive only when no padding re-shaped the circuit (pad_to drops them);
  // otherwise levelize here so every later engine build — across any number
  // of activations — skips the topological sort.
  sim::LevelMap levels = std::move(rd->design_.levels);
  rd->design_.levels = {};
  if (levels.empty())
    if (auto computed = sim::levelize(rd->elab_->circuit()); computed.ok())
      levels = std::move(*computed);

  rd->executor_ = std::make_unique<platform::BatchExecutor>(
      rd->elab_->circuit(), std::move(in_nets), std::move(out_nets),
      std::move(output_names), std::move(levels), std::move(regs));
  return rd;
}

Result<DesignCache::LoadOutcome> DesignCache::load(
    std::string name, platform::CompiledDesign padded) {
  const std::uint64_t hash = padded.content_hash;
  // Resolve against the registry (mutex_ held): a dedupe hit, an idempotent
  // re-load, or a name conflict — nullopt means "not resident yet, build
  // it".  Run both before building and again after re-acquiring the lock,
  // so a concurrent identical load resolves to the winner's resident object
  // instead of a spurious name conflict.
  const auto resolve = [&](const platform::CompiledDesign& design)
      -> std::optional<Result<LoadOutcome>> {
    // "Same content" is the full identity, not just the configuration
    // bytes — platform::same_content is the one shared rule (hash fast
    // path, authoritative bitstream bytes, outright-compared delays).
    const auto same_content = [&design](const ResidentDesign& resident) {
      return platform::same_content(resident.design(), design);
    };
    // Content dedupe: identical content is the same personality, whatever
    // it is called — alias the resident object.
    std::shared_ptr<ResidentDesign> twin;
    if (hash != 0) {
      if (auto it = by_hash_.find(hash); it != by_hash_.end())
        for (const auto& candidate : it->second)
          if (same_content(*candidate)) {
            twin = candidate;
            break;
          }
    }
    if (auto it = by_name_.find(name); it != by_name_.end()) {
      if (it->second == twin || same_content(*it->second))
        return Result<LoadOutcome>(
            LoadOutcome{it->second, true});  // idempotent re-load
      return Result<LoadOutcome>(Status::failed_precondition(
          "Device::load: name '" + name + "' already names a different "
          "design"));
    }
    if (twin) {
      by_name_.emplace(name, twin);
      return Result<LoadOutcome>(LoadOutcome{std::move(twin), true});
    }
    return std::nullopt;
  };

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (auto outcome = resolve(padded)) return *std::move(outcome);
  }
  // First residency of this content: build outside the registry lock (the
  // elaboration is the expensive step and needs no shared state).
  auto rd = ResidentDesign::create(name, std::move(padded));
  if (!rd.ok()) return rd.status();
  const std::lock_guard<std::mutex> lock(mutex_);
  if (auto outcome = resolve((*rd)->design()))
    return *std::move(outcome);  // a concurrent load won; drop our build
  by_name_.emplace(std::move(name), *rd);
  if (hash != 0) by_hash_[hash].push_back(*rd);
  return LoadOutcome{std::move(*rd), false};
}

std::shared_ptr<ResidentDesign> DesignCache::find(
    std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

std::vector<std::string> DesignCache::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(by_name_.size());
  for (const auto& [name, rd] : by_name_) out.push_back(name);
  return out;
}

}  // namespace pp::rt
