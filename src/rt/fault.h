// rt::FaultPlan — scripted runtime fault injection for one device.
//
// The paper's premise is that nano-scale arrays bring "poor reliability":
// src/arch/defects.h models *static* defects (known-bad resources that
// placement routes around), but a fleet also has to survive *runtime*
// failure — a device that starts failing activation CRC checks, silently
// corrupting result planes, wedging mid-job, or dying outright.  A
// FaultPlan scripts exactly those behaviours against a live rt::Device so
// the DevicePool's detection, quarantine, and job-migration machinery
// (DESIGN.md §15) can be driven deterministically by tests and the
// xbtest-style soak bench.
//
// This is a test/soak hook: no plan is installed by default, and the only
// cost an uninjected device pays is one relaxed atomic load per dispatched
// job.  Triggers are *dispatch ordinals* — the Nth job the dispatcher
// actually starts after the plan is installed — so a scripted schedule
// replays identically regardless of wall-clock timing.

/// \file
/// \brief rt::FaultPlan — scripted runtime fault injection (test/soak
/// hook) for one rt::Device.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pp::rt {

/// What an injected fault does to the device when its trigger fires.
enum class FaultKind : std::uint8_t {
  /// The personality swap for the job fails its activation CRC check: the
  /// job completes kDataLoss without running and the fabric is untouched
  /// (the failure a corrupted reconfiguration path produces).
  kActivationCrc = 0,
  /// The job runs to completion but one bit of its result planes is
  /// flipped (FaultPlan::corrupt_vector / corrupt_bit) while the status
  /// stays OK — the silent-corruption case only shadow verification
  /// (PoolOptions::verify_sample_rate) can catch.
  kCorruptResult = 1,
  /// The job wedges for FaultPlan::timeout_hold, then is killed by the
  /// (modelled) watchdog: it completes kUnavailable after the delay.
  kTimeout = 2,
  /// The device dies permanently: this job and every later dispatched job
  /// complete kUnavailable immediately.  Installing a new plan (or
  /// clearing the plan) revives the device — it is a test hook, not a
  /// hardware model.
  kDeath = 3,
};

/// One scripted fault: fire `kind` on the `at_job`-th dispatched job.
struct FaultEvent {
  /// 1-based ordinal of jobs the dispatcher *starts* (canceled-while-queued
  /// jobs do not count) since the plan was installed.
  std::uint64_t at_job = 1;
  /// The failure mode to inject at that ordinal.
  FaultKind kind = FaultKind::kActivationCrc;
};

/// A per-device fault-injection schedule, installed with
/// rt::Device::install_fault_plan (or rt::DevicePool::install_fault_plan).
/// Off by default; when no plan is installed the dispatch path pays a
/// single relaxed atomic load per job and nothing else.
struct FaultPlan {
  /// The scripted schedule.  Several events may share an ordinal (the
  /// first match wins); a kDeath event makes every later ordinal fail
  /// regardless of remaining events.
  std::vector<FaultEvent> events;
  /// How long a kTimeout fault wedges the dispatcher before the job is
  /// killed (models a watchdog interval; keep small in tests).
  std::chrono::milliseconds timeout_hold{25};
  /// Which result vector a kCorruptResult fault flips a bit in (taken
  /// modulo the job's result count).
  std::size_t corrupt_vector = 0;
  /// Which bit of that vector is flipped (taken modulo its width).
  std::size_t corrupt_bit = 0;
};

}  // namespace pp::rt
