// rt::DesignCache — named designs resident on one device.
//
// Making a design resident is where all the one-time work happens, exactly
// once per distinct design: the (padded) bitstream is decoded back into a
// fabric — round-tripping the configuration as a reconfiguration controller
// would — the fabric is elaborated, port bindings are resolved to nets, the
// levelization is recovered (reusing the compiler's when it survived
// padding), and a platform::BatchExecutor is bound.  Activating a design on
// the fabric later touches none of this: personalities swap via bitstream
// deltas while every resident design keeps its elaborated circuit and
// cached engines warm.
//
// The cache dedupes by content: loading a design whose content hash and
// padded bitstream match an already-resident design aliases the existing
// ResidentDesign under the new name instead of building a second copy.

/// \file
/// \brief rt::DesignCache / rt::ResidentDesign — named designs resident on
/// one device, deduped by content.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/fabric.h"
#include "platform/compiler.h"
#include "platform/executor.h"
#include "util/status.h"

namespace pp::rt {

/// One design made resident: immutable after creation, shared between the
/// registry (possibly under several names) and the dispatcher.
class ResidentDesign {
 public:
  /// Build from a design already padded to the device dimensions.  Fails
  /// with the bitstream/elaboration/binding Status on any inconsistency.
  [[nodiscard]] static Result<std::shared_ptr<ResidentDesign>> create(
      std::string name, platform::CompiledDesign padded);

  /// The first name this content was made resident under.
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// The padded compiled design (bitstream, bindings, report).
  [[nodiscard]] const platform::CompiledDesign& design() const noexcept {
    return design_;
  }
  /// The decoded target personality (what activation writes to the array).
  [[nodiscard]] const core::Fabric& fabric() const noexcept { return fabric_; }
  /// DFF boundary registers present: jobs are rejected, open a Session.
  [[nodiscard]] bool sequential() const noexcept {
    return !design_.state.empty();
  }
  /// The cached batch engine core.  Not synchronized: only the device
  /// dispatcher may run it (Device serializes all job execution).
  [[nodiscard]] platform::BatchExecutor& executor() noexcept {
    return *executor_;
  }

 private:
  ResidentDesign() = default;
  std::string name_;
  platform::CompiledDesign design_;
  core::Fabric fabric_{1, 1};
  std::unique_ptr<core::ElaboratedFabric> elab_;
  std::unique_ptr<platform::BatchExecutor> executor_;
};

/// The per-device registry of resident designs: name → ResidentDesign,
/// with content-hash dedupe so identical content is built exactly once.
/// All methods are thread-safe.
class DesignCache {
 public:
  /// What a load resolved to.
  struct LoadOutcome {
    /// The (possibly pre-existing) resident design now bound to the name.
    std::shared_ptr<ResidentDesign> resident;
    bool deduped = false;  ///< aliased an already-resident identical design
  };

  /// Make `padded` resident under `name`.  Fails with kFailedPrecondition
  /// when the name is already taken by a *different* design (re-loading an
  /// identical design under the same name is an idempotent dedupe hit).
  [[nodiscard]] Result<LoadOutcome> load(std::string name,
                                         platform::CompiledDesign padded);

  /// The resident design bound to `name`, or nullptr.
  [[nodiscard]] std::shared_ptr<ResidentDesign> find(
      std::string_view name) const;
  /// All bound names (aliases included), sorted.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<ResidentDesign>, std::less<>>
      by_name_;
  // Content-hash fast path for dedupe; the padded bitstream comparison in
  // load() stays authoritative (hash collisions only cost a byte compare).
  std::unordered_map<std::uint64_t, std::vector<std::shared_ptr<ResidentDesign>>>
      by_hash_;
};

}  // namespace pp::rt
