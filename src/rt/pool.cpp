#include "rt/pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <limits>
#include <map>
#include <mutex>
#include <set>
#include <span>
#include <thread>
#include <unordered_map>
#include <utility>

namespace pp::rt {

namespace {

constexpr std::size_t kNoDevice = std::numeric_limits<std::size_t>::max();

/// True for statuses that indict the *device* rather than the job: CRC
/// rejects and corruption surface as kDataLoss, timeouts and death as
/// kUnavailable.  Everything else (kDeadlineExceeded, kInternal X outputs,
/// validation codes) is the job's own outcome and must reach the caller
/// unchanged — migrating a deterministic design failure would just replay
/// it across the fleet and quarantine healthy devices (DESIGN.md §15).
[[nodiscard]] bool device_fault(const Status& status) {
  return status.code() == StatusCode::kDataLoss ||
         status.code() == StatusCode::kUnavailable;
}

}  // namespace

struct DevicePool::Impl {
  PoolOptions options;
  int rows = 0, cols = 0;
  std::vector<Device> devices;

  /// One registered design: the image every replica shares, plus where it
  /// currently lives and how hot it has been running.  `padded` is
  /// immutable once registered (and map nodes are stable), so replication
  /// may read it without the pool mutex.
  struct Entry {
    platform::CompiledDesign padded;  // padded to the pool dims exactly once
    std::vector<std::size_t> replica_devices;  // home first, then replicas
    std::size_t hot_streak = 0;   // consecutive congested submits
    bool replicating = false;     // a replication load is in flight
  };

  // One lock covers the registry and the scheduler counters: routing reads
  // the replica map, replication mutates it, and stats must see a
  // consistent picture.  Device-side probes (queue_depth, active_matches)
  // are lock-light snapshots, so holding this mutex across them never
  // blocks on a running job.
  mutable std::mutex mutex;
  std::map<std::string, Entry, std::less<>> registry;
  // Polymorphic registrations (register_poly): the multi-mode source per
  // base name, for submit-time mode routing and open_poly_session.  The
  // per-mode views live in `registry` under derived keys (poly_view_name)
  // as ordinary designs, so routing and replication are per view.
  std::map<std::string, platform::PolyDesign, std::less<>> poly_designs;
  // Names whose first registration (the device load, done without the
  // mutex) is in flight: concurrent registrations of the same name wait
  // for the owner instead of racing it, so a name can never end up bound
  // to divergent content on different devices.
  std::set<std::string, std::less<>> registering;
  std::condition_variable registering_cv;
  std::size_t next_home = 0;  // round-robin cursor for initial placement
  std::uint64_t jobs_submitted = 0;
  std::uint64_t affinity_active = 0;
  std::uint64_t affinity_resident = 0;
  std::uint64_t replications = 0;
  std::vector<std::uint64_t> jobs_per_device;

  // ---- fleet resilience (DESIGN.md §15) ------------------------------
  //
  // All health state lives under the pool mutex; the supervisor's own
  // queue state lives under sup_mutex; device lifetime against shutdown
  // is guarded by devices_mutex.  The three are never nested with each
  // other in an order other than devices_mutex -> sup_mutex.
  bool resilience = false;  // quarantine_failures > 0 || verify_sample_rate > 0
  std::vector<std::size_t> consec_failures;    // under mutex
  std::vector<std::uint8_t> quarantined_flags; // under mutex
  std::uint64_t quarantines = 0;
  std::uint64_t jobs_migrated = 0;
  std::uint64_t verify_mismatches = 0;
  std::uint64_t re_replications = 0;
  std::uint64_t verify_seq = 0;      // pool submits, for verify sampling
  std::uint64_t next_pool_job = 0;   // outer (pool) job ids
  std::size_t drains_active = 0;     // submits reject while non-zero

  /// One supervised pool job: the caller-visible outer state, the work
  /// itself (retained for re-execution and shadow verification), and the
  /// current inner device job.  Values are only touched by the submitting
  /// thread before the inner handle is published and by the supervisor
  /// after; the map itself is guarded by sup_mutex (node-based, so held
  /// pointers survive concurrent inserts).
  struct Pending {
    std::shared_ptr<detail::JobState> outer;
    std::string design;                // routed (view) key
    std::vector<InputVector> vectors;  // retained for retries + verify
    SubmitOptions options;             // caller options (inner hook replaced)
    Job inner;                         // invalid while a re-submit is in flight
    std::size_t device = 0;
    std::size_t attempts = 1;          // executions so far (bounded)
    bool verify = false;
  };

  std::mutex sup_mutex;
  std::condition_variable sup_cv;       // completions or inner published
  std::condition_variable sup_idle_cv;  // pending drained (drain() waits)
  std::unordered_map<std::uint64_t, Pending> pending;
  std::deque<std::uint64_t> completions;
  bool sup_stop = false;
  // Shutdown latch: once set, the supervisor passes inner outcomes through
  // without migration, verification, or health bookkeeping (the fleet is
  // dying; touching devices would race their destruction).
  std::atomic<bool> passthrough{false};
  // Serializes supervisor-side device access (migration submits, stranded
  // re-replication loads) against devices.clear() at shutdown.
  std::mutex devices_mutex;
  std::thread supervisor;
  // Shadow reference sessions, lazily built per design from the same
  // padded image the devices run.  Supervisor-thread-only.
  std::map<std::string, platform::Session, std::less<>> shadows;

  /// Pick the routing target for one job of `entry`'s design (mutex held).
  /// Affinity classes first (active > resident), least queue depth within a
  /// class, lowest index as the final tie-break; quarantined devices are
  /// invisible.  `out_depth`/`out_active` report the chosen device's probe
  /// results for the replication check and the stats; kNoDevice when every
  /// replica is quarantined.
  [[nodiscard]] std::size_t route(const Entry& entry, std::string_view name,
                                  std::size_t& out_depth, bool& out_active) {
    std::size_t best = kNoDevice, best_depth = 0;
    bool best_active = false;
    for (const std::size_t idx : entry.replica_devices) {
      if (quarantined_flags[idx] != 0) continue;
      const std::size_t depth = devices[idx].queue_depth();
      const bool active = devices[idx].active_matches(name);
      const bool better = best == kNoDevice ||
                          (active && !best_active) ||
                          (active == best_active && depth < best_depth);
      if (better) {
        best = idx;
        best_depth = depth;
        best_active = active;
      }
    }
    out_depth = best_depth;
    out_active = best_active;
    return best;
  }

  /// The least-loaded healthy device not yet holding the design (mutex
  /// held), skipping `exclude`; kNoDevice when none qualifies.
  [[nodiscard]] std::size_t least_loaded_non_replica(
      const Entry& entry, std::size_t& out_depth,
      std::size_t exclude = kNoDevice) {
    std::size_t best = kNoDevice, best_depth = 0;
    for (std::size_t idx = 0; idx < devices.size(); ++idx) {
      if (idx == exclude || quarantined_flags[idx] != 0) continue;
      bool is_replica = false;
      for (const std::size_t r : entry.replica_devices)
        if (r == idx) {
          is_replica = true;
          break;
        }
      if (is_replica) continue;
      const std::size_t depth = devices[idx].queue_depth();
      if (best == kNoDevice || depth < best_depth) {
        best = idx;
        best_depth = depth;
      }
    }
    out_depth = best_depth;
    return best;
  }

  // ---- supervisor ----------------------------------------------------

  void enqueue_completion(std::uint64_t id) {
    {
      const std::lock_guard<std::mutex> lock(sup_mutex);
      completions.push_back(id);
    }
    sup_cv.notify_all();
  }

  void finish_pending(std::uint64_t id) {
    bool idle = false;
    {
      const std::lock_guard<std::mutex> lock(sup_mutex);
      pending.erase(id);
      idle = pending.empty();
    }
    if (idle) sup_idle_cv.notify_all();
  }

  /// Drive the outer handle to a terminal phase exactly once (a caller
  /// cancel that already won keeps its victory) and fire the caller's
  /// completion hook outside the lock.
  void resolve_outer(const std::shared_ptr<detail::JobState>& outer,
                     Status status, std::vector<BitVector> results,
                     bool as_canceled) {
    bool fire = false;
    {
      const std::lock_guard<std::mutex> lock(outer->mutex);
      if (outer->phase == detail::JobState::Phase::kQueued ||
          outer->phase == detail::JobState::Phase::kRunning) {
        outer->phase = as_canceled ? detail::JobState::Phase::kCanceled
                                   : detail::JobState::Phase::kDone;
        outer->status = std::move(status);
        outer->results = std::move(results);
        outer->cv.notify_all();
        fire = true;
      }
    }
    if (fire && outer->options.on_terminal) outer->options.on_terminal();
  }

  /// Record one infrastructure failure against a device; crossing the
  /// quarantine threshold retires the device from routing and re-replicates
  /// every design it left without a healthy replica.
  void note_device_failure(std::size_t idx) {
    std::vector<std::pair<std::string, const platform::CompiledDesign*>>
        stranded;
    {
      const std::lock_guard<std::mutex> lock(mutex);
      ++consec_failures[idx];
      if (options.quarantine_failures == 0 || quarantined_flags[idx] != 0 ||
          consec_failures[idx] < options.quarantine_failures)
        return;
      quarantined_flags[idx] = 1;
      ++quarantines;
      for (const auto& [name, entry] : registry) {
        bool healthy = false;
        for (const std::size_t r : entry.replica_devices)
          if (quarantined_flags[r] == 0) {
            healthy = true;
            break;
          }
        if (!healthy) stranded.emplace_back(name, &entry.padded);
      }
    }
    // Re-replicate stranded designs outside the pool mutex (loads are
    // elaboration-sized); entries are never erased and map nodes are
    // stable, so the image pointers stay valid.
    for (const auto& [name, image] : stranded) {
      std::size_t target = kNoDevice, best_depth = 0;
      {
        const std::lock_guard<std::mutex> lock(mutex);
        for (std::size_t d = 0; d < devices.size(); ++d) {
          if (quarantined_flags[d] != 0) continue;
          const std::size_t depth = devices[d].queue_depth();
          if (target == kNoDevice || depth < best_depth) {
            target = d;
            best_depth = depth;
          }
        }
      }
      if (target == kNoDevice) continue;  // whole fleet quarantined
      {
        const std::lock_guard<std::mutex> device_lock(devices_mutex);
        if (passthrough.load(std::memory_order_relaxed)) return;
        if (!devices[target].load(name, *image).ok()) continue;
      }
      const std::lock_guard<std::mutex> lock(mutex);
      auto it = registry.find(name);
      if (it == registry.end()) continue;
      auto& replicas = it->second.replica_devices;
      if (std::find(replicas.begin(), replicas.end(), target) ==
          replicas.end())
        replicas.push_back(target);
      ++re_replications;
    }
  }

  void note_device_success(std::size_t idx) {
    const std::lock_guard<std::mutex> lock(mutex);
    consec_failures[idx] = 0;
  }

  /// The shadow reference session for a design (built lazily from the same
  /// once-padded image the devices run); nullptr when one cannot be built.
  [[nodiscard]] platform::Session* shadow_session(const std::string& design) {
    if (const auto it = shadows.find(design); it != shadows.end())
      return &it->second;
    const platform::CompiledDesign* image = nullptr;
    {
      const std::lock_guard<std::mutex> lock(mutex);
      const auto it = registry.find(design);
      if (it == registry.end()) return nullptr;
      image = &it->second.padded;
    }
    auto session = platform::Session::load(*image);
    if (!session.ok()) return nullptr;
    return &shadows.emplace(design, std::move(*session)).first->second;
  }

  /// Re-execute the job on the serial reference engine and compare result
  /// checksums.  True = match (or verification impossible — an unbuildable
  /// or failing reference is inconclusive, never an indictment).
  [[nodiscard]] bool shadow_matches(const Pending& pj,
                                    std::span<const BitVector> device_results) {
    platform::Session* ref = shadow_session(pj.design);
    if (ref == nullptr) return true;
    platform::RunOptions run = pj.options.run;
    run.max_threads = 1;
    const auto expect =
        pj.options.cycles > 0
            ? ref->run_cycles(pj.vectors, pj.options.cycles, run)
            : ref->run_vectors(pj.vectors, run);
    if (!expect.ok()) return true;
    return platform::result_checksum(*expect) ==
           platform::result_checksum(device_results);
  }

  /// Re-submit a supervised job onto a healthy device (replica first, else
  /// load onto the least-loaded healthy non-replica).  True when a new
  /// inner execution is in flight (the pending entry stays live); false
  /// when migration is impossible — attempts exhausted, no healthy device,
  /// or the pool is shutting down.
  [[nodiscard]] bool try_migrate(std::uint64_t id, Pending& pj) {
    if (passthrough.load(std::memory_order_relaxed)) return false;
    if (pj.attempts > devices.size()) return false;  // bounded re-execution
    std::size_t target = kNoDevice;
    bool need_load = false;
    const platform::CompiledDesign* image = nullptr;
    {
      const std::lock_guard<std::mutex> lock(mutex);
      const auto it = registry.find(pj.design);
      if (it == registry.end()) return false;
      Entry& entry = it->second;
      std::size_t best_depth = 0;
      for (const std::size_t idx : entry.replica_devices) {
        if (idx == pj.device || quarantined_flags[idx] != 0) continue;
        const std::size_t depth = devices[idx].queue_depth();
        if (target == kNoDevice || depth < best_depth) {
          target = idx;
          best_depth = depth;
        }
      }
      if (target == kNoDevice) {
        target = least_loaded_non_replica(entry, best_depth, pj.device);
        if (target == kNoDevice) return false;
        need_load = true;
        image = &entry.padded;
      }
    }
    if (need_load) {
      {
        const std::lock_guard<std::mutex> device_lock(devices_mutex);
        if (passthrough.load(std::memory_order_relaxed)) return false;
        if (!devices[target].load(pj.design, *image).ok()) return false;
      }
      const std::lock_guard<std::mutex> lock(mutex);
      const auto it = registry.find(pj.design);
      if (it != registry.end()) {
        auto& replicas = it->second.replica_devices;
        if (std::find(replicas.begin(), replicas.end(), target) ==
            replicas.end())
          replicas.push_back(target);
        ++re_replications;
      }
    }
    // Invalidate the published inner handle *before* the re-submit: the
    // new job's completion can race ahead of the publication below, and
    // the supervisor must block on the fresh handle, not re-read the old
    // terminal one.
    {
      const std::lock_guard<std::mutex> lock(sup_mutex);
      pj.inner = Job();
      pj.device = target;
      ++pj.attempts;
    }
    SubmitOptions inner_options = pj.options;
    inner_options.on_terminal = [this, id] { enqueue_completion(id); };
    std::vector<InputVector> copy = pj.vectors;
    Result<Job> inner = Status::unavailable("pool shutting down");
    {
      const std::lock_guard<std::mutex> device_lock(devices_mutex);
      if (passthrough.load(std::memory_order_relaxed)) return false;
      inner = devices[target].submit(pj.design, std::move(copy),
                                     inner_options);
    }
    if (!inner.ok()) return false;
    {
      const std::lock_guard<std::mutex> lock(sup_mutex);
      pj.inner = *inner;
    }
    sup_cv.notify_all();
    {
      const std::lock_guard<std::mutex> lock(mutex);
      ++jobs_migrated;
      ++jobs_per_device[target];
    }
    return true;
  }

  /// Process one retired inner job: deliver, verify, or migrate.
  void handle_completion(std::uint64_t id) {
    Pending* pj = nullptr;
    {
      std::unique_lock<std::mutex> lock(sup_mutex);
      const auto it = pending.find(id);
      if (it == pending.end()) return;
      // A migration may still be publishing the fresh inner handle.
      sup_cv.wait(lock, [&] { return it->second.inner.valid(); });
      pj = &it->second;
    }
    {
      // The caller withdrew the pool job: its handle is already terminal,
      // the inner outcome has nobody to go to.
      const std::lock_guard<std::mutex> lock(pj->outer->mutex);
      if (pj->outer->phase == detail::JobState::Phase::kCanceled) {
        finish_pending(id);
        return;
      }
    }
    if (pj->inner.canceled()) {
      // The device shut down under the job (pool teardown): the outer job
      // dies the same way a queued device job would.
      resolve_outer(pj->outer, Status(), {}, /*as_canceled=*/true);
      finish_pending(id);
      return;
    }
    auto result = pj->inner.try_result();
    if (!result.has_value()) return;  // unreachable: on_terminal fired
    const bool pass = passthrough.load(std::memory_order_relaxed);
    if (!result->ok()) {
      if (device_fault(result->status()) && !pass) {
        note_device_failure(pj->device);
        if (try_migrate(id, *pj)) return;
      }
      resolve_outer(pj->outer, result->status(), {}, /*as_canceled=*/false);
      finish_pending(id);
      return;
    }
    if (pj->verify && !pass) {
      if (!shadow_matches(*pj, **result)) {
        {
          const std::lock_guard<std::mutex> lock(mutex);
          ++verify_mismatches;
        }
        note_device_failure(pj->device);
        if (try_migrate(id, *pj)) return;
        resolve_outer(pj->outer,
                      Status::data_loss(
                          "DevicePool: device " + std::to_string(pj->device) +
                          " returned corrupt results for job '" + pj->design +
                          "' and no healthy device is left to re-execute on"),
                      {}, /*as_canceled=*/false);
        finish_pending(id);
        return;
      }
    }
    if (!pass) note_device_success(pj->device);
    resolve_outer(pj->outer, Status(), std::move(**result),
                  /*as_canceled=*/false);
    finish_pending(id);
  }

  void supervise() {
    for (;;) {
      std::uint64_t id = 0;
      {
        std::unique_lock<std::mutex> lock(sup_mutex);
        sup_cv.wait(lock, [&] {
          return !completions.empty() || (sup_stop && pending.empty());
        });
        if (completions.empty()) return;  // stopped and drained
        id = completions.front();
        completions.pop_front();
      }
      handle_completion(id);
    }
  }

  /// Shutdown ordering for a supervised pool: latch passthrough (no more
  /// migrations or verifications), destroy the fleet (every inner job goes
  /// terminal and enqueues its completion), then let the supervisor drain
  /// the queue and join it.  Unsupervised pools keep the legacy order
  /// (devices die with the Impl).
  void shutdown() {
    if (!resilience) return;
    passthrough.store(true, std::memory_order_relaxed);
    {
      const std::lock_guard<std::mutex> device_lock(devices_mutex);
      devices.clear();
    }
    {
      const std::lock_guard<std::mutex> lock(sup_mutex);
      sup_stop = true;
    }
    sup_cv.notify_all();
    if (supervisor.joinable()) supervisor.join();
  }
};

DevicePool::DevicePool(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
DevicePool::DevicePool(DevicePool&&) noexcept = default;
DevicePool& DevicePool::operator=(DevicePool&& other) noexcept {
  if (this != &other) {
    if (impl_) impl_->shutdown();
    impl_ = std::move(other.impl_);
  }
  return *this;
}
DevicePool::~DevicePool() {
  if (impl_) impl_->shutdown();
}

Result<DevicePool> DevicePool::create(std::size_t devices, int rows, int cols,
                                      PoolOptions options) {
  if (devices == 0)
    return Status::invalid_argument(
        "DevicePool::create: a pool needs at least one device");
  auto impl = std::make_unique<Impl>();
  impl->options = options;
  impl->rows = rows;
  impl->cols = cols;
  impl->devices.reserve(devices);
  for (std::size_t i = 0; i < devices; ++i) {
    auto device = Device::create(rows, cols, options.device);
    if (!device.ok()) return device.status();
    impl->devices.push_back(std::move(*device));
  }
  impl->jobs_per_device.assign(devices, 0);
  impl->consec_failures.assign(devices, 0);
  impl->quarantined_flags.assign(devices, 0);
  impl->resilience =
      options.quarantine_failures > 0 || options.verify_sample_rate > 0;
  if (impl->resilience)
    impl->supervisor = std::thread([raw = impl.get()] { raw->supervise(); });
  return DevicePool(std::move(impl));
}

std::size_t DevicePool::device_count() const noexcept {
  return impl_->devices.size();
}
int DevicePool::rows() const noexcept { return impl_->rows; }
int DevicePool::cols() const noexcept { return impl_->cols; }

Status DevicePool::register_design(std::string name,
                                   const platform::CompiledDesign& design) {
  if (name.empty())
    return Status::invalid_argument(
        "DevicePool::register_design: the empty name is reserved for the "
        "blank power-on personality");
  // Pad once for the whole fleet: homogeneous dimensions mean this single
  // image serves the home device and every later replica byte-identically.
  auto padded = platform::pad_to(design, impl_->rows, impl_->cols);
  if (!padded.ok()) return padded.status();

  // Claim the name and a home slot, but keep the elaboration-sized
  // Device::load outside the pool mutex — registering on a live pool must
  // not stall admission.  The `registering` reservation makes concurrent
  // registrations of the same name wait for the owner's outcome instead
  // of loading possibly-divergent content onto a second device.
  std::size_t home = kNoDevice;
  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->registering_cv.wait(
        lock, [&] { return impl_->registering.count(name) == 0; });
    if (const auto it = impl_->registry.find(name);
        it != impl_->registry.end()) {
      if (platform::same_content(it->second.padded, *padded))
        return Status();  // idempotent re-registration
      return Status::failed_precondition(
          "DevicePool::register_design: name '" + name +
          "' already names a different design");
    }
    // Round-robin home placement over the *healthy* fleet; quarantined
    // devices never become homes.
    for (std::size_t probe = 0; probe < impl_->devices.size(); ++probe) {
      const std::size_t idx =
          (impl_->next_home + probe) % impl_->devices.size();
      if (impl_->quarantined_flags[idx] == 0) {
        home = idx;
        impl_->next_home = idx + 1;
        break;
      }
    }
    if (home == kNoDevice)
      return Status::unavailable(
          "DevicePool::register_design: every device is quarantined");
    impl_->registering.insert(name);
  }
  const Status loaded = impl_->devices[home].load(name, *padded);
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->registering.erase(name);
  impl_->registering_cv.notify_all();
  if (!loaded.ok()) return loaded;
  Impl::Entry entry;
  entry.padded = std::move(*padded);
  entry.replica_devices.push_back(home);
  impl_->registry.emplace(std::move(name), std::move(entry));
  return Status();
}

Status DevicePool::register_poly(std::string name,
                                 const platform::PolyDesign& design) {
  if (name.empty())
    return Status::invalid_argument(
        "DevicePool::register_poly: the empty name is reserved for the "
        "blank power-on personality");
  if (name.find("@mode") != std::string::npos)
    return Status::invalid_argument(
        "DevicePool::register_poly: '" + name +
        "' — \"@mode\" is reserved for derived view keys");
  const std::size_t modes = static_cast<std::size_t>(design.netlist.modes());
  if (design.views.size() != modes)
    return Status::invalid_argument(
        "DevicePool::register_poly: expected one configuration view per "
        "mode (" + std::to_string(modes) + "), got " +
        std::to_string(design.views.size()));
  for (std::uint32_t m = 0; m < design.views.size(); ++m)
    if (Status s = register_design(poly_view_name(name, m), design.views[m]);
        !s.ok())
      return Status(s.code(), "DevicePool::register_poly: mode " +
                                  std::to_string(m) + ": " + s.message());
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->poly_designs.insert_or_assign(std::move(name), design);
  return Status();
}

std::size_t DevicePool::design_modes(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  if (const auto it = impl_->poly_designs.find(name);
      it != impl_->poly_designs.end())
    return it->second.views.size();
  return impl_->registry.find(name) != impl_->registry.end() ? 1 : 0;
}

bool DevicePool::resident(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->registry.find(name) != impl_->registry.end();
}

std::vector<std::string> DevicePool::designs() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<std::string> out;
  out.reserve(impl_->registry.size());
  for (const auto& [name, entry] : impl_->registry) out.push_back(name);
  return out;
}

std::size_t DevicePool::replicas(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->registry.find(name);
  return it == impl_->registry.end() ? 0 : it->second.replica_devices.size();
}

Result<Job> DevicePool::submit(std::string_view name,
                               std::vector<InputVector> vectors,
                               const SubmitOptions& options_in) {
  SubmitOptions options = options_in;
  std::string routed;  // keeps a derived view key alive for this frame
  if (options.run.sweep_modes)
    return Status::unimplemented(
        "DevicePool::submit: sweep_modes needs the mode-major compiled "
        "engine; pool jobs run one configuration view — use "
        "open_poly_session() for swept batches");
  if (options.run.mode != 0) {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    const auto it = impl_->poly_designs.find(name);
    if (it == impl_->poly_designs.end()) {
      if (impl_->registry.find(name) == impl_->registry.end())
        return Status::not_found("DevicePool::submit: no registered design "
                                 "named '" + std::string(name) + "'");
      return Status::invalid_argument(
          "DevicePool::submit: design '" + std::string(name) +
          "' is not polymorphic; RunOptions::mode selects a view of a "
          "register_poly design");
    }
    if (options.run.mode >= it->second.views.size())
      return Status::out_of_range(
          "DevicePool::submit: mode " + std::to_string(options.run.mode) +
          " out of range for '" + std::string(name) + "' (" +
          std::to_string(it->second.views.size()) + " modes)");
    routed = poly_view_name(name, options.run.mode);
    name = routed;
    options.run.mode = 0;  // the derived view is single-mode by itself
  }
  std::size_t target = kNoDevice;
  bool active = false;
  Impl::Entry* replicate_entry = nullptr;  // non-null: load `name` on cand
  std::size_t cand = kNoDevice;
  bool stranded = false;  // the load is a rescue, not a hot-spot copy
  bool verify = false;
  std::uint64_t pool_id = 0;
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    if (impl_->drains_active > 0)
      return Status::unavailable(
          "DevicePool::submit: the pool is draining; submits are rejected "
          "until drain() returns");
    const auto it = impl_->registry.find(name);
    if (it == impl_->registry.end())
      return Status::not_found("DevicePool::submit: no registered design "
                               "named '" + std::string(name) + "'");
    Impl::Entry& entry = it->second;
    // Fail fast before any scheduling side effect (the device would reject
    // these too, but a rejected job must not move the hot-streak counter or
    // trigger a replication).
    if (!entry.padded.state.empty() && options.cycles == 0)
      return Status::failed_precondition(
          "DevicePool::submit: sequential design — boundary-register state "
          "makes vectors cycles of a stream; submit with "
          "SubmitOptions::cycles, or open_session() for step()");
    if (options.cycles > 0 && vectors.size() % options.cycles != 0)
      return Status::invalid_argument(
          "DevicePool::submit: " + std::to_string(vectors.size()) +
          " vectors do not divide into whole " +
          std::to_string(options.cycles) + "-cycle streams");
    const std::size_t nin = entry.padded.inputs.size();
    for (const InputVector& v : vectors)
      if (v.size() != nin)
        return Status::invalid_argument("DevicePool::submit: every vector "
                                        "must have " + std::to_string(nin) +
                                        " input values");

    std::size_t depth = 0;
    target = impl_->route(entry, name, depth, active);

    if (target == kNoDevice) {
      // Every replica is quarantined (the supervisor's eager re-replication
      // lost the race with this submit): rescue the design onto the least-
      // loaded healthy device, or admit defeat if the whole fleet is gone.
      std::size_t cand_depth = 0;
      cand = impl_->least_loaded_non_replica(entry, cand_depth);
      if (cand == kNoDevice)
        return Status::unavailable(
            "DevicePool::submit: every device holding '" + std::string(name) +
            "' is quarantined and no healthy device is left");
      replicate_entry = &entry;
      stranded = true;
    } else {
      // Hot-design replication decision: sustained congestion at the
      // design's best replica, a replica budget left, no replication of this
      // design already in flight, and a strictly-less-loaded device without
      // the design to put it on.
      const std::size_t limit =
          impl_->options.max_replicas == 0
              ? impl_->devices.size()
              : std::min(impl_->options.max_replicas, impl_->devices.size());
      if (depth >= impl_->options.replicate_depth)
        ++entry.hot_streak;
      else
        entry.hot_streak = 0;
      if (entry.hot_streak >= impl_->options.replicate_streak &&
          !entry.replicating && entry.replica_devices.size() < limit) {
        std::size_t cand_depth = 0;
        cand = impl_->least_loaded_non_replica(entry, cand_depth);
        if (cand != kNoDevice && cand_depth < depth) {
          // Mark the load in flight and do it outside the pool mutex below:
          // residency is an elaboration-sized cost, and holding the lock
          // across it would stall every concurrent submit exactly when the
          // pool is congested.
          entry.replicating = true;
          entry.hot_streak = 0;
          replicate_entry = &entry;
        }
      }
    }

    if (impl_->resilience) {
      pool_id = ++impl_->next_pool_job;
      if (impl_->options.verify_sample_rate > 0 &&
          (++impl_->verify_seq % impl_->options.verify_sample_rate) == 0)
        verify = true;
    }
  }

  if (replicate_entry != nullptr) {
    // Safe without the lock: entries are never erased, map nodes are
    // stable, and `padded` is immutable after registration.  A failure
    // only means this job keeps its original routing (the device-side
    // load is idempotent, so a later retry is harmless) — unless the load
    // was a quarantine rescue, in which case there is no original routing
    // to keep.
    const bool loaded =
        impl_->devices[cand].load(std::string(name), replicate_entry->padded)
            .ok();
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    if (!stranded) replicate_entry->replicating = false;
    if (loaded) {
      auto& replicas = replicate_entry->replica_devices;
      if (std::find(replicas.begin(), replicas.end(), cand) == replicas.end())
        replicas.push_back(cand);
      ++(stranded ? impl_->re_replications : impl_->replications);
      target = cand;
      active = false;
    } else if (stranded) {
      return Status::unavailable(
          "DevicePool::submit: could not re-replicate '" + std::string(name) +
          "' onto a healthy device");
    }
  }

  if (!impl_->resilience) {
    auto job =
        impl_->devices[target].submit(name, std::move(vectors), options);
    if (!job.ok()) return job.status();
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    ++impl_->jobs_submitted;
    ++impl_->jobs_per_device[target];
    ++(active ? impl_->affinity_active : impl_->affinity_resident);
    return job;
  }

  // Supervised submission: the caller gets an *outer* pool job; the inner
  // device job reports into the supervisor, which delivers, verifies, or
  // migrates.  The stimulus is retained for re-execution and verification.
  auto outer = std::make_shared<detail::JobState>(
      pool_id, std::string(name), std::vector<InputVector>{}, options);
  SubmitOptions inner_options = options;
  inner_options.on_terminal = [impl = impl_.get(), pool_id] {
    impl->enqueue_completion(pool_id);
  };
  std::vector<InputVector> copy;
  {
    const std::lock_guard<std::mutex> lock(impl_->sup_mutex);
    Impl::Pending pj;
    pj.outer = outer;
    pj.design = std::string(name);
    pj.vectors = std::move(vectors);
    pj.options = options;
    pj.device = target;
    pj.verify = verify;
    auto [it, inserted] = impl_->pending.emplace(pool_id, std::move(pj));
    copy = it->second.vectors;
  }
  auto inner =
      impl_->devices[target].submit(name, std::move(copy), inner_options);
  if (!inner.ok()) {
    const std::lock_guard<std::mutex> lock(impl_->sup_mutex);
    impl_->pending.erase(pool_id);
    return inner.status();
  }
  {
    const std::lock_guard<std::mutex> lock(impl_->sup_mutex);
    if (const auto it = impl_->pending.find(pool_id);
        it != impl_->pending.end())
      it->second.inner = *inner;
  }
  impl_->sup_cv.notify_all();
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    ++impl_->jobs_submitted;
    ++impl_->jobs_per_device[target];
    ++(active ? impl_->affinity_active : impl_->affinity_resident);
  }
  return Job(std::move(outer));
}

Result<Job> DevicePool::submit(std::string_view name,
                               std::vector<InputVector> vectors,
                               const RunOptions& run) {
  SubmitOptions options;
  options.run = run;
  return submit(name, std::move(vectors), options);
}

Result<std::vector<BitVector>> DevicePool::run_sync(std::string_view name,
                                                    std::vector<InputVector>
                                                        vectors,
                                                    const SubmitOptions&
                                                        options) {
  auto job = submit(name, std::move(vectors), options);
  if (!job.ok()) return job.status();
  return job->wait();
}

Result<std::vector<BitVector>> DevicePool::run_sync(std::string_view name,
                                                    std::vector<InputVector>
                                                        vectors,
                                                    const RunOptions& run) {
  SubmitOptions options;
  options.run = run;
  return run_sync(name, std::move(vectors), options);
}

void DevicePool::drain() {
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    ++impl_->drains_active;
  }
  if (impl_->resilience) {
    // Wait for every supervised job to resolve first: migrations re-submit
    // device work, so the device queues are only meaningfully empty once
    // the pending set is (docs/scheduling.md §3.4).
    std::unique_lock<std::mutex> lock(impl_->sup_mutex);
    impl_->sup_idle_cv.wait(lock, [&] { return impl_->pending.empty(); });
  }
  for (Device& device : impl_->devices) device.drain();
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  --impl_->drains_active;
}

void DevicePool::install_fault_plan(std::size_t device, FaultPlan plan) {
  if (device >= impl_->devices.size()) return;
  impl_->devices[device].install_fault_plan(std::move(plan));
}

bool DevicePool::quarantined(std::size_t device) const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  if (device >= impl_->quarantined_flags.size()) return false;
  return impl_->quarantined_flags[device] != 0;
}

Result<platform::Session> DevicePool::open_session(
    std::string_view name) const {
  std::size_t home = kNoDevice;
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    const auto it = impl_->registry.find(name);
    if (it == impl_->registry.end())
      return Status::not_found("DevicePool::open_session: no registered "
                               "design named '" + std::string(name) + "'");
    home = it->second.replica_devices.front();
  }
  return impl_->devices[home].open_session(name);
}

Result<platform::Session> DevicePool::open_poly_session(
    std::string_view name) const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->poly_designs.find(name);
  if (it == impl_->poly_designs.end())
    return Status::not_found("DevicePool::open_poly_session: no polymorphic "
                             "design named '" + std::string(name) + "'");
  return platform::Session::load_poly(it->second);
}

const Device& DevicePool::device(std::size_t index) const {
  return impl_->devices[index];
}

PoolStats DevicePool::stats() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  PoolStats out;
  out.jobs_submitted = impl_->jobs_submitted;
  out.affinity_active = impl_->affinity_active;
  out.affinity_resident = impl_->affinity_resident;
  out.replications = impl_->replications;
  out.quarantines = impl_->quarantines;
  out.jobs_migrated = impl_->jobs_migrated;
  out.verify_mismatches = impl_->verify_mismatches;
  out.re_replications = impl_->re_replications;
  out.jobs_per_device = impl_->jobs_per_device;
  out.quarantined.assign(impl_->quarantined_flags.begin(),
                         impl_->quarantined_flags.end());
  out.queue_depths.reserve(impl_->devices.size());
  out.device.reserve(impl_->devices.size());
  for (const Device& device : impl_->devices) {
    out.queue_depths.push_back(device.queue_depth());
    out.device.push_back(device.stats());
    out.jobs_failed += out.device.back().jobs_failed;
    out.jobs_completed += out.device.back().jobs_completed;
    out.jobs_expired += out.device.back().jobs_expired;
    out.fast_passes += out.device.back().fast_passes;
    out.slow_passes += out.device.back().slow_passes;
    out.cycles_run += out.device.back().cycles_run;
    out.state_commits += out.device.back().state_commits;
    out.fast_cycle_passes += out.device.back().fast_cycle_passes;
    out.jit_passes += out.device.back().jit_passes;
    out.jit_compiles += out.device.back().jit_compiles;
    out.jit_cache_hits += out.device.back().jit_cache_hits;
    out.jit_fallbacks += out.device.back().jit_fallbacks;
  }
  return out;
}

}  // namespace pp::rt
