#include "rt/pool.h"

#include <algorithm>
#include <condition_variable>
#include <limits>
#include <map>
#include <mutex>
#include <set>
#include <utility>

namespace pp::rt {

namespace {

constexpr std::size_t kNoDevice = std::numeric_limits<std::size_t>::max();

}  // namespace

struct DevicePool::Impl {
  PoolOptions options;
  int rows = 0, cols = 0;
  std::vector<Device> devices;

  /// One registered design: the image every replica shares, plus where it
  /// currently lives and how hot it has been running.  `padded` is
  /// immutable once registered (and map nodes are stable), so replication
  /// may read it without the pool mutex.
  struct Entry {
    platform::CompiledDesign padded;  // padded to the pool dims exactly once
    std::vector<std::size_t> replica_devices;  // home first, then replicas
    std::size_t hot_streak = 0;   // consecutive congested submits
    bool replicating = false;     // a replication load is in flight
  };

  // One lock covers the registry and the scheduler counters: routing reads
  // the replica map, replication mutates it, and stats must see a
  // consistent picture.  Device-side probes (queue_depth, active_matches)
  // are lock-light snapshots, so holding this mutex across them never
  // blocks on a running job.
  mutable std::mutex mutex;
  std::map<std::string, Entry, std::less<>> registry;
  // Polymorphic registrations (register_poly): the multi-mode source per
  // base name, for submit-time mode routing and open_poly_session.  The
  // per-mode views live in `registry` under derived keys (poly_view_name)
  // as ordinary designs, so routing and replication are per view.
  std::map<std::string, platform::PolyDesign, std::less<>> poly_designs;
  // Names whose first registration (the device load, done without the
  // mutex) is in flight: concurrent registrations of the same name wait
  // for the owner instead of racing it, so a name can never end up bound
  // to divergent content on different devices.
  std::set<std::string, std::less<>> registering;
  std::condition_variable registering_cv;
  std::size_t next_home = 0;  // round-robin cursor for initial placement
  std::uint64_t jobs_submitted = 0;
  std::uint64_t affinity_active = 0;
  std::uint64_t affinity_resident = 0;
  std::uint64_t replications = 0;
  std::vector<std::uint64_t> jobs_per_device;

  /// Pick the routing target for one job of `entry`'s design (mutex held).
  /// Affinity classes first (active > resident), least queue depth within a
  /// class, lowest index as the final tie-break; `out_depth`/`out_active`
  /// report the chosen device's probe results for the replication check and
  /// the stats.
  [[nodiscard]] std::size_t route(const Entry& entry, std::string_view name,
                                  std::size_t& out_depth, bool& out_active) {
    std::size_t best = kNoDevice, best_depth = 0;
    bool best_active = false;
    for (const std::size_t idx : entry.replica_devices) {
      const std::size_t depth = devices[idx].queue_depth();
      const bool active = devices[idx].active_matches(name);
      const bool better = best == kNoDevice ||
                          (active && !best_active) ||
                          (active == best_active && depth < best_depth);
      if (better) {
        best = idx;
        best_depth = depth;
        best_active = active;
      }
    }
    out_depth = best_depth;
    out_active = best_active;
    return best;
  }

  /// The least-loaded device not yet holding the design (mutex held);
  /// kNoDevice when every device already has a replica.
  [[nodiscard]] std::size_t least_loaded_non_replica(const Entry& entry,
                                                     std::size_t& out_depth) {
    std::size_t best = kNoDevice, best_depth = 0;
    for (std::size_t idx = 0; idx < devices.size(); ++idx) {
      bool is_replica = false;
      for (const std::size_t r : entry.replica_devices)
        if (r == idx) {
          is_replica = true;
          break;
        }
      if (is_replica) continue;
      const std::size_t depth = devices[idx].queue_depth();
      if (best == kNoDevice || depth < best_depth) {
        best = idx;
        best_depth = depth;
      }
    }
    out_depth = best_depth;
    return best;
  }
};

DevicePool::DevicePool(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
DevicePool::DevicePool(DevicePool&&) noexcept = default;
DevicePool& DevicePool::operator=(DevicePool&&) noexcept = default;
DevicePool::~DevicePool() = default;

Result<DevicePool> DevicePool::create(std::size_t devices, int rows, int cols,
                                      PoolOptions options) {
  if (devices == 0)
    return Status::invalid_argument(
        "DevicePool::create: a pool needs at least one device");
  auto impl = std::make_unique<Impl>();
  impl->options = options;
  impl->rows = rows;
  impl->cols = cols;
  impl->devices.reserve(devices);
  for (std::size_t i = 0; i < devices; ++i) {
    auto device = Device::create(rows, cols, options.device);
    if (!device.ok()) return device.status();
    impl->devices.push_back(std::move(*device));
  }
  impl->jobs_per_device.assign(devices, 0);
  return DevicePool(std::move(impl));
}

std::size_t DevicePool::device_count() const noexcept {
  return impl_->devices.size();
}
int DevicePool::rows() const noexcept { return impl_->rows; }
int DevicePool::cols() const noexcept { return impl_->cols; }

Status DevicePool::register_design(std::string name,
                                   const platform::CompiledDesign& design) {
  if (name.empty())
    return Status::invalid_argument(
        "DevicePool::register_design: the empty name is reserved for the "
        "blank power-on personality");
  // Pad once for the whole fleet: homogeneous dimensions mean this single
  // image serves the home device and every later replica byte-identically.
  auto padded = platform::pad_to(design, impl_->rows, impl_->cols);
  if (!padded.ok()) return padded.status();

  // Claim the name and a home slot, but keep the elaboration-sized
  // Device::load outside the pool mutex — registering on a live pool must
  // not stall admission.  The `registering` reservation makes concurrent
  // registrations of the same name wait for the owner's outcome instead
  // of loading possibly-divergent content onto a second device.
  std::size_t home = 0;
  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->registering_cv.wait(
        lock, [&] { return impl_->registering.count(name) == 0; });
    if (const auto it = impl_->registry.find(name);
        it != impl_->registry.end()) {
      if (platform::same_content(it->second.padded, *padded))
        return Status();  // idempotent re-registration
      return Status::failed_precondition(
          "DevicePool::register_design: name '" + name +
          "' already names a different design");
    }
    impl_->registering.insert(name);
    home = impl_->next_home % impl_->devices.size();
    ++impl_->next_home;
  }
  const Status loaded = impl_->devices[home].load(name, *padded);
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->registering.erase(name);
  impl_->registering_cv.notify_all();
  if (!loaded.ok()) return loaded;
  Impl::Entry entry;
  entry.padded = std::move(*padded);
  entry.replica_devices.push_back(home);
  impl_->registry.emplace(std::move(name), std::move(entry));
  return Status();
}

Status DevicePool::register_poly(std::string name,
                                 const platform::PolyDesign& design) {
  if (name.empty())
    return Status::invalid_argument(
        "DevicePool::register_poly: the empty name is reserved for the "
        "blank power-on personality");
  if (name.find("@mode") != std::string::npos)
    return Status::invalid_argument(
        "DevicePool::register_poly: '" + name +
        "' — \"@mode\" is reserved for derived view keys");
  const std::size_t modes = static_cast<std::size_t>(design.netlist.modes());
  if (design.views.size() != modes)
    return Status::invalid_argument(
        "DevicePool::register_poly: expected one configuration view per "
        "mode (" + std::to_string(modes) + "), got " +
        std::to_string(design.views.size()));
  for (std::uint32_t m = 0; m < design.views.size(); ++m)
    if (Status s = register_design(poly_view_name(name, m), design.views[m]);
        !s.ok())
      return Status(s.code(), "DevicePool::register_poly: mode " +
                                  std::to_string(m) + ": " + s.message());
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->poly_designs.insert_or_assign(std::move(name), design);
  return Status();
}

std::size_t DevicePool::design_modes(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  if (const auto it = impl_->poly_designs.find(name);
      it != impl_->poly_designs.end())
    return it->second.views.size();
  return impl_->registry.find(name) != impl_->registry.end() ? 1 : 0;
}

bool DevicePool::resident(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->registry.find(name) != impl_->registry.end();
}

std::vector<std::string> DevicePool::designs() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<std::string> out;
  out.reserve(impl_->registry.size());
  for (const auto& [name, entry] : impl_->registry) out.push_back(name);
  return out;
}

std::size_t DevicePool::replicas(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->registry.find(name);
  return it == impl_->registry.end() ? 0 : it->second.replica_devices.size();
}

Result<Job> DevicePool::submit(std::string_view name,
                               std::vector<InputVector> vectors,
                               const SubmitOptions& options_in) {
  SubmitOptions options = options_in;
  std::string routed;  // keeps a derived view key alive for this frame
  if (options.run.sweep_modes)
    return Status::unimplemented(
        "DevicePool::submit: sweep_modes needs the mode-major compiled "
        "engine; pool jobs run one configuration view — use "
        "open_poly_session() for swept batches");
  if (options.run.mode != 0) {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    const auto it = impl_->poly_designs.find(name);
    if (it == impl_->poly_designs.end()) {
      if (impl_->registry.find(name) == impl_->registry.end())
        return Status::not_found("DevicePool::submit: no registered design "
                                 "named '" + std::string(name) + "'");
      return Status::invalid_argument(
          "DevicePool::submit: design '" + std::string(name) +
          "' is not polymorphic; RunOptions::mode selects a view of a "
          "register_poly design");
    }
    if (options.run.mode >= it->second.views.size())
      return Status::out_of_range(
          "DevicePool::submit: mode " + std::to_string(options.run.mode) +
          " out of range for '" + std::string(name) + "' (" +
          std::to_string(it->second.views.size()) + " modes)");
    routed = poly_view_name(name, options.run.mode);
    name = routed;
    options.run.mode = 0;  // the derived view is single-mode by itself
  }
  std::size_t target = kNoDevice;
  bool active = false;
  Impl::Entry* replicate_entry = nullptr;  // non-null: load `name` on cand
  std::size_t cand = kNoDevice;
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    const auto it = impl_->registry.find(name);
    if (it == impl_->registry.end())
      return Status::not_found("DevicePool::submit: no registered design "
                               "named '" + std::string(name) + "'");
    Impl::Entry& entry = it->second;
    // Fail fast before any scheduling side effect (the device would reject
    // these too, but a rejected job must not move the hot-streak counter or
    // trigger a replication).
    if (!entry.padded.state.empty() && options.cycles == 0)
      return Status::failed_precondition(
          "DevicePool::submit: sequential design — boundary-register state "
          "makes vectors cycles of a stream; submit with "
          "SubmitOptions::cycles, or open_session() for step()");
    if (options.cycles > 0 && vectors.size() % options.cycles != 0)
      return Status::invalid_argument(
          "DevicePool::submit: " + std::to_string(vectors.size()) +
          " vectors do not divide into whole " +
          std::to_string(options.cycles) + "-cycle streams");
    const std::size_t nin = entry.padded.inputs.size();
    for (const InputVector& v : vectors)
      if (v.size() != nin)
        return Status::invalid_argument("DevicePool::submit: every vector "
                                        "must have " + std::to_string(nin) +
                                        " input values");

    std::size_t depth = 0;
    target = impl_->route(entry, name, depth, active);

    // Hot-design replication decision: sustained congestion at the
    // design's best replica, a replica budget left, no replication of this
    // design already in flight, and a strictly-less-loaded device without
    // the design to put it on.
    const std::size_t limit =
        impl_->options.max_replicas == 0
            ? impl_->devices.size()
            : std::min(impl_->options.max_replicas, impl_->devices.size());
    if (depth >= impl_->options.replicate_depth)
      ++entry.hot_streak;
    else
      entry.hot_streak = 0;
    if (entry.hot_streak >= impl_->options.replicate_streak &&
        !entry.replicating && entry.replica_devices.size() < limit) {
      std::size_t cand_depth = 0;
      cand = impl_->least_loaded_non_replica(entry, cand_depth);
      if (cand != kNoDevice && cand_depth < depth) {
        // Mark the load in flight and do it outside the pool mutex below:
        // residency is an elaboration-sized cost, and holding the lock
        // across it would stall every concurrent submit exactly when the
        // pool is congested.
        entry.replicating = true;
        entry.hot_streak = 0;
        replicate_entry = &entry;
      }
    }
  }

  if (replicate_entry != nullptr) {
    // Safe without the lock: entries are never erased, map nodes are
    // stable, and `padded` is immutable after registration.  A failure
    // only means this job keeps its original routing (the device-side
    // load is idempotent, so a later retry is harmless).
    const bool loaded =
        impl_->devices[cand].load(std::string(name), replicate_entry->padded)
            .ok();
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    replicate_entry->replicating = false;
    if (loaded) {
      replicate_entry->replica_devices.push_back(cand);
      ++impl_->replications;
      target = cand;
      active = false;
    }
  }

  auto job = impl_->devices[target].submit(name, std::move(vectors), options);
  if (!job.ok()) return job.status();
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  ++impl_->jobs_submitted;
  ++impl_->jobs_per_device[target];
  ++(active ? impl_->affinity_active : impl_->affinity_resident);
  return job;
}

Result<Job> DevicePool::submit(std::string_view name,
                               std::vector<InputVector> vectors,
                               const RunOptions& run) {
  SubmitOptions options;
  options.run = run;
  return submit(name, std::move(vectors), options);
}

Result<std::vector<BitVector>> DevicePool::run_sync(std::string_view name,
                                                    std::vector<InputVector>
                                                        vectors,
                                                    const SubmitOptions&
                                                        options) {
  auto job = submit(name, std::move(vectors), options);
  if (!job.ok()) return job.status();
  return job->wait();
}

Result<std::vector<BitVector>> DevicePool::run_sync(std::string_view name,
                                                    std::vector<InputVector>
                                                        vectors,
                                                    const RunOptions& run) {
  SubmitOptions options;
  options.run = run;
  return run_sync(name, std::move(vectors), options);
}

void DevicePool::drain() {
  for (Device& device : impl_->devices) device.drain();
}

Result<platform::Session> DevicePool::open_session(
    std::string_view name) const {
  std::size_t home = kNoDevice;
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    const auto it = impl_->registry.find(name);
    if (it == impl_->registry.end())
      return Status::not_found("DevicePool::open_session: no registered "
                               "design named '" + std::string(name) + "'");
    home = it->second.replica_devices.front();
  }
  return impl_->devices[home].open_session(name);
}

Result<platform::Session> DevicePool::open_poly_session(
    std::string_view name) const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->poly_designs.find(name);
  if (it == impl_->poly_designs.end())
    return Status::not_found("DevicePool::open_poly_session: no polymorphic "
                             "design named '" + std::string(name) + "'");
  return platform::Session::load_poly(it->second);
}

const Device& DevicePool::device(std::size_t index) const {
  return impl_->devices[index];
}

PoolStats DevicePool::stats() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  PoolStats out;
  out.jobs_submitted = impl_->jobs_submitted;
  out.affinity_active = impl_->affinity_active;
  out.affinity_resident = impl_->affinity_resident;
  out.replications = impl_->replications;
  out.jobs_per_device = impl_->jobs_per_device;
  out.queue_depths.reserve(impl_->devices.size());
  out.device.reserve(impl_->devices.size());
  for (const Device& device : impl_->devices) {
    out.queue_depths.push_back(device.queue_depth());
    out.device.push_back(device.stats());
    out.fast_passes += out.device.back().fast_passes;
    out.slow_passes += out.device.back().slow_passes;
    out.cycles_run += out.device.back().cycles_run;
    out.state_commits += out.device.back().state_commits;
    out.fast_cycle_passes += out.device.back().fast_cycle_passes;
  }
  return out;
}

}  // namespace pp::rt
