// rt::DevicePool — a fleet of identical devices behind one submit surface.
//
// One rt::Device keeps one fabric busy; serving the ROADMAP's "heavy
// traffic" means a *pool* of them, the shell/runtime split of XRT-style
// multi-device platforms.  The pool owns N devices of homogeneous
// dimensions and exposes the same register-design / submit / wait shape as
// Device, adding two scheduling policies on top (docs/scheduling.md):
//
//  * Affinity-first routing.  Reconfiguration is the expensive event
//    (PR 3 measured deltas vs full rewrites), so a job goes to the
//    least-loaded device where its design is already *active*, then to the
//    least-loaded device where it is merely *resident*; plain least-loaded
//    is only the tie-break within each class.  Depth probes and the
//    active-personality check are lock-light snapshots (Device::queue_depth,
//    Device::active_matches), so routing never blocks on a running job.
//  * Hot-design replication.  Residency is cheap (content-hash dedupe, one
//    elaboration per distinct design per device) while congestion is not:
//    when a design's best replica stays at or above
//    PoolOptions::replicate_depth for replicate_streak consecutive
//    submits, the pool loads the design onto the strictly-less-loaded
//    non-replica device with the smallest queue and routes there, so hot
//    personalities spread across the fleet while cold ones stay put.
//  * Fleet resilience (opt-in: PoolOptions::quarantine_failures and/or
//    verify_sample_rate non-zero).  Devices are allowed to fail *after*
//    load: a resilience supervisor watches every device job retire, counts
//    consecutive infrastructure failures (kDataLoss / kUnavailable — CRC
//    rejects, timeouts, death) per device, samples completed jobs for
//    shadow verification against a reference engine, quarantines a device
//    that crosses the threshold (excluded from routing, replication, and
//    registration targets), re-executes the failed or corrupted job on a
//    healthy device (the caller's Job handle stays valid; the failure is
//    visible only as latency), and re-replicates designs whose only
//    replicas were quarantined.  DESIGN.md §15 is the normative fault
//    model.  When both knobs are 0 (the default) none of this machinery
//    exists and submit hands back the device job directly.
//
// Homogeneous dimensions are a requirement, not a convenience: designs are
// padded (platform::pad_to) to the pool's rows x cols exactly once at
// registration, and that single padded image is what makes replicas
// byte-identical across devices — the same bitstream, the same deltas, the
// same engines.  Heterogeneous arrays would need one pad (and one
// elaboration) per distinct dimension and would break the "a replica is
// interchangeable" invariant the router relies on (DESIGN.md §11).
//
// Thread-safety: every public method is safe to call from any thread.
// Destroying the pool destroys its devices in turn: each cancels its
// still-queued jobs (waking their waiters), finishes the in-flight one,
// and joins its dispatcher.  Call drain() first to let queued work finish.

/// \file
/// \brief rt::DevicePool — a fleet of identical devices behind one submit
/// surface, with affinity routing and hot-design replication.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "platform/compiler.h"
#include "platform/session.h"
#include "rt/device.h"
#include "rt/job.h"
#include "util/status.h"

namespace pp::rt {

/// Tuning knobs for the pool scheduler (see docs/scheduling.md).
struct PoolOptions {
  /// A design is congested when its best replica's device has at least
  /// this many jobs queued or in flight at submit time.
  std::size_t replicate_depth = 4;
  /// How many *consecutive* congested submits a design must see before the
  /// pool replicates it (one spike is not a hot spot).
  std::size_t replicate_streak = 2;
  /// Upper bound on replicas per design; 0 means "up to every device".
  std::size_t max_replicas = 0;
  /// Quarantine threshold: a device whose jobs fail with an infrastructure
  /// status (kDataLoss, kUnavailable) or a shadow-verify mismatch this
  /// many times *consecutively* (successes reset the count) is moved to
  /// quarantine — excluded from routing, replication, and registration
  /// homes, its stranded designs re-replicated onto healthy devices.
  /// 0 (the default) disables the resilience supervisor entirely unless
  /// verify_sample_rate enables it; then failures still migrate but no
  /// device is ever quarantined.
  std::size_t quarantine_failures = 0;
  /// Shadow verification: every Nth pool submit is re-executed on a
  /// pool-owned reference engine after the device reports success, and the
  /// result checksums (platform::result_checksum) must agree; a mismatch
  /// counts toward quarantine and the job is re-executed on another
  /// device.  1 verifies every job, 0 (the default) none.
  std::size_t verify_sample_rate = 0;
  /// Per-device knobs, applied to every device of the fleet (homogeneous
  /// devices share one configuration like they share one dimension).
  DeviceOptions device{};
};

/// Point-in-time snapshot of the pool's scheduling behaviour.  Cumulative
/// counters are monotone; queue_depths is an instantaneous load picture.
struct PoolStats {
  std::uint64_t jobs_submitted = 0;     ///< accepted by DevicePool::submit
  std::uint64_t affinity_active = 0;    ///< routed to an active-design device
  std::uint64_t affinity_resident = 0;  ///< routed to a merely-resident one
  std::uint64_t replications = 0;       ///< hot-design copies added
  /// Devices moved to quarantine by the resilience supervisor (monotone;
  /// quarantine is permanent for the pool's lifetime).
  std::uint64_t quarantines = 0;
  /// Jobs re-executed on another device after an infrastructure failure or
  /// a shadow-verify mismatch on their original device (each extra
  /// execution attempt counts once).
  std::uint64_t jobs_migrated = 0;
  /// Sampled jobs whose device results disagreed with the shadow reference
  /// engine's checksum (silent corruption caught).
  std::uint64_t verify_mismatches = 0;
  /// Designs re-replicated onto a healthy device because quarantine left
  /// them without a healthy replica (distinct from hot-design
  /// replications).
  std::uint64_t re_replications = 0;
  /// Fleet total of DeviceStats::jobs_failed — device-side job failures,
  /// distinct from jobs_expired (deadline) and jobs_canceled.  Includes
  /// failures the supervisor later healed by migration.
  std::uint64_t jobs_failed = 0;
  /// Fleet total of DeviceStats::jobs_completed.
  std::uint64_t jobs_completed = 0;
  /// Fleet total of DeviceStats::jobs_expired (deadline expiries).
  std::uint64_t jobs_expired = 0;
  /// Fleet total of DeviceStats::fast_passes — compiled kernel passes that
  /// took the two-valued single-plane fast path.
  std::uint64_t fast_passes = 0;
  /// Fleet total of DeviceStats::slow_passes (two-plane kernel passes).
  std::uint64_t slow_passes = 0;
  /// Fleet total of DeviceStats::cycles_run (clocked-job kernel cycles).
  std::uint64_t cycles_run = 0;
  /// Fleet total of DeviceStats::state_commits (clock-edge captures).
  std::uint64_t state_commits = 0;
  /// Fleet total of DeviceStats::fast_cycle_passes (single-plane cycles).
  std::uint64_t fast_cycle_passes = 0;
  /// Fleet total of DeviceStats::jit_passes (kernel passes served by
  /// JIT-generated native code).
  std::uint64_t jit_passes = 0;
  /// Fleet total of DeviceStats::jit_compiles (JIT cache misses that
  /// invoked the host compiler).
  std::uint64_t jit_compiles = 0;
  /// Fleet total of DeviceStats::jit_cache_hits (kernels loaded from the
  /// shared disk cache).
  std::uint64_t jit_cache_hits = 0;
  /// Fleet total of DeviceStats::jit_fallbacks (jobs that wanted the JIT
  /// but ran on another engine).
  std::uint64_t jit_fallbacks = 0;
  std::vector<std::uint64_t> jobs_per_device;  ///< submits routed per device
  std::vector<std::size_t> queue_depths;  ///< per-device depth at snapshot
  std::vector<DeviceStats> device;        ///< per-device runtime counters
  /// Per-device quarantine flags (1 = quarantined) at snapshot time.
  std::vector<std::uint8_t> quarantined;
};

/// A fleet of homogeneous rt::Devices behind one register / submit / wait
/// surface.  Jobs route by design affinity first (active personality, then
/// mere residency), least-loaded within a class; designs that stay
/// congested replicate onto additional devices.  Every public method is
/// thread-safe; see the file comment and docs/scheduling.md §2 for the
/// policy.
class DevicePool {
 public:
  /// A pool of `devices` blank devices, each over a rows x cols array.
  /// Fails with kInvalidArgument for a zero device count or dimensions the
  /// fabric rejects.
  [[nodiscard]] static Result<DevicePool> create(std::size_t devices, int rows,
                                                 int cols,
                                                 PoolOptions options = {});

  /// Moved-from pools may only be destroyed or assigned to.
  DevicePool(DevicePool&&) noexcept;
  /// Shuts down the overwritten pool's fleet before taking over the
  /// moved-in one.
  DevicePool& operator=(DevicePool&&) noexcept;
  /// Destroys the fleet device by device: queued jobs cancel (their
  /// waiters wake), in-flight jobs finish, dispatchers join.
  ~DevicePool();

  /// Number of devices in the fleet (fixed at creation).
  [[nodiscard]] std::size_t device_count() const noexcept;
  /// Array rows shared by every device.
  [[nodiscard]] int rows() const noexcept;
  /// Array columns shared by every device.
  [[nodiscard]] int cols() const noexcept;

  /// Register a compiled design with the pool under `name` (non-empty).
  /// The design is padded to the pool dimensions once and made resident on
  /// one home device (round-robin across the fleet, so distinct designs
  /// start on distinct devices); further replicas appear only when the
  /// design runs hot.  Same contract as Device::load: re-registering
  /// identical content under the same name is idempotent, and a name can
  /// never be rebound to different content (kFailedPrecondition).
  [[nodiscard]] Status register_design(std::string name,
                                       const platform::CompiledDesign& design);

  /// Register a multi-mode polymorphic design (Compiler::compile_poly):
  /// every configuration view registers as an ordinary pool design under
  /// its derived key (rt::poly_view_name — mode 0 is `name` itself), so
  /// affinity routing and hot-design replication work per *view* (each
  /// mode is its own personality).  `name` must not contain "@mode".
  /// After this, RunOptions::mode on submit routes to the matching view's
  /// replicas, and open_poly_session serves mode sweeps.  A failure
  /// partway leaves earlier views registered (harmless: registration is
  /// idempotent) but mode routing inactive for `name`.
  [[nodiscard]] Status register_poly(std::string name,
                                     const platform::PolyDesign& design);

  /// Environment modes `name` answers through submit-time mode routing:
  /// the library's mode count for a register_poly design, 1 for an
  /// ordinary registered design, 0 when unknown.
  [[nodiscard]] std::size_t design_modes(std::string_view name) const;

  /// True when `name` is registered with the pool.
  [[nodiscard]] bool resident(std::string_view name) const;
  /// Names of all registered designs, sorted.
  [[nodiscard]] std::vector<std::string> designs() const;
  /// How many devices currently hold `name` (0 when unknown).
  [[nodiscard]] std::size_t replicas(std::string_view name) const;

  /// Route a batch of stimulus vectors to a device by design affinity
  /// (active > resident > least-loaded tie-break) and enqueue it there.
  /// Validation mirrors Device::submit: kNotFound for an unregistered
  /// design, kFailedPrecondition for a sequential design submitted without
  /// SubmitOptions::cycles, kInvalidArgument on a vector-width mismatch or
  /// a batch that does not divide into whole streams — all before
  /// queueing.  The options carry the run knobs, the clocked-stream cycle
  /// count, the scheduling class, and an optional deadline (see
  /// rt::SubmitOptions).  The returned Job is the same handle
  /// Device::submit yields; it stays valid after the pool dies (jobs are
  /// completed or canceled first, never leaked).  Fails with kUnavailable
  /// while a drain() is in progress, or when every device is quarantined.
  ///
  /// With resilience enabled (PoolOptions::quarantine_failures or
  /// verify_sample_rate non-zero) the handle is a *pool* job supervised
  /// across device failures: an infrastructure failure or verify mismatch
  /// re-executes the work on a healthy device and the handle resolves with
  /// the healthy result — callers observe migration only as latency.  One
  /// semantic difference: cancel() on a supervised job can win any time
  /// before the handle resolves (the in-flight device execution is then
  /// discarded), not only while the job is queued.
  ///
  /// Polymorphic designs route exactly as on Device::submit:
  /// `options.run.mode` resolves to the derived view key before affinity
  /// routing, so each mode builds its own affinity and replicates
  /// independently; kInvalidArgument for mode != 0 on a non-poly design,
  /// kOutOfRange for a missing mode, kUnimplemented for run.sweep_modes
  /// (use open_poly_session).
  [[nodiscard]] Result<Job> submit(std::string_view name,
                                   std::vector<InputVector> vectors,
                                   const SubmitOptions& options = {});

  /// Convenience overload: run knobs only (batch class, no deadline).
  [[nodiscard]] Result<Job> submit(std::string_view name,
                                   std::vector<InputVector> vectors,
                                   const RunOptions& run);

  /// Synchronous convenience: submit + wait.
  [[nodiscard]] Result<std::vector<BitVector>> run_sync(
      std::string_view name, std::vector<InputVector> vectors,
      const SubmitOptions& options = {});

  /// Convenience overload: run knobs only (batch class, no deadline).
  [[nodiscard]] Result<std::vector<BitVector>> run_sync(
      std::string_view name, std::vector<InputVector> vectors,
      const RunOptions& run);

  /// Block until every job submitted so far has retired — device queues
  /// empty, and (with resilience enabled) every migration and shadow
  /// verification settled.  Submits that arrive after a drain has started
  /// are rejected with kUnavailable until it returns: drain is a barrier
  /// with a documented ordering, not a racy snapshot (docs/scheduling.md
  /// §3.4).  Concurrent drains are safe; submits are accepted again once
  /// the last one returns.
  void drain();

  /// Install a scripted fault-injection plan on one device of the fleet
  /// (test/soak hook; see rt::FaultPlan and Device::install_fault_plan).
  /// Out-of-range `device` indices are ignored.
  void install_fault_plan(std::size_t device, FaultPlan plan);

  /// True when the resilience supervisor has quarantined device `device`:
  /// it no longer receives routed jobs, replicas, or registration homes.
  /// Quarantine is permanent for the pool's lifetime; out-of-range
  /// indices are false.
  [[nodiscard]] bool quarantined(std::size_t device) const;

  /// An interactive synchronous Session over a registered design (cycle-
  /// by-cycle step(), waveforms, X injection — the job path handles clocked
  /// batches via SubmitOptions::cycles).  The session is independent of
  /// every device's personality.
  [[nodiscard]] Result<platform::Session> open_session(
      std::string_view name) const;

  /// A mode-aware Session over a register_poly design (Session::load_poly
  /// of the registered multi-mode source): per-mode interactive driving
  /// plus the RunOptions::sweep_modes mode-major batch the job path does
  /// not serve.  kNotFound when `name` was not registered with
  /// register_poly.
  [[nodiscard]] Result<platform::Session> open_poly_session(
      std::string_view name) const;

  /// Direct access to one device of the fleet (index < device_count()),
  /// for tests, benches, and per-device introspection.  Scheduling-neutral:
  /// reads are always safe, but loading designs behind the pool's back
  /// leaves its replica map unaware of them.
  [[nodiscard]] const Device& device(std::size_t index) const;

  /// Snapshot of the pool's scheduling counters and per-device stats.
  [[nodiscard]] PoolStats stats() const;

 private:
  struct Impl;
  explicit DevicePool(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace pp::rt
