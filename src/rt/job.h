// rt::Job — a future-like handle on one unit of device work.
//
// A job is a batch of stimulus vectors bound to a named resident design.
// `Device::submit` enqueues it and returns immediately; the handle lets the
// client block (`wait`), poll (`try_result`), or withdraw the work before
// the dispatcher picks it up (`cancel`).  Handles are cheap shared-state
// references: copying one observes the same job, and a handle outliving its
// device stays safe (the dispatcher completes or cancels every queued job
// before the device dies).

/// \file
/// \brief rt::Job — a future-like handle on one unit of device work.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "platform/executor.h"
#include "util/status.h"

namespace pp::rt {

/// One result vector (bound output order), re-exported from pp::platform.
using platform::BitVector;
/// One stimulus vector (bound input order), re-exported from pp::platform.
using platform::InputVector;

/// Scheduling class of a submitted job (docs/scheduling.md §1.4).
enum class Priority : std::uint8_t {
  /// Throughput work (the default): rides same-design batches, may be
  /// bypassed — boundedly — by interactive jobs.
  kBatch = 0,
  /// Latency-sensitive work: JobQueue::pop prefers it over batch jobs,
  /// within the same bounded-bypass starvation guarantee.
  kInteractive = 1,
};

/// Per-submission scheduling options: the batch-run knobs plus the job's
/// scheduling class and an optional completion deadline.
struct SubmitOptions {
  /// Engine/sharding knobs for the job's batch run (platform::RunOptions).
  platform::RunOptions run{};
  /// Clocked submission: non-zero means the job's vectors are independent
  /// stimulus *streams* of `cycles` vectors each, stream-major
  /// (vectors.size() must be a multiple of `cycles`); each stream starts
  /// from reset and yields one result vector per cycle.  0 (the default)
  /// submits independent combinational vectors.  Sequential designs
  /// require a non-zero cycle count; combinational designs accept either.
  std::size_t cycles = 0;
  /// Scheduling class; interactive jobs jump batch jobs in the queue.
  Priority priority = Priority::kBatch;
  /// Absolute deadline.  A job whose deadline has expired when the
  /// dispatcher picks it up completes with kDeadlineExceeded *without
  /// running* (the fabric never reconfigures for dead work).  Unset = no
  /// deadline.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Completion hook: invoked exactly once, outside the job's state lock,
  /// when the job reaches a terminal phase (done *or* canceled) — on
  /// whichever thread drove the transition.  This is how rt::DevicePool's
  /// resilience supervisor learns a device job retired without blocking a
  /// thread per job (DESIGN.md §15); ordinary callers leave it empty.  The
  /// callback must not submit to or wait on the job's own device queue.
  std::function<void()> on_terminal;
};

namespace detail {

/// Shared state between the client-side Job handle and the device
/// dispatcher.  Lifecycle: kQueued -> kRunning -> kDone, or kQueued ->
/// kCanceled (cancel only wins while the job is still queued).
struct JobState {
  JobState(std::uint64_t id_in, std::string design_in,
           std::vector<InputVector> vectors_in, SubmitOptions options_in)
      : id(id_in),
        design(std::move(design_in)),
        vectors(std::move(vectors_in)),
        options(std::move(options_in)) {}

  const std::uint64_t id;
  const std::string design;
  std::vector<InputVector> vectors;  // cleared once consumed by the runner
  const SubmitOptions options;

  enum class Phase : std::uint8_t { kQueued, kRunning, kDone, kCanceled };

  std::mutex mutex;
  std::condition_variable cv;
  Phase phase = Phase::kQueued;
  Status status;                   // final status (OK when results valid)
  std::vector<BitVector> results;  // valid iff phase==kDone && status.ok()
};

}  // namespace detail

/// A future-like handle on one submitted batch of work: block on it
/// (wait), poll it (try_result), or withdraw it before dispatch (cancel).
/// Copies are cheap and observe the same job; handles outlive their
/// device safely.
class Job {
 public:
  /// Default-constructed handles are empty (valid() == false); every other
  /// accessor requires a handle obtained from Device::submit.
  Job() = default;

  /// True for handles obtained from Device::submit (false only for
  /// default-constructed ones).
  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }
  /// Device-unique, monotonically increasing job id.
  [[nodiscard]] std::uint64_t id() const noexcept { return state_->id; }
  /// The resident-design name this job is bound to.
  [[nodiscard]] const std::string& design() const noexcept {
    return state_->design;
  }

  /// Block until the job finishes, then return its results (or the failure
  /// Status; a canceled job reports kFailedPrecondition).  Idempotent.
  [[nodiscard]] Result<std::vector<BitVector>> wait();

  /// Non-blocking poll: empty while the job is queued or running, otherwise
  /// exactly what wait() would return.
  [[nodiscard]] std::optional<Result<std::vector<BitVector>>> try_result();

  /// Withdraw the job if the dispatcher has not started it.  Returns true
  /// when the cancellation won (the job will never run); false when the job
  /// is already running or finished.
  bool cancel();

  /// True once the job reached a terminal phase (done or canceled).
  [[nodiscard]] bool done() const;

  /// True once the job was withdrawn without running (cancel() won, or its
  /// device shut down while the job was still queued); wait() reports
  /// kFailedPrecondition for such jobs.  False while queued/running and
  /// for jobs that completed (successfully or not).
  [[nodiscard]] bool canceled() const;

 private:
  friend class Device;
  friend class DevicePool;
  explicit Job(std::shared_ptr<detail::JobState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<detail::JobState> state_;
};

}  // namespace pp::rt
