#include "rt/job.h"

namespace pp::rt {

using detail::JobState;

namespace {

/// Terminal-phase outcome as a Result (caller holds the state mutex).
[[nodiscard]] Result<std::vector<BitVector>> outcome(const JobState& state) {
  if (state.phase == JobState::Phase::kCanceled)
    return Status::failed_precondition("job " + std::to_string(state.id) +
                                       ": canceled before execution");
  if (!state.status.ok()) return state.status;
  return state.results;
}

}  // namespace

Result<std::vector<BitVector>> Job::wait() {
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [&] {
    return state_->phase == JobState::Phase::kDone ||
           state_->phase == JobState::Phase::kCanceled;
  });
  return outcome(*state_);
}

std::optional<Result<std::vector<BitVector>>> Job::try_result() {
  const std::lock_guard<std::mutex> lock(state_->mutex);
  if (state_->phase != JobState::Phase::kDone &&
      state_->phase != JobState::Phase::kCanceled)
    return std::nullopt;
  return outcome(*state_);
}

bool Job::cancel() {
  {
    const std::lock_guard<std::mutex> lock(state_->mutex);
    if (state_->phase != JobState::Phase::kQueued) return false;
    state_->phase = JobState::Phase::kCanceled;
    state_->vectors.clear();
    state_->cv.notify_all();
  }
  // The winning cancel is the job's terminal transition; fire the
  // completion hook outside the state lock like every other terminal path.
  if (state_->options.on_terminal) state_->options.on_terminal();
  return true;
}

bool Job::done() const {
  const std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->phase == JobState::Phase::kDone ||
         state_->phase == JobState::Phase::kCanceled;
}

bool Job::canceled() const {
  const std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->phase == JobState::Phase::kCanceled;
}

}  // namespace pp::rt
