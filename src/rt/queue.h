// rt::JobQueue — the per-device submission queue.
//
// A blocking MPSC queue (many client threads submit, one dispatcher
// consumes) with one scheduling twist: `pop` prefers the oldest job whose
// design is already active on the fabric, so bursts that interleave designs
// still batch per personality and amortize reconfiguration.  Within one
// design jobs stay FIFO, and a job can never starve: the preference may
// bypass the queue's front at most kMaxBatchRun consecutive times before a
// strict-FIFO pop is forced, so the oldest waiting job is served after a
// bounded number of batched rides even under a sustained stream of
// active-design submissions.

/// \file
/// \brief rt::JobQueue — the per-device submission queue with same-design
/// batching and a bounded-bypass starvation guarantee.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <string_view>

#include "rt/job.h"

namespace pp::rt {

/// Blocking MPSC job queue (many submitters, one dispatcher) whose pop
/// prefers the oldest job matching the active personality, bounded so no
/// design starves (docs/scheduling.md §1).
class JobQueue {
 public:
  /// How many times in a row pop() may serve a matching-design job ahead
  /// of an older job of another design before strict FIFO is forced.
  static constexpr int kMaxBatchRun = 8;

  /// Enqueue a job (any thread).  Jobs arrive in phase kQueued.
  void push(std::shared_ptr<detail::JobState> job);

  /// Block until a job is available or the queue is shut down.  Returns the
  /// oldest job whose design matches `active_design` if any, else the
  /// oldest job overall; nullptr only after shutdown() with the queue
  /// drained.  Jobs canceled while queued still flow out (the consumer
  /// discards them, keeping submission/terminal accounting in one place).
  [[nodiscard]] std::shared_ptr<detail::JobState> pop(
      std::string_view active_design);

  /// Mark every still-queued job canceled (waking its waiters) and make
  /// pop() return nullptr once the queue is empty.  Idempotent.  Returns
  /// how many jobs this call actually canceled.
  std::size_t shutdown();

  /// Number of jobs currently queued (excluding any job the consumer has
  /// already popped).  Snapshot only: concurrent pushes/pops may change it
  /// immediately; schedulers use it as a load hint, never as a guarantee.
  [[nodiscard]] std::size_t pending() const;

  /// Number of queued jobs bound to `design`.  Same snapshot caveat as
  /// pending().  Per-design introspection (surfaced as Device::queued) for
  /// tests and operational tooling; the pool's routing and replication
  /// decisions use the device-wide depth, not this.
  [[nodiscard]] std::size_t pending_for(std::string_view design) const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<detail::JobState>> queue_;
  int batch_run_ = 0;  ///< consecutive pops that bypassed the queue front
  bool shutdown_ = false;
};

}  // namespace pp::rt
