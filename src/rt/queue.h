// rt::JobQueue — the per-device submission queue.
//
// A blocking MPSC queue (many client threads submit, one dispatcher
// consumes) with two scheduling twists layered on oldest-first order:
// `pop` prefers interactive jobs over batch jobs (the serving layer's
// latency class), and within a class it prefers the oldest job whose
// design is already active on the fabric, so bursts that interleave
// designs still batch per personality and amortize reconfiguration.
// Within one (class, design) jobs stay FIFO, and a job can never starve:
// every preference shares one bypass budget — pop may serve a job ahead
// of the queue's front at most max_batch_run consecutive times before a
// strict-FIFO pop is forced, so the oldest waiting job is served after a
// bounded number of jumped rides even under a sustained stream of
// interactive or active-design submissions.

/// \file
/// \brief rt::JobQueue — the per-device submission queue with priority
/// classes, same-design batching, and a bounded-bypass starvation
/// guarantee.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <string_view>

#include "rt/job.h"

namespace pp::rt {

/// Blocking MPSC job queue (many submitters, one dispatcher) whose pop
/// prefers interactive jobs, then jobs matching the active personality,
/// bounded so nothing starves (docs/scheduling.md §1).
class JobQueue {
 public:
  /// Default bypass bound (DeviceOptions::max_batch_run's default).
  static constexpr int kDefaultMaxBatchRun = 8;

  /// A queue whose pop() may bypass the front at most `max_batch_run`
  /// consecutive times (>= 1; rt::Device validates before construction).
  explicit JobQueue(int max_batch_run = kDefaultMaxBatchRun)
      : max_batch_run_(max_batch_run) {}

  /// Enqueue a job (any thread).  Jobs arrive in phase kQueued.
  void push(std::shared_ptr<detail::JobState> job);

  /// Block until a job is available or the queue is shut down.  Preference
  /// order (oldest within each rung): interactive matching `active_design`,
  /// interactive, batch matching `active_design`, then the queue's front —
  /// forced unconditionally once the bypass budget is spent.  Returns
  /// nullptr only after shutdown() with the queue drained.  Jobs canceled
  /// while queued still flow out (the consumer discards them, keeping
  /// submission/terminal accounting in one place).
  [[nodiscard]] std::shared_ptr<detail::JobState> pop(
      std::string_view active_design);

  /// Mark every still-queued job canceled (waking its waiters) and make
  /// pop() return nullptr once the queue is empty.  Idempotent.  Returns
  /// how many jobs this call actually canceled.
  std::size_t shutdown();

  /// Number of jobs currently queued (excluding any job the consumer has
  /// already popped).  Snapshot only: concurrent pushes/pops may change it
  /// immediately; schedulers use it as a load hint, never as a guarantee.
  [[nodiscard]] std::size_t pending() const;

  /// Number of queued jobs bound to `design`.  Same snapshot caveat as
  /// pending().  Per-design introspection (surfaced as Device::queued) for
  /// tests and operational tooling; the pool's routing and replication
  /// decisions use the device-wide depth, not this.
  [[nodiscard]] std::size_t pending_for(std::string_view design) const;

  /// The bypass bound this queue was constructed with.
  [[nodiscard]] int max_batch_run() const noexcept { return max_batch_run_; }

 private:
  const int max_batch_run_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<detail::JobState>> queue_;
  int batch_run_ = 0;  ///< consecutive pops that bypassed the queue front
  bool shutdown_ = false;
};

}  // namespace pp::rt
