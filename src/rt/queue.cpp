#include "rt/queue.h"

#include <algorithm>
#include <utility>

namespace pp::rt {

using detail::JobState;

void JobQueue::push(std::shared_ptr<JobState> job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

std::shared_ptr<JobState> JobQueue::pop(std::string_view active_design) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
  if (queue_.empty()) return nullptr;  // shutdown, drained
  // Preference order: interactive beats batch (latency class first), then a
  // design matching the resident personality beats a swap, oldest within
  // equal rank.  Every preference draws on one bypass budget — after
  // max_batch_run consecutive pops that jumped an older job, the front is
  // served unconditionally, so neither a priority class nor a design can
  // starve the others.  Entries canceled while they sat here still flow
  // out — the dispatcher discards them, which keeps the submitted/terminal
  // accounting in one place.
  auto it = queue_.begin();
  if (batch_run_ < max_batch_run_) {
    const auto rank = [&](const std::shared_ptr<JobState>& j) {
      return (j->options.priority == Priority::kInteractive ? 2 : 0) +
             (j->design == active_design ? 1 : 0);
    };
    int best = rank(*it);
    for (auto cand = std::next(queue_.begin());
         cand != queue_.end() && best < 3; ++cand) {
      // Strictly-greater keeps the oldest job within each rank.
      if (const int r = rank(*cand); r > best) {
        best = r;
        it = cand;
      }
    }
  }
  batch_run_ = it == queue_.begin() ? 0 : batch_run_ + 1;
  std::shared_ptr<JobState> job = std::move(*it);
  queue_.erase(it);
  return job;
}

std::size_t JobQueue::shutdown() {
  std::deque<std::shared_ptr<JobState>> orphaned;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
    orphaned.swap(queue_);
  }
  std::size_t canceled = 0;
  for (const auto& job : orphaned) {
    bool won = false;
    {
      const std::lock_guard<std::mutex> lock(job->mutex);
      if (job->phase == JobState::Phase::kQueued) {
        job->phase = JobState::Phase::kCanceled;
        job->vectors.clear();
        job->cv.notify_all();
        won = true;
      }
    }
    if (won) {
      // Shutdown-cancel is this job's terminal transition: fire the
      // completion hook outside the state lock.
      if (job->options.on_terminal) job->options.on_terminal();
      ++canceled;
    }
  }
  cv_.notify_all();
  return canceled;
}

std::size_t JobQueue::pending() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::size_t JobQueue::pending_for(std::string_view design) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::size_t>(
      std::count_if(queue_.begin(), queue_.end(),
                    [&](const auto& j) { return j->design == design; }));
}

}  // namespace pp::rt
