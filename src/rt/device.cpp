#include "rt/device.h"

#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "core/bitstream.h"
#include "rt/design_cache.h"
#include "rt/queue.h"

namespace pp::rt {

using detail::JobState;

std::string poly_view_name(std::string_view name, std::uint32_t mode) {
  if (mode == 0) return std::string(name);
  return std::string(name) + "@mode" + std::to_string(mode);
}

struct Device::Impl {
  explicit Impl(const DeviceOptions& options_in)
      : options(options_in), queue(options_in.max_batch_run) {}

  DeviceOptions options;
  int rows = 0, cols = 0;

  // The physical array and its active personality.  hw_mutex pins the
  // personality across a reconfigure-then-run sequence; the dispatcher
  // holds it for each job, so a manual activate() waits for the fabric.
  mutable std::mutex hw_mutex;
  core::Fabric hw{1, 1};
  // The resident configuration's CRC (fabric_config_crc), tracked across
  // swaps so activation never re-encodes the whole array just to bind the
  // delta to its base.
  std::uint32_t hw_crc = 0;
  std::shared_ptr<ResidentDesign> active;
  // Mirror of `active` readable without hw_mutex: the dispatcher holds
  // hw_mutex for a whole job (the personality is pinned), so introspection
  // through it would block scheduling decisions for the job's duration.
  // Published under its own tiny lock at the instant each swap applies.
  mutable std::mutex active_snapshot_mutex;
  std::shared_ptr<ResidentDesign> active_snapshot;
  // Deltas between resident personalities, keyed by (from, to) resident
  // name ("" = the blank power-on personality).  Designs are immutable once
  // resident, so cached deltas never go stale.
  std::map<std::pair<std::string, std::string>, std::vector<std::uint8_t>>
      delta_cache;

  DesignCache cache;
  JobQueue queue;  // constructed with options.max_batch_run

  // Polymorphic registrations (load_poly): the multi-mode source per base
  // name, kept for mode-count validation at submit and for
  // open_poly_session.  The per-mode configuration views live in `cache`
  // as ordinary resident designs under derived names (poly_view_name).
  mutable std::mutex poly_mutex;
  std::map<std::string, platform::PolyDesign, std::less<>> poly_designs;

  /// Mode count `name` answers at submit time: M for a load_poly design,
  /// 1 for an ordinary resident, 0 for an unknown name.
  [[nodiscard]] std::size_t modes_of(std::string_view name) const {
    {
      const std::lock_guard<std::mutex> lock(poly_mutex);
      if (const auto it = poly_designs.find(name); it != poly_designs.end())
        return it->second.views.size();
    }
    return cache.find(name) != nullptr ? 1 : 0;
  }

  [[nodiscard]] bool is_poly(std::string_view name) const {
    const std::lock_guard<std::mutex> lock(poly_mutex);
    return poly_designs.find(name) != poly_designs.end();
  }

  mutable std::mutex stats_mutex;
  DeviceStats stats;

  // Fault injection (rt::FaultPlan, test/soak hook).  `fault_armed` is the
  // zero-overhead gate: the dispatcher takes fault_mutex only when a plan
  // is installed.  Installing the plan before submitting is deterministic
  // (the store is sequenced before the queue push, whose mutex hand-off
  // publishes it to the dispatcher).
  std::atomic<bool> fault_armed{false};
  std::mutex fault_mutex;
  FaultPlan fault_plan;
  std::uint64_t fault_ordinal = 0;  // dispatched jobs since install
  bool fault_dead = false;          // a kDeath event fired

  /// The fault to inject for the job being dispatched, if any (resolved
  /// under fault_mutex so a concurrent install/clear never half-applies).
  struct FaultAction {
    FaultKind kind;
    std::chrono::milliseconds hold{0};
    std::size_t corrupt_vector = 0;
    std::size_t corrupt_bit = 0;
  };

  [[nodiscard]] std::optional<FaultAction> next_fault_action() {
    const std::lock_guard<std::mutex> lock(fault_mutex);
    if (!fault_armed.load(std::memory_order_relaxed)) return std::nullopt;
    const std::uint64_t ordinal = ++fault_ordinal;
    FaultKind kind{};
    if (fault_dead) {
      kind = FaultKind::kDeath;
    } else {
      const FaultEvent* hit = nullptr;
      for (const FaultEvent& ev : fault_plan.events)
        if (ev.at_job == ordinal) {
          hit = &ev;
          break;
        }
      if (hit == nullptr) return std::nullopt;
      kind = hit->kind;
      if (kind == FaultKind::kDeath) fault_dead = true;
    }
    return FaultAction{kind, fault_plan.timeout_hold,
                       fault_plan.corrupt_vector, fault_plan.corrupt_bit};
  }

  std::atomic<std::uint64_t> next_job_id{1};

  // Outstanding-work tracking for drain(): incremented at submit,
  // decremented when the dispatcher retires the job (run, failed, or
  // discarded after a cancel) — never skipped, because canceled jobs still
  // flow out of the queue to the dispatcher.
  std::mutex idle_mutex;
  std::condition_variable idle_cv;
  std::uint64_t outstanding = 0;

  std::thread dispatcher;

  /// Swap the array to `rd`'s personality (hw_mutex held).  Returns true in
  /// `swapped` when a delta was actually written.
  [[nodiscard]] Status activate_locked(
      const std::shared_ptr<ResidentDesign>& rd, bool& swapped) {
    swapped = false;
    if (active == rd) {
      const std::lock_guard<std::mutex> lock(stats_mutex);
      ++stats.activation_skips;
      return Status();
    }
    const std::pair<std::string, std::string> key{
        active ? active->name() : "", rd->name()};
    auto it = delta_cache.find(key);
    if (it == delta_cache.end()) {
      auto delta = core::encode_delta(hw, rd->fabric());
      if (!delta.ok()) return delta.status();
      it = delta_cache.emplace(key, std::move(*delta)).first;
    }
    if (Status s = core::try_apply_delta(hw, it->second, hw_crc); !s.ok())
      return s;
    // The array now holds rd's personality; its CRC is the trailing word
    // of rd's full bitstream.
    const auto& stream = rd->design().bitstream;
    hw_crc = 0;
    for (int i = 0; i < 4; ++i)
      hw_crc |= static_cast<std::uint32_t>(stream[stream.size() - 4 + i])
                << (8 * i);
    active = rd;
    {
      const std::lock_guard<std::mutex> lock(active_snapshot_mutex);
      active_snapshot = rd;
    }
    const std::lock_guard<std::mutex> lock(stats_mutex);
    ++stats.activations;
    stats.delta_bytes += it->second.size();
    stats.full_bytes += rd->design().bitstream.size();
    swapped = true;
    return Status();
  }

  [[nodiscard]] std::shared_ptr<ResidentDesign> active_design() const {
    const std::lock_guard<std::mutex> lock(active_snapshot_mutex);
    return active_snapshot;
  }

  [[nodiscard]] std::string active_name() const {
    const auto rd = active_design();
    return rd ? rd->name() : std::string();
  }

  void dispatch_loop() {
    for (;;) {
      std::shared_ptr<JobState> job = queue.pop(active_name());
      if (!job) break;  // shutdown, queue drained
      run_job(*job);
      {
        const std::lock_guard<std::mutex> lock(idle_mutex);
        --outstanding;
      }
      idle_cv.notify_all();
    }
  }

  void run_job(JobState& job) {
    {
      const std::lock_guard<std::mutex> lock(job.mutex);
      if (job.phase != JobState::Phase::kQueued) {  // lost to cancel
        const std::lock_guard<std::mutex> stats_lock(stats_mutex);
        ++stats.jobs_canceled;
        return;
      }
      job.phase = JobState::Phase::kRunning;
    }
    // An expired deadline completes the job without running it: the fabric
    // never reconfigures (and no engine pass runs) for work whose result
    // the client already considers late.
    if (job.options.deadline &&
        std::chrono::steady_clock::now() > *job.options.deadline) {
      {
        const std::lock_guard<std::mutex> lock(stats_mutex);
        ++stats.jobs_expired;
      }
      {
        const std::lock_guard<std::mutex> lock(job.mutex);
        job.vectors.clear();
        job.status = Status::deadline_exceeded(
            "job " + std::to_string(job.id) + ": deadline expired before "
            "dispatch; the job did not run");
        job.phase = JobState::Phase::kDone;
      }
      job.cv.notify_all();
      if (job.options.on_terminal) job.options.on_terminal();
      return;
    }
    // Fault injection (test/soak hook): when no plan is installed this is
    // one relaxed atomic load and nothing else.
    std::optional<FaultAction> fault;
    if (fault_armed.load(std::memory_order_relaxed))
      fault = next_fault_action();
    // Residency is permanent (no unload), so the design always resolves.
    const std::shared_ptr<ResidentDesign> rd = cache.find(job.design);
    Status status = rd ? Status()
                       : Status::internal("job " + std::to_string(job.id) +
                                          ": design '" + job.design +
                                          "' vanished from the device");
    if (status.ok() && fault && fault->kind != FaultKind::kCorruptResult) {
      switch (fault->kind) {
        case FaultKind::kDeath:
          status = Status::unavailable(
              "job " + std::to_string(job.id) +
              ": injected fault: device is dead");
          break;
        case FaultKind::kActivationCrc:
          status = Status::data_loss(
              "job " + std::to_string(job.id) +
              ": injected fault: activation CRC mismatch; the personality "
              "swap was rejected and the job did not run");
          break;
        case FaultKind::kTimeout:
          // Wedge the dispatcher for the watchdog interval, then kill the
          // job — models a device that stops answering mid-run.
          std::this_thread::sleep_for(fault->hold);
          status = Status::unavailable(
              "job " + std::to_string(job.id) +
              ": injected fault: job timed out mid-run and was killed");
          break;
        case FaultKind::kCorruptResult:
          break;  // unreachable (handled after the run)
      }
    }
    std::vector<BitVector> results;
    if (status.ok()) {
      const std::lock_guard<std::mutex> hw_lock(hw_mutex);
      bool swapped = false;
      status = activate_locked(rd, swapped);
      if (status.ok()) {
        auto run = job.options.cycles > 0
                       ? rd->executor().run_cycles(
                             job.vectors, job.options.cycles, job.options.run)
                       : rd->executor().run(job.vectors, job.options.run);
        if (run.ok())
          results = std::move(*run);
        else
          status = run.status();
        const std::lock_guard<std::mutex> lock(stats_mutex);
        if (!swapped) ++stats.batched_jobs;
        if (status.ok()) {
          stats.vectors_run += results.size();
          // Fold this job's kernel-pass accounting into the device view
          // (the executor is still serialized here: hw_mutex is held).
          const platform::ExecutorStats& lr = rd->executor().last_run_stats();
          stats.fast_passes += lr.fast_passes;
          stats.slow_passes += lr.slow_passes;
          stats.cycles_run += lr.cycles_run;
          stats.state_commits += lr.state_commits;
          stats.fast_cycle_passes += lr.fast_cycle_passes;
          stats.jit_passes += lr.jit_passes;
          stats.jit_compiles += lr.jit_compiles;
          stats.jit_cache_hits += lr.jit_cache_hits;
          stats.jit_fallbacks += lr.jit_fallbacks;
        }
      }
    }
    // Silent result corruption: the run succeeded as far as the device can
    // tell (status stays OK), but one bit of the result planes is flipped —
    // only the pool's shadow verification can catch this.
    if (status.ok() && fault && fault->kind == FaultKind::kCorruptResult &&
        !results.empty()) {
      BitVector& v = results[fault->corrupt_vector % results.size()];
      if (!v.empty()) {
        const std::size_t bit = fault->corrupt_bit % v.size();
        v[bit] = !v[bit];
      }
    }
    {
      const std::lock_guard<std::mutex> lock(stats_mutex);
      ++(status.ok() ? stats.jobs_completed : stats.jobs_failed);
    }
    {
      const std::lock_guard<std::mutex> lock(job.mutex);
      job.vectors.clear();
      job.status = std::move(status);
      job.results = std::move(results);
      job.phase = JobState::Phase::kDone;
    }
    job.cv.notify_all();
    if (job.options.on_terminal) job.options.on_terminal();
  }
};

Device::Device(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
Device::Device(Device&&) noexcept = default;

Device& Device::operator=(Device&& other) noexcept {
  if (this != &other) {
    shutdown_impl();  // the overwritten device's dispatcher must be joined
    impl_ = std::move(other.impl_);
  }
  return *this;
}

Device::~Device() { shutdown_impl(); }

void Device::shutdown_impl() {
  if (!impl_) return;  // moved-from
  // Wake waiters of still-queued jobs (they see kCanceled), let the
  // dispatcher finish the in-flight job, and join it.
  const std::size_t orphaned = impl_->queue.shutdown();
  if (orphaned > 0) {
    const std::lock_guard<std::mutex> lock(impl_->stats_mutex);
    impl_->stats.jobs_canceled += orphaned;
  }
  if (impl_->dispatcher.joinable()) impl_->dispatcher.join();
  impl_.reset();
}

Result<Device> Device::create(int rows, int cols, DeviceOptions options) {
  if (options.max_batch_run < 1)
    return Status::invalid_argument(
        "Device::create: max_batch_run must be >= 1 (got " +
        std::to_string(options.max_batch_run) + ")");
  auto fabric = core::Fabric::create(rows, cols);
  if (!fabric.ok()) return fabric.status();
  auto impl = std::make_unique<Impl>(options);
  impl->rows = rows;
  impl->cols = cols;
  impl->hw = std::move(*fabric);
  impl->hw_crc = core::fabric_config_crc(impl->hw);
  Impl* raw = impl.get();
  impl->dispatcher = std::thread([raw] { raw->dispatch_loop(); });
  return Device(std::move(impl));
}

int Device::rows() const noexcept { return impl_->rows; }
int Device::cols() const noexcept { return impl_->cols; }

Status Device::load(std::string name,
                    const platform::CompiledDesign& design) {
  if (name.empty())
    return Status::invalid_argument(
        "Device::load: the empty name is reserved for the blank power-on "
        "personality");
  auto padded = platform::pad_to(design, impl_->rows, impl_->cols);
  if (!padded.ok()) return padded.status();
  auto outcome = impl_->cache.load(std::move(name), std::move(*padded));
  if (!outcome.ok()) return outcome.status();
  if (impl_->options.jit) {
    // Warm the design's JIT kernel now so the build overlaps residency
    // instead of a job.  hw_mutex serializes this with the dispatcher —
    // the load may have deduped onto a design it is actively running.
    const std::lock_guard<std::mutex> hw_lock(impl_->hw_mutex);
    outcome->resident->executor().warm_jit();
  }
  const std::lock_guard<std::mutex> lock(impl_->stats_mutex);
  ++(outcome->deduped ? impl_->stats.dedup_hits
                      : impl_->stats.designs_loaded);
  return Status();
}

Status Device::load_poly(std::string name,
                         const platform::PolyDesign& design) {
  if (name.empty())
    return Status::invalid_argument(
        "Device::load_poly: the empty name is reserved for the blank "
        "power-on personality");
  if (name.find("@mode") != std::string::npos)
    return Status::invalid_argument(
        "Device::load_poly: '" + name +
        "' — \"@mode\" is reserved for derived view keys");
  const std::size_t modes = static_cast<std::size_t>(design.netlist.modes());
  if (design.views.size() != modes)
    return Status::invalid_argument(
        "Device::load_poly: expected one configuration view per mode (" +
        std::to_string(modes) + "), got " +
        std::to_string(design.views.size()));
  for (std::uint32_t m = 0; m < design.views.size(); ++m)
    if (Status s = load(poly_view_name(name, m), design.views[m]); !s.ok())
      return Status(s.code(),
                    "Device::load_poly: mode " + std::to_string(m) + ": " +
                        std::string(s.message()));
  const std::lock_guard<std::mutex> lock(impl_->poly_mutex);
  impl_->poly_designs.insert_or_assign(std::move(name), design);
  return Status();
}

bool Device::resident(std::string_view name) const {
  return impl_->cache.find(name) != nullptr;
}

std::vector<std::string> Device::designs() const {
  return impl_->cache.names();
}

std::size_t Device::design_modes(std::string_view name) const {
  return impl_->modes_of(name);
}

Status Device::activate(std::string_view name) {
  const std::shared_ptr<ResidentDesign> rd = impl_->cache.find(name);
  if (!rd)
    return Status::not_found("activate: no resident design named '" +
                             std::string(name) + "'");
  const std::lock_guard<std::mutex> lock(impl_->hw_mutex);
  bool swapped = false;
  return impl_->activate_locked(rd, swapped);
}

std::string Device::active() const { return impl_->active_name(); }

bool Device::active_matches(std::string_view name) const {
  const auto rd = impl_->active_design();
  if (name.empty()) return rd == nullptr;  // "" is the blank personality
  return rd != nullptr && rd == impl_->cache.find(name);
}

std::size_t Device::queue_depth() const {
  const std::lock_guard<std::mutex> lock(impl_->idle_mutex);
  return static_cast<std::size_t>(impl_->outstanding);
}

std::size_t Device::queued(std::string_view name) const {
  return impl_->queue.pending_for(name);
}

bool Device::idle() const { return queue_depth() == 0; }

core::Fabric Device::personality() const {
  const std::lock_guard<std::mutex> lock(impl_->hw_mutex);
  return impl_->hw;
}

Result<Job> Device::submit(std::string_view name,
                           std::vector<InputVector> vectors,
                           const SubmitOptions& options_in) {
  SubmitOptions options = options_in;
  std::string routed;  // keeps a derived view key alive for this frame
  if (options.run.sweep_modes)
    return Status::unimplemented(
        "submit: sweep_modes needs the mode-major compiled engine; device "
        "jobs run one configuration view — use open_poly_session() for "
        "swept batches");
  if (options.run.mode != 0) {
    const std::size_t modes = impl_->modes_of(name);
    if (modes == 0)
      return Status::not_found("submit: no resident design named '" +
                               std::string(name) + "'");
    if (!impl_->is_poly(name))
      return Status::invalid_argument(
          "submit: design '" + std::string(name) +
          "' is not polymorphic; RunOptions::mode selects a view of a "
          "load_poly design");
    if (options.run.mode >= modes)
      return Status::out_of_range(
          "submit: mode " + std::to_string(options.run.mode) +
          " out of range for '" + std::string(name) + "' (" +
          std::to_string(modes) + " modes)");
    routed = poly_view_name(name, options.run.mode);
    name = routed;
    options.run.mode = 0;  // the derived view is single-mode by itself
  }
  const std::shared_ptr<ResidentDesign> rd = impl_->cache.find(name);
  if (!rd)
    return Status::not_found("submit: no resident design named '" +
                             std::string(name) + "'");
  if (rd->sequential() && options.cycles == 0)
    return Status::failed_precondition(
        "submit: sequential design — boundary-register state makes vectors "
        "cycles of a stream, not independent; submit with "
        "SubmitOptions::cycles, or open_session() for cycle-by-cycle step()");
  if (options.cycles > 0 && vectors.size() % options.cycles != 0)
    return Status::invalid_argument(
        "submit: " + std::to_string(vectors.size()) +
        " vectors do not divide into whole " +
        std::to_string(options.cycles) + "-cycle streams");
  const std::size_t nin = rd->executor().input_count();
  for (const InputVector& v : vectors)
    if (v.size() != nin)
      return Status::invalid_argument(
          "submit: every vector must have " + std::to_string(nin) +
          " input values");
  auto state = std::make_shared<JobState>(
      impl_->next_job_id.fetch_add(1, std::memory_order_relaxed),
      std::string(name), std::move(vectors), options);
  {
    const std::lock_guard<std::mutex> lock(impl_->stats_mutex);
    ++impl_->stats.jobs_submitted;
  }
  {
    const std::lock_guard<std::mutex> lock(impl_->idle_mutex);
    ++impl_->outstanding;
  }
  impl_->queue.push(state);
  return Job(std::move(state));
}

Result<Job> Device::submit(std::string_view name,
                           std::vector<InputVector> vectors,
                           const RunOptions& run) {
  SubmitOptions options;
  options.run = run;
  return submit(name, std::move(vectors), options);
}

Result<std::vector<BitVector>> Device::run_sync(std::string_view name,
                                                std::vector<InputVector>
                                                    vectors,
                                                const SubmitOptions& options) {
  auto job = submit(name, std::move(vectors), options);
  if (!job.ok()) return job.status();
  return job->wait();
}

Result<std::vector<BitVector>> Device::run_sync(std::string_view name,
                                                std::vector<InputVector>
                                                    vectors,
                                                const RunOptions& run) {
  SubmitOptions options;
  options.run = run;
  return run_sync(name, std::move(vectors), options);
}

void Device::drain() {
  std::unique_lock<std::mutex> lock(impl_->idle_mutex);
  impl_->idle_cv.wait(lock, [&] { return impl_->outstanding == 0; });
}

Result<platform::Session> Device::open_session(std::string_view name) const {
  const std::shared_ptr<ResidentDesign> rd = impl_->cache.find(name);
  if (!rd)
    return Status::not_found("open_session: no resident design named '" +
                             std::string(name) + "'");
  return platform::Session::load(rd->design());
}

Result<platform::Session> Device::open_poly_session(
    std::string_view name) const {
  const std::lock_guard<std::mutex> lock(impl_->poly_mutex);
  const auto it = impl_->poly_designs.find(name);
  if (it == impl_->poly_designs.end())
    return Status::not_found("open_poly_session: no polymorphic design "
                             "named '" + std::string(name) + "'");
  return platform::Session::load_poly(it->second);
}

void Device::install_fault_plan(FaultPlan plan) {
  const std::lock_guard<std::mutex> lock(impl_->fault_mutex);
  impl_->fault_plan = std::move(plan);
  impl_->fault_ordinal = 0;
  impl_->fault_dead = false;
  impl_->fault_armed.store(true, std::memory_order_relaxed);
}

void Device::clear_fault_plan() {
  const std::lock_guard<std::mutex> lock(impl_->fault_mutex);
  impl_->fault_armed.store(false, std::memory_order_relaxed);
  impl_->fault_plan = FaultPlan{};
  impl_->fault_ordinal = 0;
  impl_->fault_dead = false;
}

DeviceStats Device::stats() const {
  const std::lock_guard<std::mutex> lock(impl_->stats_mutex);
  return impl_->stats;
}

}  // namespace pp::rt
