// rt::Device — the runtime's view of one polymorphic array.
//
// The paper's fabric has no fixed function: its personality is "a link to a
// reconfiguration bit stream" (§4).  The runtime API mirrors that directly,
// in the device/kernel/run shape of mature reconfigurable-platform stacks
// (XRT-style): a Device owns the hardware, named designs are made
// *resident* on it (`load`, deduped by content hash), `activate` swaps the
// array's personality, and `submit` returns an asynchronous Job handle so
// many clients can keep one fabric busy across many designs.
//
//  * Residency vs activation: loading pays the one-time cost (bitstream
//    decode, elaboration, levelization, engine binding — see DesignCache)
//    and many designs stay resident at once; exactly one is *active* on the
//    array.  Activation is partial reconfiguration: a core::BitstreamDelta
//    writes only the blocks whose 128-bit images differ from the resident
//    personality, a measured fraction of the full bitstream (the device
//    accounts both, see Stats).
//  * Scheduling: submissions land in a per-device JobQueue consumed by one
//    dispatcher thread — the fabric is exclusive, so job *dispatch* is
//    serial, while each job's vectors shard across util::thread_pool via
//    the resident design's BatchExecutor.  The queue prefers jobs matching
//    the active personality (oldest-first within a design, strict FIFO
//    across personalities otherwise), batching same-design bursts to
//    amortize reconfiguration.
//  * Clocked designs ride the same job path: a submission with
//    SubmitOptions::cycles > 0 treats its vectors as independent stimulus
//    *streams* of that many cycles each, evaluated by the resident
//    executor's run_cycles with per-lane register files (DESIGN.md §13).
//    platform::Session stays the synchronous convenience: `open_session`
//    hands out an interactive session for any resident design (cycle-by-
//    cycle step(), waveforms, X injection).
//
// Thread-safety: every public method is safe to call from any thread.  The
// destructor cancels still-queued jobs (waking their waiters), finishes the
// running one, and joins the dispatcher; call drain() first to let queued
// work complete.

/// \file
/// \brief rt::Device — one polymorphic array with resident designs,
/// partial-reconfiguration activation, and an async job queue.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/fabric.h"
#include "platform/compiler.h"
#include "platform/executor.h"
#include "platform/session.h"
#include "rt/fault.h"
#include "rt/job.h"
#include "util/status.h"

namespace pp::rt {

/// Batch-run options, re-exported from pp::platform (the runtime and the
/// synchronous Session share one evaluation machinery).
using platform::RunOptions;

/// The residency key mode `mode` of a polymorphic design registered as
/// `name` lives under: `name` itself for mode 0 (the default environment),
/// `name + "@mode<m>"` for every other mode.  Each configuration view is an
/// ordinary resident design — switching modes is a reconfiguration, so the
/// runtime's activation, affinity, and replication machinery apply per
/// view.  RunOptions::mode on submit resolves through this mapping; the
/// derived names also answer direct submits, introspection, and
/// open_session like any other resident design.
[[nodiscard]] std::string poly_view_name(std::string_view name,
                                         std::uint32_t mode);

/// Per-device tuning knobs, fixed at creation.
struct DeviceOptions {
  /// JobQueue bypass bound: how many consecutive pops may jump an older
  /// job (same-design batching or interactive preference) before strict
  /// FIFO is forced.  Must be >= 1 (validated by Device::create); higher
  /// favours batching throughput, lower favours queue-order latency — the
  /// serving layer's batching-vs-latency dial (docs/scheduling.md §1.2).
  int max_batch_run = 8;
  /// Warm a JIT native kernel (sim::JitEval) for every design as it
  /// becomes resident: the build runs on a background thread per design
  /// while the interpreter serves, and jobs hot-swap onto the generated
  /// kernel once it lands (Engine::kAuto).  Off by default — JIT warming
  /// spawns the host C compiler, which not every deployment has or wants;
  /// without one the build parks a Status and jobs simply keep the
  /// interpreter (counted in DeviceStats::jit_fallbacks).
  bool jit = false;
};

/// Cumulative runtime accounting (all counters monotone).
struct DeviceStats {
  std::uint64_t designs_loaded = 0;    ///< distinct resident designs built
  std::uint64_t dedup_hits = 0;        ///< loads aliased to a resident twin
  std::uint64_t activations = 0;       ///< personality swaps applied
  std::uint64_t activation_skips = 0;  ///< activate() of the active design
  std::uint64_t delta_bytes = 0;       ///< reconfig bytes actually written
  std::uint64_t full_bytes = 0;        ///< full-bitstream bytes those swaps
                                       ///< would have cost
  std::uint64_t jobs_submitted = 0;  ///< accepted by submit()
  std::uint64_t jobs_completed = 0;  ///< finished OK
  std::uint64_t jobs_failed = 0;     ///< finished with a non-OK status
  std::uint64_t jobs_canceled = 0;   ///< withdrawn before execution
  /// Jobs whose deadline had expired at dispatch: completed with
  /// kDeadlineExceeded without running (not counted in jobs_failed).
  std::uint64_t jobs_expired = 0;
  std::uint64_t batched_jobs = 0;    ///< ran without a personality swap
  std::uint64_t vectors_run = 0;     ///< stimulus vectors evaluated OK
  /// Compiled-engine kernel passes that took the two-valued single-plane
  /// fast path across all of this device's jobs (see
  /// platform::ExecutorStats::fast_passes).
  std::uint64_t fast_passes = 0;
  /// Compiled-engine kernel passes that ran the full two-plane kernel.
  std::uint64_t slow_passes = 0;
  /// Clock cycles executed by clocked jobs' compiled kernels (see
  /// platform::ExecutorStats::cycles_run).
  std::uint64_t cycles_run = 0;
  /// Register captures committed at clock edges by clocked jobs.
  std::uint64_t state_commits = 0;
  /// Compiled sequential cycles that rode the single-plane fast path.
  std::uint64_t fast_cycle_passes = 0;
  /// Kernel passes served by JIT-generated native code across this
  /// device's jobs (see platform::ExecutorStats::jit_passes).
  std::uint64_t jit_passes = 0;
  /// JIT kernel builds that invoked the host compiler (disk-cache misses).
  std::uint64_t jit_compiles = 0;
  /// JIT kernel builds satisfied from the shared disk cache.
  std::uint64_t jit_cache_hits = 0;
  /// Jobs that wanted the JIT but were served by another engine (kernel
  /// still building, or its build failed).
  std::uint64_t jit_fallbacks = 0;
};

/// One polymorphic array under runtime control: designs are made resident
/// (load), exactly one is active on the fabric at a time (activate, by
/// bitstream delta), and batches of stimulus vectors run asynchronously
/// (submit) through a per-device dispatcher.  Every public method is
/// thread-safe; see the file comment for the scheduling and lifetime
/// contract, and docs/scheduling.md for the queue policy.
class Device {
 public:
  /// A device over a rows x cols array, initially blank (no personality).
  /// Fails with kInvalidArgument for dimensions the fabric rejects or an
  /// options.max_batch_run < 1.
  [[nodiscard]] static Result<Device> create(int rows, int cols,
                                             DeviceOptions options = {});

  /// Moved-from devices may only be destroyed or assigned to.
  Device(Device&&) noexcept;
  /// Shuts down the overwritten device (cancels its queued jobs, joins its
  /// dispatcher) before taking over the moved-in one.
  Device& operator=(Device&&) noexcept;
  /// Cancels still-queued jobs, finishes the in-flight one, joins the
  /// dispatcher.  Job handles stay valid (and terminal) afterwards.
  ~Device();

  /// Array rows (fixed at creation).
  [[nodiscard]] int rows() const noexcept;
  /// Array columns (fixed at creation).
  [[nodiscard]] int cols() const noexcept;

  /// Make a compiled design resident under `name` (non-empty; "" is
  /// reserved for the blank power-on personality).  Designs smaller than
  /// the array are re-targeted onto it (platform::pad_to); designs that do
  /// not fit fail with kResourceExhausted.  Loading content already
  /// resident under another name aliases it instead of rebuilding
  /// (content-hash dedupe); re-loading the same content under the same name
  /// is idempotent.  A name may never be rebound to different content.
  [[nodiscard]] Status load(std::string name,
                            const platform::CompiledDesign& design);

  /// Make every configuration view of a multi-mode polymorphic design
  /// (Compiler::compile_poly) resident at once: mode m loads under
  /// poly_view_name(name, m), each through the ordinary load() path (same
  /// padding, dedupe, and no-rebinding rules).  `name` must not contain
  /// "@mode" (reserved for the derived keys).  After this,
  /// RunOptions::mode on submit routes to the matching view, and
  /// open_poly_session hands out the mode-aware Session (the sweep_modes
  /// path).  A failure partway leaves earlier views resident — harmless
  /// (residency is idempotent), but the name does not answer mode routing
  /// until a later load_poly succeeds.
  [[nodiscard]] Status load_poly(std::string name,
                                 const platform::PolyDesign& design);

  /// True when `name` names a resident design (aliases included).
  [[nodiscard]] bool resident(std::string_view name) const;
  /// Names of all resident designs (aliases included), sorted.
  [[nodiscard]] std::vector<std::string> designs() const;

  /// Environment modes `name` answers through submit-time mode routing:
  /// the library's mode count for a load_poly design, 1 for an ordinary
  /// resident design (only mode 0 exists), 0 when the name is unknown.
  [[nodiscard]] std::size_t design_modes(std::string_view name) const;

  /// Swap the array to `name`'s personality via partial reconfiguration.
  /// No-op (counted as a skip) when already active.  Blocks while a job is
  /// mid-flight — the personality is pinned for the duration of each job.
  [[nodiscard]] Status activate(std::string_view name);

  /// Name of the active design ("" while the array is blank).  Lock-light
  /// snapshot: it reflects the most recently *applied* personality and never
  /// blocks on an in-flight job (the dispatcher publishes each swap as it
  /// pins the fabric).
  [[nodiscard]] std::string active() const;

  /// True when `name` resolves to the resident design whose personality is
  /// on the array right now.  Alias-aware (two names for deduped identical
  /// content match the same personality) and non-blocking, which is what
  /// makes it usable as a scheduler affinity probe — see rt::DevicePool.
  [[nodiscard]] bool active_matches(std::string_view name) const;

  /// Jobs accepted but not yet retired (queued + in flight).  Snapshot
  /// load hint for schedulers; see JobQueue::pending for the caveat.  A
  /// finishing job's waiters may wake an instant before it retires, so
  /// drain() — not a wait() on the last job — is the strict idle barrier.
  [[nodiscard]] std::size_t queue_depth() const;

  /// Still-queued (not yet dispatched) jobs bound to `name` — per-design
  /// introspection for tests and tooling (rt::DevicePool routes on the
  /// device-wide queue_depth(), not this).
  [[nodiscard]] std::size_t queued(std::string_view name) const;

  /// True when no job is queued or in flight (queue_depth() == 0) —
  /// introspection convenience; see the drain() caveat on queue_depth().
  [[nodiscard]] bool idle() const;

  /// A snapshot of the resident configuration of the physical array (what
  /// a controller would read back), taken under the personality lock so it
  /// is never half-reconfigured; byte-compare its re-encoding against a
  /// design's bitstream to check a personality landed exactly.
  [[nodiscard]] core::Fabric personality() const;

  /// Enqueue a batch of stimulus vectors against a resident design.  With
  /// SubmitOptions::cycles == 0 the vectors are independent combinational
  /// stimuli; with cycles > 0 they are stream-major clocked streams (see
  /// SubmitOptions::cycles).  Fails fast (before queueing) with kNotFound
  /// for an unknown design, kFailedPrecondition for a sequential design
  /// submitted without cycles, kInvalidArgument on a vector-width mismatch
  /// or a batch that does not divide into whole streams.  The returned Job
  /// completes asynchronously;
  /// options carry the run knobs plus the scheduling class and optional
  /// deadline (expired at dispatch → the job completes with
  /// kDeadlineExceeded without running).
  ///
  /// Polymorphic designs: `options.run.mode` selects which configuration
  /// view the job runs — the submit resolves it to the derived resident
  /// design (poly_view_name) and the job itself runs mode-blind, so the
  /// queue batches and the fabric reconfigures per *view*.  kInvalidArgument
  /// when mode != 0 on a design that was not load_poly'ed, kOutOfRange for
  /// a mode the design does not have, and kUnimplemented for
  /// run.sweep_modes (a swept batch needs the mode-major compiled engine —
  /// use open_poly_session(), which serves it synchronously).
  [[nodiscard]] Result<Job> submit(std::string_view name,
                                   std::vector<InputVector> vectors,
                                   const SubmitOptions& options = {});

  /// Convenience overload: run knobs only (batch class, no deadline).
  [[nodiscard]] Result<Job> submit(std::string_view name,
                                   std::vector<InputVector> vectors,
                                   const RunOptions& run);

  /// Synchronous convenience: submit + wait.
  [[nodiscard]] Result<std::vector<BitVector>> run_sync(
      std::string_view name, std::vector<InputVector> vectors,
      const SubmitOptions& options = {});

  /// Convenience overload: run knobs only (batch class, no deadline).
  [[nodiscard]] Result<std::vector<BitVector>> run_sync(
      std::string_view name, std::vector<InputVector> vectors,
      const RunOptions& run);

  /// Block until every job submitted so far has left the queue and the
  /// dispatcher is idle.
  void drain();

  /// An interactive synchronous Session over a resident design (its own
  /// simulator; independent of the job path and the array personality).
  [[nodiscard]] Result<platform::Session> open_session(
      std::string_view name) const;

  /// A mode-aware Session over a load_poly design (Session::load_poly of
  /// the registered multi-mode source): per-mode interactive driving plus
  /// the RunOptions::sweep_modes mode-major batch the job path does not
  /// serve.  kNotFound when `name` was not registered with load_poly.
  [[nodiscard]] Result<platform::Session> open_poly_session(
      std::string_view name) const;

  /// Install (or replace) a scripted fault-injection plan (test/soak
  /// hook; see rt::FaultPlan).  Triggers count dispatched jobs from zero
  /// again, and a previously injected kDeath is revived.  Installing a
  /// plan before submitting guarantees the first submitted job observes
  /// ordinal 1; jobs already in flight race the swap.  When no plan is
  /// installed the dispatch path pays one relaxed atomic load per job.
  void install_fault_plan(FaultPlan plan);

  /// Remove the fault plan: the device behaves like a healthy device again
  /// (a kDeath injected by the old plan is revived).
  void clear_fault_plan();

  /// Snapshot of the cumulative runtime counters.
  [[nodiscard]] DeviceStats stats() const;

 private:
  struct Impl;
  explicit Device(std::unique_ptr<Impl> impl);
  /// Cancel queued jobs and join the dispatcher (destructor body; also
  /// runs on the overwritten device in move-assignment).
  void shutdown_impl();
  std::unique_ptr<Impl> impl_;
};

}  // namespace pp::rt
