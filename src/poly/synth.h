// Multi-mode synthesis: compile one target function *per environment mode*
// into a single netlist of polymorphic + ordinary cells.
//
// The pass follows the bi-decomposition approach of Li, Luo, Yue & Wang
// (arXiv 1709.03067): a mode-varying target tuple F = (F_0, ..., F_{M-1})
// is split as F_m(x) = op_m(g(x), h(x)) around a 2-input polymorphic gate
// (op_0, ..., op_{M-1}) with *ordinary* cones g and h, found pointwise —
// for each input row the pair (g, h) must land in the constraint set
// S_x = {(a,b) : forall m, op_m(a,b) = F_m(x)}.  When no library gate
// admits a pointwise solution the pass falls back to Shannon expansion on
// a live variable and recurses on the cofactor tuples; mode-invariant
// targets drop into ordinary two-level synthesis (map::minimize), and
// per-mode constants are realized by polymorphic gates fed constants.
#pragma once

#include <string>
#include <vector>

#include "map/truth_table.h"
#include "poly/netlist.h"
#include "util/status.h"

namespace pp::poly {

/// A multi-mode specification: one target truth table per environment mode
/// over a shared input set.  All tables must have the same variable count
/// (1..map::kMaxVars).
struct PolySpec {
  /// Target function per mode (size = the library's mode count).
  std::vector<map::TruthTable> modes;
  /// Optional input names; defaults to x0, x1, ... when empty.
  std::vector<std::string> input_names;
  /// Name of the single output node.
  std::string output_name = "f";
};

/// Compile `spec` into a PolyNetlist over `library`: in environment mode m
/// the result computes spec.modes[m] exactly.
///
/// Fails with kInvalidArgument when the spec is malformed (mismatched
/// variable counts, mode count differing from the library's) or when the
/// library cannot realize a required polymorphic constant — the
/// characteristic failure of a polymorphically incomplete library (check
/// with poly::is_complete first for an up-front verdict).
[[nodiscard]] Result<PolyNetlist> synthesize(const PolySpec& spec,
                                             const GateLibrary& library);

/// Exhaustively verify `netlist` against `spec`: every configuration view
/// must match the mode's target on all 2^n input rows.  Returns OK on a
/// perfect match and kInternal naming the first mismatching (mode, row)
/// otherwise.  This is the oracle the synthesis tests run on every result.
[[nodiscard]] Status validate(const PolyNetlist& netlist, const PolySpec& spec);

}  // namespace pp::poly
