#include "poly/executor.h"

#include <algorithm>
#include <utility>

namespace pp::poly {

namespace {

/// Lanes per mode per eval_modes call: one default-width kernel pass.
constexpr std::size_t kGranuleLanes =
    static_cast<std::size_t>(sim::CompiledEval::kDefaultWideWords) *
    sim::Evaluator::kBatchLanes;

}  // namespace

ModalExecutor::ModalExecutor(std::unique_ptr<Elaboration> elab,
                             sim::CompiledEval engine)
    : elab_(std::move(elab)),
      engine_(std::make_unique<sim::CompiledEval>(std::move(engine))) {}

Result<ModalExecutor> ModalExecutor::create(const PolyNetlist& netlist) {
  auto el = elaborate(netlist);
  if (!el.ok()) return el.status();
  auto elab = std::make_unique<Elaboration>(std::move(*el));
  auto engine = sim::CompiledEval::compile_modal(
      elab->circuit, elab->in_nets, elab->out_nets, elab->overrides);
  if (!engine.ok()) return engine.status();
  return ModalExecutor(std::move(elab), std::move(*engine));
}

std::size_t ModalExecutor::modes() const noexcept {
  return engine_->mode_count();
}

Result<std::vector<std::vector<bool>>> ModalExecutor::run_sweep(
    std::span<const std::vector<bool>> vectors) {
  const std::size_t nin = input_count();
  const std::size_t nout = output_count();
  const std::size_t m_count = modes();
  for (const std::vector<bool>& v : vectors)
    if (v.size() != nin)
      return Status::invalid_argument(
          "run_sweep: expected " + std::to_string(nin) +
          " input values, got " + std::to_string(v.size()));
  std::vector<std::vector<bool>> results(m_count * vectors.size(),
                                         std::vector<bool>(nout));
  std::vector<std::uint64_t> in_v, in_u, out_v, out_u;
  for (std::size_t base = 0; base < vectors.size(); base += kGranuleLanes) {
    const std::size_t lanes =
        std::min(kGranuleLanes, vectors.size() - base);
    const std::size_t wpm = (lanes + sim::Evaluator::kBatchLanes - 1) /
                            sim::Evaluator::kBatchLanes;
    in_v.assign(nin * m_count * wpm, 0);
    in_u.assign(nin * m_count * wpm, 0);
    out_v.assign(nout * m_count * wpm, 0);
    out_u.assign(nout * m_count * wpm, 0);
    for (std::size_t i = 0; i < nin; ++i) {
      // Pack mode 0's lane group, then duplicate it into the other modes
      // (a sweep evaluates the same stimulus under every environment).
      const std::size_t g0 = i * m_count * wpm;
      for (std::size_t v = 0; v < lanes; ++v)
        if (vectors[base + v][i])
          in_v[g0 + v / 64] |= std::uint64_t{1} << (v % 64);
      for (std::size_t m = 1; m < m_count; ++m)
        std::copy_n(in_v.begin() + static_cast<std::ptrdiff_t>(g0), wpm,
                    in_v.begin() + static_cast<std::ptrdiff_t>(g0 + m * wpm));
    }
    if (Status s = engine_->eval_modes(in_v, in_u, out_v, out_u, lanes);
        !s.ok())
      return s;
    for (std::size_t k = 0; k < nout; ++k)
      for (std::size_t m = 0; m < m_count; ++m)
        for (std::size_t v = 0; v < lanes; ++v) {
          const std::size_t word = (k * m_count + m) * wpm + v / 64;
          const std::uint64_t bit = std::uint64_t{1} << (v % 64);
          if (out_u[word] & bit)
            return Status::internal(
                "run_sweep: output '" + elab_->output_names[k] +
                "' settled to X in mode " + std::to_string(m));
          results[m * vectors.size() + base + v][k] =
              (out_v[word] & bit) != 0;
        }
  }
  return results;
}

}  // namespace pp::poly
