// A netlist with an environment-mode axis.
//
// `PolyNetlist` is `map::Netlist` plus polymorphic cells: a poly cell
// references a `GateLibrary` entry and therefore computes a different
// function in each environment mode.  The fabric/bitstream layers stay
// untouched — `view(mode)` lowers the whole design to the ordinary
// netlist it behaves as in that mode (each mode is a distinct
// configuration view a `platform::Compiler` can place as usual), and
// `elaborate` lowers it to a single `sim::Circuit` whose polymorphic
// gates carry per-mode kind overrides for the mode-swept compiled engine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "map/netlist.h"
#include "poly/gate.h"
#include "sim/evaluator.h"
#include "util/status.h"

namespace pp::poly {

/// One node of a PolyNetlist.  `poly >= 0` marks a polymorphic cell (an
/// index into the library); ordinary nodes carry a `map::CellKind` the
/// same way `map::NetlistCell` does.
struct PolyCell {
  int poly = -1;                                ///< library index, -1 = ordinary
  map::CellKind kind = map::CellKind::kInput;   ///< ordinary kind (poly < 0)
  std::vector<int> fanin;                       ///< fanin node indices, pin order
  std::string name;                             ///< optional display name
};

/// A combinational netlist of ordinary + polymorphic cells over a fixed
/// gate library (which fixes the environment-mode axis).  Construction
/// order is topological, like `map::Netlist`.
class PolyNetlist {
 public:
  /// An empty design over `library` (validated lazily by view/elaborate).
  explicit PolyNetlist(GateLibrary library);

  /// Declare a primary input.
  int add_input(std::string name);
  /// Add an ordinary (environment-invariant) cell.
  int add_cell(map::CellKind kind, std::vector<int> fanin,
               std::string name = {});
  /// Add a polymorphic cell computing library gate `gate_index`.
  int add_poly(int gate_index, std::vector<int> fanin, std::string name = {});
  /// Mark a node as a primary output.
  void mark_output(int cell);

  /// The gate library the design's polymorphic cells index into.
  [[nodiscard]] const GateLibrary& library() const noexcept { return library_; }
  /// Environment modes (the library's mode axis).
  [[nodiscard]] int modes() const noexcept { return library_.modes; }
  /// Number of nodes (inputs + cells), in construction order.
  [[nodiscard]] std::size_t cell_count() const noexcept { return cells_.size(); }
  /// Node `i` (throws std::out_of_range on a bad index).
  [[nodiscard]] const PolyCell& cell(int i) const { return cells_.at(static_cast<std::size_t>(i)); }
  /// Primary-input node indices, in declaration order.
  [[nodiscard]] const std::vector<int>& inputs() const noexcept { return inputs_; }
  /// Primary-output node indices, in mark_output order.
  [[nodiscard]] const std::vector<int>& outputs() const noexcept { return outputs_; }
  /// Number of polymorphic cells.
  [[nodiscard]] int poly_count() const;

  /// Structural validation: fanin ranges, arities, library consistency.
  [[nodiscard]] Status validate() const;

  /// The ordinary netlist this design behaves as in environment `mode`
  /// (cells map index-for-index; poly cells lower to their mode kind).
  [[nodiscard]] Result<map::Netlist> view(int mode) const;

 private:
  GateLibrary library_;
  std::vector<PolyCell> cells_;
  std::vector<int> inputs_;
  std::vector<int> outputs_;
};

/// A PolyNetlist lowered to one `sim::Circuit` (mode-0 gate kinds) plus
/// the per-mode gate-kind overrides that turn it into each other mode's
/// circuit — the input of `sim::CompiledEval::compile_modal` and of the
/// per-mode `EventEval` re-elaboration oracle.
struct Elaboration {
  sim::Circuit circuit;                       ///< mode-0 lowering
  std::vector<sim::NetId> in_nets;            ///< primary inputs, in order
  std::vector<sim::NetId> out_nets;           ///< observed outputs, in order
  std::vector<std::string> input_names;       ///< names of in_nets, in order
  std::vector<std::string> output_names;      ///< names of out_nets, in order
  /// overrides[m] rewrites the poly gates' kinds into mode m's circuit
  /// (overrides[0] is empty — the base circuit *is* mode 0).
  std::vector<std::vector<sim::ModeOverride>> overrides;
};

/// Lower a combinational PolyNetlist for mode-swept evaluation.  Fails
/// with kUnimplemented on kDff cells (clocked polymorphic designs run
/// per-mode through their configuration views instead) and with
/// kInvalidArgument on a structurally invalid netlist.
[[nodiscard]] Result<Elaboration> elaborate(const PolyNetlist& netlist);

}  // namespace pp::poly
