// Environment-polymorphic gates (the "polymorphic" half of the paper).
//
// A polymorphic gate computes a *different* Boolean function in each
// environment mode (VDD level, temperature band, ...): the canonical
// example is a cell that is NAND at nominal supply and NOR at a lowered
// one.  Every polymorphic cell in a fabric switches *together* — the
// environment is a single global selector — so a design with polymorphic
// cells is really M ordinary designs sharing one structure, one per mode.
//
// This header gives the model: `PolyGate` is one library cell (one
// `map::CellKind` function per mode over a fixed arity) and `GateLibrary`
// a set of them sharing a mode axis.  `is_complete` decides whether a
// library can realize *every* M-tuple of Boolean functions — the
// completeness judgment of Li, Luo, Yue & Wang (arXiv 1709.03065): a set
// that is complete in each mode separately can still be polymorphically
// incomplete (e.g. {NAND/NOR} alone realizes only (f, dual f) pairs).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "map/netlist.h"
#include "map/truth_table.h"
#include "util/status.h"

namespace pp::poly {

/// Upper bound on the environment-mode axis accepted by the subsystem.
/// Two is the paper's case (nominal/lowered VDD); the algorithms generalise
/// but the completeness closure is exponential in the mode count.
inline constexpr int kMaxModes = 4;

/// One polymorphic library cell: the same physical gate evaluates
/// `modes[m]` in environment mode m.  All mode functions share `arity`
/// input pins.  A cell whose mode functions are all equal is an ordinary
/// (environment-invariant) gate riding the same representation.
struct PolyGate {
  /// Display name, e.g. "NAND/NOR".
  std::string name;
  /// Input pin count shared by every mode function (1..map::kMaxVars).
  int arity = 2;
  /// Function per mode (size = the library's mode count).  Only logic
  /// kinds are meaningful here: kNot (arity 1) and kAnd/kOr/kNand/kNor/
  /// kXor (arity >= 2).
  std::vector<map::CellKind> modes;

  /// True when every mode computes the same function.
  [[nodiscard]] bool invariant() const;
};

/// A gate library over a fixed environment-mode axis.
struct GateLibrary {
  /// Environment modes (2..kMaxModes for a genuinely polymorphic library).
  int modes = 2;
  /// The cells; each gate's `modes` vector must have exactly `modes`
  /// entries of arity-compatible logic kinds (see `validate`).
  std::vector<PolyGate> gates;

  /// Structural validation: mode axis in range, every gate's mode vector
  /// sized `modes`, kinds legal for the gate's arity.
  [[nodiscard]] Status validate() const;
};

/// Truth-table bits of a logic `kind` at `arity` inputs: bit r is the
/// output on input row r (input pin j = bit j of r).  Rows beyond
/// 2^arity are zero.  kNot requires arity 1; kAnd/kOr/kNand/kNor/kXor
/// require arity >= 2 (kXor is parity, matching map::Netlist).
[[nodiscard]] std::uint64_t kind_truth_bits(map::CellKind kind, int arity);

/// Convenience constructors for the library cells used throughout the
/// tests, benches, and examples.
[[nodiscard]] PolyGate make_nand_nor();            ///< NAND in mode 0, NOR in mode 1
[[nodiscard]] PolyGate make_and_or();              ///< AND in mode 0, OR in mode 1
/// An ordinary gate lifted onto an M-mode axis (same function everywhere).
[[nodiscard]] PolyGate make_ordinary(map::CellKind kind, int arity, int modes);

/// The verdict of the completeness judgment, with diagnostics.
struct Completeness {
  /// True iff every M-tuple of Boolean functions is realizable by a
  /// circuit over the library (polymorphic completeness).
  bool complete = false;
  /// Human-readable justification of the verdict.
  std::string reason;
  /// Per-mode diagnosis: for mode m, the names of the Post maximal
  /// classes ("T0", "T1", "monotone", "self-dual", "affine") that *every*
  /// gate's mode-m function lies in.  Mode m on its own is a complete
  /// ordinary gate set iff this list is empty (Post's theorem).
  std::vector<std::vector<std::string>> mode_post_classes;
  /// First closure target of the decision procedure (see below): the
  /// polymorphic closure contains NAND-in-every-mode.
  bool has_diagonal_nand = false;
  /// Second closure target: the mode selector (the tuple whose mode-m
  /// component is projection m) is in the closure.
  bool has_mode_selector = false;
};

/// Decide polymorphic completeness of a gate library (arXiv 1709.03065:
/// complete in every mode *and* as mode-product functions).
///
/// The decision procedure is exact, not heuristic: a circuit over the
/// library realizes an M-tuple of n-ary functions iff that tuple is in the
/// closure of the n projections under componentwise application of the
/// library gates (the n-ary part of the generated clone), for
/// n = max(2, M).  The library is complete iff the closure contains both
///   * the diagonal NAND tuple (NAND, ..., NAND) — completeness inside
///     each mode with one common gate, and
///   * the mode selector (pi_1, ..., pi_M) — the ability to *distinguish*
///     modes, which is exactly what mode-product completeness adds;
/// sufficiency: selector applied to diagonal tuples yields any tuple.
/// The closure is enumerated breadth-first over tuples of n-ary truth
/// tables, so the judgment needs no reliance on derived shortcuts.
///
/// Fails with kInvalidArgument on a malformed library, kUnimplemented
/// beyond 3 modes (the closure space is 2^(M*2^M) tuples), and
/// kResourceExhausted if the closure budget is exceeded (not reachable
/// for 2 modes, where the whole space has 256 tuples).
[[nodiscard]] Result<Completeness> is_complete(const GateLibrary& library);

}  // namespace pp::poly
