#include "poly/synth.h"

#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace pp::poly {

namespace {

using map::CellKind;
using map::TruthTable;

/// Recursive bi-decomposition synthesizer.  All functions live as
/// row-indexed bit masks over the full 2^n input rows (n <= 6, so a
/// std::uint64_t holds any table); a mode tuple is a vector of M masks.
class Synthesizer {
 public:
  Synthesizer(const PolySpec& spec, const GateLibrary& library)
      : lib_(library),
        modes_(library.modes),
        num_vars_(spec.modes.front().num_vars()),
        rows_(1u << num_vars_),
        mask_(rows_ == 64 ? ~std::uint64_t{0}
                          : (std::uint64_t{1} << rows_) - 1),
        net_(library) {
    for (int i = 0; i < num_vars_; ++i) {
      std::string name = i < static_cast<int>(spec.input_names.size())
                             ? spec.input_names[static_cast<std::size_t>(i)]
                             : "x" + std::to_string(i);
      input_node_.push_back(net_.add_input(std::move(name)));
    }
  }

  Result<PolyNetlist> run(const PolySpec& spec) {
    std::vector<std::uint64_t> target(static_cast<std::size_t>(modes_));
    for (int m = 0; m < modes_; ++m)
      target[static_cast<std::size_t>(m)] =
          spec.modes[static_cast<std::size_t>(m)].bits() & mask_;
    auto out = build_tuple(target);
    if (!out.ok()) return out.status();
    int node = *out;
    if (!spec.output_name.empty() && net_.cell(node).name != spec.output_name)
      // Named single-input AND = a buffer carrying the spec's output name.
      node = net_.add_cell(CellKind::kAnd, {node}, spec.output_name);
    net_.mark_output(node);
    return std::move(net_);
  }

 private:
  /// Truth-table mask of input variable i over all rows.
  [[nodiscard]] std::uint64_t var_mask(int i) const {
    std::uint64_t bits = 0;
    for (std::uint32_t r = 0; r < rows_; ++r)
      if ((r >> i) & 1u) bits |= std::uint64_t{1} << r;
    return bits;
  }

  /// Node computing the ordinary (mode-invariant) function `f` in every
  /// mode.  Two-level: QM minimisation, AND per product, OR of products.
  int build_ordinary(std::uint64_t f) {
    f &= mask_;
    if (auto it = ordinary_memo_.find(f); it != ordinary_memo_.end())
      return it->second;
    int node;
    if (f == 0) {
      node = net_.add_cell(CellKind::kConst0, {});
    } else if (f == mask_) {
      node = net_.add_cell(CellKind::kConst1, {});
    } else {
      node = -1;
      for (int i = 0; i < num_vars_ && node < 0; ++i) {
        if (f == var_mask(i)) node = input_node_[static_cast<std::size_t>(i)];
      }
      if (node < 0) node = build_sop(f);
    }
    ordinary_memo_.emplace(f, node);
    return node;
  }

  int build_sop(std::uint64_t f) {
    TruthTable tt(num_vars_);
    for (std::uint32_t r = 0; r < rows_; ++r)
      tt.set(static_cast<std::uint8_t>(r), (f >> r) & 1u);
    std::vector<int> terms;
    for (const map::Implicant& imp : map::minimize(tt)) {
      std::vector<int> literals;
      for (int i = 0; i < num_vars_; ++i) {
        if (!((imp.care >> i) & 1u)) continue;
        const int in = input_node_[static_cast<std::size_t>(i)];
        literals.push_back((imp.value >> i) & 1u ? in : negate(in, i));
      }
      // A care-free implicant means f == 1 everywhere — handled before.
      terms.push_back(reduce(CellKind::kAnd, std::move(literals)));
    }
    return reduce(CellKind::kOr, std::move(terms));
  }

  /// Fold `operands` with 2-input `kind` cells (balanced tree).  Wide
  /// cells are avoided on purpose: the fabric's gates are 2-input, and
  /// the router cannot always feed a >2-input cell (two wide cells
  /// sharing three inputs already exhaust its feed-through lanes), so a
  /// synthesized netlist must never depend on them.
  int reduce(CellKind kind, std::vector<int> operands) {
    while (operands.size() > 1) {
      std::vector<int> next;
      for (std::size_t i = 0; i + 1 < operands.size(); i += 2)
        next.push_back(net_.add_cell(kind, {operands[i], operands[i + 1]}));
      if (operands.size() % 2 != 0) next.push_back(operands.back());
      operands = std::move(next);
    }
    return operands.front();
  }

  /// Memoized NOT of input i (the only inverters two-level covers need).
  int negate(int node, int i) {
    if (auto it = not_memo_.find(i); it != not_memo_.end()) return it->second;
    const int n = net_.add_cell(CellKind::kNot, {node});
    not_memo_.emplace(i, n);
    return n;
  }

  [[nodiscard]] bool is_invariant(const std::vector<std::uint64_t>& t) const {
    for (std::size_t m = 1; m < t.size(); ++m)
      if (t[m] != t[0]) return false;
    return true;
  }

  [[nodiscard]] bool is_constant_tuple(
      const std::vector<std::uint64_t>& t) const {
    for (std::uint64_t f : t)
      if (f != 0 && f != mask_) return false;
    return true;
  }

  /// Node realizing the mode tuple `t` (t[m] = function in mode m).
  Result<int> build_tuple(const std::vector<std::uint64_t>& t) {
    if (is_invariant(t)) return build_ordinary(t[0]);
    if (auto it = tuple_memo_.find(t); it != tuple_memo_.end())
      return it->second;
    Result<int> node = is_constant_tuple(t) ? build_poly_constant(t)
                                            : build_varying(t);
    if (node.ok()) tuple_memo_.emplace(t, *node);
    return node;
  }

  Result<int> build_varying(const std::vector<std::uint64_t>& t) {
    // Bi-decomposition around each 2-input polymorphic gate, plain and
    // output-negated.
    for (std::size_t gi = 0; gi < lib_.gates.size(); ++gi) {
      const PolyGate& g = lib_.gates[gi];
      if (g.arity != 2 || g.invariant()) continue;
      for (int neg = 0; neg < 2; ++neg) {
        if (auto node = try_bidecomp(t, static_cast<int>(gi), neg != 0);
            node >= 0)
          return node;
      }
    }
    return shannon(t);
  }

  /// Pointwise bi-decomposition of `t` around library gate `gi`:
  /// t[m] = op_m(g, h) (complemented when `neg`) with ordinary cones g, h.
  /// Returns the node or -1 when some row has an empty constraint set.
  int try_bidecomp(const std::vector<std::uint64_t>& t, int gi, bool neg) {
    const PolyGate& g = lib_.gates[static_cast<std::size_t>(gi)];
    std::vector<std::uint32_t> op(static_cast<std::size_t>(modes_));
    for (int m = 0; m < modes_; ++m)
      op[static_cast<std::size_t>(m)] = static_cast<std::uint32_t>(
          kind_truth_bits(g.modes[static_cast<std::size_t>(m)], 2));
    std::vector<std::uint8_t> choice(rows_);
    std::uint8_t common = 0xF;  // candidate constant pairs across all rows
    for (std::uint32_t r = 0; r < rows_; ++r) {
      std::uint8_t sat = 0;  // bit p = pair (a = p&1, b = p>>1) satisfies row
      for (std::uint8_t p = 0; p < 4; ++p) {
        bool ok = true;
        for (int m = 0; m < modes_ && ok; ++m) {
          const bool want =
              (((t[static_cast<std::size_t>(m)] >> r) & 1u) != 0) != neg;
          ok = ((op[static_cast<std::size_t>(m)] >> p) & 1u) == (want ? 1u : 0u);
        }
        if (ok) sat |= static_cast<std::uint8_t>(1u << p);
      }
      if (sat == 0) return -1;
      common &= sat;
      // Prefer equal cones (a == b) so g and h share one node via the memo.
      std::uint8_t pick = sat & 0b1001 ? (sat & 0b0001 ? 0 : 3)
                                       : (sat & 0b0010 ? 1 : 2);
      choice[r] = pick;
    }
    if (common != 0) {
      // One pair satisfies every row: both cones are constants.
      const std::uint8_t p = static_cast<std::uint8_t>(
          std::countr_zero(static_cast<unsigned>(common)));
      for (std::uint32_t r = 0; r < rows_; ++r) choice[r] = p;
    }
    std::uint64_t gf = 0, hf = 0;
    for (std::uint32_t r = 0; r < rows_; ++r) {
      if (choice[r] & 1u) gf |= std::uint64_t{1} << r;
      if (choice[r] & 2u) hf |= std::uint64_t{1} << r;
    }
    const int gn = build_ordinary(gf);
    const int hn = build_ordinary(hf);
    int node = net_.add_poly(gi, {gn, hn});
    if (neg) node = net_.add_cell(CellKind::kNot, {node});
    return node;
  }

  /// A per-mode-constant tuple, realized by a polymorphic gate fed
  /// constants (plain or through an ordinary inverter).
  Result<int> build_poly_constant(const std::vector<std::uint64_t>& t) {
    for (int neg = 0; neg < 2; ++neg) {
      for (std::size_t gi = 0; gi < lib_.gates.size(); ++gi) {
        const PolyGate& g = lib_.gates[gi];
        if (g.invariant() || g.arity > 6) continue;
        const std::uint32_t combos = 1u << g.arity;
        for (std::uint32_t v = 0; v < combos; ++v) {
          bool ok = true;
          for (int m = 0; m < modes_ && ok; ++m) {
            const bool want =
                (t[static_cast<std::size_t>(m)] == mask_) != (neg != 0);
            const std::uint64_t bits =
                kind_truth_bits(g.modes[static_cast<std::size_t>(m)], g.arity);
            ok = ((bits >> v) & 1u) == (want ? 1u : 0u);
          }
          if (!ok) continue;
          std::vector<int> fanin;
          for (int i = 0; i < g.arity; ++i)
            fanin.push_back(build_ordinary((v >> i) & 1u ? mask_ : 0));
          int node = net_.add_poly(static_cast<int>(gi), std::move(fanin));
          if (neg) node = net_.add_cell(CellKind::kNot, {node});
          return node;
        }
      }
    }
    std::string tuple;
    for (std::uint64_t f : t) tuple += f == mask_ ? '1' : '0';
    return Status::invalid_argument(
        "poly::synthesize: the library cannot realize the polymorphic "
        "constant (" + tuple + ") — the gate set is polymorphically "
        "incomplete (see poly::is_complete)");
  }

  /// Shannon expansion on a live variable; cofactor tuples recurse and an
  /// ordinary 2:1 mux (same function in every mode) recombines them.
  Result<int> shannon(const std::vector<std::uint64_t>& t) {
    int var = -1;
    for (int i = 0; i < num_vars_ && var < 0; ++i) {
      for (std::uint64_t f : t) {
        if (cofactor(f, i, true) != cofactor(f, i, false)) {
          var = i;
          break;
        }
      }
    }
    // A mode-varying tuple with no live variable is per-mode constant and
    // was handled before reaching here.
    if (var < 0)
      return Status::internal("poly::synthesize: dead-variable tuple");
    std::vector<std::uint64_t> hi(t.size()), lo(t.size());
    for (std::size_t m = 0; m < t.size(); ++m) {
      hi[m] = cofactor(t[m], var, true);
      lo[m] = cofactor(t[m], var, false);
    }
    auto hn = build_tuple(hi);
    if (!hn.ok()) return hn.status();
    auto ln = build_tuple(lo);
    if (!ln.ok()) return ln.status();
    const int sel = input_node_[static_cast<std::size_t>(var)];
    const int nsel = negate(sel, var);
    const int a = net_.add_cell(CellKind::kAnd, {sel, *hn});
    const int b = net_.add_cell(CellKind::kAnd, {nsel, *ln});
    return net_.add_cell(CellKind::kOr, {a, b});
  }

  /// The cofactor f|x_i=c, expressed over the full row space (independent
  /// of x_i).
  [[nodiscard]] std::uint64_t cofactor(std::uint64_t f, int i, bool c) const {
    std::uint64_t out = 0;
    for (std::uint32_t r = 0; r < rows_; ++r) {
      const std::uint32_t src =
          c ? (r | (1u << i)) : (r & ~(1u << i));
      if ((f >> src) & 1u) out |= std::uint64_t{1} << r;
    }
    return out;
  }

  const GateLibrary& lib_;
  int modes_;
  int num_vars_;
  std::uint32_t rows_;
  std::uint64_t mask_;
  PolyNetlist net_;
  std::vector<int> input_node_;
  std::unordered_map<std::uint64_t, int> ordinary_memo_;
  std::unordered_map<int, int> not_memo_;  // input var -> NOT node
  std::map<std::vector<std::uint64_t>, int> tuple_memo_;
};

Status check_spec(const PolySpec& spec, const GateLibrary& library) {
  if (Status s = library.validate(); !s.ok()) return s;
  if (static_cast<int>(spec.modes.size()) != library.modes)
    return Status::invalid_argument(
        "poly::synthesize: spec has " + std::to_string(spec.modes.size()) +
        " mode targets, library has " + std::to_string(library.modes) +
        " modes");
  const int n = spec.modes.front().num_vars();
  for (const TruthTable& tt : spec.modes)
    if (tt.num_vars() != n)
      return Status::invalid_argument(
          "poly::synthesize: mode targets disagree on variable count");
  return Status();
}

}  // namespace

Result<PolyNetlist> synthesize(const PolySpec& spec,
                               const GateLibrary& library) {
  if (Status s = check_spec(spec, library); !s.ok()) return s;
  Synthesizer synth(spec, library);
  auto net = synth.run(spec);
  if (!net.ok()) return net.status();
  if (Status s = validate(*net, spec); !s.ok()) return s;
  return net;
}

Status validate(const PolyNetlist& netlist, const PolySpec& spec) {
  if (netlist.outputs().size() != 1)
    return Status::internal("poly::validate: expected a single output");
  const int n = spec.modes.front().num_vars();
  for (int m = 0; m < static_cast<int>(spec.modes.size()); ++m) {
    auto view = netlist.view(m);
    if (!view.ok()) return view.status();
    for (std::uint32_t r = 0; r < (1u << n); ++r) {
      std::vector<bool> in(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) in[static_cast<std::size_t>(i)] = (r >> i) & 1u;
      const std::vector<bool> out = view->evaluate(in);
      const bool want = spec.modes[static_cast<std::size_t>(m)].eval(
          static_cast<std::uint8_t>(r));
      if (out.front() != want)
        return Status::internal(
            "poly::validate: mode " + std::to_string(m) + " row " +
            std::to_string(r) + ": netlist computes " +
            std::to_string(out.front()) + ", spec wants " +
            std::to_string(want));
    }
  }
  return Status();
}

}  // namespace pp::poly
