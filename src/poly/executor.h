// poly::ModalExecutor — mode-swept batch evaluation of a polymorphic
// netlist: one engine, one compile, every environment mode answered in a
// single pass.
//
// The executor elaborates the netlist once (shared structure, per-mode
// gate-kind overrides), compiles a mode-swept sim::CompiledEval
// (`compile_modal`), and packs stimulus into the engine's mode-major lane
// groups so that a batch of V vectors yields all M modes' results in one
// sweep — the paper's polymorphic value proposition (the environment *is*
// the mode selector; no reconfiguration between modes) made concrete as a
// batch API.  platform::Session::run_vectors routes
// `RunOptions::sweep_modes` here.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "poly/netlist.h"
#include "sim/evaluator.h"
#include "util/status.h"

namespace pp::poly {

/// The mode-swept batch engine over one combinational PolyNetlist.  Not
/// synchronized: callers serialize run_sweep calls (same contract as
/// platform::BatchExecutor).
class ModalExecutor {
 public:
  /// Elaborate and compile `netlist` for sweeping.  Fails like
  /// poly::elaborate (kUnimplemented for clocked designs) and like
  /// sim::CompiledEval::compile_modal.
  [[nodiscard]] static Result<ModalExecutor> create(const PolyNetlist& netlist);

  /// Environment modes the engine sweeps.
  [[nodiscard]] std::size_t modes() const noexcept;
  /// Stimulus vector width (netlist input order).
  [[nodiscard]] std::size_t input_count() const noexcept {
    return elab_->in_nets.size();
  }
  /// Result vector width (netlist output order).
  [[nodiscard]] std::size_t output_count() const noexcept {
    return elab_->out_nets.size();
  }
  /// Input names in stimulus order.
  [[nodiscard]] const std::vector<std::string>& input_names() const noexcept {
    return elab_->input_names;
  }
  /// Output names in result order.
  [[nodiscard]] const std::vector<std::string>& output_names() const noexcept {
    return elab_->output_names;
  }

  /// Evaluate every vector under *every* environment mode in swept
  /// granules.  Results are mode-major: mode m's outputs for vector v land
  /// at index `m * vectors.size() + v`.  Fails with kInvalidArgument on a
  /// ragged vector and kInternal when an output settles to X (matching
  /// BatchExecutor's binary-results contract).
  [[nodiscard]] Result<std::vector<std::vector<bool>>> run_sweep(
      std::span<const std::vector<bool>> vectors);

 private:
  ModalExecutor(std::unique_ptr<Elaboration> elab, sim::CompiledEval engine);

  /// Heap-held so the engine's circuit reference survives executor moves.
  std::unique_ptr<Elaboration> elab_;
  std::unique_ptr<sim::CompiledEval> engine_;
};

}  // namespace pp::poly
