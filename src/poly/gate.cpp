#include "poly/gate.h"

#include <algorithm>
#include <array>
#include <bit>
#include <deque>

namespace pp::poly {

namespace {

/// True for kinds a PolyGate mode slot may carry at the given arity.
bool legal_mode_kind(map::CellKind kind, int arity) {
  switch (kind) {
    case map::CellKind::kNot:
      return arity == 1;
    case map::CellKind::kAnd:
    case map::CellKind::kOr:
    case map::CellKind::kNand:
    case map::CellKind::kNor:
    case map::CellKind::kXor:
      return arity >= 2;
    default:
      return false;
  }
}

const char* kind_name(map::CellKind kind) {
  switch (kind) {
    case map::CellKind::kNot: return "NOT";
    case map::CellKind::kAnd: return "AND";
    case map::CellKind::kOr: return "OR";
    case map::CellKind::kNand: return "NAND";
    case map::CellKind::kNor: return "NOR";
    case map::CellKind::kXor: return "XOR";
    default: return "?";
  }
}

}  // namespace

bool PolyGate::invariant() const {
  return std::all_of(modes.begin(), modes.end(),
                     [&](map::CellKind k) { return k == modes.front(); });
}

Status GateLibrary::validate() const {
  if (modes < 1 || modes > kMaxModes)
    return Status::invalid_argument(
        "GateLibrary: mode count " + std::to_string(modes) +
        " outside 1.." + std::to_string(kMaxModes));
  if (gates.empty())
    return Status::invalid_argument("GateLibrary: no gates");
  for (const PolyGate& g : gates) {
    if (g.arity < 1 || g.arity > map::kMaxVars)
      return Status::invalid_argument("GateLibrary: gate '" + g.name +
                                      "' arity outside 1.." +
                                      std::to_string(map::kMaxVars));
    if (static_cast<int>(g.modes.size()) != modes)
      return Status::invalid_argument(
          "GateLibrary: gate '" + g.name + "' has " +
          std::to_string(g.modes.size()) + " mode functions, library has " +
          std::to_string(modes) + " modes");
    for (map::CellKind k : g.modes)
      if (!legal_mode_kind(k, g.arity))
        return Status::invalid_argument(
            "GateLibrary: gate '" + g.name + "': " + kind_name(k) +
            " is not a legal mode function at arity " +
            std::to_string(g.arity));
  }
  return Status();
}

std::uint64_t kind_truth_bits(map::CellKind kind, int arity) {
  const int rows = 1 << arity;
  std::uint64_t bits = 0;
  for (int r = 0; r < rows; ++r) {
    bool out = false;
    switch (kind) {
      case map::CellKind::kNot:
        out = (r & 1) == 0;
        break;
      case map::CellKind::kAnd:
        out = r == rows - 1;
        break;
      case map::CellKind::kOr:
        out = r != 0;
        break;
      case map::CellKind::kNand:
        out = r != rows - 1;
        break;
      case map::CellKind::kNor:
        out = r == 0;
        break;
      case map::CellKind::kXor:
        out = (std::popcount(static_cast<unsigned>(r)) & 1) != 0;
        break;
      default:
        out = false;
        break;
    }
    if (out) bits |= std::uint64_t{1} << r;
  }
  return bits;
}

PolyGate make_nand_nor() {
  return {"NAND/NOR", 2, {map::CellKind::kNand, map::CellKind::kNor}};
}

PolyGate make_and_or() {
  return {"AND/OR", 2, {map::CellKind::kAnd, map::CellKind::kOr}};
}

PolyGate make_ordinary(map::CellKind kind, int arity, int modes) {
  return {std::string(kind_name(kind)), arity,
          std::vector<map::CellKind>(static_cast<std::size_t>(modes), kind)};
}

namespace {

// ---- Post maximal-class diagnostics ------------------------------------
//
// An *ordinary* gate set is complete iff for each of Post's five maximal
// clones some gate escapes it.  Per mode this gives the first half of the
// 1709.03065 judgment and, on failure, a named witness class.

bool preserves_t0(std::uint64_t bits, int /*arity*/) { return (bits & 1) == 0; }

bool preserves_t1(std::uint64_t bits, int arity) {
  return (bits >> ((1 << arity) - 1)) & 1;
}

bool is_monotone(std::uint64_t bits, int arity) {
  const int rows = 1 << arity;
  for (int a = 0; a < rows; ++a)
    for (int j = 0; j < arity; ++j) {
      const int b = a | (1 << j);
      if (b != a && ((bits >> a) & 1) > ((bits >> b) & 1)) return false;
    }
  return true;
}

bool is_self_dual(std::uint64_t bits, int arity) {
  const int rows = 1 << arity;
  for (int a = 0; a < rows; ++a)
    if (((bits >> a) & 1) == ((bits >> (rows - 1 - a)) & 1)) return false;
  return true;
}

bool is_affine(std::uint64_t bits, int arity) {
  // ANF via in-place Mobius transform; affine = no monomial of degree > 1.
  const int rows = 1 << arity;
  std::array<std::uint8_t, 64> anf{};
  for (int r = 0; r < rows; ++r) anf[r] = (bits >> r) & 1;
  for (int j = 0; j < arity; ++j)
    for (int r = 0; r < rows; ++r)
      if (r & (1 << j)) anf[r] ^= anf[r ^ (1 << j)];
  for (int r = 0; r < rows; ++r)
    if (anf[r] && std::popcount(static_cast<unsigned>(r)) > 1) return false;
  return true;
}

// ---- The closure decision procedure ------------------------------------
//
// Elements are M-tuples of n-ary truth tables (n = max(2, M)), keyed by
// concatenating the M tables' 2^n bits.  The closure starts from the n
// projections (as diagonal tuples) and applies every library gate
// componentwise until no new tuple appears or both targets are found.

struct Closure {
  int modes;
  int n;     // arity of the enumerated clone part
  int rows;  // 2^n

  [[nodiscard]] std::uint64_t key(const std::vector<std::uint32_t>& t) const {
    std::uint64_t k = 0;
    for (int m = 0; m < modes; ++m)
      k |= static_cast<std::uint64_t>(t[m]) << (m * rows);
    return k;
  }
};

}  // namespace

Result<Completeness> is_complete(const GateLibrary& library) {
  if (Status s = library.validate(); !s.ok()) return s;
  const int modes = library.modes;
  if (modes > 3)
    return Status::unimplemented(
        "is_complete: closure enumeration supports at most 3 modes (the "
        "tuple space is 2^(M*2^max(2,M)))");

  Completeness out;

  // Per-mode Post diagnosis.
  out.mode_post_classes.resize(static_cast<std::size_t>(modes));
  bool every_mode_complete = true;
  for (int m = 0; m < modes; ++m) {
    bool all_t0 = true, all_t1 = true, all_mono = true, all_sd = true,
         all_aff = true;
    for (const PolyGate& g : library.gates) {
      const std::uint64_t bits = kind_truth_bits(g.modes[m], g.arity);
      all_t0 &= preserves_t0(bits, g.arity);
      all_t1 &= preserves_t1(bits, g.arity);
      all_mono &= is_monotone(bits, g.arity);
      all_sd &= is_self_dual(bits, g.arity);
      all_aff &= is_affine(bits, g.arity);
    }
    auto& classes = out.mode_post_classes[static_cast<std::size_t>(m)];
    if (all_t0) classes.emplace_back("T0");
    if (all_t1) classes.emplace_back("T1");
    if (all_mono) classes.emplace_back("monotone");
    if (all_sd) classes.emplace_back("self-dual");
    if (all_aff) classes.emplace_back("affine");
    if (!classes.empty()) {
      every_mode_complete = false;
      if (out.reason.empty())
        out.reason = "mode " + std::to_string(m) +
                     " is not complete on its own: every gate preserves " +
                     classes.front();
    }
  }

  // Closure over M-tuples of n-ary functions.
  Closure c;
  c.modes = modes;
  c.n = std::max(2, modes);
  c.rows = 1 << c.n;

  // Targets: the diagonal NAND tuple and the mode selector.
  std::uint32_t nand_table = 0;
  for (int r = 0; r < c.rows; ++r)
    if ((r & 3) != 3) nand_table |= std::uint32_t{1} << r;
  std::vector<std::uint32_t> proj(static_cast<std::size_t>(c.n));
  for (int j = 0; j < c.n; ++j) {
    std::uint32_t t = 0;
    for (int r = 0; r < c.rows; ++r)
      if (r & (1 << j)) t |= std::uint32_t{1} << r;
    proj[static_cast<std::size_t>(j)] = t;
  }
  const std::uint64_t target_nand =
      c.key(std::vector<std::uint32_t>(static_cast<std::size_t>(modes),
                                       nand_table));
  std::vector<std::uint32_t> selector(static_cast<std::size_t>(modes));
  for (int m = 0; m < modes; ++m)
    selector[static_cast<std::size_t>(m)] = proj[static_cast<std::size_t>(m)];
  const std::uint64_t target_selector = c.key(selector);

  // Pre-expand every gate's per-mode truth bits.
  struct GateBits {
    int arity;
    std::vector<std::uint64_t> bits;  // per mode
  };
  std::vector<GateBits> gate_bits;
  gate_bits.reserve(library.gates.size());
  for (const PolyGate& g : library.gates) {
    GateBits gb;
    gb.arity = g.arity;
    for (map::CellKind k : g.modes)
      gb.bits.push_back(kind_truth_bits(k, g.arity));
    gate_bits.push_back(std::move(gb));
  }

  // Dense membership bitmap (2 modes: 256 bits; 3 modes: 2^24 bits = 2 MB)
  // plus the elements themselves for enumeration.
  const std::uint64_t space =
      std::uint64_t{1} << (modes * c.rows);
  std::vector<bool> seen(static_cast<std::size_t>(space), false);
  std::vector<std::vector<std::uint32_t>> elems;
  std::deque<std::size_t> work;  // indexes into elems not yet expanded

  const auto add = [&](const std::vector<std::uint32_t>& t) {
    const std::uint64_t k = c.key(t);
    if (seen[static_cast<std::size_t>(k)]) return;
    seen[static_cast<std::size_t>(k)] = true;
    elems.push_back(t);
    work.push_back(elems.size() - 1);
    if (k == target_nand) out.has_diagonal_nand = true;
    if (k == target_selector) out.has_mode_selector = true;
  };

  for (int j = 0; j < c.n; ++j)
    add(std::vector<std::uint32_t>(static_cast<std::size_t>(modes),
                                   proj[static_cast<std::size_t>(j)]));

  // Budget: generous for 3 modes, unreachable for 2 (whole space is 256).
  constexpr std::size_t kMaxElems = std::size_t{1} << 22;
  constexpr std::uint64_t kMaxApplications = 400'000'000;
  std::uint64_t applications = 0;

  std::vector<std::uint32_t> result(static_cast<std::size_t>(modes));
  std::vector<const std::vector<std::uint32_t>*> args;
  // Semi-naive expansion: when an element is popped, apply every gate with
  // the element in each argument slot and all previously-seen elements in
  // the others — each application tuple is visited exactly once.
  while (!work.empty() && !(out.has_diagonal_nand && out.has_mode_selector)) {
    const std::size_t ei = work.front();
    work.pop_front();
    for (const GateBits& g : gate_bits) {
      const int a = g.arity;
      // Enumerate argument tuples (i_0..i_{a-1}) where at least one slot is
      // `ei` and every slot index is <= the current element count at the
      // time ei was popped; restricting one slot to ei and the rest to the
      // full list gives each tuple at least once (duplicates are cheap —
      // `add` dedupes).
      std::vector<std::size_t> idx(static_cast<std::size_t>(a), 0);
      for (int fixed = 0; fixed < a; ++fixed) {
        std::fill(idx.begin(), idx.end(), 0);
        bool done = false;
        while (!done) {
          idx[static_cast<std::size_t>(fixed)] = ei;
          // Apply gate componentwise.
          for (int m = 0; m < modes; ++m) {
            std::uint32_t t = 0;
            for (int r = 0; r < c.rows; ++r) {
              int in_row = 0;
              for (int j = 0; j < a; ++j)
                in_row |= static_cast<int>(
                              (elems[idx[static_cast<std::size_t>(j)]]
                                    [static_cast<std::size_t>(m)] >> r) & 1u)
                          << j;
              if ((g.bits[static_cast<std::size_t>(m)] >> in_row) & 1)
                t |= std::uint32_t{1} << r;
            }
            result[static_cast<std::size_t>(m)] = t;
          }
          add(result);
          if (++applications > kMaxApplications ||
              elems.size() > kMaxElems)
            return Status::resource_exhausted(
                "is_complete: closure budget exceeded");
          if (out.has_diagonal_nand && out.has_mode_selector) {
            done = true;
            break;
          }
          // Advance the non-fixed slots odometer-style.
          int j = 0;
          for (; j < a; ++j) {
            if (j == fixed) continue;
            if (++idx[static_cast<std::size_t>(j)] < elems.size()) break;
            idx[static_cast<std::size_t>(j)] = 0;
          }
          if (j == a) done = true;
        }
        if (out.has_diagonal_nand && out.has_mode_selector) break;
      }
      if (out.has_diagonal_nand && out.has_mode_selector) break;
    }
  }

  out.complete = out.has_diagonal_nand && out.has_mode_selector;
  if (out.complete) {
    out.reason = "complete: the polymorphic closure realizes NAND in every "
                 "mode and the mode selector";
  } else if (out.reason.empty()) {
    // Every mode is complete on its own; the failure is cross-mode.
    if (!out.has_mode_selector)
      out.reason = every_mode_complete
                       ? "mode-product functions incomplete: the closure "
                         "cannot realize the mode selector (the modes cannot "
                         "be told apart by any circuit)"
                       : "mode-product functions incomplete";
    else
      out.reason = "mode-product functions incomplete: the closure cannot "
                   "realize a common complete gate in every mode";
  }
  return out;
}

}  // namespace pp::poly
