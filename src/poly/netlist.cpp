#include "poly/netlist.h"

#include <stdexcept>
#include <utility>

namespace pp::poly {

namespace {

/// Ordinary cell kinds legal in a PolyNetlist (combinational + DFF; DFFs
/// are accepted structurally but rejected by `elaborate`).
bool legal_ordinary_kind(map::CellKind kind) {
  switch (kind) {
    case map::CellKind::kConst0:
    case map::CellKind::kConst1:
    case map::CellKind::kNot:
    case map::CellKind::kAnd:
    case map::CellKind::kOr:
    case map::CellKind::kNand:
    case map::CellKind::kNor:
    case map::CellKind::kXor:
    case map::CellKind::kDff:
      return true;
    default:
      return false;
  }
}

sim::GateKind to_gate_kind(map::CellKind kind) {
  switch (kind) {
    case map::CellKind::kNot: return sim::GateKind::kNot;
    case map::CellKind::kAnd: return sim::GateKind::kAnd;
    case map::CellKind::kOr: return sim::GateKind::kOr;
    case map::CellKind::kNand: return sim::GateKind::kNand;
    case map::CellKind::kNor: return sim::GateKind::kNor;
    case map::CellKind::kXor: return sim::GateKind::kXor;
    case map::CellKind::kConst0: return sim::GateKind::kConst0;
    case map::CellKind::kConst1: return sim::GateKind::kConst1;
    default: return sim::GateKind::kBuf;  // unreachable after validate()
  }
}

}  // namespace

PolyNetlist::PolyNetlist(GateLibrary library) : library_(std::move(library)) {}

int PolyNetlist::add_input(std::string name) {
  cells_.push_back({-1, map::CellKind::kInput, {}, std::move(name)});
  inputs_.push_back(static_cast<int>(cells_.size() - 1));
  return static_cast<int>(cells_.size() - 1);
}

int PolyNetlist::add_cell(map::CellKind kind, std::vector<int> fanin,
                          std::string name) {
  if (kind == map::CellKind::kInput)
    throw std::invalid_argument("PolyNetlist: use add_input for inputs");
  for (int f : fanin)
    if (f < 0 || f >= static_cast<int>(cells_.size()))
      throw std::invalid_argument("PolyNetlist: bad fanin");
  cells_.push_back({-1, kind, std::move(fanin), std::move(name)});
  return static_cast<int>(cells_.size() - 1);
}

int PolyNetlist::add_poly(int gate_index, std::vector<int> fanin,
                          std::string name) {
  if (gate_index < 0 ||
      gate_index >= static_cast<int>(library_.gates.size()))
    throw std::invalid_argument("PolyNetlist: gate index out of range");
  for (int f : fanin)
    if (f < 0 || f >= static_cast<int>(cells_.size()))
      throw std::invalid_argument("PolyNetlist: bad fanin");
  cells_.push_back(
      {gate_index, map::CellKind::kInput, std::move(fanin), std::move(name)});
  return static_cast<int>(cells_.size() - 1);
}

void PolyNetlist::mark_output(int cell) {
  if (cell < 0 || cell >= static_cast<int>(cells_.size()))
    throw std::invalid_argument("PolyNetlist::mark_output");
  outputs_.push_back(cell);
}

int PolyNetlist::poly_count() const {
  int n = 0;
  for (const PolyCell& c : cells_)
    if (c.poly >= 0) ++n;
  return n;
}

Status PolyNetlist::validate() const {
  if (Status s = library_.validate(); !s.ok()) return s;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const PolyCell& c = cells_[i];
    if (c.poly >= 0) {
      const PolyGate& g = library_.gates[static_cast<std::size_t>(c.poly)];
      if (static_cast<int>(c.fanin.size()) != g.arity)
        return Status::invalid_argument(
            "PolyNetlist: cell " + std::to_string(i) + " feeds gate '" +
            g.name + "' (arity " + std::to_string(g.arity) + ") with " +
            std::to_string(c.fanin.size()) + " fanins");
    } else if (c.kind == map::CellKind::kInput) {
      if (!c.fanin.empty())
        return Status::invalid_argument("PolyNetlist: input with fanin");
    } else {
      if (!legal_ordinary_kind(c.kind))
        return Status::invalid_argument("PolyNetlist: illegal cell kind");
      const std::size_t want_min =
          (c.kind == map::CellKind::kConst0 || c.kind == map::CellKind::kConst1)
              ? 0
              : 1;
      if (c.kind == map::CellKind::kNot && c.fanin.size() != 1)
        return Status::invalid_argument("PolyNetlist: NOT needs 1 fanin");
      if (c.fanin.size() < want_min)
        return Status::invalid_argument("PolyNetlist: cell without fanin");
    }
  }
  if (outputs_.empty())
    return Status::invalid_argument("PolyNetlist: no outputs marked");
  return Status();
}

Result<map::Netlist> PolyNetlist::view(int mode) const {
  if (Status s = validate(); !s.ok()) return s;
  if (mode < 0 || mode >= library_.modes)
    return Status::out_of_range("PolyNetlist::view: mode " +
                                std::to_string(mode) + " outside 0.." +
                                std::to_string(library_.modes - 1));
  map::Netlist net;
  for (const PolyCell& c : cells_) {
    if (c.poly >= 0) {
      const PolyGate& g = library_.gates[static_cast<std::size_t>(c.poly)];
      net.add_cell(g.modes[static_cast<std::size_t>(mode)], c.fanin, c.name);
    } else if (c.kind == map::CellKind::kInput) {
      net.add_input(c.name);
    } else {
      net.add_cell(c.kind, c.fanin, c.name);
    }
  }
  for (int o : outputs_) net.mark_output(o);
  return net;
}

Result<Elaboration> elaborate(const PolyNetlist& netlist) {
  if (Status s = netlist.validate(); !s.ok()) return s;
  Elaboration el;
  el.overrides.resize(static_cast<std::size_t>(netlist.modes()));
  std::vector<sim::NetId> node_net(netlist.cell_count());
  int anon = 0;
  for (std::size_t i = 0; i < netlist.cell_count(); ++i) {
    const PolyCell& c = netlist.cell(static_cast<int>(i));
    std::string name =
        c.name.empty() ? "poly_n" + std::to_string(anon++) : c.name;
    const sim::NetId net = el.circuit.add_net(std::move(name));
    node_net[i] = net;
    if (c.poly >= 0) {
      const PolyGate& g =
          netlist.library().gates[static_cast<std::size_t>(c.poly)];
      std::vector<sim::NetId> ins;
      ins.reserve(c.fanin.size());
      for (int f : c.fanin) ins.push_back(node_net[static_cast<std::size_t>(f)]);
      const sim::GateId gid =
          el.circuit.add_gate(to_gate_kind(g.modes[0]), std::move(ins), net);
      for (int m = 1; m < netlist.modes(); ++m)
        if (g.modes[static_cast<std::size_t>(m)] != g.modes[0])
          el.overrides[static_cast<std::size_t>(m)].push_back(
              {gid, to_gate_kind(g.modes[static_cast<std::size_t>(m)])});
    } else if (c.kind == map::CellKind::kInput) {
      el.circuit.mark_input(net);
      el.in_nets.push_back(net);
      el.input_names.push_back(c.name);
    } else if (c.kind == map::CellKind::kDff) {
      return Status::unimplemented(
          "poly::elaborate: clocked polymorphic designs are evaluated "
          "per-mode through their configuration views, not mode-swept");
    } else if (c.kind == map::CellKind::kConst0 ||
               c.kind == map::CellKind::kConst1) {
      el.circuit.add_gate(to_gate_kind(c.kind), {}, net);
    } else {
      std::vector<sim::NetId> ins;
      ins.reserve(c.fanin.size());
      for (int f : c.fanin) ins.push_back(node_net[static_cast<std::size_t>(f)]);
      el.circuit.add_gate(to_gate_kind(c.kind), std::move(ins), net);
    }
  }
  for (int o : netlist.outputs()) {
    el.out_nets.push_back(node_net[static_cast<std::size_t>(o)]);
    const PolyCell& c = netlist.cell(o);
    el.output_names.push_back(c.name.empty() ? "out" + std::to_string(o)
                                             : c.name);
  }
  return el;
}

}  // namespace pp::poly
