// Deterministic, fast PRNG (splitmix64 seeding a xoshiro256**) used across
// tests, Monte-Carlo sweeps, and workload generators.  Determinism matters:
// every bench that prints a "paper vs measured" table must be reproducible
// run-to-run, so nothing in the library uses std::random_device.
#pragma once

#include <cstdint>
#include <limits>

namespace pp::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept {
    // splitmix64 expansion of the seed into the 4-word xoshiro state.
    std::uint64_t x = seed;
    for (auto& w : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      w = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value (xoshiro256**).
  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    __extension__ using u128 = unsigned __int128;
    const u128 m = static_cast<u128>(next_u64()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_in(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Bernoulli draw with probability p.
  bool next_bool(double p = 0.5) noexcept { return next_double() < p; }

  /// Uniform n-bit value as a mask-limited u64 (n <= 64).
  std::uint64_t next_bits(unsigned n) noexcept {
    if (n == 0) return 0;
    if (n >= 64) return next_u64();
    return next_u64() >> (64 - n);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace pp::util
