// pp::Status / pp::Result<T> — the error model of the platform layer.
//
// The seed code mixed three error styles: `std::string validate()` returns
// (empty = OK), thrown std::invalid_argument from constructors and decoders,
// and std::optional for recoverable failures.  The platform API unifies them:
// fallible operations return a Status (or a Result<T> carrying the value),
// with a machine-readable code plus a human-readable message.  The legacy
// throwing/string entry points survive as thin shims over these.
//
// Conventions:
//   * kInvalidArgument  — the caller handed us something malformed;
//   * kFailedPrecondition — the object is in a state that forbids the call;
//   * kResourceExhausted — a search ran out of fabric (rows, lines, area);
//   * kDataLoss         — a bitstream failed its integrity checks (CRC);
//   * kUnimplemented    — the construct is not (yet) mappable;
//   * kDeadlineExceeded — a job's deadline expired before it could run;
//   * kUnavailable      — the service refused admission (backpressure);
//                         retry later, nothing was queued;
//   * kInternal         — an invariant of ours broke, not the caller's fault.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace pp {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kOutOfRange,
  kNotFound,
  kResourceExhausted,
  kDataLoss,
  kUnimplemented,
  kDeadlineExceeded,
  kUnavailable,
  kInternal,
};

[[nodiscard]] const char* status_code_name(StatusCode code) noexcept;

class [[nodiscard]] Status {
 public:
  /// Default status is OK.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status invalid_argument(std::string m) {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  [[nodiscard]] static Status failed_precondition(std::string m) {
    return {StatusCode::kFailedPrecondition, std::move(m)};
  }
  [[nodiscard]] static Status out_of_range(std::string m) {
    return {StatusCode::kOutOfRange, std::move(m)};
  }
  [[nodiscard]] static Status not_found(std::string m) {
    return {StatusCode::kNotFound, std::move(m)};
  }
  [[nodiscard]] static Status resource_exhausted(std::string m) {
    return {StatusCode::kResourceExhausted, std::move(m)};
  }
  [[nodiscard]] static Status data_loss(std::string m) {
    return {StatusCode::kDataLoss, std::move(m)};
  }
  [[nodiscard]] static Status unimplemented(std::string m) {
    return {StatusCode::kUnimplemented, std::move(m)};
  }
  [[nodiscard]] static Status deadline_exceeded(std::string m) {
    return {StatusCode::kDeadlineExceeded, std::move(m)};
  }
  [[nodiscard]] static Status unavailable(std::string m) {
    return {StatusCode::kUnavailable, std::move(m)};
  }
  [[nodiscard]] static Status internal(std::string m) {
    return {StatusCode::kInternal, std::move(m)};
  }

  [[nodiscard]] bool ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "OK" or "INVALID_ARGUMENT: <message>".
  [[nodiscard]] std::string to_string() const;

  /// Legacy bridge: throw std::invalid_argument (the seed's exception type)
  /// if not OK.  Used by the deprecated shims; new code should branch on ok().
  void throw_if_error() const {
    if (!ok()) throw std::invalid_argument(to_string());
  }

  bool operator==(const Status& other) const = default;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A Status or a value.  Construction from T yields an OK result; construction
/// from a non-OK Status yields an error (an OK Status without a value is an
/// internal error — there is no "empty success").
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-*)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok())
      status_ = Status::internal("Result constructed from OK status");
  }

  [[nodiscard]] bool ok() const noexcept { return value_.has_value(); }
  [[nodiscard]] const Status& status() const noexcept { return status_; }

  /// Access the value; throws on error (legacy bridge, mirrors the seed's
  /// exception behaviour so `result.value()` is a drop-in for old calls).
  [[nodiscard]] T& value() & {
    status_.throw_if_error();
    return *value_;
  }
  [[nodiscard]] const T& value() const& {
    status_.throw_if_error();
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    status_.throw_if_error();
    return std::move(*value_);
  }

  /// Unchecked access (call only after ok()).
  [[nodiscard]] T& operator*() noexcept { return *value_; }
  [[nodiscard]] const T& operator*() const noexcept { return *value_; }
  [[nodiscard]] T* operator->() noexcept { return &*value_; }
  [[nodiscard]] const T* operator->() const noexcept { return &*value_; }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace pp
