// A small fixed-size thread pool with a blocking task queue and a
// parallel_for helper.  Benches use it for embarrassingly parallel parameter
// sweeps (Monte-Carlo defect injection, VTC grids); on single-core hosts it
// degrades gracefully to serial execution.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pp::util {

class ThreadPool {
 public:
  /// `workers == 0` picks hardware_concurrency (minimum 1).
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept { return threads_.size(); }

  /// Enqueue a task; tasks must not throw (exceptions terminate).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Run `fn(i)` for i in [0, n) across the pool, blocking until done.
/// Chunked statically: each worker gets contiguous ranges, which suits the
/// regular per-iteration cost of our sweeps.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

/// Process-wide default pool (lazily constructed).
ThreadPool& global_pool();

}  // namespace pp::util
