// ASCII table / CSV emitter used by every bench binary to print the
// figure/table reproductions in a uniform, diff-friendly format.
#pragma once

#include <cstdio>
#include <initializer_list>
#include <string>
#include <vector>

namespace pp::util {

/// Column-aligned ASCII table with an optional title, rendered to stdout or a
/// string.  Cells are strings; helpers format doubles with fixed precision.
class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  Table& header(std::vector<std::string> cols);
  Table& row(std::vector<std::string> cells);

  /// Convenience: format a double with `prec` decimals.
  static std::string num(double v, int prec = 3);
  /// Convenience: format using scientific notation.
  static std::string sci(double v, int prec = 2);
  /// Convenience: integer cell.
  static std::string num(long long v);

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::string to_csv() const;
  void print() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a section banner (used by benches to delimit experiments).
void banner(const std::string& text);

}  // namespace pp::util
