// Small numeric helpers shared by the device solvers and arch models.
#pragma once

#include <cmath>
#include <cstddef>
#include <functional>
#include <stdexcept>
#include <vector>

namespace pp::util {

/// n evenly spaced samples over [lo, hi] inclusive (n >= 2).
[[nodiscard]] inline std::vector<double> linspace(double lo, double hi,
                                                  std::size_t n) {
  if (n < 2) throw std::invalid_argument("linspace: n must be >= 2");
  std::vector<double> v(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) v[i] = lo + step * static_cast<double>(i);
  v.back() = hi;  // avoid accumulated rounding at the endpoint
  return v;
}

[[nodiscard]] inline bool approx_equal(double a, double b, double tol = 1e-9) {
  return std::fabs(a - b) <= tol * (1.0 + std::fabs(a) + std::fabs(b));
}

/// Bisection root find of f on [lo, hi]; requires sign change.  Returns the
/// midpoint after `iters` halvings (53 gives full double precision).
[[nodiscard]] inline double bisect(const std::function<double(double)>& f,
                                   double lo, double hi, int iters = 80) {
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  if ((flo > 0) == (fhi > 0))
    throw std::invalid_argument("bisect: no sign change over interval");
  for (int i = 0; i < iters; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fm = f(mid);
    if (fm == 0.0) return mid;
    if ((fm > 0) == (flo > 0)) {
      lo = mid;
      flo = fm;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

/// Classic RK4 integration of dy/dt = f(t, y) from t0 to t1 in `steps` steps.
/// Returns the trajectory including both endpoints.
[[nodiscard]] inline std::vector<double> rk4(
    const std::function<double(double, double)>& f, double y0, double t0,
    double t1, std::size_t steps) {
  std::vector<double> traj;
  traj.reserve(steps + 1);
  traj.push_back(y0);
  const double h = (t1 - t0) / static_cast<double>(steps);
  double y = y0;
  double t = t0;
  for (std::size_t i = 0; i < steps; ++i) {
    const double k1 = f(t, y);
    const double k2 = f(t + 0.5 * h, y + 0.5 * h * k1);
    const double k3 = f(t + 0.5 * h, y + 0.5 * h * k2);
    const double k4 = f(t + h, y + h * k3);
    y += h / 6.0 * (k1 + 2 * k2 + 2 * k3 + k4);
    t += h;
    traj.push_back(y);
  }
  return traj;
}

/// Linear interpolation of tabulated (x, y) samples; clamps outside range.
[[nodiscard]] inline double interp1(const std::vector<double>& xs,
                                    const std::vector<double>& ys, double x) {
  if (xs.empty() || xs.size() != ys.size())
    throw std::invalid_argument("interp1: bad tables");
  if (x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  std::size_t hi = 1;
  while (xs[hi] < x) ++hi;
  const std::size_t lo = hi - 1;
  const double t = (x - xs[lo]) / (xs[hi] - xs[lo]);
  return ys[lo] + t * (ys[hi] - ys[lo]);
}

}  // namespace pp::util
