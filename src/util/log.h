// Minimal leveled logger for the polyhw library.
//
// The library is a simulator, so logging is mostly used by benches and the
// CLI examples; the hot simulation paths never log below `warn`.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace pp::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emit one log line (thread-safe, single write to stderr).
void log_line(LogLevel level, std::string_view msg);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { log_line(level_, os_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace pp::util

#define PP_LOG_DEBUG                                                   \
  if (::pp::util::log_level() <= ::pp::util::LogLevel::kDebug)         \
  ::pp::util::detail::LogStream(::pp::util::LogLevel::kDebug)
#define PP_LOG_INFO                                                    \
  if (::pp::util::log_level() <= ::pp::util::LogLevel::kInfo)          \
  ::pp::util::detail::LogStream(::pp::util::LogLevel::kInfo)
#define PP_LOG_WARN                                                    \
  if (::pp::util::log_level() <= ::pp::util::LogLevel::kWarn)          \
  ::pp::util::detail::LogStream(::pp::util::LogLevel::kWarn)
#define PP_LOG_ERROR                                                   \
  if (::pp::util::log_level() <= ::pp::util::LogLevel::kError)         \
  ::pp::util::detail::LogStream(::pp::util::LogLevel::kError)
