#include "util/status.h"

namespace pp {

const char* status_code_name(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (ok()) return "OK";
  std::string out = status_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace pp
