#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace pp::util {

Table& Table::header(std::vector<std::string> cols) {
  header_ = std::move(cols);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

std::string Table::sci(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", prec, v);
  return buf;
}

std::string Table::num(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

std::string Table::to_string() const {
  // Compute column widths across header + rows.
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<std::size_t> width(ncols, 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      width[i] = std::max(width[i], cells[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream os;
  if (!title_.empty()) os << title_ << "\n";
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < ncols; ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      os << "| " << c << std::string(width[i] - c.size() + 1, ' ');
    }
    os << "|\n";
  };
  auto rule = [&] {
    for (std::size_t i = 0; i < ncols; ++i)
      os << "+" << std::string(width[i] + 2, '-');
    os << "+\n";
  };
  rule();
  if (!header_.empty()) {
    emit(header_);
    rule();
  }
  for (const auto& r : rows_) emit(r);
  rule();
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ",";
      os << cells[i];
    }
    os << "\n";
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void Table::print() const {
  const std::string s = to_string();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

void banner(const std::string& text) {
  std::string bar(text.size() + 4, '=');
  std::printf("\n%s\n= %s =\n%s\n", bar.c_str(), text.c_str(), bar.c_str());
  std::fflush(stdout);
}

}  // namespace pp::util
