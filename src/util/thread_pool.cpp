#include "util/thread_pool.h"

#include <algorithm>

namespace pp::util {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers = pool.worker_count();
  if (workers <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t chunk = (n + workers - 1) / workers;
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(n, begin + chunk);
    pool.submit([begin, end, &fn] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }
  pool.wait_idle();
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace pp::util
