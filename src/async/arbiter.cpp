#include "async/arbiter.h"

#include <cmath>
#include <stdexcept>

namespace pp::async {

Arbiter::Arbiter(ArbiterParams params, std::uint64_t seed)
    : p_(params), rng_(seed) {}

Arbiter::Grant Arbiter::request(int side, sim::SimTime t) {
  if (side != 0 && side != 1)
    throw std::invalid_argument("Arbiter::request: side is 0 or 1");
  last_request_[side] = t;
  if (owner_ == side) return {side, t, false};

  if (owner_ != -1) {
    // Busy: queue and grant later at release time.
    waiting_[side] = true;
    waiting_since_[side] = t;
    return {side, 0, false};  // at_ps = 0 signals "pending"
  }

  // Free: check for a near-simultaneous request from the other side.
  const int other = 1 - side;
  const sim::SimTime dt = t >= last_request_[other]
                              ? t - last_request_[other]
                              : last_request_[other] - t;
  bool metastable = false;
  sim::SimTime extra = 0;
  if (last_request_[other] != 0 && dt < p_.window_ps && owner_ == -1 &&
      waiting_[other]) {
    metastable = true;
    ++metastable_count_;
    // Exponential settling: -tau * ln(u).
    const double u = rng_.next_double();
    extra = static_cast<sim::SimTime>(-p_.tau_ps * std::log(u + 1e-18));
  }
  owner_ = side;
  waiting_[side] = false;
  return {side, t + p_.base_delay_ps + extra, metastable};
}

void Arbiter::release(int side, sim::SimTime t) {
  if (owner_ != side)
    throw std::logic_error("Arbiter::release: releasing side is not owner");
  owner_ = -1;
  const int other = 1 - side;
  if (waiting_[other]) {
    waiting_[other] = false;
    owner_ = other;
    (void)t;
  }
}

sim::NetId add_synchronizer(sim::Circuit& ckt, sim::NetId async_in,
                            sim::NetId clk, sim::SimTime ff_delay_ps) {
  const sim::NetId mid = ckt.add_net("sync_mid");
  const sim::NetId out = ckt.add_net("sync_out");
  ckt.add_gate(sim::GateKind::kDff, {async_in, clk}, mid, ff_delay_ps);
  ckt.add_gate(sim::GateKind::kDff, {mid, clk}, out, ff_delay_ps);
  return out;
}

}  // namespace pp::async
