// Sutherland micropipelines (Fig. 11) on the event simulator.
//
// Two-phase (transition) signalling: every edge on Req is a request event,
// every edge on Ack an acknowledge.  Stage control is the classic Muller-C
// chain: C_i = C(Req_{i-1} delayed, /Ack_{i+1}), with the C output doubling
// as the capture event for stage i's event-controlled storage elements and
// as Req to stage i+1 through a bundled-data matching delay.
//
// Storage is the Fig. 12 ECSE, modelled as a latch that is transparent when
// capture and pass histories agree (C == P) and opaque when a capture event
// has not yet been passed (C != P) — exactly Sutherland's capture/pass
// semantics for transition signals.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/circuit.h"
#include "sim/simulator.h"

namespace pp::async {

struct MicropipelineParams {
  int stages = 4;
  int width = 4;                 ///< data bits per token
  sim::SimTime stage_delay_ps = 40;   ///< bundled-data matching delay
  sim::SimTime celem_delay_ps = 8;
  sim::SimTime latch_delay_ps = 6;
  sim::SimTime xnor_delay_ps = 6;
  /// Capture-done (Cd) delay: acknowledges are emitted this long after the
  /// C event so the stage's ECSEs are opaque before upstream may change
  /// data — Sutherland's Cd output in Fig. 11.  Must exceed
  /// xnor_delay + latch_delay.
  sim::SimTime cd_delay_ps = 16;
};

/// Port nets of a constructed micropipeline.
struct MicropipelinePorts {
  sim::NetId req_in, ack_in;     ///< input channel (drive req_in, read ack_in)
  sim::NetId req_out, ack_out;   ///< output channel (read req_out, drive ack_out)
  std::vector<sim::NetId> data_in;
  std::vector<sim::NetId> data_out;
  std::vector<sim::NetId> stage_req;  ///< internal C outputs, for inspection
};

/// Build the pipeline into `circuit`; all external ports are marked inputs
/// where they must be driven by the environment.
MicropipelinePorts build_micropipeline(sim::Circuit& circuit,
                                       const MicropipelineParams& params);

/// ------- Test-harness driver ---------------------------------------------
/// Drives tokens through a built micropipeline with a 2-phase source and
/// sink, collecting latency/throughput and checking token conservation.
struct RunStats {
  int tokens_sent = 0;
  int tokens_received = 0;
  std::vector<std::uint64_t> received_values;
  sim::SimTime total_time_ps = 0;
  double throughput_tokens_per_ns() const {
    return total_time_ps == 0
               ? 0.0
               : 1000.0 * tokens_received / static_cast<double>(total_time_ps);
  }
};

/// Push `tokens` consecutive values (v, v+1, ...) through the pipeline.
/// `sink_delay_ps` models a slow consumer (back-pressure).  The run fails
/// (throws) if the pipeline deadlocks before delivering all tokens.
RunStats run_tokens(sim::Simulator& sim, const MicropipelinePorts& ports,
                    int width, int tokens,
                    sim::SimTime source_delay_ps = 10,
                    sim::SimTime sink_delay_ps = 10);

}  // namespace pp::async
