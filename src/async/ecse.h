// The event-controlled storage element of Fig. 12 (from Sutherland [48]).
//
// Transition semantics: the element is transparent after power-up; a
// *capture* event (any edge on C) makes it opaque, holding the current
// datum; a *pass* event (edge on P) makes it transparent again.  With
// transition signals this is exactly "transparent iff C == P", so the
// element reduces to a level latch enabled by XNOR(C, P) — the form used
// both behaviourally and in the fabric mapping below.
//
// Fig. 12's point is that the ECSE "and its implementation using
// reconfigurable blocks" are both small asynchronous state machines the
// NAND-block array supports directly; ecse_fabric() *is* that
// implementation, and the tests drive both versions with the same event
// streams and require identical behaviour.
#pragma once

#include "core/fabric.h"
#include "map/router.h"
#include "sim/circuit.h"

namespace pp::async {

struct EcsePorts {
  sim::NetId c;    ///< capture event input
  sim::NetId p;    ///< pass event input
  sim::NetId d;    ///< data input
  sim::NetId q;    ///< data output
};

/// Behavioural ECSE built from an XNOR and a latch gate.
EcsePorts build_ecse(sim::Circuit& circuit,
                     sim::SimTime xnor_delay_ps = 6,
                     sim::SimTime latch_delay_ps = 6);

/// Fabric-mapped ECSE occupying blocks (r,c)..(r,c+4):
///   (r,c)    literal generation for C and P
///   (r,c+1)  product terms CP and /C/P
///   (r,c+2)  OR row -> enable = XNOR(C,P), emitted on line 1
///   (r,c+3)  latch input stage (D arrives on its column 0)
///   (r,c+4)  latch output pair
/// Must be placed at r = 0 so the D column is an external pad.
struct EcseFabricPorts {
  map::SignalAt c, p, d;
  map::SignalAt q;
  int blocks_used = 0;
};
EcseFabricPorts ecse_fabric(core::Fabric& fabric, int r, int c);

}  // namespace pp::async
