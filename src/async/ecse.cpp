#include "async/ecse.h"

#include <stdexcept>

#include "map/macros.h"

namespace pp::async {

using core::BiasLevel;
using core::BlockConfig;
using core::ColSource;
using core::DriverCfg;
using core::LfbWhich;

EcsePorts build_ecse(sim::Circuit& ckt, sim::SimTime xnor_delay_ps,
                     sim::SimTime latch_delay_ps) {
  EcsePorts ports;
  ports.c = ckt.add_net("ecse_c");
  ports.p = ckt.add_net("ecse_p");
  ports.d = ckt.add_net("ecse_d");
  ckt.mark_input(ports.c);
  ckt.mark_input(ports.p);
  ckt.mark_input(ports.d);
  const sim::NetId en = ckt.add_net("ecse_en");
  ckt.add_gate(sim::GateKind::kXnor, {ports.c, ports.p}, en, xnor_delay_ps);
  ports.q = ckt.add_net("ecse_q");
  ckt.add_gate(sim::GateKind::kLatch, {ports.d, en}, ports.q,
               latch_delay_ps);
  return ports;
}

EcseFabricPorts ecse_fabric(core::Fabric& f, int r, int c) {
  if (r != 0)
    throw std::invalid_argument(
        "ecse_fabric: place at row 0 so the D column is an external pad");

  // Literals for C (var 0) and P (var 1).
  map::macros::literal_gen(f, r, c, 2);

  // Term block: products C.P (row 0) and /C./P (row 1); lines carry the
  // complements of the products (buffered NAND rows).
  BlockConfig& term = f.block(r, c + 1);
  term.xpoint[0][0] = BiasLevel::kActive;  // C
  term.xpoint[0][2] = BiasLevel::kActive;  // P
  term.driver[0] = DriverCfg::kBuffer;
  term.xpoint[1][1] = BiasLevel::kActive;  // /C
  term.xpoint[1][3] = BiasLevel::kActive;  // /P
  term.driver[1] = DriverCfg::kBuffer;

  // OR block: EN = CP + /C/P = XNOR(C,P), emitted on line 1 so that the
  // latch's D column (line 0) stays free for the external pad.
  BlockConfig& orb = f.block(r, c + 2);
  orb.xpoint[1][0] = BiasLevel::kActive;
  orb.xpoint[1][1] = BiasLevel::kActive;
  orb.driver[1] = DriverCfg::kBuffer;

  // Transparent latch pair: D on column 0 (external), EN on column 1.
  const auto latch = map::macros::d_latch(f, r, c + 3);

  EcseFabricPorts ports;
  ports.c = {r, c, 0};
  ports.p = {r, c, 1};
  ports.d = latch.d;   // (r, c+3, 0): north-boundary pad
  ports.q = latch.q;   // (r, c+5, 0)
  ports.blocks_used = 5;
  return ports;
}

}  // namespace pp::async
