#include "async/micropipeline.h"

#include <stdexcept>
#include <string>

namespace pp::async {

using sim::Circuit;
using sim::GateKind;
using sim::Logic;
using sim::NetId;
using sim::SimTime;

MicropipelinePorts build_micropipeline(Circuit& ckt,
                                       const MicropipelineParams& p) {
  if (p.stages < 1 || p.width < 1)
    throw std::invalid_argument("build_micropipeline: bad dimensions");

  MicropipelinePorts ports;
  ports.req_in = ckt.add_net("req_in");
  ports.ack_out = ckt.add_net("ack_out");
  ckt.mark_input(ports.req_in);
  ckt.mark_input(ports.ack_out);
  const NetId rstn = ckt.add_net("rstn");
  ckt.mark_input(rstn);
  ports.data_in.resize(p.width);
  for (int w = 0; w < p.width; ++w) {
    ports.data_in[w] = ckt.add_net("din" + std::to_string(w));
    ckt.mark_input(ports.data_in[w]);
  }

  if (p.cd_delay_ps <= p.xnor_delay_ps + p.latch_delay_ps)
    throw std::invalid_argument(
        "build_micropipeline: cd_delay must exceed xnor + latch delay "
        "(capture must complete before the acknowledge leaves the stage)");

  // Control chain.  cd[i] is the capture-done version of c[i] (the Cd
  // output in Fig. 11): all acknowledges travel through it so that a
  // stage's ECSEs are opaque before the upstream producer may move.
  std::vector<NetId> c(p.stages);      // C-element outputs
  std::vector<NetId> cd(p.stages);     // capture-done (delayed C)
  std::vector<NetId> r(p.stages);      // request into each stage
  for (int i = 0; i < p.stages; ++i) {
    c[i] = ckt.add_net("c" + std::to_string(i));
    cd[i] = ckt.add_net("cd" + std::to_string(i));
    ckt.add_gate(GateKind::kDelay, {c[i]}, cd[i], p.cd_delay_ps);
  }
  r[0] = ports.req_in;
  for (int i = 1; i < p.stages; ++i) {
    r[i] = ckt.add_net("r" + std::to_string(i));
    ckt.add_gate(GateKind::kDelay, {c[i - 1]}, r[i], p.stage_delay_ps);
  }
  ports.req_out = ckt.add_net("req_out");
  ckt.add_gate(GateKind::kDelay, {c[p.stages - 1]}, ports.req_out,
               p.stage_delay_ps);

  // pass event for stage i = downstream capture-done (or external ack).
  auto pass_of = [&](int i) {
    return i + 1 < p.stages ? cd[i + 1] : ports.ack_out;
  };
  for (int i = 0; i < p.stages; ++i) {
    const NetId nack = ckt.add_net("nack" + std::to_string(i));
    ckt.add_gate(GateKind::kNot, {pass_of(i)}, nack, 1);
    ckt.add_gate(GateKind::kCElement, {r[i], nack, rstn}, c[i],
                 p.celem_delay_ps);
  }
  ports.ack_in = cd[0];
  ports.stage_req = c;

  // Data path: per stage, per bit, an ECSE latch; EN_i = XNOR(C_i, P_i).
  std::vector<NetId> en(p.stages);
  for (int i = 0; i < p.stages; ++i) {
    en[i] = ckt.add_net("en" + std::to_string(i));
    ckt.add_gate(GateKind::kXnor, {c[i], pass_of(i)}, en[i], p.xnor_delay_ps);
  }
  std::vector<NetId> prev = ports.data_in;
  for (int i = 0; i < p.stages; ++i) {
    std::vector<NetId> cur(p.width);
    for (int w = 0; w < p.width; ++w) {
      cur[w] = ckt.add_net("d" + std::to_string(i) + "_" + std::to_string(w));
      ckt.add_gate(GateKind::kLatch, {prev[w], en[i]}, cur[w],
                   p.latch_delay_ps);
    }
    prev = std::move(cur);
  }
  ports.data_out = prev;

  // Stash the reset net as an extra stage_req entry convention would be
  // obscure; expose it via data structure instead:
  ports.stage_req.push_back(rstn);  // last element = reset net (documented)
  return ports;
}

RunStats run_tokens(sim::Simulator& sim, const MicropipelinePorts& ports,
                    int width, int tokens, SimTime source_delay_ps,
                    SimTime sink_delay_ps) {
  RunStats stats;
  const NetId rstn = ports.stage_req.back();

  // Reset epoch: all handshakes low, reset asserted then released.
  sim.set_input(rstn, Logic::k0);
  sim.set_input(ports.req_in, Logic::k0);
  sim.set_input(ports.ack_out, Logic::k0);
  for (NetId d : ports.data_in) sim.set_input(d, Logic::k0);
  sim.run_until(sim.now() + 50);
  sim.set_input(rstn, Logic::k1);
  sim.run_until(sim.now() + 50);

  bool src_req_level = false;   // current level of req_in we drive
  bool snk_ack_level = false;   // current level of ack_out we drive
  std::uint64_t next_value = 1;
  SimTime snk_ready_at = 0;     // earliest time the sink may ack
  SimTime src_ready_at = 0;

  const SimTime quantum = 5;
  const SimTime deadline = sim.now() + 2'000'000;  // 2 µs guard
  while (stats.tokens_received < tokens) {
    if (sim.now() > deadline)
      throw std::runtime_error("run_tokens: pipeline deadlock");

    // Source: channel free when ack_in has caught up with req_in.
    if (stats.tokens_sent < tokens && sim.now() >= src_ready_at &&
        sim.value(ports.ack_in) == sim::from_bool(src_req_level)) {
      for (int w = 0; w < width; ++w)
        sim.set_input(ports.data_in[w],
                      sim::from_bool((next_value >> w) & 1));
      src_req_level = !src_req_level;
      // Bundling: request follows data by the source delay.
      sim.set_input(ports.req_in, sim::from_bool(src_req_level),
                    source_delay_ps);
      ++stats.tokens_sent;
      ++next_value;
      src_ready_at = sim.now() + source_delay_ps;
    }

    // Sink: a new token is present when req_out differs from our ack level.
    if (sim.now() >= snk_ready_at &&
        sim.value(ports.req_out) == sim::from_bool(!snk_ack_level)) {
      std::uint64_t v = 0;
      for (int w = 0; w < width; ++w)
        if (sim.value(ports.data_out[w]) == Logic::k1) v |= 1ull << w;
      stats.received_values.push_back(v);
      ++stats.tokens_received;
      snk_ack_level = !snk_ack_level;
      sim.set_input(ports.ack_out, sim::from_bool(snk_ack_level),
                    sink_delay_ps);
      snk_ready_at = sim.now() + sink_delay_ps;
    }

    sim.run_until(sim.now() + quantum);
  }
  stats.total_time_ps = sim.now();
  return stats;
}

}  // namespace pp::async
