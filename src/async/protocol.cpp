#include "async/protocol.h"

#include <algorithm>

namespace pp::async {

BundledChannelChecker::BundledChannelChecker(sim::Simulator& sim,
                                             sim::NetId req, sim::NetId ack,
                                             std::vector<sim::NetId> data,
                                             sim::SimTime setup_ps)
    : req_(req), ack_(ack), data_(std::move(data)), setup_ps_(setup_ps) {
  sim.set_observer([this](sim::SimTime t, sim::NetId n, sim::Logic v) {
    on_change(t, n, v);
  });
}

void BundledChannelChecker::on_change(sim::SimTime t, sim::NetId n,
                                      sim::Logic v) {
  if (n == req_) {
    // A 2-phase event is a binary-to-binary edge; the X/Z -> 0 transition
    // during power-up/reset is initialisation, not a request.
    const sim::Logic prev = req_prev_;
    req_prev_ = v;
    if (!sim::is_binary(v)) {
      if (seen_req_) violations_.push_back({t, "request went non-binary"});
      return;
    }
    if (!sim::is_binary(prev)) return;  // initialisation edge
    if (in_flight_) {
      violations_.push_back(
          {t, "request edge while a request was already outstanding"});
    }
    if (t < last_data_t_ + setup_ps_) {
      violations_.push_back({t, "data changed inside the setup window"});
    }
    in_flight_ = true;
    seen_req_ = true;
    last_req_t_ = t;
    return;
  }
  if (n == ack_) {
    const sim::Logic prev = ack_prev_;
    ack_prev_ = v;
    if (!sim::is_binary(v)) {
      if (seen_req_) violations_.push_back({t, "acknowledge went non-binary"});
      return;
    }
    if (!sim::is_binary(prev)) return;  // initialisation edge
    if (!in_flight_) {
      violations_.push_back({t, "acknowledge without outstanding request"});
    } else {
      ++tokens_;
    }
    in_flight_ = false;
    return;
  }
  if (std::find(data_.begin(), data_.end(), n) != data_.end()) {
    last_data_t_ = t;
    if (in_flight_) {
      violations_.push_back(
          {t, "data changed while a request was outstanding (bundling)"});
    }
  }
}

}  // namespace pp::async
