// Mutual-exclusion and synchronisation primitives (§4.1: current
// programmable systems "do not include special functions such as arbiters
// and synchronizers" — a GALS fabric must provide them).
//
// The arbiter is a behavioural mutual-exclusion (mutex) element with an
// explicit metastability model: when both requests arrive within the
// metastability window, resolution takes an extra exponentially-distributed
// time (tau-scaled), mirroring the physics of a bistable settling from a
// near-balanced state.  Determinism for tests comes from the injected RNG.
#pragma once

#include <cstdint>

#include "sim/circuit.h"
#include "util/rng.h"

namespace pp::async {

struct ArbiterParams {
  sim::SimTime base_delay_ps = 10;   ///< grant delay, uncontended
  sim::SimTime window_ps = 5;        ///< metastability window
  double tau_ps = 20.0;              ///< settling time constant
};

/// Event-level mutex: feed request rise/fall events in time order, read
/// grant decisions.  At most one grant is high at any time; a released
/// grant passes to the waiting side after the base delay.
class Arbiter {
 public:
  explicit Arbiter(ArbiterParams params = {}, std::uint64_t seed = 1);

  struct Grant {
    int side;            ///< 0 or 1
    sim::SimTime at_ps;  ///< grant assertion time
    bool metastable;     ///< whether this decision hit the window
  };

  /// Side `side` raises its request at time t; returns the grant event.
  Grant request(int side, sim::SimTime t);
  /// Side `side` releases; if the other side is waiting it is granted.
  void release(int side, sim::SimTime t);

  [[nodiscard]] int owner() const noexcept { return owner_; }  ///< -1 = free
  [[nodiscard]] std::uint64_t metastable_events() const noexcept {
    return metastable_count_;
  }

 private:
  ArbiterParams p_;
  util::Rng rng_;
  int owner_ = -1;
  bool waiting_[2] = {false, false};
  sim::SimTime waiting_since_[2] = {0, 0};
  sim::SimTime last_request_[2] = {0, 0};
  std::uint64_t metastable_count_ = 0;
};

/// Two-flop synchroniser for crossing into a clock domain: returns the
/// output net; `clk` is the destination domain clock.
sim::NetId add_synchronizer(sim::Circuit& circuit, sim::NetId async_in,
                            sim::NetId clk, sim::SimTime ff_delay_ps = 5);

}  // namespace pp::async
