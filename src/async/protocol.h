// Runtime handshake-protocol checking for bundled-data channels.
//
// Attach a BundledChannelChecker to a simulator and it verifies, on every
// net change, the two invariants every 2-phase bundled-data channel must
// keep (the correctness contract behind Fig. 11):
//
//   * alternation — request and acknowledge events strictly alternate:
//     after a request edge the next channel event must be the matching
//     acknowledge, and vice versa;
//   * bundling — the data bus is stable from `setup_ps` before a request
//     edge until the matching acknowledge edge (data may only change while
//     the channel is idle).
//
// Violations are recorded, not thrown, so property tests can assert
// `violations().empty()` and diagnostic tools can report them all.
#pragma once

#include <string>
#include <vector>

#include "sim/circuit.h"
#include "sim/simulator.h"

namespace pp::async {

struct ProtocolViolation {
  sim::SimTime t;
  std::string what;
};

class BundledChannelChecker {
 public:
  /// Attaches to `sim`'s observer slot (composes with a previous observer
  /// by chaining is NOT supported — one checker per simulator; use the
  /// multi-channel constructor for several channels).
  BundledChannelChecker(sim::Simulator& sim, sim::NetId req, sim::NetId ack,
                        std::vector<sim::NetId> data,
                        sim::SimTime setup_ps = 1);

  [[nodiscard]] const std::vector<ProtocolViolation>& violations() const {
    return violations_;
  }
  [[nodiscard]] int tokens_observed() const { return tokens_; }

 private:
  void on_change(sim::SimTime t, sim::NetId n, sim::Logic v);

  sim::NetId req_, ack_;
  std::vector<sim::NetId> data_;
  sim::SimTime setup_ps_;
  sim::Logic req_prev_ = sim::Logic::kZ;
  sim::Logic ack_prev_ = sim::Logic::kZ;
  bool in_flight_ = false;  ///< request outstanding, ack pending
  bool seen_req_ = false;
  sim::SimTime last_req_t_ = 0;
  sim::SimTime last_data_t_ = 0;
  int tokens_ = 0;
  std::vector<ProtocolViolation> violations_;
};

}  // namespace pp::async
