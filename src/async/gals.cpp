#include "async/gals.h"

#include <stdexcept>

namespace pp::async {

using sim::Logic;
using sim::NetId;
using sim::SimTime;

GalsReport run_gals(const GalsParams& gp) {
  // The FIFO and its handshake live in the simulated circuit; the two
  // synchronous islands are modelled at the transaction level, aligned to
  // their clock edges (every island action happens on a rising edge of its
  // own clock, which is the GALS contract).
  sim::Circuit ckt;
  MicropipelineParams mp = gp.fifo;
  mp.stages = gp.fifo_stages;
  mp.width = gp.width;
  const MicropipelinePorts fifo = build_micropipeline(ckt, mp);
  sim::Simulator sim(ckt);

  const NetId rstn = fifo.stage_req.back();
  sim.set_input(rstn, Logic::k0);
  sim.set_input(fifo.req_in, Logic::k0);
  sim.set_input(fifo.ack_out, Logic::k0);
  for (NetId d : fifo.data_in) sim.set_input(d, Logic::k0);
  sim.run_until(100);
  sim.set_input(rstn, Logic::k1);
  sim.run_until(200);

  GalsReport rep;
  rep.ff_count_a = gp.ff_count_a;
  rep.ff_count_b = gp.ff_count_b;

  bool req_level = false;
  bool ack_level = false;
  std::uint64_t next_value = 1;
  std::uint64_t expect_value = 1;
  rep.all_values_in_order = true;

  // Two-flop synchronisers are modelled by the islands sampling the
  // handshake only on their clock edges, two edges deep.
  int ack_sync = 0;   // consecutive A-edges where ack matched req
  int req_sync = 0;   // consecutive B-edges where a new token was visible

  SimTime t_a = 200 + gp.period_a_ps;
  SimTime t_b = 200 + gp.period_b_ps;
  const SimTime deadline = 200 + 4'000'000;

  while (rep.tokens_received < gp.tokens) {
    if (std::min(t_a, t_b) > deadline)
      throw std::runtime_error("run_gals: system deadlocked");
    if (t_a <= t_b) {
      // Island A clock edge.
      sim.run_until(t_a);
      ++rep.clock_edges_a;
      if (rep.tokens_sent < gp.tokens &&
          sim.value(fifo.ack_in) == sim::from_bool(req_level)) {
        if (++ack_sync >= 2) {  // synchroniser latency: 2 edges
          for (int w = 0; w < gp.width; ++w)
            sim.set_input(fifo.data_in[w],
                          sim::from_bool((next_value >> w) & 1));
          req_level = !req_level;
          sim.set_input(fifo.req_in, sim::from_bool(req_level), 2);
          ++rep.tokens_sent;
          ++next_value;
          ack_sync = 0;
        }
      }
      t_a += gp.period_a_ps;
    } else {
      // Island B clock edge.
      sim.run_until(t_b);
      ++rep.clock_edges_b;
      if (sim.value(fifo.req_out) == sim::from_bool(!ack_level)) {
        if (++req_sync >= 2) {
          std::uint64_t v = 0;
          for (int w = 0; w < gp.width; ++w)
            if (sim.value(fifo.data_out[w]) == Logic::k1) v |= 1ull << w;
          if (v != (expect_value & ((gp.width >= 64)
                                        ? ~0ull
                                        : ((1ull << gp.width) - 1))))
            rep.all_values_in_order = false;
          ++expect_value;
          ++rep.tokens_received;
          ack_level = !ack_level;
          sim.set_input(fifo.ack_out, sim::from_bool(ack_level), 2);
          req_sync = 0;
        }
      }
      t_b += gp.period_b_ps;
    }
  }
  rep.total_time_ps = sim.now();
  // Handshake activity: transitions on every stage's C output plus the
  // channel request/acknowledge nets.
  for (std::size_t i = 0; i + 1 < fifo.stage_req.size(); ++i)
    rep.handshake_transitions += sim.toggles(fifo.stage_req[i]);
  rep.handshake_transitions += sim.toggles(fifo.req_in);
  rep.handshake_transitions += sim.toggles(fifo.req_out);
  rep.handshake_transitions += sim.toggles(fifo.ack_out);
  return rep;
}

}  // namespace pp::async
