// Globally-asynchronous locally-synchronous (GALS) system model (§4.1).
//
// Two synchronous islands with independent clock periods exchange tokens
// through a micropipeline FIFO wrapped with two-flop synchronisers — the
// "asynchronous wrapper" of Muttersbach et al. [45] that the paper argues a
// fine-grained polymorphic fabric should host.  The harness measures:
//   * delivered tokens and end-to-end throughput (correctness + rate);
//   * clock-edge counts x clock-tree load vs handshake transition counts,
//     the activity proxy behind the paper's clock-power argument.
#pragma once

#include <cstdint>
#include <vector>

#include "async/micropipeline.h"

namespace pp::async {

struct GalsParams {
  int fifo_stages = 4;
  int width = 8;
  sim::SimTime period_a_ps = 100;  ///< producer island clock period
  sim::SimTime period_b_ps = 160;  ///< consumer island clock period
  int ff_count_a = 200;  ///< clock-tree load of island A (flip-flops)
  int ff_count_b = 200;
  int tokens = 64;
  MicropipelineParams fifo{};
};

struct GalsReport {
  int tokens_sent = 0;
  int tokens_received = 0;
  bool all_values_in_order = false;
  sim::SimTime total_time_ps = 0;
  std::uint64_t clock_edges_a = 0;
  std::uint64_t clock_edges_b = 0;
  std::uint64_t handshake_transitions = 0;
  /// Activity proxies (edges x load); the sync side scales with the clock
  /// tree, the async side only with traffic — §4.1's power claim.
  [[nodiscard]] double sync_activity() const {
    return static_cast<double>(clock_edges_a) * ff_count_a +
           static_cast<double>(clock_edges_b) * ff_count_b;
  }
  [[nodiscard]] double async_activity() const {
    return static_cast<double>(handshake_transitions);
  }
  int ff_count_a = 0, ff_count_b = 0;
  [[nodiscard]] double throughput_tokens_per_ns() const {
    return total_time_ps == 0
               ? 0.0
               : 1000.0 * tokens_received /
                     static_cast<double>(total_time_ps);
  }
};

/// Build and run the two-island system; fully deterministic.
GalsReport run_gals(const GalsParams& params);

}  // namespace pp::async
