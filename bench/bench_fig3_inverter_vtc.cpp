// FIG3: the configurable-inverter voltage transfer curves of Fig. 3.
// Sweeps V_in for the paper's five back-gate biases and prints the VTC
// family plus the extracted switching points.
#include "bench_common.h"
#include "device/inverter.h"
#include "util/numeric.h"

int main(int argc, char** argv) {
  pp::bench::init(argc, argv);
  using namespace pp;
  bench::experiment_header(
      "FIG3 configurable inverter VTC",
      "back bias V_G2 moves the switching point over the full logic range; "
      "output stays high for V_G2 <= -1.5 V and low for V_G2 >= +1.5 V");

  device::ConfigurableInverter inv;
  const std::vector<double> biases{-1.5, -0.5, 0.0, +0.5, +1.5};
  const auto vins = util::linspace(0.0, 1.2, 13);

  util::Table vtc("Vout (V) vs Vin for each back bias");
  std::vector<std::string> head{"Vin"};
  for (double b : biases) head.push_back("VG2=" + util::Table::num(b, 1));
  vtc.header(head);
  for (double vin : vins) {
    std::vector<std::string> row{util::Table::num(vin, 2)};
    for (double b : biases) row.push_back(util::Table::num(inv.vout(vin, b), 3));
    vtc.row(row);
  }
  vtc.print();

  util::Table sw("Extracted switching points and regimes");
  sw.header({"VG2 (V)", "switch point (V)", "regime"});
  bool monotone = true;
  double prev = 1e9;
  for (double b : biases) {
    const double s = inv.switching_point(b);
    const char* regime =
        inv.regime(b) == device::InverterRegime::kStuckHigh  ? "stuck high"
        : inv.regime(b) == device::InverterRegime::kStuckLow ? "stuck low"
                                                             : "inverting";
    sw.row({util::Table::num(b, 1), util::Table::num(s, 3), regime});
    if (s > prev + 1e-9) monotone = false;
    prev = s;
  }
  sw.print();

  bench::verdict(monotone &&
                     inv.regime(-1.5) == device::InverterRegime::kStuckHigh &&
                     inv.regime(+1.5) == device::InverterRegime::kStuckLow &&
                     inv.regime(0.0) == device::InverterRegime::kInverting,
                 "switching point monotone in V_G2 with stuck rails at +/-1.5 V");
  return 0;
}
