// ENGINE-COMPARE: vectors/sec of the two run_vectors evaluation engines on
// the fig10 datapath (ripple-carry adder, compiled through the platform
// pipeline).  The event-driven path clones settled simulator state and
// replays one vector at a time; the bit-parallel CompiledEval engine
// levelizes the elaborated fabric and evaluates wide batches over a flat
// instruction array.  Two acceptance gates:
//  * >= 10x single-thread speedup, compiled vs event-driven (PR 2's gate);
//  * >= 2x single-thread compiled-kernel throughput (vectors*gates/s, 10k
//    vectors on the 16-bit datapath), wide SoA kernel vs the PR 2 scalar
//    64-lane kernel ({wide_words=1, two_valued=false, optimize=false}),
//    outputs bit-identical.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "map/netlist.h"
#include "platform/compiler.h"
#include "platform/session.h"
#include "sim/jit.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

double run_ms(pp::platform::Session& session,
              const std::vector<pp::platform::InputVector>& vectors,
              const pp::platform::RunOptions& options,
              std::vector<pp::platform::BitVector>& out, bool& ok) {
  const auto t0 = std::chrono::steady_clock::now();
  auto results = session.run_vectors(vectors, options);
  const auto t1 = std::chrono::steady_clock::now();
  if (!results.ok()) {
    std::printf("run_vectors: %s\n", results.status().to_string().c_str());
    ok = false;
  } else {
    out = std::move(*results);
  }
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  pp::bench::init(argc, argv);
  using namespace pp;
  bench::experiment_header(
      "ENGINE-COMPARE run_vectors: event-driven clones vs bit-parallel "
      "CompiledEval",
      "the fig10 adder datapath under batch stimulus; a purely combinational "
      "configured fabric needs no event wheel, only its settled function");

  std::printf("thread pool: %zu worker(s)\n\n",
              util::global_pool().worker_count());

  util::Table t("fig10 datapath batch throughput (2048 vectors)");
  t.header({"bits", "instrs", "levels", "event (ms)", "compiled (ms)",
            "speedup", "compiled vec/s", "sharded vec/s", "match"});

  bool all_ok = true;
  double min_speedup = 1e300;
  for (const int bits : {4, 8, 16}) {
    const auto nl = map::make_ripple_adder(bits);
    auto design = platform::compile(nl);
    if (!design.ok())
      return std::printf("%s\n", design.status().to_string().c_str()), 1;
    auto session = platform::Session::load(*design);
    if (!session.ok())
      return std::printf("%s\n", session.status().to_string().c_str()), 1;
    if (const Status s = session->compiled_engine_status(); !s.ok())
      return std::printf("compiled engine: %s\n", s.to_string().c_str()), 1;

    const std::size_t nvec = 2048;
    util::Rng rng(1000 + bits);
    std::vector<platform::InputVector> vectors(nvec);
    for (auto& v : vectors) {
      v.resize(nl.inputs().size());
      for (std::size_t j = 0; j < v.size(); ++j) v[j] = rng.next_bool();
    }

    bool ok = true;
    std::vector<platform::BitVector> ref, fast, sharded;
    const double event_ms = run_ms(
        *session, vectors,
        {.max_threads = 1, .engine = platform::Engine::kEventDriven}, ref, ok);
    const double compiled_ms = run_ms(
        *session, vectors,
        {.max_threads = 1, .engine = platform::Engine::kCompiled}, fast, ok);
    const double sharded_ms = run_ms(
        *session, vectors,
        {.max_threads = 0, .engine = platform::Engine::kCompiled}, sharded, ok);
    ok = ok && ref == fast && ref == sharded;
    all_ok = all_ok && ok;

    const double speedup = event_ms / compiled_ms;
    min_speedup = std::min(min_speedup, speedup);
    // Session caches one compiled engine per design; probe its shape via a
    // fresh compile of the elaborated circuit the session simulates.
    auto probe = sim::CompiledEval::compile(
        session->circuit(),
        [&] {
          std::vector<sim::NetId> nets;
          for (const auto& name : session->input_names())
            nets.push_back(session->net(name).value());
          return nets;
        }(),
        [&] {
          std::vector<sim::NetId> nets;
          for (const auto& name : session->output_names())
            nets.push_back(session->net(name).value());
          return nets;
        }(),
        &design->levels);
    t.row({util::Table::num(static_cast<long long>(bits)),
           util::Table::num(static_cast<long long>(
               probe.ok() ? probe->instruction_count() : 0)),
           util::Table::num(static_cast<long long>(
               probe.ok() ? probe->level_count() : 0)),
           util::Table::num(event_ms, 1), util::Table::num(compiled_ms, 2),
           util::Table::num(speedup, 1),
           util::Table::num(compiled_ms > 0 ? nvec / (compiled_ms / 1e3) : 0,
                            0),
           util::Table::num(sharded_ms > 0 ? nvec / (sharded_ms / 1e3) : 0,
                            0),
           ok ? "pass" : "FAIL"});
  }
  t.print();
  std::printf(
      "note: both engines run the same compiled fabric; the event path pays "
      "per-event heap/resolution cost, the compiled path one bitwise pass "
      "per wide batch over the levelized cone (dead fabric stripped).\n\n");

  // --- Wide SoA kernel vs the PR 2 scalar 64-lane kernel (10k vectors). ----
  // Both engines compile the same elaborated 16-bit datapath; the baseline
  // pins W=1 and disables the two-valued fast path and the program
  // optimization passes — the exact PR 2 configuration.  Packing is done
  // once outside the timed region so the measurement isolates the kernels.
  double wide_speedup = 0, jit_speedup = 0;
  bool wide_ok = false, jit_ok = false, jit_built = false;
  {
    const auto nl = map::make_ripple_adder(16);
    auto design = platform::compile(nl);
    if (!design.ok())
      return std::printf("%s\n", design.status().to_string().c_str()), 1;
    auto session = platform::Session::load(*design);
    if (!session.ok())
      return std::printf("%s\n", session.status().to_string().c_str()), 1;
    std::vector<sim::NetId> ins, outs;
    for (const auto& name : session->input_names())
      ins.push_back(session->net(name).value());
    for (const auto& name : session->output_names())
      outs.push_back(session->net(name).value());
    auto wide = sim::CompiledEval::compile(session->circuit(), ins, outs,
                                           &design->levels);
    auto base = sim::CompiledEval::compile(
        session->circuit(), ins, outs, &design->levels,
        {.wide_words = 1, .two_valued = false, .optimize = false});
    if (!wide.ok() || !base.ok())
      return std::printf("kernel compile failed\n"), 1;

    constexpr std::size_t kLanes = sim::Evaluator::kBatchLanes;
    const std::size_t nvec = 10'000;  // 156 full words + a partial tail
    const std::size_t words = (nvec + kLanes - 1) / kLanes;
    const std::size_t nin = ins.size(), nout = outs.size();
    util::Rng rng(1016);
    std::vector<std::uint64_t> in_v(nin * words), in_u(nin * words, 0);
    for (auto& w : in_v) w = rng.next_u64();
    std::vector<std::uint64_t> out_v(nout * words), out_u(nout * words);
    std::vector<std::uint64_t> ref_v(nout * words), ref_u(nout * words);

    auto time_ms = [&](auto& engine, std::vector<std::uint64_t>& ov,
                       std::vector<std::uint64_t>& ou) {
      double best = 1e300;
      bool ok = true;
      for (int rep = 0; rep < 5; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        for (int pass = 0; pass < 10; ++pass)
          ok = ok && engine.eval_wide(in_v, in_u, ov, ou, nvec).ok();
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(
            best, std::chrono::duration<double, std::milli>(t1 - t0).count() /
                      10);
      }
      return ok ? best : -1.0;
    };
    const double base_ms = time_ms(*base, ref_v, ref_u);
    const double wide_ms = time_ms(*wide, out_v, out_u);
    wide_ok = base_ms > 0 && wide_ms > 0 && out_v == ref_v && out_u == ref_u;
    wide_speedup = wide_ok ? base_ms / wide_ms : 0;
    // vectors*gates/s: normalize by the baseline's live instruction count so
    // both configurations are credited with the same logical work.
    const double gates = static_cast<double>(base->instruction_count());
    const double wide_vgps =
        wide_ms > 0 ? static_cast<double>(nvec) * gates / (wide_ms / 1e3) : 0;
    const double base_vgps =
        base_ms > 0 ? static_cast<double>(nvec) * gates / (base_ms / 1e3) : 0;
    const auto kstats = wide->kernel_stats();

    util::Table wt("wide SoA kernel vs PR 2 scalar 64-lane kernel "
                   "(16-bit datapath, 10k vectors)");
    wt.header({"kernel", "W", "instrs", "ms/10k", "vec*gates/s", "fast passes",
               "match"});
    wt.row({"scalar-64 (PR 2)", util::Table::num(1ll),
            util::Table::num(static_cast<long long>(base->instruction_count())),
            util::Table::num(base_ms, 2), util::Table::num(base_vgps, 0), "-",
            "-"});
    wt.row({"wide SoA",
            util::Table::num(static_cast<long long>(wide->preferred_words())),
            util::Table::num(static_cast<long long>(wide->instruction_count())),
            util::Table::num(wide_ms, 2), util::Table::num(wide_vgps, 0),
            util::Table::num(static_cast<long long>(kstats.fast_passes)),
            wide_ok ? "pass" : "FAIL"});
    wt.print();
    std::printf("wide kernel speedup vs 64-lane baseline: %.2fx "
                "(two-valued fast path %s)\n",
                wide_speedup,
                wide->fast_path_available() ? "available" : "unavailable");
    bench::record("wide_vs_64lane_speedup", wide_speedup);
    bench::record("wide_vec_gates_per_s", wide_vgps);
    bench::record("base64_vec_gates_per_s", base_vgps);

    // --- JIT native kernel vs the wide SoA interpreter. --------------------
    // Same program, same stimulus: JitEval emits the levelized instruction
    // stream as C, the host compiler does what the interpreter's dispatch
    // loop cannot (constant slot offsets, cross-instruction scheduling).
    // No host compiler is a skip, not a failure — that *is* the production
    // degradation path, covered by the unit tests.
    auto jit = sim::JitEval::build(*wide);
    if (!jit.ok()) {
      std::printf("\nJIT kernel: skipped (%s)\n",
                  jit.status().to_string().c_str());
    } else {
      std::vector<std::uint64_t> jit_v(nout * words), jit_u(nout * words);
      const double jit_ms = time_ms(*jit, jit_v, jit_u);
      jit_ok = jit_ms > 0 && jit_v == ref_v && jit_u == ref_u;
      jit_speedup = jit_ok && wide_ms > 0 ? wide_ms / jit_ms : 0;
      const double jit_vgps =
          jit_ms > 0 ? static_cast<double>(nvec) * gates / (jit_ms / 1e3) : 0;
      const auto jstats = jit->kernel_stats();

      util::Table jt("JIT native kernel vs wide SoA interpreter "
                     "(16-bit datapath, 10k vectors)");
      jt.header({"kernel", "W", "ms/10k", "vec*gates/s", "fast passes",
                 "cache", "match"});
      jt.row({"wide SoA interpreter",
              util::Table::num(static_cast<long long>(wide->preferred_words())),
              util::Table::num(wide_ms, 2), util::Table::num(wide_vgps, 0),
              "-", "-", "-"});
      jt.row({"jit-native",
              util::Table::num(static_cast<long long>(jit->preferred_words())),
              util::Table::num(jit_ms, 2), util::Table::num(jit_vgps, 0),
              util::Table::num(static_cast<long long>(jstats.fast_passes)),
              jit->build_info().cache_hit ? "hit" : "compile",
              jit_ok ? "pass" : "FAIL"});
      jt.print();
      std::printf("jit kernel speedup vs wide interpreter: %.2fx "
                  "(compiler: %s)\n",
                  jit_speedup, jit->build_info().compiler.c_str());
      bench::record("jit_vs_wide_speedup", jit_speedup);
      bench::record("jit_vec_gates_per_s", jit_vgps);
      jit_built = true;
    }
  }

  bench::record("min_speedup", min_speedup);
  const bool jit_gate = !jit_built || (jit_ok && jit_speedup >= 1.5);
  const bool pass = all_ok && min_speedup >= 10.0 && wide_ok &&
                    wide_speedup >= 2.0 && jit_gate;
  bench::verdict(pass,
                 "engines agree on every vector, CompiledEval is >= 10x the "
                 "event-driven path, the wide SoA kernel is >= 2x the PR 2 "
                 "scalar 64-lane kernel, and the JIT native kernel (when a "
                 "host compiler exists) is >= 1.5x the wide interpreter on "
                 "the fig10 datapath");
  return pass ? 0 : 1;
}
