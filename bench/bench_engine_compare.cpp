// ENGINE-COMPARE: vectors/sec of the two run_vectors evaluation engines on
// the fig10 datapath (ripple-carry adder, compiled through the platform
// pipeline).  The event-driven path clones settled simulator state and
// replays one vector at a time; the bit-parallel CompiledEval engine
// levelizes the elaborated fabric and evaluates 64 vectors per pass over a
// flat instruction array.  Acceptance: >= 10x single-thread speedup.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "map/netlist.h"
#include "platform/compiler.h"
#include "platform/session.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

double run_ms(pp::platform::Session& session,
              const std::vector<pp::platform::InputVector>& vectors,
              const pp::platform::RunOptions& options,
              std::vector<pp::platform::BitVector>& out, bool& ok) {
  const auto t0 = std::chrono::steady_clock::now();
  auto results = session.run_vectors(vectors, options);
  const auto t1 = std::chrono::steady_clock::now();
  if (!results.ok()) {
    std::printf("run_vectors: %s\n", results.status().to_string().c_str());
    ok = false;
  } else {
    out = std::move(*results);
  }
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  pp::bench::init(argc, argv);
  using namespace pp;
  bench::experiment_header(
      "ENGINE-COMPARE run_vectors: event-driven clones vs bit-parallel "
      "CompiledEval",
      "the fig10 adder datapath under batch stimulus; a purely combinational "
      "configured fabric needs no event wheel, only its settled function");

  std::printf("thread pool: %zu worker(s)\n\n",
              util::global_pool().worker_count());

  util::Table t("fig10 datapath batch throughput (2048 vectors)");
  t.header({"bits", "instrs", "levels", "event (ms)", "compiled (ms)",
            "speedup", "compiled vec/s", "sharded vec/s", "match"});

  bool all_ok = true;
  double min_speedup = 1e300;
  for (const int bits : {4, 8, 16}) {
    const auto nl = map::make_ripple_adder(bits);
    auto design = platform::compile(nl);
    if (!design.ok())
      return std::printf("%s\n", design.status().to_string().c_str()), 1;
    auto session = platform::Session::load(*design);
    if (!session.ok())
      return std::printf("%s\n", session.status().to_string().c_str()), 1;
    if (const Status s = session->compiled_engine_status(); !s.ok())
      return std::printf("compiled engine: %s\n", s.to_string().c_str()), 1;

    const std::size_t nvec = 2048;
    util::Rng rng(1000 + bits);
    std::vector<platform::InputVector> vectors(nvec);
    for (auto& v : vectors) {
      v.resize(nl.inputs().size());
      for (std::size_t j = 0; j < v.size(); ++j) v[j] = rng.next_bool();
    }

    bool ok = true;
    std::vector<platform::BitVector> ref, fast, sharded;
    const double event_ms = run_ms(
        *session, vectors,
        {.max_threads = 1, .engine = platform::Engine::kEventDriven}, ref, ok);
    const double compiled_ms = run_ms(
        *session, vectors,
        {.max_threads = 1, .engine = platform::Engine::kCompiled}, fast, ok);
    const double sharded_ms = run_ms(
        *session, vectors,
        {.max_threads = 0, .engine = platform::Engine::kCompiled}, sharded, ok);
    ok = ok && ref == fast && ref == sharded;
    all_ok = all_ok && ok;

    const double speedup = event_ms / compiled_ms;
    min_speedup = std::min(min_speedup, speedup);
    // Session caches one compiled engine per design; probe its shape via a
    // fresh compile of the elaborated circuit the session simulates.
    auto probe = sim::CompiledEval::compile(
        session->circuit(),
        [&] {
          std::vector<sim::NetId> nets;
          for (const auto& name : session->input_names())
            nets.push_back(session->net(name).value());
          return nets;
        }(),
        [&] {
          std::vector<sim::NetId> nets;
          for (const auto& name : session->output_names())
            nets.push_back(session->net(name).value());
          return nets;
        }(),
        &design->levels);
    t.row({util::Table::num(static_cast<long long>(bits)),
           util::Table::num(static_cast<long long>(
               probe.ok() ? probe->instruction_count() : 0)),
           util::Table::num(static_cast<long long>(
               probe.ok() ? probe->level_count() : 0)),
           util::Table::num(event_ms, 1), util::Table::num(compiled_ms, 2),
           util::Table::num(speedup, 1),
           util::Table::num(compiled_ms > 0 ? nvec / (compiled_ms / 1e3) : 0,
                            0),
           util::Table::num(sharded_ms > 0 ? nvec / (sharded_ms / 1e3) : 0,
                            0),
           ok ? "pass" : "FAIL"});
  }
  t.print();
  std::printf(
      "note: both engines run the same compiled fabric; the event path pays "
      "per-event heap/resolution cost, the compiled path one bitwise pass "
      "per 64 vectors over the levelized cone (dead fabric stripped).\n");
  bench::record("min_speedup", min_speedup);
  bench::verdict(all_ok && min_speedup >= 10.0,
                 "engines agree on every vector and CompiledEval is >= 10x "
                 "the event-driven path on the fig10 datapath");
  return all_ok && min_speedup >= 10.0 ? 0 : 1;
}
