// RT-MULTI-DESIGN: the device runtime under a mixed workload.  Three
// designs (ripple adder, parity logic, 4:1 mux) are made resident on one
// rt::Device; clients submit an adversarially interleaved stream of jobs.
// Measures (a) reconfiguration cost — partial-reconfiguration deltas vs the
// full bitstream a naive controller would rewrite per personality swap —
// and (b) job throughput with same-design batching.  Acceptance: every job
// result matches a serial Session::run_vectors reference, each activated
// personality is byte-identical to a full bitstream load, and the average
// delta writes < 50% of the full-bitstream bytes.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/bitstream.h"
#include "map/netlist.h"
#include "platform/compiler.h"
#include "platform/session.h"
#include "rt/device.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

struct Workload {
  std::string name;
  pp::map::Netlist netlist;
  pp::platform::CompiledDesign design;
  std::vector<std::vector<pp::platform::InputVector>> job_vectors;
  std::vector<std::vector<pp::platform::BitVector>> expected;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace pp;
  bench::init(argc, argv);
  bench::experiment_header(
      "RT-MULTI-DESIGN device runtime: residency, partial reconfiguration, "
      "async jobs",
      "the fabric's function is 'a link to a reconfiguration bit stream' "
      "(§4): one array serves many personalities, switching via deltas");

  std::vector<Workload> workloads;
  workloads.push_back({"adder8", map::make_ripple_adder(8), {}, {}, {}});
  workloads.push_back({"parity10", map::make_parity(10), {}, {}, {}});
  workloads.push_back({"mux4", map::make_mux4(), {}, {}, {}});

  int rows = 0, cols = 0;
  for (auto& w : workloads) {
    auto design = platform::compile(w.netlist);
    if (!design.ok())
      return std::printf("compile %s: %s\n", w.name.c_str(),
                         design.status().to_string().c_str()),
             1;
    w.design = std::move(*design);
    rows = std::max(rows, w.design.fabric.rows());
    cols = std::max(cols, w.design.fabric.cols());
  }

  auto device = rt::Device::create(rows, cols);
  if (!device.ok())
    return std::printf("%s\n", device.status().to_string().c_str()), 1;
  for (const auto& w : workloads)
    if (Status s = device->load(w.name, w.design); !s.ok())
      return std::printf("load %s: %s\n", w.name.c_str(),
                         s.to_string().c_str()),
             1;

  const std::size_t full_bytes = core::encode_fabric(device->personality()).size();
  std::printf("device %dx%d, %zu resident designs, full bitstream %zu "
              "bytes, pool %zu worker(s)\n\n",
              rows, cols, workloads.size(), full_bytes,
              util::global_pool().worker_count());

  // --- Differential check: activation == full bitstream load -------------
  bool identical = true;
  for (const auto& w : workloads) {
    if (Status s = device->activate(w.name); !s.ok())
      return std::printf("activate %s: %s\n", w.name.c_str(),
                         s.to_string().c_str()),
             1;
    auto padded = platform::pad_to(w.design, rows, cols);
    if (!padded.ok())
      return std::printf("%s\n", padded.status().to_string().c_str()), 1;
    identical =
        identical && core::encode_fabric(device->personality()) == padded->bitstream;
  }
  std::printf("delta-activated personalities byte-identical to full loads: "
              "%s\n",
              identical ? "yes" : "NO");

  // --- Mixed async workload ----------------------------------------------
  // Per design: several jobs of fresh random vectors, with the serial
  // event-free reference computed through the synchronous Session path.
  const int jobs_per_design = 6;
  const std::size_t vectors_per_job = 512;
  util::Rng rng(2026);
  for (auto& w : workloads) {
    auto session = platform::Session::load(w.design);
    if (!session.ok())
      return std::printf("%s\n", session.status().to_string().c_str()), 1;
    for (int j = 0; j < jobs_per_design; ++j) {
      std::vector<platform::InputVector> vectors(vectors_per_job);
      for (auto& v : vectors) {
        v.resize(w.netlist.inputs().size());
        for (std::size_t k = 0; k < v.size(); ++k) v[k] = rng.next_bool();
      }
      auto expected = session->run_vectors(
          vectors, {.max_threads = 1, .engine = platform::Engine::kAuto});
      if (!expected.ok())
        return std::printf("%s\n", expected.status().to_string().c_str()), 1;
      w.job_vectors.push_back(std::move(vectors));
      w.expected.push_back(std::move(*expected));
    }
  }

  // Submit in the personality-thrashing order a1 b1 c1 a2 b2 c2 ... — the
  // queue's same-design batching gets to undo the interleaving.
  const auto stats_before = device->stats();
  std::vector<std::pair<rt::Job, const Workload*>> jobs;
  std::vector<int> job_index(workloads.size(), 0);
  const auto t0 = std::chrono::steady_clock::now();
  for (int j = 0; j < jobs_per_design; ++j) {
    for (auto& w : workloads) {
      auto job = device->submit(w.name, w.job_vectors[j]);
      if (!job.ok())
        return std::printf("submit: %s\n", job.status().to_string().c_str()),
               1;
      jobs.emplace_back(std::move(*job), &w);
    }
  }
  bool match = true;
  std::size_t done = 0;
  for (auto& [job, w] : jobs) {
    auto result = job.wait();
    if (!result.ok())
      return std::printf("job %llu: %s\n",
                         static_cast<unsigned long long>(job.id()),
                         result.status().to_string().c_str()),
             1;
    const int j = job_index[static_cast<std::size_t>(w - &workloads[0])]++;
    match = match && *result == w->expected[j];
    ++done;
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double wall_s = std::chrono::duration<double>(t1 - t0).count();
  const auto stats = device->stats();

  const std::uint64_t delta_bytes = stats.delta_bytes - stats_before.delta_bytes;
  const std::uint64_t naive_bytes = stats.full_bytes - stats_before.full_bytes;
  const std::uint64_t swaps = stats.activations - stats_before.activations;
  const double delta_fraction =
      naive_bytes > 0 ? static_cast<double>(delta_bytes) /
                            static_cast<double>(naive_bytes)
                      : 0.0;
  const double jobs_per_sec = wall_s > 0 ? static_cast<double>(done) / wall_s
                                         : 0.0;
  const double vec_per_sec =
      wall_s > 0 ? static_cast<double>(done * vectors_per_job) / wall_s : 0.0;

  util::Table t("mixed adder/logic/mux workload (" +
                std::to_string(jobs.size()) + " jobs x " +
                std::to_string(vectors_per_job) + " vectors)");
  t.header({"jobs", "swaps", "batched", "delta B/swap", "full B", "delta%",
            "jobs/s", "vec/s", "match"});
  t.row({util::Table::num(static_cast<long long>(done)),
         util::Table::num(static_cast<long long>(swaps)),
         util::Table::num(static_cast<long long>(stats.batched_jobs -
                                                 stats_before.batched_jobs)),
         util::Table::num(swaps > 0 ? static_cast<double>(delta_bytes) /
                                          static_cast<double>(swaps)
                                    : 0.0,
                          0),
         util::Table::num(static_cast<long long>(full_bytes)),
         util::Table::num(100.0 * delta_fraction, 1),
         util::Table::num(jobs_per_sec, 1), util::Table::num(vec_per_sec, 0),
         match ? "pass" : "FAIL"});
  t.print();
  std::printf(
      "note: a naive controller rewrites the full %zu-byte bitstream per "
      "swap; the delta path writes only the 20-byte frames of blocks whose "
      "128-bit images differ between the outgoing and incoming "
      "personalities.\n",
      full_bytes);

  bench::record_devices("jobs_per_sec", jobs_per_sec, 1);
  bench::record_devices("vectors_per_sec", vec_per_sec, 1);
  bench::record("delta_fraction", delta_fraction);
  bench::record("personality_swaps", static_cast<double>(swaps));

  const bool ok = identical && match && delta_fraction < 0.5;
  bench::verdict(ok,
                 "delta activation is exact (byte-identical personalities), "
                 "concurrent jobs match serial run_vectors, and partial "
                 "reconfiguration writes < 50% of the full bitstream");
  return ok ? 0 : 1;
}
