// FIG8: the rotated-abutment array.  Routes feed-throughs across arrays of
// growing size, reporting hop counts and simulated path delay versus
// Manhattan distance — the locally-connected interconnect story.
#include "bench_common.h"
#include "core/fabric.h"
#include "map/router.h"
#include "sim/simulator.h"

int main(int argc, char** argv) {
  pp::bench::init(argc, argv);
  using namespace pp;
  bench::experiment_header(
      "FIG8 adjacent-only array routing",
      "unused logic is interconnect: feed-through drivers move data between "
      "abutting blocks; delay grows linearly with Manhattan distance");

  util::Table t("Route length vs simulated delay");
  t.header({"array", "route", "hops", "delay (ps)", "ps/hop"});
  bool linear = true;
  double first_per_hop = 0;
  for (int size : {2, 4, 6, 8, 12}) {
    core::Fabric f(size, size);
    map::Router router(f);
    const map::SignalAt src{0, 0, 0};
    const map::SignalAt dst{size - 1, size - 1, 3};
    const auto res = router.route(src, dst);
    if (!res) {
      bench::verdict(false, "routing failed");
      return 1;
    }
    auto ef = f.elaborate();
    sim::Simulator s(ef.circuit());
    s.set_input(ef.in_line(0, 0, 0), sim::Logic::k1);
    s.settle();
    const auto dst_net = ef.in_line(size - 1, size - 1, 3);
    if (s.value(dst_net) != sim::Logic::k1) {
      bench::verdict(false, "routed value did not arrive");
      return 1;
    }
    // Measure the edge-to-edge latency of a fresh transition.
    s.set_input(ef.in_line(0, 0, 0), sim::Logic::k0);
    const auto t_launch = s.now();
    s.settle();
    const double delay = static_cast<double>(s.last_change(dst_net) - t_launch);
    const double per_hop = delay / res->hop_count;
    if (first_per_hop == 0) first_per_hop = per_hop;
    if (per_hop > first_per_hop * 1.2 || per_hop < first_per_hop * 0.8)
      linear = false;
    t.row({std::to_string(size) + "x" + std::to_string(size),
           "(0,0,0)->(" + std::to_string(size - 1) + "," +
               std::to_string(size - 1) + ",3)",
           util::Table::num(static_cast<long long>(res->hop_count)),
           util::Table::num(delay, 0), util::Table::num(per_hop, 1)});
  }
  t.print();
  bench::verdict(linear, "delay scales linearly with hop count "
                         "(pipelineable local interconnect)");
  return 0;
}
