// GALS (§4.1): two synchronous islands bridged by an asynchronous FIFO
// wrapper.  Token integrity across clock ratios, plus the clock-power
// argument: synchronous activity scales with the clock tree, asynchronous
// activity only with traffic.
#include "bench_common.h"
#include "arch/power_model.h"
#include "async/gals.h"

int main(int argc, char** argv) {
  pp::bench::init(argc, argv);
  using namespace pp;
  bench::experiment_header(
      "GALS system (sync islands + async wrapper)",
      "unconstrained module clocks with lossless async links; removing the "
      "global clock removes clock-tree power");

  util::Table t("Clock-ratio sweep (32 tokens, 4-stage FIFO)");
  t.header({"Ta (ps)", "Tb (ps)", "delivered", "in order",
            "throughput (tok/ns)", "clk edges A", "clk edges B",
            "handshake transitions"});
  bool ok = true;
  for (const auto& [pa, pb] :
       {std::pair{100, 100}, {100, 170}, {100, 330}, {270, 90}, {500, 80}}) {
    async::GalsParams gp;
    gp.period_a_ps = pa;
    gp.period_b_ps = pb;
    gp.tokens = 32;
    const auto rep = async::run_gals(gp);
    ok = ok && rep.tokens_received == 32 && rep.all_values_in_order;
    t.row({util::Table::num(static_cast<long long>(pa)),
           util::Table::num(static_cast<long long>(pb)),
           util::Table::num(static_cast<long long>(rep.tokens_received)),
           rep.all_values_in_order ? "yes" : "NO",
           util::Table::num(rep.throughput_tokens_per_ns(), 3),
           util::Table::num(static_cast<long long>(rep.clock_edges_a)),
           util::Table::num(static_cast<long long>(rep.clock_edges_b)),
           util::Table::num(static_cast<long long>(rep.handshake_transitions))});
  }
  t.print();

  util::Table pwr("Activity proxies vs island size (same 32-token traffic)");
  pwr.header({"FFs per island", "sync activity (edge*FF)",
              "async activity (transitions)", "sync/async"});
  double ratio_small = 0, ratio_large = 0;
  for (int ffs : {100, 1000, 10000}) {
    async::GalsParams gp;
    gp.tokens = 32;
    gp.ff_count_a = gp.ff_count_b = ffs;
    const auto rep = async::run_gals(gp);
    const double ratio = rep.sync_activity() / rep.async_activity();
    if (ffs == 100) ratio_small = ratio;
    if (ffs == 10000) ratio_large = ratio;
    pwr.row({util::Table::num(static_cast<long long>(ffs)),
             util::Table::sci(rep.sync_activity(), 2),
             util::Table::sci(rep.async_activity(), 2),
             util::Table::num(ratio, 1)});
  }
  pwr.print();
  std::printf("clock-tree power at 1 GHz, 50K FF island: %.1f mW (the term "
              "GALS removes from the global budget)\n",
              arch::clock_tree_power_w(1e9, 50000) * 1e3);
  bench::verdict(ok && ratio_large > ratio_small * 50,
                 "lossless cross-domain transport; clock activity scales "
                 "with tree size while handshake activity stays fixed");
  return 0;
}
