// GALS (§4.1): two synchronous islands bridged by an asynchronous FIFO
// wrapper.  Token integrity across clock ratios, plus the clock-power
// argument: synchronous activity scales with the clock tree, asynchronous
// activity only with traffic.
#include "bench_common.h"
#include "bench_seq_common.h"
#include "arch/power_model.h"
#include "async/gals.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  pp::bench::init(argc, argv);
  using namespace pp;
  bench::experiment_header(
      "GALS system (sync islands + async wrapper)",
      "unconstrained module clocks with lossless async links; removing the "
      "global clock removes clock-tree power");

  util::Table t("Clock-ratio sweep (32 tokens, 4-stage FIFO)");
  t.header({"Ta (ps)", "Tb (ps)", "delivered", "in order",
            "throughput (tok/ns)", "clk edges A", "clk edges B",
            "handshake transitions"});
  bool ok = true;
  for (const auto& [pa, pb] :
       {std::pair{100, 100}, {100, 170}, {100, 330}, {270, 90}, {500, 80}}) {
    async::GalsParams gp;
    gp.period_a_ps = pa;
    gp.period_b_ps = pb;
    gp.tokens = 32;
    const auto rep = async::run_gals(gp);
    ok = ok && rep.tokens_received == 32 && rep.all_values_in_order;
    t.row({util::Table::num(static_cast<long long>(pa)),
           util::Table::num(static_cast<long long>(pb)),
           util::Table::num(static_cast<long long>(rep.tokens_received)),
           rep.all_values_in_order ? "yes" : "NO",
           util::Table::num(rep.throughput_tokens_per_ns(), 3),
           util::Table::num(static_cast<long long>(rep.clock_edges_a)),
           util::Table::num(static_cast<long long>(rep.clock_edges_b)),
           util::Table::num(static_cast<long long>(rep.handshake_transitions))});
  }
  t.print();

  util::Table pwr("Activity proxies vs island size (same 32-token traffic)");
  pwr.header({"FFs per island", "sync activity (edge*FF)",
              "async activity (transitions)", "sync/async"});
  double ratio_small = 0, ratio_large = 0;
  for (int ffs : {100, 1000, 10000}) {
    async::GalsParams gp;
    gp.tokens = 32;
    gp.ff_count_a = gp.ff_count_b = ffs;
    const auto rep = async::run_gals(gp);
    const double ratio = rep.sync_activity() / rep.async_activity();
    if (ffs == 100) ratio_small = ratio;
    if (ffs == 10000) ratio_large = ratio;
    pwr.row({util::Table::num(static_cast<long long>(ffs)),
             util::Table::sci(rep.sync_activity(), 2),
             util::Table::sci(rep.async_activity(), 2),
             util::Table::num(ratio, 1)});
  }
  pwr.print();
  std::printf("clock-tree power at 1 GHz, 50K FF island: %.1f mW (the term "
              "GALS removes from the global budget)\n",
              arch::clock_tree_power_w(1e9, 50000) * 1e3);

  // The synchronous-island workload as a clocked batch: an 8-bit LFSR
  // island and an 8-bit counter island (both async-reset), their state
  // mixed at the link boundary — 512 lanes x 32 cycles through the
  // compiled sequential kernel vs the event oracle (DESIGN.md §13).  Each
  // lane pulses reset in cycle 0 and injects a per-lane bit into the LFSR
  // feedback, so the streams diverge.
  {
    sim::Circuit ckt;
    const sim::NetId clk = ckt.add_net("clk");
    ckt.mark_input(clk);
    const sim::NetId rstn = ckt.add_net("rstn"), inj = ckt.add_net("inj");
    ckt.mark_input(rstn);
    ckt.mark_input(inj);
    const std::vector<sim::NetId> ins{rstn, inj};

    // Island A: 8-bit Fibonacci LFSR, taps at bits 7/5/4/3, injection
    // XORed into the feedback.
    std::vector<sim::NetId> a(8);
    for (auto& n : a) n = ckt.add_net();
    sim::NetId fb = ckt.add_net();
    {
      const sim::NetId t0 = ckt.add_net(), t1 = ckt.add_net();
      ckt.add_gate(sim::GateKind::kXor, {a[7], a[5]}, t0);
      ckt.add_gate(sim::GateKind::kXor, {a[4], a[3]}, t1);
      const sim::NetId t2 = ckt.add_net();
      ckt.add_gate(sim::GateKind::kXor, {t0, t1}, t2);
      ckt.add_gate(sim::GateKind::kXor, {t2, inj}, fb);
    }
    ckt.add_gate(sim::GateKind::kDff, {fb, clk, rstn}, a[0]);
    for (int i = 1; i < 8; ++i)
      ckt.add_gate(sim::GateKind::kDff, {a[i - 1], clk, rstn}, a[i]);

    // Island B: 8-bit synchronous counter (carry chain of ANDs).
    std::vector<sim::NetId> b(8);
    for (auto& n : b) n = ckt.add_net();
    sim::NetId carry = sim::kNoNet;
    for (int i = 0; i < 8; ++i) {
      const sim::NetId d = ckt.add_net();
      if (i == 0) {
        ckt.add_gate(sim::GateKind::kNot, {b[0]}, d);
        carry = b[0];
      } else {
        ckt.add_gate(sim::GateKind::kXor, {b[i], carry}, d);
        const sim::NetId next = ckt.add_net();
        ckt.add_gate(sim::GateKind::kAnd, {carry, b[i]}, next);
        carry = next;
      }
      ckt.add_gate(sim::GateKind::kDff, {d, clk, rstn}, b[i]);
    }

    // Link boundary: the observable traffic is the XOR of the two islands.
    std::vector<sim::NetId> outs(8);
    for (int i = 0; i < 8; ++i) {
      outs[i] = ckt.add_net();
      ckt.add_gate(sim::GateKind::kXor, {a[i], b[i]}, outs[i]);
    }

    const std::size_t cycles = 32, lanes = 512;
    bench::SeqStimulus stim(ins.size(), cycles, lanes);
    util::Rng rng(13);
    for (std::size_t c = 0; c < cycles; ++c)
      for (std::size_t l = 0; l < lanes; ++l) {
        stim.set(c, 0, l, c != 0);  // reset pulse in cycle 0
        stim.set(c, 1, l, rng.next_bool());
      }
    const auto cmp =
        bench::compare_seq_engines(ckt, ins, outs, stim, cycles, lanes);
    ok = bench::report_seq_section(
             "Clocked islands: LFSR + counter + link mix, compiled vs event",
             cmp, cycles, lanes) &&
         ok;
  }

  bench::verdict(ok && ratio_large > ratio_small * 50,
                 "lossless cross-domain transport; clock activity scales "
                 "with tree size while handshake activity stays fixed; "
                 "island batches >= 20x on the compiled engine");
  return 0;
}
