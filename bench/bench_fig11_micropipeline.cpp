// FIG11: Sutherland micropipelines.  Sweeps pipeline depth and stage delay,
// reporting throughput, occupancy and token integrity — the asynchronous
// half of the paper's §4.1 argument.  Each pipeline instance is hosted in a
// platform::Session (from_circuit); the async harness drives the handshake
// on the session's simulator.
#include "bench_common.h"
#include "async/micropipeline.h"
#include "platform/session.h"

namespace {

/// Build a pipeline and wrap it in a Session; exits on construction errors.
pp::platform::Session make_session(const pp::async::MicropipelineParams& p,
                                   pp::async::MicropipelinePorts& ports) {
  pp::sim::Circuit ckt;
  ports = pp::async::build_micropipeline(ckt, p);
  auto session = pp::platform::Session::from_circuit(
      std::move(ckt),
      {{"req_in", ports.req_in}, {"ack_out", ports.ack_out}},
      {{"ack_in", ports.ack_in}, {"req_out", ports.req_out}});
  if (!session.ok()) {
    std::printf("%s\n", session.status().to_string().c_str());
    std::exit(1);
  }
  return std::move(*session);
}

}  // namespace

int main(int argc, char** argv) {
  pp::bench::init(argc, argv);
  using namespace pp;
  bench::experiment_header(
      "FIG11 micropipeline (C-element chain + ECSE registers)",
      "2-phase transition signalling moves tokens without any clock; "
      "throughput set by stage delay, elasticity by depth");

  util::Table t("Depth x stage-delay sweep (32 tokens each)");
  t.header({"stages", "stage delay (ps)", "tokens", "in order",
            "throughput (tokens/ns)", "avg latency-ish (ps/token)"});
  bool ok = true;
  for (int stages : {2, 4, 8}) {
    for (sim::SimTime delay : {20, 40, 80}) {
      async::MicropipelineParams p;
      p.stages = stages;
      p.width = 8;
      p.stage_delay_ps = delay;
      async::MicropipelinePorts ports;
      auto session = make_session(p, ports);
      const auto stats =
          async::run_tokens(session.simulator(), ports, p.width, 32);
      bool in_order = stats.tokens_received == 32;
      for (int i = 0; i < stats.tokens_received; ++i)
        if (stats.received_values[i] != static_cast<std::uint64_t>(i + 1))
          in_order = false;
      ok = ok && in_order;
      t.row({util::Table::num(static_cast<long long>(stages)),
             util::Table::num(static_cast<long long>(delay)),
             util::Table::num(static_cast<long long>(stats.tokens_received)),
             in_order ? "yes" : "NO",
             util::Table::num(stats.throughput_tokens_per_ns(), 3),
             util::Table::num(
                 static_cast<double>(stats.total_time_ps) /
                     std::max(1, stats.tokens_received),
                 0)});
    }
  }
  t.print();

  // Back-pressure: a slow consumer throttles the source losslessly.
  util::Table bp("Back-pressure (4 stages, 40 ps stage delay)");
  bp.header({"sink delay (ps)", "throughput (tokens/ns)", "lossless"});
  double fast = 0;
  for (sim::SimTime sink : {10, 100, 400, 1600}) {
    async::MicropipelineParams p;
    p.stages = 4;
    p.width = 8;
    async::MicropipelinePorts ports;
    auto session = make_session(p, ports);
    const auto stats =
        async::run_tokens(session.simulator(), ports, p.width, 24, 10, sink);
    if (sink == 10) fast = stats.throughput_tokens_per_ns();
    bp.row({util::Table::num(static_cast<long long>(sink)),
            util::Table::num(stats.throughput_tokens_per_ns(), 3),
            stats.tokens_received == 24 ? "yes" : "NO"});
    ok = ok && stats.tokens_received == 24;
  }
  bp.print();
  bench::verdict(ok && fast > 0,
                 "tokens conserved and ordered across depth/delay/back-"
                 "pressure sweep");
  return 0;
}
