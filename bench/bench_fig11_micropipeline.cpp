// FIG11: Sutherland micropipelines.  Sweeps pipeline depth and stage delay,
// reporting throughput, occupancy and token integrity — the asynchronous
// half of the paper's §4.1 argument.  Each pipeline instance is hosted in a
// platform::Session (from_circuit); the async harness drives the handshake
// on the session's simulator.
#include "bench_common.h"
#include "bench_seq_common.h"
#include "async/micropipeline.h"
#include "platform/session.h"
#include "util/rng.h"

namespace {

/// Build a pipeline and wrap it in a Session; exits on construction errors.
pp::platform::Session make_session(const pp::async::MicropipelineParams& p,
                                   pp::async::MicropipelinePorts& ports) {
  pp::sim::Circuit ckt;
  ports = pp::async::build_micropipeline(ckt, p);
  auto session = pp::platform::Session::from_circuit(
      std::move(ckt),
      {{"req_in", ports.req_in}, {"ack_out", ports.ack_out}},
      {{"ack_in", ports.ack_in}, {"req_out", ports.req_out}});
  if (!session.ok()) {
    std::printf("%s\n", session.status().to_string().c_str());
    std::exit(1);
  }
  return std::move(*session);
}

}  // namespace

int main(int argc, char** argv) {
  pp::bench::init(argc, argv);
  using namespace pp;
  bench::experiment_header(
      "FIG11 micropipeline (C-element chain + ECSE registers)",
      "2-phase transition signalling moves tokens without any clock; "
      "throughput set by stage delay, elasticity by depth");

  util::Table t("Depth x stage-delay sweep (32 tokens each)");
  t.header({"stages", "stage delay (ps)", "tokens", "in order",
            "throughput (tokens/ns)", "avg latency-ish (ps/token)"});
  bool ok = true;
  for (int stages : {2, 4, 8}) {
    for (sim::SimTime delay : {20, 40, 80}) {
      async::MicropipelineParams p;
      p.stages = stages;
      p.width = 8;
      p.stage_delay_ps = delay;
      async::MicropipelinePorts ports;
      auto session = make_session(p, ports);
      const auto stats =
          async::run_tokens(session.simulator(), ports, p.width, 32);
      bool in_order = stats.tokens_received == 32;
      for (int i = 0; i < stats.tokens_received; ++i)
        if (stats.received_values[i] != static_cast<std::uint64_t>(i + 1))
          in_order = false;
      ok = ok && in_order;
      t.row({util::Table::num(static_cast<long long>(stages)),
             util::Table::num(static_cast<long long>(delay)),
             util::Table::num(static_cast<long long>(stats.tokens_received)),
             in_order ? "yes" : "NO",
             util::Table::num(stats.throughput_tokens_per_ns(), 3),
             util::Table::num(
                 static_cast<double>(stats.total_time_ps) /
                     std::max(1, stats.tokens_received),
                 0)});
    }
  }
  t.print();

  // Back-pressure: a slow consumer throttles the source losslessly.
  util::Table bp("Back-pressure (4 stages, 40 ps stage delay)");
  bp.header({"sink delay (ps)", "throughput (tokens/ns)", "lossless"});
  double fast = 0;
  for (sim::SimTime sink : {10, 100, 400, 1600}) {
    async::MicropipelineParams p;
    p.stages = 4;
    p.width = 8;
    async::MicropipelinePorts ports;
    auto session = make_session(p, ports);
    const auto stats =
        async::run_tokens(session.simulator(), ports, p.width, 24, 10, sink);
    if (sink == 10) fast = stats.throughput_tokens_per_ns();
    bp.row({util::Table::num(static_cast<long long>(sink)),
            util::Table::num(stats.throughput_tokens_per_ns(), 3),
            stats.tokens_received == 24 ? "yes" : "NO"});
    ok = ok && stats.tokens_received == 24;
  }
  bp.print();

  // The synchronous counterpart of the elastic pipeline: an 8-stage x
  // 8-bit shift register with a global enable (stall) — the clocked design
  // a micropipeline replaces.  The C-element pipeline itself is
  // asynchronous by construction (compile_sequential rejects it; the event
  // engine above is its home); this clocked twin rides the compiled
  // sequential kernel, 512 stall-pattern lanes at once (DESIGN.md §13).
  {
    sim::Circuit ckt;
    const sim::NetId clk = ckt.add_net("clk");
    ckt.mark_input(clk);
    const sim::NetId en = ckt.add_net("en");
    ckt.mark_input(en);
    const sim::NetId nen = ckt.add_net();
    ckt.add_gate(sim::GateKind::kNot, {en}, nen);
    std::vector<sim::NetId> ins{en}, outs;
    std::vector<sim::NetId> prev(8);
    for (int w = 0; w < 8; ++w) {
      prev[w] = ckt.add_net();
      ckt.mark_input(prev[w]);
      ins.push_back(prev[w]);
    }
    for (int stage = 0; stage < 8; ++stage) {
      for (int w = 0; w < 8; ++w) {
        const sim::NetId q = ckt.add_net(), load = ckt.add_net(),
                         hold = ckt.add_net(), d = ckt.add_net();
        ckt.add_gate(sim::GateKind::kAnd, {prev[w], en}, load);
        ckt.add_gate(sim::GateKind::kAnd, {q, nen}, hold);
        ckt.add_gate(sim::GateKind::kOr, {load, hold}, d);
        ckt.add_gate(sim::GateKind::kDff, {d, clk}, q);
        prev[w] = q;
      }
    }
    for (int w = 0; w < 8; ++w) outs.push_back(prev[w]);

    const std::size_t cycles = 32, lanes = 512;
    bench::SeqStimulus stim(ins.size(), cycles, lanes);
    util::Rng rng(11);
    for (std::size_t c = 0; c < cycles; ++c)
      for (std::size_t l = 0; l < lanes; ++l) {
        stim.set(c, 0, l, rng.next_below(4) != 0);  // en: stall 1 in 4
        for (std::size_t j = 1; j < ins.size(); ++j)
          stim.set(c, j, l, rng.next_bool());
      }
    const auto cmp =
        bench::compare_seq_engines(ckt, ins, outs, stim, cycles, lanes);
    ok = bench::report_seq_section(
             "Clocked twin: 8-stage x 8-bit enable pipeline, compiled vs "
             "event",
             cmp, cycles, lanes) &&
         ok;
  }

  bench::verdict(ok && fast > 0,
                 "tokens conserved and ordered across depth/delay/back-"
                 "pressure sweep; clocked twin >= 20x on the compiled "
                 "engine");
  return 0;
}
