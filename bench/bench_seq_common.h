// Shared clocked-batch comparison for the sequential bench sections (fig9,
// fig11, GALS): the same multi-cycle stimulus goes through the compiled
// sequential kernel (CompiledEval::run_cycles, SoA lanes with register
// planes — DESIGN.md §13) and the settled event oracle (EventEval's
// per-lane cycle protocol), outputs are compared bit for bit (X included),
// and the measured speedup is reported against the >= 20x acceptance gate
// at 512 lanes.  Each bench records its numbers under `seq_*` metrics; CI
// collects those into BENCH_seq.json.
#pragma once

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "sim/circuit.h"
#include "sim/evaluator.h"
#include "util/table.h"

namespace pp::bench {

/// Cycle-major two-valued stimulus planes in the layout run_cycles speaks:
/// input j of cycle c, lane l at `value[(c * inputs + j) * words + l/64]`.
struct SeqStimulus {
  std::vector<std::uint64_t> value;
  std::vector<std::uint64_t> unknown;  // all-zero: two-valued stimulus
  std::size_t inputs, words;

  SeqStimulus(std::size_t inputs, std::size_t cycles, std::size_t lanes)
      : value(inputs * cycles * ((lanes + 63) / 64), 0),
        unknown(value.size(), 0),
        inputs(inputs),
        words((lanes + 63) / 64) {}

  void set(std::size_t cycle, std::size_t input, std::size_t lane, bool v) {
    const std::size_t ofs = (cycle * inputs + input) * words + lane / 64;
    const std::uint64_t bit = std::uint64_t{1} << (lane % 64);
    if (v)
      value[ofs] |= bit;
    else
      value[ofs] &= ~bit;
  }
};

/// The numbers one compiled-vs-event comparison yields.
struct SeqCompare {
  double event_ms = 0;
  double compiled_ms = 0;
  double speedup = 0;
  bool identical = false;  ///< outputs bit-for-bit equal, X included
  bool ok = false;         ///< both engines ran and outputs matched
  sim::CompiledEval::KernelStats kernel;  ///< compiled cycle counters
};

/// Run `stimulus` for `cycles` cycles on `lanes` lanes through both
/// engines and compare.  `in_nets`/`out_nets`/`regs` follow
/// CompiledEval::compile_sequential's contract (clock nets are driven by
/// the engines, not listed as inputs).
inline SeqCompare compare_seq_engines(const sim::Circuit& circuit,
                                      const std::vector<sim::NetId>& in_nets,
                                      const std::vector<sim::NetId>& out_nets,
                                      const SeqStimulus& stimulus,
                                      std::size_t cycles, std::size_t lanes,
                                      std::vector<sim::ExternalReg> regs = {}) {
  SeqCompare r;
  const std::size_t words = (lanes + 63) / 64;
  const std::size_t out_sz = out_nets.size() * cycles * words;
  std::vector<std::uint64_t> ev_value(out_sz), ev_unknown(out_sz);
  std::vector<std::uint64_t> cv_value(out_sz), cv_unknown(out_sz);

  auto event = sim::EventEval::create(circuit, in_nets, out_nets,
                                      2'000'000, regs);
  if (!event.ok()) {
    std::printf("event engine: %s\n", event.status().to_string().c_str());
    return r;
  }
  auto compiled = sim::CompiledEval::compile_sequential(circuit, in_nets,
                                                        out_nets, regs);
  if (!compiled.ok()) {
    std::printf("compiled engine: %s\n", compiled.status().to_string().c_str());
    return r;
  }

  const auto t0 = std::chrono::steady_clock::now();
  const Status es = event->run_cycles(stimulus.value, stimulus.unknown,
                                      ev_value, ev_unknown, cycles, lanes);
  const auto t1 = std::chrono::steady_clock::now();
  const Status cs = compiled->run_cycles(stimulus.value, stimulus.unknown,
                                         cv_value, cv_unknown, cycles, lanes);
  const auto t2 = std::chrono::steady_clock::now();
  if (!es.ok() || !cs.ok()) {
    std::printf("run_cycles: %s\n",
                (!es.ok() ? es : cs).to_string().c_str());
    return r;
  }
  r.event_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.compiled_ms = std::chrono::duration<double, std::milli>(t2 - t1).count();
  r.speedup = r.compiled_ms > 0 ? r.event_ms / r.compiled_ms : 0;
  r.kernel = compiled->kernel_stats();

  // Bit-for-bit, dead lanes masked (the final partial word, if any).
  r.identical = true;
  for (std::size_t i = 0; i < out_sz && r.identical; ++i) {
    const std::size_t w = i % words;
    const std::uint64_t mask =
        (w + 1) * 64 <= lanes ? ~std::uint64_t{0}
                              : (std::uint64_t{1} << (lanes % 64)) - 1;
    r.identical = ((ev_value[i] ^ cv_value[i]) & mask & ~ev_unknown[i]) == 0 &&
                  ((ev_unknown[i] ^ cv_unknown[i]) & mask) == 0;
  }
  r.ok = r.identical;
  return r;
}

/// Print the uniform compiled-vs-event table for one clocked bench section
/// and record the `seq_*` metrics.  Returns whether the section passes the
/// acceptance gate: bit-identical outputs and >= 20x speedup.
inline bool report_seq_section(const char* title, const SeqCompare& r,
                               std::size_t cycles, std::size_t lanes) {
  util::Table t(title);
  t.header({"lanes", "cycles", "event (ms)", "compiled (ms)", "speedup",
            "fast cycles", "state commits", "identical"});
  t.row({util::Table::num(static_cast<long long>(lanes)),
         util::Table::num(static_cast<long long>(cycles)),
         util::Table::num(r.event_ms, 1), util::Table::num(r.compiled_ms, 3),
         util::Table::num(r.speedup, 1),
         util::Table::num(static_cast<long long>(r.kernel.fast_cycle_passes)),
         util::Table::num(static_cast<long long>(r.kernel.state_commits)),
         r.identical ? "yes" : "NO"});
  t.print();
  record("seq_speedup", r.speedup);
  record("seq_compiled_ms", r.compiled_ms);
  record("seq_event_ms", r.event_ms);
  record("seq_identical", r.identical ? 1 : 0);
  const bool pass = r.ok && r.speedup >= 20.0;
  std::printf("sequential gate: %s (>= 20x at %zu lanes, bit-identical)\n\n",
              pass ? "pass" : "FAIL", lanes);
  return pass;
}

}  // namespace pp::bench
