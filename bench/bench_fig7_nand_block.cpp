// FIG7: the 6x6 NAND-array block.  Configures representative term patterns,
// verifies the elaborated block against the digital model exhaustively over
// all 64 input combinations, and measures event-simulation throughput.
#include <chrono>

#include "bench_common.h"
#include "core/fabric.h"
#include "sim/simulator.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  pp::bench::init(argc, argv);
  using namespace pp;
  using core::BiasLevel;
  bench::experiment_header(
      "FIG7 6x6 NAND block",
      "a block is a 6-input/6-output NAND plane; each output terminates in "
      "the Fig. 5 driver; 128 bits configure the whole block");

  // Representative configuration: six distinct term shapes.
  core::Fabric f(1, 2);
  core::BlockConfig& b = f.block(0, 0);
  for (int j = 0; j < 6; ++j) b.xpoint[0][j] = BiasLevel::kActive;  // NAND6
  b.xpoint[1][0] = BiasLevel::kActive;                              // /a
  b.xpoint[2][1] = BiasLevel::kActive;  // /(b.c)
  b.xpoint[2][2] = BiasLevel::kActive;
  b.xpoint[3][3] = BiasLevel::kActive;  // /(d.e.f)
  b.xpoint[3][4] = BiasLevel::kActive;
  b.xpoint[3][5] = BiasLevel::kActive;
  // row 4: disabled via Force0; row 5: empty (constant pull-up).
  b.xpoint[4][0] = BiasLevel::kForce0;
  for (int i = 0; i < 6; ++i) b.driver[i] = core::DriverCfg::kBuffer;

  auto ef = f.elaborate();
  sim::Simulator s(ef.circuit());
  bool ok = true;
  for (int input = 0; input < 64; ++input) {
    std::array<bool, 6> in{};
    for (int j = 0; j < 6; ++j) {
      in[j] = (input >> j) & 1;
      s.set_input(ef.in_line(0, 0, j), sim::from_bool(in[j]));
    }
    s.settle();
    for (int row = 0; row < 6; ++row) {
      if ((s.value(ef.in_line(0, 1, row)) == sim::Logic::k1) !=
          core::block_row_value(b, row, in))
        ok = false;
    }
  }
  util::Table t("Block resource summary");
  t.header({"metric", "value"});
  t.row({"config bits / block", util::Table::num(
                                    static_cast<long long>(core::kConfigBits))});
  t.row({"active leaf cells", util::Table::num(
                                  static_cast<long long>(b.active_cells()))});
  t.row({"used NAND terms", util::Table::num(
                                static_cast<long long>(b.used_terms()))});
  t.row({"exhaustive 64-input check", ok ? "pass" : "FAIL"});
  t.print();

  // Event-simulation throughput over random stimulus.
  util::Rng rng(1);
  const auto t0 = std::chrono::steady_clock::now();
  const int kIters = 20000;
  for (int iter = 0; iter < kIters; ++iter) {
    s.set_input(ef.in_line(0, 0, static_cast<int>(rng.next_below(6))),
                rng.next_bool() ? sim::Logic::k1 : sim::Logic::k0);
    s.settle();
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double us =
      std::chrono::duration<double, std::micro>(t1 - t0).count();
  std::printf("random-stimulus throughput: %.2f Mevents/s (%.1f ns/update)\n",
              s.stats().events_processed / us, 1000.0 * us / kIters);
  bench::verdict(ok, "elaborated block matches the NAND-plane semantics");
  return 0;
}
